package repro

import (
	"reflect"
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	res, err := Run(Config{DataRefsPerCPU: 800})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProcUtil <= 0 || res.ProcUtil > 1 {
		t.Fatalf("ProcUtil = %v", res.ProcUtil)
	}
	if res.MissLatencyNS <= 0 {
		t.Fatalf("MissLatencyNS = %v", res.MissLatencyNS)
	}
	if res.Misses == 0 {
		t.Fatal("no misses recorded")
	}
	if res.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestRunAllProtocols(t *testing.T) {
	for _, p := range Protocols() {
		res, err := Run(Config{Protocol: p, Benchmark: "MP3D", CPUs: 8, DataRefsPerCPU: 500})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.ExecTimeUS <= 0 {
			t.Fatalf("%v: no execution time", p)
		}
	}
}

func TestRunRejectsUnknownBenchmark(t *testing.T) {
	if _, err := Run(Config{Benchmark: "LINPACK"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := Run(Config{Benchmark: "MP3D", CPUs: 64}); err == nil {
		t.Fatal("MP3D/64 accepted (no such profile)")
	}
	if _, err := Run(Config{Protocol: Protocol("crossbar")}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunRingSegments(t *testing.T) {
	// Invalid shapes are rejected with a reason, not a panic.
	for name, cfg := range map[string]Config{
		"one segment":    {Benchmark: "MP3D", CPUs: 16, Protocol: "directory-ring", RingSegments: 1},
		"wrong protocol": {Benchmark: "MP3D", CPUs: 16, Protocol: "snoop-ring", RingSegments: 4},
		"indivisible":    {Benchmark: "MP3D", CPUs: 16, Protocol: "directory-ring", RingSegments: 5},
		"traced":         {Benchmark: "MP3D", CPUs: 16, Protocol: "directory-ring", RingSegments: 4, TraceSample: 8},
	} {
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// A valid segmented run carries the window and cross-shard stats
	// through the facade.
	cfg := Config{Benchmark: "MP3D", CPUs: 16, Protocol: "directory-ring",
		RingSegments: 4, DataRefsPerCPU: 600, Seed: 11, Parallel: 4}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 4 || res.ParallelFallback != "" {
		t.Fatalf("partitions=%d fallback=%q", res.Partitions, res.ParallelFallback)
	}
	if res.ParallelWindowPS <= 0 || res.ParallelCrossEvents == 0 || res.ParallelCrossWindows == 0 {
		t.Fatalf("segmented run carried no cross-shard traffic: %+v", res)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Benchmark: "CHOLESKY", CPUs: 8, DataRefsPerCPU: 500, Seed: 7}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config differed:\n%+v\n%+v", a, b)
	}
}

func TestRunTraceSample(t *testing.T) {
	cfg := Config{Benchmark: "MP3D", CPUs: 8, DataRefsPerCPU: 800, Seed: 3}

	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.HasTrace() {
		t.Fatal("untraced run claims a trace")
	}
	if err := plain.WriteTrace(&strings.Builder{}); err == nil {
		t.Fatal("WriteTrace on an untraced run did not fail")
	}
	if plain.SpanClasses() != nil {
		t.Fatal("untraced run has span classes")
	}

	cfg.TraceSample = 32
	traced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !traced.HasTrace() {
		t.Fatal("traced run has no trace")
	}
	// Tracing is pure observation: every simulated quantity matches the
	// untraced run exactly.
	if traced.MissLatencyNS != plain.MissLatencyNS || traced.ExecTimeUS != plain.ExecTimeUS ||
		traced.Misses != plain.Misses || traced.Upgrades != plain.Upgrades {
		t.Fatalf("tracing changed the results:\ntraced  %+v\nplain   %+v", traced, plain)
	}
	classes := traced.SpanClasses()
	if len(classes) == 0 {
		t.Fatal("traced run has no span classes")
	}
	var spans uint64
	for _, c := range classes {
		if c.Spans == 0 || c.MeanNS < 0 || c.P95NS < c.P50NS {
			t.Errorf("implausible class summary: %+v", c)
		}
		if c.Class != "write-back" && c.MeanNS <= 0 {
			t.Errorf("class %s has zero mean latency", c.Class)
		}
		spans += c.Spans
	}
	if spans < traced.Misses {
		t.Errorf("span classes cover %d transactions, want at least the %d misses", spans, traced.Misses)
	}
	var sb strings.Builder
	if err := traced.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "traceEvents") {
		t.Fatal("trace output missing traceEvents")
	}
}

func TestBenchmarksList(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 12 {
		t.Fatalf("Benchmarks() = %d entries, want 12", len(bs))
	}
}

func TestRingSpeedMatters(t *testing.T) {
	fast, err := Run(Config{Benchmark: "MP3D", CPUs: 16, ProcCycleNS: 5, RingMHz: 500, DataRefsPerCPU: 800})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(Config{Benchmark: "MP3D", CPUs: 16, ProcCycleNS: 5, RingMHz: 250, DataRefsPerCPU: 800})
	if err != nil {
		t.Fatal(err)
	}
	if fast.MissLatencyNS >= slow.MissLatencyNS {
		t.Fatalf("500 MHz ring latency %v >= 250 MHz %v", fast.MissLatencyNS, slow.MissLatencyNS)
	}
}

func TestSuiteHeadlineComparison(t *testing.T) {
	s := NewSuite(SuiteOptions{DataRefsPerCPU: 900, Seed: 42})
	sn, dir := s.SnoopVsDirectory("MP3D", 16)
	// The paper's headline: snooping outperforms the directory for
	// MP3D — lower miss latency, at least comparable utilization.
	if sn.MissLatencyNS >= dir.MissLatencyNS {
		t.Fatalf("snoop latency %v >= directory %v", sn.MissLatencyNS, dir.MissLatencyNS)
	}
	if sn.ProcUtil < dir.ProcUtil-0.02 {
		t.Fatalf("snoop util %v well below directory %v", sn.ProcUtil, dir.ProcUtil)
	}
	// Snooping loads the ring more.
	if sn.NetworkUtil <= dir.NetworkUtil {
		t.Fatalf("snoop ring util %v <= directory %v", sn.NetworkUtil, dir.NetworkUtil)
	}
}

func TestSuiteTable3(t *testing.T) {
	s := NewSuite(SuiteOptions{DataRefsPerCPU: 300})
	out := s.Table3()
	for _, cell := range []string{"40", "20", "10", "152", "76", "38"} {
		if !strings.Contains(out, cell) {
			t.Fatalf("Table 3 missing value %s:\n%s", cell, out)
		}
	}
}

func TestSuiteAblationAccessControl(t *testing.T) {
	s := NewSuite(SuiteOptions{DataRefsPerCPU: 300})
	out := s.AblationAccessControl(8)
	for _, want := range []string{"slotted", "insertion", "token"} {
		if !strings.Contains(out, want) {
			t.Fatalf("access-control ablation missing %q:\n%s", want, out)
		}
	}
}

func TestRunTraceRoundTrip(t *testing.T) {
	// Generate a trace via the internal tool path and replay it through
	// the facade; results must be deterministic and sane.
	dir := t.TempDir()
	path := dir + "/m8.trc.gz"
	// Write the trace with tracegen's building blocks.
	writeTestTrace(t, path)
	res, err := RunTrace(Config{Protocol: SnoopRing, ProcCycleNS: 5}, path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses == 0 || res.ProcUtil <= 0 {
		t.Fatalf("replay produced no activity: %+v", res)
	}
	res2, err := RunTrace(Config{Protocol: SnoopRing, ProcCycleNS: 5}, path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatal("trace replay not deterministic")
	}
}

func TestRunTraceErrors(t *testing.T) {
	if _, err := RunTrace(Config{}, "/nonexistent/file.trc"); err == nil {
		t.Fatal("missing trace accepted")
	}
}

func TestRunHierRing(t *testing.T) {
	res, err := Run(Config{Protocol: HierRing, Benchmark: "MP3D", CPUs: 16, Clusters: 4, DataRefsPerCPU: 600})
	if err != nil {
		t.Fatal(err)
	}
	if res.NetworkUtil <= 0 {
		t.Fatal("hierarchical rings reported no network utilization")
	}
}

func TestSuiteAllMethodsSmoke(t *testing.T) {
	// Exercise every Suite entry point at a small scale; each must
	// produce non-empty output containing its key series or rows.
	if testing.Short() {
		t.Skip("slow: runs every experiment")
	}
	s := NewSuite(SuiteOptions{DataRefsPerCPU: 400, Seed: 13})
	checks := []struct {
		name string
		out  func() string
		want string
	}{
		{"Table1", s.Table1, "l.list"},
		{"Table2", s.Table2, "SIMPLE"},
		{"Table3", s.Table3, "128 bytes"},
		{"Table4", s.Table4, "CHOLESKY"},
		{"Figure3", func() string { return s.Figure3("MP3D") }, "snoop-16"},
		{"Figure3Plot", func() string { return s.Figure3Plot("MP3D") }, "cycle(ns)"},
		{"Figure4", s.Figure4, "WEATHER"},
		{"Figure5", s.Figure5, "1-cycle-dirty"},
		{"Figure6", func() string { return s.Figure6("MP3D", 8) }, "bus-50MHz"},
		{"Figure6Plot", func() string { return s.Figure6Plot("MP3D", 8) }, "ring-500MHz"},
		{"Validation", func() string { return s.Validation("MP3D", 8) }, "snoop-ring"},
		{"AblationSlotMix", func() string { return s.AblationSlotMix("MP3D", 8) }, "pairs"},
		{"AblationStarvation", func() string { return s.AblationStarvationRule("MP3D", 8) }, "deferrals"},
		{"AblationWideRing", func() string { return s.AblationWideRing("MP3D", 8) }, "ring util"},
		{"AblationBlockSize", func() string { return s.AblationBlockSize("MP3D", 8) }, "snoop rate"},
		{"AblationLatencyTolerance", func() string { return s.AblationLatencyTolerance("MP3D", 8) }, "speedup"},
		{"AblationMultitasking", func() string { return s.AblationMultitasking("MP3D", 8) }, "quantum"},
		{"LatencyDecomposition", func() string { return s.LatencyDecomposition("MP3D", 8, 5) }, "contention"},
		{"ExtensionHierarchy", func() string { return s.ExtensionHierarchy("MP3D", 16, 4) }, "flat-ring"},
	}
	for _, c := range checks {
		out := c.out()
		if !strings.Contains(out, c.want) {
			t.Errorf("%s output missing %q:\n%s", c.name, c.want, out)
		}
	}
}
