package repro_test

import (
	"fmt"

	"repro"
)

// The simplest use: simulate the paper's headline machine and read the
// three quantities every figure plots.
func ExampleRun() {
	res, err := repro.Run(repro.Config{
		Protocol:    repro.SnoopRing,
		Benchmark:   "MP3D",
		CPUs:        16,
		ProcCycleNS: 10,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.ProcUtil > 0 && res.ProcUtil < 1)
	fmt.Println(res.MissLatencyNS > 100) // remote misses cost hundreds of ns
	// Output:
	// true
	// true
}

// The paper's central comparison: the same workload under snooping and
// directory coherence on the same ring. Snooping wins on miss latency
// because every transaction completes in exactly one ring traversal.
func ExampleRun_protocolComparison() {
	run := func(p repro.Protocol) *repro.Result {
		res, err := repro.Run(repro.Config{
			Protocol:  p,
			Benchmark: "MP3D",
			CPUs:      16,
		})
		if err != nil {
			panic(err)
		}
		return res
	}
	snoop := run(repro.SnoopRing)
	dir := run(repro.DirectoryRing)
	fmt.Println("snooping latency lower:", snoop.MissLatencyNS < dir.MissLatencyNS)
	fmt.Println("snooping loads ring more:", snoop.NetworkUtil > dir.NetworkUtil)
	// Output:
	// snooping latency lower: true
	// snooping loads ring more: true
}

// Table 3 is pure geometry and regenerates instantly: the snooping-rate
// constraint for the paper's default 32-bit, 16-byte-block ring is a
// probe every 20 ns per dual-directory bank.
func ExampleSuite_table3() {
	s := repro.NewSuite(repro.SuiteOptions{DataRefsPerCPU: 300})
	out := s.Table3()
	fmt.Println(len(out) > 0)
	// Output:
	// true
}
