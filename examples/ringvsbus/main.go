// ringvsbus reproduces the paper's Figure 6 story in miniature: a
// 32-bit slotted ring (500 MHz) against an aggressive 64-bit
// split-transaction bus (50 and 100 MHz), both under snooping, as
// processors get faster.
//
// The bus's fixed bandwidth saturates quickly for miss-heavy workloads:
// latency inflates and processor utilization collapses, while the ring
// stays below saturation across the whole sweep — the paper's argument
// that point-to-point rings, not buses, can keep up with future
// microprocessors.
package main

import (
	"fmt"
	"log"

	"repro"
)

func run(cfg repro.Config) *repro.Result {
	res, err := repro.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	const bench = "MP3D"
	const cpus = 16

	fmt.Printf("%s, %d CPUs: 500 MHz ring vs 50/100 MHz buses (snooping)\n\n", bench, cpus)
	fmt.Printf("%8s | %28s | %28s\n", "cycle", "proc util (ring/bus100/bus50)", "net util (ring/bus100/bus50)")
	fmt.Println("---------+------------------------------+-----------------------------")

	for _, cycleNS := range []float64{20, 10, 5, 2} {
		ring := run(repro.Config{
			Protocol: repro.SnoopRing, Benchmark: bench, CPUs: cpus,
			ProcCycleNS: cycleNS, RingMHz: 500,
		})
		bus100 := run(repro.Config{
			Protocol: repro.SnoopBus, Benchmark: bench, CPUs: cpus,
			ProcCycleNS: cycleNS, BusMHz: 100,
		})
		bus50 := run(repro.Config{
			Protocol: repro.SnoopBus, Benchmark: bench, CPUs: cpus,
			ProcCycleNS: cycleNS, BusMHz: 50,
		})
		fmt.Printf("%6.0fns | %7.1f%% %7.1f%% %7.1f%%    | %7.1f%% %7.1f%% %7.1f%%\n",
			cycleNS,
			100*ring.ProcUtil, 100*bus100.ProcUtil, 100*bus50.ProcUtil,
			100*ring.NetworkUtil, 100*bus100.NetworkUtil, 100*bus50.NetworkUtil)
	}

	fmt.Println("\nas processors speed up, the buses saturate (network utilization -> 100%)")
	fmt.Println("and their processor utilization collapses; the ring does not saturate.")
}
