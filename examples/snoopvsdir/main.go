// snoopvsdir reproduces the paper's central comparison (Section 4.2,
// Figure 3) in miniature: snooping versus full-map directory coherence
// on the same 500 MHz slotted ring, across processor speeds.
//
// The paper's finding — contrary to the early-90s common wisdom — is
// that snooping outperforms the directory for nearly all
// configurations, because directory transactions can need two ring
// traversals and an extra memory lookup, while every snooping
// transaction completes in exactly one traversal.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const bench = "MP3D"
	const cpus = 16

	fmt.Printf("%s, %d CPUs, 500 MHz 32-bit slotted ring\n\n", bench, cpus)
	fmt.Printf("%8s | %22s | %22s | %20s\n", "cycle", "proc util (snoop/dir)", "ring util (snoop/dir)", "miss lat (snoop/dir)")
	fmt.Println("---------+------------------------+------------------------+---------------------")

	for _, cycleNS := range []float64{20, 10, 5, 2} {
		row := map[repro.Protocol]*repro.Result{}
		for _, p := range []repro.Protocol{repro.SnoopRing, repro.DirectoryRing} {
			res, err := repro.Run(repro.Config{
				Protocol:    p,
				Benchmark:   bench,
				CPUs:        cpus,
				ProcCycleNS: cycleNS,
			})
			if err != nil {
				log.Fatal(err)
			}
			row[p] = res
		}
		sn, dir := row[repro.SnoopRing], row[repro.DirectoryRing]
		fmt.Printf("%6.0fns | %9.1f%% / %8.1f%% | %9.1f%% / %8.1f%% | %8.0f / %8.0f ns\n",
			cycleNS,
			100*sn.ProcUtil, 100*dir.ProcUtil,
			100*sn.NetworkUtil, 100*dir.NetworkUtil,
			sn.MissLatencyNS, dir.MissLatencyNS)
	}

	fmt.Println("\nsnooping loads the ring more (probes are broadcast) yet wins on")
	fmt.Println("latency: no transaction ever needs a second traversal.")
}
