// Quickstart: simulate the paper's headline machine — a 16-processor
// system on a 500 MHz slotted ring with the snooping protocol — running
// the MP3D workload, and print the three quantities every figure in the
// paper plots.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	res, err := repro.Run(repro.Config{
		Protocol:    repro.SnoopRing,
		Benchmark:   "MP3D",
		CPUs:        16,
		ProcCycleNS: 10, // 100 MIPS processors
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("MP3D on a 16-CPU, 500 MHz slotted ring (snooping protocol):")
	fmt.Printf("  processor utilization : %.1f %%\n", 100*res.ProcUtil)
	fmt.Printf("  ring slot utilization : %.1f %%\n", 100*res.NetworkUtil)
	fmt.Printf("  average miss latency  : %.0f ns\n", res.MissLatencyNS)
	fmt.Printf("  (simulated %.1f us of execution, %d misses, %d invalidations)\n",
		res.ExecTimeUS, res.Misses, res.Upgrades)
}
