// hierarchy explores the direction the paper's related work points at
// (Hector, KSR1): building a 64-processor machine as a two-level
// hierarchy of slotted rings instead of one long flat ring. The flat
// 64-node ring's circumference is ~400 ns — every snooping probe pays
// it — while an 8×8 hierarchy's local rings are ~60 ns around, and the
// inter-ring interfaces forward only the transactions that truly need
// another cluster.
package main

import (
	"fmt"

	"repro"
)

func main() {
	suite := repro.NewSuite(repro.SuiteOptions{DataRefsPerCPU: 1500, Seed: 7})

	fmt.Println("Flat 64-node slotted ring vs an 8x8 two-level hierarchy")
	fmt.Println("(snooping coherence; FFT, the 64-CPU benchmark with the most")
	fmt.Println("read-write sharing; 5 ns processors)")
	fmt.Println()
	fmt.Println(suite.ExtensionHierarchy("FFT", 64, 8))

	fmt.Println("The same comparison at 32 CPUs in 4 clusters (MP3D):")
	fmt.Println()
	fmt.Println(suite.ExtensionHierarchy("MP3D", 32, 4))

	fmt.Println("Reading the table: the hierarchy wins at 64 CPUs because the")
	fmt.Println("flat ring's full-circumference probes dominate miss latency;")
	fmt.Println("with cluster affinity in the workload, even less traffic")
	fmt.Println("crosses the global ring. This is why Hector and the KSR1")
	fmt.Println("chose ring hierarchies for exactly this scale.")
}
