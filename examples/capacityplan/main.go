// capacityplan answers the paper's Table 4 question for one design
// point using the full evaluation suite: how fast would a 64-bit
// split-transaction bus have to be clocked to match the processor
// utilization a 32-bit slotted ring delivers? It also prints the
// snooping-rate constraint (Table 3) that bounds how fast a snooping
// ring interface must be.
package main

import (
	"fmt"

	"repro"
)

func main() {
	suite := repro.NewSuite(repro.SuiteOptions{DataRefsPerCPU: 1500, Seed: 7})

	fmt.Println("How fast must a 64-bit bus be to match a 32-bit slotted ring?")
	fmt.Println("(Table 4; rows are benchmark/size, columns ring clock x CPU speed)")
	fmt.Println()
	fmt.Println(suite.Table4())

	fmt.Println("Snooper cost constraint: minimum probe inter-arrival per")
	fmt.Println("dual-directory bank (Table 3):")
	fmt.Println()
	fmt.Println(suite.Table3())

	fmt.Println("For context, today's (1993) high-speed buses run a 10-30 ns cycle:")
	fmt.Println("matching even an 8-CPU 500 MHz ring already demands 6-10 ns buses,")
	fmt.Println("and 32-CPU configurations are out of reach — the paper's conclusion.")
}
