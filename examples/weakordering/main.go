// weakordering makes the paper's closing argument executable
// (Section 6): latency-tolerance techniques such as weak ordering
// increase interconnect load because communication overlaps
// computation. On the slotted ring — whose miss latency is mostly pure
// propagation delay, with the network far from saturation — the
// overlap is absorbed and execution time improves. On a bus already
// running at its capacity, the same technique buys almost nothing.
package main

import (
	"fmt"

	"repro"
)

func main() {
	suite := repro.NewSuite(repro.SuiteOptions{DataRefsPerCPU: 3000, Seed: 11})

	fmt.Println("Where does the miss latency come from? (MP3D-16, 2 ns CPUs)")
	fmt.Println()
	fmt.Println(suite.LatencyDecomposition("MP3D", 16, 2))

	fmt.Println("The ring's latency is pure delay with the network underused —")
	fmt.Println("\"there is latency to be tolerated\" (Section 6). So tolerate it:")
	fmt.Println("retire stores through a write buffer (weak ordering) and keep")
	fmt.Println("executing. The ring absorbs the extra load; the bus cannot:")
	fmt.Println()
	fmt.Println(suite.AblationLatencyTolerance("MP3D", 16))
}
