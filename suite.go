package repro

import (
	"context"

	"repro/internal/core"
	"repro/internal/experiments"
)

// Suite runs the paper's full evaluation. It caches calibration
// simulations, so regenerating several tables and figures shares work.
// The zero value is not usable; construct with NewSuite.
type Suite struct {
	r *experiments.Runner
}

// SuiteOptions scales the evaluation.
type SuiteOptions struct {
	// Context cancels in-flight calibration sweeps (e.g. on SIGINT);
	// nil means context.Background().
	Context context.Context
	// DataRefsPerCPU is the calibration-simulation length per
	// processor (default 2000). Larger values cost time and tighten
	// the statistics.
	DataRefsPerCPU int
	// Seed makes the whole suite reproducible (default fixed).
	Seed uint64
	// Workers sizes the simulation worker pool (default
	// runtime.NumCPU()). Results are identical for any worker count.
	Workers int
	// CacheDir, when set, persists simulation results to a
	// content-addressed on-disk cache, so a rerun of the suite replays
	// instead of recomputing.
	CacheDir string
	// Parallel requests partitioned parallel execution of each covered
	// calibration simulation; uncovered configurations (all the shared
	// Table 2 workloads) fall back to sequential with identical
	// results, so the suite's output never depends on this knob.
	Parallel int
}

// NewSuite returns an evaluation suite.
func NewSuite(opts SuiteOptions) *Suite {
	return &Suite{r: experiments.NewRunner(experiments.Options{
		Context:        opts.Context,
		DataRefsPerCPU: opts.DataRefsPerCPU,
		Seed:           opts.Seed,
		Workers:        opts.Workers,
		CacheDir:       opts.CacheDir,
		Parallel:       opts.Parallel,
	})}
}

// SweepStats is the suite's work accounting: how many calibration
// simulations ran, how many were served from the memoization cache,
// and the aggregate simulation throughput.
type SweepStats struct {
	// Workers is the worker-pool size.
	Workers int `json:"workers"`
	// Done counts finished jobs (including cache hits); CacheHits,
	// DiskHits, Computed and Errors partition it.
	Done      int `json:"done"`
	CacheHits int `json:"cache_hits"`
	DiskHits  int `json:"disk_hits"`
	Computed  int `json:"computed"`
	Errors    int `json:"errors"`
	// ExecWallNS is total wall clock spent computing jobs (summed
	// across workers); MeanJobWallNS is the mean per computed job.
	ExecWallNS    int64 `json:"exec_wall_ns"`
	MeanJobWallNS int64 `json:"mean_job_wall_ns"`
	// SimulatedNS is total simulated time produced; SimNSPerSec is
	// simulated nanoseconds per wall-clock second of execution.
	SimulatedNS int64   `json:"simulated_ns"`
	SimNSPerSec float64 `json:"sim_ns_per_sec"`
	// EventsFired is total kernel events dispatched by computed jobs;
	// EventsPerSec is the dispatch rate over execution wall clock.
	EventsFired  uint64  `json:"events_fired"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// SweepStats snapshots the suite's simulation-engine counters.
func (s *Suite) SweepStats() SweepStats {
	st := s.r.SweepStats()
	return SweepStats{
		Workers:       st.Workers,
		Done:          st.Done,
		CacheHits:     st.CacheHits,
		DiskHits:      st.DiskHits,
		Computed:      st.Computed,
		Errors:        st.Errors,
		ExecWallNS:    st.ExecWall.Nanoseconds(),
		MeanJobWallNS: st.MeanJobWall.Nanoseconds(),
		SimulatedNS:   st.SimulatedPS / 1000,
		SimNSPerSec:   st.SimNSPerSec,
		EventsFired:   st.EventsFired,
		EventsPerSec:  st.EventsPerSec,
	}
}

// Table1 renders the ring-traversal distribution comparison (full-map
// vs linked-list directory) for the 16-CPU SPLASH benchmarks.
func (s *Suite) Table1() string { return s.r.Table1().String() }

// Table2 renders the synthetic-workload characteristics next to the
// paper's Table 2 targets.
func (s *Suite) Table2() string { return s.r.Table2().String() }

// Table3 renders the snooping-rate geometry table.
func (s *Suite) Table3() string { return s.r.Table3().String() }

// Table4 renders the bus-clock-to-match-ring table.
func (s *Suite) Table4() string { return s.r.Table4().String() }

// Figure3 renders the three panels (processor utilization, ring
// utilization, miss latency vs processor cycle) comparing snooping and
// directory protocols for one SPLASH benchmark at 8/16/32 CPUs.
func (s *Suite) Figure3(bench string) string {
	p := s.r.Figure3(bench)
	return p.ProcUtil.String() + "\n" + p.NetUtil.String() + "\n" + p.MissLatency.String()
}

// Figure4 renders the same panels for the 64-CPU benchmarks.
func (s *Suite) Figure4() string {
	p := s.r.Figure4()
	return p.ProcUtil.String() + "\n" + p.NetUtil.String() + "\n" + p.MissLatency.String()
}

// Figure5 renders the directory-protocol miss breakdown (1-cycle clean
// / 1-cycle dirty / 2-cycle) for every benchmark and size.
func (s *Suite) Figure5() string { return s.r.Figure5().String() }

// Figure6 renders the ring-vs-bus panels for one benchmark and size.
func (s *Suite) Figure6(bench string, cpus int) string {
	p := s.r.Figure6(bench, cpus)
	return p.ProcUtil.String() + "\n" + p.NetUtil.String() + "\n" + p.MissLatency.String()
}

// Validation renders the model-vs-simulation accuracy check for one
// benchmark and size (the paper claims 15 % on latencies, 5 % on
// utilizations).
func (s *Suite) Validation(bench string, cpus int) string {
	return s.r.Validation(bench, cpus).String()
}

// AblationSlotMix renders the probe/block slot-mix ablation.
func (s *Suite) AblationSlotMix(bench string, cpus int) string {
	return s.r.AblationSlotMix(bench, cpus).String()
}

// AblationStarvationRule renders the anti-starvation rule ablation.
func (s *Suite) AblationStarvationRule(bench string, cpus int) string {
	return s.r.AblationStarvationRule(bench, cpus).String()
}

// AblationWideRing renders the 64-bit ring ablation.
func (s *Suite) AblationWideRing(bench string, cpus int) string {
	return s.r.AblationWideRing(bench, cpus).String()
}

// AblationAccessControl renders the slotted vs register-insertion vs
// token-ring comparison.
func (s *Suite) AblationAccessControl(nodes int) string {
	return experiments.AblationAccessControlTable(nodes).String()
}

// SnoopVsDirectory returns the two protocols' simulated results for one
// benchmark at the calibration point — a quick programmatic check of
// the paper's headline comparison.
func (s *Suite) SnoopVsDirectory(bench string, cpus int) (snoop, directory Result) {
	_, ms := s.r.Simulate(core.SnoopRing, bench, cpus)
	_, md := s.r.Simulate(core.DirectoryRing, bench, cpus)
	conv := func(m *core.Metrics) Result {
		return Result{
			ProcUtil:       m.ProcUtil(),
			NetworkUtil:    m.NetworkUtil,
			MissLatencyNS:  m.MissLatency.Value(),
			InvLatencyNS:   m.InvLatency.Value(),
			ExecTimeUS:     m.ExecTime.Nanoseconds() / 1000,
			SharedMissRate: m.SharedMissRate(),
			TotalMissRate:  m.TotalMissRate(),
			Misses:         m.SharedMisses + m.PrivateMisses,
			Upgrades:       m.Upgrades,
		}
	}
	return conv(ms), conv(md)
}

// AblationLatencyTolerance renders the weak-ordering (non-blocking
// stores) comparison between ring and bus — the paper's Section 6
// argument made executable.
func (s *Suite) AblationLatencyTolerance(bench string, cpus int) string {
	return s.r.AblationLatencyToleranceTable(bench, cpus).String()
}

// LatencyDecomposition renders the contention-vs-pure-delay split of
// miss latency for ring and bus at one processor speed (Section 6's
// "there is latency to be tolerated despite the network being
// underutilized").
func (s *Suite) LatencyDecomposition(bench string, cpus, cycleNS int) string {
	return s.r.LatencyDecompositionTable(bench, cpus, cycleNS).String()
}

// ExtensionHierarchy renders the hierarchical-ring extension
// comparison: flat ring vs a cluster hierarchy at two workload
// localities (the Hector/KSR1 direction of the paper's related work).
func (s *Suite) ExtensionHierarchy(bench string, cpus, clusters int) string {
	return s.r.ExtensionHierarchyTable(bench, cpus, clusters).String()
}

// Figure3Plot renders Figure 3's panels as ASCII line charts.
func (s *Suite) Figure3Plot(bench string) string {
	return s.r.Figure3(bench).Plot(64, 16)
}

// Figure4Plot renders Figure 4's panels as ASCII line charts.
func (s *Suite) Figure4Plot() string {
	return s.r.Figure4().Plot(64, 16)
}

// Figure6Plot renders Figure 6's panels as ASCII line charts.
func (s *Suite) Figure6Plot(bench string, cpus int) string {
	return s.r.Figure6(bench, cpus).Plot(64, 16)
}

// AblationBlockSize renders the cache/ring block-size sweep.
func (s *Suite) AblationBlockSize(bench string, cpus int) string {
	return s.r.AblationBlockSizeTable(bench, cpus).String()
}

// AblationMultitasking renders the context-switch quantum sweep (the
// "context of multitasking" the paper's abstract frames the study in).
func (s *Suite) AblationMultitasking(bench string, cpus int) string {
	return s.r.AblationMultitaskingTable(bench, cpus).String()
}

// ExtensionHierarchyFigure renders a model-based processor-speed sweep
// comparing the flat ring against the cluster hierarchy, as ASCII
// panels.
func (s *Suite) ExtensionHierarchyFigure(bench string, cpus, clusters int) string {
	return s.r.ExtensionHierarchyFigure(bench, cpus, clusters).Plot(64, 16)
}
