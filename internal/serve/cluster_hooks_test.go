package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sweep"
)

// TestResultLookupFallback: on a local miss, GET /v1/results/{hash}
// consults Options.LookupFallback (the cluster peer-fetch seam) and
// serves what it returns; misses everywhere remain 404.
func TestResultLookupFallback(t *testing.T) {
	fake := &fakeExecutor{}
	eng := sweep.New(sweep.Options{Workers: 1, Executors: map[string]sweep.Executor{"": fake.run}})

	// Fabricate the result "a peer computed": run it through a separate
	// engine so it has real bytes, but keep eng itself cold.
	peerEng := sweep.New(sweep.Options{Workers: 1, Executors: map[string]sweep.Executor{"": fake.run}})
	peerRes, err := peerEng.RunOne(testJob(11))
	if err != nil {
		t.Fatal(err)
	}

	var calls int
	_, ts := newTestServer(t, fake, Options{
		Engine: eng,
		LookupFallback: func(ctx context.Context, hash string) (*sweep.Result, sweep.Source, bool) {
			calls++
			if hash == peerRes.Hash {
				return peerRes, sweep.SourcePeer, true
			}
			return nil, sweep.SourceComputed, false
		},
	})

	resp, err := http.Get(ts.URL + "/v1/results/" + peerRes.Hash)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via fallback", resp.StatusCode)
	}
	var jr JobResult
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if jr.Hash != peerRes.Hash || jr.Source != "peer" {
		t.Errorf("got hash %s source %q, want %s / peer", jr.Hash, jr.Source, peerRes.Hash)
	}
	if calls != 1 {
		t.Errorf("fallback called %d times, want 1", calls)
	}

	// A hash no tier holds is still a clean 404.
	miss := testJob(12).Normalize().Hash()
	resp2, err := http.Get(ts.URL + "/v1/results/" + miss)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("miss status %d, want 404", resp2.StatusCode)
	}
	if calls != 2 {
		t.Errorf("fallback called %d times after miss, want 2", calls)
	}
}

// TestExtraMetricsAppended: Options.ExtraMetrics series render on
// /metrics after the built-in registry (the coordinator uses this for
// the ringsim_cluster_* family).
func TestExtraMetricsAppended(t *testing.T) {
	fake := &fakeExecutor{}
	_, ts := newTestServer(t, fake, Options{
		ExtraMetrics: func(w io.Writer) {
			fmt.Fprintln(w, "ringsim_cluster_workers{state=\"live\"} 2")
		},
	})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `ringsim_cluster_workers{state="live"} 2`) {
		t.Error("/metrics does not carry ExtraMetrics series")
	}
	if !strings.Contains(string(body), "ringsim_serve_requests_total") {
		t.Error("/metrics lost the built-in serving series")
	}
}

// TestUnavailableExecutorReturns503: an executor failing with
// sweep.ErrUnavailable (a cluster with no live workers) is the
// substrate's fault, so submissions answer 503, not 400.
func TestUnavailableExecutorReturns503(t *testing.T) {
	unavailable := func(j sweep.Job) (*core.Metrics, error) {
		return nil, fmt.Errorf("cluster: no live workers: %w", sweep.ErrUnavailable)
	}
	eng := sweep.New(sweep.Options{Workers: 1, Executors: map[string]sweep.Executor{"": unavailable}})
	_, ts := newTestServer(t, nil, Options{Engine: eng})

	resp, body := postJob(t, ts.URL, testJob(21), "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503: %s", resp.StatusCode, body)
	}
}
