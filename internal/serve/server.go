// Package serve is the simulation-as-a-service layer: an HTTP/JSON
// front end over the sweep engine. Clients submit simulation points
// (single jobs, batches, or named paper experiments); the server
// schedules them through a shared engine, so concurrent clients get
// the same singleflight and memoization economics a single sweep does
// — identical jobs compute once, repeats are cache hits, results are
// addressable by job content hash.
//
// The layer adds what a network service needs on top: bounded
// admission with weighted deficit-round-robin fair queueing across
// tenants and FCFS or shortest-job-first order within one (429 on
// overflow, with Retry-After), API-key authentication with per-tenant
// rate limits, quotas, and usage metering, per-request deadlines
// propagated as context cancellation into the engine (504 on expiry),
// idempotent GET-by-hash lookup backed by the on-disk cache,
// Server-Sent-Events progress streaming, Prometheus metrics, and
// graceful drain.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/obs/reqtrace"
	olog "repro/internal/obs/slog"
	"repro/internal/sweep"
	"repro/internal/tenant"
)

// Options configures a Server.
type Options struct {
	// Engine is the shared sweep engine; nil constructs a default one.
	Engine *sweep.Engine
	// QueueDepth bounds the admission queue (default 64); requests
	// beyond it receive 429.
	QueueDepth int
	// MaxInFlight bounds concurrently executing requests (default
	// runtime.NumCPU()). Simulation concurrency is bounded separately:
	// however many requests hold slots, the shared engine executes at
	// most Engine.Workers jobs at once, so MaxInFlight x Workers never
	// oversubscribes the host.
	MaxInFlight int
	// Discipline selects the admission queue's service order.
	Discipline Discipline
	// MaxDeadline caps client-requested deadlines (default 2 minutes).
	MaxDeadline time.Duration
	// LookupFallback, when set, extends GET /v1/results/{hash} beyond
	// the engine's caches: on a local miss the handler consults it with
	// the request context (a cluster node uses it to fetch the result
	// from its peers). It must never compute.
	LookupFallback func(ctx context.Context, hash string) (*sweep.Result, sweep.Source, bool)
	// ExtraMetrics, when set, is invoked at the end of /metrics to
	// append additional exposition-format series (e.g. the cluster
	// coordinator's ringsim_cluster_* family).
	ExtraMetrics func(w io.Writer)
	// Tenants is the tenant registry behind API-key authentication,
	// rate limits, quotas, and fair-queue weights. Nil means an
	// anonymous single-tenant registry: no keys, no limits — exactly
	// the pre-multi-tenant behavior.
	Tenants *tenant.Registry
	// ReqTracer records request-scoped span trees (admission, engine
	// run, cluster dispatch, cache lookup) retrievable via GET
	// /v1/requests/{id}/trace. Nil turns span recording off; request
	// IDs are still issued and echoed, because error correlation is
	// part of the API contract, not an observability option.
	ReqTracer *reqtrace.Tracer
	// Logger emits structured request logs (one JSON line per
	// request, tagged with request ID, tenant, and job hash). Nil
	// discards.
	Logger *olog.Logger
	// ClusterStatus, when set, backs GET /v1/cluster/status — the
	// coordinator supplies its membership/dispatch view here. Nil
	// answers 404 (this node is not a coordinator).
	ClusterStatus func() any
	// FederateMetrics, when set, backs GET /v1/cluster/metrics: it
	// receives a renderer for this server's own exposition and must
	// write the merged, worker-labeled fleet exposition. Nil answers
	// 404.
	FederateMetrics func(ctx context.Context, self func(io.Writer), w io.Writer)
}

// Server is the HTTP serving layer. Construct with New; it is safe
// for concurrent use.
type Server struct {
	eng         *sweep.Engine
	adm         *admitter
	met         *metricsRegistry
	tenants     *tenant.Registry
	mux         *http.ServeMux
	maxDeadline time.Duration
	fallback    func(ctx context.Context, hash string) (*sweep.Result, sweep.Source, bool)
	extraMet    func(w io.Writer)
	rt          *reqtrace.Tracer
	log         *olog.Logger
	cstatus     func() any
	federate    func(ctx context.Context, self func(io.Writer), w io.Writer)
	start       time.Time

	drainOnce sync.Once
	drainCh   chan struct{}
}

// New returns a Server over the engine.
func New(opts Options) *Server {
	eng := opts.Engine
	if eng == nil {
		eng = sweep.New(sweep.Options{})
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	inflight := opts.MaxInFlight
	if inflight <= 0 {
		inflight = runtime.NumCPU()
	}
	maxDeadline := opts.MaxDeadline
	if maxDeadline <= 0 {
		maxDeadline = 2 * time.Minute
	}
	reg := opts.Tenants
	if reg == nil {
		reg = tenant.NewAnonymous()
	}
	lg := opts.Logger
	if lg == nil {
		lg = olog.Nop()
	}
	s := &Server{
		eng:         eng,
		adm:         newAdmitter(inflight, depth, opts.Discipline),
		met:         newMetricsRegistry(),
		tenants:     reg,
		mux:         http.NewServeMux(),
		maxDeadline: maxDeadline,
		fallback:    opts.LookupFallback,
		extraMet:    opts.ExtraMetrics,
		rt:          opts.ReqTracer,
		log:         lg,
		cstatus:     opts.ClusterStatus,
		federate:    opts.FederateMetrics,
		start:       time.Now(),
		drainCh:     make(chan struct{}),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.instrument("jobs", s.withTenant(s.handleJob)))
	s.mux.HandleFunc("POST /v1/sweeps", s.instrument("sweeps", s.withTenant(s.handleSweep)))
	s.mux.HandleFunc("GET /v1/experiments", s.instrument("experiments", s.withTenant(s.handleExperimentList)))
	s.mux.HandleFunc("POST /v1/experiments/{name}", s.instrument("experiments", s.withTenant(s.handleExperiment)))
	s.mux.HandleFunc("GET /v1/results/{hash}", s.instrument("results", s.withTenant(s.handleResult)))
	s.mux.HandleFunc("GET /v1/results/{hash}/trace", s.instrument("trace", s.withTenant(s.handleResultTrace)))
	s.mux.HandleFunc("GET /v1/events", s.instrument("events", s.withTenant(s.handleEvents)))
	s.mux.HandleFunc("GET /v1/usage", s.instrument("usage", s.withTenant(s.handleUsage)))
	s.mux.HandleFunc("GET /v1/requests/{id}/trace", s.instrument("reqtrace", s.withTenant(s.handleRequestTrace)))
	s.mux.HandleFunc("GET /v1/cluster/status", s.instrument("cluster", s.handleClusterStatus))
	s.mux.HandleFunc("GET /v1/cluster/metrics", s.instrument("clustermetrics", s.handleClusterMetrics))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	return s
}

// tenantCtxKey carries the authenticated tenant through the request
// context.
type tenantCtxKey struct{}

// bearerKey extracts the client's API key: the Authorization Bearer
// token, or the api_key query parameter as a fallback for clients
// that cannot set headers (EventSource). Empty means anonymous.
func bearerKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if key, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(key)
		}
		return h // a malformed scheme fails authentication below
	}
	return r.URL.Query().Get("api_key")
}

// withTenant authenticates the request against the tenant registry
// and stores the tenant record in the request context. Unknown keys
// answer 401; so does a missing key when anonymous access is off.
func (s *Server) withTenant(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sp := s.rt.StartChild(reqtrace.SpanObj(r.Context()), "auth")
		tn, err := s.tenants.Authenticate(bearerKey(r))
		if err != nil {
			sp.SetAttr("outcome", "unauthorized")
			sp.End()
			w.Header().Set("WWW-Authenticate", `Bearer realm="ringsim"`)
			errorCtx(r.Context(), w, http.StatusUnauthorized, "%v", err)
			return
		}
		sp.SetAttr("tenant", tn.ID)
		sp.End()
		metaFrom(r.Context()).set(tn.ID, "")
		h(w, r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, tn)))
	}
}

// tenantFrom recovers the authenticated tenant; handlers reached
// outside withTenant fall back to anonymous.
func tenantFrom(ctx context.Context) tenant.Tenant {
	if tn, ok := ctx.Value(tenantCtxKey{}).(tenant.Tenant); ok {
		return tn
	}
	return tenant.Tenant{ID: tenant.AnonymousID, Weight: 1}
}

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Engine returns the shared sweep engine.
func (s *Server) Engine() *sweep.Engine { return s.eng }

// BeginDrain stops admitting new work: submissions receive 503 and
// event streams close. Queued and in-flight requests run to
// completion. Safe to call more than once.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() {
		s.log.Info("drain begin")
		s.adm.beginDrain()
		close(s.drainCh)
	})
}

// Drain blocks until every admitted request has finished, or the
// context dies.
func (s *Server) Drain(ctx context.Context) error { return s.adm.drainWait(ctx) }

func (s *Server) draining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// statusWriter captures the response code for metrics. It deliberately
// does not implement http.Flusher itself: instead it exposes Unwrap so
// http.NewResponseController (and canFlush) reach the underlying
// writer's Flush — a writer that cannot flush stays detectable.
type statusWriter struct {
	http.ResponseWriter
	code int
}

// Unwrap exposes the wrapped writer for http.NewResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// canFlush walks the Unwrap chain looking for a writer that really
// implements http.Flusher, so the SSE endpoint can refuse up front
// instead of buffering forever behind a non-flushing wrapper.
func canFlush(w http.ResponseWriter) bool {
	for {
		switch v := w.(type) {
		case http.Flusher:
			return true
		case interface{ Unwrap() http.ResponseWriter }:
			w = v.Unwrap()
		default:
			return false
		}
	}
}

// reqMeta is the mutable per-request record instrument shares with
// the layers below it: middlewares and handlers fill in what they
// learn (who the tenant is, which job hash ran) and instrument folds
// it into the request's structured log line after the handler returns.
type reqMeta struct {
	mu      sync.Mutex
	tenant  string
	jobHash string
}

type reqMetaKey struct{}

func metaFrom(ctx context.Context) *reqMeta {
	m, _ := ctx.Value(reqMetaKey{}).(*reqMeta)
	return m
}

func (m *reqMeta) set(tenant, jobHash string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if tenant != "" {
		m.tenant = tenant
	}
	if jobHash != "" {
		m.jobHash = jobHash
	}
	m.mu.Unlock()
}

func (m *reqMeta) get() (tenant, jobHash string) {
	if m == nil {
		return "", ""
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tenant, m.jobHash
}

// instrument wraps a handler with the request-scoped observability
// envelope: a request ID (client-supplied via X-Ringsim-Request when
// well-formed, minted otherwise) echoed on the response and carried
// down the context, a root trace span on API endpoints, latency and
// status-code accounting, and one structured log line per request.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	// Scrape and liveness endpoints are polled forever by machines;
	// tracing and logging them would drown the signal in probes.
	quiet := endpoint == "metrics" || endpoint == "healthz" || endpoint == "clustermetrics"
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		begin := time.Now()

		reqID := r.Header.Get(reqtrace.HeaderRequest)
		if !reqtrace.ValidID(reqID) {
			reqID = s.rt.NewTraceID()
		}
		w.Header().Set(reqtrace.HeaderRequest, reqID)
		meta := &reqMeta{}
		ctx := context.WithValue(r.Context(), reqMetaKey{}, meta)
		ctx = reqtrace.WithRequestID(ctx, reqID)
		var root *reqtrace.Span
		if !quiet {
			root = s.rt.StartRoot(reqID, endpoint)
			root.SetAttr("method", r.Method)
			ctx = reqtrace.WithSpan(ctx, root)
		}
		r = r.WithContext(ctx)

		h(sw, r)

		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		dur := time.Since(begin)
		root.SetAttr("status", strconv.Itoa(sw.code))
		root.End()
		s.met.observe(endpoint, sw.code, dur)
		if !quiet {
			// Per-request access lines are debug-level: at cache-hit
			// serving rates an always-on line would dominate the request
			// cost (see BENCH_8). Failures escalate so operators see them
			// at the production (info/warn) level.
			level := slog.LevelDebug
			switch {
			case sw.code >= 500:
				level = slog.LevelWarn
			case sw.code >= 400:
				level = slog.LevelInfo
			}
			if s.log.Enabled(r.Context(), level) {
				tn, hash := meta.get()
				attrs := []any{
					olog.KeyRequest, reqID,
					"endpoint", endpoint,
					"method", r.Method,
					"status", sw.code,
					"dur_ms", float64(dur.Microseconds()) / 1000,
				}
				if tn != "" {
					attrs = append(attrs, olog.KeyTenant, tn)
				}
				if hash != "" {
					attrs = append(attrs, olog.KeyJobHash, hash)
				}
				s.log.Log(r.Context(), level, "request", attrs...)
			}
		}
	}
}

// errorBody is the uniform error envelope. RequestID correlates the
// rejection with its trace and log lines — clients quote it back, and
// GET /v1/requests/{id}/trace explains what happened to the request.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError answers an error without request context (used only
// where no request flows, e.g. tests); handlers use errorCtx so every
// error body carries the request ID.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// errorCtx answers an error tagged with the request ID carried by ctx.
func errorCtx(ctx context.Context, w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{
		Error:     fmt.Sprintf(format, args...),
		RequestID: reqtrace.RequestID(ctx),
	})
}

// requestContext derives the job context: the client's disconnect
// context plus an optional deadline from ?deadline_ms= or the
// X-Deadline-Ms header, capped at Options.MaxDeadline.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	raw := r.URL.Query().Get("deadline_ms")
	if raw == "" {
		raw = r.Header.Get("X-Deadline-Ms")
	}
	if raw == "" {
		ctx, cancel := context.WithCancel(r.Context())
		return ctx, cancel, nil
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || ms <= 0 {
		return nil, nil, fmt.Errorf("bad deadline_ms %q: want a positive integer", raw)
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.maxDeadline {
		d = s.maxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// JobResult is one job's serialized outcome.
type JobResult struct {
	Hash    string                `json:"hash"`
	Job     sweep.Job             `json:"job"`
	Source  string                `json:"source"`
	Cached  bool                  `json:"cached"`
	Summary sweep.Summary         `json:"summary"`
	Metrics *core.MetricsSnapshot `json:"metrics,omitempty"`
}

func jobResult(res *sweep.Result, src sweep.Source, full bool) JobResult {
	jr := JobResult{
		Hash:    res.Hash,
		Job:     res.Job,
		Source:  src.String(),
		Cached:  src != sweep.SourceComputed,
		Summary: res.Summary(),
	}
	if full {
		snap := res.Snapshot
		jr.Metrics = &snap
	}
	return jr
}

// SweepResponse is the batch (and named-experiment) response.
type SweepResponse struct {
	Experiment string      `json:"experiment,omitempty"`
	Jobs       int         `json:"jobs"`
	Computed   int         `json:"computed"`
	CacheHits  int         `json:"cache_hits"`
	DiskHits   int         `json:"disk_hits"`
	WallNS     int64       `json:"wall_ns"`
	Results    []JobResult `json:"results"`
}

// jobCost estimates one job's work for the shortest-job discipline:
// simulated references scale with processors times stream length.
func jobCost(jobs []sweep.Job) int64 {
	var cost int64
	for _, j := range jobs {
		j = j.Normalize()
		cost += int64(j.CPUs) * int64(j.DataRefsPerCPU)
	}
	return cost
}

// rejectBusy answers 429 with a Retry-After hint: the tenant's token
// refill interval when it has a configured rate, else one second.
func (s *Server) rejectBusy(ctx context.Context, w http.ResponseWriter, tn tenant.Tenant, format string, args ...any) {
	retry := s.tenants.RefillInterval(tn.ID)
	if retry <= 0 {
		retry = time.Second
	}
	w.Header().Set("Retry-After", retryAfterHeader(retry))
	s.tenants.Record(tn.ID, tenant.Usage{Rejected: 1})
	errorCtx(ctx, w, http.StatusTooManyRequests, format, args...)
}

// runAdmitted schedules jobs through the tenant's rate limit,
// admission control, and the engine, honoring ctx as the request
// deadline. The engine call runs in its own goroutine: when the
// deadline fires mid-run the handler answers 504 immediately while
// undispatched jobs are cancelled and in-progress ones finish into
// the cache (work conservation). Accepted work is metered against the
// tenant whether it succeeds or errors.
func (s *Server) runAdmitted(ctx context.Context, w http.ResponseWriter, tn tenant.Tenant, jobs []sweep.Job) ([]*sweep.Result, []sweep.Source, bool) {
	// The admit span covers the whole admission pipeline: rate check,
	// then DRR queue wait — its duration is the queue-wait time, its
	// outcome says which gate refused (or that the grant happened).
	admitSpan := s.rt.StartChild(reqtrace.SpanObj(ctx), "admit")
	admitSpan.SetAttr("tenant", tn.ID)
	admitSpan.SetAttr("jobs", strconv.Itoa(len(jobs)))
	reject := func(outcome string) {
		admitSpan.SetAttr("outcome", outcome)
		admitSpan.End()
	}
	if ok, retry := s.tenants.Acquire(tn.ID); !ok {
		reject("rate_limited")
		w.Header().Set("Retry-After", retryAfterHeader(retry))
		s.tenants.Record(tn.ID, tenant.Usage{RateLimited: 1})
		errorCtx(ctx, w, http.StatusTooManyRequests, "tenant %q rate limited; retry in %s", tn.ID, retryAfterHeader(retry)+"s")
		return nil, nil, false
	}
	begin := time.Now()
	release, err := s.adm.admit(ctx, limitsFor(tn), jobCost(jobs))
	if err != nil {
		var aerr *AdmitError
		switch {
		case errors.Is(err, ErrQueueFull) && errors.As(err, &aerr):
			// The depth is the one captured at the instant of rejection,
			// not a later gauge read racing other requests.
			reject("queue_full")
			s.rejectBusy(ctx, w, tn, "admission queue full (%d queued)", aerr.Queued)
		case errors.Is(err, ErrTenantQuota) && errors.As(err, &aerr):
			reject("tenant_quota")
			s.rejectBusy(ctx, w, tn, "tenant %q admission quota exhausted (%d queued)", tn.ID, aerr.Queued)
		case errors.Is(err, ErrDraining):
			reject("draining")
			w.Header().Set("Retry-After", "1")
			errorCtx(ctx, w, http.StatusServiceUnavailable, "server draining")
		case errors.Is(err, context.DeadlineExceeded):
			reject("deadline")
			errorCtx(ctx, w, http.StatusGatewayTimeout, "deadline expired while queued; job cancelled")
		default:
			reject("error")
			errorCtx(ctx, w, http.StatusServiceUnavailable, "admission: %v", err)
		}
		return nil, nil, false
	}
	admitSpan.SetAttr("outcome", "granted")
	admitSpan.End()

	// Tag provenance after admission: both fields are hash- and
	// serialization-exempt, so identical jobs from different tenants
	// (or traced vs untraced runs) still collapse to one cache entry.
	// The run span parents everything the engine does for this request
	// — including coordinator dispatch and worker execution across the
	// cluster hop, which pick the context up from Job.TraceParent.
	runSpan := s.rt.StartChild(reqtrace.SpanObj(ctx), "run")
	traceParent := runSpan.Context().String()
	for i := range jobs {
		jobs[i].Tenant = tn.ID
		jobs[i].TraceParent = traceParent
	}

	type outcome struct {
		results []*sweep.Result
		sources []sweep.Source
		err     error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer release()
		results, sources, err := s.eng.RunEach(ctx, jobs)
		ch <- outcome{results, sources, err}
	}()

	endRun := func(outcome string) {
		runSpan.SetAttr("outcome", outcome)
		runSpan.End()
	}
	select {
	case o := <-ch:
		switch {
		case errors.Is(o.err, context.DeadlineExceeded):
			endRun("deadline")
			s.tenants.Record(tn.ID, tenant.Usage{Errors: 1, WallNS: time.Since(begin).Nanoseconds()})
			errorCtx(ctx, w, http.StatusGatewayTimeout, "deadline exceeded; undispatched jobs cancelled")
			return nil, nil, false
		case errors.Is(o.err, context.Canceled):
			// Client went away; nothing useful to write.
			endRun("canceled")
			s.tenants.Record(tn.ID, tenant.Usage{Errors: 1, WallNS: time.Since(begin).Nanoseconds()})
			return nil, nil, false
		case errors.Is(o.err, sweep.ErrUnavailable):
			// The substrate, not the request, is at fault (e.g. the
			// cluster has no live workers): retryable, so 503 with a
			// retry hint.
			endRun("unavailable")
			s.tenants.Record(tn.ID, tenant.Usage{Errors: 1, WallNS: time.Since(begin).Nanoseconds()})
			w.Header().Set("Retry-After", "1")
			errorCtx(ctx, w, http.StatusServiceUnavailable, "%v", o.err)
			return nil, nil, false
		case o.err != nil:
			endRun("error")
			s.tenants.Record(tn.ID, tenant.Usage{Errors: 1, WallNS: time.Since(begin).Nanoseconds()})
			errorCtx(ctx, w, http.StatusBadRequest, "%v", o.err)
			return nil, nil, false
		}
		u := tenant.Usage{Jobs: uint64(len(jobs)), WallNS: time.Since(begin).Nanoseconds()}
		for i, src := range o.sources {
			switch src {
			case sweep.SourceMemory:
				u.CacheHits++
			case sweep.SourceDisk:
				u.DiskHits++
			default:
				u.Computed++
				// Simulated time consumed by fresh computation, in ps.
				u.SimulatedPS += int64(o.results[i].Summary().ExecTimeUS * 1e6)
			}
		}
		runSpan.SetAttr("computed", strconv.FormatUint(u.Computed, 10))
		runSpan.SetAttr("cache_hits", strconv.FormatUint(u.CacheHits+u.DiskHits, 10))
		if len(o.results) == 1 {
			runSpan.SetAttr("hash", o.results[0].Hash)
			metaFrom(ctx).set("", o.results[0].Hash)
		}
		endRun("ok")
		s.tenants.Record(tn.ID, u)
		return o.results, o.sources, true
	case <-ctx.Done():
		// The engine keeps draining in the background; its release fires
		// when the last in-progress job completes.
		endRun("deadline")
		s.tenants.Record(tn.ID, tenant.Usage{Errors: 1, WallNS: time.Since(begin).Nanoseconds()})
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			errorCtx(ctx, w, http.StatusGatewayTimeout, "deadline exceeded; undispatched jobs cancelled")
		}
		return nil, nil, false
	}
}

// handleJob serves POST /v1/jobs: one simulation point.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	var job sweep.Job
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&job); err != nil {
		errorCtx(r.Context(), w, http.StatusBadRequest, "bad job: %v", err)
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		errorCtx(r.Context(), w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	results, sources, ok := s.runAdmitted(ctx, w, tenantFrom(r.Context()), []sweep.Job{job})
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, jobResult(results[0], sources[0], r.URL.Query().Get("full") == "1"))
}

// sweepRequest is the batch submission body.
type sweepRequest struct {
	Jobs []sweep.Job `json:"jobs"`
}

// handleSweep serves POST /v1/sweeps: a batch of points.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		errorCtx(r.Context(), w, http.StatusBadRequest, "bad sweep: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		errorCtx(r.Context(), w, http.StatusBadRequest, "sweep has no jobs")
		return
	}
	s.serveSweep(w, r, "", req.Jobs)
}

func (s *Server) serveSweep(w http.ResponseWriter, r *http.Request, name string, jobs []sweep.Job) {
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		errorCtx(r.Context(), w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	begin := time.Now()
	results, sources, ok := s.runAdmitted(ctx, w, tenantFrom(r.Context()), jobs)
	if !ok {
		return
	}
	resp := SweepResponse{
		Experiment: name,
		Jobs:       len(jobs),
		WallNS:     time.Since(begin).Nanoseconds(),
	}
	full := r.URL.Query().Get("full") == "1"
	for i, res := range results {
		switch sources[i] {
		case sweep.SourceMemory:
			resp.CacheHits++
		case sweep.SourceDisk:
			resp.DiskHits++
		default:
			resp.Computed++
		}
		resp.Results = append(resp.Results, jobResult(res, sources[i], full))
	}
	writeJSON(w, http.StatusOK, resp)
}

// experimentInfo is one catalog listing entry.
type experimentInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Jobs        int    `json:"jobs"`
}

// handleExperimentList serves GET /v1/experiments.
func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	var infos []experimentInfo
	for _, name := range ExperimentNames() {
		jobs, _ := ExpandExperiment(name, ExperimentParams{})
		infos = append(infos, experimentInfo{
			Name:        name,
			Description: namedExperiments[name].desc,
			Jobs:        len(jobs),
		})
	}
	writeJSON(w, http.StatusOK, infos)
}

// handleExperiment serves POST /v1/experiments/{name}: a named paper
// experiment, parameterized by ?bench=&cpus=&refs=&seed=.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	p := ExperimentParams{Bench: q.Get("bench")}
	for _, f := range []struct {
		key string
		dst *int
	}{{"cpus", &p.CPUs}, {"refs", &p.Refs}} {
		if raw := q.Get(f.key); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v < 0 {
				errorCtx(r.Context(), w, http.StatusBadRequest, "bad %s %q", f.key, raw)
				return
			}
			*f.dst = v
		}
	}
	if raw := q.Get("seed"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			errorCtx(r.Context(), w, http.StatusBadRequest, "bad seed %q", raw)
			return
		}
		p.Seed = v
	}
	name := r.PathValue("name")
	jobs, err := ExpandExperiment(name, p)
	if err != nil {
		errorCtx(r.Context(), w, http.StatusNotFound, "%v", err)
		return
	}
	s.serveSweep(w, r, name, jobs)
}

// handleResult serves GET /v1/results/{hash}: the idempotent lookup
// path, backed by the in-memory and on-disk caches. It never computes.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	// ServeMux matches the escaped path, so {hash} can carry "../"
	// after unescaping; reject anything that is not a well-formed
	// content hash before it goes near the on-disk cache.
	if !sweep.ValidHash(hash) {
		errorCtx(r.Context(), w, http.StatusBadRequest, "bad hash %q: want 64 lowercase hex characters", hash)
		return
	}
	metaFrom(r.Context()).set("", hash)
	sp := s.rt.StartChild(reqtrace.SpanObj(r.Context()), "lookup")
	sp.SetAttr("hash", hash)
	res, src, ok := s.eng.Lookup(hash)
	if !ok && s.fallback != nil {
		// The local tiers missed; ask the fleet. The fallback verifies
		// integrity and adopts the result, so the next lookup is local.
		// It inherits the lookup span as parent, so a coordinator's
		// peer-fetch spans attach under it.
		res, src, ok = s.fallback(reqtrace.WithSpanContext(r.Context(), sp.Context()), hash)
	}
	if !ok {
		sp.SetAttr("outcome", "miss")
		sp.End()
		errorCtx(r.Context(), w, http.StatusNotFound, "no result for hash %s", hash)
		return
	}
	sp.SetAttr("source", src.String())
	sp.End()
	writeJSON(w, http.StatusOK, jobResult(res, src, r.URL.Query().Get("full") == "1"))
}

// handleResultTrace serves GET /v1/results/{hash}/trace: the result's
// Chrome-trace-event (Perfetto) JSON export. Traces exist only for
// results computed in this process with tracing enabled — the span
// ring buffers are a live observability artifact, deliberately
// excluded from the deterministic snapshot the disk cache persists —
// so cache replays from disk (or untraced runs) answer 404.
func (s *Server) handleResultTrace(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !sweep.ValidHash(hash) {
		errorCtx(r.Context(), w, http.StatusBadRequest, "bad hash %q: want 64 lowercase hex characters", hash)
		return
	}
	res, _, ok := s.eng.Lookup(hash)
	if !ok {
		errorCtx(r.Context(), w, http.StatusNotFound, "no result for hash %s", hash)
		return
	}
	tr := res.Metrics().Trace
	if tr == nil {
		errorCtx(r.Context(), w, http.StatusNotFound,
			"no trace for result %s: run was not traced in this process (enable tracing and recompute)", hash)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", "trace-"+hash[:12]+".json"))
	tr.WriteTrace(w)
}

// sseEvent is the JSON payload of one progress event. Tenant and
// RequestID are the submitter provenance of the run that triggered
// the event — RequestID lets a client correlate the stream with its
// own submissions and their traces (the Job itself carries neither on
// the wire).
type sseEvent struct {
	Type      string    `json:"type"`
	Label     string    `json:"label"`
	Hash      string    `json:"hash"`
	Tenant    string    `json:"tenant,omitempty"`
	RequestID string    `json:"request_id,omitempty"`
	Job       sweep.Job `json:"job"`
	WallNS    int64     `json:"wall_ns,omitempty"`
	Error     string    `json:"error,omitempty"`
}

// handleEvents serves GET /v1/events: the engine's live progress
// stream as Server-Sent Events. The stream closes when the client
// disconnects or the server begins draining.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if !canFlush(w) {
		errorCtx(r.Context(), w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	flusher := http.NewResponseController(w)
	if s.draining() {
		errorCtx(r.Context(), w, http.StatusServiceUnavailable, "server draining")
		return
	}
	events, cancel := s.eng.Subscribe(256)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": ringserved event stream\n\n")
	flusher.Flush()

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case ev := <-events:
			payload := sseEvent{
				Type:   ev.Type.String(),
				Label:  ev.Job.String(),
				Hash:   ev.Hash,
				Tenant: ev.Job.Tenant,
				Job:    ev.Job,
				WallNS: ev.Wall.Nanoseconds(),
			}
			if sc, ok := reqtrace.ParseContext(ev.Job.TraceParent); ok {
				payload.RequestID = sc.TraceID
			}
			if ev.Err != nil {
				payload.Error = ev.Err.Error()
			}
			data, err := json.Marshal(payload)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", payload.Type, data); err != nil {
				return
			}
			if err := flusher.Flush(); err != nil {
				return
			}
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			if err := flusher.Flush(); err != nil {
				return
			}
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			return
		}
	}
}

// usageBody is the ?all=1 form of the /v1/usage response.
type usageBody struct {
	Tenants []tenant.TenantUsage `json:"tenants"`
}

// handleUsage serves GET /v1/usage: the caller's own usage record, or
// every tenant's with ?all=1 (an operator surface — records carry no
// API keys either way).
func (s *Server) handleUsage(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("all") == "1" {
		writeJSON(w, http.StatusOK, usageBody{Tenants: s.tenants.All()})
		return
	}
	tn := tenantFrom(r.Context())
	u, ok := s.tenants.Usage(tn.ID)
	if !ok {
		errorCtx(r.Context(), w, http.StatusNotFound, "no usage for tenant %q", tn.ID)
		return
	}
	writeJSON(w, http.StatusOK, u)
}

// handleRequestTrace serves GET /v1/requests/{id}/trace: the
// request's recorded span tree — admission, engine run, and (through
// a coordinator) dispatch, worker execution, and adoption — as JSON,
// or as Chrome-trace-event JSON with ?format=chrome. Traces live in a
// bounded in-process store, so old requests age out (404).
func (s *Server) handleRequestTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !reqtrace.ValidID(id) {
		errorCtx(r.Context(), w, http.StatusBadRequest, "bad request id %q", id)
		return
	}
	if !s.rt.Enabled() {
		errorCtx(r.Context(), w, http.StatusNotFound, "request tracing is disabled on this server")
		return
	}
	doc, ok := s.rt.Get(id)
	if !ok {
		errorCtx(r.Context(), w, http.StatusNotFound, "no trace for request %s (never seen, or evicted)", id)
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", "request-"+id+".json"))
		doc.WriteChrome(w)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleClusterStatus serves GET /v1/cluster/status: the
// coordinator's membership and dispatch view (per-worker liveness,
// heartbeat age, inflight, steal/forward counters). A node without a
// coordinator answers 404.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	if s.cstatus == nil {
		errorCtx(r.Context(), w, http.StatusNotFound, "this node is not a cluster coordinator")
		return
	}
	writeJSON(w, http.StatusOK, s.cstatus())
}

// handleClusterMetrics serves GET /v1/cluster/metrics: the
// coordinator's merged, worker-labeled exposition of the whole
// fleet's /metrics, so one scrape sees every node.
func (s *Server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	if s.federate == nil {
		errorCtx(r.Context(), w, http.StatusNotFound, "this node is not a cluster coordinator")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.federate(r.Context(), s.renderMetrics, w)
}

// healthBody is the /healthz response.
type healthBody struct {
	Status   string  `json:"status"`
	UptimeS  float64 `json:"uptime_s"`
	Workers  int     `json:"workers"`
	Queued   int     `json:"queue_depth"`
	InFlight int     `json:"in_flight"`
}

// handleHealthz serves GET /healthz. A draining server still answers
// 200 — it is alive and finishing work — but reports status
// "draining" so load balancers can steer away.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining() {
		status = "draining"
	}
	queued, inflight := s.adm.gauges()
	writeJSON(w, http.StatusOK, healthBody{
		Status:   status,
		UptimeS:  time.Since(s.start).Seconds(),
		Workers:  s.eng.Workers(),
		Queued:   queued,
		InFlight: inflight,
	})
}

// handleMetrics serves GET /metrics in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.renderMetrics(w)
}

// renderMetrics writes the full exposition to any writer — the same
// body /metrics serves, reused by the cluster's metrics federation as
// the coordinator's own contribution.
func (s *Server) renderMetrics(w io.Writer) {
	buildinfo.WriteMetric(w)
	queued, inflight := s.adm.gauges()
	st := s.eng.Stats()
	fmt.Fprintln(w, "# HELP ringsim_serve_queue_depth Requests waiting for admission.")
	fmt.Fprintln(w, "# TYPE ringsim_serve_queue_depth gauge")
	fmt.Fprintf(w, "ringsim_serve_queue_depth %d\n", queued)
	fmt.Fprintln(w, "# HELP ringsim_serve_in_flight Requests holding execution slots.")
	fmt.Fprintln(w, "# TYPE ringsim_serve_in_flight gauge")
	fmt.Fprintf(w, "ringsim_serve_in_flight %d\n", inflight)
	fmt.Fprintln(w, "# HELP ringsim_serve_draining Whether the server is draining.")
	fmt.Fprintln(w, "# TYPE ringsim_serve_draining gauge")
	fmt.Fprintf(w, "ringsim_serve_draining %d\n", map[bool]int{false: 0, true: 1}[s.draining()])

	fmt.Fprintln(w, "# HELP ringsim_engine_jobs_total Engine job outcomes over the server lifetime.")
	fmt.Fprintln(w, "# TYPE ringsim_engine_jobs_total counter")
	fmt.Fprintf(w, "ringsim_engine_jobs_total{state=\"queued\"} %d\n", st.Queued)
	fmt.Fprintf(w, "ringsim_engine_jobs_total{state=\"done\"} %d\n", st.Done)
	fmt.Fprintf(w, "ringsim_engine_jobs_total{state=\"computed\"} %d\n", st.Computed)
	fmt.Fprintf(w, "ringsim_engine_jobs_total{state=\"cache_hits\"} %d\n", st.CacheHits)
	fmt.Fprintf(w, "ringsim_engine_jobs_total{state=\"disk_hits\"} %d\n", st.DiskHits)
	fmt.Fprintf(w, "ringsim_engine_jobs_total{state=\"errors\"} %d\n", st.Errors)
	fmt.Fprintln(w, "# HELP ringsim_engine_running_jobs Jobs executing in the engine right now.")
	fmt.Fprintln(w, "# TYPE ringsim_engine_running_jobs gauge")
	fmt.Fprintf(w, "ringsim_engine_running_jobs %d\n", st.Running)
	fmt.Fprintln(w, "# HELP ringsim_engine_cache_hit_ratio Lifetime fraction of jobs served from cache.")
	fmt.Fprintln(w, "# TYPE ringsim_engine_cache_hit_ratio gauge")
	fmt.Fprintf(w, "ringsim_engine_cache_hit_ratio %g\n", st.HitRate())
	fmt.Fprintln(w, "# HELP ringsim_engine_exec_seconds_total Wall clock spent executing jobs, summed across workers.")
	fmt.Fprintln(w, "# TYPE ringsim_engine_exec_seconds_total counter")
	fmt.Fprintf(w, "ringsim_engine_exec_seconds_total %g\n", st.ExecWall.Seconds())
	fmt.Fprintln(w, "# HELP ringsim_engine_simulated_ns_total Simulated nanoseconds produced by computed jobs.")
	fmt.Fprintln(w, "# TYPE ringsim_engine_simulated_ns_total counter")
	fmt.Fprintf(w, "ringsim_engine_simulated_ns_total %d\n", st.SimulatedPS/1000)
	fmt.Fprintln(w, "# HELP ringsim_engine_events_fired_total Kernel events dispatched by computed jobs.")
	fmt.Fprintln(w, "# TYPE ringsim_engine_events_fired_total counter")
	fmt.Fprintf(w, "ringsim_engine_events_fired_total %d\n", st.EventsFired)
	fmt.Fprintln(w, "# HELP ringsim_engine_events_per_second Event dispatch rate over execution wall clock.")
	fmt.Fprintln(w, "# TYPE ringsim_engine_events_per_second gauge")
	fmt.Fprintf(w, "ringsim_engine_events_per_second %g\n", st.EventsPerSec)
	fmt.Fprintln(w, "# HELP ringsim_engine_events_per_job Mean kernel events per computed job.")
	fmt.Fprintln(w, "# TYPE ringsim_engine_events_per_job gauge")
	fmt.Fprintf(w, "ringsim_engine_events_per_job %g\n", st.MeanJobEvents)
	fmt.Fprintln(w, "# HELP ringsim_engine_event_slab_max Largest event-record pool any job's kernel allocated.")
	fmt.Fprintln(w, "# TYPE ringsim_engine_event_slab_max gauge")
	fmt.Fprintf(w, "ringsim_engine_event_slab_max %d\n", st.EventSlabMax)

	fmt.Fprintln(w, "# HELP ringsim_sim_parallel_runs_total Computed jobs executed on the partitioned parallel kernel.")
	fmt.Fprintln(w, "# TYPE ringsim_sim_parallel_runs_total counter")
	fmt.Fprintf(w, "ringsim_sim_parallel_runs_total %d\n", st.ParallelRuns)
	fmt.Fprintln(w, "# HELP ringsim_sim_parallel_fallbacks_total Jobs where a parallel request fell back to the sequential kernel.")
	fmt.Fprintln(w, "# TYPE ringsim_sim_parallel_fallbacks_total counter")
	fmt.Fprintf(w, "ringsim_sim_parallel_fallbacks_total %d\n", st.ParallelFallbacks)
	fmt.Fprintln(w, "# HELP ringsim_sim_parallel_windows_total Conservative barrier windows advanced across parallel runs.")
	fmt.Fprintln(w, "# TYPE ringsim_sim_parallel_windows_total counter")
	fmt.Fprintf(w, "ringsim_sim_parallel_windows_total %d\n", st.ParallelWindows)
	fmt.Fprintln(w, "# HELP ringsim_sim_parallel_cross_events_total Cross-partition events exchanged across parallel runs.")
	fmt.Fprintln(w, "# TYPE ringsim_sim_parallel_cross_events_total counter")
	fmt.Fprintf(w, "ringsim_sim_parallel_cross_events_total %d\n", st.ParallelCrossEvents)
	fmt.Fprintln(w, "# HELP ringsim_sim_parallel_cross_windows_total Barrier windows that delivered at least one cross-partition event, summed across parallel runs.")
	fmt.Fprintln(w, "# TYPE ringsim_sim_parallel_cross_windows_total counter")
	fmt.Fprintf(w, "ringsim_sim_parallel_cross_windows_total %d\n", st.ParallelCrossWindows)
	fmt.Fprintln(w, "# HELP ringsim_sim_parallel_window_width_ps Narrowest barrier-window width any parallel run used, in simulated picoseconds (the boundary-link lookahead for segmented-interconnect runs).")
	fmt.Fprintln(w, "# TYPE ringsim_sim_parallel_window_width_ps gauge")
	fmt.Fprintf(w, "ringsim_sim_parallel_window_width_ps %d\n", st.ParallelWindowPS)
	fmt.Fprintln(w, "# HELP ringsim_sim_parallel_barrier_stall_ns_total Wall clock partitions spent waiting at window barriers, summed across partitions and runs.")
	fmt.Fprintln(w, "# TYPE ringsim_sim_parallel_barrier_stall_ns_total counter")
	fmt.Fprintf(w, "ringsim_sim_parallel_barrier_stall_ns_total %d\n", st.ParallelBarrierStallNS)

	fmt.Fprintln(w, "# HELP ringsim_obs_spans_total Coherence-transaction spans observed by computed jobs, by class.")
	fmt.Fprintln(w, "# TYPE ringsim_obs_spans_total counter")
	fmt.Fprintf(w, "ringsim_obs_spans_total %d\n", st.SpansObserved)
	fmt.Fprintln(w, "# HELP ringsim_obs_spans_sampled_total Spans captured as full trace records.")
	fmt.Fprintln(w, "# TYPE ringsim_obs_spans_sampled_total counter")
	fmt.Fprintf(w, "ringsim_obs_spans_sampled_total %d\n", st.SpansSampled)
	fmt.Fprintln(w, "# HELP ringsim_obs_spans_dropped_total Sampled spans overwritten in the trace ring buffers before completing.")
	fmt.Fprintln(w, "# TYPE ringsim_obs_spans_dropped_total counter")
	fmt.Fprintf(w, "ringsim_obs_spans_dropped_total %d\n", st.SpansDropped)
	if agg := s.eng.TraceAgg(); len(agg) > 0 {
		fmt.Fprintln(w, "# HELP ringsim_obs_span_latency_seconds Coherence-transaction latency by class, across computed jobs.")
		fmt.Fprintln(w, "# TYPE ringsim_obs_span_latency_seconds histogram")
		for _, a := range agg {
			// The tracer's histograms are in nanoseconds; the exposition
			// contract is base units (seconds).
			bounds, counts := a.Latency.Buckets()
			var cum uint64
			for i, b := range bounds {
				cum += counts[i]
				fmt.Fprintf(w, "ringsim_obs_span_latency_seconds_bucket{class=%q,le=\"%g\"} %d\n", a.Class, b/1e9, cum)
			}
			cum += counts[len(counts)-1]
			fmt.Fprintf(w, "ringsim_obs_span_latency_seconds_bucket{class=%q,le=\"+Inf\"} %d\n", a.Class, cum)
			fmt.Fprintf(w, "ringsim_obs_span_latency_seconds_sum{class=%q} %g\n", a.Class, a.Latency.Sum()/1e9)
			fmt.Fprintf(w, "ringsim_obs_span_latency_seconds_count{class=%q} %d\n", a.Class, a.Latency.N())
		}
	}

	if s.rt.Enabled() {
		traces, spans, dropped := s.rt.Stats()
		fmt.Fprintln(w, "# HELP ringsim_reqtrace_traces Request traces retained in the in-process store.")
		fmt.Fprintln(w, "# TYPE ringsim_reqtrace_traces gauge")
		fmt.Fprintf(w, "ringsim_reqtrace_traces %d\n", traces)
		fmt.Fprintln(w, "# HELP ringsim_reqtrace_spans_total Request spans recorded since start.")
		fmt.Fprintln(w, "# TYPE ringsim_reqtrace_spans_total counter")
		fmt.Fprintf(w, "ringsim_reqtrace_spans_total %d\n", spans)
		fmt.Fprintln(w, "# HELP ringsim_reqtrace_spans_dropped_total Request spans evicted from the bounded store.")
		fmt.Fprintln(w, "# TYPE ringsim_reqtrace_spans_dropped_total counter")
		fmt.Fprintf(w, "ringsim_reqtrace_spans_dropped_total %d\n", dropped)
	}

	s.renderTenantMetrics(w)
	s.met.render(w)
	if s.extraMet != nil {
		s.extraMet(w)
	}
}

// renderTenantMetrics emits the ringsim_tenant_* family: per-tenant
// job outcomes, rejections, resource consumption, and live admission
// gauges. Tenants appear in registration order (the registry) and
// lexicographic order (the admitter), both deterministic.
func (s *Server) renderTenantMetrics(w io.Writer) {
	all := s.tenants.All()
	fmt.Fprintln(w, "# HELP ringsim_tenant_jobs_total Jobs served per tenant by outcome.")
	fmt.Fprintln(w, "# TYPE ringsim_tenant_jobs_total counter")
	for _, tu := range all {
		fmt.Fprintf(w, "ringsim_tenant_jobs_total{tenant=%q,state=\"computed\"} %d\n", tu.ID, tu.Usage.Computed)
		fmt.Fprintf(w, "ringsim_tenant_jobs_total{tenant=%q,state=\"cache_hits\"} %d\n", tu.ID, tu.Usage.CacheHits)
		fmt.Fprintf(w, "ringsim_tenant_jobs_total{tenant=%q,state=\"disk_hits\"} %d\n", tu.ID, tu.Usage.DiskHits)
		fmt.Fprintf(w, "ringsim_tenant_jobs_total{tenant=%q,state=\"errors\"} %d\n", tu.ID, tu.Usage.Errors)
	}
	fmt.Fprintln(w, "# HELP ringsim_tenant_rejected_total Requests refused per tenant, by which limit refused them.")
	fmt.Fprintln(w, "# TYPE ringsim_tenant_rejected_total counter")
	for _, tu := range all {
		fmt.Fprintf(w, "ringsim_tenant_rejected_total{tenant=%q,reason=\"rate\"} %d\n", tu.ID, tu.Usage.RateLimited)
		fmt.Fprintf(w, "ringsim_tenant_rejected_total{tenant=%q,reason=\"admission\"} %d\n", tu.ID, tu.Usage.Rejected)
	}
	fmt.Fprintln(w, "# HELP ringsim_tenant_simulated_ns_total Simulated nanoseconds computed on each tenant's behalf.")
	fmt.Fprintln(w, "# TYPE ringsim_tenant_simulated_ns_total counter")
	for _, tu := range all {
		fmt.Fprintf(w, "ringsim_tenant_simulated_ns_total{tenant=%q} %d\n", tu.ID, tu.Usage.SimulatedPS/1000)
	}
	fmt.Fprintln(w, "# HELP ringsim_tenant_request_seconds_total Wall clock spent serving each tenant's admitted requests.")
	fmt.Fprintln(w, "# TYPE ringsim_tenant_request_seconds_total counter")
	for _, tu := range all {
		fmt.Fprintf(w, "ringsim_tenant_request_seconds_total{tenant=%q} %g\n", tu.ID, time.Duration(tu.Usage.WallNS).Seconds())
	}
	gauges := s.adm.tenantGauges()
	fmt.Fprintln(w, "# HELP ringsim_tenant_queue_depth Requests waiting in each tenant's admission flow.")
	fmt.Fprintln(w, "# TYPE ringsim_tenant_queue_depth gauge")
	for _, g := range gauges {
		fmt.Fprintf(w, "ringsim_tenant_queue_depth{tenant=%q} %d\n", g.id, g.queued)
	}
	fmt.Fprintln(w, "# HELP ringsim_tenant_in_flight Requests holding execution slots per tenant.")
	fmt.Fprintln(w, "# TYPE ringsim_tenant_in_flight gauge")
	for _, g := range gauges {
		fmt.Fprintf(w, "ringsim_tenant_in_flight{tenant=%q} %d\n", g.id, g.inflight)
	}
}
