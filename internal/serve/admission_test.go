package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// waitQueued spins until the admitter's queue holds n requests.
func waitQueued(t *testing.T, a *admitter, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if q, _ := a.gauges(); q == n {
			return
		}
		if time.Now().After(deadline) {
			q, f := a.gauges()
			t.Fatalf("queue never reached %d (queued=%d inflight=%d)", n, q, f)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// grantOrder fills the queue with waiters of the given costs (arrival
// order = slice order) while one request holds the only slot, then
// releases it and reports the order waiters were granted.
func grantOrder(t *testing.T, disc Discipline, costs []int64) []int64 {
	t.Helper()
	a := newAdmitter(1, len(costs), disc)
	hold, err := a.admit(context.Background(), anonLimits, 0)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []int64
	var wg sync.WaitGroup
	for i, c := range costs {
		wg.Add(1)
		go func(c int64) {
			defer wg.Done()
			release, err := a.admit(context.Background(), anonLimits, c)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, c)
			mu.Unlock()
			release()
		}(c)
		waitQueued(t, a, i+1) // fix arrival order
	}
	hold()
	wg.Wait()
	return order
}

func TestAdmitFCFSOrder(t *testing.T) {
	order := grantOrder(t, FCFS, []int64{30, 10, 20})
	want := []int64{30, 10, 20}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("FCFS grant order %v, want arrival order %v", order, want)
		}
	}
}

func TestAdmitShortestJobOrder(t *testing.T) {
	order := grantOrder(t, ShortestJob, []int64{30, 10, 20})
	want := []int64{10, 20, 30}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("SJF grant order %v, want cost order %v", order, want)
		}
	}
}

func TestAdmitQueueOverflow(t *testing.T) {
	a := newAdmitter(1, 1, FCFS)
	hold, err := a.admit(context.Background(), anonLimits, 1)
	if err != nil {
		t.Fatal(err)
	}
	queuedDone := make(chan struct{})
	go func() {
		defer close(queuedDone)
		release, err := a.admit(context.Background(), anonLimits, 1)
		if err != nil {
			t.Error(err)
			return
		}
		release()
	}()
	waitQueued(t, a, 1)
	if _, err := a.admit(context.Background(), anonLimits, 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow err = %v, want ErrQueueFull", err)
	}
	hold()
	<-queuedDone
	if q, f := a.gauges(); q != 0 || f != 0 {
		t.Errorf("admitter did not settle: queued=%d inflight=%d", q, f)
	}
}

func TestAdmitAbandonsCancelledWaiter(t *testing.T) {
	a := newAdmitter(1, 4, FCFS)
	hold, err := a.admit(context.Background(), anonLimits, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := a.admit(ctx, anonLimits, 1)
		errCh <- err
	}()
	waitQueued(t, a, 1)
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v", err)
	}
	if q, _ := a.gauges(); q != 0 {
		t.Errorf("abandoned waiter still counted queued (%d)", q)
	}
	// The slot must not be handed to the abandoned waiter.
	granted := make(chan struct{})
	go func() {
		release, err := a.admit(context.Background(), anonLimits, 1)
		if err != nil {
			t.Error(err)
		} else {
			release()
		}
		close(granted)
	}()
	waitQueued(t, a, 1)
	hold()
	select {
	case <-granted:
	case <-time.After(5 * time.Second):
		t.Fatal("live waiter never granted after abandoned one")
	}
}

func TestDrainRejectsAndWaits(t *testing.T) {
	a := newAdmitter(2, 4, FCFS)
	release, err := a.admit(context.Background(), anonLimits, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.beginDrain()
	if _, err := a.admit(context.Background(), anonLimits, 1); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining admit err = %v, want ErrDraining", err)
	}
	waited := make(chan error, 1)
	go func() { waited <- a.drainWait(context.Background()) }()
	select {
	case <-waited:
		t.Fatal("drainWait returned while work in flight")
	case <-time.After(20 * time.Millisecond):
	}
	release()
	select {
	case err := <-waited:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drainWait never returned after release")
	}
}

func TestDrainWaitHonorsContext(t *testing.T) {
	a := newAdmitter(1, 4, FCFS)
	release, err := a.admit(context.Background(), anonLimits, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := a.drainWait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drainWait err = %v, want deadline exceeded", err)
	}
}
