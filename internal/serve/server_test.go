package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// fakeExecutor fabricates deterministic metrics without running a
// simulation, optionally sleeping to model a slow job and counting
// executions to observe singleflight.
type fakeExecutor struct {
	delay    time.Duration
	computes atomic.Int64
	started  chan struct{} // closed once on first execution, if set
	once     sync.Once
}

func (f *fakeExecutor) run(j sweep.Job) (*core.Metrics, error) {
	f.computes.Add(1)
	if f.started != nil {
		f.once.Do(func() { close(f.started) })
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	m := &core.Metrics{
		ExecTime: sim.Time(int64(j.CPUs) * int64(j.DataRefsPerCPU) * 1000),
		BusyTime: sim.Time(int64(j.CPUs) * int64(j.DataRefsPerCPU) * 500),
		DataRefs: uint64(j.CPUs * j.DataRefsPerCPU),
	}
	m.MissLatency.Observe(600)
	return m, nil
}

// newTestServer builds a Server whose default executor is fake, over
// an httptest instance.
func newTestServer(t *testing.T, fake *fakeExecutor, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Engine == nil {
		opts.Engine = sweep.New(sweep.Options{
			Workers:   4,
			Executors: map[string]sweep.Executor{"": fake.run},
		})
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJob(t *testing.T, url string, job sweep.Job, query string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func decodeJobResult(t *testing.T, raw []byte) JobResult {
	t.Helper()
	var jr JobResult
	if err := json.Unmarshal(raw, &jr); err != nil {
		t.Fatalf("bad job result %s: %v", raw, err)
	}
	return jr
}

func testJob(seed uint64) sweep.Job {
	return sweep.Job{Benchmark: "MP3D", CPUs: 8, DataRefsPerCPU: 200, Seed: seed}
}

func TestSubmitComputeThenHit(t *testing.T) {
	fake := &fakeExecutor{}
	_, ts := newTestServer(t, fake, Options{})

	resp, raw := postJob(t, ts.URL, testJob(1), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	first := decodeJobResult(t, raw)
	if first.Cached || first.Source != "computed" {
		t.Errorf("cold submit reported %s/cached=%v", first.Source, first.Cached)
	}
	if first.Hash == "" || first.Summary.ExecTimeUS == 0 {
		t.Errorf("incomplete result: %+v", first)
	}
	if first.Metrics != nil {
		t.Error("summary response should omit full metrics")
	}

	resp, raw = postJob(t, ts.URL, testJob(1), "?full=1")
	second := decodeJobResult(t, raw)
	if resp.StatusCode != http.StatusOK || !second.Cached || second.Source != "memory" {
		t.Errorf("resubmit status %d source %s cached %v", resp.StatusCode, second.Source, second.Cached)
	}
	if second.Hash != first.Hash {
		t.Error("resubmit produced a different hash")
	}
	if second.Metrics == nil {
		t.Error("full=1 response missing metrics snapshot")
	}
	if n := fake.computes.Load(); n != 1 {
		t.Errorf("computed %d times, want 1", n)
	}
}

func TestConcurrentIdenticalSubmissionsComputeOnce(t *testing.T) {
	fake := &fakeExecutor{delay: 100 * time.Millisecond}
	_, ts := newTestServer(t, fake, Options{})

	const clients = 2
	var wg sync.WaitGroup
	hashes := make([]string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := postJob(t, ts.URL, testJob(7), "")
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d status %d: %s", i, resp.StatusCode, raw)
				return
			}
			hashes[i] = decodeJobResult(t, raw).Hash
		}(c)
	}
	wg.Wait()
	if n := fake.computes.Load(); n != 1 {
		t.Errorf("concurrent identical submissions computed %d times, want 1 (singleflight)", n)
	}
	if hashes[0] == "" || hashes[0] != hashes[1] {
		t.Errorf("clients saw different hashes: %v", hashes)
	}
}

func TestRestartServedFromDiskCache(t *testing.T) {
	dir := t.TempDir()
	fake1 := &fakeExecutor{}
	eng1 := sweep.New(sweep.Options{Workers: 2, CacheDir: dir,
		Executors: map[string]sweep.Executor{"": fake1.run}})
	_, ts1 := newTestServer(t, fake1, Options{Engine: eng1})
	resp, raw := postJob(t, ts1.URL, testJob(3), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	hash := decodeJobResult(t, raw).Hash

	// A "restarted" server: fresh engine, fresh process-local cache,
	// same cache directory.
	fake2 := &fakeExecutor{}
	eng2 := sweep.New(sweep.Options{Workers: 2, CacheDir: dir,
		Executors: map[string]sweep.Executor{"": fake2.run}})
	_, ts2 := newTestServer(t, fake2, Options{Engine: eng2})
	resp, raw = postJob(t, ts2.URL, testJob(3), "")
	jr := decodeJobResult(t, raw)
	if resp.StatusCode != http.StatusOK || jr.Source != "disk" || !jr.Cached {
		t.Errorf("restart resubmit status %d source %s", resp.StatusCode, jr.Source)
	}
	if jr.Hash != hash {
		t.Error("restart changed the content hash")
	}
	if n := fake2.computes.Load(); n != 0 {
		t.Errorf("restart recomputed %d jobs, want disk replay", n)
	}

	// GET-by-hash is idempotent and cache-backed.
	get, err := http.Get(ts2.URL + "/v1/results/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	if get.StatusCode != http.StatusOK {
		t.Errorf("GET result status %d", get.StatusCode)
	}
	var got JobResult
	if err := json.NewDecoder(get.Body).Decode(&got); err != nil || got.Hash != hash {
		t.Errorf("GET result = %+v, err %v", got, err)
	}

	if r404, err := http.Get(ts2.URL + "/v1/results/" + strings.Repeat("0", 64)); err == nil {
		if r404.StatusCode != http.StatusNotFound {
			t.Errorf("unknown hash status %d, want 404", r404.StatusCode)
		}
		r404.Body.Close()
	}
}

// TestResultHashValidation probes GET /v1/results/{hash} with
// malformed and path-traversal hashes: every one must be rejected with
// 400 before touching disk, and a traversal target the daemon could
// write must survive — the cache's corrupt-artifact recovery deletes
// files, so an unvalidated hash would let a GET remove arbitrary
// *.json files.
func TestResultHashValidation(t *testing.T) {
	dir := t.TempDir()
	victim := filepath.Join(dir, "victim.json")
	if err := os.WriteFile(victim, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	fake := &fakeExecutor{}
	eng := sweep.New(sweep.Options{Workers: 2, CacheDir: filepath.Join(dir, "cache"),
		Executors: map[string]sweep.Executor{"": fake.run}})
	_, ts := newTestServer(t, fake, Options{Engine: eng})

	for _, h := range []string{
		"..%2Fvictim",           // unescapes to ../victim: dir/victim.json
		"..%2F..%2Fvictim",      // deeper traversal
		"no-such-hash",          // not hex
		strings.Repeat("a", 63), // wrong length
		strings.Repeat("A", 64), // uppercase hex is not Job.Hash output
		strings.Repeat("g", 64), // non-hex at the right length
		strings.Repeat("a", 31) + "%00" + strings.Repeat("a", 31), // embedded NUL
	} {
		req, err := http.NewRequest("GET", ts.URL+"/v1/results/"+h, nil)
		if err != nil {
			t.Fatalf("%s: %v", h, err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", h, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("hash %q: status %d, want 400", h, resp.StatusCode)
		}
	}
	if _, err := os.Stat(victim); err != nil {
		t.Errorf("traversal lookup deleted the victim file: %v", err)
	}
}

func TestExpiredDeadlineReturns504(t *testing.T) {
	fake := &fakeExecutor{delay: 400 * time.Millisecond, started: make(chan struct{})}
	_, ts := newTestServer(t, fake, Options{MaxInFlight: 1})

	done := make(chan struct{})
	go func() {
		defer close(done)
		postJob(t, ts.URL, testJob(8), "")
	}()
	<-fake.started // first request holds the only slot

	// This request's deadline expires while it waits in the admission
	// queue: 504, and its job never computes.
	resp, raw := postJob(t, ts.URL, testJob(9), "?deadline_ms=30")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "cancelled") {
		t.Errorf("504 body should mention cancellation: %s", raw)
	}
	<-done
	if n := fake.computes.Load(); n != 1 {
		t.Errorf("computed %d jobs, want 1 (expired request must not compute)", n)
	}
}

func TestDeadlineMidRunReturns504(t *testing.T) {
	fake := &fakeExecutor{delay: 300 * time.Millisecond}
	_, ts := newTestServer(t, fake, Options{})
	begin := time.Now()
	resp, raw := postJob(t, ts.URL, testJob(11), "?deadline_ms=50")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, raw)
	}
	if wall := time.Since(begin); wall > 250*time.Millisecond {
		t.Errorf("504 took %v; handler must answer at the deadline, not at job completion", wall)
	}
	// The abandoned computation completes into the cache (work
	// conservation): an immediate resubmit is a hit, not a recompute.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, raw := postJob(t, ts.URL, testJob(11), "")
		if resp.StatusCode == http.StatusOK {
			if jr := decodeJobResult(t, raw); !jr.Cached {
				t.Errorf("resubmit after abandoned run recomputed (source %s)", jr.Source)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("resubmit never succeeded")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if n := fake.computes.Load(); n != 1 {
		t.Errorf("computed %d times, want 1", n)
	}
}

func TestAdmissionOverflowReturns429(t *testing.T) {
	fake := &fakeExecutor{delay: 400 * time.Millisecond, started: make(chan struct{})}
	s, ts := newTestServer(t, fake, Options{MaxInFlight: 1, QueueDepth: 1})

	results := make(chan int, 3)
	post := func(seed uint64) {
		resp, _ := postJob(t, ts.URL, testJob(seed), "")
		results <- resp.StatusCode
	}
	go post(1)
	<-fake.started // first request holds the slot
	go post(2)
	waitQueued(t, s.adm, 1) // second waits in the queue
	resp, raw := postJob(t, ts.URL, testJob(3), "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429: %s", resp.StatusCode, raw)
	}
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("admitted request finished with %d", code)
		}
	}
}

func TestSweepBatchAndExperiments(t *testing.T) {
	fake := &fakeExecutor{}
	_, ts := newTestServer(t, fake, Options{})

	jobs := []sweep.Job{testJob(1), testJob(2), testJob(1)}
	body, _ := json.Marshal(map[string]any{"jobs": jobs})
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sr SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || sr.Jobs != 3 || len(sr.Results) != 3 {
		t.Fatalf("sweep response %+v (status %d)", sr, resp.StatusCode)
	}
	if sr.Computed != 2 || sr.CacheHits != 1 {
		t.Errorf("computed/hits = %d/%d, want 2/1 (duplicate in batch coalesces)", sr.Computed, sr.CacheHits)
	}

	// Catalog lists experiments.
	lresp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var infos []experimentInfo
	if err := json.NewDecoder(lresp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(infos) != len(namedExperiments) {
		t.Errorf("catalog lists %d experiments, want %d", len(infos), len(namedExperiments))
	}

	// A named experiment expands and runs.
	eresp, err := http.Post(ts.URL+"/v1/experiments/calibration?refs=100&cpus=8", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var er SweepResponse
	if err := json.NewDecoder(eresp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	eresp.Body.Close()
	if eresp.StatusCode != http.StatusOK || er.Experiment != "calibration" || er.Jobs != 4 {
		t.Errorf("experiment response status %d %+v", eresp.StatusCode, er)
	}

	if nresp, err := http.Post(ts.URL+"/v1/experiments/no-such", "application/json", nil); err == nil {
		if nresp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown experiment status %d, want 404", nresp.StatusCode)
		}
		nresp.Body.Close()
	}
}

func TestEventsStreamSSE(t *testing.T) {
	fake := &fakeExecutor{}
	_, ts := newTestServer(t, fake, Options{})

	req, _ := http.NewRequest("GET", ts.URL+"/v1/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	reader := bufio.NewReader(resp.Body)
	// Consume the banner comment line first.
	if line, err := reader.ReadString('\n'); err != nil || !strings.HasPrefix(line, ":") {
		t.Fatalf("banner = %q, %v", line, err)
	}

	postJob(t, ts.URL, testJob(21), "")

	sawStart, sawDone := false, false
	lines := make(chan string)
	go func() {
		for {
			line, err := reader.ReadString('\n')
			if err != nil {
				close(lines)
				return
			}
			lines <- line
		}
	}()
	timeout := time.After(5 * time.Second)
	for !(sawStart && sawDone) {
		select {
		case line := <-lines:
			if strings.HasPrefix(line, "event: start") {
				sawStart = true
			}
			if strings.HasPrefix(line, "event: done") {
				sawDone = true
			}
			if strings.HasPrefix(line, "data: ") {
				var ev sseEvent
				if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &ev); err != nil {
					t.Errorf("bad event payload %q: %v", line, err)
				} else if ev.Hash == "" || ev.Label == "" {
					t.Errorf("incomplete event %+v", ev)
				}
			}
		case <-timeout:
			t.Fatalf("no start/done events (start=%v done=%v)", sawStart, sawDone)
		}
	}
}

func TestGracefulDrain(t *testing.T) {
	fake := &fakeExecutor{delay: 200 * time.Millisecond, started: make(chan struct{})}
	s, ts := newTestServer(t, fake, Options{})

	done := make(chan JobResult, 1)
	go func() {
		_, raw := postJob(t, ts.URL, testJob(31), "")
		done <- decodeJobResult(t, raw)
	}()
	<-fake.started
	s.BeginDrain()

	// New work is rejected while draining.
	resp, raw := postJob(t, ts.URL, testJob(32), "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining submit status %d, want 503: %s", resp.StatusCode, raw)
	}
	// Health stays up but reports draining.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hb healthBody
	json.NewDecoder(hresp.Body).Decode(&hb)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || hb.Status != "draining" {
		t.Errorf("healthz during drain: %d %+v", hresp.StatusCode, hb)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The in-flight job finished and was answered.
	select {
	case jr := <-done:
		if jr.Hash == "" {
			t.Error("drained request lost its result")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	if n := fake.computes.Load(); n != 1 {
		t.Errorf("drain computed %d jobs, want 1", n)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	fake := &fakeExecutor{}
	_, ts := newTestServer(t, fake, Options{})
	postJob(t, ts.URL, testJob(41), "")
	postJob(t, ts.URL, testJob(41), "")

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	wants := []string{
		`ringsim_serve_requests_total{endpoint="jobs",code="200"} 2`,
		`ringsim_engine_jobs_total{state="computed"} 1`,
		`ringsim_engine_jobs_total{state="cache_hits"} 1`,
		"ringsim_engine_cache_hit_ratio 0.5",
		`ringsim_serve_request_seconds_bucket{endpoint="jobs",le="+Inf"} 2`,
		`ringsim_serve_request_seconds_count{endpoint="jobs"} 2`,
		"ringsim_serve_queue_depth 0",
		"ringsim_serve_in_flight 0",
		"ringsim_serve_draining 0",
	}
	for _, want := range wants {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestBadRequests(t *testing.T) {
	fake := &fakeExecutor{}
	_, ts := newTestServer(t, fake, Options{})
	cases := []struct {
		name string
		do   func() (*http.Response, error)
		want int
	}{
		{"malformed job", func() (*http.Response, error) {
			return http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{nope"))
		}, http.StatusBadRequest},
		{"unknown field", func() (*http.Response, error) {
			return http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"frobnicate":1}`))
		}, http.StatusBadRequest},
		{"empty sweep", func() (*http.Response, error) {
			return http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(`{"jobs":[]}`))
		}, http.StatusBadRequest},
		{"bad deadline", func() (*http.Response, error) {
			body, _ := json.Marshal(testJob(1))
			return http.Post(ts.URL+"/v1/jobs?deadline_ms=soon", "application/json", bytes.NewReader(body))
		}, http.StatusBadRequest},
		{"zero deadline", func() (*http.Response, error) {
			body, _ := json.Marshal(testJob(1))
			return http.Post(ts.URL+"/v1/jobs?deadline_ms=0", "application/json", bytes.NewReader(body))
		}, http.StatusBadRequest},
		{"negative deadline", func() (*http.Response, error) {
			body, _ := json.Marshal(testJob(1))
			return http.Post(ts.URL+"/v1/jobs?deadline_ms=-50", "application/json", bytes.NewReader(body))
		}, http.StatusBadRequest},
		{"wrong method", func() (*http.Response, error) {
			return http.Get(ts.URL + "/v1/jobs")
		}, http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		resp, err := c.do()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	if n := fake.computes.Load(); n != 0 {
		t.Errorf("bad requests computed %d jobs", n)
	}
}

// TestDefaultExecutorIntegration runs one real simulation through the
// HTTP layer — no fakes — and sanity-checks the physics in the
// summary.
func TestDefaultExecutorIntegration(t *testing.T) {
	eng := sweep.New(sweep.Options{Workers: 2})
	_, ts := newTestServer(t, nil, Options{Engine: eng})
	resp, raw := postJob(t, ts.URL, sweep.Job{Benchmark: "WATER", CPUs: 8, DataRefsPerCPU: 200}, "?full=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	jr := decodeJobResult(t, raw)
	if jr.Summary.ProcUtil <= 0 || jr.Summary.ProcUtil > 1 {
		t.Errorf("ProcUtil %g out of range", jr.Summary.ProcUtil)
	}
	if jr.Summary.MissLatencyNS <= 0 {
		t.Errorf("MissLatencyNS %g", jr.Summary.MissLatencyNS)
	}
	if jr.Metrics == nil || jr.Metrics.DataRefs == 0 {
		t.Error("full metrics snapshot missing or empty")
	}
}
