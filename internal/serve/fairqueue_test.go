package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// flowReq is one admission request in a fairness scenario: which
// tenant submits it and its cost estimate.
type flowReq struct {
	lim  tenantLimits
	cost int64
}

// grantSequence enqueues reqs in arrival order while a holder pins
// the only execution slot, then releases it and returns the tenant
// IDs in grant order. Grants serialize through release, so the order
// is deterministic.
func grantSequence(t *testing.T, disc Discipline, reqs []flowReq) []string {
	t.Helper()
	a := newAdmitter(1, len(reqs), disc)
	hold, err := a.admit(context.Background(), tenantLimits{id: "holder", weight: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(r flowReq) {
			defer wg.Done()
			release, err := a.admit(context.Background(), r.lim, r.cost)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, r.lim.id)
			mu.Unlock()
			release()
		}(r)
		waitQueued(t, a, i+1) // fix arrival order
	}
	hold()
	wg.Wait()
	return order
}

// repeat builds n identical requests for one tenant.
func repeat(lim tenantLimits, cost int64, n int) []flowReq {
	reqs := make([]flowReq, n)
	for i := range reqs {
		reqs[i] = flowReq{lim: lim, cost: cost}
	}
	return reqs
}

// TestDRRWeightedSharesConverge drives equal-cost backlogs from
// tenants of different weights through a single slot and checks that
// grant counts converge to the weight ratio, for several ratios and
// both intra-tenant disciplines.
func TestDRRWeightedSharesConverge(t *testing.T) {
	cases := []struct {
		name    string
		disc    Discipline
		wA, wB  int
		perFlow int
		window  int // prefix of the grant order to measure
		maxSkew float64
	}{
		{"equal-weights", FCFS, 1, 1, 30, 30, 0.15},
		{"one-to-three", FCFS, 1, 3, 40, 40, 0.15},
		{"one-to-four-sjf", ShortestJob, 1, 4, 40, 40, 0.15},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			limA := tenantLimits{id: "A", weight: c.wA}
			limB := tenantLimits{id: "B", weight: c.wB}
			// Interleave arrivals so neither tenant owns the queue front.
			var reqs []flowReq
			for i := 0; i < c.perFlow; i++ {
				reqs = append(reqs, flowReq{limA, drrQuantum}, flowReq{limB, drrQuantum})
			}
			order := grantSequence(t, c.disc, reqs)
			counts := map[string]int{}
			for _, id := range order[:c.window] {
				counts[id]++
			}
			wantB := float64(c.window) * float64(c.wB) / float64(c.wA+c.wB)
			if skew := abs(float64(counts["B"])-wantB) / float64(c.window); skew > c.maxSkew {
				t.Errorf("weights %d:%d gave grants A=%d B=%d in first %d (want B near %.0f, skew %.2f)",
					c.wA, c.wB, counts["A"], counts["B"], c.window, wantB, skew)
			}
		})
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestDRRNoStarvation enqueues a large backlog for one tenant and a
// single job for another arriving last: the 1-job tenant must be
// served within a handful of grants, not behind the whole backlog —
// the property FCFS lacks and the fair queue exists for.
func TestDRRNoStarvation(t *testing.T) {
	big := tenantLimits{id: "batch", weight: 1}
	small := tenantLimits{id: "interactive", weight: 1}
	const backlog = 1000
	reqs := append(repeat(big, drrQuantum, backlog), flowReq{small, drrQuantum})
	order := grantSequence(t, FCFS, reqs)
	pos := -1
	for i, id := range order {
		if id == "interactive" {
			pos = i
			break
		}
	}
	if pos < 0 || pos > 3 {
		t.Errorf("interactive tenant granted at position %d behind a %d-job backlog, want within the first 4", pos, backlog)
	}
}

// TestDRRQuotaIsolation exhausts one tenant's queued-admission quota
// and checks the rejection hits only that tenant, carries the queue
// depth captured at rejection, and clears once the backlog drains.
func TestDRRQuotaIsolation(t *testing.T) {
	a := newAdmitter(1, 16, FCFS)
	capped := tenantLimits{id: "capped", weight: 1, maxQueued: 2}
	free := tenantLimits{id: "free", weight: 1}

	hold, err := a.admit(context.Background(), tenantLimits{id: "holder", weight: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := a.admit(context.Background(), capped, 1)
			if err != nil {
				t.Error(err)
				return
			}
			release()
		}()
		waitQueued(t, a, i+1)
	}

	// The third capped request overflows the tenant quota...
	_, err = a.admit(context.Background(), capped, 1)
	var aerr *AdmitError
	if !errors.As(err, &aerr) || !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("quota overflow err = %v, want ErrTenantQuota inside AdmitError", err)
	}
	if aerr.Queued != 2 {
		t.Errorf("AdmitError.Queued = %d, want the tenant depth 2 captured at rejection", aerr.Queued)
	}
	// ...while the uncapped tenant still admits.
	granted := make(chan struct{})
	go func() {
		release, err := a.admit(context.Background(), free, 1)
		if err != nil {
			t.Error(err)
		} else {
			release()
		}
		close(granted)
	}()
	waitQueued(t, a, 3)
	hold()
	wg.Wait()
	<-granted
	// Quota clears with the backlog: the capped tenant admits again.
	release, err := a.admit(context.Background(), capped, 1)
	if err != nil {
		t.Fatalf("post-drain capped admit: %v", err)
	}
	release()
}

// TestDRRTenantInFlightCap bounds one tenant to a single execution
// slot on a multi-slot server: its second request waits for its first
// to finish even while global slots sit free, and other tenants use
// those slots meanwhile.
func TestDRRTenantInFlightCap(t *testing.T) {
	a := newAdmitter(4, 16, FCFS)
	capped := tenantLimits{id: "capped", weight: 1, maxInFlight: 1}
	free := tenantLimits{id: "free", weight: 1}

	rel1, err := a.admit(context.Background(), capped, 1)
	if err != nil {
		t.Fatal(err)
	}
	second := make(chan func(), 1)
	go func() {
		rel2, err := a.admit(context.Background(), capped, 1)
		if err != nil {
			t.Error(err)
			return
		}
		second <- rel2
	}()
	waitQueued(t, a, 1)
	select {
	case <-second:
		t.Fatal("second capped request ran alongside the first despite max_in_flight 1")
	case <-time.After(50 * time.Millisecond):
	}
	// Global capacity stays available to other tenants.
	relFree, err := a.admit(context.Background(), free, 1)
	if err != nil {
		t.Fatalf("free tenant blocked by another tenant's cap: %v", err)
	}
	relFree()
	rel1()
	select {
	case rel2 := <-second:
		rel2()
	case <-time.After(5 * time.Second):
		t.Fatal("second capped request never granted after the first released")
	}
	if q, f := a.gauges(); q != 0 || f != 0 {
		t.Errorf("admitter did not settle: queued=%d inflight=%d", q, f)
	}
}

// TestAdmitErrorCapturesGlobalDepth fills the global queue and checks
// the 429's depth is the depth at the instant of rejection.
func TestAdmitErrorCapturesGlobalDepth(t *testing.T) {
	const depth = 3
	a := newAdmitter(1, depth, FCFS)
	hold, err := a.admit(context.Background(), anonLimits, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := a.admit(context.Background(), anonLimits, 1)
			if err != nil {
				t.Error(err)
				return
			}
			release()
		}()
		waitQueued(t, a, i+1)
	}
	_, err = a.admit(context.Background(), anonLimits, 1)
	var aerr *AdmitError
	if !errors.As(err, &aerr) || !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow err = %v, want ErrQueueFull inside AdmitError", err)
	}
	if aerr.Queued != depth {
		t.Errorf("AdmitError.Queued = %d, want %d (depth at rejection)", aerr.Queued, depth)
	}
	if got := aerr.Error(); got != fmt.Sprintf("serve: admission queue full (%d queued)", depth) {
		t.Errorf("AdmitError.Error() = %q", got)
	}
	hold()
	wg.Wait()
}

// TestTenantGauges checks the per-tenant queue/in-flight snapshot the
// metrics endpoint renders.
func TestTenantGauges(t *testing.T) {
	a := newAdmitter(1, 8, FCFS)
	hold, err := a.admit(context.Background(), tenantLimits{id: "b-tenant", weight: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan struct{})
	go func() {
		release, err := a.admit(context.Background(), tenantLimits{id: "a-tenant", weight: 1}, 1)
		if err != nil {
			t.Error(err)
			return
		}
		<-queued
		release()
	}()
	waitQueued(t, a, 1)
	g := a.tenantGauges()
	if len(g) != 2 || g[0].id != "a-tenant" || g[1].id != "b-tenant" {
		t.Fatalf("tenantGauges = %+v, want a-tenant then b-tenant", g)
	}
	if g[0].queued != 1 || g[0].inflight != 0 || g[1].queued != 0 || g[1].inflight != 1 {
		t.Errorf("gauges = %+v", g)
	}
	hold()
	close(queued)
}
