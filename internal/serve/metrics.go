package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/stats"
)

// metricsRegistry tracks per-endpoint request counts and latency
// histograms and renders them in the Prometheus text exposition
// format. It is deliberately tiny — the module has no Prometheus
// client dependency, and the text format is a stable contract.
type metricsRegistry struct {
	mu       sync.Mutex
	requests map[requestKey]uint64
	latency  map[string]*stats.ExpHistogram
}

type requestKey struct {
	endpoint string
	code     int
}

func newMetricsRegistry() *metricsRegistry {
	return &metricsRegistry{
		requests: make(map[requestKey]uint64),
		latency:  make(map[string]*stats.ExpHistogram),
	}
}

// observe records one served request.
func (m *metricsRegistry) observe(endpoint string, code int, dur time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[requestKey{endpoint, code}]++
	h, ok := m.latency[endpoint]
	if !ok {
		// 100 µs up to ~1.7 min in ×2 steps: simulation requests span
		// sub-millisecond cache hits to multi-second cold sweeps.
		h = stats.NewExpHistogram(100e-6, 2, 20)
		m.latency[endpoint] = h
	}
	h.Observe(dur.Seconds())
}

// render writes every series. Output order is deterministic so the
// endpoint is diffable and testable.
func (m *metricsRegistry) render(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP ringsim_serve_requests_total Served requests by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE ringsim_serve_requests_total counter")
	keys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "ringsim_serve_requests_total{endpoint=%q,code=\"%d\"} %d\n",
			k.endpoint, k.code, m.requests[k])
	}

	fmt.Fprintln(w, "# HELP ringsim_serve_request_seconds Request latency by endpoint.")
	fmt.Fprintln(w, "# TYPE ringsim_serve_request_seconds histogram")
	endpoints := make([]string, 0, len(m.latency))
	for ep := range m.latency {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		h := m.latency[ep]
		bounds, counts := h.Buckets()
		var cum uint64
		for i, b := range bounds {
			cum += counts[i]
			fmt.Fprintf(w, "ringsim_serve_request_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", ep, b, cum)
		}
		cum += counts[len(counts)-1]
		fmt.Fprintf(w, "ringsim_serve_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		fmt.Fprintf(w, "ringsim_serve_request_seconds_sum{endpoint=%q} %g\n", ep, h.Sum())
		fmt.Fprintf(w, "ringsim_serve_request_seconds_count{endpoint=%q} %d\n", ep, h.N())
	}
}
