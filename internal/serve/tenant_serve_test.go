package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sweep"
	"repro/internal/tenant"
)

// postJobAs submits one job authenticated as the given API key.
func postJobAs(t *testing.T, url, key string, job sweep.Job) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, raw
}

func mustRegistry(t *testing.T, tenants []tenant.Tenant, allowAnon bool) *tenant.Registry {
	t.Helper()
	reg, err := tenant.New(tenants, allowAnon)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestTenantAuth(t *testing.T) {
	reg := mustRegistry(t, []tenant.Tenant{
		{ID: "acme", Keys: []string{"acme-key"}},
	}, false)
	_, ts := newTestServer(t, &fakeExecutor{}, Options{Tenants: reg})

	if resp, raw := postJobAs(t, ts.URL, "", testJob(1)); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("anonymous submit with anon disabled: status %d: %s", resp.StatusCode, raw)
	}
	if resp, raw := postJobAs(t, ts.URL, "wrong-key", testJob(1)); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unknown key: status %d: %s", resp.StatusCode, raw)
	} else if resp.Header.Get("WWW-Authenticate") == "" {
		t.Error("401 without WWW-Authenticate")
	}
	if resp, raw := postJobAs(t, ts.URL, "acme-key", testJob(1)); resp.StatusCode != http.StatusOK {
		t.Errorf("valid key: status %d: %s", resp.StatusCode, raw)
	}

	// The api_key query parameter authenticates clients that cannot set
	// headers (EventSource).
	resp, err := http.Get(ts.URL + "/v1/usage?api_key=acme-key")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("api_key query auth: status %d", resp.StatusCode)
	}
	var u tenant.TenantUsage
	if err := json.NewDecoder(resp.Body).Decode(&u); err != nil {
		t.Fatal(err)
	}
	if u.ID != "acme" || u.Usage.Jobs != 1 || u.Usage.Computed != 1 {
		t.Errorf("usage after one computed job = %+v", u)
	}
}

func TestTenantRateLimitRetryAfter(t *testing.T) {
	reg := mustRegistry(t, []tenant.Tenant{
		{ID: "slow", Keys: []string{"slow-key"}, RatePerSec: 0.5, Burst: 1},
	}, false)
	_, ts := newTestServer(t, &fakeExecutor{}, Options{Tenants: reg})

	if resp, raw := postJobAs(t, ts.URL, "slow-key", testJob(1)); resp.StatusCode != http.StatusOK {
		t.Fatalf("burst token submit: status %d: %s", resp.StatusCode, raw)
	}
	resp, raw := postJobAs(t, ts.URL, "slow-key", testJob(2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit: status %d: %s", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("rate-limit 429 Retry-After = %q, want a positive whole-second hint", ra)
	}
	var u tenant.TenantUsage
	if tu, ok := reg.Usage("slow"); ok {
		u = tu
	}
	if u.Usage.RateLimited != 1 {
		t.Errorf("rate_limited count = %d, want 1", u.Usage.RateLimited)
	}
}

// TestTwoTenantIsolation floods the server with one tenant's batch
// jobs and checks the other tenant's interactive requests still
// complete promptly: the flood saturates its own quota (429 with
// Retry-After) instead of the shared queue, and the fair queue grants
// the interactive tenant a slot per round instead of parking it
// behind the backlog.
func TestTwoTenantIsolation(t *testing.T) {
	reg := mustRegistry(t, []tenant.Tenant{
		{ID: "batch", Keys: []string{"batch-key"}, MaxQueued: 4, MaxInFlight: 1},
		{ID: "inter", Keys: []string{"inter-key"}, Weight: 2},
	}, false)
	fake := &fakeExecutor{delay: 20 * time.Millisecond}
	_, ts := newTestServer(t, fake, Options{Tenants: reg, MaxInFlight: 2, QueueDepth: 64})

	// The flood: 24 concurrent distinct jobs from the batch tenant.
	var flood sync.WaitGroup
	var rejected atomic.Int64
	var retryAfterSeen atomic.Bool
	stop := make(chan struct{})
	for i := 0; i < 24; i++ {
		flood.Add(1)
		go func(seed uint64) {
			defer flood.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, _ := postJobAs(t, ts.URL, "batch-key", testJob(seed))
				if resp.StatusCode == http.StatusTooManyRequests {
					rejected.Add(1)
					if resp.Header.Get("Retry-After") != "" {
						retryAfterSeen.Store(true)
					}
					time.Sleep(5 * time.Millisecond)
					continue
				}
				return
			}
		}(uint64(100 + i))
	}

	// The interactive tenant submits sequentially through the flood.
	var worst time.Duration
	for i := 0; i < 5; i++ {
		begin := time.Now()
		resp, raw := postJobAs(t, ts.URL, "inter-key", testJob(uint64(1000+i)))
		if resp.StatusCode != http.StatusOK {
			t.Errorf("interactive job %d: status %d: %s", i, resp.StatusCode, raw)
		}
		if d := time.Since(begin); d > worst {
			worst = d
		}
	}
	close(stop)
	flood.Wait()

	if rejected.Load() == 0 {
		t.Error("batch flood never hit its quota (want 429s)")
	} else if !retryAfterSeen.Load() {
		t.Error("quota 429s carried no Retry-After header")
	}
	// With max_in_flight 1 for batch, one of 2 slots is always free
	// within ~one job time for the interactive tenant; 2s is orders of
	// magnitude of headroom over the 20ms job.
	if worst > 2*time.Second {
		t.Errorf("interactive worst-case latency %v under batch flood, want bounded well under 2s", worst)
	}

	bu, _ := reg.Usage("batch")
	if bu.Usage.Rejected == 0 {
		t.Error("batch tenant usage recorded no admission rejections")
	}
}

// TestTenantMetricsAndUsageAll checks the ringsim_tenant_* exposition
// family and the operator-wide usage listing.
func TestTenantMetricsAndUsageAll(t *testing.T) {
	reg := mustRegistry(t, []tenant.Tenant{
		{ID: "acme", Keys: []string{"acme-key"}, Weight: 3},
	}, true)
	_, ts := newTestServer(t, &fakeExecutor{}, Options{Tenants: reg})

	postJobAs(t, ts.URL, "acme-key", testJob(1))
	postJobAs(t, ts.URL, "acme-key", testJob(1)) // memory hit
	postJobAs(t, ts.URL, "", testJob(2))         // anonymous

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	for _, want := range []string{
		`ringsim_tenant_jobs_total{tenant="acme",state="computed"} 1`,
		`ringsim_tenant_jobs_total{tenant="acme",state="cache_hits"} 1`,
		`ringsim_tenant_jobs_total{tenant="anonymous",state="computed"} 1`,
		`ringsim_tenant_queue_depth{tenant="acme"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/usage?all=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Tenants []tenant.TenantUsage `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Tenants) != 2 {
		t.Fatalf("usage?all=1 listed %d tenants, want 2", len(body.Tenants))
	}
	if body.Tenants[0].ID != "acme" || body.Tenants[0].Usage.Jobs != 2 {
		t.Errorf("acme usage = %+v", body.Tenants[0])
	}
	// The listing must never leak API keys.
	if strings.Contains(fmt.Sprintf("%+v", body), "acme-key") {
		t.Error("usage listing leaked an API key")
	}
}
