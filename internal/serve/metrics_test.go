package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// expositionLine matches one Prometheus text-format sample:
// name{labels} value — where the label block is optional and the value
// is a float, integer, or +Inf.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\n]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\n]*")*\})? (-?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?|\+Inf|NaN)$`)

// TestMetricsExpositionFormat fetches /metrics after real traffic and
// checks the contract the satellite fix pinned down: every sample line
// parses as the text exposition format, every metric is named
// ringsim_<subsystem>_..., and every sample is preceded by HELP/TYPE
// headers for its family.
func TestMetricsExpositionFormat(t *testing.T) {
	fake := &fakeExecutor{}
	_, ts := newTestServer(t, fake, Options{})

	// Generate some traffic so counters and histograms are populated.
	postJob(t, ts.URL, testJob(1), "")
	postJob(t, ts.URL, testJob(1), "")
	if resp, err := http.Get(ts.URL + "/healthz"); err == nil {
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)

	declared := map[string]bool{} // families with HELP+TYPE seen
	samples := 0
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) < 4 {
				t.Errorf("malformed header: %q", line)
				continue
			}
			declared[fields[2]] = true
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("line does not parse as exposition format: %q", line)
			continue
		}
		samples++
		name := line[:strings.IndexAny(line, "{ ")]
		if !strings.HasPrefix(name, "ringsim_") {
			t.Errorf("metric %q does not follow ringsim_<subsystem>_<name>_<unit>", name)
		}
		sub := strings.SplitN(strings.TrimPrefix(name, "ringsim_"), "_", 2)[0]
		switch sub {
		case "serve", "engine", "sim", "obs", "tenant", "build", "reqtrace", "cluster", "fleet":
		default:
			t.Errorf("metric %q has unknown subsystem %q", name, sub)
		}
		// Histogram sample suffixes belong to the family name.
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			family = strings.TrimSuffix(family, suf)
		}
		if !declared[family] && !declared[name] {
			t.Errorf("sample %q has no preceding HELP/TYPE header", name)
		}
	}
	if samples == 0 {
		t.Fatal("no samples on /metrics")
	}
	for _, want := range []string{
		"ringsim_serve_requests_total",
		"ringsim_serve_request_seconds",
		"ringsim_engine_jobs_total",
		"ringsim_engine_events_fired_total",
		"ringsim_engine_event_slab_max",
		"ringsim_sim_parallel_runs_total",
		"ringsim_sim_parallel_cross_windows_total",
		"ringsim_sim_parallel_window_width_ps",
		"ringsim_sim_parallel_barrier_stall_ns_total",
		"ringsim_obs_spans_total",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metric family %s missing from /metrics", want)
		}
	}
}

// TestResultTraceEndpoint exercises GET /v1/results/{hash}/trace over
// a real traced simulation: the export must be Perfetto-loadable JSON,
// and untraced or unknown results must 404.
func TestResultTraceEndpoint(t *testing.T) {
	eng := sweep.New(sweep.Options{Workers: 2, Trace: obs.Config{SampleEvery: 16}})
	_, ts := newTestServer(t, nil, Options{Engine: eng})

	job := sweep.Job{Benchmark: "MP3D", CPUs: 8, DataRefsPerCPU: 200, Seed: 4}
	resp, raw := postJob(t, ts.URL, job, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	hash := decodeJobResult(t, raw).Hash

	get, err := http.Get(ts.URL + "/v1/results/" + hash + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	if get.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", get.StatusCode)
	}
	if ct := get.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(get.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	// Unknown hash and malformed hash.
	if r, err := http.Get(ts.URL + "/v1/results/" + strings.Repeat("0", 64) + "/trace"); err == nil {
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("unknown hash trace status %d, want 404", r.StatusCode)
		}
		r.Body.Close()
	}
	if r, err := http.Get(ts.URL + "/v1/results/nope/trace"); err == nil {
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("bad hash trace status %d, want 400", r.StatusCode)
		}
		r.Body.Close()
	}

	// An untraced engine serves results but not traces.
	fake := &fakeExecutor{}
	_, ts2 := newTestServer(t, fake, Options{})
	resp, raw = postJob(t, ts2.URL, testJob(2), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("untraced submit status %d: %s", resp.StatusCode, raw)
	}
	h2 := decodeJobResult(t, raw).Hash
	if r, err := http.Get(ts2.URL + "/v1/results/" + h2 + "/trace"); err == nil {
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("untraced result trace status %d, want 404", r.StatusCode)
		}
		r.Body.Close()
	}
}
