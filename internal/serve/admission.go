package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Errors the admission queue reports; the HTTP layer maps them to 429
// (queue full) and 503 (draining).
var (
	ErrQueueFull = errors.New("serve: admission queue full")
	ErrDraining  = errors.New("serve: server draining")
)

// Discipline selects the admission queue's service order — the same
// trade the paper's interconnect arbitration faces: FCFS is fair,
// shortest-job-first minimizes mean waiting time at the cost of
// potentially starving long sweeps under sustained short-job load.
type Discipline int

const (
	// FCFS serves queued requests in arrival order.
	FCFS Discipline = iota
	// ShortestJob serves the queued request with the smallest cost
	// estimate first (arrival order breaks ties).
	ShortestJob
)

// String names the discipline.
func (d Discipline) String() string {
	switch d {
	case FCFS:
		return "fcfs"
	case ShortestJob:
		return "sjf"
	}
	return fmt.Sprintf("Discipline(%d)", int(d))
}

// ParseDiscipline maps a flag value to a Discipline.
func ParseDiscipline(s string) (Discipline, error) {
	switch s {
	case "fcfs", "":
		return FCFS, nil
	case "sjf", "shortest-job":
		return ShortestJob, nil
	}
	return 0, fmt.Errorf("serve: unknown admission discipline %q (want fcfs or sjf)", s)
}

// waiter is one queued admission request.
type waiter struct {
	cost      int64
	seq       uint64
	ready     chan struct{}
	granted   bool
	abandoned bool
}

// admitter is the bounded admission queue: at most maxInFlight
// requests hold execution slots, at most depth more wait in the queue,
// and everything beyond that is rejected immediately — overload sheds
// at the door rather than collapsing the pool.
type admitter struct {
	mu          sync.Mutex
	idle        sync.Cond
	maxInFlight int
	depth       int
	disc        Discipline

	inflight int
	queued   int
	queue    []*waiter
	seq      uint64
	draining bool
}

func newAdmitter(maxInFlight, depth int, disc Discipline) *admitter {
	a := &admitter{maxInFlight: maxInFlight, depth: depth, disc: disc}
	a.idle.L = &a.mu
	return a
}

// admit blocks until the caller holds an execution slot, the context
// dies, or the request is rejected. On success the returned release
// function must be called exactly once when the work completes.
func (a *admitter) admit(ctx context.Context, cost int64) (release func(), err error) {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return nil, ErrDraining
	}
	if a.inflight < a.maxInFlight && a.queued == 0 {
		a.inflight++
		a.mu.Unlock()
		return a.release, nil
	}
	if a.queued >= a.depth {
		a.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &waiter{cost: cost, seq: a.seq, ready: make(chan struct{})}
	a.seq++
	a.queued++
	a.queue = append(a.queue, w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		return a.release, nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// The grant raced the cancellation; the slot is ours and
			// must be handed back, not leaked.
			a.mu.Unlock()
			a.release()
			return nil, ctx.Err()
		}
		w.abandoned = true
		a.queued--
		a.idle.Broadcast()
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

// release returns a slot: the best queued waiter inherits it, or the
// in-flight gauge drops.
func (a *admitter) release() {
	a.mu.Lock()
	if w := a.pop(); w != nil {
		w.granted = true
		a.queued--
		close(w.ready)
	} else {
		a.inflight--
	}
	a.idle.Broadcast()
	a.mu.Unlock()
}

// pop removes and returns the next waiter per the discipline, skipping
// and compacting abandoned entries. Callers hold a.mu.
func (a *admitter) pop() *waiter {
	best := -1
	live := a.queue[:0]
	for _, w := range a.queue {
		if w.abandoned {
			continue
		}
		live = append(live, w)
		i := len(live) - 1
		if best == -1 {
			best = i
			continue
		}
		b := live[best]
		switch a.disc {
		case ShortestJob:
			if w.cost < b.cost || (w.cost == b.cost && w.seq < b.seq) {
				best = i
			}
		default: // FCFS
			if w.seq < b.seq {
				best = i
			}
		}
	}
	a.queue = live
	if best == -1 {
		return nil
	}
	w := a.queue[best]
	a.queue = append(a.queue[:best], a.queue[best+1:]...)
	return w
}

// beginDrain stops admitting new work; queued and in-flight requests
// run to completion.
func (a *admitter) beginDrain() {
	a.mu.Lock()
	a.draining = true
	a.mu.Unlock()
}

// drainWait blocks until no request is in flight or queued, or the
// context dies.
func (a *admitter) drainWait(ctx context.Context) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			// Taking the lock first guarantees the waiter is parked in
			// Wait (not between its ctx check and Wait), so the wakeup
			// cannot be lost.
			a.mu.Lock()
			a.idle.Broadcast()
			a.mu.Unlock()
		case <-done:
		}
	}()
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.inflight > 0 || a.queued > 0 {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		a.idle.Wait()
	}
	return nil
}

// gauges reports the current queue depth and in-flight count.
func (a *admitter) gauges() (queued, inflight int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued, a.inflight
}
