package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/tenant"
)

// Errors the admission queue reports; the HTTP layer maps queue-full
// and tenant-quota rejections to 429 and draining to 503. Rejections
// arrive wrapped in *AdmitError, which carries the queue depth
// captured at the moment of rejection.
var (
	ErrQueueFull   = errors.New("serve: admission queue full")
	ErrTenantQuota = errors.New("serve: tenant admission quota exhausted")
	ErrDraining    = errors.New("serve: server draining")
)

// AdmitError is an admission rejection with the context the HTTP
// layer reports: which limit refused the request and how deep the
// relevant queue was at that instant (the global queue for
// ErrQueueFull, the tenant's own queue for ErrTenantQuota).
type AdmitError struct {
	Err    error
	Queued int
}

func (e *AdmitError) Error() string {
	return fmt.Sprintf("%v (%d queued)", e.Err, e.Queued)
}

func (e *AdmitError) Unwrap() error { return e.Err }

// Discipline selects the intra-tenant service order — the same trade
// the paper's interconnect arbitration faces: FCFS is fair, shortest-
// job-first minimizes mean waiting time at the cost of potentially
// starving long sweeps under sustained short-job load. Across
// tenants, the queue is always weighted deficit round robin.
type Discipline int

const (
	// FCFS serves a tenant's queued requests in arrival order.
	FCFS Discipline = iota
	// ShortestJob serves the tenant's queued request with the smallest
	// cost estimate first (arrival order breaks ties).
	ShortestJob
)

// String names the discipline.
func (d Discipline) String() string {
	switch d {
	case FCFS:
		return "fcfs"
	case ShortestJob:
		return "sjf"
	}
	return fmt.Sprintf("Discipline(%d)", int(d))
}

// ParseDiscipline maps a flag value to a Discipline.
func ParseDiscipline(s string) (Discipline, error) {
	switch s {
	case "fcfs", "":
		return FCFS, nil
	case "sjf", "shortest-job":
		return ShortestJob, nil
	}
	return 0, fmt.Errorf("serve: unknown admission discipline %q (want fcfs or sjf)", s)
}

// tenantLimits is the slice of a tenant record the admitter enforces.
type tenantLimits struct {
	id          string
	weight      int
	maxQueued   int // 0 = unbounded (global depth still applies)
	maxInFlight int // 0 = unbounded (global bound still applies)
}

// limitsFor projects a tenant record onto the admitter's view.
func limitsFor(tn tenant.Tenant) tenantLimits {
	w := tn.Weight
	if w <= 0 {
		w = 1
	}
	return tenantLimits{id: tn.ID, weight: w, maxQueued: tn.MaxQueued, maxInFlight: tn.MaxInFlight}
}

// anonLimits is the default flow for registries without quotas.
var anonLimits = tenantLimits{id: tenant.AnonymousID, weight: 1}

// waiter is one queued admission request.
type waiter struct {
	cost      int64
	seq       uint64
	ready     chan struct{}
	granted   bool
	abandoned bool
}

// tenantQueue is one tenant's flow state: its waiters, its deficit
// counter, and its share of the gauges. Queues persist across idle
// periods so the in-flight gauge and quota checks survive bursts.
type tenantQueue struct {
	id          string
	weight      int
	maxQueued   int
	maxInFlight int

	queue    []*waiter
	deficit  int64
	queued   int // live (non-abandoned) waiters
	inflight int
	active   bool // member of admitter.active
}

// drrQuantum is the deficit increment unit in cost terms (one default
// 8-CPU x 2000-reference job). Its absolute value only scales how
// coarsely rounds are accounted; weighted shares come from the
// per-tenant weight multiplier, and the top-up in pick is computed so
// every grant costs O(active tenants) regardless of job size.
const drrQuantum = 16000

// admitter is the bounded admission queue: at most maxInFlight
// requests hold execution slots, at most depth more wait across the
// per-tenant queues, and everything beyond that is rejected
// immediately — overload sheds at the door rather than collapsing the
// pool. Execution slots are granted across tenants by weighted
// deficit round robin, and within a tenant by the configured
// discipline, so one tenant's 10k-job backlog delays a competing
// tenant by at most a few quanta, never by the whole backlog.
type admitter struct {
	mu          sync.Mutex
	idle        sync.Cond
	maxInFlight int
	depth       int
	disc        Discipline

	inflight int
	queued   int
	seq      uint64
	draining bool

	tenants map[string]*tenantQueue
	active  []*tenantQueue // tenants with live waiters, round-robin order
	rrPos   int
}

func newAdmitter(maxInFlight, depth int, disc Discipline) *admitter {
	a := &admitter{
		maxInFlight: maxInFlight,
		depth:       depth,
		disc:        disc,
		tenants:     make(map[string]*tenantQueue),
	}
	a.idle.L = &a.mu
	return a
}

// queueFor returns the tenant's flow, creating it on first contact
// and refreshing its limits (the registry is the source of truth and
// may have been reloaded).
func (a *admitter) queueFor(lim tenantLimits) *tenantQueue {
	tq, ok := a.tenants[lim.id]
	if !ok {
		tq = &tenantQueue{id: lim.id}
		a.tenants[lim.id] = tq
	}
	tq.weight = lim.weight
	if tq.weight <= 0 {
		tq.weight = 1
	}
	tq.maxQueued = lim.maxQueued
	tq.maxInFlight = lim.maxInFlight
	return tq
}

// admit blocks until the caller holds an execution slot, the context
// dies, or the request is rejected. On success the returned release
// function must be called exactly once when the work completes.
func (a *admitter) admit(ctx context.Context, lim tenantLimits, cost int64) (release func(), err error) {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return nil, ErrDraining
	}
	tq := a.queueFor(lim)
	if a.queued >= a.depth {
		q := a.queued
		a.mu.Unlock()
		return nil, &AdmitError{Err: ErrQueueFull, Queued: q}
	}
	if tq.maxQueued > 0 && tq.queued >= tq.maxQueued {
		q := tq.queued
		a.mu.Unlock()
		return nil, &AdmitError{Err: ErrTenantQuota, Queued: q}
	}
	w := &waiter{cost: cost, seq: a.seq, ready: make(chan struct{})}
	a.seq++
	a.queued++
	tq.queued++
	tq.queue = append(tq.queue, w)
	if !tq.active {
		tq.active = true
		a.active = append(a.active, tq)
	}
	a.fill()
	a.mu.Unlock()

	select {
	case <-w.ready:
		return func() { a.release(tq) }, nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// The grant raced the cancellation; the slot is ours and
			// must be handed back, not leaked.
			a.mu.Unlock()
			a.release(tq)
			return nil, ctx.Err()
		}
		w.abandoned = true
		a.queued--
		tq.queued--
		a.idle.Broadcast()
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

// release returns a slot; queued waiters inherit it via fill.
func (a *admitter) release(tq *tenantQueue) {
	a.mu.Lock()
	tq.inflight--
	a.inflight--
	a.fill()
	a.idle.Broadcast()
	a.mu.Unlock()
}

// fill grants free execution slots to queued waiters, one DRR pick at
// a time, until slots or grantable waiters run out. Callers hold a.mu.
func (a *admitter) fill() {
	for a.inflight < a.maxInFlight {
		w, tq := a.pick()
		if w == nil {
			return
		}
		a.inflight++
		tq.inflight++
		a.queued--
		tq.queued--
		w.granted = true
		close(w.ready)
	}
}

// compactActive drops emptied flows from the round-robin ring,
// resetting their deficit so idle tenants cannot bank credit.
// Callers hold a.mu.
func (a *admitter) compactActive() {
	live := a.active[:0]
	for i, tq := range a.active {
		if tq.queued > 0 {
			live = append(live, tq)
			continue
		}
		tq.active = false
		tq.deficit = 0
		tq.queue = tq.queue[:0]
		if i < a.rrPos {
			a.rrPos--
		}
	}
	// Zero dangling tail slots so emptied flows are collectable.
	for i := len(live); i < len(a.active); i++ {
		a.active[i] = nil
	}
	a.active = live
	if len(a.active) == 0 {
		a.rrPos = 0
	} else {
		a.rrPos %= len(a.active)
	}
}

// pick chooses the next waiter by weighted deficit round robin across
// eligible tenants (live waiters, in-flight below the tenant cap),
// with the configured discipline ordering each tenant's own queue.
// When no eligible head is affordable, every eligible flow's deficit
// is topped up by the same whole number of weight-scaled quanta —
// just enough for the cheapest shortfall — so service stays
// proportional to weight and each grant costs O(active tenants).
// Callers hold a.mu.
func (a *admitter) pick() (*waiter, *tenantQueue) {
	a.compactActive()
	if len(a.active) == 0 {
		return nil, nil
	}
	for round := 0; round < 2; round++ {
		// Scan from the round-robin cursor for an affordable head.
		minTopUp := int64(-1)
		for i := 0; i < len(a.active); i++ {
			pos := (a.rrPos + i) % len(a.active)
			tq := a.active[pos]
			if tq.maxInFlight > 0 && tq.inflight >= tq.maxInFlight {
				continue
			}
			idx := tq.head(a.disc)
			if idx < 0 {
				continue
			}
			w := tq.queue[idx]
			if tq.deficit >= w.cost {
				tq.deficit -= w.cost
				tq.queue = append(tq.queue[:idx], tq.queue[idx+1:]...)
				a.rrPos = pos
				return w, tq
			}
			quanta := (w.cost - tq.deficit + int64(tq.weight)*drrQuantum - 1) / (int64(tq.weight) * drrQuantum)
			if minTopUp < 0 || quanta < minTopUp {
				minTopUp = quanta
			}
		}
		if minTopUp < 0 {
			// Every flow is quota-blocked or abandoned-only.
			a.compactActive()
			return nil, nil
		}
		// Top up all eligible flows proportionally to weight; the next
		// scan is guaranteed to find an affordable head.
		for _, tq := range a.active {
			if tq.maxInFlight > 0 && tq.inflight >= tq.maxInFlight {
				continue
			}
			tq.deficit += minTopUp * int64(tq.weight) * drrQuantum
		}
	}
	return nil, nil // unreachable: the post-top-up scan always grants
}

// head returns the index of the tenant's next waiter per the
// discipline, compacting abandoned entries first; -1 when none live.
func (tq *tenantQueue) head(disc Discipline) int {
	live := tq.queue[:0]
	for _, w := range tq.queue {
		if !w.abandoned {
			live = append(live, w)
		}
	}
	for i := len(live); i < len(tq.queue); i++ {
		tq.queue[i] = nil
	}
	tq.queue = live
	if len(tq.queue) == 0 {
		return -1
	}
	best := 0
	if disc == ShortestJob {
		for i, w := range tq.queue[1:] {
			b := tq.queue[best]
			if w.cost < b.cost || (w.cost == b.cost && w.seq < b.seq) {
				best = i + 1
			}
		}
	}
	// FCFS: queue order is arrival order, so index 0 is the head.
	return best
}

// beginDrain stops admitting new work; queued and in-flight requests
// run to completion.
func (a *admitter) beginDrain() {
	a.mu.Lock()
	a.draining = true
	a.mu.Unlock()
}

// drainWait blocks until no request is in flight or queued, or the
// context dies.
func (a *admitter) drainWait(ctx context.Context) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			// Taking the lock first guarantees the waiter is parked in
			// Wait (not between its ctx check and Wait), so the wakeup
			// cannot be lost.
			a.mu.Lock()
			a.idle.Broadcast()
			a.mu.Unlock()
		case <-done:
		}
	}()
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.inflight > 0 || a.queued > 0 {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		a.idle.Wait()
	}
	return nil
}

// gauges reports the current global queue depth and in-flight count.
func (a *admitter) gauges() (queued, inflight int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued, a.inflight
}

// tenantGauge is one tenant's share of the admission gauges.
type tenantGauge struct {
	id       string
	queued   int
	inflight int
}

// tenantGauges snapshots per-tenant queue depth and in-flight counts,
// sorted by tenant ID for deterministic metrics output.
func (a *admitter) tenantGauges() []tenantGauge {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]tenantGauge, 0, len(a.tenants))
	for id, tq := range a.tenants {
		out = append(out, tenantGauge{id: id, queued: tq.queued, inflight: tq.inflight})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// retryAfterHeader formats a Retry-After duration as whole seconds,
// rounding up with a floor of one second — the finest grain the
// header supports.
func retryAfterHeader(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}
