package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs/reqtrace"
	olog "repro/internal/obs/slog"
)

// syncBuffer is a goroutine-safe log sink: handler goroutines write,
// the test reads after the response lands.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestIDIssuedAndTraceRetrievable drives a request through a
// traced server and pins the tentpole contract: the response carries
// X-Ringsim-Request, and GET /v1/requests/{id}/trace returns one
// connected span tree covering the endpoint, auth, admission, and
// engine run.
func TestRequestIDIssuedAndTraceRetrievable(t *testing.T) {
	fake := &fakeExecutor{}
	rt := reqtrace.NewTracer("serve", 64)
	_, ts := newTestServer(t, fake, Options{ReqTracer: rt})

	resp, raw := postJob(t, ts.URL, testJob(1), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	reqID := resp.Header.Get(reqtrace.HeaderRequest)
	if !reqtrace.ValidID(reqID) {
		t.Fatalf("response request id %q invalid", reqID)
	}
	hash := decodeJobResult(t, raw).Hash

	get, err := http.Get(ts.URL + "/v1/requests/" + reqID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	if get.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch status %d", get.StatusCode)
	}
	var doc reqtrace.TraceDoc
	if err := json.NewDecoder(get.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.RequestID != reqID {
		t.Errorf("doc request id %q, want %q", doc.RequestID, reqID)
	}

	byName := map[string]reqtrace.SpanData{}
	ids := map[string]bool{}
	for _, s := range doc.Spans {
		byName[s.Name] = s
		ids[s.ID] = true
	}
	for _, want := range []string{"jobs", "auth", "admit", "run"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("span %q missing; have %v", want, names(doc.Spans))
		}
	}
	// Connectivity: exactly one root, every parent resolves in-tree.
	roots := 0
	for _, s := range doc.Spans {
		if s.Parent == "" {
			roots++
		} else if !ids[s.Parent] {
			t.Errorf("span %s has dangling parent %s", s.Name, s.Parent)
		}
	}
	if roots != 1 {
		t.Errorf("%d roots, want 1", roots)
	}
	if got := byName["admit"].Attrs["outcome"]; got != "granted" {
		t.Errorf("admit outcome = %q", got)
	}
	if got := byName["run"].Attrs["hash"]; got != hash {
		t.Errorf("run hash attr = %q, want %q", got, hash)
	}
	if got := byName["jobs"].Attrs["status"]; got != "200" {
		t.Errorf("root status attr = %q", got)
	}

	// Chrome export of the same trace parses.
	chrome, err := http.Get(ts.URL + "/v1/requests/" + reqID + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer chrome.Body.Close()
	var cf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(chrome.Body).Decode(&cf); err != nil {
		t.Fatalf("chrome format: %v", err)
	}
	if len(cf.TraceEvents) == 0 {
		t.Error("chrome export empty")
	}
}

func names(spans []reqtrace.SpanData) []string {
	var out []string
	for _, s := range spans {
		out = append(out, s.Name)
	}
	return out
}

// TestClientSuppliedRequestID: a well-formed client ID is honored,
// a malformed one replaced.
func TestClientSuppliedRequestID(t *testing.T) {
	fake := &fakeExecutor{}
	rt := reqtrace.NewTracer("serve", 64)
	_, ts := newTestServer(t, fake, Options{ReqTracer: rt})

	body, _ := json.Marshal(testJob(1))
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set(reqtrace.HeaderRequest, "cafe0123deadbeef")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(reqtrace.HeaderRequest); got != "cafe0123deadbeef" {
		t.Errorf("client id not honored: %q", got)
	}

	req, _ = http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set(reqtrace.HeaderRequest, "NOT VALID/../id")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(reqtrace.HeaderRequest); !reqtrace.ValidID(got) || got == "NOT VALID/../id" {
		t.Errorf("malformed client id echoed: %q", got)
	}
}

// TestErrorBodiesCarryRequestID pins the satellite contract: 4xx/5xx
// envelopes carry the request ID that names their trace.
func TestErrorBodiesCarryRequestID(t *testing.T) {
	fake := &fakeExecutor{}
	_, ts := newTestServer(t, fake, Options{}) // untraced: IDs still issued

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{bad"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var eb struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if !reqtrace.ValidID(eb.RequestID) {
		t.Errorf("error body request_id = %q", eb.RequestID)
	}
	if eb.RequestID != resp.Header.Get(reqtrace.HeaderRequest) {
		t.Errorf("body id %q != header id %q", eb.RequestID, resp.Header.Get(reqtrace.HeaderRequest))
	}
}

// TestRequestTraceEndpointEdges: disabled tracing, unknown and
// malformed IDs.
func TestRequestTraceEndpointEdges(t *testing.T) {
	fake := &fakeExecutor{}
	_, ts := newTestServer(t, fake, Options{}) // tracing off

	for path, want := range map[string]int{
		"/v1/requests/0123456789abcdef/trace": http.StatusNotFound, // disabled
		"/v1/requests/NOPE/trace":             http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}

	rt := reqtrace.NewTracer("serve", 8)
	_, ts2 := newTestServer(t, fake, Options{ReqTracer: rt})
	resp, err := http.Get(ts2.URL + "/v1/requests/0123456789abcdef/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id status %d, want 404", resp.StatusCode)
	}
}

// TestClusterEndpointsWithoutCoordinator: a plain node answers 404 on
// the cluster surfaces; with hooks set they serve the hook's output.
func TestClusterEndpoints(t *testing.T) {
	fake := &fakeExecutor{}
	_, ts := newTestServer(t, fake, Options{})
	for _, path := range []string{"/v1/cluster/status", "/v1/cluster/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}

	type statusDoc struct {
		Live int `json:"live"`
	}
	_, ts2 := newTestServer(t, fake, Options{
		ClusterStatus: func() any { return statusDoc{Live: 3} },
		FederateMetrics: func(ctx context.Context, self func(io.Writer), w io.Writer) {
			self(w)
		},
	})
	resp, err := http.Get(ts2.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	var sd statusDoc
	json.NewDecoder(resp.Body).Decode(&sd)
	resp.Body.Close()
	if sd.Live != 3 {
		t.Errorf("status live = %d", sd.Live)
	}
	resp, err = http.Get(ts2.URL + "/v1/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "ringsim_build_info") {
		t.Error("federated self exposition missing build info")
	}
}

// TestStructuredRequestLog: one request emits one JSON log line with
// the joinable keys.
func TestStructuredRequestLog(t *testing.T) {
	fake := &fakeExecutor{}
	var buf syncBuffer
	// Access lines are debug-level (see instrument); the schema contract
	// is pinned at the level where they appear.
	lg := olog.New(&buf, slog.LevelDebug, "serve")
	rt := reqtrace.NewTracer("serve", 8)
	_, ts := newTestServer(t, fake, Options{ReqTracer: rt, Logger: lg})

	resp, _ := postJob(t, ts.URL, testJob(1), "")
	reqID := resp.Header.Get(reqtrace.HeaderRequest)

	var line map[string]any
	found := false
	for _, l := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var doc map[string]any
		if json.Unmarshal([]byte(l), &doc) == nil && doc["request_id"] == reqID {
			line, found = doc, true
		}
	}
	if !found {
		t.Fatalf("no log line for request %s in:\n%s", reqID, buf.String())
	}
	if line["msg"] != "request" || line["endpoint"] != "jobs" || line["service"] != "serve" {
		t.Errorf("log line = %v", line)
	}
	if line["tenant"] != "anonymous" {
		t.Errorf("log tenant = %v", line["tenant"])
	}
	if hash, _ := line["job_hash"].(string); len(hash) != 64 {
		t.Errorf("log job_hash = %v", line["job_hash"])
	}
	if line["status"] != float64(200) {
		t.Errorf("log status = %v", line["status"])
	}
}
