package serve

import (
	"fmt"
	"sort"

	"repro/internal/sweep"
	"repro/internal/workload"
)

// ExperimentParams scale a named experiment. Zero values mean the
// paper defaults (MP3D, 16 CPUs, 2000 refs, seed 1).
type ExperimentParams struct {
	Bench string
	CPUs  int
	Refs  int
	Seed  uint64
}

func (p ExperimentParams) fill() ExperimentParams {
	if p.Bench == "" {
		p.Bench = "MP3D"
	}
	if p.CPUs == 0 {
		p.CPUs = 16
	}
	if p.Refs == 0 {
		p.Refs = 2000
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

func (p ExperimentParams) baseJob() sweep.Job {
	return sweep.Job{
		Benchmark:      p.Bench,
		CPUs:           p.CPUs,
		DataRefsPerCPU: p.Refs,
		Seed:           p.Seed,
	}
}

// experiment is one named, parameterized job set.
type experiment struct {
	desc string
	jobs func(p ExperimentParams) []sweep.Job
}

// cycleSweep expands a processor-cycle sweep (2–20 ns in 2 ns steps,
// the x-axis of Figures 3, 4 and 6) for each protocol.
func cycleSweep(p ExperimentParams, protocols ...string) []sweep.Job {
	var jobs []sweep.Job
	for _, proto := range protocols {
		for cyc := int64(2); cyc <= 20; cyc += 2 {
			j := p.baseJob()
			j.Protocol = proto
			j.ProcCyclePS = cyc * 1000
			jobs = append(jobs, j)
		}
	}
	return jobs
}

// namedExperiments is the serving layer's experiment catalog: each
// entry expands to the simulation points behind one of the paper's
// headline comparisons.
var namedExperiments = map[string]experiment{
	"calibration": {
		desc: "every protocol at the 50 MIPS calibration point",
		jobs: func(p ExperimentParams) []sweep.Job {
			var jobs []sweep.Job
			for _, proto := range []string{"snoop-ring", "directory-ring", "sci-ring", "snoop-bus"} {
				j := p.baseJob()
				j.Protocol = proto
				jobs = append(jobs, j)
			}
			return jobs
		},
	},
	"figure3": {
		desc: "snooping vs directory ring across processor speeds (Figure 3)",
		jobs: func(p ExperimentParams) []sweep.Job {
			return cycleSweep(p, "snoop-ring", "directory-ring")
		},
	},
	"figure6": {
		desc: "ring vs split-transaction bus across processor speeds (Figure 6)",
		jobs: func(p ExperimentParams) []sweep.Job {
			return cycleSweep(p, "snoop-ring", "snoop-bus")
		},
	},
	"scaling": {
		desc: "snooping ring at every profiled system size of the benchmark",
		jobs: func(p ExperimentParams) []sweep.Job {
			var jobs []sweep.Job
			for _, prof := range workload.Profiles() {
				if prof.Name != p.Bench {
					continue
				}
				j := p.baseJob()
				j.CPUs = prof.CPUs
				jobs = append(jobs, j)
			}
			return jobs
		},
	},
}

// ExperimentNames lists the catalog in sorted order.
func ExperimentNames() []string {
	names := make([]string, 0, len(namedExperiments))
	for name := range namedExperiments {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ExpandExperiment returns the job set for one named experiment.
func ExpandExperiment(name string, p ExperimentParams) ([]sweep.Job, error) {
	exp, ok := namedExperiments[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown experiment %q", name)
	}
	jobs := exp.jobs(p.fill())
	if len(jobs) == 0 {
		return nil, fmt.Errorf("serve: experiment %q is empty for %+v (unknown benchmark?)", name, p.fill())
	}
	return jobs, nil
}
