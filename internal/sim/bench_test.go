package sim

import "testing"

// The zero-allocation guards below are ordinary tests (not benchmarks)
// so they run in every `go test` and in the CI bench-smoke step: a
// change that reintroduces a per-event heap allocation fails the build,
// not just a benchmark comparison.

type countHandler struct{ n int }

func (h *countHandler) OnEvent(at Time) { h.n++ }

func TestAtEventDispatchZeroAlloc(t *testing.T) {
	k := NewKernel()
	h := &countHandler{}
	// Warm the slab, wheel buckets and free list.
	for i := 0; i < 64; i++ {
		k.AfterEvent(Duration(i), h)
	}
	k.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		k.AfterEvent(100, h)
		k.Run()
	})
	if allocs != 0 {
		t.Fatalf("AtEvent schedule+dispatch allocates %.1f objects/op, want 0", allocs)
	}
}

func TestAtDispatchZeroAlloc(t *testing.T) {
	// The closure path is also allocation-free once the closure itself
	// exists: the kernel stores fn in a recycled slab record.
	k := NewKernel()
	fired := 0
	fn := func() { fired++ }
	for i := 0; i < 64; i++ {
		k.After(Duration(i), fn)
	}
	k.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		k.After(100, fn)
		k.Run()
	})
	if allocs != 0 {
		t.Fatalf("At schedule+dispatch allocates %.1f objects/op, want 0", allocs)
	}
}

func TestScheduleCancelZeroAlloc(t *testing.T) {
	k := NewKernel()
	h := &countHandler{}
	for i := 0; i < 64; i++ {
		k.AfterEvent(Duration(i), h)
	}
	k.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		id := k.Schedule(k.Now()+50, h)
		if !k.Cancel(id) {
			t.Fatal("Cancel failed on a pending event")
		}
		k.Run() // reclaims the canceled record lazily
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Cancel allocates %.1f objects/op, want 0", allocs)
	}
}

func TestResourceUseZeroAlloc(t *testing.T) {
	k := NewKernel()
	res := NewResource(k, "bank", 1)
	done := func() {}
	for i := 0; i < 8; i++ {
		res.Use(10, done)
	}
	k.Run()
	allocs := testing.AllocsPerRun(500, func() {
		res.Use(10, done)
		k.Run()
	})
	if allocs != 0 {
		t.Fatalf("Resource.Use allocates %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkAtEventDispatch(b *testing.B) {
	k := NewKernel()
	h := &countHandler{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.AfterEvent(100, h)
		k.Run()
	}
}

func BenchmarkAtClosureDispatch(b *testing.B) {
	k := NewKernel()
	fired := 0
	fn := func() { fired++ }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.After(100, fn)
		k.Run()
	}
}

// churnState keeps a fixed population of in-flight events, each firing
// rescheduling one successor at a randomly chosen horizon: sub-bucket,
// mid-wheel, or past the wheel span (overflow tier + base jumps). This
// is the calendar's steady-state shape under the ring models.
type churnState struct {
	k    *Kernel
	rng  *Rand
	left int
}

func (c *churnState) OnEvent(at Time) {
	if c.left <= 0 {
		return
	}
	c.left--
	var d Duration
	switch c.rng.Intn(3) {
	case 0:
		d = Duration(c.rng.Intn(int(bucketWidth)))
	case 1:
		d = Duration(c.rng.Intn(32 * int(bucketWidth)))
	default:
		d = Duration(c.rng.Intn(2 * wheelLen * int(bucketWidth)))
	}
	c.k.AfterEvent(d, c)
}

func BenchmarkCalendarChurn(b *testing.B) {
	k := NewKernel()
	c := &churnState{k: k, rng: NewRand(1993), left: b.N}
	for i := 0; i < 256; i++ {
		k.AfterEvent(Duration(i), c)
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}
