package sim

// Rand is a small, fast, deterministic pseudo-random generator
// (xorshift64*). Simulation components take a *Rand rather than relying
// on global state so that every run is reproducible from its seed and
// independent streams can be split per processor.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. A zero seed is remapped
// to a fixed non-zero constant because xorshift has an all-zero fixed
// point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Split derives an independent stream from r, keyed by id. Streams with
// distinct ids are decorrelated by a SplitMix64 scramble of the parent
// state.
func (r *Rand) Split(id uint64) *Rand {
	z := r.state + (id+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return NewRand(z)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with mean
// length mean (>= 1): the number of trials until first success with
// success probability 1/mean. Used for run lengths in the synthetic
// workload generators.
func (r *Rand) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1.0 / mean
	n := 1
	for !r.Bool(p) {
		n++
		// Cap pathological runs so a bad parameter cannot hang a model.
		if n >= 1<<20 {
			break
		}
	}
	return n
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
