// Package sim provides a deterministic discrete-event simulation kernel.
//
// It plays the role that the CSIM library played in the original paper:
// a clock, an event calendar, and a handful of queueing primitives. All
// simulated time is kept in integer picoseconds so that ring clocks
// (2 ns and 4 ns stages) and arbitrary processor cycle times (1–20 ns)
// compose without rounding error.
//
// The kernel is event-driven rather than process-oriented: model code
// schedules closures at absolute or relative times. Events scheduled for
// the same instant fire in scheduling order, which makes runs exactly
// reproducible for a given seed.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is an absolute simulation time in picoseconds.
type Time int64

// Duration is a span of simulation time in picoseconds.
type Duration = Time

// Common time units, all expressed in picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds reports t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// String formats the time with a nanosecond unit, the natural scale of
// the systems modeled here.
func (t Time) String() string { return fmt.Sprintf("%.3fns", t.Nanoseconds()) }

// event is a single calendar entry.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among simultaneous events
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event   { return h[0] }
func (h eventHeap) empty() bool   { return len(h) == 0 }

// Kernel is a discrete-event simulation engine. The zero value is ready
// to use with the clock at time zero.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	fired   uint64
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Fired reports how many events have been dispatched so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending reports how many events are waiting on the calendar.
func (k *Kernel) Pending() int { return len(k.events) }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it always indicates a model bug, never a recoverable state.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	if fn == nil {
		panic("sim: scheduling nil event")
	}
	heap.Push(&k.events, event{at: t, seq: k.seq, fn: fn})
	k.seq++
}

// After schedules fn to run d picoseconds from now.
func (k *Kernel) After(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.At(k.now+d, fn)
}

// Stop makes the currently executing Run return once the current event
// handler finishes.
func (k *Kernel) Stop() { k.stopped = true }

// Run dispatches events until the calendar is empty or Stop is called.
// It returns the final simulation time.
func (k *Kernel) Run() Time {
	k.stopped = false
	for !k.events.empty() && !k.stopped {
		e := heap.Pop(&k.events).(event)
		k.now = e.at
		k.fired++
		e.fn()
	}
	return k.now
}

// RunUntil dispatches events with timestamps <= limit. Events beyond the
// limit stay on the calendar; the clock is advanced to limit if the run
// was not stopped early. It returns the final simulation time.
func (k *Kernel) RunUntil(limit Time) Time {
	k.stopped = false
	for !k.events.empty() && !k.stopped {
		if k.events.peek().at > limit {
			k.now = limit
			return k.now
		}
		e := heap.Pop(&k.events).(event)
		k.now = e.at
		k.fired++
		e.fn()
	}
	if !k.stopped && k.now < limit {
		k.now = limit
	}
	return k.now
}
