// Package sim provides a deterministic discrete-event simulation kernel.
//
// It plays the role that the CSIM library played in the original paper:
// a clock, an event calendar, and a handful of queueing primitives. All
// simulated time is kept in integer picoseconds so that ring clocks
// (2 ns and 4 ns stages) and arbitrary processor cycle times (1–20 ns)
// compose without rounding error.
//
// The kernel is event-driven rather than process-oriented: model code
// schedules closures or pooled EventHandler objects at absolute or
// relative times. Events scheduled for the same instant fire in
// scheduling order, which makes runs exactly reproducible for a given
// seed.
//
// # Event calendar
//
// The calendar is a two-tier calendar queue specialized for this
// workload's near-term, clock-aligned events (2 ns / 4 ns ring stages,
// 1–20 ns processor cycles, 140 ns memory banks):
//
//   - A timing wheel of wheelLen buckets, each one bucketWidth of
//     simulated time wide, covers the near future. Insertion and
//     removal are O(1) amortized; each bucket is a tiny binary heap
//     ordered by (time, seq) so exact FIFO tie-break semantics are
//     preserved.
//   - Events beyond the wheel horizon go to an overflow min-heap and
//     migrate into the wheel as the base advances — the heap is the
//     far-future tier, never the hot path.
//
// Event records live in a pooled, index-addressed slab: scheduling
// allocates nothing once the slab and buckets have warmed up, and
// records are recycled through a free list as they fire. See DESIGN.md
// ("Zero-allocation event core") for the invariants.
package sim

import (
	"fmt"
	"math/bits"
)

// Time is an absolute simulation time in picoseconds.
type Time int64

// Duration is a span of simulation time in picoseconds.
type Duration = Time

// Common time units, all expressed in picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds reports t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// String formats the time with a nanosecond unit, the natural scale of
// the systems modeled here.
func (t Time) String() string { return fmt.Sprintf("%.3fns", t.Nanoseconds()) }

// EventHandler is the allocation-free scheduling target: models keep a
// pooled handler object and pass it to AtEvent/AfterEvent instead of
// allocating a fresh closure per event. The same handler may be
// rescheduled from within OnEvent (the ring's slot sweeps chain this
// way).
type EventHandler interface {
	// OnEvent fires the event; at is the event's timestamp, which
	// equals Kernel.Now() during the call.
	OnEvent(at Time)
}

// EventID names a cancelable event scheduled with Schedule. The zero
// value is invalid. IDs are generation-tagged slab indices, so an ID
// held after its event fired (or was canceled) safely fails Cancel.
type EventID uint64

// Calendar geometry. bucketShift trades wheel span against per-bucket
// occupancy: 2048 ps buckets put each 2 ns ring cycle in its own
// bucket, and wheelLen of 4096 spans ~8.4 us — past every latency
// constant in the models (the 140 ns banks included), so only genuinely
// far-future events (idle processors' long compute bursts) touch the
// overflow heap.
const (
	bucketShift = 11
	bucketWidth = Time(1) << bucketShift
	wheelLen    = 4096
	wheelMask   = wheelLen - 1
	// wheelWords sizes the occupancy bitmap: one bit per bucket.
	wheelWords = wheelLen / 64
)

// eventRec is one slab-resident calendar entry. Exactly one of fn / h
// is set. gen tags the record's reuse generation for EventID validity.
type eventRec struct {
	at  Time
	seq uint64
	fn  func()
	h   EventHandler
	gen uint32
	// canceled marks a record logically removed; it is skipped and
	// freed when its (time, seq) position is reached.
	canceled bool
}

// Kernel is a discrete-event simulation engine. The zero value is ready
// to use with the clock at time zero.
type Kernel struct {
	now     Time
	seq     uint64
	stopped bool
	fired   uint64

	// Pooled event slab + free list (indices into recs).
	recs []eventRec
	free []uint32

	// Near-term timing wheel. buckets[i] is a binary min-heap of slab
	// indices ordered by (at, seq); bucket i holds exactly the events
	// whose tick (at >> bucketShift) is congruent to i and inside
	// [baseTick, baseTick+wheelLen).
	buckets  [][]uint32
	baseTick int64
	baseIdx  int
	// occ has bit i set iff buckets[i] is non-empty, so the base scan
	// jumps over empty spans with TrailingZeros64 instead of walking
	// them bucket by bucket.
	occ [wheelWords]uint64
	// wheelCount / overflow track structural entries (canceled records
	// included until reached); live is the count of uncanceled events.
	wheelCount int
	overflow   []uint32
	live       int
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Fired reports how many events have been dispatched so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending reports how many events are waiting on the calendar.
func (k *Kernel) Pending() int { return k.live }

// SlabSize reports how many event records the calendar has ever
// allocated — the pool's high-water mark, an allocation observability
// counter surfaced by the serving layer.
func (k *Kernel) SlabSize() int { return len(k.recs) }

// less orders two slab records by (time, seq).
func (k *Kernel) less(a, b uint32) bool {
	ra, rb := &k.recs[a], &k.recs[b]
	if ra.at != rb.at {
		return ra.at < rb.at
	}
	return ra.seq < rb.seq
}

// alloc takes a record from the free list (or grows the slab) and
// initializes it. Exactly one of fn/h must be non-nil.
func (k *Kernel) alloc(at Time, seq uint64, fn func(), h EventHandler) uint32 {
	var idx uint32
	if n := len(k.free); n > 0 {
		idx = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		k.recs = append(k.recs, eventRec{gen: 1})
		idx = uint32(len(k.recs) - 1)
	}
	r := &k.recs[idx]
	r.at, r.seq, r.fn, r.h, r.canceled = at, seq, fn, h, false
	return idx
}

// release recycles a record. The generation bump invalidates any
// outstanding EventID for it.
func (k *Kernel) release(idx uint32) {
	r := &k.recs[idx]
	r.fn, r.h = nil, nil
	r.gen++
	k.free = append(k.free, idx)
}

// bucketPush inserts idx into the heap b (sift-up).
func (k *Kernel) bucketPush(b *[]uint32, idx uint32) {
	*b = append(*b, idx)
	h := *b
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !k.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// bucketPop removes and returns the minimum of heap b.
func (k *Kernel) bucketPop(b *[]uint32) uint32 {
	h := *b
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	*b = h
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && k.less(h[r], h[l]) {
			m = r
		}
		if !k.less(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// insert places a record into the wheel or the overflow tier.
func (k *Kernel) insert(idx uint32) {
	if k.buckets == nil {
		k.buckets = make([][]uint32, wheelLen)
		k.baseTick = int64(k.now >> bucketShift)
		k.baseIdx = int(k.baseTick) & wheelMask
	}
	tick := int64(k.recs[idx].at >> bucketShift)
	if tick < k.baseTick {
		// The wheel base can sit past the clock after a jump to the
		// overflow minimum (e.g. a RunUntil that stopped short of it).
		// Events landing behind the base go into the base bucket: each
		// bucket is a (time, seq) heap, so they still fire first.
		tick = k.baseTick
	}
	if tick < k.baseTick+wheelLen {
		b := int(tick) & wheelMask
		k.bucketPush(&k.buckets[b], idx)
		k.occ[b>>6] |= 1 << uint(b&63)
		k.wheelCount++
		return
	}
	k.bucketPush(&k.overflow, idx)
}

// drainOverflow migrates overflow records that now fall inside the
// wheel horizon. Amortized O(1) per event: each record migrates at most
// once.
func (k *Kernel) drainOverflow() {
	horizon := k.baseTick + wheelLen
	for len(k.overflow) > 0 && int64(k.recs[k.overflow[0]].at>>bucketShift) < horizon {
		idx := k.bucketPop(&k.overflow)
		b := int(k.recs[idx].at>>bucketShift) & wheelMask
		k.bucketPush(&k.buckets[b], idx)
		k.occ[b>>6] |= 1 << uint(b&63)
		k.wheelCount++
	}
}

// skipEmpty advances baseIdx/baseTick to the next occupied bucket using
// the occupancy bitmap; the caller guarantees wheelCount > 0, so an
// occupied bucket exists within one revolution.
func (k *Kernel) skipEmpty() {
	idx := k.baseIdx
	w := idx >> 6
	if word := k.occ[w] >> uint(idx&63); word != 0 {
		n := bits.TrailingZeros64(word)
		k.baseIdx = idx + n
		k.baseTick += int64(n)
		return
	}
	dist := 64 - idx&63
	for i := 1; ; i++ {
		wi := (w + i) & (wheelWords - 1)
		if word := k.occ[wi]; word != 0 {
			n := bits.TrailingZeros64(word)
			k.baseIdx = wi<<6 + n
			k.baseTick += int64(dist + n)
			return
		}
		dist += 64
	}
}

// peekMin returns the slab index of the earliest pending event without
// removing it, discarding canceled records as it goes.
func (k *Kernel) peekMin() (uint32, bool) {
	for {
		if k.wheelCount == 0 {
			if len(k.overflow) == 0 {
				return 0, false
			}
			// Jump the wheel base straight to the overflow minimum —
			// quiescent spans cost one jump, not a bucket-by-bucket
			// crawl.
			k.baseTick = int64(k.recs[k.overflow[0]].at >> bucketShift)
			k.baseIdx = int(k.baseTick) & wheelMask
			k.drainOverflow()
			continue
		}
		if len(k.buckets[k.baseIdx]) == 0 {
			k.skipEmpty()
		}
		k.drainOverflow()
		b := &k.buckets[k.baseIdx]
		top := (*b)[0]
		if k.recs[top].canceled {
			k.bucketPop(b)
			k.wheelCount--
			if len(*b) == 0 {
				k.occ[k.baseIdx>>6] &^= 1 << uint(k.baseIdx&63)
			}
			k.release(top)
			continue
		}
		return top, true
	}
}

// PeekTime reports the timestamp of the earliest pending event
// without dispatching it. The parallel kernel's window scheduler uses
// it to anchor each barrier window at the global minimum next-event
// time.
func (k *Kernel) PeekTime() (Time, bool) {
	idx, ok := k.peekMin()
	if !ok {
		return 0, false
	}
	return k.recs[idx].at, true
}

// popMin removes and returns the earliest pending event.
func (k *Kernel) popMin() (uint32, bool) {
	idx, ok := k.peekMin()
	if !ok {
		return 0, false
	}
	b := &k.buckets[k.baseIdx]
	k.bucketPop(b)
	k.wheelCount--
	if len(*b) == 0 {
		k.occ[k.baseIdx>>6] &^= 1 << uint(k.baseIdx&63)
	}
	return idx, true
}

// schedule validates and enqueues one event with a fresh sequence
// number.
func (k *Kernel) schedule(t Time, fn func(), h EventHandler) uint32 {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	idx := k.alloc(t, k.seq, fn, h)
	k.seq++
	k.insert(idx)
	k.live++
	return idx
}

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it always indicates a model bug, never a recoverable state.
func (k *Kernel) At(t Time, fn func()) {
	if fn == nil {
		panic("sim: scheduling nil event")
	}
	k.schedule(t, fn, nil)
}

// After schedules fn to run d picoseconds from now.
func (k *Kernel) After(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.At(k.now+d, fn)
}

// AtEvent schedules h to fire at absolute time t. This is the
// zero-allocation scheduling path: h is typically a pooled object, and
// the kernel stores it in a recycled slab record, so steady-state
// scheduling performs no heap allocation.
func (k *Kernel) AtEvent(t Time, h EventHandler) {
	if h == nil {
		panic("sim: scheduling nil event handler")
	}
	k.schedule(t, nil, h)
}

// AfterEvent schedules h to fire d picoseconds from now.
func (k *Kernel) AfterEvent(d Duration, h EventHandler) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.AtEvent(k.now+d, h)
}

// Schedule is AtEvent returning a handle that Cancel accepts.
func (k *Kernel) Schedule(t Time, h EventHandler) EventID {
	if h == nil {
		panic("sim: scheduling nil event handler")
	}
	idx := k.schedule(t, nil, h)
	return EventID(uint64(idx)<<32 | uint64(k.recs[idx].gen))
}

// Cancel removes a scheduled event. It reports whether the event was
// still pending: canceling an event that already fired (or was already
// canceled) returns false and does nothing. The calendar slot is
// reclaimed lazily when its (time, seq) position is reached.
func (k *Kernel) Cancel(id EventID) bool {
	idx := uint32(uint64(id) >> 32)
	gen := uint32(id)
	if int(idx) >= len(k.recs) {
		return false
	}
	r := &k.recs[idx]
	if r.gen != gen || r.canceled || (r.fn == nil && r.h == nil) {
		return false
	}
	r.canceled = true
	k.live--
	return true
}

// ReserveSeq reserves n consecutive FIFO positions at the current
// scheduling point and returns the first. Event sources that expand
// into multiple future events over time (the ring's slot sweeps) use
// reserved positions with AtReserved so their events interleave with
// ordinary At events exactly as if each had been scheduled here and
// now — the property the determinism gate depends on.
func (k *Kernel) ReserveSeq(n int) uint64 {
	if n < 0 {
		panic("sim: negative seq reservation")
	}
	s := k.seq
	k.seq += uint64(n)
	return s
}

// BoundarySeqBand is the high bit that marks boundary sequence
// numbers: tie-break positions assigned by the model itself rather
// than by this kernel's scheduling counter. Events scheduled with
// AtBoundary sort after every ordinarily scheduled event at the same
// timestamp (the counter never reaches the band), and among
// themselves in band-sequence order. The segmented ring derives the
// band sequence from (boundary link, per-link FIFO index), which is a
// pure function of the model — so a boundary arrival lands at the
// same (time, seq) calendar position whether it was scheduled by the
// same kernel (sequential run) or delivered across a ParKernel
// barrier (parallel run). That equivalence is what makes the
// parallel segmented-ring runs byte-identical to sequential ones.
const BoundarySeqBand uint64 = 1 << 63

// AtBoundary schedules h at time t occupying the explicit boundary
// sequence position seq, which must carry BoundarySeqBand. Unlike
// AtReserved, the position is not drawn from this kernel's counter:
// callers own the band's collision discipline (the segmented ring
// keys it by boundary link and per-link FIFO index, which never
// repeats within a run).
func (k *Kernel) AtBoundary(t Time, seq uint64, h EventHandler) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	if h == nil {
		panic("sim: scheduling nil event handler")
	}
	if seq&BoundarySeqBand == 0 {
		panic("sim: AtBoundary requires a banded sequence number")
	}
	idx := k.alloc(t, seq, nil, h)
	k.insert(idx)
	k.live++
}

// AtReserved schedules h at time t occupying a FIFO position
// previously obtained from ReserveSeq. t must not be in the past and
// seq must come from an earlier reservation.
func (k *Kernel) AtReserved(t Time, seq uint64, h EventHandler) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	if h == nil {
		panic("sim: scheduling nil event handler")
	}
	if seq >= k.seq {
		panic("sim: AtReserved seq was never reserved")
	}
	idx := k.alloc(t, seq, nil, h)
	k.insert(idx)
	k.live++
}

// dispatch fires the record: it advances the clock, recycles the slab
// slot (so the handler may immediately reschedule through it), then
// runs the callback.
func (k *Kernel) dispatch(idx uint32) {
	r := &k.recs[idx]
	at, fn, h := r.at, r.fn, r.h
	k.now = at
	k.fired++
	k.live--
	k.release(idx)
	if fn != nil {
		fn()
		return
	}
	h.OnEvent(at)
}

// Stop makes the currently executing Run or RunUntil return once the
// current event handler finishes. Stop only affects the run in
// progress: both Run and RunUntil clear the stop flag when they return
// (and when they start), so a stopped kernel can be reused — calling
// Stop outside a run is a no-op.
func (k *Kernel) Stop() { k.stopped = true }

// Run dispatches events until the calendar is empty or Stop is called.
// It returns the final simulation time. The stop flag is reset on
// return, so Run may be called again to resume from the calendar.
func (k *Kernel) Run() Time {
	k.stopped = false
	for !k.stopped {
		idx, ok := k.popMin()
		if !ok {
			break
		}
		k.dispatch(idx)
	}
	k.stopped = false
	return k.now
}

// RunUntil dispatches events with timestamps <= limit. Events beyond
// the limit stay on the calendar. If the run was not stopped early the
// clock is advanced to limit; after a Stop it stays at the last
// dispatched event's time. The stop flag is reset on return, so the
// kernel can be reused either way. It returns the final simulation
// time.
func (k *Kernel) RunUntil(limit Time) Time {
	k.stopped = false
	for !k.stopped {
		idx, ok := k.peekMin()
		if !ok || k.recs[idx].at > limit {
			break
		}
		b := &k.buckets[k.baseIdx]
		k.bucketPop(b)
		k.wheelCount--
		if len(*b) == 0 {
			k.occ[k.baseIdx>>6] &^= 1 << uint(k.baseIdx&63)
		}
		k.dispatch(idx)
	}
	if !k.stopped && k.now < limit {
		k.now = limit
	}
	k.stopped = false
	return k.now
}
