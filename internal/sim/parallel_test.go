package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
)

// logEntry is one observable action of a synthetic parallel model.
type logEntry struct {
	Shard int
	At    Time
	ID    uint64
}

// hopActor passes a token around a ring of shards: fire, log, post the
// token to the next shard one hop latency later. Real cross-partition
// traffic with an exactly computable schedule.
type hopActor struct {
	pk    *ParKernel
	shard int
	hop   Duration
	left  *int64
	log   *[]logEntry
	next  *hopActor
	id    uint64
}

func (a *hopActor) OnEvent(at Time) {
	*a.log = append(*a.log, logEntry{Shard: a.shard, At: at, ID: a.id})
	a.id += uint64(a.pk.Shards())
	if atomic.AddInt64(a.left, -1) <= 0 {
		return
	}
	a.pk.Post(a.shard, a.next.shard, at+a.hop, a.next)
}

// TestParKernelTokenRingExactSchedule checks a deterministic
// cross-partition chain against its analytically known schedule.
func TestParKernelTokenRingExactSchedule(t *testing.T) {
	const p = 4
	const hops = 41
	hop := 10 * Nanosecond // == window: every post lands exactly on the lookahead bound
	pk := NewParKernel(p, hop)
	logs := make([][]logEntry, p)
	left := int64(hops)
	actors := make([]*hopActor, p)
	for i := 0; i < p; i++ {
		actors[i] = &hopActor{pk: pk, shard: i, hop: hop, left: &left, log: &logs[i], id: uint64(i)}
	}
	for i := 0; i < p; i++ {
		actors[i].next = actors[(i+1)%p]
	}
	pk.Shard(0).AtEvent(0, actors[0])
	end := pk.Run()

	var all []logEntry
	for _, l := range logs {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].At < all[j].At })
	if len(all) != hops {
		t.Fatalf("fired %d hops, want %d", len(all), hops)
	}
	for i, e := range all {
		wantAt := Time(i) * hop
		wantShard := i % p
		if e.At != wantAt || e.Shard != wantShard {
			t.Fatalf("hop %d = shard %d at %v, want shard %d at %v", i, e.Shard, e.At, wantShard, wantAt)
		}
	}
	if want := Time(hops-1) * hop; end < want {
		t.Fatalf("Run returned %v, want >= %v", end, want)
	}
	st := pk.Stats()
	if st.CrossEvents != hops-1 {
		t.Fatalf("CrossEvents = %d, want %d", st.CrossEvents, hops-1)
	}
	if st.Windows == 0 || len(st.BarrierStallNS) != p {
		t.Fatalf("Stats = %+v", st)
	}
}

// chaosWindow is the lookahead used by the randomized model. Every
// message — local or cross-shard — is delayed by at least one window,
// so event timestamps are identical no matter how the actors are
// partitioned; only the transport (direct schedule vs SPSC post)
// changes with P.
const chaosWindow = 20 * Nanosecond

// chaosActor is one endpoint of the randomized model; its shard
// assignment depends on the partition count under test.
type chaosActor struct {
	pk    *ParKernel
	shard int
	peers []*chaosActor
	log   *[]logEntry
}

// chaosMsg dispatches one message. Everything it does — log, fan out,
// pick destinations and delays — derives deterministically from the
// message ID alone, never from delivery interleaving, so per-run
// behaviour is a pure function of the model for any P.
type chaosMsg struct {
	a  *chaosActor
	id uint64
}

func (m *chaosMsg) OnEvent(at Time) {
	a := m.a
	*a.log = append(*a.log, logEntry{Shard: a.shard, At: at, ID: m.id})
	rng := rand.New(rand.NewSource(int64(m.id)))
	depth := int(m.id >> 56)
	if depth >= 3 {
		return
	}
	fanout := 1 + rng.Intn(2)
	for f := 0; f < fanout; f++ {
		child := uint64(depth+1)<<56 | (m.id<<7+uint64(f)*2654435761)&(1<<56-1)
		dst := a.peers[rng.Intn(len(a.peers))]
		delay := chaosWindow + Duration(rng.Intn(50)+1)*Nanosecond
		cm := &chaosMsg{a: dst, id: child}
		if dst.shard == a.shard {
			a.pk.Shard(a.shard).AtEvent(at+delay, cm)
		} else {
			a.pk.Post(a.shard, dst.shard, at+delay, cm)
		}
	}
}

// runChaos executes the randomized model over p shards and returns the
// per-shard logs in execution order.
func runChaos(t *testing.T, p, actors int, seed int64) [][]logEntry {
	t.Helper()
	pk := NewParKernel(p, chaosWindow)
	logs := make([][]logEntry, p)
	as := make([]*chaosActor, actors)
	for i := range as {
		as[i] = &chaosActor{pk: pk, shard: i % p, log: &logs[i%p]}
	}
	for _, a := range as {
		a.peers = as
	}
	rng := rand.New(rand.NewSource(seed))
	for i, a := range as {
		root := uint64(i)*7919 + 1
		pk.Shard(a.shard).AtEvent(Duration(rng.Intn(30))*Nanosecond, &chaosMsg{a: a, id: root})
	}
	pk.Run()
	return logs
}

// TestParKernelDeterministicAcrossRuns requires byte-identical
// per-shard event logs — including same-instant tie order — across
// repeated multi-threaded runs of the same randomized model.
func TestParKernelDeterministicAcrossRuns(t *testing.T) {
	for _, p := range []int{2, 3, 8} {
		base := runChaos(t, p, 24, 42)
		for rep := 0; rep < 3; rep++ {
			got := runChaos(t, p, 24, 42)
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("P=%d rep %d: per-shard logs diverged across identical runs", p, rep)
			}
		}
	}
}

// TestParKernelMatchesSequentialReference cross-checks parallel runs
// against the same model executed on a single merged kernel: the
// fired (message, time) multiset must match exactly. (Per-shard seq
// interleaving legitimately differs; the model's observable behaviour
// must not.)
func TestParKernelMatchesSequentialReference(t *testing.T) {
	canon := func(logs [][]logEntry) []string {
		var out []string
		for _, l := range logs {
			for _, e := range l {
				out = append(out, fmt.Sprintf("%d@%d", e.ID, e.At))
			}
		}
		sort.Strings(out)
		return out
	}
	for _, seed := range []int64{1, 7, 1993} {
		seq := canon(runChaos(t, 1, 24, seed))
		if len(seq) == 0 {
			t.Fatalf("seed %d: sequential reference fired nothing", seed)
		}
		for _, p := range []int{2, 4, 8} {
			par := canon(runChaos(t, p, 24, seed))
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("seed %d: P=%d fired different events than sequential (%d vs %d)",
					seed, p, len(par), len(seq))
			}
		}
	}
}

// TestParKernelLookaheadViolationPanics pins the loud-failure
// contract: posting a cross event inside the current window must
// panic, and the panic must surface from Run on the caller goroutine.
func TestParKernelLookaheadViolationPanics(t *testing.T) {
	pk := NewParKernel(2, 100*Nanosecond)
	evil := &funcHandler{}
	evil.fn = func(at Time) {
		pk.Post(0, 1, at+1, evil) // far inside the window: violation
	}
	pk.Shard(0).AtEvent(0, evil)
	pk.Shard(1).AtEvent(0, &funcHandler{fn: func(Time) {}})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("lookahead violation did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "lookahead") {
			t.Fatalf("panic = %v, want lookahead violation", r)
		}
	}()
	pk.Run()
}

type funcHandler struct{ fn func(Time) }

func (f *funcHandler) OnEvent(at Time) { f.fn(at) }

// TestSPSCRingOrderAndOverflow exercises the pair queue through its
// overflow path and checks FIFO order and idx tagging survive.
func TestSPSCRingOrderAndOverflow(t *testing.T) {
	q := newSPSCRing(8)
	h := &funcHandler{fn: func(Time) {}}
	const n = 50 // well past the 8-slot lock-free tier
	for i := 0; i < n; i++ {
		q.push(Time(i), h)
	}
	got := q.drainInto(nil)
	if len(got) != n {
		t.Fatalf("drained %d, want %d", len(got), n)
	}
	for i, ev := range got {
		if ev.at != Time(i) || ev.idx != uint64(i) {
			t.Fatalf("event %d = {at:%v idx:%d}, want {at:%v idx:%d}", i, ev.at, ev.idx, Time(i), i)
		}
	}
	if extra := q.drainInto(nil); len(extra) != 0 {
		t.Fatalf("second drain returned %d events", len(extra))
	}
}

// TestParKernelWindowHotPathZeroAlloc guards the window scheduler's
// steady state: posting through the SPSC tier, delivering a sorted
// batch into the destination kernel, and dispatching it must not
// allocate once capacities have warmed.
func TestParKernelWindowHotPathZeroAlloc(t *testing.T) {
	pk := NewParKernel(2, 10*Nanosecond)
	h := &funcHandler{fn: func(Time) {}}
	q := pk.queues[0*2+1]
	k := pk.Shard(1)
	at := Time(0)
	cycle := func() {
		for i := 0; i < 16; i++ {
			at++
			q.push(at, h)
		}
		pk.deliver(1)
		k.Run()
	}
	for i := 0; i < 32; i++ {
		cycle() // warm slab, buckets, scratch, sorter
	}
	allocs := testing.AllocsPerRun(500, cycle)
	if allocs > 0 {
		t.Fatalf("window post+deliver+dispatch cycle allocates %v times per run, want 0", allocs)
	}
}
