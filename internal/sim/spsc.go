package sim

import "sync/atomic"

// crossEvent is one event posted across partitions: fire h at absolute
// time at on the destination shard. idx is the per-(src,dst) posting
// sequence number; the delivery pass sorts on (at, src, idx), which
// pins the cross-traffic interleaving to the model's deterministic
// posting order instead of the thread schedule.
type crossEvent struct {
	at  Time
	idx uint64
	// seq, when nonzero, is an explicit boundary-band calendar position
	// (see BoundarySeqBand): the destination schedules the event with
	// AtBoundary instead of taking a fresh tie-break seq, so the event
	// lands at the same (time, seq) position a sequential run of the
	// same model gives it.
	seq uint64
	h   EventHandler
}

// spscRing is a bounded single-producer single-consumer queue of
// cross-partition events. The producer is the source shard's worker
// goroutine (posting during a window); the consumer is the destination
// shard's worker (draining at the barrier). head/tail are the only
// shared words: the producer owns tail, the consumer owns head, and
// both advance monotonically — the classic lock-free SPSC discipline,
// so a post never takes a lock and never blocks the posting shard.
//
// The ring is sized at construction and never grows — growing under a
// concurrent consumer is unsafe. When one window posts more events
// than the ring holds, the excess lands in the overflow slice. Ring
// and overflow together are fully drained at every barrier, so
// conservative delivery never misses an event; overflow is written
// only by the producer during run phases and read/cleared only by the
// consumer during drain phases, with the window barrier providing the
// happens-before edge between the two (phase-alternating exclusive
// access, no atomics needed).
type spscRing struct {
	buf  []crossEvent
	mask uint64
	head atomic.Uint64 // next slot to pop (consumer-owned)
	tail atomic.Uint64 // next slot to push (producer-owned)

	// overflow spills posts beyond the ring's capacity; nextIdx is the
	// pair's posting sequence (producer-private).
	overflow []crossEvent
	nextIdx  uint64
}

// newSPSCRing returns a ring holding up to capacity events in its
// lock-free tier; capacity is rounded up to a power of two.
func newSPSCRing(capacity int) *spscRing {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &spscRing{buf: make([]crossEvent, n), mask: uint64(n - 1)}
}

// push enqueues one event, tagging it with the pair's next posting
// sequence number. Producer side only (run phase).
func (q *spscRing) push(at Time, h EventHandler) {
	q.pushSeq(at, 0, h)
}

// pushSeq enqueues one event carrying an explicit boundary-band
// calendar seq (0 for none). Producer side only (run phase).
func (q *spscRing) pushSeq(at Time, seq uint64, h EventHandler) {
	ev := crossEvent{at: at, idx: q.nextIdx, seq: seq, h: h}
	q.nextIdx++
	tail := q.tail.Load()
	if tail-q.head.Load() < uint64(len(q.buf)) {
		q.buf[tail&q.mask] = ev
		q.tail.Store(tail + 1)
		return
	}
	q.overflow = append(q.overflow, ev)
}

// drainInto appends every queued event (ring, then overflow) to dst
// and empties the queue. Consumer side only (drain phase); the barrier
// between run and drain phases makes the producer's overflow writes
// visible and guarantees it is not pushing concurrently.
func (q *spscRing) drainInto(dst []crossEvent) []crossEvent {
	head := q.head.Load()
	tail := q.tail.Load()
	for ; head != tail; head++ {
		dst = append(dst, q.buf[head&q.mask])
	}
	q.head.Store(head)
	if len(q.overflow) > 0 {
		dst = append(dst, q.overflow...)
		q.overflow = q.overflow[:0]
	}
	return dst
}
