package sim

// Resource is a FIFO server with a fixed number of service slots, the
// moral equivalent of CSIM's facility. Acquire either grants a slot
// immediately or enqueues the caller; Release hands the freed slot to
// the oldest waiter. It is used by the memory banks (single-server) and
// by the bus arbiter's per-node request queues.
type Resource struct {
	k        *Kernel
	name     string
	servers  int
	busy     int
	waiters  []waiter
	busyArea Time // integral of busy servers over time, for utilization
	lastMark Time
	resetAt  Time // start of the current statistics window
	grants   uint64
	waitSum  Time
	useFree  *useOp // recycled Use operations (zero-alloc steady state)
}

type waiter struct {
	since Time
	fn    func()
	h     Granted
}

// Granted is the allocation-free counterpart of Acquire's callback:
// pooled objects implement it to receive the slot grant without a
// per-request closure.
type Granted interface {
	// OnGrant runs exactly when Acquire's fn would: synchronously on a
	// free slot, otherwise when Release hands the slot over.
	OnGrant()
}

// NewResource returns a resource with the given number of service slots.
func NewResource(k *Kernel, name string, servers int) *Resource {
	if servers <= 0 {
		panic("sim: resource needs at least one server")
	}
	return &Resource{k: k, name: name, servers: servers}
}

// Name returns the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// Acquire requests a service slot; fn runs (synchronously if a slot is
// free, otherwise when one frees up) once the slot is granted.
func (r *Resource) Acquire(fn func()) {
	if r.busy < r.servers {
		r.mark()
		r.busy++
		r.grants++
		fn()
		return
	}
	r.waiters = append(r.waiters, waiter{since: r.k.Now(), fn: fn})
}

// AcquireEvent is Acquire for pooled Granted objects — the
// zero-allocation acquisition path.
func (r *Resource) AcquireEvent(h Granted) {
	if r.busy < r.servers {
		r.mark()
		r.busy++
		r.grants++
		h.OnGrant()
		return
	}
	r.waiters = append(r.waiters, waiter{since: r.k.Now(), h: h})
}

// Release frees one service slot. If anyone is waiting, the slot passes
// directly to the oldest waiter, whose callback runs synchronously.
func (r *Resource) Release() {
	if r.busy == 0 {
		panic("sim: release of idle resource " + r.name)
	}
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters[0] = waiter{}
		r.waiters = r.waiters[1:]
		r.grants++
		r.waitSum += r.k.Now() - w.since
		if w.fn != nil {
			w.fn()
		} else {
			w.h.OnGrant()
		}
		return
	}
	r.mark()
	r.busy--
}

// useOp is a pooled hold-then-release operation backing Use. One record
// per in-flight Use; recycled through Resource.useFree, so the steady
// state allocates nothing.
type useOp struct {
	r    *Resource
	d    Duration
	done func()
	next *useOp
}

// OnGrant (Granted) starts the service interval once the slot is ours.
func (u *useOp) OnGrant() {
	u.r.k.AfterEvent(u.d, u)
}

// OnEvent (EventHandler) ends the service interval: release the slot and
// run the completion callback. The record returns to the pool first, so
// the callback may start another Use without growing it.
func (u *useOp) OnEvent(at Time) {
	r, done := u.r, u.done
	u.r, u.done = nil, nil
	u.next = r.useFree
	r.useFree = u
	r.Release()
	if done != nil {
		done()
	}
}

// Use acquires a slot, holds it for d, then releases it and runs done.
func (r *Resource) Use(d Duration, done func()) {
	u := r.useFree
	if u == nil {
		u = &useOp{}
	} else {
		r.useFree = u.next
		u.next = nil
	}
	u.r, u.d, u.done = r, d, done
	r.AcquireEvent(u)
}

// QueueLen reports the number of requests waiting for a slot.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Busy reports the number of slots currently in service.
func (r *Resource) Busy() int { return r.busy }

// Grants reports the total number of slot grants so far.
func (r *Resource) Grants() uint64 { return r.grants }

// MeanWait reports the average time grants spent queued (zero-wait
// grants included).
func (r *Resource) MeanWait() Time {
	if r.grants == 0 {
		return 0
	}
	return r.waitSum / Time(r.grants)
}

// Utilization reports the time-averaged fraction of slots busy over the
// current statistics window (since creation or the last ResetStats).
func (r *Resource) Utilization() float64 {
	r.mark()
	window := r.k.Now() - r.resetAt
	if window == 0 {
		return 0
	}
	return float64(r.busyArea) / float64(Time(r.servers)*window)
}

func (r *Resource) mark() {
	now := r.k.Now()
	r.busyArea += Time(r.busy) * (now - r.lastMark)
	r.lastMark = now
}

// ResetStats zeroes the utilization and waiting statistics without
// disturbing the queue itself; subsequent Utilization figures cover
// only the window after the reset. Used to exclude warmup transients.
func (r *Resource) ResetStats() {
	r.mark()
	r.busyArea = 0
	r.grants = 0
	r.waitSum = 0
	r.resetAt = r.k.Now()
}
