package sim

import (
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestRandZeroSeedUsable(t *testing.T) {
	r := NewRand(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 90 {
		t.Fatalf("zero-seeded stream produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestRandSplitIndependent(t *testing.T) {
	parent := NewRand(7)
	a := parent.Split(0)
	b := parent.Split(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams collided %d/1000 times", same)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(99)
	f := func(n uint8) bool {
		m := int(n%100) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRandFloat64Mean(t *testing.T) {
	r := NewRand(123)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRandBoolExtremes(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRandBoolProbability(t *testing.T) {
	r := NewRand(17)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) hit fraction = %v, want ~0.3", frac)
	}
}

func TestRandGeometricMean(t *testing.T) {
	r := NewRand(31)
	const mean = 8.0
	var sum int
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Geometric(mean)
	}
	got := float64(sum) / n
	if got < mean*0.95 || got > mean*1.05 {
		t.Fatalf("Geometric(%v) sample mean = %v", mean, got)
	}
}

func TestRandGeometricDegenerate(t *testing.T) {
	r := NewRand(8)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(0.5); g != 1 {
			t.Fatalf("Geometric(0.5) = %d, want 1", g)
		}
		if g := r.Geometric(1); g != 1 {
			t.Fatalf("Geometric(1) = %d, want 1", g)
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(55)
	f := func(n uint8) bool {
		m := int(n % 64)
		p := r.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
