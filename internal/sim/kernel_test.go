package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelStartsAtZero(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", k.Now())
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", k.Pending())
	}
}

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []Time
	for _, at := range []Time{30, 10, 20, 5, 25} {
		at := at
		k.At(at, func() { order = append(order, at) })
	}
	k.Run()
	want := []Time{5, 10, 20, 25, 30}
	if len(order) != len(want) {
		t.Fatalf("fired %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %v, want %v", i, order[i], want[i])
		}
	}
	if k.Now() != 30 {
		t.Fatalf("final Now() = %v, want 30", k.Now())
	}
}

func TestKernelSimultaneousEventsFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(100, func() { order = append(order, i) })
	}
	k.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("simultaneous events reordered: order[%d] = %d", i, got)
		}
	}
}

func TestKernelAfterIsRelative(t *testing.T) {
	k := NewKernel()
	var hit Time = -1
	k.At(50, func() {
		k.After(25, func() { hit = k.Now() })
	})
	k.Run()
	if hit != 75 {
		t.Fatalf("After fired at %v, want 75", hit)
	}
}

func TestKernelSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(50, func() {})
	})
	k.Run()
}

func TestKernelNilEventPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Error("nil event did not panic")
		}
	}()
	k.At(1, nil)
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	var fired int
	k.At(10, func() { fired++; k.Stop() })
	k.At(20, func() { fired++ })
	k.Run()
	if fired != 1 {
		t.Fatalf("fired = %d after Stop, want 1", fired)
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending() = %d after Stop, want 1", k.Pending())
	}
	// Run again resumes from the calendar.
	k.Run()
	if fired != 2 {
		t.Fatalf("fired = %d after resume, want 2", fired)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	k.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=25, want 2", len(fired))
	}
	if k.Now() != 25 {
		t.Fatalf("Now() = %v after RunUntil(25), want 25", k.Now())
	}
	k.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %d events by t=100, want 4", len(fired))
	}
	if k.Now() != 100 {
		t.Fatalf("Now() = %v after RunUntil(100), want 100", k.Now())
	}
}

func TestKernelRunUntilIdleAdvancesClock(t *testing.T) {
	k := NewKernel()
	k.RunUntil(500)
	if k.Now() != 500 {
		t.Fatalf("Now() = %v, want 500 on empty calendar", k.Now())
	}
}

func TestKernelFiredCount(t *testing.T) {
	k := NewKernel()
	for i := Time(1); i <= 7; i++ {
		k.At(i, func() {})
	}
	k.Run()
	if k.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", k.Fired())
	}
}

func TestKernelCascadedScheduling(t *testing.T) {
	// Events that schedule further events must interleave correctly
	// with pre-existing calendar entries.
	k := NewKernel()
	var order []string
	k.At(10, func() {
		order = append(order, "a10")
		k.At(15, func() { order = append(order, "a15") })
	})
	k.At(12, func() { order = append(order, "b12") })
	k.At(20, func() { order = append(order, "b20") })
	k.Run()
	want := []string{"a10", "b12", "a15", "b20"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTimeNanoseconds(t *testing.T) {
	if got := (2 * Nanosecond).Nanoseconds(); got != 2 {
		t.Fatalf("2ns = %v ns, want 2", got)
	}
	if got := (500 * Picosecond).Nanoseconds(); got != 0.5 {
		t.Fatalf("500ps = %v ns, want 0.5", got)
	}
}

func TestTimeOrderInvariant(t *testing.T) {
	// Property: for any set of (bounded) event times, dispatch order is
	// non-decreasing in time.
	f := func(raw []uint16) bool {
		k := NewKernel()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			k.At(at, func() { fired = append(fired, at) })
		}
		k.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
