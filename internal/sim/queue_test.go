package sim

import "testing"

func TestResourceImmediateGrant(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "bank", 1)
	granted := false
	r.Acquire(func() { granted = true })
	if !granted {
		t.Fatal("idle resource did not grant immediately")
	}
	if r.Busy() != 1 {
		t.Fatalf("Busy() = %d, want 1", r.Busy())
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "bank", 1)
	var order []int
	k.At(0, func() {
		r.Acquire(func() {}) // occupy
		for i := 1; i <= 3; i++ {
			i := i
			r.Acquire(func() { order = append(order, i) })
		}
	})
	k.At(10, func() { r.Release() })
	k.At(20, func() { r.Release() })
	k.At(30, func() { r.Release() })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", order, want)
		}
	}
}

func TestResourceUseHoldsForDuration(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "bank", 1)
	var first, second Time = -1, -1
	k.At(0, func() {
		r.Use(140*Nanosecond, func() { first = k.Now() })
		r.Use(140*Nanosecond, func() { second = k.Now() })
	})
	k.Run()
	if first != 140*Nanosecond {
		t.Fatalf("first completion at %v, want 140ns", first)
	}
	if second != 280*Nanosecond {
		t.Fatalf("second completion at %v, want 280ns (queued behind first)", second)
	}
}

func TestResourceMultipleServers(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "banks", 2)
	var done []Time
	k.At(0, func() {
		for i := 0; i < 3; i++ {
			r.Use(100, func() { done = append(done, k.Now()) })
		}
	})
	k.Run()
	if len(done) != 3 {
		t.Fatalf("completions = %d, want 3", len(done))
	}
	// Two run in parallel (finish at 100), third queues (finishes at 200).
	if done[0] != 100 || done[1] != 100 || done[2] != 200 {
		t.Fatalf("completion times = %v, want [100 100 200]", done)
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "bank", 1)
	defer func() {
		if recover() == nil {
			t.Error("Release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestResourceUtilization(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "bank", 1)
	k.At(0, func() { r.Use(50, nil) })
	k.At(100, func() { k.Stop() })
	k.Run()
	u := r.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("Utilization() = %v, want 0.5 (busy 50 of 100)", u)
	}
}

func TestResourceMeanWait(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "bank", 1)
	k.At(0, func() {
		r.Use(100, nil) // grant at 0, no wait
		r.Use(100, nil) // waits 100
	})
	k.Run()
	if got := r.MeanWait(); got != 50 {
		t.Fatalf("MeanWait() = %v, want 50 (waits 0 and 100)", got)
	}
}

func TestResourceQueueLen(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "bank", 1)
	r.Acquire(func() {})
	r.Acquire(func() {})
	r.Acquire(func() {})
	if r.QueueLen() != 2 {
		t.Fatalf("QueueLen() = %d, want 2", r.QueueLen())
	}
}

func TestResourceZeroServersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewResource with 0 servers did not panic")
		}
	}()
	NewResource(NewKernel(), "bad", 0)
}
