package sim

import "testing"

// This file cross-checks the calendar-queue kernel, event for event,
// against a deliberately naive reference implementation: a flat list
// scanned for the (time, seq) minimum on every dispatch. The same
// seeded random workload — cascading schedules at mixed horizons plus
// random cancellations — is driven through both; any divergence in
// dispatch order, timestamps, clock placement, or Cancel results is a
// calendar bug.

// refEvent is one entry in the reference calendar.
type refEvent struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	live     bool
}

// refKernel is the reference scheduler: correct by inspection, O(n) per
// dispatch.
type refKernel struct {
	now Time
	seq uint64
	evs []refEvent
}

func (r *refKernel) after(d Duration, fn func()) int {
	r.evs = append(r.evs, refEvent{at: r.now + d, seq: r.seq, fn: fn, live: true})
	r.seq++
	return len(r.evs) - 1
}

func (r *refKernel) cancel(i int) bool {
	e := &r.evs[i]
	if !e.live || e.canceled {
		return false
	}
	e.canceled = true
	return true
}

func (r *refKernel) run() {
	for {
		best := -1
		for i := range r.evs {
			e := &r.evs[i]
			if !e.live {
				continue
			}
			if best < 0 || e.at < r.evs[best].at ||
				(e.at == r.evs[best].at && e.seq < r.evs[best].seq) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		e := &r.evs[best]
		e.live = false
		if e.canceled {
			continue
		}
		r.now = e.at
		e.fn()
	}
}

// calendarAPI is the scheduling surface the randomized workload drives;
// both the real kernel and the reference implement it.
type calendarAPI interface {
	now() Time
	after(d Duration, fn func()) (cancel func() bool)
}

type handlerFunc func(Time)

func (f handlerFunc) OnEvent(at Time) { f(at) }

type realCal struct{ k *Kernel }

func (c realCal) now() Time { return c.k.Now() }
func (c realCal) after(d Duration, fn func()) func() bool {
	id := c.k.Schedule(c.k.Now()+d, handlerFunc(func(Time) { fn() }))
	return func() bool { return c.k.Cancel(id) }
}

type refCal struct{ r *refKernel }

func (c refCal) now() Time { return c.r.now }
func (c refCal) after(d Duration, fn func()) func() bool {
	id := c.r.after(d, fn)
	return func() bool { return c.r.cancel(id) }
}

// fireRec logs one observable action: an event firing (id >= 0) or a
// Cancel call's result (id == -1).
type fireRec struct {
	id       int
	at       Time
	canceled bool
}

// driveRandomWorkload runs the seeded workload against cal and returns
// the observation log. Delays are drawn from four regimes to exercise
// every calendar tier: zero (FIFO ties inside one bucket), sub-bucket,
// mid-wheel, and past the wheel horizon (overflow heap + base jumps).
// All randomness is consumed inside event handlers, so identical
// dispatch order implies an identical draw sequence — divergence
// between implementations shows up in the log rather than hiding.
func driveRandomWorkload(cal calendarAPI, seed uint64, run func()) []fireRec {
	rng := NewRand(seed)
	var (
		log     []fireRec
		cancels []func() bool
		nextID  int
		total   int
	)
	const maxEvents = 2500
	var schedule func()
	schedule = func() {
		if total >= maxEvents {
			return
		}
		total++
		id := nextID
		nextID++
		var d Duration
		switch rng.Intn(4) {
		case 0:
			d = 0
		case 1:
			d = Duration(rng.Intn(int(bucketWidth)))
		case 2:
			d = Duration(rng.Intn(64 * int(bucketWidth)))
		default:
			d = Duration(rng.Intn(3 * wheelLen * int(bucketWidth)))
		}
		c := cal.after(d, func() {
			log = append(log, fireRec{id: id, at: cal.now()})
			for n := rng.Intn(3); n > 0; n-- {
				schedule()
			}
			if len(cancels) > 0 && rng.Bool(0.3) {
				ok := cancels[rng.Intn(len(cancels))]()
				log = append(log, fireRec{id: -1, at: cal.now(), canceled: ok})
			}
		})
		cancels = append(cancels, c)
	}
	for i := 0; i < 40; i++ {
		schedule()
	}
	run()
	return log
}

func compareLogs(t *testing.T, name string, got, want []fireRec) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d log records, reference has %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: log[%d] = %+v, reference %+v", name, i, got[i], want[i])
		}
	}
}

func TestKernelMatchesReferenceHeap(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		ref := &refKernel{}
		refLog := driveRandomWorkload(refCal{ref}, seed, ref.run)

		k := NewKernel()
		realLog := driveRandomWorkload(realCal{k}, seed, func() { k.Run() })
		compareLogs(t, "Run", realLog, refLog)
		if k.Now() != ref.now {
			t.Fatalf("final clock %v, reference %v", k.Now(), ref.now)
		}
		if k.Pending() != 0 {
			t.Fatalf("Pending() = %d after drain, want 0", k.Pending())
		}
	}
}

func TestKernelRunUntilMatchesReferenceHeap(t *testing.T) {
	// Same workload, but the real kernel is driven by repeated RunUntil
	// steps — the path that pops records out of wheel buckets directly.
	// Dispatch order and timestamps must still match the reference
	// exactly; only idle clock advancement may differ.
	for seed := uint64(1); seed <= 4; seed++ {
		ref := &refKernel{}
		refLog := driveRandomWorkload(refCal{ref}, seed, ref.run)

		k := NewKernel()
		realLog := driveRandomWorkload(realCal{k}, seed, func() {
			for k.Pending() > 0 {
				k.RunUntil(k.Now() + 7*bucketWidth/2)
			}
		})
		compareLogs(t, "RunUntil", realLog, refLog)
	}
}
