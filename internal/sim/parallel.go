// Parallel execution: a partitioned conservative-window kernel.
//
// ParKernel runs P ordinary Kernels ("shards") on P goroutines in
// lockstep barrier windows. Within a window each shard drains its own
// calendar in exactly the sequential kernel's (time, seq) order; the
// window end is a global bound no shard may pass, so an event that one
// shard posts to another — always at least one lookahead interval in
// the future — is delivered at the barrier before the destination's
// clock can reach it. Conservative synchronization, no rollbacks.
//
// Determinism is the design center, not a best-effort property:
//
//   - Each shard is a plain Kernel, so intra-shard execution is exactly
//     as reproducible as a sequential run.
//   - Cross-shard events travel through per-(src,dst) SPSC queues and
//     are delivered in the canonical order (time, source shard, posting
//     sequence). The posting sequence is assigned by the deterministic
//     source shard, so delivery order — and therefore the destination
//     kernel's tie-breaking seq assignment — is a pure function of the
//     model, never of the thread schedule.
//   - Window boundaries are computed from global simulation state (the
//     earliest pending event across shards), not wall-clock races.
//
// Run the same model twice, or under GOMAXPROCS=1, or single-threaded
// via the reference executor in tests: the per-shard event sequences
// are identical.
package sim

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// ParStats is a snapshot of a parallel run's synchronization costs.
type ParStats struct {
	// Windows is how many barrier windows the run executed.
	Windows uint64
	// CrossEvents is how many events crossed a partition boundary.
	CrossEvents uint64
	// CrossWindows is how many windows delivered at least one
	// cross-partition event — the honesty measure distinguishing real
	// coupled traffic from a run that never exercised the boundary.
	CrossWindows uint64
	// BarrierStallNS is wall-clock nanoseconds each shard spent waiting
	// at window barriers — the imbalance signal: a shard with far more
	// stall than its peers had too little work.
	BarrierStallNS []int64
}

// ParKernel coordinates P Kernel shards through conservative barrier
// windows. Build it, schedule initial events on the Shard kernels,
// then Run. Model code running on shard i may post events to shard j
// with Post, subject to the lookahead contract: the event time must be
// at or beyond the current window's end.
type ParKernel struct {
	shards []*Kernel
	window Duration

	queues  []*spscRing    // queues[src*P+dst]
	scratch [][]crossEvent // per-shard delivery scratch (reused)
	sorters []crossSorter  // per-shard sorter state (no per-round alloc)

	bar       barrier
	windowEnd Time // events strictly before windowEnd run this window
	done      bool
	panicked  any

	windows      uint64
	crossEvents  []uint64 // per destination shard
	winCross     []uint64 // cross events delivered per shard this window
	crossWindows uint64   // windows that delivered >=1 cross event
	stallNS      []int64
}

// crossQueueCap bounds the lock-free tier of each pair queue; windows
// posting more spill to the (still fully delivered) overflow slice.
const crossQueueCap = 1024

// NewParKernel returns a parallel kernel with p shards synchronized by
// windows of the given width. The window is the system's lookahead: a
// cross-shard event posted during a window must be timestamped at or
// after the window's end, so window must be no wider than the minimum
// cross-partition latency of the model.
func NewParKernel(p int, window Duration) *ParKernel {
	if p <= 0 {
		panic("sim: ParKernel needs at least one shard")
	}
	if window <= 0 {
		panic("sim: ParKernel window must be positive")
	}
	pk := &ParKernel{
		shards:      make([]*Kernel, p),
		window:      window,
		queues:      make([]*spscRing, p*p),
		scratch:     make([][]crossEvent, p),
		sorters:     make([]crossSorter, p),
		crossEvents: make([]uint64, p),
		winCross:    make([]uint64, p),
		stallNS:     make([]int64, p),
	}
	for i := range pk.shards {
		pk.shards[i] = NewKernel()
	}
	for i := range pk.queues {
		pk.queues[i] = newSPSCRing(crossQueueCap)
	}
	pk.bar.init(p)
	pk.bar.pk = pk
	return pk
}

// Shards returns the number of partitions.
func (pk *ParKernel) Shards() int { return len(pk.shards) }

// Shard returns shard i's kernel. Schedule a partition's initial
// events here before Run; during Run, only code executing on shard i
// may touch it.
func (pk *ParKernel) Shard(i int) *Kernel { return pk.shards[i] }

// Window returns the configured window width (the lookahead).
func (pk *ParKernel) Window() Duration { return pk.window }

// Post schedules h to fire at absolute time at on shard dst. It must
// be called from model code executing on shard src during Run. The
// lookahead contract is enforced loudly: at must not precede the
// current window's end, because the destination may already have
// advanced into the window.
func (pk *ParKernel) Post(src, dst int, at Time, h EventHandler) {
	if h == nil {
		panic("sim: posting nil event handler")
	}
	if end := pk.windowEnd; at < end {
		panic(fmt.Sprintf("sim: cross-partition event at %v violates lookahead (window ends %v)", at, end))
	}
	pk.queues[src*len(pk.shards)+dst].push(at, h)
}

// PostAt is Post with an explicit boundary-band calendar position (see
// Kernel.AtBoundary): the event is delivered at exactly (at, seq) on
// the destination shard instead of taking a fresh tie-break seq. A
// sequential execution of the same model that schedules its boundary
// crossings at the same banded positions therefore builds an identical
// calendar — the mechanism behind byte-identical parallel runs that
// carry real cross-shard traffic. seq must have BoundarySeqBand set
// and must be unique per (at, seq) pair; the model owns that
// discipline (the segmented ring derives it from the boundary link id
// and a per-link FIFO counter).
func (pk *ParKernel) PostAt(src, dst int, at Time, seq uint64, h EventHandler) {
	if h == nil {
		panic("sim: posting nil event handler")
	}
	if seq&BoundarySeqBand == 0 {
		panic("sim: PostAt requires a banded sequence number")
	}
	if end := pk.windowEnd; at < end {
		panic(fmt.Sprintf("sim: cross-partition event at %v violates lookahead (window ends %v)", at, end))
	}
	pk.queues[src*len(pk.shards)+dst].pushSeq(at, seq, h)
}

// Stats returns the run's synchronization counters. Call after Run.
func (pk *ParKernel) Stats() ParStats {
	var cross uint64
	for _, c := range pk.crossEvents {
		cross += c
	}
	return ParStats{
		Windows:        pk.windows,
		CrossEvents:    cross,
		CrossWindows:   pk.crossWindows,
		BarrierStallNS: append([]int64(nil), pk.stallNS...),
	}
}

// Run drives every shard to calendar exhaustion and returns the
// latest shard clock. Shards execute on their own goroutines; Run
// returns when no shard has pending events and no cross-partition
// events remain queued. A panic on any shard is re-raised on the
// caller's goroutine.
func (pk *ParKernel) Run() Time {
	p := len(pk.shards)
	if p == 1 {
		// One shard is a sequential run; skip the window machinery.
		pk.windows = 1
		return pk.shards[0].Run()
	}
	pk.done = false
	pk.advanceWindow()
	if pk.done {
		return pk.maxNow()
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pk.bar.abort(r)
				}
			}()
			pk.worker(i)
		}(i)
	}
	wg.Wait()
	if pk.panicked != nil {
		panic(pk.panicked)
	}
	return pk.maxNow()
}

func (pk *ParKernel) maxNow() Time {
	var t Time
	for _, k := range pk.shards {
		if k.Now() > t {
			t = k.Now()
		}
	}
	return t
}

// worker is shard i's loop: run the window, synchronize, deliver
// cross events, synchronize again while the leader picks the next
// window, repeat until global exhaustion.
func (pk *ParKernel) worker(i int) {
	k := pk.shards[i]
	for {
		// Run phase: drain this shard's calendar up to (not through)
		// the window end. Events fired here may Post cross events for
		// the next window or beyond.
		k.RunUntil(pk.windowEnd - 1)

		// Barrier 1: all shards finished the window, so every cross
		// event for the next window has been pushed.
		pk.stall(i, func() { pk.bar.wait(nil) })

		// Drain phase: deliver cross events addressed to this shard in
		// canonical (time, src, idx) order.
		pk.deliver(i)

		// Barrier 2: all deliveries done; the leader computes the next
		// window from the new global calendar state.
		pk.stall(i, func() { pk.bar.wait(pk.advanceWindow) })

		if pk.done {
			return
		}
	}
}

// stall runs fn (a barrier wait) and charges the wall-clock wait to
// shard i's stall counter.
func (pk *ParKernel) stall(i int, fn func()) {
	t0 := time.Now()
	fn()
	pk.stallNS[i] += time.Since(t0).Nanoseconds()
}

// deliver schedules shard i's incoming cross events. Sorting by
// (time, source shard, posting sequence) makes the destination
// kernel's seq assignment — the same-instant tie-breaker — a
// deterministic function of the model, independent of which goroutine
// got where first.
func (pk *ParKernel) deliver(i int) {
	p := len(pk.shards)
	evs := pk.scratch[i][:0]
	srt := &pk.sorters[i]
	srt.src = srt.src[:0]
	for src := 0; src < p; src++ {
		if src == i {
			continue
		}
		n := len(evs)
		evs = pk.queues[src*p+i].drainInto(evs)
		for ; n < len(evs); n++ {
			srt.src = append(srt.src, src)
		}
	}
	pk.scratch[i] = evs // keep grown capacity
	if len(evs) == 0 {
		pk.winCross[i] = 0
		return
	}
	srt.evs = evs
	sort.Sort(srt)
	k := pk.shards[i]
	for _, ev := range evs {
		if ev.seq != 0 {
			k.AtBoundary(ev.at, ev.seq, ev.h)
		} else {
			k.AtEvent(ev.at, ev.h)
		}
	}
	pk.crossEvents[i] += uint64(len(evs))
	pk.winCross[i] = uint64(len(evs))
}

// crossSorter orders a delivery batch by (time, source shard, posting
// sequence). It lives in the ParKernel so sorting allocates nothing in
// steady state.
type crossSorter struct {
	evs []crossEvent
	src []int
}

func (s *crossSorter) Len() int { return len(s.evs) }
func (s *crossSorter) Less(a, b int) bool {
	ea, eb := s.evs[a], s.evs[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	if s.src[a] != s.src[b] {
		return s.src[a] < s.src[b]
	}
	return ea.idx < eb.idx
}
func (s *crossSorter) Swap(a, b int) {
	s.evs[a], s.evs[b] = s.evs[b], s.evs[a]
	s.src[a], s.src[b] = s.src[b], s.src[a]
}

// advanceWindow (leader section, single-threaded between barriers)
// finds the earliest pending event across shards and opens the next
// window over it, or declares the run complete. Delivery has already
// happened, so every queued cross event is on some shard's calendar.
func (pk *ParKernel) advanceWindow() {
	var winCross uint64
	for i, c := range pk.winCross {
		winCross += c
		pk.winCross[i] = 0
	}
	if winCross > 0 {
		pk.crossWindows++
	}
	next := Time(-1)
	for _, k := range pk.shards {
		if t, ok := k.PeekTime(); ok && (next < 0 || t < next) {
			next = t
		}
	}
	if next < 0 {
		pk.done = true
		return
	}
	pk.windows++
	pk.windowEnd = next + pk.window
}

// barrier is a reusable counting barrier with a leader section: the
// last arriver runs fn (if any) before releasing the others. abort
// releases every waiter immediately and poisons further waits, so a
// panicking shard cannot deadlock its peers.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	count   int
	gen     uint64
	aborted bool
	pk      *ParKernel
}

func (b *barrier) init(n int) {
	b.n = n
	b.cond = sync.NewCond(&b.mu)
}

func (b *barrier) wait(leader func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		panic(errBarrierAborted)
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		if leader != nil {
			leader()
		}
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen && !b.aborted {
		b.cond.Wait()
	}
	if b.aborted {
		panic(errBarrierAborted)
	}
}

// errBarrierAborted is the poison value peers panic with after abort;
// Run reports the original panic, not this sentinel.
var errBarrierAborted = fmt.Errorf("sim: parallel run aborted by peer shard panic")

func (b *barrier) abort(cause any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if cause != errBarrierAborted && b.pk != nil && b.pk.panicked == nil {
		b.pk.panicked = cause
	}
	b.aborted = true
	b.cond.Broadcast()
}
