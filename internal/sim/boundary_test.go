package sim

import (
	"reflect"
	"sync/atomic"
	"testing"
)

// bandSeq builds a boundary-band calendar seq the way the segmented
// ring does: link id in the high bits under the band, FIFO index low.
func bandSeq(link, fifo uint64) uint64 {
	return BoundarySeqBand | link<<40 | fifo
}

// recorder logs its id at dispatch time.
type recorder struct {
	log *[]uint64
	id  uint64
}

func (r *recorder) OnEvent(Time) { *r.log = append(*r.log, r.id) }

// TestAtBoundaryOrdersAfterNormalEvents: at a shared timestamp, banded
// events dispatch after every ordinarily scheduled event, and among
// themselves in band-seq order regardless of insertion order.
func TestAtBoundaryOrdersAfterNormalEvents(t *testing.T) {
	k := NewKernel()
	var log []uint64
	// Insert banded events first and out of band-seq order; normal
	// events after. Dispatch must still be normal-first, band-ascending.
	k.AtBoundary(5*Nanosecond, bandSeq(2, 0), &recorder{&log, 102})
	k.AtBoundary(5*Nanosecond, bandSeq(0, 1), &recorder{&log, 101})
	k.AtBoundary(5*Nanosecond, bandSeq(0, 0), &recorder{&log, 100})
	k.AtEvent(5*Nanosecond, &recorder{&log, 1})
	k.AtEvent(5*Nanosecond, &recorder{&log, 2})
	k.Run()
	want := []uint64{1, 2, 100, 101, 102}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("dispatch order = %v, want %v", log, want)
	}
}

// TestAtBoundaryValidation: the band bit is mandatory, the past is
// rejected, nil handlers are rejected.
func TestAtBoundaryValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	var log []uint64
	mustPanic("unbanded seq", func() {
		NewKernel().AtBoundary(0, 7, &recorder{&log, 0})
	})
	mustPanic("nil handler", func() {
		NewKernel().AtBoundary(0, bandSeq(0, 0), nil)
	})
	mustPanic("past time", func() {
		k := NewKernel()
		k.AtEvent(10*Nanosecond, &recorder{&log, 0})
		k.Run()
		k.AtBoundary(5*Nanosecond, bandSeq(0, 0), &recorder{&log, 0})
	})
}

// postAtActor relays a token to the next shard via PostAt with a
// model-derived band seq, logging each hop.
type postAtActor struct {
	pk    *ParKernel
	shard int
	hop   Duration
	left  *int32
	log   *[][]uint64
	next  *postAtActor
	fifo  uint64
}

func (a *postAtActor) OnEvent(at Time) {
	(*a.log)[a.shard] = append((*a.log)[a.shard], uint64(at))
	if atomic.AddInt32(a.left, -1) <= 0 {
		return
	}
	a.pk.PostAt(a.shard, a.next.shard, at+a.hop, bandSeq(uint64(a.shard), a.fifo), a.next)
	a.fifo++
}

// TestPostAtExactWindowEdge: PostAt with at exactly equal to the
// current window end is legal (hop == lookahead, the adversarial
// off-by-one boundary), while one tick earlier panics.
func TestPostAtExactWindowEdge(t *testing.T) {
	const p = 2
	hop := 10 * Nanosecond
	pk := NewParKernel(p, hop)
	logs := make([][]uint64, p)
	left := int32(9)
	actors := make([]*postAtActor, p)
	for i := range actors {
		actors[i] = &postAtActor{pk: pk, shard: i, hop: hop, left: &left, log: &logs}
	}
	for i := range actors {
		actors[i].next = actors[(i+1)%p]
	}
	pk.Shard(0).AtEvent(0, actors[0])
	pk.Run()
	var got []uint64
	for _, l := range logs {
		got = append(got, l...)
	}
	if len(got) != 9 {
		t.Fatalf("fired %d hops, want 9", len(got))
	}
	st := pk.Stats()
	if st.CrossEvents == 0 || st.CrossWindows == 0 {
		t.Fatalf("expected cross traffic, got %+v", st)
	}
	if st.CrossWindows > st.Windows {
		t.Fatalf("CrossWindows %d > Windows %d", st.CrossWindows, st.Windows)
	}

	// One tick inside the window violates the lookahead contract.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected lookahead-violation panic")
			}
		}()
		pk2 := NewParKernel(p, hop)
		v := &violatingPoster{pk: pk2, hop: hop}
		pk2.Shard(0).AtEvent(0, v)
		pk2.Run()
	}()
}

type violatingPoster struct {
	pk  *ParKernel
	hop Duration
}

func (v *violatingPoster) OnEvent(at Time) {
	var log []uint64
	v.pk.PostAt(0, 1, at+v.hop-1, bandSeq(0, 0), &recorder{&log, 0})
}

// TestPostAtMatchesSequentialAtBoundary: delivering banded posts
// through the ParKernel yields the same dispatch schedule (times and
// fired count) as scheduling the identical banded events on one
// sequential kernel — projection equivalence at the sim layer.
func TestPostAtMatchesSequentialAtBoundary(t *testing.T) {
	const p = 2
	hop := 7 * Nanosecond
	run := func(parallel bool) ([]uint64, uint64) {
		logs := make([][]uint64, p)
		if parallel {
			pk := NewParKernel(p, hop)
			left := int32(12)
			actors := make([]*postAtActor, p)
			for i := range actors {
				actors[i] = &postAtActor{pk: pk, shard: i, hop: hop, left: &left, log: &logs}
			}
			for i := range actors {
				actors[i].next = actors[(i+1)%p]
			}
			pk.Shard(0).AtEvent(0, actors[0])
			pk.Run()
			var fired uint64
			for i := 0; i < p; i++ {
				fired += pk.Shard(i).Fired()
			}
			return append(logs[0], logs[1]...), fired
		}
		// Sequential projection: one kernel plays both shards; boundary
		// crossings are scheduled with AtBoundary at the same banded
		// positions PostAt would deliver them at.
		k := NewKernel()
		left := 12
		var seq *seqActor
		seq = &seqActor{k: k, hop: hop, left: &left, log: &logs}
		k.AtEvent(0, seq)
		k.Run()
		return append(logs[0], logs[1]...), k.Fired()
	}
	pLog, pFired := run(true)
	sLog, sFired := run(false)
	if !reflect.DeepEqual(pLog, sLog) {
		t.Fatalf("parallel log %v != sequential log %v", pLog, sLog)
	}
	if pFired != sFired {
		t.Fatalf("parallel fired %d != sequential fired %d", pFired, sFired)
	}
}

// seqActor is the sequential projection of postAtActor: same token
// relay on one kernel, boundary hops scheduled with AtBoundary at the
// identical banded positions.
type seqActor struct {
	k     *Kernel
	hop   Duration
	left  *int
	log   *[][]uint64
	shard int
	fifo  [2]uint64
}

func (a *seqActor) OnEvent(at Time) {
	(*a.log)[a.shard] = append((*a.log)[a.shard], uint64(at))
	*a.left--
	if *a.left <= 0 {
		return
	}
	src := a.shard
	a.shard = (a.shard + 1) % 2
	a.k.AtBoundary(at+a.hop, bandSeq(uint64(src), a.fifo[src]), a)
	a.fifo[src]++
}
