package sim

import "testing"

// These tests pin the Stop/Run reuse contract: Stop only affects the
// run in progress, and both Run and RunUntil clear the stop flag on
// entry and on return, so a stopped kernel can always be reused.

func TestKernelStopThenRunReuse(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, at := range []Time{10, 20, 30} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	k.At(15, func() { k.Stop() })
	if got := k.Run(); got != 15 {
		t.Fatalf("Run() stopped at %v, want 15", got)
	}
	if len(fired) != 1 {
		t.Fatalf("fired %d events before Stop, want 1", len(fired))
	}
	// The stop flag must not leak into the next run: a plain Run resumes
	// from the calendar and drains it.
	if got := k.Run(); got != 30 {
		t.Fatalf("resumed Run() ended at %v, want 30", got)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events after resume, want 3", len(fired))
	}
	// A stray Stop outside any run is a no-op; the following Run still
	// dispatches normally.
	k.Stop()
	k.At(40, func() { fired = append(fired, 40) })
	k.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %d events after stray Stop, want 4", len(fired))
	}
}

func TestKernelStopThenRunUntilReuse(t *testing.T) {
	k := NewKernel()
	var fired []Time
	k.At(10, func() { fired = append(fired, 10); k.Stop() })
	k.At(20, func() { fired = append(fired, 20) })
	// Stopped early: the clock stays at the last dispatched event, not
	// the limit.
	if got := k.RunUntil(100); got != 10 {
		t.Fatalf("stopped RunUntil(100) left clock at %v, want 10", got)
	}
	if len(fired) != 1 {
		t.Fatalf("fired %d events before Stop, want 1", len(fired))
	}
	// The kernel is reusable: the next RunUntil dispatches the rest and
	// advances the clock to the limit.
	if got := k.RunUntil(100); got != 100 {
		t.Fatalf("resumed RunUntil(100) left clock at %v, want 100", got)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events after resume, want 2", len(fired))
	}
}

func TestKernelRunUntilThenRun(t *testing.T) {
	// Mixing the two run modes must preserve the calendar: RunUntil
	// leaves future events pending, Run picks them up.
	k := NewKernel()
	var fired []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	k.RunUntil(10)
	if len(fired) != 1 || k.Now() != 10 {
		t.Fatalf("after RunUntil(10): fired=%v Now=%v, want [5] 10", fired, k.Now())
	}
	k.Run()
	if len(fired) != 3 || k.Now() != 25 {
		t.Fatalf("after Run(): fired=%v Now=%v, want [5 15 25] 25", fired, k.Now())
	}
}

func TestKernelRunUntilAcrossBuckets(t *testing.T) {
	// Regression: RunUntil pops events directly out of wheel buckets and
	// must clear the occupancy bit when it empties one, or the next
	// dispatch finds a stale bit pointing at an empty bucket. The event
	// times here are chosen to land in distinct buckets (spacing >
	// bucketWidth) with empty buckets between them.
	k := NewKernel()
	var fired []Time
	for _, at := range []Time{100, 3 * bucketWidth, 9 * bucketWidth, (wheelLen + 5) * bucketWidth} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	k.RunUntil(200) // empties the first bucket
	if len(fired) != 1 {
		t.Fatalf("fired %d events by t=200, want 1", len(fired))
	}
	k.RunUntil(4 * bucketWidth) // crosses the emptied bucket
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=%v, want 2", len(fired), 4*bucketWidth)
	}
	// Refill an already-emptied region and drain everything, overflow
	// tier included.
	k.At(5*bucketWidth, func() { fired = append(fired, 5*bucketWidth) })
	k.Run()
	want := []Time{100, 3 * bucketWidth, 5 * bucketWidth, 9 * bucketWidth, (wheelLen + 5) * bucketWidth}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}
