package cluster

import (
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// SynthKind is the job kind of the fleet-calibration executor.
const SynthKind = "sleep"

// SynthExecutor is a fixed-service-time executor for calibrating the
// dispatch plane: a job of kind "sleep" blocks for DataRefsPerCPU
// microseconds, then returns metrics derived purely from the job's
// content. It models a fleet whose workers run on their own hosts —
// service time is independent of the coordinator host's core count —
// which is what BENCH_5 needs to measure dispatch scaling on a
// single-core CI machine, where CPU-bound simulations cannot speed up
// no matter how many worker processes share the core.
//
// The metrics are deterministic functions of the job, so the
// replicated-result invariant (byte-identical artifacts by hash,
// wherever a job ran) holds for synthetic jobs exactly as it does for
// simulations. The executor is only registered behind ringserved's
// -synthexec flag; production fleets never expose it.
func SynthExecutor(j sweep.Job) (*core.Metrics, error) {
	j = j.Normalize()
	time.Sleep(time.Duration(j.DataRefsPerCPU) * time.Microsecond)
	m := &core.Metrics{
		ExecTime: sim.Time(int64(j.CPUs) * int64(j.DataRefsPerCPU) * 1000),
		BusyTime: sim.Time(int64(j.CPUs) * int64(j.DataRefsPerCPU) * 500),
		DataRefs: uint64(j.CPUs * j.DataRefsPerCPU),
	}
	m.MissLatency.Observe(float64(600 + j.Seed%7))
	return m, nil
}
