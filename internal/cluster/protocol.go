package cluster

import (
	"repro/internal/stats"
	"repro/internal/sweep"
)

// Internal API routes. The coordinator serves join/heartbeat/leave and
// a results relay; workers serve exec/results/health plus the
// observability aggregate used by metrics federation. Both live under
// /internal/v1/ so deployments can firewall the plane off from the
// public /v1/ API.
const (
	pathJoin      = "/internal/v1/join"
	pathHeartbeat = "/internal/v1/heartbeat"
	pathLeave     = "/internal/v1/leave"
	pathExec      = "/internal/v1/exec"
	pathResults   = "/internal/v1/results/"
	pathHealth    = "/internal/v1/health"
	pathObsAgg    = "/internal/v1/obsagg"
)

// Response headers the exec and results endpoints attach, so callers
// (and tests) can see which node answered and from which cache tier.
const (
	headerWorker = "X-Ringsim-Worker"
	headerSource = "X-Ringsim-Source"
	// headerTenant carries tenant provenance on exec requests. The job
	// body deliberately omits the tenant — identical jobs from
	// different tenants must stay byte-identical so content hashes and
	// cache entries collapse — so the wire carries it out of band.
	headerTenant = "X-Ringsim-Tenant"
)

// JoinRequest registers (or re-registers) a worker with the
// coordinator. Joins are idempotent: a worker that lost its heartbeat
// or restarted re-joins under the same ID and resumes its ring
// position without moving any keys.
type JoinRequest struct {
	// ID is the worker's stable identity (ring membership key).
	ID string `json:"id"`
	// Addr is the base URL where the worker's internal API listens.
	Addr string `json:"addr"`
	// Workers is the worker engine's execution parallelism — the
	// coordinator's per-worker capacity hint for overflow forwarding.
	Workers int `json:"workers"`
}

// HeartbeatRequest is the periodic liveness + load report.
type HeartbeatRequest struct {
	ID string `json:"id"`
	// InFlight is the worker's current internal-exec in-flight gauge.
	InFlight int `json:"in_flight"`
	// Stats is the worker engine's counter snapshot; the coordinator
	// surfaces per-worker done/span aggregates from it.
	Stats sweep.Stats `json:"stats"`
}

// LeaveRequest removes a worker from the ring (graceful drain).
type LeaveRequest struct {
	ID string `json:"id"`
}

// WorkerHealth is the worker's GET /internal/v1/health body.
type WorkerHealth struct {
	ID       string      `json:"id"`
	InFlight int         `json:"in_flight"`
	Workers  int         `json:"workers"`
	Stats    sweep.Stats `json:"stats"`
}

// execErrorBody is the exec endpoint's error envelope. Status 422
// marks a permanent job error (retrying on another worker cannot
// help); 5xx marks worker trouble the coordinator should retry.
type execErrorBody struct {
	Error string `json:"error"`
}

// ClassAggSnapshot is one transaction class's span aggregate on the
// federation wire: the worker's engine-lifetime span count and latency
// histogram as a validated, mergeable snapshot. The worker serves a
// list of these at GET /internal/v1/obsagg; the coordinator merges
// same-class histograms across the fleet with ExpHistogram.Merge.
type ClassAggSnapshot struct {
	Class   string             `json:"class"`
	Spans   uint64             `json:"spans"`
	Latency stats.HistSnapshot `json:"latency"`
}

// StatusDoc is the coordinator's GET /v1/cluster/status body: fleet
// membership with liveness and load, plus the coordinator's dispatch
// accounting — the one page an operator reads before anything else
// when a fleet misbehaves.
type StatusDoc struct {
	Workers       []MemberStatus `json:"workers"`
	Live          int            `json:"live"`
	Down          int            `json:"down"`
	Dispatches    uint64         `json:"dispatches"` // home + forward + steal
	Forwards      uint64         `json:"forwards"`
	Steals        uint64         `json:"steals"`
	ExecFailures  uint64         `json:"exec_failures"`
	NoWorker      uint64         `json:"no_worker_errors"`
	PeerFetches   uint64         `json:"peer_fetches"`
	InFlightTotal int            `json:"inflight_total"` // coordinator-side outstanding dispatches
}
