// Package cluster is the distributed sweep plane: it promotes the
// single-process sweep engine + serving layer into a coordinator and a
// fleet of worker daemons.
//
// The design leans entirely on the content-addressed Job/Result model:
// a job's SHA-256 content hash both names its result and places it on
// the fleet (consistent hashing with virtual nodes), so placement is
// deterministic for a fixed member set, retry and replication are
// idempotent, and any node can answer a result lookup byte-identically
// regardless of which worker executed the job.
//
// Three pieces:
//
//   - HashRing: consistent-hash placement of job hashes onto workers,
//     with virtual nodes for balance and bounded key movement on
//     join/leave.
//   - Worker: the daemon side — an internal HTTP API (exec, results,
//     health) wrapping a local sweep.Engine, plus the join/heartbeat
//     loop against the coordinator.
//   - Coordinator: the registry and dispatcher — it installs itself
//     as the engine's Executor, so the public serving layer keeps its
//     admission, deadline, SSE, and caching semantics unchanged while
//     jobs execute remotely; on worker loss or timeout in-flight jobs
//     are stolen by the next live owner with bounded retry + backoff.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultVirtualNodes is the per-member virtual-node count. 128 points
// keeps per-member load within a few percent of fair share for small
// fleets while keeping ring rebuilds cheap.
const DefaultVirtualNodes = 128

// HashRing is a consistent-hash ring over named members. Keys (job
// content hashes) map to the member owning the first virtual node at
// or after the key's point on the ring; adding or removing one member
// moves only the keys adjacent to its virtual nodes. The ring is
// rebuilt from the member set on every membership change, so placement
// is a pure function of the current members — join order never matters
// — which is what makes coordinator restarts deterministic.
//
// A HashRing is safe for concurrent use.
type HashRing struct {
	vnodes int

	mu      sync.RWMutex
	points  []uint64          // sorted virtual-node positions
	owner   map[uint64]string // position -> member
	members map[string]struct{}
}

// NewHashRing returns an empty ring; vnodes <= 0 selects
// DefaultVirtualNodes.
func NewHashRing(vnodes int) *HashRing {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &HashRing{
		vnodes:  vnodes,
		owner:   make(map[uint64]string),
		members: make(map[string]struct{}),
	}
}

// ringPoint hashes one virtual node of a member to its ring position.
func ringPoint(member string, vnode int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", member, vnode)))
	return binary.BigEndian.Uint64(sum[:8])
}

// KeyPoint hashes a key (a job content hash) to its ring position.
func KeyPoint(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a member. Adding a present member is a no-op.
func (r *HashRing) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; ok {
		return
	}
	r.members[member] = struct{}{}
	r.rebuild()
}

// Remove deletes a member. Removing an absent member is a no-op.
func (r *HashRing) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; !ok {
		return
	}
	delete(r.members, member)
	r.rebuild()
}

// rebuild recomputes the point set from the members. A 64-bit point
// collision between distinct (member, vnode) pairs is broken by the
// smaller member name, keeping placement order-independent; across a
// few thousand points the case is astronomically unlikely anyway.
// Callers hold r.mu.
func (r *HashRing) rebuild() {
	r.points = r.points[:0]
	clear(r.owner)
	for m := range r.members {
		for v := 0; v < r.vnodes; v++ {
			p := ringPoint(m, v)
			if cur, taken := r.owner[p]; taken && cur < m {
				continue
			} else if !taken {
				r.points = append(r.points, p)
			}
			r.owner[p] = m
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i] < r.points[j] })
}

// Members returns the member set in sorted order.
func (r *HashRing) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *HashRing) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Owner returns the member owning a key, or false on an empty ring.
func (r *HashRing) Owner(key string) (string, bool) {
	seq := r.Sequence(key, 1)
	if len(seq) == 0 {
		return "", false
	}
	return seq[0], true
}

// Sequence returns up to n distinct members in ring order starting
// from the key's position — the key's home first, then the members
// that inherit it if earlier candidates are unavailable. n <= 0 means
// every member.
func (r *HashRing) Sequence(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	kp := KeyPoint(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= kp })
	seen := make(map[string]struct{}, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		m := r.owner[p]
		if _, dup := seen[m]; dup {
			continue
		}
		seen[m] = struct{}{}
		out = append(out, m)
	}
	return out
}
