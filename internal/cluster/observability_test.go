package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/reqtrace"
	olog "repro/internal/obs/slog"
	"repro/internal/sweep"
)

// obsFleet is an in-process cluster wired for observability: traced
// coordinator and workers, worker-side log capture, and a public
// /metrics page on each worker's advertised address (the topology
// ringserved's worker mode serves: internal API and public metrics on
// one port).
type obsFleet struct {
	*testFleet
	tracer  *reqtrace.Tracer
	logs    []*obsLogBuf
	engines []*sweep.Engine
}

type obsLogBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *obsLogBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *obsLogBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func startObsFleet(t *testing.T, n int) *obsFleet {
	t.Helper()
	rt := reqtrace.NewTracer("coordinator", 64)
	coord := NewCoordinator(CoordinatorOptions{
		HeartbeatTTL: 10 * time.Second,
		ExecTimeout:  30 * time.Second,
		MaxAttempts:  3,
		RetryBackoff: time.Millisecond,
		Tracer:       rt,
	})
	coordSrv := httptest.NewServer(coord.Handler())
	t.Cleanup(coordSrv.Close)
	coordEng := sweep.New(sweep.Options{Workers: 8, Executors: map[string]sweep.Executor{"": coord.Execute}})
	coord.BindEngine(coordEng)

	f := &obsFleet{
		testFleet: &testFleet{coord: coord, coordEng: coordEng, coordSrv: coordSrv},
		tracer:    rt,
	}
	for i := 0; i < n; i++ {
		id := "w" + string(rune('A'+i))
		// Worker engines trace every coherence span so obsagg has
		// aggregates to federate.
		eng := sweep.New(sweep.Options{Workers: 2, Trace: obs.Config{SampleEvery: 1}})
		lb := &obsLogBuf{}
		w, err := NewWorker(WorkerOptions{
			ID:     id,
			Engine: eng,
			Tracer: reqtrace.NewTracer("worker:"+id, 64),
			Logger: olog.New(lb, 0, "worker"),
		})
		if err != nil {
			t.Fatalf("NewWorker %s: %v", id, err)
		}
		// One mux per worker: internal cluster plane plus a public
		// metrics page, as ringserved -worker serves them.
		jobs := i + 1 // distinct per worker so relabeling is checkable
		mux := http.NewServeMux()
		mux.Handle("/internal/v1/", w.Handler())
		mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(rw, "# HELP ringsim_engine_jobs_total Jobs completed by the engine.")
			fmt.Fprintln(rw, "# TYPE ringsim_engine_jobs_total counter")
			fmt.Fprintf(rw, "ringsim_engine_jobs_total %d\n", jobs)
			fmt.Fprintln(rw, "# HELP ringsim_serve_requests_total Served requests by endpoint and status code.")
			fmt.Fprintln(rw, "# TYPE ringsim_serve_requests_total counter")
			fmt.Fprintf(rw, "ringsim_serve_requests_total{endpoint=\"jobs\",code=\"200\"} %d\n", jobs)
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		f.join(t, id, srv.URL, eng.Workers())
		f.workers = append(f.workers, &fleetWorker{w: w, eng: eng, srv: srv})
		f.logs = append(f.logs, lb)
		f.engines = append(f.engines, eng)
	}
	return f
}

// TestClusterTraceConnectedAcrossHop pins the tentpole's cross-process
// contract: a job whose TraceParent names a serve-side span yields a
// dispatch span on the coordinator and an exec span on the worker,
// parented into one connected tree in the coordinator's store — and
// the worker logged the exec with the request ID and job hash.
func TestClusterTraceConnectedAcrossHop(t *testing.T) {
	f := startObsFleet(t, 2)
	const reqID = "aabbccdd00112233"
	job := sweep.Job{CPUs: 8, DataRefsPerCPU: 200, Seed: 11, TraceParent: reqID + ":root-1"}

	res, _, err := f.coordEng.RunOneCtx(context.Background(), job)
	if err != nil {
		t.Fatalf("RunOneCtx: %v", err)
	}

	doc, ok := f.tracer.Get(reqID)
	if !ok {
		t.Fatal("coordinator store has no trace for the request")
	}
	var dispatch, exec *reqtrace.SpanData
	for i := range doc.Spans {
		switch doc.Spans[i].Name {
		case "dispatch":
			dispatch = &doc.Spans[i]
		case "exec":
			exec = &doc.Spans[i]
		}
	}
	if dispatch == nil || exec == nil {
		t.Fatalf("spans = %+v, want dispatch and exec", doc.Spans)
	}
	if dispatch.Parent != "root-1" {
		t.Errorf("dispatch parent = %q, want root-1", dispatch.Parent)
	}
	if dispatch.Service != "coordinator" {
		t.Errorf("dispatch service = %q", dispatch.Service)
	}
	if exec.Parent != dispatch.ID {
		t.Errorf("exec parent = %q, want dispatch id %q", exec.Parent, dispatch.ID)
	}
	if !strings.HasPrefix(exec.Service, "worker:") {
		t.Errorf("exec service = %q, want worker:*", exec.Service)
	}
	if exec.Attrs["hash"] != res.Hash {
		t.Errorf("exec hash attr = %q, want %q", exec.Attrs["hash"], res.Hash)
	}
	if got := dispatch.Attrs["outcome"]; got != "home" && got != "forward" {
		t.Errorf("dispatch outcome = %q", got)
	}
	if dispatch.DurUS < exec.DurUS {
		t.Errorf("dispatch (%dµs) shorter than the exec it contains (%dµs)", dispatch.DurUS, exec.DurUS)
	}

	// The executing worker logged the exec with the joinable keys.
	workerID := dispatch.Attrs["worker"]
	var logged bool
	for i, fw := range f.workers {
		if fw.w.ID() != workerID {
			continue
		}
		for _, l := range strings.Split(strings.TrimSpace(f.logs[i].String()), "\n") {
			var line map[string]any
			if json.Unmarshal([]byte(l), &line) != nil {
				continue
			}
			if line["msg"] == "exec" && line["request_id"] == reqID && line["job_hash"] == res.Hash && line["worker"] == workerID {
				logged = true
			}
		}
	}
	if !logged {
		t.Errorf("worker %s has no exec log line joining request %s to hash %s", workerID, reqID, res.Hash)
	}

	// Untraced jobs must not record dispatch spans.
	plain := sweep.Job{CPUs: 8, DataRefsPerCPU: 200, Seed: 12}
	if _, _, err := f.coordEng.RunOneCtx(context.Background(), plain); err != nil {
		t.Fatalf("untraced run: %v", err)
	}
	before := len(doc.Spans)
	if doc2, ok := f.tracer.Get(reqID); ok && len(doc2.Spans) != before {
		t.Errorf("untraced job grew the traced request's tree: %d -> %d spans", before, len(doc2.Spans))
	}
}

// TestClusterMetricsFederation pins the federation contract over a
// live coordinator+2-worker fleet: every line of the merged page
// parses as the text exposition format, worker pages carry injected
// worker labels, HELP/TYPE headers appear once per family, and the
// fleet histograms preserve the workers' span counts exactly.
func TestClusterMetricsFederation(t *testing.T) {
	f := startObsFleet(t, 2)
	for seed := uint64(1); seed <= 6; seed++ {
		if _, _, err := f.coordEng.RunOneCtx(context.Background(), sweep.Job{CPUs: 8, DataRefsPerCPU: 200, Seed: seed}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}

	var out bytes.Buffer
	f.coord.FederateMetrics(context.Background(), f.coord.WriteMetrics, &out)
	text := out.String()

	// Every sample parses; no family is declared twice.
	sampleRe := regexp.MustCompile(
		`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\n]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\n]*")*\})? (-?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?|\+Inf|NaN)$`)
	declared := map[string]int{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			declared[strings.Fields(line)[2]]++
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if !sampleRe.MatchString(line) {
			t.Errorf("federated line does not parse: %q", line)
		}
	}
	for family, n := range declared {
		if n > 1 {
			t.Errorf("family %s declared %d times", family, n)
		}
	}

	// Worker pages are present, relabeled, with per-worker values
	// intact (wA serves 1, wB serves 2 in the stub pages).
	for i, want := range []string{
		`ringsim_engine_jobs_total{worker="wA"} 1`,
		`ringsim_engine_jobs_total{worker="wB"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("federated page missing %q", want)
		}
		_ = i
	}
	if !strings.Contains(text, `ringsim_serve_requests_total{worker="wA",endpoint="jobs",code="200"} 1`) {
		t.Error("labeled sample did not get the worker label injected first")
	}

	// Fleet histograms preserve counts: summed per-class span counts
	// across worker engines equal the federated totals.
	wantSpans := map[string]uint64{}
	var wantTotal uint64
	for _, eng := range f.engines {
		for _, a := range eng.TraceAgg() {
			wantSpans[a.Class] += a.Spans
			wantTotal += a.Spans
		}
	}
	if wantTotal == 0 {
		t.Fatal("worker engines observed no spans; federation test is vacuous")
	}
	var gotTotal uint64
	for cl, want := range wantSpans {
		var got uint64
		if n, _ := fmt.Sscanf(findLine(t, text, fmt.Sprintf("ringsim_fleet_spans_total{class=%q} ", cl)),
			fmt.Sprintf("ringsim_fleet_spans_total{class=%q} %%d", cl), &got); n != 1 {
			t.Errorf("class %s: fleet spans series missing", cl)
			continue
		}
		if got != want {
			t.Errorf("class %s: fleet spans = %d, want %d (merge lost counts)", cl, got, want)
		}
		var histN uint64
		fmt.Sscanf(findLine(t, text, fmt.Sprintf("ringsim_fleet_span_latency_ns_count{class=%q} ", cl)),
			fmt.Sprintf("ringsim_fleet_span_latency_ns_count{class=%q} %%d", cl), &histN)
		if histN != want {
			t.Errorf("class %s: merged histogram count = %d, want %d", cl, histN, want)
		}
		gotTotal += got
	}
	_ = gotTotal

	// Status doc: both workers live, the dispatches accounted.
	st := f.coord.Status()
	if st.Live != 2 || st.Down != 0 {
		t.Errorf("status live/down = %d/%d, want 2/0", st.Live, st.Down)
	}
	if st.Dispatches < 6 {
		t.Errorf("status dispatches = %d, want >= 6", st.Dispatches)
	}
	if len(st.Workers) != 2 {
		t.Errorf("status workers = %d, want 2", len(st.Workers))
	}
	for _, m := range st.Workers {
		if m.HeartbeatAge < 0 {
			t.Errorf("worker %s heartbeat age negative", m.ID)
		}
	}

	// A dead worker degrades the page, never fails it.
	f.workers[0].srv.Close()
	f.coord.reg.markDown("wA")
	var degraded bytes.Buffer
	f.coord.FederateMetrics(context.Background(), f.coord.WriteMetrics, &degraded)
	if strings.Contains(degraded.String(), `ringsim_engine_jobs_total{worker="wA"}`) {
		t.Error("down worker still scraped")
	}
	if !strings.Contains(degraded.String(), `ringsim_engine_jobs_total{worker="wB"} 2`) {
		t.Error("surviving worker missing from degraded page")
	}
}

// findLine returns the first line with the given prefix, or "".
func findLine(t *testing.T, text, prefix string) string {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	return ""
}
