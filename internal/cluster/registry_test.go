package cluster

import (
	"testing"
	"time"

	"repro/internal/sweep"
)

func regWith(t *testing.T, ttl time.Duration, ids ...string) (*registry, *time.Time) {
	t.Helper()
	now := time.Unix(1000, 0)
	g := newRegistry(ttl, 0)
	g.now = func() time.Time { return now }
	for _, id := range ids {
		g.join(JoinRequest{ID: id, Addr: "http://" + id, Workers: 1})
	}
	return g, &now
}

func someHash() string { return sweep.Job{Seed: 1}.Normalize().Hash() }

// TestRegistryForwardOnSaturation: the home owner takes its hash until
// its capacity is full, then the job forwards to a live worker with
// free slots; when everyone is saturated the home queues it.
func TestRegistryForwardOnSaturation(t *testing.T) {
	g, _ := regWith(t, time.Minute, "w0", "w1")
	h := someHash()

	p1, ok := g.pick(h, nil)
	if !ok || p1.homeless {
		t.Fatalf("first pick: %+v ok=%v, want the home", p1, ok)
	}
	p2, ok := g.pick(h, nil)
	if !ok {
		t.Fatal("second pick failed")
	}
	if !p2.homeless || p2.id == p1.id {
		t.Errorf("second pick %+v, want a forward off saturated home %s", p2, p1.id)
	}
	// Both capacity-1 workers saturated: the home keeps the overflow.
	p3, ok := g.pick(h, nil)
	if !ok || p3.id != p1.id || p3.homeless {
		t.Errorf("third pick %+v, want home %s queuing the overflow", p3, p1.id)
	}
	// Releases drain the gauges back to placable state.
	g.release(p1.id)
	g.release(p2.id)
	g.release(p3.id)
	p4, ok := g.pick(h, nil)
	if !ok || p4.id != p1.id || p4.homeless {
		t.Errorf("pick after release %+v, want the home again", p4)
	}
}

// TestRegistryLiveness: a worker whose heartbeat outlives the TTL (or
// that a dispatch marked down) stops receiving work without losing its
// ring position; a beat or re-join restores it.
func TestRegistryLiveness(t *testing.T) {
	g, now := regWith(t, 5*time.Second, "w0", "w1")
	h := someHash()
	home, _ := g.pick(h, nil)
	g.release(home.id)

	// Stale heartbeat: the home misses TTL, the other worker inherits.
	*now = now.Add(6 * time.Second)
	g.beat(HeartbeatRequest{ID: otherOf(home.id)})
	p, ok := g.pick(h, nil)
	if !ok || p.id != otherOf(home.id) {
		t.Fatalf("pick with stale home = %+v ok=%v, want %s", p, ok, otherOf(home.id))
	}
	g.release(p.id)

	// The home beats again: placement snaps back — the blip never
	// removed it from the ring.
	if !g.beat(HeartbeatRequest{ID: home.id}) {
		t.Fatal("beat for known worker rejected")
	}
	p, _ = g.pick(h, nil)
	if p.id != home.id {
		t.Errorf("pick after recovery = %s, want home %s", p.id, home.id)
	}
	g.release(p.id)

	// markDown has the same effect as a missed TTL.
	g.markDown(home.id)
	p, _ = g.pick(h, nil)
	if p.id != otherOf(home.id) {
		t.Errorf("pick with downed home = %s, want %s", p.id, otherOf(home.id))
	}
	g.release(p.id)

	// A beat from an unknown worker demands a re-join.
	if g.beat(HeartbeatRequest{ID: "stranger"}) {
		t.Error("beat for unregistered worker accepted")
	}

	// leave removes the member from ring and registry entirely.
	g.leave(home.id)
	g.leave(otherOf(home.id))
	if _, ok := g.pick(h, nil); ok {
		t.Error("pick succeeded on an empty fleet")
	}
}

func otherOf(id string) string {
	if id == "w0" {
		return "w1"
	}
	return "w0"
}

// TestRegistryTriedExclusion: pick never returns a worker the dispatch
// already tried, which is what lets a steal move to a distinct owner.
func TestRegistryTriedExclusion(t *testing.T) {
	g, _ := regWith(t, time.Minute, "w0", "w1", "w2")
	h := someHash()
	tried := make(map[string]bool)
	var order []string
	for {
		p, ok := g.pick(h, tried)
		if !ok {
			break
		}
		tried[p.id] = true
		order = append(order, p.id)
	}
	if len(order) != 3 {
		t.Fatalf("exhaustive picks visited %d workers, want 3: %v", len(order), order)
	}
}
