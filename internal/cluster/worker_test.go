package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// gaugeExecutor returns an executor that tracks its own concurrency
// high-water mark while holding each job for d.
func gaugeExecutor(d time.Duration) (sweep.Executor, *atomic.Int64) {
	var cur, high atomic.Int64
	exec := func(j sweep.Job) (*core.Metrics, error) {
		n := cur.Add(1)
		for {
			h := high.Load()
			if n <= h || high.CompareAndSwap(h, n) {
				break
			}
		}
		time.Sleep(d)
		cur.Add(-1)
		m := &core.Metrics{
			ExecTime: sim.Time(int64(j.CPUs) * 1000),
			BusyTime: sim.Time(int64(j.CPUs) * 500),
			DataRefs: uint64(j.CPUs * j.DataRefsPerCPU),
		}
		m.MissLatency.Observe(600)
		return m, nil
	}
	return exec, &high
}

func newTestWorker(t *testing.T, id string, engWorkers int, execs map[string]sweep.Executor) (*Worker, *sweep.Engine, *httptest.Server) {
	t.Helper()
	eng := sweep.New(sweep.Options{Workers: engWorkers, Executors: execs})
	w, err := NewWorker(WorkerOptions{ID: id, Engine: eng})
	if err != nil {
		t.Fatalf("NewWorker: %v", err)
	}
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)
	return w, eng, srv
}

func postExec(t *testing.T, url string, job sweep.Job) *http.Response {
	t.Helper()
	body, _ := json.Marshal(job)
	resp, err := http.Post(url+pathExec, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST exec: %v", err)
	}
	return resp
}

// TestWorkerExecBoundedByEngineSemaphore: the satellite contract —
// exec requests run through the engine-global Workers semaphore, so a
// coordinator burst of 8 concurrent jobs computes at most 2 at a time
// on a Workers=2 engine.
func TestWorkerExecBoundedByEngineSemaphore(t *testing.T) {
	exec, high := gaugeExecutor(30 * time.Millisecond)
	_, _, srv := newTestWorker(t, "w0", 2, map[string]sweep.Executor{"gauge": exec})

	const burst = 8
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postExec(t, srv.URL, sweep.Job{Kind: "gauge", Seed: uint64(i + 1)})
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("exec %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	if got := high.Load(); got != 2 {
		t.Errorf("execution high-water mark = %d, want 2 (engine Workers bound)", got)
	}
}

// TestWorkerExecResult: a successful exec returns the full Result with
// provenance headers, and the result lands in the worker's local tier.
func TestWorkerExecResult(t *testing.T) {
	exec, _ := gaugeExecutor(0)
	w, eng, srv := newTestWorker(t, "w0", 2, map[string]sweep.Executor{"gauge": exec})

	job := sweep.Job{Kind: "gauge", Seed: 7}
	resp := postExec(t, srv.URL, job)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(headerWorker); got != "w0" {
		t.Errorf("%s = %q, want w0", headerWorker, got)
	}
	if got := resp.Header.Get(headerSource); got != "computed" {
		t.Errorf("%s = %q, want computed", headerSource, got)
	}
	var res sweep.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	want := job.Normalize().Hash()
	if res.Hash != want || res.Job.Hash() != want {
		t.Errorf("result hash %s, want %s", res.Hash, want)
	}
	if _, _, ok := eng.Lookup(want); !ok {
		t.Error("result not in worker-local tier after exec")
	}
	if w.InFlight() != 0 {
		t.Errorf("InFlight = %d after exec drained", w.InFlight())
	}

	// The results endpoint serves the same bytes back.
	rr, err := http.Get(srv.URL + pathResults + want)
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("GET result: status %d", rr.StatusCode)
	}
	var res2 sweep.Result
	if err := json.NewDecoder(rr.Body).Decode(&res2); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(res.CanonicalMetrics(), res2.CanonicalMetrics()) {
		t.Error("results endpoint returned different metrics bytes than exec")
	}
}

// TestWorkerExecErrors: malformed jobs are 400, executor failures 422
// (permanent — the coordinator must not retry them elsewhere).
func TestWorkerExecErrors(t *testing.T) {
	boom := func(j sweep.Job) (*core.Metrics, error) { return nil, fmt.Errorf("boom") }
	_, _, srv := newTestWorker(t, "w0", 1, map[string]sweep.Executor{"boom": boom})

	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", "{", http.StatusBadRequest},
		{"unknown field", `{"bogus_field": 1}`, http.StatusBadRequest},
		{"executor failure", `{"kind": "boom"}`, http.StatusUnprocessableEntity},
		{"unregistered kind", `{"kind": "no-such-kind"}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(srv.URL+pathExec, "application/json", bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatalf("POST: %v", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.want)
			}
			var eb execErrorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
				t.Errorf("error body missing: %v %+v", err, eb)
			}
		})
	}
}

// TestWorkerResultEndpointValidation: the results tier rejects
// malformed hashes and misses cleanly.
func TestWorkerResultEndpointValidation(t *testing.T) {
	_, _, srv := newTestWorker(t, "w0", 1, nil)

	resp, err := http.Get(srv.URL + pathResults + "not-a-hash")
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad hash: status %d, want 400", resp.StatusCode)
	}

	miss := sweep.Job{Seed: 99}.Normalize().Hash()
	resp, err = http.Get(srv.URL + pathResults + miss)
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("miss: status %d, want 404", resp.StatusCode)
	}
}

// TestWorkerHealth reports identity and capacity.
func TestWorkerHealth(t *testing.T) {
	_, _, srv := newTestWorker(t, "w-health", 3, nil)
	resp, err := http.Get(srv.URL + pathHealth)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h WorkerHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode health: %v", err)
	}
	if h.ID != "w-health" || h.Workers != 3 {
		t.Errorf("health = %+v, want ID w-health Workers 3", h)
	}
}

// TestNewWorkerValidation: constructor contract.
func TestNewWorkerValidation(t *testing.T) {
	eng := sweep.New(sweep.Options{Workers: 1})
	if _, err := NewWorker(WorkerOptions{Engine: eng}); err == nil {
		t.Error("missing ID accepted")
	}
	if _, err := NewWorker(WorkerOptions{ID: "w"}); err == nil {
		t.Error("missing engine accepted")
	}
	if _, err := NewWorker(WorkerOptions{ID: "w", Engine: eng, Coordinator: "http://c"}); err == nil {
		t.Error("joining worker without advertise accepted")
	}
}
