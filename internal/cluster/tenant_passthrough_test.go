package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// TestExecTenantPassthrough pins the cross-node tenant contract: the
// coordinator ships tenant provenance as the X-Ringsim-Tenant header
// (never in the job body, which must stay byte-identical across
// tenants), and the worker restores it onto the job before execution
// so its events and metering stay attributed.
func TestExecTenantPassthrough(t *testing.T) {
	seen := make(chan string, 1)
	exec := func(j sweep.Job) (*core.Metrics, error) {
		seen <- j.Tenant
		m := &core.Metrics{ExecTime: sim.Time(1000), BusyTime: sim.Time(500), DataRefs: 1}
		m.MissLatency.Observe(600)
		return m, nil
	}
	_, _, srv := newTestWorker(t, "w0", 1, map[string]sweep.Executor{"tag": exec})

	job := sweep.Job{Kind: "tag", Seed: 3, Tenant: "acme"}
	body, err := json.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	// The wire body must not mention the tenant.
	if bytes.Contains(body, []byte("acme")) {
		t.Fatalf("tenant leaked into the exec body: %s", body)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+pathExec, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(headerTenant, "acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exec status %d", resp.StatusCode)
	}
	if got := <-seen; got != "acme" {
		t.Errorf("executor saw tenant %q, want %q from the header", got, "acme")
	}

	// The result's wire form stays tenant-free too.
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("acme")) {
		t.Errorf("tenant leaked into the serialized result: %s", raw)
	}
}

// TestCoordinatorForwardsTenantHeader checks the dispatch side: a job
// submitted to Coordinator.Execute with a Tenant tag arrives at the
// worker with the header set.
func TestCoordinatorForwardsTenantHeader(t *testing.T) {
	seen := make(chan string, 1)
	exec := func(j sweep.Job) (*core.Metrics, error) {
		seen <- j.Tenant
		m := &core.Metrics{ExecTime: sim.Time(1000), BusyTime: sim.Time(500), DataRefs: 1}
		m.MissLatency.Observe(600)
		return m, nil
	}
	f := startFleet(t, 1, map[string]sweep.Executor{"tag": exec})

	if _, err := f.coord.Execute(sweep.Job{Kind: "tag", Seed: 9, Tenant: "acme"}); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if got := <-seen; got != "acme" {
		t.Errorf("worker executor saw tenant %q, want %q", got, "acme")
	}
}
