package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sweep"
)

// testFleet is an in-process cluster: a coordinator bound to its
// dispatch engine, plus workers joined over real HTTP.
type testFleet struct {
	coord    *Coordinator
	coordEng *sweep.Engine
	coordSrv *httptest.Server
	workers  []*fleetWorker
}

type fleetWorker struct {
	w   *Worker
	eng *sweep.Engine
	srv *httptest.Server
}

// startFleet boots a coordinator and n workers. Worker engines get the
// given extra executors (the default simulator stays available); the
// coordinator engine dispatches every one of those kinds remotely.
func startFleet(t *testing.T, n int, execs map[string]sweep.Executor) *testFleet {
	t.Helper()
	coord := NewCoordinator(CoordinatorOptions{
		HeartbeatTTL: 10 * time.Second,
		ExecTimeout:  30 * time.Second,
		MaxAttempts:  3,
		RetryBackoff: time.Millisecond,
	})
	coordSrv := httptest.NewServer(coord.Handler())
	t.Cleanup(coordSrv.Close)

	dispatch := map[string]sweep.Executor{"": coord.Execute}
	for kind := range execs {
		dispatch[kind] = coord.Execute
	}
	coordEng := sweep.New(sweep.Options{Workers: 8, Executors: dispatch})
	coord.BindEngine(coordEng)

	f := &testFleet{coord: coord, coordEng: coordEng, coordSrv: coordSrv}
	for i := 0; i < n; i++ {
		id := "w" + string(rune('A'+i))
		eng := sweep.New(sweep.Options{Workers: 2, Executors: execs})
		w, err := NewWorker(WorkerOptions{ID: id, Engine: eng})
		if err != nil {
			t.Fatalf("NewWorker %s: %v", id, err)
		}
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		f.join(t, id, srv.URL, eng.Workers())
		f.workers = append(f.workers, &fleetWorker{w: w, eng: eng, srv: srv})
	}
	return f
}

// join registers a worker through the coordinator's real HTTP join
// endpoint, as the membership loop would.
func (f *testFleet) join(t *testing.T, id, addr string, capacity int) {
	t.Helper()
	body, _ := json.Marshal(JoinRequest{ID: id, Addr: addr, Workers: capacity})
	resp, err := http.Post(f.coordSrv.URL+pathJoin, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("join %s: %v", id, err)
	}
	drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join %s: status %d", id, resp.StatusCode)
	}
}

// metric extracts one un-labelled series value from the coordinator's
// rendered metrics text.
func (f *testFleet) metric(t *testing.T, name string) int {
	t.Helper()
	var buf bytes.Buffer
	f.coord.WriteMetrics(&buf)
	for _, line := range strings.Split(buf.String(), "\n") {
		var v int
		if n, _ := fmt.Sscanf(line, name+" %d", &v); n == 1 {
			return v
		}
	}
	t.Fatalf("metric %s not rendered", name)
	return 0
}

// TestClusterByteIdenticalVsSingleNode: the replicated-result
// invariant. A sweep dispatched across a 2-worker fleet produces, for
// every job, the exact bytes a standalone engine produces — same
// hashes, same canonical metrics — and the fleet actually shares the
// work.
func TestClusterByteIdenticalVsSingleNode(t *testing.T) {
	f := startFleet(t, 2, nil)
	jobs := make([]sweep.Job, 8)
	for i := range jobs {
		jobs[i] = sweep.Job{CPUs: 8, DataRefsPerCPU: 300, Seed: uint64(i + 1)}
	}

	clusterRes, _, err := f.coordEng.RunEach(context.Background(), jobs)
	if err != nil {
		t.Fatalf("cluster RunEach: %v", err)
	}
	soloEng := sweep.New(sweep.Options{Workers: 2})
	soloRes, _, err := soloEng.RunEach(context.Background(), jobs)
	if err != nil {
		t.Fatalf("solo RunEach: %v", err)
	}
	for i := range jobs {
		if clusterRes[i].Hash != soloRes[i].Hash {
			t.Errorf("job %d: hash %s (cluster) != %s (solo)", i, clusterRes[i].Hash, soloRes[i].Hash)
		}
		if !bytes.Equal(clusterRes[i].CanonicalMetrics(), soloRes[i].CanonicalMetrics()) {
			t.Errorf("job %d: cluster artifact differs from single-node bytes", i)
		}
	}

	// Every job computed exactly once, somewhere in the fleet; nothing
	// ran on the coordinator's own engine.
	var computed int
	for _, fw := range f.workers {
		computed += fw.eng.Stats().Computed
	}
	if computed != len(jobs) {
		t.Errorf("fleet computed %d jobs, want %d", computed, len(jobs))
	}
	if got := f.coordEng.Stats().Computed; got != len(jobs) {
		t.Errorf("coordinator engine computed (= dispatched) %d, want %d", got, len(jobs))
	}
}

// TestClusterIdempotentDuplicateSubmission: a duplicate of an already
// completed job is a coordinator-side cache hit — the fleet never sees
// it twice.
func TestClusterIdempotentDuplicateSubmission(t *testing.T) {
	f := startFleet(t, 2, nil)
	job := sweep.Job{CPUs: 8, DataRefsPerCPU: 200, Seed: 42}

	first, src1, err := f.coordEng.RunOneCtx(context.Background(), job)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if src1 != sweep.SourceComputed {
		t.Fatalf("first source = %v, want computed", src1)
	}
	second, src2, err := f.coordEng.RunOneCtx(context.Background(), job)
	if err != nil {
		t.Fatalf("duplicate run: %v", err)
	}
	if src2 != sweep.SourceMemory {
		t.Errorf("duplicate source = %v, want memory hit", src2)
	}
	if !bytes.Equal(first.CanonicalMetrics(), second.CanonicalMetrics()) {
		t.Error("duplicate returned different bytes")
	}
	var computed int
	for _, fw := range f.workers {
		computed += fw.eng.Stats().Computed
	}
	if computed != 1 {
		t.Errorf("fleet computed %d times, want 1", computed)
	}
}

// TestClusterFailoverMidJob: kill the worker holding a job mid-flight.
// The coordinator must mark it down, steal the job onto the surviving
// worker, and return a correct result — no lost job, no duplicate
// artifact, steals counted.
func TestClusterFailoverMidJob(t *testing.T) {
	hold := func(j sweep.Job) (*core.Metrics, error) {
		time.Sleep(300 * time.Millisecond)
		return SynthExecutor(j)
	}
	f := startFleet(t, 2, map[string]sweep.Executor{"hold": hold})
	job := sweep.Job{Kind: "hold", CPUs: 1, DataRefsPerCPU: 1, Seed: 5}

	done := make(chan error, 1)
	var res *sweep.Result
	go func() {
		var err error
		res, _, err = f.coordEng.RunOneCtx(context.Background(), job)
		done <- err
	}()

	// Find the worker the job landed on, then kill its server while the
	// executor is still holding the job.
	var victim, survivor *fleetWorker
	deadline := time.Now().Add(5 * time.Second)
	for victim == nil {
		if time.Now().After(deadline) {
			t.Fatal("job never landed on a worker")
		}
		for i, fw := range f.workers {
			if fw.w.InFlight() > 0 {
				victim, survivor = fw, f.workers[1-i]
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	victim.srv.CloseClientConnections()
	victim.srv.Close()

	if err := <-done; err != nil {
		t.Fatalf("job lost after worker kill: %v", err)
	}
	want := job.Normalize().Hash()
	if res.Hash != want {
		t.Errorf("stolen result hash %s, want %s", res.Hash, want)
	}
	// The steal landed on the survivor and produced the canonical bytes.
	if got := survivor.eng.Stats().Computed; got != 1 {
		t.Errorf("survivor computed %d, want 1", got)
	}
	if steals := f.metric(t, "ringsim_cluster_steals_total"); steals < 1 {
		t.Errorf("steals = %d, want >= 1", steals)
	}
	if fails := f.metric(t, "ringsim_cluster_exec_failures_total"); fails < 1 {
		t.Errorf("exec failures = %d, want >= 1", fails)
	}
	// The killed worker is marked down and out of dispatch rotation.
	for _, m := range f.coord.Workers() {
		if m.ID == victim.w.ID() && m.Live {
			t.Errorf("victim %s still live after failed dispatch", m.ID)
		}
	}
}

// TestClusterPeerFetchChain: a result computed on one worker is
// reachable from every tier — coordinator relay, then another worker's
// public miss path — each hop verifying the hash and adopting a local
// copy.
func TestClusterPeerFetchChain(t *testing.T) {
	f := startFleet(t, 2, nil)
	wA, wB := f.workers[0], f.workers[1]

	// Compute directly on worker A, bypassing the coordinator, so no
	// other tier holds the result yet.
	job := sweep.Job{CPUs: 8, DataRefsPerCPU: 200, Seed: 77}
	body, _ := json.Marshal(job)
	resp, err := http.Post(wA.srv.URL+pathExec, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exec on A: %v", err)
	}
	drainClose(resp)
	hash := job.Normalize().Hash()

	// Tier 2: the coordinator's fallback sweeps the fleet, verifies,
	// and adopts.
	res, src, ok := f.coord.LookupFallback(context.Background(), hash)
	if !ok || src != sweep.SourcePeer {
		t.Fatalf("coordinator peer fetch: ok=%v src=%v", ok, src)
	}
	if _, _, ok := f.coordEng.Lookup(hash); !ok {
		t.Error("coordinator did not adopt the peer-fetched result")
	}

	// Tier 3: worker B misses locally and pulls through the
	// coordinator's relay.
	wb, err := NewWorker(WorkerOptions{ID: wB.w.ID(), Engine: wB.eng, Coordinator: f.coordSrv.URL, Advertise: wB.srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	resB, srcB, okB := wb.LookupFallback(context.Background(), hash)
	if !okB || srcB != sweep.SourcePeer {
		t.Fatalf("worker B peer fetch: ok=%v src=%v", okB, srcB)
	}
	if _, _, ok := wB.eng.Lookup(hash); !ok {
		t.Error("worker B did not adopt the peer-fetched result")
	}
	if !bytes.Equal(res.CanonicalMetrics(), resB.CanonicalMetrics()) {
		t.Error("peer copies diverge")
	}
	if peer := f.metric(t, "ringsim_cluster_peer_fetches_total"); peer < 1 {
		t.Errorf("peer fetches = %d, want >= 1", peer)
	}

	// Integrity gate: a fabricated hash never fetches.
	bogus := strings.Repeat("ab", 32)
	if _, _, ok := f.coord.LookupFallback(context.Background(), bogus); ok {
		t.Error("fallback produced a result for a hash nothing computed")
	}
}

// TestClusterNoWorkersIsUnavailable: an empty fleet answers with the
// substrate sentinel so the serving layer maps it to 503, not 400.
func TestClusterNoWorkersIsUnavailable(t *testing.T) {
	f := startFleet(t, 0, nil)
	_, _, err := f.coordEng.RunOneCtx(context.Background(), sweep.Job{Seed: 1})
	if err == nil {
		t.Fatal("dispatch with no workers succeeded")
	}
	if !errors.Is(err, sweep.ErrUnavailable) {
		t.Errorf("error %v does not wrap sweep.ErrUnavailable", err)
	}
	if n := f.metric(t, "ringsim_cluster_no_worker_errors_total"); n < 1 {
		t.Errorf("no-worker errors = %d, want >= 1", n)
	}
}

// TestClusterPermanentJobErrorDoesNotRetry: a 422 from a worker is the
// job's fault; the coordinator must fail it immediately rather than
// burning attempts on healthy workers.
func TestClusterPermanentJobErrorDoesNotRetry(t *testing.T) {
	boom := func(j sweep.Job) (*core.Metrics, error) { return nil, errors.New("boom") }
	f := startFleet(t, 2, map[string]sweep.Executor{"boom": boom})

	_, _, err := f.coordEng.RunOneCtx(context.Background(), sweep.Job{Kind: "boom", Seed: 1})
	if err == nil {
		t.Fatal("job with failing executor succeeded")
	}
	if errors.Is(err, sweep.ErrUnavailable) {
		t.Errorf("permanent job error %v wrongly marked unavailable", err)
	}
	if steals := f.metric(t, "ringsim_cluster_steals_total"); steals != 0 {
		t.Errorf("steals = %d after permanent error, want 0", steals)
	}
	for _, m := range f.coord.Workers() {
		if !m.Live {
			t.Errorf("worker %s marked down by a job error", m.ID)
		}
	}
}
