package cluster

import (
	"fmt"
	"io"
)

// WriteMetrics renders the cluster plane's Prometheus series, following
// the ringsim_<subsystem>_<name>_<unit> naming contract. It satisfies
// serve.Options.ExtraMetrics, so the coordinator's /metrics page
// carries the fleet view next to the engine and serving series.
//
// Accounting invariant: every dispatch decision appears exactly once in
// ringsim_cluster_dispatches_total (outcome home|forward|steal), every
// failed attempt in ringsim_cluster_exec_failures_total, and every
// submission the fleet could not take in
// ringsim_cluster_no_worker_errors_total — so forwards and steals are
// fully accounted for across a run.
func (c *Coordinator) WriteMetrics(w io.Writer) {
	c.mu.Lock()
	home, forwards, steals := c.homeDispatches, c.forwards, c.steals
	failures, noWorker, peer := c.execFailures, c.noWorker, c.peerFetches
	done := make(map[string]uint64, len(c.perWorkerDone))
	for k, v := range c.perWorkerDone {
		done[k] = v
	}
	c.mu.Unlock()

	members := c.reg.status()
	var live, downN int
	for _, m := range members {
		if m.Live {
			live++
		} else {
			downN++
		}
	}

	fmt.Fprintln(w, "# HELP ringsim_cluster_workers Registered workers by liveness state.")
	fmt.Fprintln(w, "# TYPE ringsim_cluster_workers gauge")
	fmt.Fprintf(w, "ringsim_cluster_workers{state=\"live\"} %d\n", live)
	fmt.Fprintf(w, "ringsim_cluster_workers{state=\"down\"} %d\n", downN)

	fmt.Fprintln(w, "# HELP ringsim_cluster_dispatches_total Job dispatches by outcome: home (consistent-hash owner), forward (overflow to a less-loaded worker), steal (re-dispatch after a worker loss or timeout).")
	fmt.Fprintln(w, "# TYPE ringsim_cluster_dispatches_total counter")
	fmt.Fprintf(w, "ringsim_cluster_dispatches_total{outcome=\"home\"} %d\n", home)
	fmt.Fprintf(w, "ringsim_cluster_dispatches_total{outcome=\"forward\"} %d\n", forwards)
	fmt.Fprintf(w, "ringsim_cluster_dispatches_total{outcome=\"steal\"} %d\n", steals)
	fmt.Fprintln(w, "# HELP ringsim_cluster_forwards_total Jobs placed on a non-home worker because the home was saturated.")
	fmt.Fprintln(w, "# TYPE ringsim_cluster_forwards_total counter")
	fmt.Fprintf(w, "ringsim_cluster_forwards_total %d\n", forwards)
	fmt.Fprintln(w, "# HELP ringsim_cluster_steals_total Jobs re-dispatched to another worker after a worker loss or timeout.")
	fmt.Fprintln(w, "# TYPE ringsim_cluster_steals_total counter")
	fmt.Fprintf(w, "ringsim_cluster_steals_total %d\n", steals)
	fmt.Fprintln(w, "# HELP ringsim_cluster_exec_failures_total Dispatch attempts that failed with worker trouble (each is followed by a steal or a terminal error).")
	fmt.Fprintln(w, "# TYPE ringsim_cluster_exec_failures_total counter")
	fmt.Fprintf(w, "ringsim_cluster_exec_failures_total %d\n", failures)
	fmt.Fprintln(w, "# HELP ringsim_cluster_no_worker_errors_total Submissions rejected because no live worker could take them.")
	fmt.Fprintln(w, "# TYPE ringsim_cluster_no_worker_errors_total counter")
	fmt.Fprintf(w, "ringsim_cluster_no_worker_errors_total %d\n", noWorker)
	fmt.Fprintln(w, "# HELP ringsim_cluster_peer_fetches_total Results fetched from a peer's cache tier and adopted locally.")
	fmt.Fprintln(w, "# TYPE ringsim_cluster_peer_fetches_total counter")
	fmt.Fprintf(w, "ringsim_cluster_peer_fetches_total %d\n", peer)

	if len(members) == 0 {
		return
	}
	fmt.Fprintln(w, "# HELP ringsim_cluster_worker_inflight Coordinator-side dispatches currently outstanding per worker.")
	fmt.Fprintln(w, "# TYPE ringsim_cluster_worker_inflight gauge")
	for _, m := range members {
		fmt.Fprintf(w, "ringsim_cluster_worker_inflight{worker=%q} %d\n", m.ID, m.Outstanding)
	}
	fmt.Fprintln(w, "# HELP ringsim_cluster_heartbeat_age_seconds Seconds since each worker's last heartbeat or join.")
	fmt.Fprintln(w, "# TYPE ringsim_cluster_heartbeat_age_seconds gauge")
	for _, m := range members {
		fmt.Fprintf(w, "ringsim_cluster_heartbeat_age_seconds{worker=%q} %g\n", m.ID, m.HeartbeatAge.Seconds())
	}
	fmt.Fprintln(w, "# HELP ringsim_cluster_worker_done_total Dispatches each worker completed for this coordinator.")
	fmt.Fprintln(w, "# TYPE ringsim_cluster_worker_done_total counter")
	for _, m := range members {
		fmt.Fprintf(w, "ringsim_cluster_worker_done_total{worker=%q} %d\n", m.ID, done[m.ID])
	}
	fmt.Fprintln(w, "# HELP ringsim_cluster_worker_spans_total Coherence-transaction spans each worker's engine observed (from heartbeats) — worker identity over the obs aggregates.")
	fmt.Fprintln(w, "# TYPE ringsim_cluster_worker_spans_total counter")
	for _, m := range members {
		fmt.Fprintf(w, "ringsim_cluster_worker_spans_total{worker=%q} %d\n", m.ID, m.Spans)
	}
}
