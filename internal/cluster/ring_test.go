package cluster

import (
	"fmt"
	"testing"
)

// testKeys fabricates n distinct well-formed job-hash-like keys.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i+1)
	}
	return keys
}

func placeAll(r *HashRing, keys []string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		m, ok := r.Owner(k)
		if !ok {
			continue
		}
		out[k] = m
	}
	return out
}

// TestRingPlacement drives the core placement properties as a table
// over member sets.
func TestRingPlacement(t *testing.T) {
	keys := testKeys(10000)
	cases := []struct {
		name    string
		members []string
		// maxImbalance bounds each member's share relative to fair
		// share (1.0 = perfectly even).
		maxImbalance float64
	}{
		{"single", []string{"w0"}, 1.0},
		{"pair", []string{"w0", "w1"}, 1.35},
		{"quad", []string{"w0", "w1", "w2", "w3"}, 1.35},
		{"eight", []string{"w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"}, 1.45},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewHashRing(0)
			for _, m := range tc.members {
				r.Add(m)
			}
			counts := make(map[string]int)
			for _, k := range keys {
				m, ok := r.Owner(k)
				if !ok {
					t.Fatalf("no owner for %s", k)
				}
				counts[m]++
			}
			if len(counts) != len(tc.members) {
				t.Fatalf("only %d of %d members own keys: %v", len(counts), len(tc.members), counts)
			}
			fair := float64(len(keys)) / float64(len(tc.members))
			for m, n := range counts {
				if ratio := float64(n) / fair; ratio > tc.maxImbalance {
					t.Errorf("member %s holds %.2fx fair share (%d keys, tolerance %.2fx)", m, ratio, n, tc.maxImbalance)
				}
			}
		})
	}
}

// TestRingDeterministicPlacement: placement is a pure function of the
// member set — insertion order and prior membership churn are
// invisible.
func TestRingDeterministicPlacement(t *testing.T) {
	keys := testKeys(2000)
	a := NewHashRing(0)
	for _, m := range []string{"w0", "w1", "w2", "w3"} {
		a.Add(m)
	}
	b := NewHashRing(0)
	for _, m := range []string{"w3", "w1", "w0", "w2"} {
		b.Add(m)
	}
	// c reaches the same member set through churn.
	c := NewHashRing(0)
	for _, m := range []string{"w9", "w0", "w1", "w8", "w2", "w3"} {
		c.Add(m)
	}
	c.Remove("w9")
	c.Remove("w8")

	pa, pb, pc := placeAll(a, keys), placeAll(b, keys), placeAll(c, keys)
	for _, k := range keys {
		if pa[k] != pb[k] || pa[k] != pc[k] {
			t.Fatalf("placement of %s order-dependent: %s / %s / %s", k[:12], pa[k], pb[k], pc[k])
		}
	}
}

// TestRingJoinMovesBoundedKeys: adding a member moves only (about) its
// fair share of keys, every moved key moves TO the new member, and
// removing it again restores the original placement exactly.
func TestRingJoinMovesBoundedKeys(t *testing.T) {
	keys := testKeys(10000)
	r := NewHashRing(0)
	for _, m := range []string{"w0", "w1", "w2"} {
		r.Add(m)
	}
	before := placeAll(r, keys)

	r.Add("w3")
	after := placeAll(r, keys)
	moved := 0
	for _, k := range keys {
		if before[k] != after[k] {
			moved++
			if after[k] != "w3" {
				t.Fatalf("key %s moved %s -> %s, not to the joining member", k[:12], before[k], after[k])
			}
		}
	}
	// Fair share is 1/4; allow slack for virtual-node variance but
	// fail on anything resembling a full reshuffle.
	if frac := float64(moved) / float64(len(keys)); frac < 0.10 || frac > 0.40 {
		t.Errorf("join moved %.1f%% of keys, want ~25%%", 100*frac)
	}

	r.Remove("w3")
	restored := placeAll(r, keys)
	for _, k := range keys {
		if before[k] != restored[k] {
			t.Fatalf("leave did not restore placement of %s: %s -> %s", k[:12], before[k], restored[k])
		}
	}
}

// TestRingSequence: the failover order starts at the home, covers all
// distinct members, and drops a removed member without disturbing the
// relative order of the rest.
func TestRingSequence(t *testing.T) {
	r := NewHashRing(0)
	members := []string{"w0", "w1", "w2", "w3"}
	for _, m := range members {
		r.Add(m)
	}
	for _, k := range testKeys(100) {
		seq := r.Sequence(k, 0)
		if len(seq) != len(members) {
			t.Fatalf("sequence for %s has %d members, want %d", k[:12], len(seq), len(members))
		}
		owner, _ := r.Owner(k)
		if seq[0] != owner {
			t.Fatalf("sequence head %s != owner %s", seq[0], owner)
		}
		seen := make(map[string]bool)
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("duplicate member %s in sequence", m)
			}
			seen[m] = true
		}
		if n2 := r.Sequence(k, 2); len(n2) != 2 || n2[0] != seq[0] || n2[1] != seq[1] {
			t.Fatalf("Sequence(k, 2) = %v, want prefix of %v", n2, seq)
		}
	}
	// The successor a key fails over to must keep its position when an
	// unrelated member leaves.
	k := testKeys(1)[0]
	full := r.Sequence(k, 0)
	r.Remove(full[3])
	trimmed := r.Sequence(k, 0)
	if len(trimmed) != 3 || trimmed[0] != full[0] || trimmed[1] != full[1] || trimmed[2] != full[2] {
		t.Fatalf("removing %s disturbed sequence: %v -> %v", full[3], full, trimmed)
	}
}

// TestRingEmptyAndSingle covers the degenerate shapes.
func TestRingEmptyAndSingle(t *testing.T) {
	r := NewHashRing(0)
	if _, ok := r.Owner("00"); ok {
		t.Error("empty ring claims an owner")
	}
	if seq := r.Sequence("00", 0); seq != nil {
		t.Errorf("empty ring sequence = %v", seq)
	}
	r.Add("only")
	r.Add("only") // idempotent
	if m, ok := r.Owner("anything"); !ok || m != "only" {
		t.Errorf("single-member ring placed on %q, %v", m, ok)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d after duplicate Add", r.Len())
	}
	r.Remove("absent") // no-op
	r.Remove("only")
	if r.Len() != 0 {
		t.Errorf("Len = %d after Remove", r.Len())
	}
}
