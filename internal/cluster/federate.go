package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	olog "repro/internal/obs/slog"
	"repro/internal/stats"
)

// scrapeTimeout bounds one worker scrape so a wedged worker cannot
// stall the coordinator's federated metrics page.
const scrapeTimeout = 3 * time.Second

// scrapeLimit caps one worker's exposition body (a worker is trusted,
// but a page that federates N workers should not be unbounded in any
// single one).
const scrapeLimit = 8 << 20

// FederateMetrics backs the coordinator's GET /v1/cluster/metrics: one
// exposition page carrying (1) the coordinator's own series, (2) every
// live worker's /metrics page with a worker="<id>" label injected into
// each sample, HELP/TYPE headers deduplicated across the fleet, and
// (3) fleet-merged coherence-span latency histograms folded from each
// worker's /internal/v1/obsagg snapshots via ExpHistogram.Merge — the
// cross-worker percentile view no single node can render. It satisfies
// serve.Options.FederateMetrics; self renders the local node's page.
//
// Federation is best-effort by design: an unreachable worker
// contributes nothing (and a warning log) rather than failing the
// page, because the metrics endpoint is exactly what an operator
// reaches for when part of the fleet is down.
func (c *Coordinator) FederateMetrics(ctx context.Context, self func(io.Writer), w io.Writer) {
	// Render the local page first and remember its families so worker
	// pages don't repeat HELP/TYPE headers for shared series.
	var buf bytes.Buffer
	self(&buf)
	declared := declaredFamilies(buf.Bytes())
	w.Write(buf.Bytes())

	for _, m := range c.reg.status() {
		if !m.Live {
			continue
		}
		body, err := c.scrape(ctx, m.Addr+"/metrics")
		if err != nil {
			c.log.Warn("metrics scrape failed", olog.KeyWorker, m.ID, olog.KeyError, err.Error())
			continue
		}
		writeRelabeled(w, body, m.ID, declared)
	}
	c.writeFleetHistograms(ctx, w)
}

// scrape GETs one URL under the scrape timeout and size cap.
func (c *Coordinator) scrape(ctx context.Context, url string) ([]byte, error) {
	sctx, cancel := context.WithTimeout(ctx, scrapeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, "GET", url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, scrapeLimit))
}

// declaredFamilies collects the metric families an exposition body
// already carries HELP/TYPE headers for.
func declaredFamilies(body []byte) map[string]bool {
	out := make(map[string]bool)
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			if f := strings.Fields(line); len(f) >= 3 {
				out[f[2]] = true
			}
		}
	}
	return out
}

// writeRelabeled copies one worker's exposition onto w, injecting
// worker="<id>" into every sample line and emitting each family's
// HELP/TYPE headers only the first time any node declares them.
func writeRelabeled(w io.Writer, body []byte, workerID string, declared map[string]bool) {
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) < 3 {
				continue
			}
			if strings.HasPrefix(line, "# HELP ") {
				if declared[f[2]] {
					continue
				}
				declared[f[2]] = true
			} else if declared[f[2]] {
				// TYPE of an already-declared family: the first
				// declaration covered it.
				continue
			}
			fmt.Fprintln(w, line)
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fmt.Fprintln(w, relabelSample(line, workerID))
	}
}

// relabelSample injects worker="<id>" as the first label of one
// exposition sample line. Lines that don't look like samples pass
// through unchanged.
func relabelSample(line, workerID string) string {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return line
	}
	if line[i] == '{' {
		if strings.HasPrefix(line[i:], "{}") {
			return line[:i] + fmt.Sprintf("{worker=%q}", workerID) + line[i+2:]
		}
		return line[:i+1] + fmt.Sprintf("worker=%q,", workerID) + line[i+1:]
	}
	return line[:i] + fmt.Sprintf("{worker=%q}", workerID) + line[i:]
}

// writeFleetHistograms scrapes each live worker's obsagg snapshots and
// emits the fleet-merged per-class span aggregates. A snapshot that
// fails validation or has a different bucket shape is skipped (and
// logged), never merged blindly.
func (c *Coordinator) writeFleetHistograms(ctx context.Context, w io.Writer) {
	type classState struct {
		spans uint64
		hist  *stats.ExpHistogram
	}
	merged := make(map[string]*classState)
	for _, m := range c.reg.status() {
		if !m.Live {
			continue
		}
		body, err := c.scrape(ctx, m.Addr+pathObsAgg)
		if err != nil {
			c.log.Warn("obsagg scrape failed", olog.KeyWorker, m.ID, olog.KeyError, err.Error())
			continue
		}
		var aggs []ClassAggSnapshot
		if err := json.Unmarshal(body, &aggs); err != nil {
			c.log.Warn("obsagg decode failed", olog.KeyWorker, m.ID, olog.KeyError, err.Error())
			continue
		}
		for _, a := range aggs {
			h, err := stats.FromSnapshot(a.Latency)
			if err != nil {
				c.log.Warn("obsagg snapshot invalid", olog.KeyWorker, m.ID, "class", a.Class, olog.KeyError, err.Error())
				continue
			}
			st := merged[a.Class]
			if st == nil {
				merged[a.Class] = &classState{spans: a.Spans, hist: h}
				continue
			}
			if err := st.hist.Merge(h); err != nil {
				c.log.Warn("obsagg merge failed", olog.KeyWorker, m.ID, "class", a.Class, olog.KeyError, err.Error())
				continue
			}
			st.spans += a.Spans
		}
	}
	if len(merged) == 0 {
		return
	}
	classes := make([]string, 0, len(merged))
	for cl := range merged {
		classes = append(classes, cl)
	}
	sort.Strings(classes)

	fmt.Fprintln(w, "# HELP ringsim_fleet_spans_total Coherence-transaction spans observed across every live worker's engine, merged by the coordinator.")
	fmt.Fprintln(w, "# TYPE ringsim_fleet_spans_total counter")
	for _, cl := range classes {
		fmt.Fprintf(w, "ringsim_fleet_spans_total{class=%q} %d\n", cl, merged[cl].spans)
	}
	fmt.Fprintln(w, "# HELP ringsim_fleet_span_latency_ns Fleet-merged coherence-span latency by transaction class (simulated nanoseconds), folded from worker obsagg snapshots via histogram merge.")
	fmt.Fprintln(w, "# TYPE ringsim_fleet_span_latency_ns histogram")
	for _, cl := range classes {
		h := merged[cl].hist
		bounds, counts := h.Buckets()
		var cum uint64
		for i, b := range bounds {
			cum += counts[i]
			fmt.Fprintf(w, "ringsim_fleet_span_latency_ns_bucket{class=%q,le=\"%g\"} %d\n", cl, b, cum)
		}
		cum += counts[len(counts)-1]
		fmt.Fprintf(w, "ringsim_fleet_span_latency_ns_bucket{class=%q,le=\"+Inf\"} %d\n", cl, cum)
		fmt.Fprintf(w, "ringsim_fleet_span_latency_ns_sum{class=%q} %g\n", cl, h.Sum())
		fmt.Fprintf(w, "ringsim_fleet_span_latency_ns_count{class=%q} %d\n", cl, h.N())
	}
}
