package cluster

import (
	"sort"
	"sync"
	"time"

	"repro/internal/sweep"
)

// memberState is a worker's liveness as the coordinator sees it.
type memberState int

const (
	// stateLive: joined, heartbeating within TTL, dispatchable.
	stateLive memberState = iota
	// stateDown: joined but unreachable (missed TTL or a dispatch
	// failed). Down members keep their ring position — a blip must not
	// reshuffle placement — but receive no work until they re-join or
	// heartbeat again.
	stateDown
)

// member is one registered worker.
type member struct {
	ID       string
	Addr     string
	Capacity int

	// Mutated under registry.mu.
	lastBeat    time.Time
	down        bool
	outstanding int // coordinator-side dispatches currently on this worker
	reported    sweep.Stats
	reportedInF int
}

// MemberStatus is an exported snapshot of one worker for health and
// metrics rendering.
type MemberStatus struct {
	ID           string        `json:"id"`
	Addr         string        `json:"addr"`
	Capacity     int           `json:"capacity"`
	Live         bool          `json:"live"`
	Outstanding  int           `json:"outstanding"`
	HeartbeatAge time.Duration `json:"heartbeat_age_ns"`
	Done         int           `json:"done"`
	Computed     int           `json:"computed"`
	Spans        uint64        `json:"spans"`
}

// registry tracks the worker fleet: membership, liveness, load, and
// the consistent-hash ring that places job hashes onto it.
type registry struct {
	ttl time.Duration

	mu      sync.Mutex
	members map[string]*member
	ring    *HashRing
	now     func() time.Time // test hook
}

func newRegistry(ttl time.Duration, vnodes int) *registry {
	return &registry{
		ttl:     ttl,
		members: make(map[string]*member),
		ring:    NewHashRing(vnodes),
		now:     time.Now,
	}
}

// join registers a worker (idempotently) and marks it live.
func (g *registry) join(req JoinRequest) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m, ok := g.members[req.ID]
	if !ok {
		m = &member{ID: req.ID}
		g.members[req.ID] = m
		g.ring.Add(req.ID)
	}
	m.Addr = req.Addr
	m.Capacity = req.Workers
	if m.Capacity <= 0 {
		m.Capacity = 1
	}
	m.lastBeat = g.now()
	m.down = false
}

// leave removes a worker from the ring entirely (graceful drain).
func (g *registry) leave(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.members[id]; !ok {
		return
	}
	delete(g.members, id)
	g.ring.Remove(id)
}

// beat records a heartbeat; false means the worker is unknown and must
// re-join (e.g. the coordinator restarted).
func (g *registry) beat(req HeartbeatRequest) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	m, ok := g.members[req.ID]
	if !ok {
		return false
	}
	m.lastBeat = g.now()
	m.down = false
	m.reported = req.Stats
	m.reportedInF = req.InFlight
	return true
}

// markDown flags a worker after a failed dispatch so subsequent picks
// skip it until it heartbeats or re-joins.
func (g *registry) markDown(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if m, ok := g.members[id]; ok {
		m.down = true
	}
}

// alive reports liveness under the lock: not down and within TTL.
func (g *registry) aliveLocked(m *member) bool {
	return !m.down && g.now().Sub(m.lastBeat) <= g.ttl
}

// placement is one dispatch decision.
type placement struct {
	id       string
	addr     string
	homeless bool // true when the chosen worker is not the key's home
}

// pick chooses the worker for a job hash, excluding IDs already tried
// this dispatch. The key's home (first live owner in ring order) wins
// unless it is saturated (outstanding >= capacity) while another live
// candidate has free slots — then the least-loaded such candidate
// takes the job (a forward). When every candidate is saturated the
// home keeps it and the job queues on the worker's engine semaphore.
// The chosen worker's outstanding gauge is incremented; callers must
// release() it when the dispatch resolves. Returns false when no live
// untried worker exists.
func (g *registry) pick(hash string, tried map[string]bool) (placement, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	seq := g.ring.Sequence(hash, 0)
	var home *member
	var candidates []*member
	for _, id := range seq {
		m, ok := g.members[id]
		if !ok || tried[id] || !g.aliveLocked(m) {
			continue
		}
		if home == nil {
			home = m
		}
		candidates = append(candidates, m)
	}
	if home == nil {
		return placement{}, false
	}
	chosen := home
	if home.outstanding >= home.Capacity {
		best := home
		for _, m := range candidates[1:] {
			if m.outstanding >= m.Capacity {
				continue
			}
			if best == home || m.outstanding < best.outstanding {
				best = m
			}
		}
		chosen = best
	}
	chosen.outstanding++
	return placement{id: chosen.ID, addr: chosen.Addr, homeless: chosen != home}, true
}

// release returns a dispatch slot taken by pick.
func (g *registry) release(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if m, ok := g.members[id]; ok && m.outstanding > 0 {
		m.outstanding--
	}
}

// liveAddrs returns the internal-API base URLs of live workers, the
// key's owners first when a hash is given (peer fetch asks the nodes
// most likely to hold the result before sweeping the rest).
func (g *registry) liveAddrs(hash string) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	var order []string
	if hash != "" {
		order = g.ring.Sequence(hash, 0)
	} else {
		order = g.ring.Members()
	}
	out := make([]string, 0, len(order))
	for _, id := range order {
		if m, ok := g.members[id]; ok && g.aliveLocked(m) {
			out = append(out, m.Addr)
		}
	}
	return out
}

// status snapshots every member for health/metrics rendering, sorted
// by ID for deterministic output.
func (g *registry) status() []MemberStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]MemberStatus, 0, len(g.members))
	for _, m := range g.members {
		out = append(out, MemberStatus{
			ID:           m.ID,
			Addr:         m.Addr,
			Capacity:     m.Capacity,
			Live:         g.aliveLocked(m),
			Outstanding:  m.outstanding,
			HeartbeatAge: g.now().Sub(m.lastBeat),
			Done:         m.reported.Done,
			Computed:     m.reported.Computed,
			Spans:        m.reported.SpansObserved,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
