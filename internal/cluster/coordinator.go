package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs/reqtrace"
	olog "repro/internal/obs/slog"
	"repro/internal/sweep"
)

// CoordinatorOptions configures a Coordinator.
type CoordinatorOptions struct {
	// HeartbeatTTL is how stale a worker's heartbeat may grow before
	// the worker is considered down (default 5s).
	HeartbeatTTL time.Duration
	// ExecTimeout bounds one remote job execution (default 10m). It is
	// deliberately independent of request deadlines: an admitted job
	// keeps computing on its worker even after the submitting client's
	// deadline fires, preserving the serving layer's work-conservation
	// contract across the network hop.
	ExecTimeout time.Duration
	// MaxAttempts bounds dispatch attempts per job across distinct
	// workers (default 3). Attempt 1 is the placed dispatch; further
	// attempts are steals by the next live owner.
	MaxAttempts int
	// RetryBackoff is the base delay between attempts, doubled each
	// retry (default 100ms).
	RetryBackoff time.Duration
	// VirtualNodes is the consistent-hash ring's per-worker point
	// count (default DefaultVirtualNodes).
	VirtualNodes int
	// Client is the HTTP client for worker calls. Its timeout is
	// ignored for exec (ExecTimeout governs); default has no timeout.
	Client *http.Client
	// Tracer, when set, records a dispatch span per attempt under the
	// requesting span carried in Job.TraceParent, and adopts the
	// worker-side spans returned over the exec response header — so one
	// GET /v1/requests/{id}/trace on the coordinator shows the whole
	// cross-process tree. nil disables span recording.
	Tracer *reqtrace.Tracer
	// Logger receives structured membership and dispatch-failure events
	// (join, leave, mark-down, steals). nil discards them.
	Logger *olog.Logger
}

// Coordinator is the fleet's control plane: worker registry, job
// dispatcher, and result relay. It plugs into the existing stack at
// two seams — Execute is a sweep.Executor, so the engine's
// singleflight, caching, stats, and progress events all apply to
// remote jobs unchanged; LookupFallback extends the serving layer's
// GET-by-hash miss path across the fleet. Construct with
// NewCoordinator, then BindEngine the engine whose executor it is.
type Coordinator struct {
	opts   CoordinatorOptions
	client *http.Client
	reg    *registry
	mux    *http.ServeMux
	rt     *reqtrace.Tracer
	log    *olog.Logger

	engMu sync.RWMutex
	eng   *sweep.Engine

	mu sync.Mutex
	// Dispatch accounting. homeDispatches + forwards + steals counts
	// every exec POST that reached a worker and returned a result;
	// execFailures counts attempts that failed (each is followed by a
	// steal, a no-worker error, or attempt exhaustion), so the metrics
	// account for every dispatch decision the coordinator ever made.
	homeDispatches uint64
	forwards       uint64
	steals         uint64
	execFailures   uint64
	noWorker       uint64
	peerFetches    uint64
	perWorkerDone  map[string]uint64
}

// NewCoordinator returns a Coordinator with an empty fleet.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	if opts.HeartbeatTTL <= 0 {
		opts.HeartbeatTTL = 5 * time.Second
	}
	if opts.ExecTimeout <= 0 {
		opts.ExecTimeout = 10 * time.Minute
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 100 * time.Millisecond
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	log := opts.Logger
	if log == nil {
		log = olog.Nop()
	}
	c := &Coordinator{
		opts:          opts,
		client:        client,
		reg:           newRegistry(opts.HeartbeatTTL, opts.VirtualNodes),
		mux:           http.NewServeMux(),
		rt:            opts.Tracer,
		log:           log,
		perWorkerDone: make(map[string]uint64),
	}
	c.mux.HandleFunc("POST "+pathJoin, c.handleJoin)
	c.mux.HandleFunc("POST "+pathHeartbeat, c.handleHeartbeat)
	c.mux.HandleFunc("POST "+pathLeave, c.handleLeave)
	c.mux.HandleFunc("GET "+pathResults+"{hash}", c.handleResult)
	return c
}

// BindEngine attaches the engine the coordinator adopts peer-fetched
// results into. The engine must name c.Execute as its executor.
func (c *Coordinator) BindEngine(e *sweep.Engine) {
	c.engMu.Lock()
	c.eng = e
	c.engMu.Unlock()
}

func (c *Coordinator) engine() *sweep.Engine {
	c.engMu.RLock()
	defer c.engMu.RUnlock()
	return c.eng
}

// Handler returns the coordinator's internal-API handler
// (join, heartbeat, leave, results relay).
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Workers snapshots the fleet.
func (c *Coordinator) Workers() []MemberStatus { return c.reg.status() }

// Execute is the dispatcher: it places the job's content hash on the
// consistent-hash ring, forwards the job to the chosen worker, and
// returns the worker's metrics. A worker loss or timeout marks the
// worker down and the next live owner steals the job, with exponential
// backoff between attempts; a permanent job error (the worker answered
// 422) fails immediately. It satisfies sweep.Executor, so it runs
// under the coordinator engine's singleflight — concurrent identical
// submissions dispatch once.
func (c *Coordinator) Execute(job sweep.Job) (*core.Metrics, error) {
	job = job.Normalize()
	hash := job.Hash()
	// The requesting span rides the job's hash-exempt TraceParent tag;
	// when the submission was untraced (or this job was coalesced under
	// another submission's singleflight) the context is invalid and
	// dispatch spans are simply not recorded.
	parent, _ := reqtrace.ParseContext(job.TraceParent)
	body, err := json.Marshal(job)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode job: %v", err)
	}
	tried := make(map[string]bool)
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(c.opts.RetryBackoff << (attempt - 1))
		}
		pl, ok := c.reg.pick(hash, tried)
		if !ok {
			c.count(func() { c.noWorker++ })
			if lastErr != nil {
				return nil, fmt.Errorf("cluster: job %s lost its worker and no live worker remains to steal it: %v: %w", hash[:12], lastErr, sweep.ErrUnavailable)
			}
			return nil, fmt.Errorf("cluster: no live workers: %w", sweep.ErrUnavailable)
		}
		tried[pl.id] = true
		outcome := "home"
		switch {
		case attempt > 0:
			outcome = "steal"
		case pl.homeless:
			outcome = "forward"
		}
		c.count(func() {
			switch outcome {
			case "steal":
				c.steals++
			case "forward":
				c.forwards++
			default:
				c.homeDispatches++
			}
		})
		sp := c.rt.Start(parent, "dispatch")
		sp.SetAttr("worker", pl.id)
		sp.SetAttr("outcome", outcome)
		sp.SetAttr("attempt", fmt.Sprint(attempt+1))
		m, permanent, execErr := c.execOn(pl, body, hash, job.Tenant, sp.Context())
		c.reg.release(pl.id)
		if execErr == nil {
			sp.End()
			c.count(func() { c.perWorkerDone[pl.id]++ })
			return m, nil
		}
		sp.SetAttr("error", execErr.Error())
		sp.End()
		if permanent {
			return nil, execErr
		}
		// Worker trouble: mark it down so new placements skip it until
		// it heartbeats back, and let the next live owner steal the job.
		c.reg.markDown(pl.id)
		c.count(func() { c.execFailures++ })
		c.log.Warn("dispatch failed; marking worker down",
			olog.KeyWorker, pl.id, olog.KeyJobHash, hash,
			olog.KeyRequest, parent.TraceID, olog.KeyError, execErr.Error())
		lastErr = execErr
	}
	return nil, fmt.Errorf("cluster: job %s failed on %d workers: %v: %w",
		hash[:12], c.opts.MaxAttempts, lastErr, sweep.ErrUnavailable)
}

// execOn runs one exec POST against one worker. permanent=true marks
// job errors retrying cannot fix. tenantID rides a header, never the
// body, preserving byte-identical job encodings across tenants; the
// trace context travels the same way, and the worker's spans come back
// over a response header so result bodies stay byte-identical with
// tracing on or off.
func (c *Coordinator) execOn(pl placement, body []byte, hash, tenantID string, traceCtx reqtrace.SpanContext) (m *core.Metrics, permanent bool, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.ExecTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", pl.addr+pathExec, bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenantID != "" {
		req.Header.Set(headerTenant, tenantID)
	}
	if traceCtx.Valid() {
		req.Header.Set(reqtrace.HeaderTrace, traceCtx.String())
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("cluster: exec on %s: %v", pl.id, err)
	}
	defer drainClose(resp)
	if traceCtx.Valid() {
		c.rt.Inject(traceCtx.TraceID, reqtrace.DecodeSpans(resp.Header.Get(reqtrace.HeaderSpans)))
	}
	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode == http.StatusUnprocessableEntity || resp.StatusCode == http.StatusBadRequest:
		var eb execErrorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		return nil, true, fmt.Errorf("cluster: worker %s: %s", pl.id, eb.Error)
	default:
		return nil, false, fmt.Errorf("cluster: exec on %s: status %d", pl.id, resp.StatusCode)
	}
	var res sweep.Result
	if derr := json.NewDecoder(resp.Body).Decode(&res); derr != nil {
		return nil, false, fmt.Errorf("cluster: exec on %s: bad result: %v", pl.id, derr)
	}
	// The integrity gate of the replicated tier: the worker must return
	// exactly the job we sent, under exactly the hash we computed.
	if res.Hash != hash || res.Job.Hash() != hash {
		return nil, false, fmt.Errorf("cluster: exec on %s: result hash mismatch (got %s want %s)", pl.id, res.Hash, hash)
	}
	return res.Metrics(), false, nil
}

// count runs a mutation of the dispatch counters under the lock.
func (c *Coordinator) count(fn func()) {
	c.mu.Lock()
	fn()
	c.mu.Unlock()
}

// LookupFallback is the coordinator's public-API miss path: a hash the
// local engine cannot answer is fetched from the fleet (the hash's
// ring owners first), verified, and adopted into the local cache so
// the next lookup is local. It satisfies serve.Options.LookupFallback.
func (c *Coordinator) LookupFallback(ctx context.Context, hash string) (*sweep.Result, sweep.Source, bool) {
	if !sweep.ValidHash(hash) {
		return nil, sweep.SourceComputed, false
	}
	for _, addr := range c.reg.liveAddrs(hash) {
		res, ok := fetchResult(ctx, c.client, addr+pathResults+hash, hash)
		if !ok {
			continue
		}
		// The serving layer parks its lookup span context on ctx; the
		// adoption (peer fetch + verify + local cache fill) is the slow
		// part of a fleet miss, so it gets its own span.
		sp := c.rt.Start(reqtrace.SpanFromContext(ctx), "adopt")
		sp.SetAttr("peer", addr)
		sp.SetAttr("hash", hash)
		if eng := c.engine(); eng != nil {
			if err := eng.Adopt(res); err != nil {
				sp.SetAttr("error", err.Error())
				sp.End()
				continue
			}
		}
		sp.End()
		c.count(func() { c.peerFetches++ })
		return res, sweep.SourcePeer, true
	}
	return nil, sweep.SourceComputed, false
}

// Status snapshots the fleet and the coordinator's dispatch accounting
// for GET /v1/cluster/status. It satisfies serve.Options.ClusterStatus
// (modulo the any wrapper the daemon supplies).
func (c *Coordinator) Status() StatusDoc {
	c.mu.Lock()
	doc := StatusDoc{
		Dispatches:   c.homeDispatches + c.forwards + c.steals,
		Forwards:     c.forwards,
		Steals:       c.steals,
		ExecFailures: c.execFailures,
		NoWorker:     c.noWorker,
		PeerFetches:  c.peerFetches,
	}
	c.mu.Unlock()
	doc.Workers = c.reg.status()
	for _, m := range doc.Workers {
		if m.Live {
			doc.Live++
		} else {
			doc.Down++
		}
		doc.InFlightTotal += m.Outstanding
	}
	return doc
}

// handleJoin serves POST /internal/v1/join.
func (c *Coordinator) handleJoin(rw http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<20)).Decode(&req); err != nil {
		writeExecError(rw, http.StatusBadRequest, "bad join: %v", err)
		return
	}
	if req.ID == "" || req.Addr == "" {
		writeExecError(rw, http.StatusBadRequest, "join needs id and addr")
		return
	}
	c.reg.join(req)
	c.log.Info("worker joined", olog.KeyWorker, req.ID, "addr", req.Addr, "capacity", req.Workers)
	rw.WriteHeader(http.StatusOK)
}

// handleHeartbeat serves POST /internal/v1/heartbeat. 404 tells the
// worker its registration is gone (coordinator restart) and it must
// re-join.
func (c *Coordinator) handleHeartbeat(rw http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<20)).Decode(&req); err != nil {
		writeExecError(rw, http.StatusBadRequest, "bad heartbeat: %v", err)
		return
	}
	if !c.reg.beat(req) {
		writeExecError(rw, http.StatusNotFound, "unknown worker %q; re-join", req.ID)
		return
	}
	rw.WriteHeader(http.StatusOK)
}

// handleLeave serves POST /internal/v1/leave.
func (c *Coordinator) handleLeave(rw http.ResponseWriter, r *http.Request) {
	var req LeaveRequest
	if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<20)).Decode(&req); err != nil {
		writeExecError(rw, http.StatusBadRequest, "bad leave: %v", err)
		return
	}
	c.reg.leave(req.ID)
	c.log.Info("worker left", olog.KeyWorker, req.ID)
	rw.WriteHeader(http.StatusOK)
}

// handleResult serves GET /internal/v1/results/{hash}: the
// coordinator tier of the replicated result store. It consults the
// local engine caches, then the fleet; workers use it as their
// fallback, so a result computed anywhere is reachable from
// everywhere. Lookups never compute.
func (c *Coordinator) handleResult(rw http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !sweep.ValidHash(hash) {
		writeExecError(rw, http.StatusBadRequest, "bad hash %q", hash)
		return
	}
	if eng := c.engine(); eng != nil {
		if res, src, ok := eng.Lookup(hash); ok {
			rw.Header().Set(headerSource, src.String())
			writeResultJSON(rw, res)
			return
		}
	}
	if res, src, ok := c.LookupFallback(r.Context(), hash); ok {
		rw.Header().Set(headerSource, src.String())
		writeResultJSON(rw, res)
		return
	}
	writeExecError(rw, http.StatusNotFound, "no result for hash %s", hash)
}
