package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs/reqtrace"
	olog "repro/internal/obs/slog"
	"repro/internal/sweep"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// ID is the worker's stable identity; it is the consistent-hash
	// ring membership key, so it should survive restarts (host:port or
	// an operator-chosen name). Required.
	ID string
	// Engine is the local sweep engine that executes forwarded jobs.
	// The engine's Workers semaphore is the worker's execution bound:
	// however many exec requests the coordinator has in flight here, at
	// most Engine.Workers() jobs compute at once. Required.
	Engine *sweep.Engine
	// Coordinator is the coordinator's base URL. Empty disables the
	// join/heartbeat loop (an unregistered worker still serves its
	// internal API — useful for tests).
	Coordinator string
	// Advertise is the base URL the coordinator should dial back; it
	// is sent in the join request. Required when Coordinator is set.
	Advertise string
	// HeartbeatEvery is the heartbeat period (default 1s).
	HeartbeatEvery time.Duration
	// Client is the HTTP client for coordinator calls (default: 5s
	// timeout).
	Client *http.Client
	// Tracer, when set, records an exec span per forwarded job under
	// the coordinator's dispatch span (carried in the X-Ringsim-Trace
	// request header) and ships the span back over the exec response
	// header, so the coordinator's trace store holds the whole tree.
	Tracer *reqtrace.Tracer
	// Logger receives structured exec events (request ID, tenant, job
	// hash, worker ID, cache source). nil discards them.
	Logger *olog.Logger
}

// Worker is the daemon side of the cluster plane: the internal
// job-execution API over a local engine, plus the membership loop.
// Construct with NewWorker; it is safe for concurrent use.
type Worker struct {
	opts     WorkerOptions
	client   *http.Client
	mux      *http.ServeMux
	rt       *reqtrace.Tracer
	log      *olog.Logger
	inflight atomic.Int64
}

// NewWorker returns a Worker over the engine.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.ID == "" {
		return nil, fmt.Errorf("cluster: worker needs an ID")
	}
	if opts.Engine == nil {
		return nil, fmt.Errorf("cluster: worker needs an engine")
	}
	if opts.Coordinator != "" && opts.Advertise == "" {
		return nil, fmt.Errorf("cluster: joining worker needs an advertise URL")
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	log := opts.Logger
	if log == nil {
		log = olog.Nop()
	}
	w := &Worker{opts: opts, client: client, mux: http.NewServeMux(), rt: opts.Tracer, log: log}
	w.mux.HandleFunc("POST "+pathExec, w.handleExec)
	w.mux.HandleFunc("GET "+pathResults+"{hash}", w.handleResult)
	w.mux.HandleFunc("GET "+pathHealth, w.handleHealth)
	w.mux.HandleFunc("GET "+pathObsAgg, w.handleObsAgg)
	return w, nil
}

// ID returns the worker's identity.
func (w *Worker) ID() string { return w.opts.ID }

// InFlight returns the current exec in-flight gauge.
func (w *Worker) InFlight() int { return int(w.inflight.Load()) }

// Handler returns the internal-API handler (exec, results, health).
func (w *Worker) Handler() http.Handler { return w.mux }

// handleExec serves POST /internal/v1/exec: run one job through the
// local engine and return the full Result. Execution order of events:
// the request context gates only dispatch — once the engine has begun
// computing, the job runs to completion and lands in the local cache
// even if the coordinator has given up (work conservation; a stolen
// retry elsewhere then coexists harmlessly because results are
// content-addressed and byte-identical).
func (w *Worker) handleExec(rw http.ResponseWriter, r *http.Request) {
	var job sweep.Job
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&job); err != nil {
		writeExecError(rw, http.StatusBadRequest, "bad job: %v", err)
		return
	}
	// Tenant provenance travels as a header, not in the body (the body
	// must stay byte-identical across tenants); restoring it here makes
	// the worker's progress events and metering tenant-attributed. The
	// trace context rides the same way.
	job.Tenant = r.Header.Get(headerTenant)
	parent, _ := reqtrace.ParseContext(r.Header.Get(reqtrace.HeaderTrace))
	sp := w.rt.Start(parent, "exec")
	sp.SetAttr("worker", w.opts.ID)
	w.inflight.Add(1)
	defer w.inflight.Add(-1)
	start := time.Now()
	res, src, err := w.opts.Engine.RunOneCtx(r.Context(), job)
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		w.log.Warn("exec failed", olog.KeyRequest, parent.TraceID,
			olog.KeyWorker, w.opts.ID, olog.KeyTenant, job.Tenant, olog.KeyError, err.Error())
		// An executor failure is a property of the job, not the worker:
		// 422 tells the coordinator not to burn retries elsewhere.
		writeExecError(rw, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	sp.SetAttr("hash", res.Hash)
	sp.SetAttr("source", src.String())
	// End before writing headers so the span ships with its duration;
	// spans ride a response header, never the result body.
	sp.End()
	if parent.Valid() && sp != nil {
		rw.Header().Set(reqtrace.HeaderSpans, reqtrace.EncodeSpans([]reqtrace.SpanData{sp.Data()}))
	}
	w.log.Info("exec", olog.KeyRequest, parent.TraceID, olog.KeyWorker, w.opts.ID,
		olog.KeyTenant, job.Tenant, olog.KeyJobHash, res.Hash,
		"source", src.String(), "dur_ms", time.Since(start).Milliseconds())
	rw.Header().Set(headerWorker, w.opts.ID)
	rw.Header().Set(headerSource, src.String())
	writeResultJSON(rw, res)
}

// handleObsAgg serves GET /internal/v1/obsagg: the worker engine's
// per-class coherence-span aggregates as validated, mergeable
// histogram snapshots — the raw material of fleet metrics federation.
func (w *Worker) handleObsAgg(rw http.ResponseWriter, r *http.Request) {
	aggs := w.opts.Engine.TraceAgg()
	out := make([]ClassAggSnapshot, 0, len(aggs))
	for _, a := range aggs {
		out = append(out, ClassAggSnapshot{
			Class:   a.Class,
			Spans:   a.Spans,
			Latency: a.Latency.Snapshot(),
		})
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(out)
}

// handleResult serves GET /internal/v1/results/{hash}: the worker-local
// tier of the replicated result store. Lookup never computes; it
// consults the engine's memory map then its on-disk cache.
func (w *Worker) handleResult(rw http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !sweep.ValidHash(hash) {
		writeExecError(rw, http.StatusBadRequest, "bad hash %q", hash)
		return
	}
	res, src, ok := w.opts.Engine.Lookup(hash)
	if !ok {
		writeExecError(rw, http.StatusNotFound, "no result for hash %s", hash)
		return
	}
	rw.Header().Set(headerWorker, w.opts.ID)
	rw.Header().Set(headerSource, src.String())
	writeResultJSON(rw, res)
}

// handleHealth serves GET /internal/v1/health.
func (w *Worker) handleHealth(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(WorkerHealth{
		ID:       w.opts.ID,
		InFlight: w.InFlight(),
		Workers:  w.opts.Engine.Workers(),
		Stats:    w.opts.Engine.Stats(),
	})
}

// Run joins the coordinator and heartbeats until ctx dies, re-joining
// with backoff whenever the coordinator restarts or a beat fails. On
// exit it sends a best-effort leave so the coordinator drops the
// worker from the ring immediately instead of waiting out the TTL.
// No-op when no coordinator is configured.
func (w *Worker) Run(ctx context.Context) {
	if w.opts.Coordinator == "" {
		return
	}
	defer w.leave()
	joined := false
	tick := time.NewTicker(w.opts.HeartbeatEvery)
	defer tick.Stop()
	for {
		if !joined {
			joined = w.join(ctx)
		} else if !w.beat(ctx) {
			joined = false
		}
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// join registers with the coordinator; false means try again next tick.
func (w *Worker) join(ctx context.Context) bool {
	body, _ := json.Marshal(JoinRequest{
		ID:      w.opts.ID,
		Addr:    w.opts.Advertise,
		Workers: w.opts.Engine.Workers(),
	})
	resp, err := w.post(ctx, w.opts.Coordinator+pathJoin, body)
	if err != nil {
		return false
	}
	drainClose(resp)
	return resp.StatusCode == http.StatusOK
}

// beat sends one heartbeat; false means the registration was lost
// (coordinator restart) or unreachable and the worker must re-join.
func (w *Worker) beat(ctx context.Context) bool {
	body, _ := json.Marshal(HeartbeatRequest{
		ID:       w.opts.ID,
		InFlight: w.InFlight(),
		Stats:    w.opts.Engine.Stats(),
	})
	resp, err := w.post(ctx, w.opts.Coordinator+pathHeartbeat, body)
	if err != nil {
		return false
	}
	drainClose(resp)
	return resp.StatusCode == http.StatusOK
}

// leave deregisters; errors are deliberately ignored (the TTL reaps
// the membership anyway).
func (w *Worker) leave() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	body, _ := json.Marshal(LeaveRequest{ID: w.opts.ID})
	if resp, err := w.post(ctx, w.opts.Coordinator+pathLeave, body); err == nil {
		drainClose(resp)
	}
}

func (w *Worker) post(ctx context.Context, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return w.client.Do(req)
}

// LookupFallback is the worker's public-API miss path: a result the
// local tiers don't hold is fetched from the coordinator's relay
// (which consults its own cache, then the fleet) and adopted into the
// local engine, so the next lookup is a local hit. It satisfies
// serve.Options.LookupFallback.
func (w *Worker) LookupFallback(ctx context.Context, hash string) (*sweep.Result, sweep.Source, bool) {
	if w.opts.Coordinator == "" || !sweep.ValidHash(hash) {
		return nil, sweep.SourceComputed, false
	}
	res, ok := fetchResult(ctx, w.client, w.opts.Coordinator+pathResults+hash, hash)
	if !ok {
		return nil, sweep.SourceComputed, false
	}
	if err := w.opts.Engine.Adopt(res); err != nil {
		return nil, sweep.SourceComputed, false
	}
	return res, sweep.SourcePeer, true
}

// fetchResult GETs a result JSON from an internal results endpoint and
// verifies its integrity: the body must decode to a Result whose
// stored hash and recomputed job content hash both equal the hash
// requested. Every boundary of the replicated tier applies this check,
// so a byzantine or corrupt peer cannot poison a cache.
func fetchResult(ctx context.Context, client *http.Client, url, hash string) (*sweep.Result, bool) {
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return nil, false
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, false
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var res sweep.Result
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&res); err != nil {
		return nil, false
	}
	if res.Hash != hash || res.Job.Hash() != hash {
		return nil, false
	}
	return &res, true
}

func writeResultJSON(rw http.ResponseWriter, res *sweep.Result) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(res)
}

func writeExecError(rw http.ResponseWriter, code int, format string, args ...any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	json.NewEncoder(rw).Encode(execErrorBody{Error: fmt.Sprintf(format, args...)})
}

func drainClose(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
