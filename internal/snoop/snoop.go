// Package snoop implements the paper's snooping cache coherence
// protocol for the unidirectional slotted ring (Section 3.1): a
// write-invalidate write-back protocol in which miss and invalidation
// requests are broadcast in probe slots, snooped by every interface as
// they pass, and acknowledged by the owner — the home memory when the
// block's dirty bit is clear, the dirty cache otherwise. Probes are
// removed only by their requester, so no transaction traverses the
// ring more than once and miss latency is independent of node
// positions: the ring behaves as a UMA interconnect.
//
// Timing simplifications, noted in DESIGN.md: the block supplied by a
// dirty owner is assumed to update memory without an extra message
// (home reflection), and responder selection is made at probe insertion
// time — consistent with the paper's own model, which never charges
// extra traffic for reflection.
package snoop

import (
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/ring"
	"repro/internal/sim"
)

// CacheSupplyTime is the time for a dirty owner to fetch a block from
// its cache for a cache-to-cache transfer. The paper lumps "the time to
// fetch the block in the remote memory or cache" together, so this
// matches the 140 ns memory bank time.
const CacheSupplyTime = memory.BankTime

// Options configures an Engine.
type Options struct {
	// Cache is the per-node cache geometry (zero: paper defaults).
	Cache cache.Config
	// PageBytes is the home-placement granularity; default 4096.
	PageBytes int
	// Seed drives the random page-to-home placement.
	Seed uint64
	// Home, when non-nil, supplies a pre-built page-to-home placement
	// (e.g. one with private-data hints); PageBytes and Seed are then
	// ignored.
	Home *memory.HomeMap
	// Tracer, when non-nil, records coherence transactions as obs
	// spans with phase annotations.
	Tracer *obs.Tracer
}

func (o *Options) fill() {
	if o.PageBytes == 0 {
		o.PageBytes = 4096
	}
}

// blockMeta is the home-side state of one block: the dirty bit (and
// owner) kept in main memory by the snooping protocol.
type blockMeta struct {
	dirty bool
	owner int
}

// Engine is a snooping-protocol coherence engine over a slotted ring.
type Engine struct {
	k      *sim.Kernel
	ring   *ring.Ring
	caches []*cache.Cache
	banks  []*memory.Bank
	home   *memory.HomeMap
	meta   map[uint64]*blockMeta
	tr     *obs.Tracer

	// WriteBacks counts the block messages sent home on dirty
	// evictions (off the critical path).
	WriteBacks uint64
	wbByNode   []uint64
}

// WriteBacksOf returns the write-backs caused by node's own evictions;
// the core's per-processor warmup gating reads it.
func (e *Engine) WriteBacksOf(node int) uint64 { return e.wbByNode[node] }

// New returns a snooping engine over r.
func New(r *ring.Ring, opts Options) *Engine {
	opts.fill()
	k := r.Kernel()
	n := r.Geo.Nodes
	e := &Engine{
		k:      k,
		ring:   r,
		caches: make([]*cache.Cache, n),
		banks:  make([]*memory.Bank, n),
		home:   homeMapFor(n, opts),
		meta:   make(map[uint64]*blockMeta),
		tr:     opts.Tracer,
	}
	e.wbByNode = make([]uint64, n)
	for i := 0; i < n; i++ {
		e.caches[i] = cache.New(opts.Cache)
		e.banks[i] = memory.NewBank(k, "mem")
	}
	return e
}

// Ring returns the underlying slotted ring (for utilization stats).
func (e *Engine) Ring() *ring.Ring { return e.ring }

// Cache returns node's cache.
func (e *Engine) Cache(node int) *cache.Cache { return e.caches[node] }

// HomeMap returns the page-to-home placement.
func (e *Engine) HomeMap() *memory.HomeMap { return e.home }

func (e *Engine) metaFor(block uint64) *blockMeta {
	m := e.meta[block]
	if m == nil {
		m = &blockMeta{owner: -1}
		e.meta[block] = m
	}
	return m
}

// Access performs one data reference for node. done fires at completion
// time with the classification; hits complete synchronously.
func (e *Engine) Access(node int, addr uint64, write bool, done func(at sim.Time, res coherence.Result)) {
	c := e.caches[node]
	block := c.BlockAddr(addr)
	switch c.Lookup(addr, write) {
	case cache.Hit:
		done(e.k.Now(), coherence.Result{Hit: true})
	case cache.MissRead:
		e.miss(node, block, false, done)
	case cache.MissWrite:
		e.miss(node, block, true, done)
	case cache.Upgrade:
		e.upgrade(node, block, done)
	}
}

// fill installs a block, sending a write-back for any dirty victim.
func (e *Engine) fill(node int, block uint64, st coherence.State) {
	if v := e.caches[node].Fill(block, st); v.Valid && v.Dirty {
		e.writeBack(node, v.Block)
	}
}

// writeBack returns a dirty block to its home memory, off the critical
// path. The home clears the dirty bit when the block message arrives.
func (e *Engine) writeBack(node int, block uint64) {
	e.WriteBacks++
	e.wbByNode[node]++
	sp := e.tr.Begin(node, e.k.Now())
	m := e.metaFor(block)
	h := e.home.Home(block)
	if h == node {
		// Local write-back: just the bank write.
		m.dirty = false
		e.banks[h].Access(nil)
		sp.End(e.k.Now(), coherence.WriteBack)
		return
	}
	grab, removal := e.ring.Send(node, h, ring.BlockSlot, nil, func(sim.Time) {
		mm := e.metaFor(block)
		if mm.dirty && mm.owner == node {
			mm.dirty = false
		}
		e.banks[h].Access(nil)
	})
	sp.Mark(obs.PhaseData, grab)
	sp.End(removal, coherence.WriteBack)
}

// miss services a read or write miss.
func (e *Engine) miss(node int, block uint64, write bool, done func(sim.Time, coherence.Result)) {
	m := e.metaFor(block)
	h := e.home.Home(block)
	start := e.k.Now()
	sp := e.tr.Begin(node, start)

	// Clean block homed here (or our own stale ownership racing with a
	// write-back): served from the local bank. A write to a block that
	// other caches may share still needs the invalidating probe, so
	// only reads take the pure-local path.
	dirtyRemote := m.dirty && m.owner != node
	if h == node && !dirtyRemote && !write {
		e.banks[h].Access(func() {
			e.fill(node, block, coherence.ReadShared)
			sp.Mark(obs.PhaseData, e.k.Now())
			sp.End(e.k.Now(), coherence.ReadMissClean)
			done(e.k.Now(), coherence.Result{Txn: coherence.ReadMissClean, Local: true})
		})
		return
	}

	txn := coherence.ReadMissClean
	if write {
		txn = coherence.WriteMissClean
		if dirtyRemote {
			txn = coherence.WriteMissDirty
		}
	} else if dirtyRemote {
		txn = coherence.ReadMissDirty
	}

	// Responder chosen at insertion: the dirty owner, else the home.
	responder := h
	if dirtyRemote {
		responder = m.owner
	}

	// Broadcast the probe. Every interface snoops it as it passes:
	// a write probe invalidates all copies, a read probe downgrades
	// the dirty owner.
	var probeReturn sim.Time
	blockArrived := sim.Time(-1)
	finished := false
	finish := func() {
		if finished {
			return
		}
		// A write completes when every copy is invalidated (probe back
		// around) and the data has arrived; a read when data arrives.
		if blockArrived < 0 {
			return
		}
		if write && e.k.Now() < probeReturn {
			return
		}
		finished = true
		st := coherence.ReadShared
		if write {
			st = coherence.WriteExclusive
		}
		e.fill(node, block, st)
		mm := e.metaFor(block)
		if write {
			mm.dirty = true
			mm.owner = node
		} else if dirtyRemote {
			// The owner downgraded and the home copy is refreshed.
			mm.dirty = false
		}
		sp.End(e.k.Now(), txn)
		done(e.k.Now(), coherence.Result{Txn: txn, Traversals: 1})
	}

	class := e.ring.Geo.ProbeClassFor(block)
	supplied := false
	grab, ret := e.ring.Send(node, ring.Broadcast, class,
		func(visited int, at sim.Time) {
			// Snooper actions at probe pass time.
			if write {
				e.caches[visited].Invalidate(block)
			} else if visited == responder && dirtyRemote {
				e.caches[visited].Downgrade(block)
			}
			if visited == responder && !supplied {
				supplied = true
				e.respond(responder, node, dirtyRemote, func() {
					blockArrived = e.k.Now()
					sp.Mark(obs.PhaseData, blockArrived)
					finish()
				})
			}
		},
		func(at sim.Time) {
			// Probe removed by the requester after one traversal.
			sp.Mark(obs.PhaseAck, at)
			finish()
		})
	probeReturn = ret
	sp.Mark(obs.PhaseProbeGrab, grab)

	// A write miss on a clean block homed at the requester: the probe
	// still sweeps the ring to invalidate sharers, but the data comes
	// from the local bank, in parallel.
	if responder == node {
		supplied = true
		e.banks[node].Access(func() {
			blockArrived = e.k.Now()
			sp.Mark(obs.PhaseData, blockArrived)
			finish()
		})
	}
}

// respond fetches the block at the responder (memory bank when it is
// the clean home, cache when it is the dirty owner) and ships it to the
// requester in a block slot.
func (e *Engine) respond(responder, requester int, fromCache bool, delivered func()) {
	send := func() {
		e.ring.Send(responder, requester, ring.BlockSlot, nil, func(sim.Time) {
			delivered()
		})
	}
	if fromCache {
		e.k.After(CacheSupplyTime, send)
	} else {
		e.banks[responder].Access(send)
	}
}

// upgrade services an invalidation request: the requester holds an RS
// copy and broadcasts a probe; every other copy is invalidated as the
// probe sweeps, and the write permission is granted when the probe
// returns — exactly one traversal.
func (e *Engine) upgrade(node int, block uint64, done func(sim.Time, coherence.Result)) {
	class := e.ring.Geo.ProbeClassFor(block)
	sp := e.tr.Begin(node, e.k.Now())
	grab, _ := e.ring.Send(node, ring.Broadcast, class,
		func(visited int, at sim.Time) {
			e.caches[visited].Invalidate(block)
		},
		func(at sim.Time) {
			// Our copy may have been invalidated by a racing write; the
			// transaction then degenerates into a write miss fill.
			if !e.caches[node].Upgrade(block) {
				e.fill(node, block, coherence.WriteExclusive)
			}
			m := e.metaFor(block)
			m.dirty = true
			m.owner = node
			sp.Mark(obs.PhaseAck, at)
			sp.End(at, coherence.Invalidation)
			done(at, coherence.Result{Txn: coherence.Invalidation, Traversals: 1})
		})
	sp.Mark(obs.PhaseProbeGrab, grab)
}

// homeMapFor returns the configured home map, or builds the default
// seeded-random page placement.
func homeMapFor(n int, opts Options) *memory.HomeMap {
	if opts.Home != nil {
		return opts.Home
	}
	return memory.NewHomeMap(n, opts.PageBytes, sim.NewRand(opts.Seed))
}

// HasBlock reports whether node currently caches the block containing
// addr in a readable state (RS or WE). The core's write-buffer model
// uses it to decide whether a load can bypass an outstanding store.
func (e *Engine) HasBlock(node int, addr uint64) bool {
	c := e.caches[node]
	return c.State(c.BlockAddr(addr)) != coherence.Invalid
}
