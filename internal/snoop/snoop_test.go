package snoop

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/memory"
	"repro/internal/ring"
	"repro/internal/sim"
)

// testEngine builds a 4-node engine with a fixed home for the probed
// addresses.
func testEngine(t *testing.T) (*sim.Kernel, *Engine) {
	t.Helper()
	k := sim.NewKernel()
	r := ring.New(k, ring.Config{Nodes: 4})
	e := New(r, Options{Seed: 1})
	return k, e
}

// access runs a single access to completion and returns its result and
// latency.
func access(k *sim.Kernel, e *Engine, node int, addr uint64, write bool) (coherence.Result, sim.Time) {
	var res coherence.Result
	var lat sim.Time = -1
	start := k.Now()
	e.Access(node, addr, write, func(at sim.Time, r coherence.Result) {
		res = r
		lat = at - start
	})
	k.Run()
	if lat < 0 {
		panic("access never completed")
	}
	return res, lat
}

func TestHitCompletesImmediately(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x1000, 1)
	access(k, e, 0, 0x1000, false) // fill
	res, lat := access(k, e, 0, 0x1000, false)
	if !res.Hit {
		t.Fatalf("second read = %+v, want hit", res)
	}
	if lat != 0 {
		t.Fatalf("hit latency = %v, want 0", lat)
	}
}

func TestLocalCleanReadMiss(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x1000, 2)
	res, lat := access(k, e, 2, 0x1000, false)
	if res.Hit || !res.Local || res.Txn != coherence.ReadMissClean {
		t.Fatalf("result = %+v, want local clean read miss", res)
	}
	if lat != memory.BankTime {
		t.Fatalf("local miss latency = %v, want 140ns", lat)
	}
	if e.Ring().Messages(ring.ProbeEven)+e.Ring().Messages(ring.ProbeOdd) != 0 {
		t.Fatal("local miss sent ring probes")
	}
}

func TestRemoteCleanReadMissLatencyIsUMA(t *testing.T) {
	// Probe travels dist(n,h), block travels dist(h,n): the sum is one
	// full circumference for every requester — the paper's UMA claim.
	for _, requester := range []int{0, 1, 3} {
		k, e := testEngine(t)
		e.HomeMap().Place(0x1000, 2)
		res, lat := access(k, e, requester, 0x1000, false)
		if res.Txn != coherence.ReadMissClean || res.Local {
			t.Fatalf("node %d: result = %+v, want remote clean read miss", requester, res)
		}
		rtt := e.Ring().Geo.RoundTrip()
		// latency = probe slot wait + RTT (probe to home + block back)
		// + bank time + block slot wait. Slot waits are < RTT each.
		min := rtt + memory.BankTime
		max := min + 2*rtt
		if lat < min || lat > max {
			t.Fatalf("node %d: latency %v outside [%v, %v]", requester, lat, min, max)
		}
		if res.Traversals != 1 {
			t.Fatalf("node %d: traversals = %d, want 1", requester, res.Traversals)
		}
	}
}

func TestReadMissOnDirtyBlock(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x1000, 1)
	// Node 3 takes the block write-exclusive.
	res, _ := access(k, e, 3, 0x1000, true)
	if res.Txn != coherence.WriteMissClean {
		t.Fatalf("first write = %+v, want write-miss-clean", res)
	}
	if e.Cache(3).State(0x1000) != coherence.WriteExclusive {
		t.Fatal("writer does not hold WE")
	}
	// Node 0 reads: the dirty owner must supply and downgrade.
	res, _ = access(k, e, 0, 0x1000, false)
	if res.Txn != coherence.ReadMissDirty {
		t.Fatalf("read after remote write = %+v, want read-miss-dirty", res)
	}
	if e.Cache(0).State(0x1000) != coherence.ReadShared {
		t.Fatal("reader did not get RS")
	}
	if e.Cache(3).State(0x1000) != coherence.ReadShared {
		t.Fatal("owner did not downgrade to RS")
	}
	// Dirty bit cleared: a third read is a clean miss.
	res, _ = access(k, e, 2, 0x1000, false)
	if res.Txn != coherence.ReadMissClean {
		t.Fatalf("third read = %+v, want read-miss-clean", res)
	}
}

func TestWriteMissInvalidatesAllSharers(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x2000, 1)
	access(k, e, 0, 0x2000, false)
	access(k, e, 2, 0x2000, false)
	access(k, e, 3, 0x2000, false)
	res, _ := access(k, e, 1, 0x2000, true) // home writes
	if res.Txn != coherence.WriteMissClean {
		t.Fatalf("write = %+v, want write-miss-clean", res)
	}
	for _, n := range []int{0, 2, 3} {
		if e.Cache(n).State(0x2000) != coherence.Invalid {
			t.Fatalf("node %d still holds a copy after write miss", n)
		}
	}
	if e.Cache(1).State(0x2000) != coherence.WriteExclusive {
		t.Fatal("writer does not hold WE")
	}
}

func TestWriteMissOnDirtyBlock(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x3000, 0)
	access(k, e, 2, 0x3000, true)
	res, _ := access(k, e, 3, 0x3000, true)
	if res.Txn != coherence.WriteMissDirty {
		t.Fatalf("second write = %+v, want write-miss-dirty", res)
	}
	if e.Cache(2).State(0x3000) != coherence.Invalid {
		t.Fatal("previous owner not invalidated")
	}
	if e.Cache(3).State(0x3000) != coherence.WriteExclusive {
		t.Fatal("new owner not WE")
	}
}

func TestUpgradeTakesOneTraversal(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x4000, 1)
	access(k, e, 0, 0x4000, false)
	access(k, e, 2, 0x4000, false)
	start := k.Now()
	var res coherence.Result
	var lat sim.Time
	e.Access(0, 0x4000, true, func(at sim.Time, r coherence.Result) {
		res, lat = r, at-start
	})
	k.Run()
	if res.Txn != coherence.Invalidation {
		t.Fatalf("upgrade = %+v, want invalidation", res)
	}
	rtt := e.Ring().Geo.RoundTrip()
	if lat < rtt || lat > 2*rtt {
		t.Fatalf("upgrade latency = %v, want RTT + slot wait (≤ %v)", lat, 2*rtt)
	}
	if e.Cache(0).State(0x4000) != coherence.WriteExclusive {
		t.Fatal("upgrader not WE")
	}
	if e.Cache(2).State(0x4000) != coherence.Invalid {
		t.Fatal("sharer not invalidated by upgrade")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	k, e := testEngine(t)
	// Two blocks that conflict in the 128 KB direct-mapped cache.
	const a, b = 0x1_0000_0000, 0x1_0002_0000
	e.HomeMap().Place(a, 1)
	e.HomeMap().Place(b, 1)
	access(k, e, 0, a, true) // dirty
	access(k, e, 0, b, false)
	if e.WriteBacks != 1 {
		t.Fatalf("WriteBacks = %d, want 1 after dirty eviction", e.WriteBacks)
	}
	// After the write-back lands, the block is clean at home again.
	res, _ := access(k, e, 2, a, false)
	if res.Txn != coherence.ReadMissClean {
		t.Fatalf("read after write-back = %+v, want clean miss", res)
	}
}

func TestLocalWriteMissStillProbes(t *testing.T) {
	// A write miss homed at the requester must still broadcast to
	// invalidate remote RS copies.
	k, e := testEngine(t)
	e.HomeMap().Place(0x5000, 2)
	access(k, e, 0, 0x5000, false) // remote sharer
	res, _ := access(k, e, 2, 0x5000, true)
	if res.Txn != coherence.WriteMissClean || res.Local {
		t.Fatalf("home write = %+v, want non-local write-miss-clean", res)
	}
	if e.Cache(0).State(0x5000) != coherence.Invalid {
		t.Fatal("remote sharer survived home-node write miss")
	}
}

func TestProbesUseAddressParitySlots(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x1000, 1) // block 0x1000/16 = even
	e.HomeMap().Place(0x1010, 1) // odd
	access(k, e, 0, 0x1000, false)
	if e.Ring().Messages(ring.ProbeEven) != 1 || e.Ring().Messages(ring.ProbeOdd) != 0 {
		t.Fatal("even block did not use the even probe slot")
	}
	access(k, e, 0, 0x1010, false)
	if e.Ring().Messages(ring.ProbeOdd) != 1 {
		t.Fatal("odd block did not use the odd probe slot")
	}
}

func TestManyNodesManyBlocksConsistency(t *testing.T) {
	// Drive a pseudo-random access pattern and verify the single-writer
	// invariant after every completed transaction set.
	k := sim.NewKernel()
	r := ring.New(k, ring.Config{Nodes: 8})
	e := New(r, Options{Seed: 3})
	rng := sim.NewRand(99)
	blocks := []uint64{0x1000, 0x2000, 0x3000, 0x4000}
	outstanding := 0
	for i := 0; i < 200; i++ {
		node := rng.Intn(8)
		blk := blocks[rng.Intn(len(blocks))]
		write := rng.Bool(0.4)
		outstanding++
		// Serialize: one access at a time keeps the check exact.
		e.Access(node, blk, write, func(sim.Time, coherence.Result) { outstanding-- })
		k.Run()
		if outstanding != 0 {
			t.Fatal("access did not complete")
		}
		for _, b := range blocks {
			writers := 0
			holders := 0
			for n := 0; n < 8; n++ {
				switch e.Cache(n).State(b) {
				case coherence.WriteExclusive:
					writers++
					holders++
				case coherence.ReadShared:
					holders++
				}
			}
			if writers > 1 {
				t.Fatalf("block %#x has %d writers", b, writers)
			}
			if writers == 1 && holders > 1 {
				t.Fatalf("block %#x: WE copy coexists with other copies", b)
			}
		}
	}
}
