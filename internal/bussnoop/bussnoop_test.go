package bussnoop

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/coherence"
	"repro/internal/memory"
	"repro/internal/sim"
)

func testEngine(t *testing.T) (*sim.Kernel, *Engine) {
	t.Helper()
	k := sim.NewKernel()
	b := bus.New(k, bus.Config{Nodes: 4}) // 50 MHz, 64-bit
	return k, New(b, Options{Seed: 1})
}

func access(k *sim.Kernel, e *Engine, node int, addr uint64, write bool) (coherence.Result, sim.Time) {
	var res coherence.Result
	var lat sim.Time = -1
	start := k.Now()
	e.Access(node, addr, write, func(at sim.Time, r coherence.Result) {
		res = r
		lat = at - start
	})
	k.Run()
	if lat < 0 {
		panic("access never completed")
	}
	return res, lat
}

func TestHit(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x1000, 1)
	access(k, e, 0, 0x1000, false)
	res, lat := access(k, e, 0, 0x1000, false)
	if !res.Hit || lat != 0 {
		t.Fatalf("res=%+v lat=%v, want immediate hit", res, lat)
	}
}

func TestRemoteCleanMissCostsSixCyclesPlusMemory(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x1000, 2)
	res, lat := access(k, e, 0, 0x1000, false)
	if res.Txn != coherence.ReadMissClean || res.Local {
		t.Fatalf("res = %+v, want remote clean miss", res)
	}
	// Unloaded: request (2 cy) + memory (140) + response (4 cy); 20 ns
	// cycles.
	want := 2*20*sim.Nanosecond + memory.BankTime + 4*20*sim.Nanosecond
	if lat != want {
		t.Fatalf("latency = %v, want %v", lat, want)
	}
}

func TestLocalCleanReadMissSkipsBus(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x2000, 3)
	res, lat := access(k, e, 3, 0x2000, false)
	if !res.Local {
		t.Fatalf("res = %+v, want local", res)
	}
	if lat != memory.BankTime {
		t.Fatalf("latency = %v, want 140ns", lat)
	}
	if e.Bus().Tenures(bus.Request) != 0 {
		t.Fatal("local read miss used the bus")
	}
}

func TestWriteMissInvalidatesSnoopers(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x3000, 1)
	access(k, e, 0, 0x3000, false)
	access(k, e, 2, 0x3000, false)
	res, _ := access(k, e, 3, 0x3000, true)
	if res.Txn != coherence.WriteMissClean {
		t.Fatalf("txn = %v, want write-miss-clean", res.Txn)
	}
	for _, n := range []int{0, 2} {
		if e.Cache(n).State(0x3000) != coherence.Invalid {
			t.Fatalf("sharer %d survived write miss", n)
		}
	}
	if e.Cache(3).State(0x3000) != coherence.WriteExclusive {
		t.Fatal("writer not WE")
	}
}

func TestDirtyMissSuppliedByOwner(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x4000, 1)
	access(k, e, 2, 0x4000, true)
	res, lat := access(k, e, 0, 0x4000, false)
	if res.Txn != coherence.ReadMissDirty {
		t.Fatalf("txn = %v, want read-miss-dirty", res.Txn)
	}
	if e.Cache(2).State(0x4000) != coherence.ReadShared {
		t.Fatal("owner did not downgrade")
	}
	// Cache supply replaces the memory access; same unloaded total.
	want := 2*20*sim.Nanosecond + CacheSupplyTime + 4*20*sim.Nanosecond
	if lat != want {
		t.Fatalf("latency = %v, want %v", lat, want)
	}
}

func TestUpgradeCompletesAtRequestTenure(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x5000, 1)
	access(k, e, 0, 0x5000, false)
	access(k, e, 2, 0x5000, false)
	res, lat := access(k, e, 0, 0x5000, true)
	if res.Txn != coherence.Invalidation {
		t.Fatalf("txn = %v, want invalidation", res.Txn)
	}
	if lat != 2*20*sim.Nanosecond {
		t.Fatalf("upgrade latency = %v, want one request tenure (40ns)", lat)
	}
	if e.Cache(2).State(0x5000) != coherence.Invalid {
		t.Fatal("sharer survived upgrade")
	}
}

func TestDirtyEvictionUsesWriteBackTenure(t *testing.T) {
	k, e := testEngine(t)
	const a, b = 0x1_0000_0000, 0x1_0002_0000
	e.HomeMap().Place(a, 1)
	e.HomeMap().Place(b, 1)
	access(k, e, 0, a, true)
	access(k, e, 0, b, false)
	k.Run()
	if e.WriteBacks != 1 {
		t.Fatalf("WriteBacks = %d, want 1", e.WriteBacks)
	}
	if e.Bus().Tenures(bus.WriteBack) != 1 {
		t.Fatalf("WriteBack tenures = %d, want 1", e.Bus().Tenures(bus.WriteBack))
	}
	res, _ := access(k, e, 2, a, false)
	if res.Txn != coherence.ReadMissClean {
		t.Fatalf("read after write-back = %+v, want clean miss", res)
	}
}

func TestBusContentionSerializesMisses(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x6000, 1)
	e.HomeMap().Place(0x7000, 1)
	var done []sim.Time
	k.At(0, func() {
		e.Access(0, 0x6000, false, func(at sim.Time, _ coherence.Result) { done = append(done, at) })
		e.Access(2, 0x7000, false, func(at sim.Time, _ coherence.Result) { done = append(done, at) })
	})
	k.Run()
	if len(done) != 2 {
		t.Fatalf("completions = %d, want 2", len(done))
	}
	if done[1] == done[0] {
		t.Fatal("contending misses completed simultaneously")
	}
	if u := e.Bus().Utilization(); u <= 0 {
		t.Fatal("bus shows no utilization")
	}
}

func TestConsistencyUnderRandomTraffic(t *testing.T) {
	k := sim.NewKernel()
	b := bus.New(k, bus.Config{Nodes: 8})
	e := New(b, Options{Seed: 5})
	rng := sim.NewRand(77)
	blocks := []uint64{0x1000, 0x2000, 0x3000, 0x4000}
	for i := 0; i < 300; i++ {
		node := rng.Intn(8)
		blk := blocks[rng.Intn(len(blocks))]
		write := rng.Bool(0.4)
		e.Access(node, blk, write, func(sim.Time, coherence.Result) {})
		k.Run()
		for _, blk := range blocks {
			writers, holders := 0, 0
			for n := 0; n < 8; n++ {
				switch e.Cache(n).State(blk) {
				case coherence.WriteExclusive:
					writers++
					holders++
				case coherence.ReadShared:
					holders++
				}
			}
			if writers > 1 {
				t.Fatalf("block %#x has %d writers", blk, writers)
			}
			if writers == 1 && holders > 1 {
				t.Fatalf("block %#x: WE coexists with other copies", blk)
			}
		}
	}
}
