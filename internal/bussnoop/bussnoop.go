// Package bussnoop implements the baseline of Section 4.3: a 3-state
// write-invalidate snooping protocol on a pipelined split-transaction
// bus (FutureBus+-like), with the physical shared memory partitioned
// among the processing nodes exactly as in the ring systems. The
// address tenure of every miss and invalidation is broadcast and
// snooped by all caches; the data returns in a separate response
// tenure, for the paper's minimum of six bus cycles per remote miss
// plus arbitration and the 140 ns memory access.
package bussnoop

import (
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/memory"
	"repro/internal/sim"
)

// CacheSupplyTime is the dirty owner's fetch time for a cache-to-cache
// transfer (see the snoop package for the rationale).
const CacheSupplyTime = memory.BankTime

// Options configures an Engine.
type Options struct {
	// Cache is the per-node cache geometry (zero: paper defaults).
	Cache cache.Config
	// PageBytes is the home-placement granularity; default 4096.
	PageBytes int
	// Seed drives the random page-to-home placement.
	Seed uint64
	// Home, when non-nil, supplies a pre-built page-to-home placement
	// (e.g. one with private-data hints); PageBytes and Seed are then
	// ignored.
	Home *memory.HomeMap
}

func (o *Options) fill() {
	if o.PageBytes == 0 {
		o.PageBytes = 4096
	}
}

// blockMeta is the dirty bit and owner kept at the home memory.
type blockMeta struct {
	dirty bool
	owner int
}

// Engine is a snooping coherence engine over a split-transaction bus.
type Engine struct {
	k      *sim.Kernel
	bus    *bus.Bus
	caches []*cache.Cache
	banks  []*memory.Bank
	home   *memory.HomeMap
	meta   map[uint64]*blockMeta

	// WriteBacks counts dirty-eviction transfers.
	WriteBacks uint64
	wbByNode   []uint64
}

// WriteBacksOf returns the write-backs caused by node's own evictions;
// the core's per-processor warmup gating reads it.
func (e *Engine) WriteBacksOf(node int) uint64 { return e.wbByNode[node] }

// New returns a bus snooping engine over b.
func New(b *bus.Bus, opts Options) *Engine {
	opts.fill()
	k := b.Kernel()
	n := b.Geo.Nodes
	e := &Engine{
		k:      k,
		bus:    b,
		caches: make([]*cache.Cache, n),
		banks:  make([]*memory.Bank, n),
		home:   homeMapFor(n, opts),
		meta:   make(map[uint64]*blockMeta),
	}
	e.wbByNode = make([]uint64, n)
	for i := 0; i < n; i++ {
		e.caches[i] = cache.New(opts.Cache)
		e.banks[i] = memory.NewBank(k, "mem")
	}
	return e
}

// Bus returns the underlying split-transaction bus.
func (e *Engine) Bus() *bus.Bus { return e.bus }

// Cache returns node's cache.
func (e *Engine) Cache(node int) *cache.Cache { return e.caches[node] }

// HomeMap returns the page-to-home placement.
func (e *Engine) HomeMap() *memory.HomeMap { return e.home }

func (e *Engine) metaFor(block uint64) *blockMeta {
	m := e.meta[block]
	if m == nil {
		m = &blockMeta{owner: -1}
		e.meta[block] = m
	}
	return m
}

// Access performs one data reference for node; done fires at completion.
func (e *Engine) Access(node int, addr uint64, write bool, done func(at sim.Time, res coherence.Result)) {
	c := e.caches[node]
	block := c.BlockAddr(addr)
	switch c.Lookup(addr, write) {
	case cache.Hit:
		done(e.k.Now(), coherence.Result{Hit: true})
	case cache.MissRead:
		e.miss(node, block, false, done)
	case cache.MissWrite:
		e.miss(node, block, true, done)
	case cache.Upgrade:
		e.upgrade(node, block, done)
	}
}

// fill installs a block, transferring any dirty victim home.
func (e *Engine) fill(node int, block uint64, st coherence.State) {
	if v := e.caches[node].Fill(block, st); v.Valid && v.Dirty {
		e.writeBack(node, v.Block)
	}
}

// writeBack moves a dirty block home, off the critical path.
func (e *Engine) writeBack(node int, block uint64) {
	e.WriteBacks++
	e.wbByNode[node]++
	h := e.home.Home(block)
	land := func(sim.Time) {
		m := e.metaFor(block)
		if m.dirty && m.owner == node {
			m.dirty = false
		}
		e.banks[h].Access(nil)
	}
	if h == node {
		land(e.k.Now())
		return
	}
	e.bus.Transact(node, bus.WriteBack, nil, land)
}

// miss services a read or write miss.
func (e *Engine) miss(node int, block uint64, write bool, done func(sim.Time, coherence.Result)) {
	m := e.metaFor(block)
	h := e.home.Home(block)
	dirtyRemote := m.dirty && m.owner != node

	// A read miss on a clean block homed here never touches the bus.
	if h == node && !dirtyRemote && !write {
		e.banks[h].Access(func() {
			e.fill(node, block, coherence.ReadShared)
			done(e.k.Now(), coherence.Result{Txn: coherence.ReadMissClean, Local: true})
		})
		return
	}

	txn := coherence.ReadMissClean
	switch {
	case write && dirtyRemote:
		txn = coherence.WriteMissDirty
	case write:
		txn = coherence.WriteMissClean
	case dirtyRemote:
		txn = coherence.ReadMissDirty
	}
	responder := h
	if dirtyRemote {
		responder = m.owner
	}

	// Address tenure: broadcast and snooped.
	e.bus.Transact(node, bus.Request,
		func(snooper int, _ sim.Time) {
			if write {
				e.caches[snooper].Invalidate(block)
			} else if snooper == responder && dirtyRemote {
				e.caches[snooper].Downgrade(block)
			}
		},
		func(sim.Time) {
			// Fetch at the responder, then the data tenure.
			deliver := func() {
				e.bus.Transact(responder, bus.Response, nil, func(at sim.Time) {
					st := coherence.ReadShared
					if write {
						st = coherence.WriteExclusive
					}
					e.fill(node, block, st)
					mm := e.metaFor(block)
					if write {
						mm.dirty = true
						mm.owner = node
					} else if dirtyRemote {
						mm.dirty = false
					}
					done(at, coherence.Result{Txn: txn})
				})
			}
			if dirtyRemote {
				e.k.After(CacheSupplyTime, deliver)
			} else {
				e.banks[responder].Access(deliver)
			}
		})
}

// upgrade services an invalidation: the address tenure alone grants
// write permission once every snooper has seen it.
func (e *Engine) upgrade(node int, block uint64, done func(sim.Time, coherence.Result)) {
	e.bus.Transact(node, bus.Request,
		func(snooper int, _ sim.Time) {
			e.caches[snooper].Invalidate(block)
		},
		func(at sim.Time) {
			if !e.caches[node].Upgrade(block) {
				e.fill(node, block, coherence.WriteExclusive)
			}
			m := e.metaFor(block)
			m.dirty = true
			m.owner = node
			done(at, coherence.Result{Txn: coherence.Invalidation})
		})
}

// homeMapFor returns the configured home map, or builds the default
// seeded-random page placement.
func homeMapFor(n int, opts Options) *memory.HomeMap {
	if opts.Home != nil {
		return opts.Home
	}
	return memory.NewHomeMap(n, opts.PageBytes, sim.NewRand(opts.Seed))
}

// HasBlock reports whether node currently caches the block containing
// addr in a readable state (RS or WE). The core's write-buffer model
// uses it to decide whether a load can bypass an outstanding store.
func (e *Engine) HasBlock(node int, addr uint64) bool {
	c := e.caches[node]
	return c.State(c.BlockAddr(addr)) != coherence.Invalid
}
