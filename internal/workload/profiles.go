// Package workload synthesizes multiprocessor reference streams that
// stand in for the paper's trace inputs: the SPLASH programs MP3D,
// WATER and CHOLESKY (8/16/32 processors, CacheMire traces) and the
// MIT 64-processor FORTRAN traces FFT, WEATHER and SIMPLE.
//
// The original tapes are not available, so each benchmark is described
// by a Profile carrying the Table 2 statistics (reference mix, write
// fractions, miss rates) plus a sharing-pattern knob (the migratory
// fraction) chosen so that the protocol-level event mixes — clean
// vs dirty misses, invalidations finding sharers, 1- vs 2-traversal
// transactions — land near the paper's Table 1 and Figure 5. The
// generator then produces per-CPU streams whose statistics converge to
// the profile; everything downstream (protocols, interconnects,
// analytical models) consumes only those statistics, which is why the
// substitution preserves the paper's conclusions (see DESIGN.md).
package workload

import "fmt"

// Profile describes one benchmark at one system size.
type Profile struct {
	// Name is the benchmark name, e.g. "MP3D".
	Name string
	// CPUs is the processor count the profile was measured at.
	CPUs int

	// InstrPerData is the ratio of instruction fetches to data
	// references.
	InstrPerData float64
	// PrivateFrac is the fraction of data references that touch
	// private data.
	PrivateFrac float64
	// PrivateWriteFrac is the write fraction among private references.
	PrivateWriteFrac float64
	// SharedWriteFrac is the write fraction among shared references.
	SharedWriteFrac float64

	// TotalMissRate and SharedMissRate are the Table 2 targets (128 KB
	// direct-mapped caches, 16-byte blocks).
	TotalMissRate  float64
	SharedMissRate float64

	// MigratoryFrac is the fraction of shared references directed at
	// migratory (read-modify-write, passed-around) blocks; the rest go
	// to a large read-mostly pool. This is the knob that sets the
	// dirty-miss and multi-traversal shares (Table 1, Figure 5).
	MigratoryFrac float64

	// PaperDataRefsM / PaperInstrRefsM are the Table 2 trace sizes in
	// millions of references, kept for reporting.
	PaperDataRefsM  float64
	PaperInstrRefsM float64
}

// PrivateMissRate returns the miss rate of private references implied
// by the Table 2 totals: total misses minus shared misses, over
// private references.
func (p Profile) PrivateMissRate() float64 {
	priv := p.PrivateFrac
	shared := 1 - priv
	r := (p.TotalMissRate - p.SharedMissRate*shared) / priv
	if r < 0 {
		return 0
	}
	return r
}

// String identifies the profile as "NAME/CPUS".
func (p Profile) String() string { return fmt.Sprintf("%s/%d", p.Name, p.CPUs) }

// mk builds a profile from the raw Table 2 row: data and instruction
// reference counts (millions), private and shared reference counts
// (millions) with their write fractions, and the two miss rates.
func mk(name string, cpus int, dataM, instrM, privM, privW, shM, shW, totMR, shMR, migratory float64) Profile {
	return Profile{
		Name:             name,
		CPUs:             cpus,
		InstrPerData:     instrM / dataM,
		PrivateFrac:      privM / (privM + shM),
		PrivateWriteFrac: privW,
		SharedWriteFrac:  shW,
		TotalMissRate:    totMR,
		SharedMissRate:   shMR,
		MigratoryFrac:    migratory,
		PaperDataRefsM:   dataM,
		PaperInstrRefsM:  instrM,
	}
}

// profiles is Table 2 transcribed, one row per benchmark × size, plus
// the migratory-fraction calibration. Migratory fractions are chosen so
// the directory protocol's miss mix approaches Table 1 / Figure 5:
// MP3D and FFT show substantial read-write sharing (large 1-cycle-dirty
// + 2-cycle shares), CHOLESKY/WEATHER/SIMPLE little, WATER in between.
var profiles = []Profile{
	mk("MP3D", 8, 3.76, 7.51, 2.48, 0.22, 1.27, 0.33, 0.0329, 0.0944, 0.30),
	mk("MP3D", 16, 3.94, 8.23, 2.50, 0.22, 1.43, 0.30, 0.0454, 0.1217, 0.28),
	mk("MP3D", 32, 4.64, 11.16, 2.51, 0.22, 2.08, 0.21, 0.1655, 0.3574, 0.26),
	mk("WATER", 8, 11.05, 25.89, 9.54, 0.18, 1.50, 0.07, 0.0021, 0.0138, 0.38),
	mk("WATER", 16, 11.36, 27.15, 9.55, 0.18, 1.81, 0.06, 0.0032, 0.0182, 0.36),
	mk("WATER", 32, 11.60, 28.12, 9.56, 0.18, 2.03, 0.06, 0.0073, 0.0382, 0.34),
	mk("CHOLESKY", 8, 6.97, 15.00, 5.29, 0.21, 1.62, 0.14, 0.0288, 0.1061, 0.17),
	mk("CHOLESKY", 16, 8.91, 21.26, 6.27, 0.20, 2.55, 0.09, 0.0612, 0.1896, 0.15),
	mk("CHOLESKY", 32, 13.75, 37.84, 8.21, 0.18, 5.33, 0.05, 0.1947, 0.4671, 0.10),
	mk("FFT", 64, 4.31, 3.12, 3.28, 0.27, 1.03, 0.50, 0.0685, 0.2612, 0.42),
	mk("WEATHER", 64, 15.63, 13.64, 13.11, 0.16, 2.52, 0.19, 0.0525, 0.3078, 0.10),
	mk("SIMPLE", 64, 14.02, 11.59, 9.94, 0.35, 4.07, 0.11, 0.1597, 0.5416, 0.10),
}

// privateProfiles is the PRIVATE family: synthetic all-private
// workloads (no shared data, no migration) used by the parallel
// execution mode's covered class and its scaling benchmarks. The mix
// approximates a Table 2 private-reference column — ~2 ifetches per
// data reference, a 5% private miss rate — at ring-scale CPU counts.
// They are deliberately NOT part of Profiles(): the Table 2
// enumeration that the calibration suites and analytical-model
// comparisons iterate must keep exactly the paper's rows.
var privateProfiles = []Profile{
	mkPrivate(8), mkPrivate(16), mkPrivate(32), mkPrivate(64),
}

// mkPrivate builds the PRIVATE profile at one CPU count. PrivateFrac
// is exactly 1, so generated streams never touch shared regions — the
// property the parallel partitioner keys on (the directory protocol
// then never crosses node boundaries). CPU counts stop at 64, the
// directory presence-bitmap width.
func mkPrivate(cpus int) Profile {
	return Profile{
		Name:             "PRIVATE",
		CPUs:             cpus,
		InstrPerData:     2.0,
		PrivateFrac:      1,
		PrivateWriteFrac: 0.25,
		TotalMissRate:    0.05,
		SharedMissRate:   0,
		MigratoryFrac:    0,
	}
}

// Profiles returns all benchmark profiles (Table 2, every row).
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// PrivateProfiles returns the synthetic PRIVATE family (see
// privateProfiles); not part of the Table 2 enumeration.
func PrivateProfiles() []Profile {
	out := make([]Profile, len(privateProfiles))
	copy(out, privateProfiles)
	return out
}

// SPLASHNames lists the SPLASH benchmarks evaluated at 8/16/32 CPUs.
func SPLASHNames() []string { return []string{"MP3D", "WATER", "CHOLESKY"} }

// MITNames lists the 64-CPU benchmarks.
func MITNames() []string { return []string{"FFT", "WEATHER", "SIMPLE"} }

// ProfileFor returns the profile for a benchmark at a system size,
// searching Table 2 and the PRIVATE family.
func ProfileFor(name string, cpus int) (Profile, bool) {
	for _, p := range profiles {
		if p.Name == name && p.CPUs == cpus {
			return p, true
		}
	}
	for _, p := range privateProfiles {
		if p.Name == name && p.CPUs == cpus {
			return p, true
		}
	}
	return Profile{}, false
}

// MustProfile is ProfileFor that panics on unknown profiles; for use in
// experiment drivers with hard-coded names.
func MustProfile(name string, cpus int) Profile {
	p, ok := ProfileFor(name, cpus)
	if !ok {
		panic(fmt.Sprintf("workload: no profile %s/%d", name, cpus))
	}
	return p
}
