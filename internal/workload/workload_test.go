package workload

import (
	"math"
	"testing"

	"repro/internal/coherence"
	"repro/internal/trace"
)

func TestAllTable2ProfilesPresent(t *testing.T) {
	want := map[string][]int{
		"MP3D":     {8, 16, 32},
		"WATER":    {8, 16, 32},
		"CHOLESKY": {8, 16, 32},
		"FFT":      {64},
		"WEATHER":  {64},
		"SIMPLE":   {64},
	}
	n := 0
	for name, sizes := range want {
		for _, cpus := range sizes {
			if _, ok := ProfileFor(name, cpus); !ok {
				t.Errorf("missing profile %s/%d", name, cpus)
			}
			n++
		}
	}
	if len(Profiles()) != n {
		t.Errorf("Profiles() has %d entries, want %d", len(Profiles()), n)
	}
}

func TestProfileDerivedValues(t *testing.T) {
	p := MustProfile("MP3D", 16)
	// instr/data = 8.23/3.94 ≈ 2.089
	if math.Abs(p.InstrPerData-2.089) > 0.01 {
		t.Errorf("InstrPerData = %v, want ≈2.089", p.InstrPerData)
	}
	// private fraction = 2.50/3.93 ≈ 0.636
	if math.Abs(p.PrivateFrac-0.636) > 0.01 {
		t.Errorf("PrivateFrac = %v, want ≈0.636", p.PrivateFrac)
	}
	// Implied private miss rate ≈ 0.19 %.
	pm := p.PrivateMissRate()
	if pm < 0.001 || pm > 0.004 {
		t.Errorf("PrivateMissRate = %v, want ≈0.002", pm)
	}
}

func TestPrivateMissRateNeverNegative(t *testing.T) {
	for _, p := range Profiles() {
		if p.PrivateMissRate() < 0 {
			t.Errorf("%v: negative private miss rate", p)
		}
		if p.SharedMissRate <= 0 || p.SharedMissRate >= 1 {
			t.Errorf("%v: shared miss rate %v out of (0,1)", p, p.SharedMissRate)
		}
	}
}

func TestMustProfilePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustProfile on unknown did not panic")
		}
	}()
	MustProfile("LINPACK", 8)
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := Config{Profile: MustProfile("MP3D", 8), DataRefsPerCPU: 500, Seed: 42}
	a := Materialize("a", NewGenerator(cfg))
	b := Materialize("b", NewGenerator(cfg))
	if a.TotalRefs() != b.TotalRefs() {
		t.Fatal("same-seed generators produced different lengths")
	}
	for cpu := range a.Streams {
		for i := range a.Streams[cpu] {
			if a.Streams[cpu][i] != b.Streams[cpu][i] {
				t.Fatalf("cpu %d ref %d differs", cpu, i)
			}
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	p := MustProfile("MP3D", 8)
	a := Materialize("a", NewGenerator(Config{Profile: p, DataRefsPerCPU: 500, Seed: 1}))
	b := Materialize("b", NewGenerator(Config{Profile: p, DataRefsPerCPU: 500, Seed: 2}))
	same := 0
	for i := range a.Streams[0] {
		if i < len(b.Streams[0]) && a.Streams[0][i].Addr == b.Streams[0][i].Addr {
			same++
		}
	}
	if same == len(a.Streams[0]) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGeneratorMatchesProfileMix(t *testing.T) {
	// The generated stream statistics must converge to the Table 2
	// reference mix within a few percent.
	for _, name := range []string{"MP3D", "WATER"} {
		p := MustProfile(name, 16)
		g := NewGenerator(Config{Profile: p, DataRefsPerCPU: 4000, Seed: 7})
		tr := Materialize(name, g)
		s := trace.Measure(tr)

		ipd := float64(s.InstrRefs) / float64(s.DataRefs)
		if math.Abs(ipd-p.InstrPerData)/p.InstrPerData > 0.05 {
			t.Errorf("%s: instr/data = %v, want %v", name, ipd, p.InstrPerData)
		}
		pf := float64(s.PrivateRefs) / float64(s.DataRefs)
		if math.Abs(pf-p.PrivateFrac) > 0.03 {
			t.Errorf("%s: private frac = %v, want %v", name, pf, p.PrivateFrac)
		}
		if math.Abs(s.PrivateWriteFrac()-p.PrivateWriteFrac) > 0.03 {
			t.Errorf("%s: private write frac = %v, want %v", name, s.PrivateWriteFrac(), p.PrivateWriteFrac)
		}
		if math.Abs(s.SharedWriteFrac()-p.SharedWriteFrac) > 0.05 {
			t.Errorf("%s: shared write frac = %v, want %v", name, s.SharedWriteFrac(), p.SharedWriteFrac)
		}
	}
}

func TestGeneratorBudget(t *testing.T) {
	p := MustProfile("CHOLESKY", 8)
	g := NewGenerator(Config{Profile: p, DataRefsPerCPU: 777, Seed: 3})
	tr := Materialize("c", g)
	for cpu, stream := range tr.Streams {
		data := 0
		for _, r := range stream {
			if r.Op != coherence.Ifetch {
				data++
			}
		}
		if data != 777 {
			t.Fatalf("cpu %d issued %d data refs, want 777", cpu, data)
		}
	}
	// Exhausted stream stays exhausted.
	if _, ok := g.Next(0); ok {
		t.Fatal("generator yielded refs past its budget")
	}
}

func TestGeneratorAddressRegionsDisjoint(t *testing.T) {
	p := MustProfile("FFT", 64)
	g := NewGenerator(Config{Profile: p, DataRefsPerCPU: 200, Seed: 9})
	tr := Materialize("f", g)
	for _, stream := range tr.Streams {
		for _, r := range stream {
			switch {
			case r.Op == coherence.Ifetch:
				if r.Addr < ifetchBase || r.Addr >= privateBase {
					t.Fatalf("ifetch address %#x outside its region", r.Addr)
				}
			case r.Shared:
				if r.Addr < readMostBase {
					t.Fatalf("shared address %#x below shared region", r.Addr)
				}
			default:
				if r.Addr < privateBase || r.Addr >= readMostBase {
					t.Fatalf("private address %#x outside its region", r.Addr)
				}
			}
		}
	}
}

func TestGeneratorBlockAlignment(t *testing.T) {
	p := MustProfile("MP3D", 8)
	g := NewGenerator(Config{Profile: p, DataRefsPerCPU: 300, Seed: 5, BlockBytes: 32})
	tr := Materialize("m", g)
	for _, stream := range tr.Streams {
		for _, r := range stream {
			if r.Op != coherence.Ifetch && r.Addr%32 != 0 {
				t.Fatalf("data address %#x not 32-byte aligned", r.Addr)
			}
		}
	}
}

func TestSharedBurstScalesInverselyWithMissRate(t *testing.T) {
	hi := NewGenerator(Config{Profile: MustProfile("MP3D", 32), DataRefsPerCPU: 10}) // 35.7 % target
	lo := NewGenerator(Config{Profile: MustProfile("WATER", 8), DataRefsPerCPU: 10}) // 1.38 % target
	if hi.SharedBurst() >= lo.SharedBurst() {
		t.Fatalf("burst(MP3D32)=%v should be < burst(WATER8)=%v",
			hi.SharedBurst(), lo.SharedBurst())
	}
	scaled := NewGenerator(Config{Profile: MustProfile("WATER", 8), DataRefsPerCPU: 10, SharedBurstScale: 2})
	if math.Abs(scaled.SharedBurst()-2*lo.SharedBurst()) > 1e-9 {
		t.Fatal("SharedBurstScale not applied linearly")
	}
}

func TestTraceSourceRoundTrip(t *testing.T) {
	p := MustProfile("MP3D", 8)
	tr := Materialize("m", NewGenerator(Config{Profile: p, DataRefsPerCPU: 100, Seed: 11}))
	src := NewTraceSource(tr)
	if src.NumCPUs() != 8 {
		t.Fatalf("NumCPUs = %d, want 8", src.NumCPUs())
	}
	for cpu := 0; cpu < src.NumCPUs(); cpu++ {
		for i := 0; ; i++ {
			r, ok := src.Next(cpu)
			if !ok {
				if i != len(tr.Streams[cpu]) {
					t.Fatalf("cpu %d replayed %d refs, want %d", cpu, i, len(tr.Streams[cpu]))
				}
				break
			}
			if r != tr.Streams[cpu][i] {
				t.Fatalf("cpu %d ref %d mismatch", cpu, i)
			}
		}
	}
}
