package workload

import (
	"repro/internal/coherence"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Source is a per-processor reference stream. The simulators are
// execution-driven: each processor pulls its next reference when the
// previous one completes, which is exactly the paper's blocking
// processor model.
type Source interface {
	// NumCPUs returns the number of processor streams.
	NumCPUs() int
	// Next returns cpu's next reference; ok is false when the stream
	// is exhausted.
	Next(cpu int) (r trace.Ref, ok bool)
}

// Address-space layout. All regions are disjoint; block alignment is
// the generator's BlockBytes.
const (
	ifetchBase    = 0x0000_1000_0000
	privateBase   = 0x1000_0000_0000
	readMostBase  = 0x2000_0000_0000
	migratoryBase = 0x3000_0000_0000
	wideBase      = 0x4000_0000_0000

	// privateHotBlocks is each CPU's resident private working set; it
	// fits comfortably in a 128 KB cache so steady-state private hits
	// come from here, and it is small enough that the cold-start
	// transient fits inside a simulation's warmup window. Cold
	// (missing) private references walk fresh addresses beyond it.
	privateHotBlocks = 256
	// readMostlyBlocks is the widely-shared pool; much larger than a
	// cache so revisits usually miss.
	readMostlyBlocks = 1 << 16
	// readMostlyHotBlocks is the popular subset that absorbs half the
	// read-mostly visits: blocks genuinely cached by many processors,
	// so that writes to them invalidate real sharers (the paper's
	// invalidations overwhelmingly find the block cached elsewhere —
	// Table 1's 87 % two-traversal invalidations).
	readMostlyHotBlocks = 128
	// readMostlyHotFrac is the share of read-mostly visits that go to
	// the popular subset.
	readMostlyHotFrac = 0.5
	// migratoryBlocksPerCPU sizes and staggers the migratory pool.
	// Migratory blocks model data passed from processor to processor
	// in read-modify-write bursts: each CPU sweeps the pool starting
	// migratoryBlocksPerCPU positions after its neighbour, so a block's
	// next visitor arrives while the previous writer still holds it
	// write-exclusive (the source of the paper's dirty misses and
	// sharer-carrying invalidations) yet two CPUs rarely burst the same
	// block at once.
	migratoryBlocksPerCPU = 6
	// Hot regions are laid out so that, for the default 128 KB / 16 B
	// direct-mapped cache (8192 sets), each one occupies its own set
	// range: read-mostly-hot in sets 0..127, private hot in 512..767,
	// wide cells near 896, migratory from 1024 up. Address bits above
	// bit 17 select the page (for home placement) without touching the
	// set index, so pages spread while sets stay disjoint. Without
	// this, systematic cross-region conflicts evict dirty hot blocks
	// and swamp the coherence mix with eviction artifacts that the
	// paper's multi-megabyte working sets did not have.
	migratorySetBase = 1024
	wideSetBase      = 896
	privateSetBase   = 512
	regionPageShift  = 17

	// wideBlocks models the handful of barrier/flag/global cells every
	// processor keeps cached: reads accumulate a machine-wide sharing
	// set, and the occasional write invalidates it — the events behind
	// the paper's many-sharer invalidations (Table 1's multi-traversal
	// linked-list purges).
	wideBlocks = 4
	// wideFrac is the share of shared references touching those cells.
	wideFrac = 0.06
)

// HomeHint maps generator addresses to their natural home node:
// private data and instructions live on the issuing processor's node,
// as an OS would place them; shared pages get no hint (the paper
// allocates them randomly). The second result is false when the
// address carries no placement hint.
func HomeHint(addr uint64) (cpu int, ok bool) {
	switch {
	case addr >= privateBase && addr < readMostBase:
		return int((addr - privateBase) >> 28), true
	case addr >= ifetchBase && addr < privateBase:
		return int((addr - ifetchBase) >> 20), true
	}
	return 0, false
}

// Config parameterizes a Generator.
type Config struct {
	// Profile is the benchmark description.
	Profile Profile
	// DataRefsPerCPU is the number of data references each processor
	// issues; instruction fetches are added on top per InstrPerData.
	DataRefsPerCPU int
	// BlockBytes is the cache block size used for alignment; default 16.
	BlockBytes int
	// Seed selects the deterministic random streams.
	Seed uint64
	// SharedBurstScale multiplies the shared re-reference burst length;
	// the calibration pass (core.Calibrate) sets it so the measured
	// shared miss rate matches the profile target. Default 1.
	SharedBurstScale float64
	// MissProbEstimate is the assumed probability that the first
	// reference of a shared burst misses; it seeds the burst-length
	// choice before calibration. Default 0.9.
	MissProbEstimate float64
	// Clusters partitions the processors for the hierarchical-ring
	// extension; with ClusterAffinity > 0, that fraction of migratory
	// visits stays within the issuing processor's cluster partition of
	// the pool (data passed around a working group rather than the
	// whole machine). Zero values disable clustering.
	Clusters        int
	ClusterAffinity float64
	// ContextSwitchRefs, when positive, context-switches each processor
	// every that many data references: a fresh process arrives with its
	// own private working set (initialized by stores, like any process
	// start), cooling the cache — the multitasking context the paper's
	// abstract frames the study in. Shared data is modeled as belonging
	// to the same parallel program across switches.
	ContextSwitchRefs int
}

func (c *Config) fill() {
	if c.BlockBytes == 0 {
		c.BlockBytes = 16
	}
	if c.DataRefsPerCPU == 0 {
		c.DataRefsPerCPU = 20000
	}
	if c.SharedBurstScale == 0 {
		c.SharedBurstScale = 1
	}
	if c.MissProbEstimate == 0 {
		c.MissProbEstimate = 0.9
	}
}

// Generator synthesizes per-CPU reference streams matching a Profile.
// It is deterministic for a given Config.
type Generator struct {
	cfg  Config
	cpus []*cpuState

	sharedBurst   float64 // mean refs per shared-block visit
	privateMiss   float64 // per-ref probability of a cold private block
	privWriteFrac float64 // steady-state private write prob (compensates the init sweep)
	migWriteFrac  float64 // write prob within migratory bursts
	roWriteFrac   float64 // write prob within read-mostly bursts
	migPool       int
}

// cpuState is one processor's stream state.
type cpuState struct {
	rng  *sim.Rand
	data int // data refs issued

	pendingIfetch int
	instrCarry    float64
	pc            uint64

	privHot   uint64 // rotating pointer into the hot set
	privSweep int    // completed sweeps over the hot set
	privCold  uint64 // next never-touched private block
	process   uint64 // current process (multitasking); offsets private space
	sinceCtx  int    // data refs since the last context switch

	curBlock uint64 // current shared block
	burst    int    // refs left on curBlock
	curMig   bool   // current block is migratory
	migVisit int    // migratory sweep position
	dataDue  bool   // ifetches already scheduled; next emission is the data ref
}

// NewGenerator returns a generator for the configuration.
func NewGenerator(cfg Config) *Generator {
	cfg.fill()
	p := cfg.Profile
	if p.CPUs <= 0 {
		panic("workload: profile has no CPUs")
	}
	g := &Generator{cfg: cfg}

	// Burst length so that (miss prob per visit)/(refs per visit)
	// approximates the target shared miss rate.
	target := p.SharedMissRate
	if target <= 0 {
		target = 0.001
	}
	g.sharedBurst = cfg.SharedBurstScale * cfg.MissProbEstimate / target
	if g.sharedBurst < 1 {
		g.sharedBurst = 1
	}
	g.privateMiss = p.PrivateMissRate()

	// The initialization sweep over the private hot set is all stores;
	// lower the steady-state write probability so the stream's overall
	// private write fraction still matches the Table 2 target.
	expPriv := float64(cfg.DataRefsPerCPU) * p.PrivateFrac
	g.privWriteFrac = p.PrivateWriteFrac
	if expPriv > privateHotBlocks+1 {
		g.privWriteFrac = (p.PrivateWriteFrac*expPriv - privateHotBlocks) / (expPriv - privateHotBlocks)
		if g.privWriteFrac < 0 {
			g.privWriteFrac = 0
		}
	}

	// Split the shared write fraction between the two pools: the
	// read-mostly pool gets a moderate write rate concentrated on its
	// popular subset (those writes are the wide, sharer-finding
	// invalidations), the migratory pool absorbs the rest.
	g.roWriteFrac = 0.4 * p.SharedWriteFrac
	if p.MigratoryFrac > 0 {
		g.migWriteFrac = (p.SharedWriteFrac - (1-p.MigratoryFrac)*g.roWriteFrac) / p.MigratoryFrac
		if g.migWriteFrac > 1 {
			g.migWriteFrac = 1
		}
		if g.migWriteFrac < 0 {
			g.migWriteFrac = 0
		}
	}
	g.migPool = migratoryBlocksPerCPU * p.CPUs

	root := sim.NewRand(cfg.Seed)
	g.cpus = make([]*cpuState, p.CPUs)
	for i := range g.cpus {
		g.cpus[i] = &cpuState{rng: root.Split(uint64(i))}
	}
	return g
}

// NumCPUs implements Source.
func (g *Generator) NumCPUs() int { return len(g.cpus) }

// Profile returns the generator's benchmark profile.
func (g *Generator) Profile() Profile { return g.cfg.Profile }

// SharedBurst returns the mean shared burst length in use (diagnostic
// for calibration).
func (g *Generator) SharedBurst() float64 { return g.sharedBurst }

// PrivateOnly reports whether the generated streams can never touch
// shared data: with PrivateFrac exactly 1 the shared-region paths are
// unreachable (Rand.Bool(1) consumes no randomness), every reference
// lands in the issuing CPU's disjoint private/ifetch regions, and each
// CPU's stream is a pure function of its own split RNG. The parallel
// partitioner keys its workload coverage check on this.
func (g *Generator) PrivateOnly() bool { return g.cfg.Profile.PrivateFrac >= 1 }

func (g *Generator) block(base, idx uint64) uint64 {
	return base + idx*uint64(g.cfg.BlockBytes)
}

// Next implements Source.
func (g *Generator) Next(cpu int) (trace.Ref, bool) {
	s := g.cpus[cpu]
	p := g.cfg.Profile

	if s.pendingIfetch > 0 {
		s.pendingIfetch--
		s.pc = (s.pc + 4) % 4096
		addr := uint64(ifetchBase) + uint64(cpu)<<20 + s.pc
		return trace.Ref{CPU: int32(cpu), Op: coherence.Ifetch, Addr: addr}, true
	}
	if s.data >= g.cfg.DataRefsPerCPU {
		return trace.Ref{}, false
	}

	// Schedule the instruction fetches that precede the next data ref,
	// once per data reference (dataDue guards against re-adding the
	// carry after the ifetches drain).
	if !s.dataDue {
		s.instrCarry += p.InstrPerData
		if n := int(s.instrCarry); n > 0 {
			s.instrCarry -= float64(n)
			s.pendingIfetch = n
			s.dataDue = true
			return g.Next(cpu) // emit the first ifetch now
		}
	}
	s.dataDue = false

	s.data++
	if n := g.cfg.ContextSwitchRefs; n > 0 {
		s.sinceCtx++
		if s.sinceCtx >= n {
			// A new process arrives: fresh private working set, to be
			// initialized by its first sweep.
			s.sinceCtx = 0
			s.process = (s.process + 1) % 64
			s.privHot = 0
			s.privSweep = 0
			s.privCold = 0
		}
	}
	if s.rng.Bool(p.PrivateFrac) {
		return g.privateRef(cpu, s), true
	}
	return g.sharedRef(cpu, s), true
}

func (g *Generator) privateRef(cpu int, s *cpuState) trace.Ref {
	var idx uint64
	if s.rng.Bool(g.privateMiss) {
		// A cold reference: walk into fresh private blocks, which are
		// guaranteed misses (and, once the hot set wraps, realistic
		// capacity evictions).
		idx = privateHotBlocks + s.privCold
		s.privCold++
	} else {
		s.privHot = (s.privHot + 1) % privateHotBlocks
		if s.privHot == 0 {
			s.privSweep++
		}
		idx = s.privHot
	}
	// The offset keeps the private hot set in its own cache-set range
	// (see the region layout note above); each process of a
	// multitasking CPU gets a disjoint 4 MB slice of the CPU's space.
	addr := uint64(privateBase) + uint64(cpu)<<28 + s.process<<22 +
		(idx+privateSetBase)*uint64(g.cfg.BlockBytes)
	op := coherence.Load
	// The first sweep over the hot set is the program's initialization:
	// stores, which install the blocks write-exclusive up front instead
	// of trickling read-then-write upgrades through the whole run.
	if s.privSweep == 0 || s.rng.Bool(g.privWriteFrac) {
		op = coherence.Store
	}
	return trace.Ref{CPU: int32(cpu), Op: op, Addr: addr}
}

func (g *Generator) sharedRef(cpu int, s *cpuState) trace.Ref {
	p := g.cfg.Profile
	if s.burst <= 0 {
		// Start a new block visit.
		s.curMig = false
		if s.rng.Bool(wideFrac) {
			// A barrier/flag cell: usually a read burst; occasionally
			// a single write that invalidates the machine-wide
			// sharing set. The write probability scales as ~1.5/CPUs
			// so a write finds most processors caching the cell.
			j := uint64(s.rng.Intn(wideBlocks))
			s.curBlock = wideBase + j<<regionPageShift + (wideSetBase+j)*uint64(g.cfg.BlockBytes)
			if s.rng.Bool(1.5 / float64(p.CPUs)) {
				s.burst = 1
				s.burst--
				return trace.Ref{CPU: int32(cpu), Op: coherence.Store, Shared: true, Addr: s.curBlock}
			}
			s.burst = s.rng.Geometric(g.sharedBurst)
			s.burst--
			return trace.Ref{CPU: int32(cpu), Op: coherence.Load, Shared: true, Addr: s.curBlock}
		}
		s.curMig = s.rng.Bool(p.MigratoryFrac)
		if s.curMig {
			// Staggered sweep: CPU c starts migratoryBlocksPerCPU
			// positions ahead of CPU c-1 and walks forward, so each
			// block migrates around the machine writer-to-writer. With
			// cluster affinity, the sweep (usually) stays within the
			// cluster's partition of the pool, so blocks migrate
			// around a working group instead of the whole machine.
			var idx uint64
			if g.cfg.Clusters > 1 && s.rng.Bool(g.cfg.ClusterAffinity) {
				per := g.migPool / g.cfg.Clusters
				cluster := cpu / (p.CPUs / g.cfg.Clusters)
				local := (cpu*migratoryBlocksPerCPU + s.migVisit) % per
				idx = uint64(cluster*per + local)
			} else {
				idx = uint64((cpu*migratoryBlocksPerCPU + s.migVisit) % g.migPool)
			}
			s.migVisit++
			s.curBlock = migratoryBase + idx<<regionPageShift +
				(migratorySetBase+idx)*uint64(g.cfg.BlockBytes)
		} else if s.rng.Bool(readMostlyHotFrac) {
			s.curBlock = g.block(readMostBase, uint64(s.rng.Intn(readMostlyHotBlocks)))
		} else {
			s.curBlock = g.block(readMostBase, uint64(s.rng.Intn(readMostlyBlocks)))
		}
		s.burst = s.rng.Geometric(g.sharedBurst)
	}
	s.burst--
	// Writes concentrate on genuinely shared blocks: migratory blocks
	// and the popular read-mostly subset. Cold read-mostly blocks are
	// nearly read-only, so invalidations almost always find sharers.
	var wf float64
	switch {
	case s.curMig:
		wf = g.migWriteFrac
	case s.curBlock < readMostBase+readMostlyHotBlocks*uint64(g.cfg.BlockBytes):
		wf = 1.9 * g.roWriteFrac
	default:
		wf = 0.1 * g.roWriteFrac
	}
	op := coherence.Load
	if s.rng.Bool(wf) {
		op = coherence.Store
	}
	return trace.Ref{CPU: int32(cpu), Op: op, Shared: true, Addr: s.curBlock}
}

// Materialize drains a Source into an in-memory trace (used by the
// tracegen tool and the Table 2 bench).
func Materialize(name string, src Source) *trace.Trace {
	t := &trace.Trace{Name: name, Streams: make([][]trace.Ref, src.NumCPUs())}
	for cpu := 0; cpu < src.NumCPUs(); cpu++ {
		for {
			r, ok := src.Next(cpu)
			if !ok {
				break
			}
			t.Streams[cpu] = append(t.Streams[cpu], r)
		}
	}
	return t
}

// TraceSource adapts an in-memory trace to the Source interface, for
// running recorded traces through the simulators.
type TraceSource struct {
	t   *trace.Trace
	pos []int
}

// NewTraceSource returns a Source reading from t.
func NewTraceSource(t *trace.Trace) *TraceSource {
	return &TraceSource{t: t, pos: make([]int, t.NumCPUs())}
}

// NumCPUs implements Source.
func (ts *TraceSource) NumCPUs() int { return ts.t.NumCPUs() }

// Next implements Source.
func (ts *TraceSource) Next(cpu int) (trace.Ref, bool) {
	if ts.pos[cpu] >= len(ts.t.Streams[cpu]) {
		return trace.Ref{}, false
	}
	r := ts.t.Streams[cpu][ts.pos[cpu]]
	ts.pos[cpu]++
	return r, true
}
