// Package bus models the baseline interconnect of Section 4.3: a
// pipelined split-transaction bus in the style of FutureBus+ (IEEE
// 896.x), 64 bits wide, clocked at 50 or 100 MHz, with the address
// phase snooped by every node.
//
// Transactions are split: a request (address) tenure and the matching
// response (data) tenure occupy the bus separately, so the bus is free
// for other traffic while memory is fetching. With the default
// geometry a remote miss costs the paper's minimum of six bus cycles —
// a 2-cycle request plus a 4-cycle response — excluding arbitration and
// memory access time.
package bus

import (
	"fmt"

	"repro/internal/sim"
)

// TenureKind classifies a bus tenure.
type TenureKind uint8

const (
	// Request is an address/command tenure (read miss, write miss, or
	// invalidation), snooped by every node.
	Request TenureKind = iota
	// Response is a data tenure returning one cache block.
	Response
	// WriteBack is a block transfer to memory off the critical path.
	WriteBack
	numTenures
)

// NumTenureKinds is the number of distinct tenure kinds.
const NumTenureKinds = int(numTenures)

// String names the tenure kind.
func (k TenureKind) String() string {
	switch k {
	case Request:
		return "request"
	case Response:
		return "response"
	case WriteBack:
		return "write-back"
	default:
		return fmt.Sprintf("TenureKind(%d)", uint8(k))
	}
}

// Arbitration selects the bus grant policy.
type Arbitration uint8

const (
	// FCFS grants tenures in request order — a fair baseline whose
	// aggregate behaviour matches any work-conserving arbiter.
	FCFS Arbitration = iota
	// RoundRobin rotates priority among nodes, as FutureBus+-class
	// arbiters do: after each grant the served node becomes the lowest
	// priority, so no node can capture consecutive grants while others
	// wait.
	RoundRobin
)

// Config describes a split-transaction bus.
type Config struct {
	// Nodes is the number of processors on the bus.
	Nodes int
	// ClockPS is the bus cycle time; the paper evaluates 20 ns
	// (50 MHz) and 10 ns (100 MHz) buses.
	ClockPS sim.Time
	// WidthBits is the data path width; default 64.
	WidthBits int
	// BlockBytes is the cache block size; default 16.
	BlockBytes int
	// Arbiter selects the grant policy; default FCFS.
	Arbiter Arbitration
}

// DefaultClock is the 50 MHz bus of Figure 6.
const DefaultClock = 20 * sim.Nanosecond

func (c *Config) fill() {
	if c.ClockPS == 0 {
		c.ClockPS = DefaultClock
	}
	if c.WidthBits == 0 {
		c.WidthBits = 64
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 16
	}
}

// Geometry holds the derived tenure costs.
type Geometry struct {
	Config
	// RequestCycles is the address tenure length (command + address).
	RequestCycles int
	// ResponseCycles is the data tenure length: a header cycle, the
	// data transfer, and a turnaround cycle.
	ResponseCycles int
	// WriteBackCycles is a block transfer without the turnaround.
	WriteBackCycles int
}

// NewGeometry computes tenure costs, applying defaults to zero fields.
func NewGeometry(cfg Config) Geometry {
	cfg.fill()
	if cfg.Nodes <= 0 {
		panic("bus: need at least one node")
	}
	if cfg.WidthBits <= 0 || cfg.BlockBytes*8%cfg.WidthBits != 0 {
		panic("bus: block size must be a whole number of bus words")
	}
	data := cfg.BlockBytes * 8 / cfg.WidthBits
	return Geometry{
		Config:          cfg,
		RequestCycles:   2,
		ResponseCycles:  1 + data + 1,
		WriteBackCycles: 1 + data,
	}
}

// TenureTime returns the bus occupancy of a tenure kind.
func (g *Geometry) TenureTime(k TenureKind) sim.Time {
	var cy int
	switch k {
	case Request:
		cy = g.RequestCycles
	case Response:
		cy = g.ResponseCycles
	case WriteBack:
		cy = g.WriteBackCycles
	default:
		panic("bus: unknown tenure kind")
	}
	return sim.Time(cy) * g.ClockPS
}

// MissCycles returns the minimum bus cycles consumed by one remote miss
// (request + response), the paper's "minimum of six".
func (g *Geometry) MissCycles() int { return g.RequestCycles + g.ResponseCycles }

// Bus is a live split-transaction bus attached to a simulation kernel.
type Bus struct {
	Geo Geometry
	// OnTenure, when non-nil, observes every granted tenure with its
	// kind, grant time and end time — the occupancy feed for the obs
	// tracer's bus timeline. The nil default costs serve one branch.
	OnTenure func(kind TenureKind, grant, end sim.Time)

	k   *sim.Kernel
	res *sim.Resource

	tenures   [numTenures]uint64
	waitSum   sim.Time
	grants    uint64
	snoopFree *snoopSweep // recycled snoop fan-outs (zero-alloc steady state)

	// Round-robin arbiter state.
	rrPending [][]pendingTenure
	rrBusy    bool
	rrLast    int
}

// pendingTenure is one queued request at the round-robin arbiter.
type pendingTenure struct {
	src   int
	kind  TenureKind
	snoop func(node int, at sim.Time)
	done  func(at sim.Time)
	since sim.Time
}

// New returns a bus with the given configuration attached to k.
func New(k *sim.Kernel, cfg Config) *Bus {
	g := NewGeometry(cfg)
	b := &Bus{Geo: g, k: k, res: sim.NewResource(k, "bus", 1)}
	if g.Arbiter == RoundRobin {
		b.rrPending = make([][]pendingTenure, g.Nodes)
		b.rrLast = g.Nodes - 1 // node 0 has first priority
	}
	return b
}

// Kernel returns the kernel the bus is attached to.
func (b *Bus) Kernel() *sim.Kernel { return b.k }

// ResetStats zeroes tenure counts, waits and utilization; subsequent
// figures cover only the window after the reset.
func (b *Bus) ResetStats() {
	b.tenures = [numTenures]uint64{}
	b.waitSum = 0
	b.grants = 0
	b.res.ResetStats()
}

// Transact arbitrates for the bus, holds it for the tenure, and then
// runs done. For Request tenures, snoop (if non-nil) fires at every
// node other than src at the grant instant — the address phase is
// broadcast. Arbitration is FIFO, a fair stand-in for the round-robin
// arbiter of real split-transaction buses.
func (b *Bus) Transact(src int, kind TenureKind, snoop func(node int, at sim.Time), done func(at sim.Time)) {
	if src < 0 || src >= b.Geo.Nodes {
		panic(fmt.Sprintf("bus: bad source node %d", src))
	}
	if b.Geo.Arbiter == RoundRobin {
		b.rrPending[src] = append(b.rrPending[src],
			pendingTenure{src: src, kind: kind, snoop: snoop, done: done, since: b.k.Now()})
		b.rrTryGrant()
		return
	}
	req := b.k.Now()
	b.res.Acquire(func() {
		b.waitSum += b.k.Now() - req
		b.serve(src, kind, snoop, func(at sim.Time) {
			b.res.Release()
			if done != nil {
				done(at)
			}
		})
	})
}

// rrTryGrant grants the bus to the highest-priority pending node in the
// rotation (the node after the last one served).
func (b *Bus) rrTryGrant() {
	if b.rrBusy {
		return
	}
	n := b.Geo.Nodes
	for i := 1; i <= n; i++ {
		node := (b.rrLast + i) % n
		q := b.rrPending[node]
		if len(q) == 0 {
			continue
		}
		t := q[0]
		b.rrPending[node] = q[1:]
		b.rrBusy = true
		b.rrLast = node
		b.waitSum += b.k.Now() - t.since
		b.res.Acquire(func() {}) // pure busy-time accounting
		b.serve(t.src, t.kind, t.snoop, func(at sim.Time) {
			b.res.Release()
			b.rrBusy = false
			if t.done != nil {
				t.done(at)
			}
			b.rrTryGrant()
		})
		return
	}
}

// serve runs one granted tenure: snoop broadcast at grant time, bus
// occupancy for the tenure length, then finish.
func (b *Bus) serve(src int, kind TenureKind, snoop func(node int, at sim.Time), finish func(at sim.Time)) {
	grant := b.k.Now()
	b.grants++
	b.tenures[kind]++
	if b.OnTenure != nil {
		b.OnTenure(kind, grant, grant+b.Geo.TenureTime(kind))
	}
	if kind == Request && snoop != nil && b.Geo.Nodes > 1 {
		// One pooled record chains through the N-1 snooping nodes in
		// index order; the reserved sequence numbers replay the exact
		// FIFO positions the per-node closures used to occupy, so the
		// dispatch order is unchanged.
		s := b.snoopFree
		if s == nil {
			s = &snoopSweep{}
		} else {
			b.snoopFree = s.next
			s.next = nil
		}
		s.b, s.snoop, s.grant, s.src, s.idx = b, snoop, grant, src, 0
		s.node = 0
		if src == 0 {
			s.node = 1
		}
		s.baseSeq = b.k.ReserveSeq(b.Geo.Nodes - 1)
		b.k.AtReserved(grant, s.baseSeq, s)
	}
	b.k.After(b.Geo.TenureTime(kind), func() { finish(b.k.Now()) })
}

// snoopSweep delivers one Request tenure's address broadcast: the same
// pooled record fires once per snooping node, re-arming itself with the
// next reserved FIFO slot until every node other than the source has
// observed the address.
type snoopSweep struct {
	b       *Bus
	snoop   func(node int, at sim.Time)
	grant   sim.Time
	src     int
	node    int // next node to deliver to
	idx     int // reserved-seq offset of that delivery
	baseSeq uint64
	next    *snoopSweep
}

// OnEvent delivers the snoop to the current node and chains to the next.
// On the last delivery the record is recycled before the callback runs,
// so a snoop handler that triggers another bus transaction can reuse it.
func (s *snoopSweep) OnEvent(at sim.Time) {
	node := s.node
	nxt := node + 1
	if nxt == s.src {
		nxt++
	}
	s.idx++
	snoop, grant := s.snoop, s.grant
	if nxt < s.b.Geo.Nodes {
		s.node = nxt
		s.b.k.AtReserved(grant, s.baseSeq+uint64(s.idx), s)
		snoop(node, grant)
		return
	}
	b := s.b
	s.snoop = nil
	s.next = b.snoopFree
	b.snoopFree = s
	snoop(node, grant)
}

// Tenures reports how many tenures of the kind completed or are in
// flight.
func (b *Bus) Tenures(kind TenureKind) uint64 { return b.tenures[kind] }

// MeanArbWait reports the average arbitration wait across all tenures.
func (b *Bus) MeanArbWait() sim.Time {
	if b.grants == 0 {
		return 0
	}
	return b.waitSum / sim.Time(b.grants)
}

// Utilization reports the time-averaged fraction of bus cycles carrying
// a tenure — the network utilization plotted for buses in Figure 6.
func (b *Bus) Utilization() float64 { return b.res.Utilization() }

// QueueLen reports the number of tenures waiting for the bus.
func (b *Bus) QueueLen() int { return b.res.QueueLen() }
