package bus

import (
	"testing"

	"repro/internal/sim"
)

func TestGeometrySixCycleMiss(t *testing.T) {
	g := NewGeometry(Config{Nodes: 8})
	if g.RequestCycles != 2 {
		t.Errorf("RequestCycles = %d, want 2", g.RequestCycles)
	}
	if g.ResponseCycles != 4 {
		t.Errorf("ResponseCycles = %d, want 4 (header + 2 data + turnaround)", g.ResponseCycles)
	}
	if g.MissCycles() != 6 {
		t.Errorf("MissCycles = %d, want the paper's minimum of 6", g.MissCycles())
	}
	if g.WriteBackCycles != 3 {
		t.Errorf("WriteBackCycles = %d, want 3", g.WriteBackCycles)
	}
}

func TestGeometryDefaults(t *testing.T) {
	g := NewGeometry(Config{Nodes: 4})
	if g.ClockPS != 20*sim.Nanosecond || g.WidthBits != 64 || g.BlockBytes != 16 {
		t.Fatalf("defaults not applied: %+v", g.Config)
	}
}

func TestGeometryValidation(t *testing.T) {
	for _, cfg := range []Config{{Nodes: 0}, {Nodes: 4, WidthBits: 64, BlockBytes: 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			NewGeometry(cfg)
		}()
	}
}

func TestTenureTimes(t *testing.T) {
	g := NewGeometry(Config{Nodes: 8, ClockPS: 10 * sim.Nanosecond}) // 100 MHz
	if got := g.TenureTime(Request); got != 20*sim.Nanosecond {
		t.Errorf("request tenure = %v, want 20ns", got)
	}
	if got := g.TenureTime(Response); got != 40*sim.Nanosecond {
		t.Errorf("response tenure = %v, want 40ns", got)
	}
	if got := g.TenureTime(WriteBack); got != 30*sim.Nanosecond {
		t.Errorf("write-back tenure = %v, want 30ns", got)
	}
}

func TestTransactSerializesTenures(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, Config{Nodes: 8})
	var done []sim.Time
	k.At(0, func() {
		b.Transact(0, Request, nil, func(at sim.Time) { done = append(done, at) })
		b.Transact(1, Response, nil, func(at sim.Time) { done = append(done, at) })
	})
	k.Run()
	if len(done) != 2 {
		t.Fatalf("completions = %d, want 2", len(done))
	}
	if done[0] != 40*sim.Nanosecond {
		t.Errorf("request done at %v, want 40ns (2 cycles @ 20ns)", done[0])
	}
	if done[1] != 120*sim.Nanosecond {
		t.Errorf("response done at %v, want 120ns (queued behind request)", done[1])
	}
}

func TestRequestSnoopsAllOtherNodes(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, Config{Nodes: 4})
	var snooped []int
	k.At(0, func() {
		b.Transact(2, Request, func(n int, _ sim.Time) { snooped = append(snooped, n) }, nil)
	})
	k.Run()
	if len(snooped) != 3 {
		t.Fatalf("snooped %d nodes, want 3", len(snooped))
	}
	for _, n := range snooped {
		if n == 2 {
			t.Fatal("source node snooped its own request")
		}
	}
}

func TestResponseDoesNotSnoop(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, Config{Nodes: 4})
	snooped := 0
	k.At(0, func() {
		b.Transact(0, Response, func(int, sim.Time) { snooped++ }, nil)
	})
	k.Run()
	if snooped != 0 {
		t.Fatalf("response tenure snooped %d nodes, want 0", snooped)
	}
}

func TestArbitrationWaitAccounting(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, Config{Nodes: 8})
	k.At(0, func() {
		b.Transact(0, Request, nil, nil) // waits 0
		b.Transact(1, Request, nil, nil) // waits 40ns
	})
	k.Run()
	if got := b.MeanArbWait(); got != 20*sim.Nanosecond {
		t.Fatalf("MeanArbWait = %v, want 20ns", got)
	}
	if b.Tenures(Request) != 2 {
		t.Fatalf("Tenures(Request) = %d, want 2", b.Tenures(Request))
	}
}

func TestUtilizationUnderSaturation(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, Config{Nodes: 8})
	var pump func()
	n := 0
	pump = func() {
		if n >= 50 {
			return
		}
		n++
		b.Transact(n%8, Response, nil, func(sim.Time) { pump() })
	}
	k.At(0, func() {
		pump()
		pump()
		pump()
	})
	k.Run()
	if u := b.Utilization(); u < 0.95 || u > 1.0000001 {
		t.Fatalf("saturated bus utilization = %v, want ≈1", u)
	}
}

func TestTransactValidatesSource(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, Config{Nodes: 4})
	defer func() {
		if recover() == nil {
			t.Error("bad source did not panic")
		}
	}()
	b.Transact(4, Request, nil, nil)
}

func TestTenureKindString(t *testing.T) {
	if Request.String() != "request" || Response.String() != "response" || WriteBack.String() != "write-back" {
		t.Error("tenure kind names wrong")
	}
}

func TestRoundRobinRotatesPriority(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, Config{Nodes: 4, Arbiter: RoundRobin})
	var order []int
	submit := func(src int) {
		b.Transact(src, Request, nil, func(sim.Time) { order = append(order, src) })
	}
	k.At(0, func() {
		// Node 0 floods; node 1 arrives while the bus is busy. Round
		// robin serves node 1 after node 0's FIRST tenure, not after
		// its whole burst.
		submit(0)
		submit(0)
		submit(0)
	})
	k.At(5*sim.Nanosecond, func() { submit(1) })
	k.Run()
	want := []int{0, 1, 0, 0}
	if len(order) != len(want) {
		t.Fatalf("served %d tenures, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v (rotation)", order, want)
		}
	}
}

func TestFCFSServesInRequestOrder(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, Config{Nodes: 4}) // FCFS default
	var order []int
	submit := func(src int) {
		b.Transact(src, Request, nil, func(sim.Time) { order = append(order, src) })
	}
	k.At(0, func() { submit(0); submit(0); submit(0) })
	k.At(5*sim.Nanosecond, func() { submit(1) })
	k.Run()
	want := []int{0, 0, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v (FCFS)", order, want)
		}
	}
}

func TestRoundRobinAccountingMatchesFCFSInAggregate(t *testing.T) {
	// Same offered load: both arbiters are work-conserving, so total
	// tenures, utilization and completion of the last tenure agree.
	run := func(arb Arbitration) (uint64, sim.Time) {
		k := sim.NewKernel()
		b := New(k, Config{Nodes: 8, Arbiter: arb})
		var last sim.Time
		for i := 0; i < 40; i++ {
			src := i % 8
			at := sim.Time(i) * 7 * sim.Nanosecond
			k.At(at, func() {
				b.Transact(src, Response, nil, func(done sim.Time) { last = done })
			})
		}
		k.Run()
		return b.Tenures(Response), last
	}
	nF, lastF := run(FCFS)
	nR, lastR := run(RoundRobin)
	if nF != nR {
		t.Fatalf("tenure counts differ: %d vs %d", nF, nR)
	}
	if lastF != lastR {
		t.Fatalf("makespan differs: %v vs %v (both are work-conserving)", lastF, lastR)
	}
}

func TestRoundRobinSnoops(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, Config{Nodes: 4, Arbiter: RoundRobin})
	snooped := 0
	k.At(0, func() {
		b.Transact(2, Request, func(int, sim.Time) { snooped++ }, nil)
	})
	k.Run()
	if snooped != 3 {
		t.Fatalf("snooped %d nodes, want 3", snooped)
	}
}
