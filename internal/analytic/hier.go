package analytic

import (
	"repro/internal/memory"
	"repro/internal/ring"
	"repro/internal/sim"
)

// HierModel is the analytical model of the hierarchical two-level ring
// extension: C clusters of M processors on local slotted rings, joined
// by inter-ring interfaces on a global ring.
//
// A cluster-local transaction behaves like flat snooping on the small
// local ring (its point-to-point legs close one local loop); a global
// transaction adds two extra local legs (requester ring and responder
// ring each carry an IRI leg in both directions) and one global loop.
// Slot waits follow the same geometric-retry approximation as the flat
// ring model, evaluated per ring level.
type HierModel struct {
	// Local is the local rings' geometry (M+1 interfaces); Global the
	// inter-cluster ring's (C interfaces).
	Local, Global ring.Geometry
	// Cal carries the simulation-derived event counts; Miss1/Inv1 are
	// the cluster-local transactions, Miss2/Inv2 the global ones.
	Cal Calibration
	// Clusters is the cluster count.
	Clusters int
}

// NewHierModel builds a model for cal.CPUs processors in the given
// number of clusters, sharing cfg's physical ring parameters.
func NewHierModel(cfg ring.Config, cal Calibration, clusters int) *HierModel {
	if clusters <= 1 || cal.CPUs%clusters != 0 {
		panic("analytic: invalid cluster count")
	}
	lc := cfg
	lc.Nodes = cal.CPUs/clusters + 1
	gc := cfg
	gc.Nodes = clusters
	return &HierModel{
		Local:    ring.NewGeometry(lc),
		Global:   ring.NewGeometry(gc),
		Cal:      cal,
		Clusters: clusters,
	}
}

// Evaluate computes steady-state metrics at one processor cycle time.
func (m *HierModel) Evaluate(procCycle sim.Time) Eval {
	c := &m.Cal
	tau := procCycle.Nanoseconds()
	bank := memory.BankTime.Nanoseconds()
	Sl := m.Local.RoundTrip().Nanoseconds()
	Sg := m.Global.RoundTrip().Nanoseconds()

	probeIntL := m.Local.FrameTime().Nanoseconds() / float64(m.Local.ProbePairsPerBlockSlot)
	blockIntL := m.Local.FrameTime().Nanoseconds()
	probeIntG := m.Global.FrameTime().Nanoseconds() / float64(m.Global.ProbePairsPerBlockSlot)
	blockIntG := m.Global.FrameTime().Nanoseconds()

	nProbeL := float64(m.Local.SlotsOfClass(ring.ProbeEven) + m.Local.SlotsOfClass(ring.ProbeOdd))
	nBlockL := float64(m.Local.SlotsOfClass(ring.BlockSlot))
	nProbeG := float64(m.Global.SlotsOfClass(ring.ProbeEven) + m.Global.SlotsOfClass(ring.ProbeOdd))
	nBlockG := float64(m.Global.SlotsOfClass(ring.BlockSlot))

	perClus := float64(c.CPUs / m.Clusters)
	busy := c.BusyCycles * tau
	remoteWB := c.WriteBacks * (1 - 1/float64(c.CPUs))

	// Per-processor slot-time demands on its local ring and the global
	// ring, independent of load. A local transaction's probe legs close
	// one local loop; a global transaction's legs put one local loop's
	// worth on each of two local rings (attribute both to the source's
	// ring: symmetry makes that exact in aggregate) and half a global
	// loop per message on the global ring.
	localTx := c.Miss1 + c.Inv1
	globalTx := c.Miss2 + c.Inv2
	probeOccL := localTx*Sl + globalTx*2*Sl
	blockOccL := (c.Miss1+remoteWB)*Sl/2 + (c.Miss2)*2*(Sl/2)
	probeOccG := globalTx * (Sg / 2)
	blockOccG := (c.Miss2 + remoteWB/float64(m.Clusters)) * (Sg / 2)

	var rhoPL, rhoBL, rhoPG, rhoBG float64
	var missLat, invLat float64

	step := func(t float64) float64 {
		rhoPL = clampRho(perClus * probeOccL / (t * nProbeL))
		rhoBL = clampRho(perClus * blockOccL / (t * nBlockL))
		rhoPG = clampRho(float64(c.CPUs) * probeOccG / (t * nProbeG))
		rhoBG = clampRho(float64(c.CPUs) * blockOccG / (t * nBlockG))

		wpl := probeIntL * (1/(1-rhoPL) - 0.5)
		wbl := blockIntL * (1/(1-rhoBL) - 0.5)
		wpg := probeIntG * (1/(1-rhoPG) - 0.5)
		wbg := blockIntG * (1/(1-rhoBG) - 0.5)

		lLocalMiss := bank
		lMiss1 := wpl + Sl + bank + wbl
		lMiss2 := 2*wpl + wpg + 2*Sl + Sg + bank + 2*wbl + wbg
		lInv1 := wpl + Sl
		lInv2 := wpl + wpg + 2*Sl + Sg
		lInvLocal := bank

		stall := c.LocalMiss*lLocalMiss + c.Miss1*lMiss1 + c.Miss2*lMiss2 +
			c.Inv1*lInv1 + c.Inv2*lInv2 + c.InvLocal*lInvLocal
		missLat = weighted(lLocalMiss, c.LocalMiss, lMiss1, c.Miss1, lMiss2, c.Miss2)
		invLat = weighted(lInv1, c.Inv1, lInv2, c.Inv2, lInvLocal, c.InvLocal)
		return busy + stall
	}

	t, ok, iters := fixedPoint(busy, step)
	// Aggregate network utilization weighted by slot counts across the
	// C local rings plus the global ring, matching the engine's figure.
	slotsL := float64(m.Local.NumSlots())
	slotsG := float64(m.Global.NumSlots())
	utilL := (rhoPL*nProbeL + rhoBL*nBlockL) / (nProbeL + nBlockL)
	utilG := (rhoPG*nProbeG + rhoBG*nBlockG) / (nProbeG + nBlockG)
	netUtil := (utilL*slotsL*float64(m.Clusters) + utilG*slotsG) /
		(slotsL*float64(m.Clusters) + slotsG)
	return Eval{
		ExecTimeNS:    t,
		ProcUtil:      busy / t,
		NetworkUtil:   netUtil,
		MissLatencyNS: missLat,
		InvLatencyNS:  invLat,
		Converged:     ok,
		Iterations:    iters,
	}
}
