package analytic

import (
	"repro/internal/memory"
	"repro/internal/ring"
	"repro/internal/sim"
)

// RingModel is the analytical model of a slotted-ring system under
// either the snooping or the full-map directory protocol.
//
// Slot acquisition is modeled as geometric retries on a periodic empty
// slot: slots of the wanted class pass a node every interval I, so an
// unloaded sender waits I/2 on average and a loaded one waits an extra
// I per busy pass, giving W = I·(1/(1-ρ) - 1/2). Message latencies then
// compose exactly as in the protocol engines: point-to-point hops of a
// transaction always sum to whole ring traversals, so the propagation
// terms are multiples of the round-trip time regardless of node
// placement.
type RingModel struct {
	// Geo is the ring geometry (clock, widths, slot mix).
	Geo ring.Geometry
	// Cal carries the simulation-derived event counts.
	Cal Calibration
	// Snooping selects the snooping model; otherwise directory.
	Snooping bool
}

// NewRingModel builds a model for a ring configuration; cfg.Nodes is
// overridden by the calibration's CPU count.
func NewRingModel(cfg ring.Config, cal Calibration, snooping bool) *RingModel {
	cfg.Nodes = cal.CPUs
	return &RingModel{Geo: ring.NewGeometry(cfg), Cal: cal, Snooping: snooping}
}

// Evaluate computes the steady-state metrics at one processor cycle
// time (the x-axis of Figures 3, 4 and 6).
func (m *RingModel) Evaluate(procCycle sim.Time) Eval {
	g := &m.Geo
	c := &m.Cal
	tau := procCycle.Nanoseconds()
	S := g.RoundTrip().Nanoseconds()
	bank := memory.BankTime.Nanoseconds()
	// Intervals between usable slots of a class at one node: a probe of
	// a given address parity can use one slot per pair per frame, a
	// block message the frame's block slot.
	probeInt := g.FrameTime().Nanoseconds() / float64(g.ProbePairsPerBlockSlot)
	blockInt := g.FrameTime().Nanoseconds()
	nProbeSlots := float64(g.SlotsOfClass(ring.ProbeEven) + g.SlotsOfClass(ring.ProbeOdd))
	nBlockSlots := float64(g.SlotsOfClass(ring.BlockSlot))
	n := float64(c.CPUs)
	remoteWB := c.WriteBacks * (1 - 1/n)

	busy := c.BusyCycles * tau

	// Slot-time occupancies per processor are load-independent: they
	// depend only on the event counts and the geometry, so the slot
	// utilizations follow directly from the execution time.
	var probeOcc, blockOcc float64
	if m.Snooping {
		probes := c.RemoteMiss + c.Inv1 + c.Inv2 + c.InvLocal
		probeOcc = probes * S // broadcasts occupy their slot a full loop
		blockOcc = (c.RemoteMiss + remoteWB) * (S / 2)
	} else {
		// Point-to-point probes average half a loop; multicasts a full
		// loop. Dirty forwards and remote invalidations use two
		// point-to-point probes.
		p2p := c.Clean1 + 2*(c.Dirty1+c.Dirty2) + c.Mcast2 + 2*c.Inv1 + 2*c.Inv2
		mcast := c.Mcast2 + c.Inv2
		probeOcc = p2p*(S/2) + mcast*S
		blockOcc = (c.Clean1 + c.Dirty1 + c.Dirty2 + c.Mcast2 + remoteWB) * (S / 2)
	}

	var rhoP, rhoB float64
	var missLat, invLat float64

	step := func(t float64) float64 {
		rhoP = clampRho(n * probeOcc / (t * nProbeSlots))
		rhoB = clampRho(n * blockOcc / (t * nBlockSlots))
		wp := probeInt * (1/(1-rhoP) - 0.5)
		wb := blockInt * (1/(1-rhoB) - 0.5)

		var stall float64
		if m.Snooping {
			// Every remote transaction is a single full traversal:
			// probe out and back (S), owner fetch, block return whose
			// two propagation legs also sum to S with the probe's.
			lRemote := wp + S + bank + wb
			lUp := wp + S
			lLocal := bank
			stall = c.RemoteMiss*lRemote + c.LocalMiss*lLocal +
				(c.Inv1+c.Inv2+c.InvLocal)*lUp
			missLat = weighted(lRemote, c.RemoteMiss, lLocal, c.LocalMiss)
			invLat = lUp
		} else {
			lLocal := bank
			lClean1 := wp + wb + S + bank
			lDirty1 := 2*wp + wb + S + 2*bank
			lDirty2 := 2*wp + wb + 2*S + 2*bank
			lMcast2 := 2*wp + wb + 2*S + bank
			lInv1 := 2*wp + S + bank
			lInv2 := 3*wp + 2*S + bank
			lInvLocal := bank
			stall = c.LocalMiss*lLocal + c.Clean1*lClean1 + c.Dirty1*lDirty1 +
				c.Dirty2*lDirty2 + c.Mcast2*lMcast2 +
				c.Inv1*lInv1 + c.Inv2*lInv2 + c.InvLocal*lInvLocal
			missLat = weighted(
				lLocal, c.LocalMiss, lClean1, c.Clean1, lDirty1, c.Dirty1,
				lDirty2, c.Dirty2, lMcast2, c.Mcast2)
			invLat = weighted(lInv1, c.Inv1, lInv2, c.Inv2, lInvLocal, c.InvLocal)
		}

		return busy + stall
	}

	t, ok, iters := fixedPoint(busy, step)
	return Eval{
		ExecTimeNS:    t,
		ProcUtil:      busy / t,
		NetworkUtil:   (rhoP*nProbeSlots + rhoB*nBlockSlots) / (nProbeSlots + nBlockSlots),
		MissLatencyNS: missLat,
		InvLatencyNS:  invLat,
		Converged:     ok,
		Iterations:    iters,
	}
}

// weighted returns the weighted mean of (value, weight) pairs.
func weighted(pairs ...float64) float64 {
	var num, den float64
	for i := 0; i+1 < len(pairs); i += 2 {
		num += pairs[i] * pairs[i+1]
		den += pairs[i+1]
	}
	if den == 0 {
		return 0
	}
	return num / den
}
