package analytic

import (
	"repro/internal/bus"
	"repro/internal/memory"
	"repro/internal/sim"
)

// BusModel is the analytical model of the split-transaction bus system
// of Section 4.3. The bus is a single server visited by request,
// response and write-back tenures; arbitration waits follow an
// M/M/1-style growth in the bus utilization, which captures the rapid
// saturation the paper reports for fast processors.
type BusModel struct {
	// Geo is the bus geometry (clock, tenure lengths).
	Geo bus.Geometry
	// Cal carries the simulation-derived event counts.
	Cal Calibration
}

// NewBusModel builds a model for a bus configuration; cfg.Nodes is
// overridden by the calibration's CPU count.
func NewBusModel(cfg bus.Config, cal Calibration) *BusModel {
	cfg.Nodes = cal.CPUs
	return &BusModel{Geo: bus.NewGeometry(cfg), Cal: cal}
}

// Evaluate computes steady-state metrics at one processor cycle time.
func (m *BusModel) Evaluate(procCycle sim.Time) Eval {
	g := &m.Geo
	c := &m.Cal
	tau := procCycle.Nanoseconds()
	bank := memory.BankTime.Nanoseconds()
	req := g.TenureTime(bus.Request).Nanoseconds()
	resp := g.TenureTime(bus.Response).Nanoseconds()
	wbT := g.TenureTime(bus.WriteBack).Nanoseconds()
	n := float64(c.CPUs)
	remoteWB := c.WriteBacks * (1 - 1/n)

	busy := c.BusyCycles * tau
	ups := c.Inv1 + c.Inv2 // bus calibrations put all non-local upgrades here

	// Total bus service time demanded per processor is load-independent.
	tenures := 2*c.RemoteMiss + ups + remoteWB
	service := c.RemoteMiss*(req+resp) + ups*req + remoteWB*wbT
	mean := 0.0
	if tenures > 0 {
		mean = service / tenures
	}

	var rho, missLat, invLat float64
	step := func(t float64) float64 {
		rho = clampRho(n * service / t)
		// Pollaczek–Khinchine wait for deterministic service (bus
		// tenures have fixed lengths): half the M/M/1 wait.
		w := rho / (1 - rho) * mean / 2

		lRemote := (w + req) + bank + (w + resp)
		lLocal := bank
		lUp := w + req
		stall := c.RemoteMiss*lRemote + c.LocalMiss*lLocal + ups*lUp
		missLat = weighted(lRemote, c.RemoteMiss, lLocal, c.LocalMiss)
		invLat = lUp

		return busy + stall
	}

	t, ok, iters := fixedPoint(busy, step)
	return Eval{
		ExecTimeNS:    t,
		ProcUtil:      busy / t,
		NetworkUtil:   rho,
		MissLatencyNS: missLat,
		InvLatencyNS:  invLat,
		Converged:     ok,
		Iterations:    iters,
	}
}

// MatchBusClock finds the bus cycle time (ns) at which this
// calibration's bus system reaches the target processor utilization —
// Table 4's question. It bisects on the bus clock; utilization grows
// monotonically as the bus gets faster. The returned cycle is clamped
// to [0.5, 1000] ns; ok is false when even the fastest bus in that
// band cannot reach the target.
func MatchBusClock(cfg bus.Config, cal Calibration, procCycle sim.Time, targetUtil float64) (ns float64, ok bool) {
	util := func(cycleNS float64) float64 {
		c := cfg
		c.ClockPS = sim.Time(cycleNS * 1000)
		return NewBusModel(c, cal).Evaluate(procCycle).ProcUtil
	}
	lo, hi := 0.5, 1000.0
	if util(lo) < targetUtil {
		return lo, false
	}
	if util(hi) >= targetUtil {
		return hi, true
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if util(mid) >= targetUtil {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true
}
