// Package analytic implements the paper's iterative analytical models
// (Section 4.0): simple fixed-point queueing models of the slotted ring
// (under both snooping and directory protocols) and of the split
// transaction bus, whose per-benchmark inputs are extracted from
// detailed simulation runs. An estimate of the average memory latencies
// yields a program execution time, which yields new interconnect loads
// and hence new latencies, iterating until convergence — the
// Menasce–Barroso methodology. One model evaluation takes microseconds,
// so entire figures sweep in milliseconds where each simulated point
// costs seconds; model predictions are validated against the simulator
// to the paper's tolerances (15 % on latencies, 5 % on utilizations).
package analytic

import (
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/sim"
)

// Calibration carries the per-processor event counts a model needs,
// extracted from one detailed simulation run (the paper's "parameter
// values describing the average behavior of each system").
type Calibration struct {
	// CPUs is the system size.
	CPUs int
	// BusyCycles is the per-processor compute cycle count (instruction
	// plus data references, one cycle each).
	BusyCycles float64
	// DataRefs is the per-processor data reference count.
	DataRefs float64

	// Per-processor transaction counts.
	LocalMiss  float64 // satisfied by the local bank, no interconnect
	RemoteMiss float64 // all interconnect misses (snooping / bus form)

	// Directory latency-class split of RemoteMiss (Figure 5).
	Clean1 float64 // 1-traversal clean
	Dirty1 float64 // 1-traversal dirty forward
	Dirty2 float64 // 2-traversal dirty forward
	Mcast2 float64 // 2-traversal write miss with invalidation multicast

	// Miss1 / Miss2 split RemoteMiss by traversal count for engines
	// that report it (ring directory: 1 vs 2 loops; hierarchical ring:
	// local-only vs global). Zero when the engine reports none.
	Miss1, Miss2 float64

	// Invalidations (upgrades).
	InvLocal float64 // no interconnect
	Inv1     float64 // one traversal
	Inv2     float64 // two traversals

	// WriteBacks is the per-processor dirty-eviction count (all, local
	// included; models discount local ones by 1/CPUs).
	WriteBacks float64
}

// FromMetrics extracts a calibration from a finished simulation run.
func FromMetrics(m *core.Metrics, cpus int) Calibration {
	n := float64(cpus)
	misses := float64(m.SharedMisses + m.PrivateMisses)
	c := Calibration{
		CPUs:       cpus,
		BusyCycles: float64(m.InstrRefs+m.DataRefs) / n,
		DataRefs:   float64(m.DataRefs) / n,
		LocalMiss:  float64(m.LocalMisses) / n,
		RemoteMiss: (misses - float64(m.LocalMisses)) / n,
		InvLocal:   float64(m.LocalInvs) / n,
		WriteBacks: float64(m.WriteBacks) / n,
	}
	// Directory class split (empty for snooping/bus runs).
	c.Clean1 = float64(m.ClassCount[coherence.OneCycleClean]) / n
	c.Dirty1 = float64(m.ClassCount[coherence.OneCycleDirty]) / n
	two := float64(m.ClassCount[coherence.TwoCycle]) / n
	c.Mcast2 = float64(m.TwoCycleMulticast) / n
	c.Dirty2 = two - c.Mcast2
	if c.Dirty2 < 0 {
		c.Dirty2 = 0
	}
	if tn := m.MissTraversals.N(); tn > 0 {
		c.Miss1 = c.RemoteMiss * float64(m.MissTraversals.Count(1)) / float64(tn)
		c.Miss2 = c.RemoteMiss - c.Miss1
	}
	// Remote invalidations, split by traversal count where the engine
	// reports one (ring protocols); bus engines report none, so all
	// remote upgrades land in Inv1 (a single bus tenure each).
	remoteInvs := float64(m.Upgrades-m.LocalInvs) / n
	if tn := m.InvTraversals.N(); tn > 0 {
		c.Inv1 = remoteInvs * float64(m.InvTraversals.Count(1)) / float64(tn)
		c.Inv2 = remoteInvs - c.Inv1
	} else {
		c.Inv1 = remoteInvs
	}
	return c
}

// Eval is one model evaluation at a given processor cycle time.
type Eval struct {
	// ExecTimeNS is the per-processor execution time.
	ExecTimeNS float64
	// ProcUtil is compute time over execution time.
	ProcUtil float64
	// NetworkUtil is the ring slot (or bus) utilization.
	NetworkUtil float64
	// MissLatencyNS is the average blocking miss latency.
	MissLatencyNS float64
	// InvLatencyNS is the average invalidation latency.
	InvLatencyNS float64
	// Converged reports fixed-point convergence.
	Converged bool
	// Iterations is the number of fixed-point steps taken.
	Iterations int
}

// fixedPoint solves T = step(T) where step is monotone non-increasing
// in T (higher execution time → lower interconnect load → shorter
// stalls), which holds for all three models. Monotonicity makes the
// crossing unique, and bisection finds it even when the map is too
// steep for damped iteration (a saturated bus flips between clamped
// and unloaded utilizations within one step). lower is a lower bound
// on the solution (the pure compute time).
func fixedPoint(lower float64, step func(t float64) float64) (float64, bool, int) {
	lo := lower
	if lo <= 0 {
		lo = 1e-9
	}
	f := step(lo)
	if f <= lo {
		// No queueing at all: the stall-free time is the answer.
		return f, true, 1
	}
	hi := f // step is decreasing, so f(lo) bounds the fixed point above
	iters := 1
	for i := 0; i < 100; i++ {
		iters++
		mid := 0.5 * (lo + hi)
		if step(mid) > mid {
			lo = mid
		} else {
			hi = mid
		}
		if rel(hi, lo) < 1e-12 {
			break
		}
	}
	t := 0.5 * (lo + hi)
	// One final evaluation leaves the model's latency/utilization
	// outputs consistent with the solution.
	step(t)
	return t, rel(hi, lo) < 1e-6, iters
}

func rel(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b < 1e-12 {
		b = 1e-12
	}
	return d / b
}

// clampRho bounds a utilization estimate away from 1 so waiting-time
// terms stay finite inside the iteration.
func clampRho(rho float64) float64 {
	if rho < 0 {
		return 0
	}
	if rho > 0.995 {
		return 0.995
	}
	return rho
}

// Crossover locates the processor cycle time (ns) at which two models'
// processor utilizations cross, if they do within [loNS, hiNS] — the
// paper narrates such crossovers when comparing buses against rings
// ("comparable for slower processors, falls behind for faster ones").
// Both eval functions must be monotone in the cycle time over the
// interval (all three models are). ok is false when there is no sign
// change across the interval.
func Crossover(evalA, evalB func(cyc sim.Time) Eval, loNS, hiNS float64) (ns float64, ok bool) {
	diff := func(cycNS float64) float64 {
		c := sim.Time(cycNS * float64(sim.Nanosecond))
		return evalA(c).ProcUtil - evalB(c).ProcUtil
	}
	dlo, dhi := diff(loNS), diff(hiNS)
	if dlo == 0 {
		return loNS, true
	}
	if dhi == 0 {
		return hiNS, true
	}
	if (dlo > 0) == (dhi > 0) {
		return 0, false
	}
	lo, hi := loNS, hiNS
	for i := 0; i < 60; i++ {
		mid := 0.5 * (lo + hi)
		if (diff(mid) > 0) == (dlo > 0) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), true
}
