package analytic

import (
	"math"
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/workload"
)

// calibrate runs one detailed simulation and extracts the model inputs.
// warm is the per-processor cold-start window excluded from metrics in
// these tests (see core.Config.WarmupDataRefs).
const warm = 600

func calibrate(t *testing.T, proto core.Protocol, bench string, cpus int, refs int, cyc sim.Time) (Calibration, *core.Metrics) {
	t.Helper()
	m := simulate(proto, bench, cpus, refs, cyc)
	return FromMetrics(m, cpus), m
}

func simulate(proto core.Protocol, bench string, cpus, refs int, cyc sim.Time) *core.Metrics {
	prof := workload.MustProfile(bench, cpus)
	gen := workload.NewGenerator(workload.Config{Profile: prof, DataRefsPerCPU: refs + warm, Seed: 1234})
	return core.NewSystem(core.Config{Protocol: proto, ProcCycle: cyc, Seed: 99, WarmupDataRefs: warm}, gen).Run()
}

func TestFromMetricsConservation(t *testing.T) {
	cal, m := calibrate(t, core.DirectoryRing, "MP3D", 8, 1500, 20*sim.Nanosecond)
	if cal.CPUs != 8 {
		t.Fatalf("CPUs = %d, want 8", cal.CPUs)
	}
	// Remote misses must equal the sum of the directory classes.
	sum := cal.Clean1 + cal.Dirty1 + cal.Dirty2 + cal.Mcast2
	if math.Abs(sum-cal.RemoteMiss)/cal.RemoteMiss > 1e-9 {
		t.Fatalf("class split %v does not sum to remote misses %v", sum, cal.RemoteMiss)
	}
	// Per-proc counts scale back up to the metrics totals.
	if got := (cal.LocalMiss + cal.RemoteMiss) * 8; math.Abs(got-float64(m.SharedMisses+m.PrivateMisses)) > 1e-6 {
		t.Fatalf("misses round trip: %v vs %d", got, m.SharedMisses+m.PrivateMisses)
	}
}

func TestRingModelValidatesAgainstSimulationSamepoint(t *testing.T) {
	// Model evaluated at the calibration point must reproduce the
	// simulation it was calibrated from — the paper holds 5 % on
	// utilizations and 15 % on latencies.
	for _, proto := range []core.Protocol{core.SnoopRing, core.DirectoryRing} {
		cal, m := calibrate(t, proto, "MP3D", 8, 2500, 20*sim.Nanosecond)
		model := NewRingModel(ring.Config{}, cal, proto == core.SnoopRing)
		ev := model.Evaluate(20 * sim.Nanosecond)
		if !ev.Converged {
			t.Fatalf("%v: model did not converge", proto)
		}
		if d := math.Abs(ev.ProcUtil - m.ProcUtil()); d > 0.05 {
			t.Errorf("%v: proc util model %v vs sim %v (Δ %v > 0.05)",
				proto, ev.ProcUtil, m.ProcUtil(), d)
		}
		if d := math.Abs(ev.NetworkUtil - m.NetworkUtil); d > 0.05 {
			t.Errorf("%v: net util model %v vs sim %v (Δ %v > 0.05)",
				proto, ev.NetworkUtil, m.NetworkUtil, d)
		}
		if r := math.Abs(ev.MissLatencyNS-m.MissLatency.Value()) / m.MissLatency.Value(); r > 0.15 {
			t.Errorf("%v: miss latency model %v vs sim %v (rel %v > 0.15)",
				proto, ev.MissLatencyNS, m.MissLatency.Value(), r)
		}
	}
}

func TestRingModelValidatesAcrossProcessorSpeeds(t *testing.T) {
	// Calibrate at 50 MIPS (20 ns), predict at 5 ns, compare to a
	// fresh simulation at 5 ns — the hybrid methodology's core claim.
	cal, _ := calibrate(t, core.SnoopRing, "MP3D", 8, 2500, 20*sim.Nanosecond)
	model := NewRingModel(ring.Config{}, cal, true)
	ev := model.Evaluate(5 * sim.Nanosecond)
	m := simulate(core.SnoopRing, "MP3D", 8, 2500, 5*sim.Nanosecond)
	if d := math.Abs(ev.ProcUtil - m.ProcUtil()); d > 0.07 {
		t.Errorf("proc util model %v vs sim %v (Δ %v)", ev.ProcUtil, m.ProcUtil(), d)
	}
	if d := math.Abs(ev.NetworkUtil - m.NetworkUtil); d > 0.07 {
		t.Errorf("net util model %v vs sim %v (Δ %v)", ev.NetworkUtil, m.NetworkUtil, d)
	}
	if r := math.Abs(ev.MissLatencyNS-m.MissLatency.Value()) / m.MissLatency.Value(); r > 0.20 {
		t.Errorf("miss latency model %v vs sim %v (rel %v)",
			ev.MissLatencyNS, m.MissLatency.Value(), r)
	}
}

func TestBusModelValidatesAgainstSimulation(t *testing.T) {
	cal, m := calibrate(t, core.SnoopBus, "WATER", 8, 2500, 20*sim.Nanosecond)
	model := NewBusModel(bus.Config{}, cal)
	ev := model.Evaluate(20 * sim.Nanosecond)
	if !ev.Converged {
		t.Fatal("bus model did not converge")
	}
	if d := math.Abs(ev.ProcUtil - m.ProcUtil()); d > 0.05 {
		t.Errorf("proc util model %v vs sim %v", ev.ProcUtil, m.ProcUtil())
	}
	if d := math.Abs(ev.NetworkUtil - m.NetworkUtil); d > 0.07 {
		t.Errorf("net util model %v vs sim %v", ev.NetworkUtil, m.NetworkUtil)
	}
	if r := math.Abs(ev.MissLatencyNS-m.MissLatency.Value()) / m.MissLatency.Value(); r > 0.20 {
		t.Errorf("miss latency model %v vs sim %v", ev.MissLatencyNS, m.MissLatency.Value())
	}
}

func TestProcessorUtilizationFallsWithFasterProcessors(t *testing.T) {
	cal, _ := calibrate(t, core.SnoopRing, "MP3D", 8, 1200, 20*sim.Nanosecond)
	model := NewRingModel(ring.Config{}, cal, true)
	prev := -1.0
	for cyc := sim.Time(1); cyc <= 20; cyc += 1 {
		ev := model.Evaluate(cyc * sim.Nanosecond)
		if prev >= 0 && ev.ProcUtil < prev-1e-9 {
			t.Fatalf("ProcUtil not monotone in processor cycle at %d ns: %v < %v",
				cyc, ev.ProcUtil, prev)
		}
		prev = ev.ProcUtil
	}
}

func TestNetworkUtilizationRisesWithFasterProcessors(t *testing.T) {
	cal, _ := calibrate(t, core.SnoopRing, "MP3D", 16, 1200, 20*sim.Nanosecond)
	model := NewRingModel(ring.Config{}, cal, true)
	fast := model.Evaluate(2 * sim.Nanosecond)
	slow := model.Evaluate(20 * sim.Nanosecond)
	if fast.NetworkUtil <= slow.NetworkUtil {
		t.Fatalf("ring util should rise with processor speed: fast=%v slow=%v",
			fast.NetworkUtil, slow.NetworkUtil)
	}
}

func TestBusSaturatesBeforeRing(t *testing.T) {
	// MP3D-32-style load: the 50 MHz bus saturates where the ring does
	// not (Figure 6's headline result).
	calRing, _ := calibrate(t, core.SnoopRing, "MP3D", 32, 800, 20*sim.Nanosecond)
	calBus, _ := calibrate(t, core.SnoopBus, "MP3D", 32, 800, 20*sim.Nanosecond)
	ringEv := NewRingModel(ring.Config{}, calRing, true).Evaluate(5 * sim.Nanosecond)
	busEv := NewBusModel(bus.Config{}, calBus).Evaluate(5 * sim.Nanosecond)
	if busEv.NetworkUtil < 0.9 {
		t.Errorf("bus utilization = %v, expected saturation (>0.9)", busEv.NetworkUtil)
	}
	if ringEv.NetworkUtil > 0.8 {
		t.Errorf("ring utilization = %v, expected under 0.8", ringEv.NetworkUtil)
	}
	if busEv.ProcUtil >= ringEv.ProcUtil {
		t.Errorf("bus proc util %v should trail ring %v under saturation",
			busEv.ProcUtil, ringEv.ProcUtil)
	}
}

func TestFasterRingShortensLatency(t *testing.T) {
	cal, _ := calibrate(t, core.SnoopRing, "MP3D", 8, 1000, 20*sim.Nanosecond)
	m500 := NewRingModel(ring.Config{ClockPS: 2 * sim.Nanosecond}, cal, true)
	m250 := NewRingModel(ring.Config{ClockPS: 4 * sim.Nanosecond}, cal, true)
	e500 := m500.Evaluate(10 * sim.Nanosecond)
	e250 := m250.Evaluate(10 * sim.Nanosecond)
	if e500.MissLatencyNS >= e250.MissLatencyNS {
		t.Fatalf("500 MHz ring latency %v should beat 250 MHz %v",
			e500.MissLatencyNS, e250.MissLatencyNS)
	}
	if e500.ProcUtil <= e250.ProcUtil {
		t.Fatalf("500 MHz proc util %v should beat 250 MHz %v",
			e500.ProcUtil, e250.ProcUtil)
	}
}

func TestMatchBusClockBisection(t *testing.T) {
	calRing, _ := calibrate(t, core.SnoopRing, "MP3D", 8, 1000, 20*sim.Nanosecond)
	calBus, _ := calibrate(t, core.SnoopBus, "MP3D", 8, 1000, 20*sim.Nanosecond)
	procCycle := 10 * sim.Nanosecond // 100 MIPS
	target := NewRingModel(ring.Config{}, calRing, true).Evaluate(procCycle).ProcUtil
	ns, ok := MatchBusClock(bus.Config{}, calBus, procCycle, target)
	if !ok {
		t.Fatalf("no bus clock matches ring util %v", target)
	}
	// The matching bus must actually hit the target.
	cfg := bus.Config{ClockPS: sim.Time(ns * 1000)}
	got := NewBusModel(cfg, calBus).Evaluate(procCycle).ProcUtil
	if math.Abs(got-target) > 0.01 {
		t.Fatalf("matched bus util %v vs ring target %v", got, target)
	}
	if ns <= 0.5 || ns >= 100 {
		t.Fatalf("matched clock %v ns implausible", ns)
	}
}

func TestWeightedMean(t *testing.T) {
	if w := weighted(10, 1, 20, 3); math.Abs(w-17.5) > 1e-12 {
		t.Fatalf("weighted = %v, want 17.5", w)
	}
	if w := weighted(); w != 0 {
		t.Fatalf("weighted() = %v, want 0", w)
	}
}

func TestFixedPointConverges(t *testing.T) {
	// The solver handles monotone-decreasing maps (the models' shape):
	// t = 100/t has the fixed point 10.
	t0, ok, _ := fixedPoint(1, func(t float64) float64 { return 100 / t })
	if !ok || math.Abs(t0-10) > 1e-6 {
		t.Fatalf("fixed point = %v (ok=%v), want 10", t0, ok)
	}
	// A map already below its lower bound returns the stall-free time.
	t1, ok1, _ := fixedPoint(50, func(t float64) float64 { return 30 })
	if !ok1 || t1 != 30 {
		t.Fatalf("degenerate fixed point = %v (ok=%v), want 30", t1, ok1)
	}
}

func TestCrossoverRingVsBus(t *testing.T) {
	// WATER-8: the paper says the buses "could outperform the slotted
	// ring for slower processors even if only by a narrow margin" —
	// i.e. there is a crossover in the 1–20 ns band where the ring
	// takes over as processors speed up.
	calRing, _ := calibrate(t, core.SnoopRing, "WATER", 8, 2500, 20*sim.Nanosecond)
	calBus, _ := calibrate(t, core.SnoopBus, "WATER", 8, 2500, 20*sim.Nanosecond)
	ringM := NewRingModel(ring.Config{}, calRing, true)
	busM := NewBusModel(bus.Config{ClockPS: 10 * sim.Nanosecond}, calBus) // 100 MHz
	ns, ok := Crossover(ringM.Evaluate, busM.Evaluate, 1, 20)
	if !ok {
		rl := ringM.Evaluate(20 * sim.Nanosecond).ProcUtil
		bl := busM.Evaluate(20 * sim.Nanosecond).ProcUtil
		t.Skipf("no crossover in band (ring %.3f vs bus %.3f at 20ns); acceptable if ring dominates everywhere", rl, bl)
	}
	if ns <= 1 || ns >= 20 {
		t.Fatalf("crossover at %.1f ns outside the band", ns)
	}
	// On either side of the crossover the winner flips.
	fast := sim.Time(ns*0.5) * sim.Nanosecond
	slow := sim.Time(ns*1.5) * sim.Nanosecond
	fastDiff := ringM.Evaluate(fast).ProcUtil - busM.Evaluate(fast).ProcUtil
	slowDiff := ringM.Evaluate(slow).ProcUtil - busM.Evaluate(slow).ProcUtil
	if (fastDiff > 0) == (slowDiff > 0) {
		t.Fatalf("winner did not flip around %.1f ns (%.4f vs %.4f)", ns, fastDiff, slowDiff)
	}
}

func TestCrossoverNoneWhenOneDominates(t *testing.T) {
	// MP3D-32: the ring dominates the 50 MHz bus across the whole band.
	calRing, _ := calibrate(t, core.SnoopRing, "MP3D", 32, 800, 20*sim.Nanosecond)
	calBus, _ := calibrate(t, core.SnoopBus, "MP3D", 32, 800, 20*sim.Nanosecond)
	ringM := NewRingModel(ring.Config{}, calRing, true)
	busM := NewBusModel(bus.Config{}, calBus)
	if _, ok := Crossover(ringM.Evaluate, busM.Evaluate, 1, 20); ok {
		t.Fatal("found a crossover where the ring should dominate everywhere")
	}
}

func hierSimulate(bench string, cpus, clusters, refs int, cyc sim.Time) *core.Metrics {
	prof := workload.MustProfile(bench, cpus)
	gen := workload.NewGenerator(workload.Config{
		Profile: prof, DataRefsPerCPU: refs + warm, Seed: 1234,
		Clusters: clusters, ClusterAffinity: 0.5,
	})
	return core.NewSystem(core.Config{
		Protocol: core.HierRing, Clusters: clusters,
		ProcCycle: cyc, Seed: 99, WarmupDataRefs: warm,
	}, gen).Run()
}

func TestHierModelValidatesAgainstSimulation(t *testing.T) {
	// The extension's model is held to looser bars than the paper's
	// (it is ours, not theirs): 10 points on utilizations, 30 % on
	// latency, at the calibration point and at 4x faster processors.
	m20 := hierSimulate("MP3D", 16, 4, 2500, 20*sim.Nanosecond)
	cal := FromMetrics(m20, 16)
	model := NewHierModel(ring.Config{}, cal, 4)

	for _, tc := range []struct {
		cyc sim.Time
		sim *core.Metrics
	}{
		{20 * sim.Nanosecond, m20},
		{5 * sim.Nanosecond, hierSimulate("MP3D", 16, 4, 2500, 5*sim.Nanosecond)},
	} {
		ev := model.Evaluate(tc.cyc)
		if !ev.Converged {
			t.Fatalf("hier model did not converge at %v", tc.cyc)
		}
		if d := math.Abs(ev.ProcUtil - tc.sim.ProcUtil()); d > 0.10 {
			t.Errorf("@%v: proc util model %.3f vs sim %.3f", tc.cyc, ev.ProcUtil, tc.sim.ProcUtil())
		}
		if d := math.Abs(ev.NetworkUtil - tc.sim.NetworkUtil); d > 0.10 {
			t.Errorf("@%v: net util model %.3f vs sim %.3f", tc.cyc, ev.NetworkUtil, tc.sim.NetworkUtil)
		}
		if r := math.Abs(ev.MissLatencyNS-tc.sim.MissLatency.Value()) / tc.sim.MissLatency.Value(); r > 0.30 {
			t.Errorf("@%v: miss latency model %.0f vs sim %.0f (rel %.2f)",
				tc.cyc, ev.MissLatencyNS, tc.sim.MissLatency.Value(), r)
		}
	}
}

func TestHierModelMonotonic(t *testing.T) {
	m20 := hierSimulate("MP3D", 16, 4, 1200, 20*sim.Nanosecond)
	model := NewHierModel(ring.Config{}, FromMetrics(m20, 16), 4)
	prev := -1.0
	for cyc := sim.Time(1); cyc <= 20; cyc++ {
		ev := model.Evaluate(cyc * sim.Nanosecond)
		if prev >= 0 && ev.ProcUtil < prev-1e-9 {
			t.Fatalf("ProcUtil not monotone at %d ns", cyc)
		}
		prev = ev.ProcUtil
	}
}

func TestHierModelValidatesClusterCount(t *testing.T) {
	cal := Calibration{CPUs: 16}
	for _, bad := range []int{0, 1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("clusters=%d did not panic", bad)
				}
			}()
			NewHierModel(ring.Config{}, cal, bad)
		}()
	}
}
