// Package cache implements the per-processor data cache of the study:
// direct-mapped, write-back, write-invalidate, with the three block
// states of the paper's protocols (INV / RS / WE). The default geometry
// is the paper's: 128 Kbyte, 16-byte blocks.
//
// The cache is a passive structure — protocol engines drive all state
// transitions. Lookup/Probe report what an access would do; the engine
// then applies Fill/Invalidate/Downgrade/Upgrade as the protocol
// dictates, so the same cache serves the ring snooping, ring directory,
// SCI linked-list and bus snooping engines.
package cache

import (
	"fmt"

	"repro/internal/coherence"
)

// Config describes a cache geometry.
type Config struct {
	// SizeBytes is the total data capacity. Default 128 KB.
	SizeBytes int
	// BlockBytes is the block (line) size. Default 16.
	BlockBytes int
}

// DefaultConfig is the paper's cache geometry.
var DefaultConfig = Config{SizeBytes: 128 << 10, BlockBytes: 16}

func (c *Config) fill() {
	if c.SizeBytes == 0 {
		c.SizeBytes = DefaultConfig.SizeBytes
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = DefaultConfig.BlockBytes
	}
}

// validate panics on geometry errors; configuration is programmer input.
func (c Config) validate() {
	if c.SizeBytes <= 0 || c.BlockBytes <= 0 {
		panic("cache: non-positive geometry")
	}
	if c.SizeBytes%c.BlockBytes != 0 {
		panic("cache: size not a multiple of block size")
	}
	if c.BlockBytes&(c.BlockBytes-1) != 0 {
		panic("cache: block size must be a power of two")
	}
	sets := c.SizeBytes / c.BlockBytes
	if sets&(sets-1) != 0 {
		panic("cache: set count must be a power of two")
	}
}

// line is one direct-mapped frame.
type line struct {
	tag   uint64
	state coherence.State
}

// Cache is a direct-mapped write-back cache.
type Cache struct {
	cfg        Config
	lines      []line
	blockShift uint
	setMask    uint64

	// Statistics.
	Accesses  uint64
	Hits      uint64
	UpgradeRq uint64 // hits in RS needing write permission
}

// New returns a cache with the given geometry (zero fields take the
// paper's defaults).
func New(cfg Config) *Cache {
	cfg.fill()
	cfg.validate()
	sets := cfg.SizeBytes / cfg.BlockBytes
	c := &Cache{
		cfg:     cfg,
		lines:   make([]line, sets),
		setMask: uint64(sets - 1),
	}
	for bs := cfg.BlockBytes; bs > 1; bs >>= 1 {
		c.blockShift++
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// BlockAddr returns the block-aligned address containing addr.
func (c *Cache) BlockAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.BlockBytes) - 1)
}

func (c *Cache) index(block uint64) int {
	return int((block >> c.blockShift) & c.setMask)
}

// Outcome describes what a processor access needs from the coherence
// protocol.
type Outcome uint8

const (
	// Hit: the access completes locally with no protocol action.
	Hit Outcome = iota
	// MissRead: the block must be obtained in RS state.
	MissRead
	// MissWrite: the block must be obtained in WE state.
	MissWrite
	// Upgrade: block present in RS; write permission must be obtained
	// (an "invalidation" in the paper's terminology).
	Upgrade
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case MissRead:
		return "miss-read"
	case MissWrite:
		return "miss-write"
	case Upgrade:
		return "upgrade"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// Victim describes a block displaced by a fill.
type Victim struct {
	// Block is the block-aligned address displaced.
	Block uint64
	// Dirty reports whether the victim was write-exclusive and must be
	// written back.
	Dirty bool
	// Valid reports whether there was a victim at all.
	Valid bool
}

// Lookup classifies an access without changing cache state. For hits it
// also performs the RS→WE silent transition check: a store that hits in
// RS is an Upgrade, not a Hit.
func (c *Cache) Lookup(addr uint64, write bool) Outcome {
	c.Accesses++
	block := c.BlockAddr(addr)
	ln := &c.lines[c.index(block)]
	if ln.state == coherence.Invalid || ln.tag != block {
		if write {
			return MissWrite
		}
		return MissRead
	}
	if write && ln.state == coherence.ReadShared {
		c.UpgradeRq++
		return Upgrade
	}
	c.Hits++
	return Hit
}

// State returns the state of the frame currently holding block, or
// Invalid if the block is not resident.
func (c *Cache) State(block uint64) coherence.State {
	ln := &c.lines[c.index(block)]
	if ln.tag != block {
		return coherence.Invalid
	}
	return ln.state
}

// Fill installs block in the given state and returns the displaced
// victim, if any. Filling over the same block just updates the state.
func (c *Cache) Fill(block uint64, st coherence.State) Victim {
	if st == coherence.Invalid {
		panic("cache: fill with Invalid state")
	}
	ln := &c.lines[c.index(block)]
	var v Victim
	if ln.state != coherence.Invalid && ln.tag != block {
		v = Victim{Block: ln.tag, Dirty: ln.state == coherence.WriteExclusive, Valid: true}
	}
	ln.tag = block
	ln.state = st
	return v
}

// Invalidate drops block if resident, returning its previous state.
func (c *Cache) Invalidate(block uint64) coherence.State {
	ln := &c.lines[c.index(block)]
	if ln.tag != block || ln.state == coherence.Invalid {
		return coherence.Invalid
	}
	prev := ln.state
	ln.state = coherence.Invalid
	return prev
}

// Downgrade moves a WE block to RS (remote read miss hitting the dirty
// owner). It reports whether the block was resident in WE.
func (c *Cache) Downgrade(block uint64) bool {
	ln := &c.lines[c.index(block)]
	if ln.tag != block || ln.state != coherence.WriteExclusive {
		return false
	}
	ln.state = coherence.ReadShared
	return true
}

// Upgrade moves an RS block to WE (invalidation acknowledged). It
// reports whether the block was resident in RS.
func (c *Cache) Upgrade(block uint64) bool {
	ln := &c.lines[c.index(block)]
	if ln.tag != block || ln.state != coherence.ReadShared {
		return false
	}
	ln.state = coherence.WriteExclusive
	return true
}

// HitRate returns the fraction of accesses that hit (upgrades count as
// non-hits: the processor blocks on them).
func (c *Cache) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Accesses)
}

// Occupancy counts resident blocks per state, for diagnostics.
func (c *Cache) Occupancy() (rs, we int) {
	for i := range c.lines {
		switch c.lines[i].state {
		case coherence.ReadShared:
			rs++
		case coherence.WriteExclusive:
			we++
		}
	}
	return rs, we
}
