package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/coherence"
)

func small() *Cache {
	// 4 sets of 16 bytes: easy conflict construction.
	return New(Config{SizeBytes: 64, BlockBytes: 16})
}

func TestDefaultGeometry(t *testing.T) {
	c := New(Config{})
	if c.Config().SizeBytes != 128<<10 || c.Config().BlockBytes != 16 {
		t.Fatalf("default geometry = %+v, want 128KB/16B", c.Config())
	}
	if len(c.lines) != 8192 {
		t.Fatalf("sets = %d, want 8192", len(c.lines))
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []Config{
		{SizeBytes: -1, BlockBytes: 16},
		{SizeBytes: 64, BlockBytes: 24},  // not power of two
		{SizeBytes: 100, BlockBytes: 16}, // not multiple
		{SizeBytes: 48, BlockBytes: 16},  // 3 sets, not power of two
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestBlockAddr(t *testing.T) {
	c := small()
	if got := c.BlockAddr(0x123f); got != 0x1230 {
		t.Fatalf("BlockAddr(0x123f) = %#x, want 0x1230", got)
	}
}

func TestColdMiss(t *testing.T) {
	c := small()
	if o := c.Lookup(0x100, false); o != MissRead {
		t.Fatalf("cold read = %v, want miss-read", o)
	}
	if o := c.Lookup(0x100, true); o != MissWrite {
		t.Fatalf("cold write = %v, want miss-write", o)
	}
}

func TestFillThenHit(t *testing.T) {
	c := small()
	v := c.Fill(0x100, coherence.ReadShared)
	if v.Valid {
		t.Fatalf("fill into empty frame produced victim %+v", v)
	}
	if o := c.Lookup(0x104, false); o != Hit {
		t.Fatalf("read after RS fill = %v, want hit", o)
	}
	if o := c.Lookup(0x104, true); o != Upgrade {
		t.Fatalf("write to RS block = %v, want upgrade", o)
	}
	c.Upgrade(0x100)
	if o := c.Lookup(0x108, true); o != Hit {
		t.Fatalf("write to WE block = %v, want hit", o)
	}
}

func TestConflictVictim(t *testing.T) {
	c := small() // 4 sets * 16B → addresses 64 apart conflict
	c.Fill(0x000, coherence.WriteExclusive)
	v := c.Fill(0x040, coherence.ReadShared) // same set 0
	if !v.Valid || v.Block != 0x000 || !v.Dirty {
		t.Fatalf("victim = %+v, want dirty block 0x0", v)
	}
	if c.State(0x000) != coherence.Invalid {
		t.Fatal("displaced block still resident")
	}
	if c.State(0x040) != coherence.ReadShared {
		t.Fatal("new block not resident")
	}
}

func TestCleanVictimNotDirty(t *testing.T) {
	c := small()
	c.Fill(0x000, coherence.ReadShared)
	v := c.Fill(0x040, coherence.ReadShared)
	if !v.Valid || v.Dirty {
		t.Fatalf("victim = %+v, want clean valid victim", v)
	}
}

func TestRefillSameBlockNoVictim(t *testing.T) {
	c := small()
	c.Fill(0x100, coherence.ReadShared)
	v := c.Fill(0x100, coherence.WriteExclusive)
	if v.Valid {
		t.Fatalf("refill produced victim %+v", v)
	}
	if c.State(0x100) != coherence.WriteExclusive {
		t.Fatal("refill did not update state")
	}
}

func TestFillInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Fill(Invalid) did not panic")
		}
	}()
	small().Fill(0x100, coherence.Invalid)
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Fill(0x100, coherence.WriteExclusive)
	if prev := c.Invalidate(0x100); prev != coherence.WriteExclusive {
		t.Fatalf("Invalidate returned %v, want WE", prev)
	}
	if prev := c.Invalidate(0x100); prev != coherence.Invalid {
		t.Fatalf("second Invalidate returned %v, want INV", prev)
	}
	if prev := c.Invalidate(0x999000); prev != coherence.Invalid {
		t.Fatalf("Invalidate of absent block returned %v", prev)
	}
}

func TestDowngradeAndUpgrade(t *testing.T) {
	c := small()
	c.Fill(0x100, coherence.WriteExclusive)
	if !c.Downgrade(0x100) {
		t.Fatal("Downgrade of WE block failed")
	}
	if c.State(0x100) != coherence.ReadShared {
		t.Fatal("state after downgrade not RS")
	}
	if c.Downgrade(0x100) {
		t.Fatal("Downgrade of RS block succeeded")
	}
	if !c.Upgrade(0x100) {
		t.Fatal("Upgrade of RS block failed")
	}
	if c.Upgrade(0x100) {
		t.Fatal("Upgrade of WE block succeeded")
	}
	if c.Upgrade(0xdead00) {
		t.Fatal("Upgrade of absent block succeeded")
	}
}

func TestStatsCounting(t *testing.T) {
	c := small()
	c.Lookup(0x100, false) // miss
	c.Fill(0x100, coherence.ReadShared)
	c.Lookup(0x100, false) // hit
	c.Lookup(0x100, true)  // upgrade
	if c.Accesses != 3 || c.Hits != 1 || c.UpgradeRq != 1 {
		t.Fatalf("accesses/hits/upgrades = %d/%d/%d, want 3/1/1",
			c.Accesses, c.Hits, c.UpgradeRq)
	}
	if hr := c.HitRate(); hr < 0.33 || hr > 0.34 {
		t.Fatalf("HitRate = %v, want 1/3", hr)
	}
}

func TestOccupancy(t *testing.T) {
	c := small()
	c.Fill(0x00, coherence.ReadShared)
	c.Fill(0x10, coherence.WriteExclusive)
	c.Fill(0x20, coherence.WriteExclusive)
	rs, we := c.Occupancy()
	if rs != 1 || we != 2 {
		t.Fatalf("occupancy = %d RS / %d WE, want 1/2", rs, we)
	}
}

func TestLookupNeverMutatesState(t *testing.T) {
	// Property: any sequence of Lookups leaves the cache unchanged.
	c := small()
	c.Fill(0x100, coherence.ReadShared)
	c.Fill(0x210, coherence.WriteExclusive)
	f := func(addr uint32, write bool) bool {
		before0 := c.State(0x100)
		before1 := c.State(0x210)
		c.Lookup(uint64(addr), write)
		return c.State(0x100) == before0 && c.State(0x210) == before1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateTransitionInvariant(t *testing.T) {
	// Property: after any Fill/Invalidate/Upgrade/Downgrade sequence,
	// each frame is in a legal state and tags map to their own set.
	c := small()
	f := func(ops []uint16) bool {
		for _, op := range ops {
			block := uint64(op&0xff) << 4
			switch (op >> 8) % 4 {
			case 0:
				c.Fill(block, coherence.ReadShared)
			case 1:
				c.Fill(block, coherence.WriteExclusive)
			case 2:
				c.Invalidate(block)
			case 3:
				c.Downgrade(block)
			}
		}
		for i, ln := range c.lines {
			if ln.state > coherence.WriteExclusive {
				return false
			}
			if ln.state != coherence.Invalid && c.index(ln.tag) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
