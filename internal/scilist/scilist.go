// Package scilist implements an SCI-style linked-list directory
// protocol on the slotted ring, used by the paper's Table 1 to argue
// that a full-map directory dominates the linked-list organization on a
// ring. Each home keeps only a head pointer; sharers are chained
// through per-cache forward pointers. A miss is forwarded from the home
// to the head node, which supplies the data (the home supplies only
// uncached blocks), so even clean cached misses can take two
// traversals. Invalidations walk the sharing list node by node; when
// the list order conflicts with the ring direction, each hop can cost
// most of a traversal — in the worst case a block shared by n nodes
// takes n traversals to invalidate.
//
// Simplification (documented in DESIGN.md): replacement of an RS copy
// silently unlinks the node from the sharing list rather than running
// the SCI rollout handshake; rollout traffic is off the critical path
// and does not affect the traversal distributions Table 1 reports.
package scilist

import (
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/memory"
	"repro/internal/ring"
	"repro/internal/sim"
)

// CacheSupplyTime is the head node's cache fetch time (see snoop).
const CacheSupplyTime = memory.BankTime

// Options configures an Engine.
type Options struct {
	// Cache is the per-node cache geometry (zero: paper defaults).
	Cache cache.Config
	// PageBytes is the home-placement granularity; default 4096.
	PageBytes int
	// Seed drives the random page-to-home placement.
	Seed uint64
	// Home, when non-nil, supplies a pre-built page-to-home placement
	// (e.g. one with private-data hints); PageBytes and Seed are then
	// ignored.
	Home *memory.HomeMap
}

func (o *Options) fill() {
	if o.PageBytes == 0 {
		o.PageBytes = 4096
	}
}

// Engine is a linked-list directory engine over a slotted ring.
type Engine struct {
	k      *sim.Kernel
	ring   *ring.Ring
	caches []*cache.Cache
	banks  []*memory.Bank
	home   *memory.HomeMap
	dir    *memory.Directory

	// WriteBacks counts dirty-eviction block messages.
	WriteBacks uint64
	wbByNode   []uint64
}

// WriteBacksOf returns the write-backs caused by node's own evictions;
// the core's per-processor warmup gating reads it.
func (e *Engine) WriteBacksOf(node int) uint64 { return e.wbByNode[node] }

// New returns a linked-list engine over r.
func New(r *ring.Ring, opts Options) *Engine {
	opts.fill()
	k := r.Kernel()
	n := r.Geo.Nodes
	e := &Engine{
		k:      k,
		ring:   r,
		caches: make([]*cache.Cache, n),
		banks:  make([]*memory.Bank, n),
		home:   homeMapFor(n, opts),
		dir:    memory.NewDirectory(),
	}
	e.wbByNode = make([]uint64, n)
	for i := 0; i < n; i++ {
		e.caches[i] = cache.New(opts.Cache)
		e.banks[i] = memory.NewBank(k, "mem")
	}
	return e
}

// Ring returns the underlying slotted ring.
func (e *Engine) Ring() *ring.Ring { return e.ring }

// Cache returns node's cache.
func (e *Engine) Cache(node int) *cache.Cache { return e.caches[node] }

// HomeMap returns the page-to-home placement.
func (e *Engine) HomeMap() *memory.HomeMap { return e.home }

// Directory exposes the shared directory store (tests only).
func (e *Engine) Directory() *memory.Directory { return e.dir }

// Access performs one data reference for node; done fires at completion.
func (e *Engine) Access(node int, addr uint64, write bool, done func(at sim.Time, res coherence.Result)) {
	c := e.caches[node]
	block := c.BlockAddr(addr)
	switch c.Lookup(addr, write) {
	case cache.Hit:
		done(e.k.Now(), coherence.Result{Hit: true})
	case cache.MissRead:
		e.miss(node, block, false, done)
	case cache.MissWrite:
		e.miss(node, block, true, done)
	case cache.Upgrade:
		e.upgrade(node, block, done)
	}
}

// fill installs a block; dirty victims write back, clean shared victims
// silently unlink from their sharing list.
func (e *Engine) fill(node int, block uint64, st coherence.State) {
	v := e.caches[node].Fill(block, st)
	if !v.Valid {
		return
	}
	if v.Dirty {
		e.WriteBacks++
		e.wbByNode[node]++
		h := e.home.Home(v.Block)
		land := func() {
			e.banks[h].Access(func() { e.dir.Line(v.Block).RemoveSharer(node) })
		}
		if h == node {
			land()
		} else {
			vb := v.Block
			e.ring.Send(node, h, ring.BlockSlot, nil, func(sim.Time) { _ = vb; land() })
		}
	} else {
		e.dir.Line(v.Block).RemoveSharer(node)
	}
}

// probe sends a point-to-point probe in the block's parity slot. A
// zero-distance hop (the home is itself the list head, or adjacent
// list members coincide) completes immediately without ring traffic.
func (e *Engine) probe(src, dst int, block uint64, arrived func(at sim.Time)) {
	if src == dst {
		arrived(e.k.Now())
		return
	}
	e.ring.Send(src, dst, e.ring.Geo.ProbeClassFor(block), nil, func(at sim.Time) { arrived(at) })
}

// sendBlock ships one block message src → dst.
func (e *Engine) sendBlock(src, dst int, delivered func(at sim.Time)) {
	e.ring.Send(src, dst, ring.BlockSlot, nil, func(at sim.Time) { delivered(at) })
}

// traversals converts a serial path length in stages into ring
// traversals, rounding partial loops up.
func (e *Engine) traversals(stages int) int {
	if stages == 0 {
		return 0
	}
	S := e.ring.Geo.TotalStages
	t := stages / S
	if stages%S != 0 {
		t++
	}
	return t
}

// miss services a read or write miss.
func (e *Engine) miss(node int, block uint64, write bool, done func(sim.Time, coherence.Result)) {
	h := e.home.Home(block)
	g := &e.ring.Geo
	afterHome := func(pathToHome int) {
		e.banks[h].Access(func() {
			ln := e.dir.Line(block)
			head := ln.Head
			wasDirty := ln.Dirty

			if head < 0 || head == node {
				// Uncached (or our own stale entry): home supplies.
				txn := coherence.ReadMissClean
				if write {
					txn = coherence.WriteMissClean
					ln.ClearSharers()
					ln.SetDirty(node)
				} else {
					ln.RemoveSharer(node)
					ln.AddSharer(node)
				}
				if h == node {
					e.fill(node, block, fillState(write))
					done(e.k.Now(), coherence.Result{Txn: txn, Local: true})
					return
				}
				e.sendBlock(h, node, func(at sim.Time) {
					e.fill(node, block, fillState(write))
					trav := e.traversals(pathToHome + g.DistStages(h, node))
					done(at, coherence.Result{Txn: txn, Traversals: trav, Class: missClass(wasDirty, trav)})
				})
				return
			}

			// Cached: the head services the request.
			txn := coherence.ReadMissClean
			if wasDirty {
				txn = coherence.ReadMissDirty
			}
			if write {
				txn = coherence.WriteMissClean
				if wasDirty {
					txn = coherence.WriteMissDirty
				}
			}
			if !write {
				// Read: requester prepends to the list; a dirty head
				// downgrades.
				ln.Dirty = false
				ln.AddSharer(node)
				e.probe(h, head, block, func(sim.Time) {
					e.caches[head].Downgrade(block)
					e.k.After(CacheSupplyTime, func() {
						e.sendBlock(head, node, func(at sim.Time) {
							e.fill(node, block, coherence.ReadShared)
							total := pathToHome + g.DistStages(h, head) + g.DistStages(head, node)
							trav := e.traversals(total)
							done(at, coherence.Result{Txn: txn, Traversals: trav, Class: missClass(wasDirty, trav)})
						})
					})
				})
				return
			}

			// Write: the head supplies data while the purge walks the
			// rest of the list; the miss commits when both are done.
			members := ln.List() // head first; excludes nobody yet
			ln.ClearSharers()
			ln.SetDirty(node)
			var dataAt, purgeAt sim.Time = -1, -1
			purgeDist := 0
			finish := func(at sim.Time) {
				if dataAt < 0 || purgeAt < 0 {
					return
				}
				e.fill(node, block, coherence.WriteExclusive)
				total := pathToHome + purgeDist + g.DistStages(members[len(members)-1], node)
				trav := e.traversals(total)
				done(at, coherence.Result{Txn: txn, Traversals: trav, Class: missClass(wasDirty, trav)})
			}
			e.probe(h, head, block, func(sim.Time) {
				e.caches[head].Invalidate(block)
				e.k.After(CacheSupplyTime, func() {
					e.sendBlock(head, node, func(at sim.Time) {
						dataAt = at
						finish(at)
					})
				})
				// Purge the remainder of the list serially.
				e.walkList(block, members, 0, func(at sim.Time) {
					purgeAt = at
					finish(at)
				})
			})
			purgeDist = g.DistStages(h, head) + listDistance(g, members)
		})
	}
	if h == node {
		afterHome(0)
		return
	}
	e.probe(node, h, block, func(sim.Time) { afterHome(g.DistStages(node, h)) })
}

// walkList invalidates members[i+1:] one probe hop at a time, starting
// from members[i]; done fires when the tail's work is complete.
func (e *Engine) walkList(block uint64, members []int, i int, doneAt func(at sim.Time)) {
	if i+1 >= len(members) {
		doneAt(e.k.Now())
		return
	}
	from, to := members[i], members[i+1]
	e.probe(from, to, block, func(sim.Time) {
		e.caches[to].Invalidate(block)
		e.walkList(block, members, i+1, doneAt)
	})
}

// listDistance sums the downstream distances along consecutive list
// members — the serial purge path length.
func listDistance(g *ring.Geometry, members []int) int {
	d := 0
	for i := 0; i+1 < len(members); i++ {
		d += g.DistStages(members[i], members[i+1])
	}
	return d
}

func fillState(write bool) coherence.State {
	if write {
		return coherence.WriteExclusive
	}
	return coherence.ReadShared
}

func missClass(wasDirty bool, trav int) coherence.MissClass {
	switch {
	case trav <= 0:
		return coherence.LocalOrHit
	case trav == 1 && !wasDirty:
		return coherence.OneCycleClean
	case trav == 1:
		return coherence.OneCycleDirty
	default:
		return coherence.TwoCycle
	}
}

// upgrade services an invalidation: the requester holds RS and must
// purge every other list member.
func (e *Engine) upgrade(node int, block uint64, done func(sim.Time, coherence.Result)) {
	h := e.home.Home(block)
	g := &e.ring.Geo
	afterHome := func(pathToHome int) {
		e.banks[h].Access(func() {
			ln := e.dir.Line(block)
			// Other members, in list order.
			var others []int
			for _, m := range ln.List() {
				if m != node {
					others = append(others, m)
				}
			}
			ln.ClearSharers()
			ln.SetDirty(node)
			finish := func(at sim.Time, trav int) {
				if !e.caches[node].Upgrade(block) {
					e.fill(node, block, coherence.WriteExclusive)
				}
				done(at, coherence.Result{Txn: coherence.Invalidation, Traversals: trav, Local: trav == 0})
			}
			if len(others) == 0 {
				if h == node {
					finish(e.k.Now(), 0)
					return
				}
				e.probe(h, node, block, func(at sim.Time) {
					finish(at, e.traversals(pathToHome+g.DistStages(h, node)))
				})
				return
			}
			// Serial purge: home → first member → ... → tail → ack to
			// the requester.
			chain := append([]int{h}, others...)
			dist := pathToHome + listDistance(g, chain)
			tail := others[len(others)-1]
			e.walkChainFromHome(block, chain, func(sim.Time) {
				if tail == node {
					finish(e.k.Now(), e.traversals(dist))
					return
				}
				e.probe(tail, node, block, func(at sim.Time) {
					finish(at, e.traversals(dist+g.DistStages(tail, node)))
				})
			})
		})
	}
	if h == node {
		afterHome(0)
		return
	}
	e.probe(node, h, block, func(sim.Time) { afterHome(g.DistStages(node, h)) })
}

// walkChainFromHome sends the purge probe down chain (chain[0] is the
// home, which needs no invalidation).
func (e *Engine) walkChainFromHome(block uint64, chain []int, doneAt func(at sim.Time)) {
	e.walkList(block, chain, 0, doneAt)
}

// homeMapFor returns the configured home map, or builds the default
// seeded-random page placement.
func homeMapFor(n int, opts Options) *memory.HomeMap {
	if opts.Home != nil {
		return opts.Home
	}
	return memory.NewHomeMap(n, opts.PageBytes, sim.NewRand(opts.Seed))
}

// HasBlock reports whether node currently caches the block containing
// addr in a readable state (RS or WE). The core's write-buffer model
// uses it to decide whether a load can bypass an outstanding store.
func (e *Engine) HasBlock(node int, addr uint64) bool {
	c := e.caches[node]
	return c.State(c.BlockAddr(addr)) != coherence.Invalid
}
