package scilist

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/ring"
	"repro/internal/sim"
)

func testEngine(t *testing.T, nodes int) (*sim.Kernel, *Engine) {
	t.Helper()
	k := sim.NewKernel()
	r := ring.New(k, ring.Config{Nodes: nodes})
	return k, New(r, Options{Seed: 1})
}

func access(k *sim.Kernel, e *Engine, node int, addr uint64, write bool) (coherence.Result, sim.Time) {
	var res coherence.Result
	var lat sim.Time = -1
	start := k.Now()
	e.Access(node, addr, write, func(at sim.Time, r coherence.Result) {
		res = r
		lat = at - start
	})
	k.Run()
	if lat < 0 {
		panic("access never completed")
	}
	return res, lat
}

func TestUncachedMissServedByHome(t *testing.T) {
	k, e := testEngine(t, 8)
	e.HomeMap().Place(0x1000, 3)
	res, _ := access(k, e, 0, 0x1000, false)
	if res.Txn != coherence.ReadMissClean || res.Traversals != 1 {
		t.Fatalf("res = %+v, want 1-traversal clean miss from home", res)
	}
	if e.Directory().Line(0x1000).Head != 0 {
		t.Fatal("requester is not list head")
	}
}

func TestCachedCleanMissForwardedToHead(t *testing.T) {
	// Full map would serve this from the home in one traversal; the
	// linked list forwards to the head, whose position can force a
	// second traversal — the Table 1 difference.
	k, e := testEngine(t, 8)
	e.HomeMap().Place(0x2000, 2)
	access(k, e, 4, 0x2000, false) // head = 4 (on 2→0 arc? 4 is after 2)
	res, _ := access(k, e, 0, 0x2000, false)
	// Path 0→2→4→0 closes in exactly one loop (4 lies on the 2→0 arc).
	if res.Traversals != 1 {
		t.Fatalf("traversals = %d, want 1 for well-placed head", res.Traversals)
	}
	// Now a head that conflicts with the ring direction: requester 6,
	// home 2, head 0 is not on the 2→6 arc → two traversals.
	k2, e2 := testEngine(t, 8)
	e2.HomeMap().Place(0x2000, 2)
	access(k2, e2, 0, 0x2000, false)
	res2, _ := access(k2, e2, 6, 0x2000, false)
	if res2.Traversals != 2 {
		t.Fatalf("traversals = %d, want 2 for badly-placed head", res2.Traversals)
	}
	if res2.Txn != coherence.ReadMissClean {
		t.Fatalf("txn = %v, want read-miss-clean (head had RS copy)", res2.Txn)
	}
}

func TestNewReaderBecomesHead(t *testing.T) {
	k, e := testEngine(t, 8)
	e.HomeMap().Place(0x3000, 1)
	access(k, e, 3, 0x3000, false)
	access(k, e, 5, 0x3000, false)
	ln := e.Directory().Line(0x3000)
	if ln.Head != 5 {
		t.Fatalf("head = %d, want most recent reader 5", ln.Head)
	}
	lst := ln.List()
	if len(lst) != 2 || lst[0] != 5 || lst[1] != 3 {
		t.Fatalf("list = %v, want [5 3]", lst)
	}
}

func TestDirtyMissSuppliedByHeadAndDowngraded(t *testing.T) {
	k, e := testEngine(t, 8)
	e.HomeMap().Place(0x4000, 1)
	access(k, e, 5, 0x4000, true) // node 5 dirty owner (head)
	res, _ := access(k, e, 0, 0x4000, false)
	if res.Txn != coherence.ReadMissDirty {
		t.Fatalf("txn = %v, want read-miss-dirty", res.Txn)
	}
	if e.Cache(5).State(0x4000) != coherence.ReadShared {
		t.Fatal("dirty head did not downgrade")
	}
	if e.Directory().Line(0x4000).Dirty {
		t.Fatal("dirty bit survived read")
	}
}

func TestWriteMissPurgesWholeList(t *testing.T) {
	k, e := testEngine(t, 8)
	e.HomeMap().Place(0x5000, 1)
	for _, n := range []int{2, 4, 6} {
		access(k, e, n, 0x5000, false)
	}
	res, _ := access(k, e, 0, 0x5000, true)
	if res.Txn != coherence.WriteMissClean {
		t.Fatalf("txn = %v, want write-miss-clean", res.Txn)
	}
	for _, n := range []int{2, 4, 6} {
		if e.Cache(n).State(0x5000) != coherence.Invalid {
			t.Fatalf("sharer %d survived purge", n)
		}
	}
	ln := e.Directory().Line(0x5000)
	if !ln.Dirty || ln.Owner != 0 {
		t.Fatalf("directory after write: %+v", ln)
	}
	if res.Traversals < 1 {
		t.Fatalf("traversals = %d, want >= 1", res.Traversals)
	}
}

func TestInvalidationTraversalsGrowWithAdverseListOrder(t *testing.T) {
	// Sharers acquired in ascending ring order produce a sharing list
	// in *descending* order (SCI prepends), so the purge walk fights
	// the ring direction: each hop is nearly a full loop. This is the
	// paper's worst case: ~n traversals for n sharers.
	k, e := testEngine(t, 8)
	e.HomeMap().Place(0x6000, 0)
	readers := []int{1, 2, 3, 4, 5}
	for _, n := range readers {
		access(k, e, n, 0x6000, false)
	}
	// List is now [5 4 3 2 1]; node 6 upgrades... node 6 has no copy,
	// so use a write miss, which purges the same list.
	res, _ := access(k, e, 6, 0x6000, true)
	if res.Traversals < 3 {
		t.Fatalf("adverse-order purge took %d traversals, want >= 3", res.Traversals)
	}
}

func TestUpgradeSoleMember(t *testing.T) {
	k, e := testEngine(t, 8)
	e.HomeMap().Place(0x7000, 2)
	access(k, e, 0, 0x7000, false)
	res, _ := access(k, e, 0, 0x7000, true)
	if res.Txn != coherence.Invalidation || res.Traversals != 1 {
		t.Fatalf("res = %+v, want 1-traversal invalidation", res)
	}
	if e.Cache(0).State(0x7000) != coherence.WriteExclusive {
		t.Fatal("upgrader not WE")
	}
}

func TestUpgradeWithOtherMembersPurges(t *testing.T) {
	k, e := testEngine(t, 8)
	e.HomeMap().Place(0x8000, 1)
	access(k, e, 0, 0x8000, false)
	access(k, e, 3, 0x8000, false)
	access(k, e, 6, 0x8000, false)
	res, _ := access(k, e, 0, 0x8000, true)
	if res.Txn != coherence.Invalidation {
		t.Fatalf("txn = %v, want invalidation", res.Txn)
	}
	for _, n := range []int{3, 6} {
		if e.Cache(n).State(0x8000) != coherence.Invalid {
			t.Fatalf("member %d survived upgrade purge", n)
		}
	}
	if e.Cache(0).State(0x8000) != coherence.WriteExclusive {
		t.Fatal("upgrader not WE")
	}
	if res.Traversals < 2 {
		t.Fatalf("purge of 2 members took %d traversals, want >= 2", res.Traversals)
	}
}

func TestLocalUncachedMissIsFree(t *testing.T) {
	k, e := testEngine(t, 8)
	e.HomeMap().Place(0x9000, 4)
	res, lat := access(k, e, 4, 0x9000, false)
	if !res.Local || res.Traversals != 0 {
		t.Fatalf("res = %+v, want local miss", res)
	}
	if lat <= 0 {
		t.Fatalf("local miss latency = %v, want bank time", lat)
	}
}

func TestCleanEvictionUnlinksSilently(t *testing.T) {
	k, e := testEngine(t, 4)
	const a, b = 0x1_0000_0000, 0x1_0002_0000 // conflicting set
	e.HomeMap().Place(a, 1)
	e.HomeMap().Place(b, 1)
	access(k, e, 0, a, false)
	blockA := e.Cache(0).BlockAddr(a)
	if e.Directory().Line(blockA).Head != 0 {
		t.Fatal("reader not on list")
	}
	access(k, e, 0, b, false) // evicts clean a
	if e.Directory().Line(blockA).HasSharer(0) {
		t.Fatal("evicted clean copy still on sharing list")
	}
	if e.WriteBacks != 0 {
		t.Fatal("clean eviction generated a write-back")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	k, e := testEngine(t, 4)
	const a, b = 0x1_0000_0000, 0x1_0002_0000
	e.HomeMap().Place(a, 1)
	e.HomeMap().Place(b, 1)
	access(k, e, 0, a, true)
	access(k, e, 0, b, false)
	k.Run()
	if e.WriteBacks != 1 {
		t.Fatalf("WriteBacks = %d, want 1", e.WriteBacks)
	}
	ln := e.Directory().Line(e.Cache(0).BlockAddr(a))
	if ln.Dirty || ln.HasSharer(0) {
		t.Fatalf("write-back did not clean directory: %+v", ln)
	}
}

func TestConsistencyUnderRandomTraffic(t *testing.T) {
	k := sim.NewKernel()
	r := ring.New(k, ring.Config{Nodes: 8})
	e := New(r, Options{Seed: 9})
	rng := sim.NewRand(321)
	blocks := []uint64{0x1000, 0x2000, 0x3000}
	for i := 0; i < 250; i++ {
		node := rng.Intn(8)
		blk := blocks[rng.Intn(len(blocks))]
		write := rng.Bool(0.4)
		e.Access(node, blk, write, func(sim.Time, coherence.Result) {})
		k.Run()
		for _, b := range blocks {
			ln := e.Directory().Line(b)
			writers := 0
			for n := 0; n < 8; n++ {
				st := e.Cache(n).State(b)
				if st == coherence.WriteExclusive {
					writers++
				}
				if st != coherence.Invalid && !ln.HasSharer(n) {
					t.Fatalf("block %#x: cache %d holds %v but absent from list", b, n, st)
				}
			}
			if writers > 1 {
				t.Fatalf("block %#x has %d writers", b, writers)
			}
			if len(ln.List()) != ln.NumSharers() {
				t.Fatalf("block %#x: list/presence mismatch", b)
			}
		}
	}
}
