package buildinfo

import (
	"regexp"
	"strings"
	"testing"
)

func TestReadNeverEmpty(t *testing.T) {
	i := Read()
	if i.Version == "" {
		t.Error("Version empty")
	}
	if !strings.HasPrefix(i.GoVersion, "go") {
		t.Errorf("GoVersion = %q", i.GoVersion)
	}
	if s := i.String(); !strings.Contains(s, i.Version) || !strings.Contains(s, i.GoVersion) {
		t.Errorf("String() = %q does not carry identity", s)
	}
}

func TestStringTruncatesRevision(t *testing.T) {
	i := Info{Version: "v1.2.3", GoVersion: "go1.22.0",
		Revision: "0123456789abcdef0123456789abcdef01234567", Modified: true}
	s := i.String()
	if !strings.Contains(s, "0123456789ab+dirty") {
		t.Errorf("String() = %q, want truncated dirty revision", s)
	}
	if strings.Contains(s, "0123456789abc") {
		t.Errorf("String() = %q, revision not truncated to 12 chars", s)
	}
}

func TestWriteMetricShape(t *testing.T) {
	var b strings.Builder
	WriteMetric(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP ringsim_build_info ",
		"# TYPE ringsim_build_info gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	re := regexp.MustCompile(`(?m)^ringsim_build_info\{version="[^"]+",goversion="go[^"]+",revision="[^"]*"\} 1$`)
	if !re.MatchString(out) {
		t.Errorf("sample line malformed:\n%s", out)
	}
}
