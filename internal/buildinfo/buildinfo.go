// Package buildinfo reports what binary is running: module version,
// Go toolchain, and VCS revision, read from the build metadata the go
// tool embeds (debug.ReadBuildInfo). It backs the daemons' -version
// flags and the ringsim_build_info metric, so a scrape or a bug
// report always says exactly which build produced it.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Info is the identity of the running binary.
type Info struct {
	Version   string `json:"version"`            // module version, "devel" for local builds
	GoVersion string `json:"go_version"`         // toolchain that built the binary
	Revision  string `json:"revision,omitempty"` // VCS commit hash, if embedded
	Modified  bool   `json:"modified,omitempty"` // true when built from a dirty tree
}

// Read returns the running binary's build identity. It never fails:
// binaries built without module or VCS metadata (go test, bare go
// build outside a checkout) degrade to "devel" and an empty revision.
func Read() Info {
	info := Info{Version: "devel", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		info.Version = v
	}
	if bi.GoVersion != "" {
		info.GoVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// String renders the one-line -version output for a component.
func (i Info) String() string {
	rev := i.Revision
	if rev == "" {
		rev = "unknown"
	} else {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if i.Modified {
			rev += "+dirty"
		}
	}
	return fmt.Sprintf("%s (%s, rev %s)", i.Version, i.GoVersion, rev)
}

// WriteMetric writes the ringsim_build_info gauge in Prometheus
// exposition format: constant 1 with the identity as labels, the
// standard pattern for joining build identity onto any other series.
func WriteMetric(w io.Writer) {
	i := Read()
	rev := i.Revision
	if i.Modified {
		rev += "+dirty"
	}
	fmt.Fprintf(w, "# HELP ringsim_build_info Build identity of the running binary (constant 1).\n")
	fmt.Fprintf(w, "# TYPE ringsim_build_info gauge\n")
	fmt.Fprintf(w, "ringsim_build_info{version=%q,goversion=%q,revision=%q} 1\n",
		i.Version, i.GoVersion, rev)
}
