// Package trace defines the canonical multiprocessor memory-reference
// trace format used throughout the reproduction, together with binary
// serialization and the per-trace statistics reported in the paper's
// Table 2.
//
// The original study consumed CacheMire traces (SPLASH programs) and
// MIT-provided 64-processor FORTRAN traces. Those tapes are not
// available; the workload package synthesizes statistically equivalent
// streams in this format instead (see DESIGN.md, substitutions).
package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/coherence"
)

// Ref is a single memory reference by one processor.
type Ref struct {
	// CPU is the issuing processor, 0-based.
	CPU int32
	// Op is the reference kind (load, store, ifetch).
	Op coherence.Op
	// Shared marks references into the shared data region; the rest is
	// private data or instructions. Carried explicitly so that Table 2
	// statistics do not depend on address-map heuristics.
	Shared bool
	// Addr is the byte address.
	Addr uint64
}

// Trace is an in-memory reference trace with per-CPU streams.
//
// References are stored per processor rather than globally interleaved:
// the simulators are execution-driven at the processor level (each CPU
// consumes its own stream at its own pace, as in the paper's blocking
// processor model), so a global interleaving would be discarded anyway.
type Trace struct {
	// Name labels the workload, e.g. "MP3D".
	Name string
	// Streams holds one reference stream per processor.
	Streams [][]Ref
}

// NumCPUs returns the number of processor streams.
func (t *Trace) NumCPUs() int { return len(t.Streams) }

// TotalRefs returns the reference count summed over all CPUs.
func (t *Trace) TotalRefs() int {
	n := 0
	for _, s := range t.Streams {
		n += len(s)
	}
	return n
}

// Stats are the Table 2 trace characteristics.
type Stats struct {
	Name          string
	CPUs          int
	DataRefs      uint64 // loads + stores
	InstrRefs     uint64
	PrivateRefs   uint64 // private data references
	PrivateWrites uint64
	SharedRefs    uint64 // shared data references
	SharedWrites  uint64
}

// PrivateWriteFrac returns the write fraction of private data references.
func (s Stats) PrivateWriteFrac() float64 { return frac(s.PrivateWrites, s.PrivateRefs) }

// SharedWriteFrac returns the write fraction of shared data references.
func (s Stats) SharedWriteFrac() float64 { return frac(s.SharedWrites, s.SharedRefs) }

// SharedFrac returns the fraction of data references that touch shared
// data.
func (s Stats) SharedFrac() float64 { return frac(s.SharedRefs, s.DataRefs) }

func frac(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// String renders the stats as one Table 2-style line.
func (s Stats) String() string {
	return fmt.Sprintf("%s/%d: data=%d instr=%d private=%d(%.0f%%w) shared=%d(%.0f%%w)",
		s.Name, s.CPUs, s.DataRefs, s.InstrRefs,
		s.PrivateRefs, 100*s.PrivateWriteFrac(),
		s.SharedRefs, 100*s.SharedWriteFrac())
}

// Observe folds one reference into the statistics. It lets callers
// measure a reference stream as it is generated, without materializing
// the trace in memory.
func (s *Stats) Observe(r Ref) {
	switch r.Op {
	case coherence.Ifetch:
		s.InstrRefs++
	case coherence.Load, coherence.Store:
		s.DataRefs++
		w := r.Op == coherence.Store
		if r.Shared {
			s.SharedRefs++
			if w {
				s.SharedWrites++
			}
		} else {
			s.PrivateRefs++
			if w {
				s.PrivateWrites++
			}
		}
	}
}

// Measure computes Table 2-style characteristics for a trace.
func Measure(t *Trace) Stats {
	s := Stats{Name: t.Name, CPUs: t.NumCPUs()}
	for _, stream := range t.Streams {
		for _, r := range stream {
			s.Observe(r)
		}
	}
	return s
}

// Binary format:
//
//	magic   [8]byte  "RINGTRC1"
//	nameLen uint16, name bytes
//	cpus    uint32
//	per cpu: count uint64, then count records of
//	    flags byte (bits 0-1 op, bit 2 shared), addr uint64
//
// All integers little-endian.
var magic = [8]byte{'R', 'I', 'N', 'G', 'T', 'R', 'C', '1'}

// ErrBadFormat reports a malformed or foreign trace stream.
var ErrBadFormat = errors.New("trace: bad format")

// Write serializes t to w in the binary trace format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if len(t.Name) > 0xffff {
		return fmt.Errorf("trace: name too long (%d bytes)", len(t.Name))
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(t.Streams))); err != nil {
		return err
	}
	var rec [9]byte
	for _, stream := range t.Streams {
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(stream))); err != nil {
			return err
		}
		for _, r := range stream {
			flags := byte(r.Op) & 0x3
			if r.Shared {
				flags |= 0x4
			}
			rec[0] = flags
			binary.LittleEndian.PutUint64(rec[1:], r.Addr)
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, ErrBadFormat
	}
	var nameLen uint16
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var cpus uint32
	if err := binary.Read(br, binary.LittleEndian, &cpus); err != nil {
		return nil, err
	}
	if cpus > 1<<16 {
		return nil, fmt.Errorf("%w: implausible cpu count %d", ErrBadFormat, cpus)
	}
	t := &Trace{Name: string(name), Streams: make([][]Ref, cpus)}
	var rec [9]byte
	for cpu := range t.Streams {
		var count uint64
		if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
			return nil, err
		}
		if count > 1<<32 {
			return nil, fmt.Errorf("%w: implausible record count %d", ErrBadFormat, count)
		}
		stream := make([]Ref, count)
		for i := range stream {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return nil, err
			}
			op := coherence.Op(rec[0] & 0x3)
			if op > coherence.Ifetch {
				return nil, fmt.Errorf("%w: bad op %d", ErrBadFormat, op)
			}
			stream[i] = Ref{
				CPU:    int32(cpu),
				Op:     op,
				Shared: rec[0]&0x4 != 0,
				Addr:   binary.LittleEndian.Uint64(rec[1:]),
			}
		}
		t.Streams[cpu] = stream
	}
	return t, nil
}

// WriteFile writes t to path, gzip-compressing when the file name ends
// in ".gz" (reference traces compress extremely well — the paper's
// multi-million-reference traces would be unwieldy raw).
func WriteFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var w io.Writer = f
	if strings.HasSuffix(path, ".gz") {
		zw := gzip.NewWriter(f)
		defer zw.Close()
		w = zw
	}
	if err := Write(w, t); err != nil {
		return err
	}
	if zw, ok := w.(*gzip.Writer); ok {
		if err := zw.Close(); err != nil {
			return err
		}
	}
	return f.Close()
}

// ReadFile reads a trace written by WriteFile, transparently handling
// gzip compression (detected from the magic bytes, not the name).
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(2)
	if err != nil {
		return nil, err
	}
	var r io.Reader = br
	if head[0] == 0x1f && head[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, err
		}
		defer zr.Close()
		r = zr
	}
	return Read(r)
}
