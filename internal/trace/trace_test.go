package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/coherence"
)

func sampleTrace() *Trace {
	return &Trace{
		Name: "MP3D",
		Streams: [][]Ref{
			{
				{CPU: 0, Op: coherence.Ifetch, Addr: 0x1000},
				{CPU: 0, Op: coherence.Load, Shared: true, Addr: 0x8000},
				{CPU: 0, Op: coherence.Store, Shared: false, Addr: 0x2000},
			},
			{
				{CPU: 1, Op: coherence.Store, Shared: true, Addr: 0x8010},
			},
		},
	}
}

func TestTraceCounts(t *testing.T) {
	tr := sampleTrace()
	if tr.NumCPUs() != 2 {
		t.Fatalf("NumCPUs() = %d, want 2", tr.NumCPUs())
	}
	if tr.TotalRefs() != 4 {
		t.Fatalf("TotalRefs() = %d, want 4", tr.TotalRefs())
	}
}

func TestMeasure(t *testing.T) {
	s := Measure(sampleTrace())
	if s.InstrRefs != 1 {
		t.Errorf("InstrRefs = %d, want 1", s.InstrRefs)
	}
	if s.DataRefs != 3 {
		t.Errorf("DataRefs = %d, want 3", s.DataRefs)
	}
	if s.SharedRefs != 2 || s.SharedWrites != 1 {
		t.Errorf("shared = %d/%d writes, want 2/1", s.SharedRefs, s.SharedWrites)
	}
	if s.PrivateRefs != 1 || s.PrivateWrites != 1 {
		t.Errorf("private = %d/%d writes, want 1/1", s.PrivateRefs, s.PrivateWrites)
	}
	if got := s.SharedWriteFrac(); got != 0.5 {
		t.Errorf("SharedWriteFrac = %v, want 0.5", got)
	}
	if got := s.SharedFrac(); got < 0.66 || got > 0.67 {
		t.Errorf("SharedFrac = %v, want 2/3", got)
	}
}

func TestMeasureEmpty(t *testing.T) {
	s := Measure(&Trace{Name: "empty"})
	if s.SharedWriteFrac() != 0 || s.PrivateWriteFrac() != 0 || s.SharedFrac() != 0 {
		t.Error("empty-trace fractions must be 0, not NaN")
	}
}

func TestStatsString(t *testing.T) {
	s := Measure(sampleTrace())
	if str := s.String(); str == "" {
		t.Error("Stats.String() empty")
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(name string, cpus uint8, seed int64, n uint8) bool {
		nc := int(cpus%8) + 1
		tr := &Trace{Name: name, Streams: make([][]Ref, nc)}
		s := uint64(seed)
		for c := 0; c < nc; c++ {
			count := int(n % 50)
			stream := make([]Ref, count)
			for i := range stream {
				s = s*6364136223846793005 + 1442695040888963407
				stream[i] = Ref{
					CPU:    int32(c),
					Op:     coherence.Op(s % 3),
					Shared: s&8 != 0,
					Addr:   s >> 4,
				}
			}
			tr.Streams[c] = stream
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	_, err := Read(bytes.NewReader([]byte("NOTATRACEFILE AT ALL")))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("Read bad magic: err = %v, want ErrBadFormat", err)
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, 9, 15, len(full) - 1} {
		if cut >= len(full) {
			continue
		}
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("Read accepted trace truncated to %d bytes", cut)
		} else if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) && !errors.Is(err, ErrBadFormat) {
			t.Fatalf("unexpected error class for %d-byte prefix: %v", cut, err)
		}
	}
}

func TestReadRejectsImplausibleCPUCount(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.Write([]byte{0, 0})                   // empty name
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // 2^32-1 cpus
	if _, err := Read(&buf); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
}

func TestWriteReadFilePlain(t *testing.T) {
	path := t.TempDir() + "/trace.trc"
	if err := WriteFile(path, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleTrace()) {
		t.Fatal("plain file round trip mismatch")
	}
}

func TestWriteReadFileGzip(t *testing.T) {
	dir := t.TempDir()
	plain := dir + "/trace.trc"
	zipped := dir + "/trace.trc.gz"
	if err := WriteFile(plain, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(zipped, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleTrace()) {
		t.Fatal("gzip round trip mismatch")
	}
	// The compressed file must actually be compressed for a repetitive
	// trace of any size; with the tiny sample, just check the gzip
	// magic landed in place.
	raw, err := os.ReadFile(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("gz file lacks gzip magic")
	}
}

func TestGzipCompressesRealTrace(t *testing.T) {
	// A larger synthetic-like trace: repetitive addresses compress.
	tr := &Trace{Name: "big", Streams: make([][]Ref, 2)}
	for c := range tr.Streams {
		for i := 0; i < 20000; i++ {
			tr.Streams[c] = append(tr.Streams[c], Ref{
				CPU: int32(c), Op: coherence.Op(i % 3), Addr: uint64(i%512) * 16,
			})
		}
	}
	dir := t.TempDir()
	if err := WriteFile(dir+"/big.trc", tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(dir+"/big.trc.gz", tr); err != nil {
		t.Fatal(err)
	}
	ps, _ := os.Stat(dir + "/big.trc")
	zs, _ := os.Stat(dir + "/big.trc.gz")
	if zs.Size() >= ps.Size()/2 {
		t.Fatalf("gzip trace %d bytes vs plain %d: expected >2x compression", zs.Size(), ps.Size())
	}
	got, err := ReadFile(dir + "/big.trc.gz")
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalRefs() != tr.TotalRefs() {
		t.Fatal("big gzip round trip lost records")
	}
}
