package ring

import (
	"testing"

	"repro/internal/sim"
)

func TestPaperGeometry8Nodes(t *testing.T) {
	// Section 4.2: 16-byte blocks, 32-bit ring → frame = 10 stages;
	// 8 nodes × 3 stages = 24, padded by 6 to 30 stages (3 frames);
	// round trip 60 ns at 500 MHz.
	g := NewGeometry(Config{Nodes: 8})
	if g.ProbeStages != 2 {
		t.Errorf("ProbeStages = %d, want 2", g.ProbeStages)
	}
	if g.BlockStages != 6 {
		t.Errorf("BlockStages = %d, want 6", g.BlockStages)
	}
	if g.FrameStages != 10 {
		t.Errorf("FrameStages = %d, want 10", g.FrameStages)
	}
	if g.Frames != 3 {
		t.Errorf("Frames = %d, want 3", g.Frames)
	}
	if g.TotalStages != 30 {
		t.Errorf("TotalStages = %d, want 30", g.TotalStages)
	}
	if rtt := g.RoundTrip(); rtt != 60*sim.Nanosecond {
		t.Errorf("RoundTrip = %v, want 60ns", rtt)
	}
	if ft := g.FrameTime(); ft != 20*sim.Nanosecond {
		t.Errorf("FrameTime = %v, want 20ns", ft)
	}
	if n := g.NumSlots(); n != 9 {
		t.Errorf("NumSlots = %d, want 9 (3 frames × 3 slots)", n)
	}
	if n := g.SlotsOfClass(BlockSlot); n != 3 {
		t.Errorf("block slots = %d, want 3", n)
	}
	if n := g.SlotsOfClass(ProbeEven); n != 3 {
		t.Errorf("probe-even slots = %d, want 3", n)
	}
}

func TestTable3SnoopRate(t *testing.T) {
	// Table 3 gives the probe inter-arrival time (= frame time with a
	// 2-way interleaved dual directory) for 500 MHz links.
	cases := []struct {
		width, block int
		wantNS       float64
	}{
		{16, 16, 40}, {32, 16, 20}, {64, 16, 10},
		{16, 32, 56}, {32, 32, 28}, {64, 32, 14},
		{16, 64, 88}, {32, 64, 44}, {64, 64, 22},
		{16, 128, 152}, {32, 128, 76}, {64, 128, 38},
	}
	for _, c := range cases {
		g := NewGeometry(Config{Nodes: 8, WidthBits: c.width, BlockBytes: c.block})
		if got := g.FrameTime().Nanoseconds(); got != c.wantNS {
			t.Errorf("width %d block %d: frame time %.0f ns, want %.0f",
				c.width, c.block, got, c.wantNS)
		}
	}
}

func TestGeometryDefaults(t *testing.T) {
	g := NewGeometry(Config{Nodes: 16})
	if g.ClockPS != 2*sim.Nanosecond || g.WidthBits != 32 || g.BlockBytes != 16 || g.StagesPerNode != 3 {
		t.Fatalf("defaults not applied: %+v", g.Config)
	}
}

func TestGeometryValidation(t *testing.T) {
	bad := []Config{
		{Nodes: 0},
		{Nodes: 4, WidthBits: 12},
		{Nodes: 4, WidthBits: 64, BlockBytes: 4}, // 32 bits of data in 64-bit words
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			NewGeometry(cfg)
		}()
	}
}

func TestSlotLayoutCoversFrame(t *testing.T) {
	g := NewGeometry(Config{Nodes: 8})
	// Slots within a frame must tile it: starts 0,2,4 then next frame.
	wantStarts := []int{0, 2, 4, 10, 12, 14, 20, 22, 24}
	wantClass := []SlotClass{ProbeEven, ProbeOdd, BlockSlot, ProbeEven, ProbeOdd, BlockSlot, ProbeEven, ProbeOdd, BlockSlot}
	for i := range wantStarts {
		if g.slotStart[i] != wantStarts[i] || g.slotClass[i] != wantClass[i] {
			t.Fatalf("slot %d = (%d,%v), want (%d,%v)",
				i, g.slotStart[i], g.slotClass[i], wantStarts[i], wantClass[i])
		}
	}
}

func TestSlotMixAblationGeometry(t *testing.T) {
	// 2 probe pairs per block slot: frame = 4 probes + 1 block.
	g := NewGeometry(Config{Nodes: 8, ProbePairsPerBlockSlot: 2})
	if g.FrameStages != 4*2+6 {
		t.Fatalf("FrameStages = %d, want 14", g.FrameStages)
	}
	if g.SlotsOfClass(ProbeEven) != 2*g.Frames {
		t.Fatalf("probe-even slots = %d, want %d", g.SlotsOfClass(ProbeEven), 2*g.Frames)
	}
}

func TestDistAndPropTime(t *testing.T) {
	g := NewGeometry(Config{Nodes: 8}) // 30 stages
	if d := g.DistStages(0, 1); d != 3 {
		t.Errorf("Dist(0,1) = %d, want 3 (30 stages / 8 nodes ≈ 3)", d)
	}
	if d := g.DistStages(7, 0); d+g.DistStages(0, 7) != g.TotalStages {
		t.Errorf("forward+backward distances don't close the ring")
	}
	if d := g.DistStages(3, 3); d != 0 {
		t.Errorf("Dist(3,3) = %d, want 0", d)
	}
	if p := g.PropTime(0, 4); p != sim.Time(g.DistStages(0, 4))*g.ClockPS {
		t.Errorf("PropTime inconsistent with DistStages")
	}
}

func TestDistanceClosesRingForAllPairs(t *testing.T) {
	for _, n := range []int{2, 3, 8, 16, 32, 64} {
		g := NewGeometry(Config{Nodes: n})
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				d := g.DistStages(a, b)
				if d < 0 || d >= g.TotalStages {
					t.Fatalf("n=%d Dist(%d,%d) = %d out of range", n, a, b, d)
				}
				if a != b && d+g.DistStages(b, a) != g.TotalStages {
					t.Fatalf("n=%d: Dist(%d,%d)+Dist(%d,%d) != circumference", n, a, b, b, a)
				}
			}
		}
	}
}

func TestProbeClassParity(t *testing.T) {
	g := NewGeometry(Config{Nodes: 8})
	if c := g.ProbeClassFor(0x0); c != ProbeEven {
		t.Errorf("block 0 class = %v, want probe-even", c)
	}
	if c := g.ProbeClassFor(0x10); c != ProbeOdd {
		t.Errorf("block 0x10 class = %v, want probe-odd", c)
	}
	if c := g.ProbeClassFor(0x20); c != ProbeEven {
		t.Errorf("block 0x20 class = %v, want probe-even", c)
	}
}

func TestSlotClassString(t *testing.T) {
	if ProbeEven.String() != "probe-even" || ProbeOdd.String() != "probe-odd" || BlockSlot.String() != "block" {
		t.Error("slot class names wrong")
	}
}

func Test64NodeGeometry(t *testing.T) {
	g := NewGeometry(Config{Nodes: 64})
	if g.TotalStages < 64*3 {
		t.Fatalf("TotalStages = %d < minimum 192", g.TotalStages)
	}
	if g.TotalStages%g.FrameStages != 0 {
		t.Fatal("ring not a whole number of frames")
	}
	// 192/10 → 20 frames → 200 stages → 400 ns round trip.
	if g.RoundTrip() != 400*sim.Nanosecond {
		t.Fatalf("64-node RTT = %v, want 400ns", g.RoundTrip())
	}
}
