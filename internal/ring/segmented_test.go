package ring

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// segLog records every client callback a segment observed.
type segLog struct {
	entries []string
}

func (l *segLog) add(tag string, node int, at sim.Time, p SegPayload) {
	l.entries = append(l.entries, fmt.Sprintf("%s n%d @%d a%d b%d", tag, node, at, p.A, p.B))
}

// chatClient logs callbacks and answers deliveries carrying B > 0 with
// a reply to the original sender — cross-triggered traffic, so the
// identity check covers messages born from boundary arrivals, not just
// preplanned ones.
type chatClient struct {
	sr  *SegRing
	log *segLog
}

func (c *chatClient) SegDeliver(dst int, at sim.Time, p SegPayload) {
	c.log.add("deliver", dst, at, p)
	if p.B > 0 {
		c.sr.Send(dst, int(p.X), SlotClass(p.Kind), SegPayload{
			Kind: p.Kind, X: int32(dst), A: p.A + 1000, B: p.B - 1,
		})
	}
}
func (c *chatClient) SegVisit(node int, at sim.Time, p SegPayload) { c.log.add("visit", node, at, p) }
func (c *chatClient) SegReturn(src int, at sim.Time, p SegPayload) { c.log.add("return", src, at, p) }

// sendPlan schedules one Send at a fixed time on the segment owning
// the source node.
type sendPlan struct {
	sr    *SegRing
	src   int
	dst   int
	class SlotClass
	p     SegPayload
}

func (s *sendPlan) OnEvent(at sim.Time) { s.sr.Send(s.src, s.dst, s.class, s.p) }

// planTraffic derives a deterministic mixed workload: point-to-point
// probes and blocks, broadcasts, and reply chains, from every node.
func planTraffic(rng *rand.Rand, nodes int) []struct {
	at    sim.Time
	src   int
	dst   int
	class SlotClass
	p     SegPayload
} {
	var plan []struct {
		at    sim.Time
		src   int
		dst   int
		class SlotClass
		p     SegPayload
	}
	id := uint64(0)
	for i := 0; i < 4*nodes; i++ {
		src := rng.Intn(nodes)
		dst := rng.Intn(nodes)
		class := SlotClass(rng.Intn(NumSlotClasses))
		if dst == src {
			dst = Broadcast
		}
		replies := uint64(0)
		if dst != Broadcast && rng.Intn(2) == 0 {
			replies = uint64(rng.Intn(3)) // bounce back and forth
		}
		plan = append(plan, struct {
			at    sim.Time
			src   int
			dst   int
			class SlotClass
			p     SegPayload
		}{
			at:    sim.Time(rng.Intn(300)) * sim.Nanosecond,
			src:   src,
			dst:   dst,
			class: class,
			p:     SegPayload{Kind: uint8(class), X: int32(src), A: id, B: replies},
		})
		id++
	}
	return plan
}

// runSegmented executes the planned traffic over a segment chain,
// sequentially (parts == 0) or on a ParKernel with parts shards, and
// returns the per-segment callback logs plus total events fired.
func runSegmented(t *testing.T, cfg Config, seed int64, parts int) ([][]string, uint64) {
	t.Helper()
	g := NewGeometry(cfg)
	S := g.Segments
	plan := planTraffic(rand.New(rand.NewSource(seed)), cfg.Nodes)

	var segs []*SegRing
	var kernels []*sim.Kernel
	var pk *sim.ParKernel
	if parts == 0 {
		k := sim.NewKernel()
		segs = NewSegmentedChain(k, cfg)
		kernels = []*sim.Kernel{k}
	} else {
		window := g.MinSegmentHop()
		pk = sim.NewParKernel(parts, window)
		segs = make([]*SegRing, S)
		for s := 0; s < S; s++ {
			segs[s] = NewSegment(pk.Shard(s*parts/S), cfg, s)
		}
		for s := 0; s < S; s++ {
			src, dst := s*parts/S, ((s+1)%S)*parts/S
			next := segs[(s+1)%S]
			if src == dst {
				segs[s].Link(next, pk.Shard(src).AtBoundary)
			} else {
				segs[s].Link(next, func(at sim.Time, seq uint64, h sim.EventHandler) {
					pk.PostAt(src, dst, at, seq, h)
				})
			}
		}
		for s := 0; s < S; s++ {
			kernels = append(kernels, pk.Shard(s*parts/S))
		}
	}

	logs := make([]*segLog, S)
	for s, sr := range segs {
		logs[s] = &segLog{}
		sr.SetClient(&chatClient{sr: sr, log: logs[s]})
	}
	for _, m := range plan {
		sr := segs[g.SegOf(m.src)]
		sr.Kernel().AtEvent(m.at, &sendPlan{sr: sr, src: m.src, dst: m.dst, class: m.class, p: m.p})
	}

	var fired uint64
	if parts == 0 {
		kernels[0].Run()
		fired = kernels[0].Fired()
	} else {
		pk.Run()
		for i := 0; i < parts; i++ {
			fired += pk.Shard(i).Fired()
		}
	}
	out := make([][]string, S)
	for s := range logs {
		out[s] = logs[s].entries
	}
	return out, fired
}

// TestSegRingSequentialParallelIdentical is the randomized
// segment-count cross-check: the same segmented model run on one
// kernel and sharded over a ParKernel must produce identical
// per-segment callback logs and fire the same number of events.
func TestSegRingSequentialParallelIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1993))
	shapes := []struct{ nodes, segs int }{{8, 2}, {8, 4}, {16, 4}, {16, 8}, {12, 6}}
	for iter := 0; iter < 8; iter++ {
		sh := shapes[rng.Intn(len(shapes))]
		seed := rng.Int63()
		cfg := Config{Nodes: sh.nodes, Segments: sh.segs}
		seqLogs, seqFired := runSegmented(t, cfg, seed, 0)
		for _, parts := range divisorsOf(sh.segs) {
			parLogs, parFired := runSegmented(t, cfg, seed, parts)
			if !reflect.DeepEqual(seqLogs, parLogs) {
				for s := range seqLogs {
					if !reflect.DeepEqual(seqLogs[s], parLogs[s]) {
						t.Fatalf("nodes=%d segs=%d parts=%d seed=%d: segment %d log diverges:\nseq: %v\npar: %v",
							sh.nodes, sh.segs, parts, seed, s, seqLogs[s], parLogs[s])
					}
				}
			}
			if seqFired != parFired {
				t.Fatalf("nodes=%d segs=%d parts=%d seed=%d: events fired %d (seq) != %d (par)",
					sh.nodes, sh.segs, parts, seed, seqFired, parFired)
			}
		}
	}
}

func divisorsOf(n int) []int {
	var d []int
	for i := 2; i <= n; i++ {
		if n%i == 0 {
			d = append(d, i)
		}
	}
	return d
}

// TestSegRingUncontendedSchedule pins the exact uncontended timing:
// departure at t=0, visits at propagation distances, delivery at the
// destination's distance plus accumulated boundary hops — all of which
// are plain PropTime because boundary links add distance, not extra
// serialization, when idle.
func TestSegRingUncontendedSchedule(t *testing.T) {
	cfg := Config{Nodes: 8, Segments: 4}
	k := sim.NewKernel()
	segs := NewSegmentedChain(k, cfg)
	g := segs[0].Geo
	logs := make([]*segLog, len(segs))
	for s, sr := range segs {
		logs[s] = &segLog{}
		sr.SetClient(&chatClient{sr: sr, log: logs[s]})
	}
	// Node 1 -> node 6: crosses three boundaries, visits 2,3,4,5.
	segs[0].Send(1, 6, ProbeEven, SegPayload{A: 7})
	k.Run()
	var got []string
	for _, l := range logs {
		got = append(got, l.entries...)
	}
	want := []string{
		fmt.Sprintf("visit n2 @%d a7 b0", g.PropTime(1, 2)),
		fmt.Sprintf("visit n3 @%d a7 b0", g.PropTime(1, 3)),
		fmt.Sprintf("visit n4 @%d a7 b0", g.PropTime(1, 4)),
		fmt.Sprintf("visit n5 @%d a7 b0", g.PropTime(1, 5)),
		fmt.Sprintf("deliver n6 @%d a7 b0", g.PropTime(1, 6)),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("schedule = %v, want %v", got, want)
	}

	// Broadcast from node 3: everyone else observes it, it returns
	// after one full circumference.
	k2 := sim.NewKernel()
	segs2 := NewSegmentedChain(k2, cfg)
	logs2 := make([]*segLog, len(segs2))
	for s, sr := range segs2 {
		logs2[s] = &segLog{}
		sr.SetClient(&chatClient{sr: sr, log: logs2[s]})
	}
	segs2[1].Send(3, Broadcast, BlockSlot, SegPayload{A: 9})
	k2.Run()
	seen := 0
	for _, l := range logs2 {
		seen += len(l.entries)
	}
	if seen != cfg.Nodes {
		t.Fatalf("broadcast produced %d callbacks, want %d (7 visits + return)", seen, cfg.Nodes)
	}
	last := logs2[1].entries[len(logs2[1].entries)-1]
	wantRet := fmt.Sprintf("return n3 @%d a9 b0", g.RoundTrip())
	if last != wantRet {
		t.Fatalf("broadcast return = %q, want %q", last, wantRet)
	}
}

// TestSegRingInjectionSerializes: two same-class sends from one node
// at the same instant depart one slot time apart.
func TestSegRingInjectionSerializes(t *testing.T) {
	cfg := Config{Nodes: 8, Segments: 2}
	k := sim.NewKernel()
	segs := NewSegmentedChain(k, cfg)
	for _, sr := range segs {
		sr.SetClient(&chatClient{sr: sr, log: &segLog{}})
	}
	d1 := segs[0].Send(0, 2, ProbeEven, SegPayload{})
	d2 := segs[0].Send(0, 2, ProbeEven, SegPayload{})
	d3 := segs[0].Send(0, 2, ProbeOdd, SegPayload{})
	slot := segs[0].Geo.SlotTime(ProbeEven)
	if d1 != 0 || d2 != slot {
		t.Fatalf("same-class departures %d, %d; want 0, %d", d1, d2, slot)
	}
	if d3 != 0 {
		t.Fatalf("cross-class departure %d, want 0 (independent injection points)", d3)
	}
	k.Run()
}
