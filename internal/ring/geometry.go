// Package ring models the unidirectional slotted ring of the paper
// (Section 2): a circular pipeline of latches advancing one stage per
// ring clock, with the bandwidth divided into marked message slots
// grouped into frames. A frame carries one probe slot for even-address
// blocks, one probe slot for odd-address blocks, and one block slot,
// which paces probes to the snooper's dual-directory banks (Table 3).
//
// Slot motion is modeled exactly: a slot's head passes node n at
// deterministic times derived from the ring geometry, so message
// latencies, slot-acquisition waits and the anti-starvation rule are
// all slot-accurate without simulating every latch transfer.
//
// The package also provides register-insertion and token-ring access
// control variants used by the related-work ablation (Section 5).
package ring

import (
	"fmt"

	"repro/internal/sim"
)

// SlotClass identifies one of the three slot kinds in a frame.
type SlotClass uint8

const (
	// ProbeEven carries probes for even-address blocks.
	ProbeEven SlotClass = iota
	// ProbeOdd carries probes for odd-address blocks.
	ProbeOdd
	// BlockSlot carries a header plus one cache block.
	BlockSlot
	numSlotClasses
)

// NumSlotClasses is the number of distinct slot classes.
const NumSlotClasses = int(numSlotClasses)

// String names the slot class.
func (c SlotClass) String() string {
	switch c {
	case ProbeEven:
		return "probe-even"
	case ProbeOdd:
		return "probe-odd"
	case BlockSlot:
		return "block"
	default:
		return fmt.Sprintf("SlotClass(%d)", uint8(c))
	}
}

// Config describes a slotted ring.
type Config struct {
	// Nodes is the number of processing elements on the ring.
	Nodes int
	// ClockPS is the stage (latch-to-latch) time; the paper's default
	// is 2 ns (500 MHz).
	ClockPS sim.Time
	// WidthBits is the link/data-path width; default 32.
	WidthBits int
	// BlockBytes is the cache block size; default 16.
	BlockBytes int
	// StagesPerNode is the latch count per ring interface; the paper
	// uses a minimum of 3.
	StagesPerNode int
	// ProbePairsPerBlockSlot is the number of (even, odd) probe slot
	// pairs per block slot in a frame. The paper's mix is 1 pair
	// (i.e. 2 probe slots) per block slot; the slot-mix ablation
	// varies this.
	ProbePairsPerBlockSlot int
	// DisableStarvationRule turns off the rule that a node may not
	// reuse a slot at the very pass on which it removed a message
	// (the paper reports the rule costs nothing; the ablation checks).
	DisableStarvationRule bool
	// Segments, when >= 2, selects the segmented ring variant (SegRing):
	// the ring is partitioned into this many contiguous node segments
	// with per-segment injection and boundary-link serialization, the
	// shardable model whose boundary-link latency is the parallel
	// kernel's lookahead. Zero is the classic global-slot ring. The
	// segment count is part of the model (it changes arbitration), so
	// it participates in result hashing wherever configs are hashed.
	Segments int
}

// DefaultClock is the paper's 500 MHz ring clock.
const DefaultClock = 2 * sim.Nanosecond

func (c *Config) fill() {
	if c.ClockPS == 0 {
		c.ClockPS = DefaultClock
	}
	if c.WidthBits == 0 {
		c.WidthBits = 32
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 16
	}
	if c.StagesPerNode == 0 {
		c.StagesPerNode = 3
	}
	if c.ProbePairsPerBlockSlot == 0 {
		c.ProbePairsPerBlockSlot = 1
	}
}

// Geometry holds the derived slot layout of a ring.
type Geometry struct {
	Config
	// ProbeStages is the length of a probe slot in pipeline stages:
	// ceil(64-bit payload / width).
	ProbeStages int
	// BlockStages is the length of a block slot: a probe-sized header
	// plus the data transfer stages.
	BlockStages int
	// FrameStages is the length of one frame.
	FrameStages int
	// TotalStages is the ring circumference in stages: at least
	// StagesPerNode per node, padded up to a whole number of frames.
	TotalStages int
	// Frames is the number of frames in flight on the ring.
	Frames int
	// slotStart[i] is the stage offset of slot i's head at t=0;
	// slotClass[i] its class. Slots are laid out frame by frame.
	slotStart []int
	slotClass []SlotClass
}

// NewGeometry computes the slot layout for a configuration, applying
// the paper's defaults to zero fields.
func NewGeometry(cfg Config) Geometry {
	cfg.fill()
	if cfg.Nodes <= 0 {
		panic("ring: need at least one node")
	}
	if cfg.WidthBits <= 0 || cfg.WidthBits%8 != 0 {
		panic("ring: width must be a positive multiple of 8 bits")
	}
	if cfg.Segments != 0 {
		if cfg.Segments < 2 {
			panic("ring: Segments must be 0 (classic) or at least 2")
		}
		if cfg.Nodes%cfg.Segments != 0 {
			panic(fmt.Sprintf("ring: %d nodes not divisible into %d segments", cfg.Nodes, cfg.Segments))
		}
	}
	if cfg.BlockBytes*8%cfg.WidthBits != 0 {
		panic("ring: block size must be a whole number of ring words")
	}
	g := Geometry{Config: cfg}
	g.ProbeStages = (64 + cfg.WidthBits - 1) / cfg.WidthBits
	g.BlockStages = g.ProbeStages + cfg.BlockBytes*8/cfg.WidthBits
	g.FrameStages = 2*cfg.ProbePairsPerBlockSlot*g.ProbeStages + g.BlockStages
	min := cfg.Nodes * cfg.StagesPerNode
	g.Frames = (min + g.FrameStages - 1) / g.FrameStages
	if g.Frames == 0 {
		g.Frames = 1
	}
	g.TotalStages = g.Frames * g.FrameStages
	for f := 0; f < g.Frames; f++ {
		off := f * g.FrameStages
		for p := 0; p < cfg.ProbePairsPerBlockSlot; p++ {
			g.slotStart = append(g.slotStart, off)
			g.slotClass = append(g.slotClass, ProbeEven)
			off += g.ProbeStages
			g.slotStart = append(g.slotStart, off)
			g.slotClass = append(g.slotClass, ProbeOdd)
			off += g.ProbeStages
		}
		g.slotStart = append(g.slotStart, off)
		g.slotClass = append(g.slotClass, BlockSlot)
	}
	return g
}

// NumSlots returns the total number of slots on the ring.
func (g *Geometry) NumSlots() int { return len(g.slotStart) }

// SlotsOfClass returns how many slots of class c circulate.
func (g *Geometry) SlotsOfClass(c SlotClass) int {
	n := 0
	for _, sc := range g.slotClass {
		if sc == c {
			n++
		}
	}
	return n
}

// NodePos returns the stage position of node n's interface. Padding
// stages are spread evenly, as in a physical layout.
func (g *Geometry) NodePos(n int) int {
	return n * g.TotalStages / g.Nodes
}

// DistStages returns the downstream distance in stages from node a to
// node b (a full circumference when a == b is distinguished by callers
// passing broadcast explicitly).
func (g *Geometry) DistStages(a, b int) int {
	d := g.NodePos(b) - g.NodePos(a)
	if d < 0 {
		d += g.TotalStages
	}
	return d
}

// PropTime returns the propagation time from a to b downstream.
func (g *Geometry) PropTime(a, b int) sim.Time {
	return sim.Time(g.DistStages(a, b)) * g.ClockPS
}

// RoundTrip returns the full ring traversal time — the paper's "pure
// round-trip latency" (60 ns for the 8-node 500 MHz default).
func (g *Geometry) RoundTrip() sim.Time {
	return sim.Time(g.TotalStages) * g.ClockPS
}

// FrameTime returns the time between successive frames passing a point,
// which is also the minimum inter-arrival of probes to one
// dual-directory bank (Table 3's "snooping rate").
func (g *Geometry) FrameTime() sim.Time {
	return sim.Time(g.FrameStages) * g.ClockPS
}

// ProbeClassFor returns the probe slot class serving the given block
// address: even-address blocks use ProbeEven slots.
func (g *Geometry) ProbeClassFor(blockAddr uint64) SlotClass {
	if (blockAddr/uint64(g.BlockBytes))%2 == 0 {
		return ProbeEven
	}
	return ProbeOdd
}

// SlotTime returns the time a slot of class c occupies one point on
// the ring — the message length in stages times the stage clock. It is
// the serialization granularity of the segmented variant's injection
// points and boundary links.
func (g *Geometry) SlotTime(c SlotClass) sim.Time {
	if c == BlockSlot {
		return sim.Time(g.BlockStages) * g.ClockPS
	}
	return sim.Time(g.ProbeStages) * g.ClockPS
}

// SegOf returns the segment owning node n (Segments >= 2 variants).
func (g *Geometry) SegOf(n int) int { return n * g.Segments / g.Nodes }

// SegmentBounds returns segment seg's contiguous node range [lo, hi).
func (g *Geometry) SegmentBounds(seg int) (lo, hi int) {
	return seg * g.Nodes / g.Segments, (seg + 1) * g.Nodes / g.Segments
}

// BoundaryHop returns the latency of segment seg's exit link: the
// propagation time from the segment's last node to the next segment's
// first node. A message crossing the boundary arrives no earlier than
// this after its head clears the exit node, which makes the hop the
// conservative-parallel lookahead of that link.
func (g *Geometry) BoundaryHop(seg int) sim.Time {
	_, hi := g.SegmentBounds(seg)
	return g.PropTime(hi-1, hi%g.Nodes)
}

// MinSegmentHop returns the smallest boundary-link latency over all
// segment boundaries — the widest safe window for a parallel run that
// shards this ring by segment.
func (g *Geometry) MinSegmentHop() sim.Time {
	if g.Segments < 2 {
		return 0
	}
	min := g.BoundaryHop(0)
	for s := 1; s < g.Segments; s++ {
		if h := g.BoundaryHop(s); h < min {
			min = h
		}
	}
	return min
}

// slotLen returns slot i's length in stages.
func (g *Geometry) slotLen(i int) int {
	if g.slotClass[i] == BlockSlot {
		return g.BlockStages
	}
	return g.ProbeStages
}
