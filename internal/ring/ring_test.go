package ring

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newRing(t *testing.T, cfg Config) (*sim.Kernel, *Ring) {
	t.Helper()
	k := sim.NewKernel()
	return k, New(k, cfg)
}

func TestNextPassPeriodicity(t *testing.T) {
	_, r := newRing(t, Config{Nodes: 8})
	rtt := r.Geo.RoundTrip()
	first := r.nextPass(0, 3, 0)
	if first < 0 || first >= rtt {
		t.Fatalf("first pass %v outside [0, RTT)", first)
	}
	for k := sim.Time(1); k < 4; k++ {
		if got := r.nextPass(0, 3, first+1+(k-1)*rtt); got != first+k*rtt {
			t.Fatalf("pass %d = %v, want %v", k, got, first+k*rtt)
		}
	}
	// A pass exactly at `from` is returned, not skipped.
	if got := r.nextPass(0, 3, first); got != first {
		t.Fatalf("nextPass at exact time = %v, want %v", got, first)
	}
}

func TestUnloadedBroadcastTakesOneRoundTrip(t *testing.T) {
	k, r := newRing(t, Config{Nodes: 8})
	var grab, rem sim.Time
	var doneAt sim.Time = -1
	k.At(0, func() {
		grab, rem = r.Send(0, Broadcast, ProbeEven, nil, func(at sim.Time) { doneAt = at })
	})
	k.Run()
	if rem-grab != r.Geo.RoundTrip() {
		t.Fatalf("broadcast transit = %v, want RTT %v", rem-grab, r.Geo.RoundTrip())
	}
	if doneAt != rem {
		t.Fatalf("done fired at %v, want %v", doneAt, rem)
	}
	// Unloaded wait is bounded by one round trip (next slot of the class).
	if grab > r.Geo.RoundTrip() {
		t.Fatalf("unloaded grab wait %v exceeds one RTT", grab)
	}
}

func TestPointToPointTransitMatchesDistance(t *testing.T) {
	k, r := newRing(t, Config{Nodes: 8})
	var grab, rem sim.Time
	k.At(0, func() { grab, rem = r.Send(2, 6, BlockSlot, nil, nil) })
	k.Run()
	if want := r.Geo.PropTime(2, 6); rem-grab != want {
		t.Fatalf("p2p transit = %v, want %v", rem-grab, want)
	}
}

func TestBroadcastVisitsEveryOtherNodeInOrder(t *testing.T) {
	k, r := newRing(t, Config{Nodes: 8})
	type visitRec struct {
		node int
		at   sim.Time
	}
	var visits []visitRec
	var grab sim.Time
	k.At(0, func() {
		grab, _ = r.Send(3, Broadcast, ProbeOdd, func(n int, at sim.Time) {
			visits = append(visits, visitRec{n, at})
		}, nil)
	})
	k.Run()
	if len(visits) != 7 {
		t.Fatalf("visited %d nodes, want 7", len(visits))
	}
	want := []int{4, 5, 6, 7, 0, 1, 2}
	for i, v := range visits {
		if v.node != want[i] {
			t.Fatalf("visit order = %v", visits)
		}
		if exp := grab + r.Geo.PropTime(3, v.node); v.at != exp {
			t.Fatalf("visit at node %d at %v, want %v", v.node, v.at, exp)
		}
	}
}

func TestPointToPointVisitsOnlyIntermediates(t *testing.T) {
	k, r := newRing(t, Config{Nodes: 8})
	var visited []int
	k.At(0, func() {
		r.Send(6, 1, ProbeEven, func(n int, _ sim.Time) { visited = append(visited, n) }, nil)
	})
	k.Run()
	want := []int{7, 0} // strictly between 6 and 1 downstream
	if len(visited) != len(want) {
		t.Fatalf("visited = %v, want %v", visited, want)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited = %v, want %v", visited, want)
		}
	}
}

func TestContentionSerializesSlotUse(t *testing.T) {
	// One block slot only: force contention with a tiny ring.
	k, r := newRing(t, Config{Nodes: 2}) // 6 stages < 10 → 1 frame
	if r.Geo.SlotsOfClass(BlockSlot) != 1 {
		t.Fatalf("want exactly 1 block slot, have %d", r.Geo.SlotsOfClass(BlockSlot))
	}
	var g1, r1, g2 sim.Time
	k.At(0, func() {
		g1, r1 = r.Send(0, 1, BlockSlot, nil, nil)
		g2, _ = r.Send(0, 1, BlockSlot, nil, nil)
	})
	k.Run()
	if g2 < r1 {
		t.Fatalf("second grab %v before first removal %v", g2, r1)
	}
	if g1 == g2 {
		t.Fatal("both messages grabbed the same slot pass")
	}
}

func TestDistinctClassesDoNotContend(t *testing.T) {
	k, r := newRing(t, Config{Nodes: 2})
	var gp, gb sim.Time
	k.At(0, func() {
		gp, _ = r.Send(0, 1, ProbeEven, nil, nil)
		gb, _ = r.Send(0, 1, BlockSlot, nil, nil)
	})
	k.Run()
	// Both grabs happen within the first round trip: no cross-class wait.
	if gp > r.Geo.RoundTrip() || gb > r.Geo.RoundTrip() {
		t.Fatalf("cross-class contention: grabs at %v and %v", gp, gb)
	}
}

func TestStarvationRuleDefersImmediateReuse(t *testing.T) {
	k, r := newRing(t, Config{Nodes: 2})
	// First broadcast returns to node 0 and is removed there; a send
	// issued exactly at the removal pass must not reuse that pass.
	var rem1, g2 sim.Time
	k.At(0, func() {
		_, rem1 = r.Send(0, Broadcast, ProbeEven, nil, func(at sim.Time) {
			g2, _ = r.Send(0, Broadcast, ProbeEven, nil, nil)
		})
	})
	k.Run()
	if g2 == rem1 {
		t.Fatal("slot reused at the removal pass despite starvation rule")
	}
	if r.StarvationDeferrals(ProbeEven) == 0 {
		t.Fatal("starvation deferral not recorded")
	}
}

func TestStarvationRuleDisabled(t *testing.T) {
	k, r := newRing(t, Config{Nodes: 2, DisableStarvationRule: true})
	var rem1, g2 sim.Time
	k.At(0, func() {
		_, rem1 = r.Send(0, Broadcast, ProbeEven, nil, func(at sim.Time) {
			g2, _ = r.Send(0, Broadcast, ProbeEven, nil, nil)
		})
	})
	k.Run()
	if g2 != rem1 {
		t.Fatalf("with rule disabled, reuse at removal pass should be allowed: g2=%v rem1=%v", g2, rem1)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	k, r := newRing(t, Config{Nodes: 8})
	k.At(0, func() { r.Send(0, Broadcast, ProbeEven, nil, nil) })
	stop := 10 * r.Geo.RoundTrip()
	k.At(stop, func() {})
	k.Run()
	// One probe occupied one of 3 probe-even slots for 1 RTT out of 10.
	got := r.Utilization(ProbeEven)
	want := 1.0 / 30.0
	if got < want*0.5 || got > want*2 {
		t.Fatalf("Utilization = %v, want ≈ %v", got, want)
	}
	if r.Utilization(BlockSlot) != 0 {
		t.Fatal("unused class shows utilization")
	}
	if ov := r.OverallUtilization(); ov <= 0 || ov >= got {
		t.Fatalf("OverallUtilization = %v, want in (0, %v)", ov, got)
	}
}

func TestMessagesAndMeanWaitCounters(t *testing.T) {
	k, r := newRing(t, Config{Nodes: 8})
	k.At(0, func() {
		r.Send(0, 4, BlockSlot, nil, nil)
		r.Send(1, 5, ProbeOdd, nil, nil)
	})
	k.Run()
	if r.Messages(BlockSlot) != 1 || r.Messages(ProbeOdd) != 1 || r.Messages(ProbeEven) != 0 {
		t.Fatal("message counters wrong")
	}
	if r.MeanWait(ProbeEven) != 0 {
		t.Fatal("MeanWait for unused class nonzero")
	}
}

func TestSendValidation(t *testing.T) {
	k, r := newRing(t, Config{Nodes: 4})
	for _, fn := range []func(){
		func() { r.Send(-1, 2, ProbeEven, nil, nil) },
		func() { r.Send(0, 9, ProbeEven, nil, nil) },
		func() { r.Send(2, 2, ProbeEven, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid Send did not panic")
				}
			}()
			fn()
		}()
	}
	_ = k
}

func TestSendInvariantsProperty(t *testing.T) {
	// Property: for any request pattern, grab >= request time, transit
	// equals distance (or RTT), and same-class occupancy intervals at
	// grab time never overlap for the same slot (checked indirectly:
	// utilization never exceeds 1).
	f := func(ops []uint16) bool {
		k := sim.NewKernel()
		r := New(k, Config{Nodes: 8})
		ok := true
		var at sim.Time
		for _, op := range ops {
			at += sim.Time(op%97) * sim.Nanosecond
			src := int(op) % 8
			dst := int(op>>4) % 8
			class := SlotClass(op % 3)
			t0 := at
			k.At(at, func() {
				var g, rem sim.Time
				// A done callback schedules the removal event, so the
				// kernel clock runs through every credited occupancy
				// interval; sampling utilization before a message's
				// removal time would read > 1 for perfectly legal
				// schedules (transit is credited in full at grab).
				noop := func(sim.Time) {}
				if dst == src {
					g, rem = r.Send(src, Broadcast, class, nil, noop)
					if rem-g != r.Geo.RoundTrip() {
						ok = false
					}
				} else {
					g, rem = r.Send(src, dst, class, nil, noop)
					if rem-g != r.Geo.PropTime(src, dst) {
						ok = false
					}
				}
				if g < t0 {
					ok = false
				}
			})
		}
		k.Run()
		for c := 0; c < NumSlotClasses; c++ {
			if r.Utilization(SlotClass(c)) > 1.0000001 {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHeavyLoadUtilizationBounded(t *testing.T) {
	// Saturate the probe-even slots from all nodes; utilization must
	// approach but never exceed 1.
	k, r := newRing(t, Config{Nodes: 8})
	var pump func(src int)
	sent := 0
	pump = func(src int) {
		if sent > 500 {
			return
		}
		sent++
		r.Send(src, Broadcast, ProbeEven, nil, func(sim.Time) { pump(src) })
	}
	k.At(0, func() {
		for n := 0; n < 8; n++ {
			pump(n)
		}
	})
	k.Run()
	u := r.Utilization(ProbeEven)
	if u > 1.0000001 {
		t.Fatalf("utilization %v exceeds 1", u)
	}
	if u < 0.5 {
		t.Fatalf("saturating load only reached %v utilization", u)
	}
}
