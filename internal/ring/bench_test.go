package ring

import (
	"testing"

	"repro/internal/sim"
)

// Steady-state Send — reservation scan, sweep launch, per-hop visits,
// removal callback — must not allocate: sweep records come from the
// ring's pool and calendar entries from the kernel's slab. Guarded as a
// test so the CI bench-smoke step fails on any regression.

func TestRingBroadcastSendZeroAlloc(t *testing.T) {
	k := sim.NewKernel()
	r := New(k, Config{Nodes: 8})
	visited := 0
	visit := func(node int, at sim.Time) { visited++ }
	done := func(at sim.Time) {}
	// Warm the sweep pool, the kernel slab, and a full revolution of the
	// calendar wheel (each Send advances the clock one round trip, so
	// each iteration touches fresh buckets until the wheel wraps).
	for i := 0; i < 1024; i++ {
		r.Send(0, Broadcast, ProbeEven, visit, done)
		k.Run()
	}
	allocs := testing.AllocsPerRun(300, func() {
		r.Send(0, Broadcast, ProbeEven, visit, done)
		k.Run()
	})
	if allocs != 0 {
		t.Fatalf("broadcast Send allocates %.1f objects/op, want 0", allocs)
	}
}

func TestRingPointToPointSendZeroAlloc(t *testing.T) {
	k := sim.NewKernel()
	r := New(k, Config{Nodes: 8})
	done := func(at sim.Time) {}
	// One event per Send and the grab phase drifts across the calendar
	// wheel, so touching every bucket once takes more iterations than
	// the broadcast case.
	for i := 0; i < 5000; i++ {
		r.Send(2, 6, BlockSlot, nil, done)
		k.Run()
	}
	allocs := testing.AllocsPerRun(300, func() {
		r.Send(2, 6, BlockSlot, nil, done)
		k.Run()
	})
	if allocs != 0 {
		t.Fatalf("point-to-point Send allocates %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkRingBroadcast(b *testing.B) {
	k := sim.NewKernel()
	r := New(k, Config{Nodes: 16})
	visit := func(node int, at sim.Time) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Send(i%16, Broadcast, ProbeEven, visit, nil)
		k.Run()
	}
}

func BenchmarkRingPointToPoint(b *testing.B) {
	k := sim.NewKernel()
	r := New(k, Config{Nodes: 16})
	done := func(at sim.Time) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src := i % 16
		dst := (src + 5) % 16
		r.Send(src, dst, BlockSlot, nil, done)
		k.Run()
	}
}
