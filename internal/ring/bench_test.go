package ring

import (
	"testing"

	"repro/internal/sim"
)

// Steady-state Send — reservation scan, sweep launch, per-hop visits,
// removal callback — must not allocate: sweep records come from the
// ring's pool and calendar entries from the kernel's slab. Guarded as a
// test so the CI bench-smoke step fails on any regression.

func TestRingBroadcastSendZeroAlloc(t *testing.T) {
	k := sim.NewKernel()
	r := New(k, Config{Nodes: 8})
	visited := 0
	visit := func(node int, at sim.Time) { visited++ }
	done := func(at sim.Time) {}
	// Warm the sweep pool, the kernel slab, and a full revolution of the
	// calendar wheel (each Send advances the clock one round trip, so
	// each iteration touches fresh buckets until the wheel wraps).
	for i := 0; i < 1024; i++ {
		r.Send(0, Broadcast, ProbeEven, visit, done)
		k.Run()
	}
	allocs := testing.AllocsPerRun(300, func() {
		r.Send(0, Broadcast, ProbeEven, visit, done)
		k.Run()
	})
	if allocs != 0 {
		t.Fatalf("broadcast Send allocates %.1f objects/op, want 0", allocs)
	}
}

func TestRingPointToPointSendZeroAlloc(t *testing.T) {
	k := sim.NewKernel()
	r := New(k, Config{Nodes: 8})
	done := func(at sim.Time) {}
	// One event per Send and the grab phase drifts across the calendar
	// wheel, so touching every bucket once takes more iterations than
	// the broadcast case.
	for i := 0; i < 5000; i++ {
		r.Send(2, 6, BlockSlot, nil, done)
		k.Run()
	}
	allocs := testing.AllocsPerRun(300, func() {
		r.Send(2, 6, BlockSlot, nil, done)
		k.Run()
	})
	if allocs != 0 {
		t.Fatalf("point-to-point Send allocates %.1f objects/op, want 0", allocs)
	}
}

// An installed OnMessage observer must not reintroduce allocation: the
// obs tracer's track buffers saturate rather than grow, so the hook is
// a plain call into preallocated storage.
func TestRingSendWithObserverZeroAlloc(t *testing.T) {
	k := sim.NewKernel()
	r := New(k, Config{Nodes: 8})
	// Stand-in for an obs track: a fixed-capacity edge log, the same
	// append-until-cap discipline obs.Track.Message uses.
	type edge struct {
		at sim.Time
		d  int32
	}
	edges := make([]edge, 0, 4096)
	r.OnMessage = func(class SlotClass, grab, removal sim.Time) {
		if len(edges)+2 <= cap(edges) {
			edges = append(edges, edge{grab, 1}, edge{removal, -1})
		}
	}
	done := func(at sim.Time) {}
	for i := 0; i < 5000; i++ {
		r.Send(2, 6, BlockSlot, nil, done)
		k.Run()
	}
	allocs := testing.AllocsPerRun(300, func() {
		r.Send(2, 6, BlockSlot, nil, done)
		k.Run()
	})
	if allocs != 0 {
		t.Fatalf("observed Send allocates %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkRingBroadcast(b *testing.B) {
	k := sim.NewKernel()
	r := New(k, Config{Nodes: 16})
	visit := func(node int, at sim.Time) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Send(i%16, Broadcast, ProbeEven, visit, nil)
		k.Run()
	}
}

func BenchmarkRingPointToPoint(b *testing.B) {
	k := sim.NewKernel()
	r := New(k, Config{Nodes: 16})
	done := func(at sim.Time) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src := i % 16
		dst := (src + 5) % 16
		r.Send(src, dst, BlockSlot, nil, done)
		k.Run()
	}
}
