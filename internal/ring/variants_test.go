package ring

import (
	"testing"

	"repro/internal/sim"
)

func TestTokenRingSingleMessageInFlight(t *testing.T) {
	k := sim.NewKernel()
	tr := NewTokenRing(k, Config{Nodes: 8})
	var done []sim.Time
	k.At(0, func() {
		tr.Send(0, 4, BlockSlot, nil, func(at sim.Time) { done = append(done, at) })
		tr.Send(2, 6, BlockSlot, nil, func(at sim.Time) { done = append(done, at) })
	})
	k.Run()
	if len(done) != 2 {
		t.Fatalf("completions = %d, want 2", len(done))
	}
	// The second message cannot start before the first finishes: its
	// completion is strictly after the first's.
	if done[1] <= done[0] {
		t.Fatalf("token ring overlapped transmissions: %v", done)
	}
}

func TestTokenRingTravelTime(t *testing.T) {
	k := sim.NewKernel()
	tr := NewTokenRing(k, Config{Nodes: 8})
	var grab, rem sim.Time
	k.At(0, func() { grab, rem = tr.Send(0, 4, BlockSlot, nil, nil) })
	k.Run()
	g := &tr.Geo
	want := sim.Time(g.DistStages(0, 4)+g.BlockStages) * g.ClockPS
	if rem-grab != want {
		t.Fatalf("token transit = %v, want %v", rem-grab, want)
	}
}

func TestTokenRingBroadcastVisits(t *testing.T) {
	k := sim.NewKernel()
	tr := NewTokenRing(k, Config{Nodes: 4})
	var visited []int
	k.At(0, func() {
		tr.Send(1, Broadcast, ProbeEven, func(n int, _ sim.Time) { visited = append(visited, n) }, nil)
	})
	k.Run()
	want := []int{2, 3, 0}
	if len(visited) != 3 || visited[0] != want[0] || visited[1] != want[1] || visited[2] != want[2] {
		t.Fatalf("visited = %v, want %v", visited, want)
	}
}

func TestInsertionRingUnloadedLatencyBeatsSlotted(t *testing.T) {
	// Paper, Section 2: under light load the register-insertion ring
	// has faster access since a message does not wait for a slot.
	mean := func(s Sender, k *sim.Kernel) sim.Time {
		var total sim.Time
		const trials = 20
		for i := 0; i < trials; i++ {
			i := i
			var start sim.Time
			at := sim.Time(i) * 1000 * sim.Nanosecond // well-separated: unloaded
			k.At(at, func() {
				start = k.Now()
				s.Send(i%8, (i+3)%8, ProbeEven, nil, nil)
			})
			_ = start
		}
		k.Run()
		return total
	}
	_ = mean
	// Compare insert wait directly: slotted waits for a slot pass,
	// insertion ring inserts immediately on an idle link.
	k1 := sim.NewKernel()
	slotted := New(k1, Config{Nodes: 8})
	var slottedWait sim.Time
	k1.At(999*sim.Nanosecond, func() {
		g, _ := slotted.Send(0, 4, ProbeEven, nil, nil)
		slottedWait = g - k1.Now()
	})
	k1.Run()

	k2 := sim.NewKernel()
	ins := NewInsertionRing(k2, Config{Nodes: 8})
	var insDone sim.Time
	k2.At(999*sim.Nanosecond, func() {
		ins.Send(0, 4, ProbeEven, nil, func(at sim.Time) { insDone = at - 999*sim.Nanosecond })
	})
	k2.Run()

	unloadedProp := slotted.Geo.PropTime(0, 4)
	if insDone > unloadedProp+sim.Time(8*slotted.Geo.ProbeStages)*slotted.Geo.ClockPS {
		t.Fatalf("insertion ring unloaded delivery %v far above propagation %v", insDone, unloadedProp)
	}
	// The slotted ring generally pays a nonzero slot wait at an
	// arbitrary instant; just check accounting is sane.
	if slottedWait < 0 {
		t.Fatalf("negative slot wait %v", slottedWait)
	}
}

func TestInsertionRingDeliversThroughAllHops(t *testing.T) {
	k := sim.NewKernel()
	ins := NewInsertionRing(k, Config{Nodes: 6})
	var visited []int
	delivered := false
	k.At(0, func() {
		ins.Send(4, 2, BlockSlot, func(n int, _ sim.Time) { visited = append(visited, n) }, func(sim.Time) { delivered = true })
	})
	k.Run()
	if !delivered {
		t.Fatal("message not delivered")
	}
	want := []int{5, 0, 1}
	if len(visited) != len(want) {
		t.Fatalf("visited = %v, want %v", visited, want)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited = %v, want %v", visited, want)
		}
	}
}

func TestInsertionRingContentionQueues(t *testing.T) {
	k := sim.NewKernel()
	ins := NewInsertionRing(k, Config{Nodes: 4})
	var done []sim.Time
	k.At(0, func() {
		// Two messages from the same node share its output link.
		ins.Send(0, 2, BlockSlot, nil, func(at sim.Time) { done = append(done, at) })
		ins.Send(0, 2, BlockSlot, nil, func(at sim.Time) { done = append(done, at) })
	})
	k.Run()
	if len(done) != 2 {
		t.Fatalf("completions = %d, want 2", len(done))
	}
	if done[1] <= done[0] {
		t.Fatalf("second message not delayed: %v", done)
	}
	if ins.MeanInsertWait() == 0 {
		t.Fatal("contention produced zero insert wait")
	}
	if u := ins.LinkUtilization(); u <= 0 {
		t.Fatalf("LinkUtilization = %v, want > 0", u)
	}
}

func TestTokenRingMeanWaitGrowsUnderLoad(t *testing.T) {
	k := sim.NewKernel()
	tr := NewTokenRing(k, Config{Nodes: 8})
	k.At(0, func() {
		for i := 0; i < 10; i++ {
			tr.Send(i%8, (i+1)%8, BlockSlot, nil, nil)
		}
	})
	k.Run()
	if tr.MeanWait() == 0 {
		t.Fatal("burst of 10 messages saw zero token wait")
	}
}
