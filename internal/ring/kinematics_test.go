package ring

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// TestPassTimesMatchClosedForm pins the slot kinematics to the closed
// form: slot i's head passes node n at phase((start_i - pos_n) mod S)
// plus multiples of the round trip.
func TestPassTimesMatchClosedForm(t *testing.T) {
	k := sim.NewKernel()
	r := New(k, Config{Nodes: 8})
	g := &r.Geo
	for i := 0; i < g.NumSlots(); i++ {
		for n := 0; n < g.Nodes; n++ {
			d := g.NodePos(n) - g.slotStart[i]
			if d < 0 {
				d += g.TotalStages
			}
			want := sim.Time(d) * g.ClockPS
			if got := r.nextPass(i, n, 0); got != want {
				t.Fatalf("slot %d node %d: first pass %v, want %v", i, n, got, want)
			}
			// And exactly one round trip later for the second pass.
			if got := r.nextPass(i, n, want+1); got != want+g.RoundTrip() {
				t.Fatalf("slot %d node %d: second pass wrong", i, n)
			}
		}
	}
}

// TestUnloadedWaitBounded checks the structural bound the analytic
// model's W = I·(1/(1-ρ)-1/2) rests on: with an idle ring, the wait for
// a slot of any class is below one inter-slot interval of that class.
func TestUnloadedWaitBounded(t *testing.T) {
	f := func(nodeRaw, timeRaw uint16, classRaw uint8) bool {
		k := sim.NewKernel()
		r := New(k, Config{Nodes: 8})
		node := int(nodeRaw) % 8
		class := SlotClass(classRaw % 3)
		at := sim.Time(timeRaw) * sim.Nanosecond
		ok := true
		k.At(at, func() {
			grab, _ := r.Send(node, (node+3)%8, class, nil, nil)
			// Interval between usable slots of one class at a node:
			// frameTime for each of the three classes (one pair + one
			// block slot per frame).
			if grab-at >= r.Geo.FrameTime() {
				ok = false
			}
		})
		k.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestOccupancyConservation cross-checks the utilization accounting
// against first principles: N back-to-back point-to-point messages of
// known distance must produce exactly N·dist·clk of transit time.
func TestOccupancyConservation(t *testing.T) {
	k := sim.NewKernel()
	r := New(k, Config{Nodes: 8})
	g := &r.Geo
	const msgs = 60
	var sent int
	var expected sim.Time
	var pump func()
	pump = func() {
		if sent >= msgs {
			return
		}
		src := sent % 8
		dst := (src + 1 + sent%6) % 8
		expected += g.PropTime(src, dst)
		sent++
		r.Send(src, dst, BlockSlot, nil, func(sim.Time) { pump() })
	}
	k.At(0, func() { pump() })
	end := k.Run()
	got := r.Utilization(BlockSlot) * float64(end) * float64(g.SlotsOfClass(BlockSlot))
	if diff := got - float64(expected); diff < -1 || diff > 1 {
		t.Fatalf("occupancy integral %v, want %v", got, expected)
	}
}

// TestBroadcastSnoopTimesAreExact verifies the UMA property at the
// timing level: node m snoops a probe exactly dist(src,m) stages after
// the grab, for every (src, m) pair.
func TestBroadcastSnoopTimesAreExact(t *testing.T) {
	for src := 0; src < 8; src++ {
		k := sim.NewKernel()
		r := New(k, Config{Nodes: 8})
		g := &r.Geo
		var grab sim.Time
		type visit struct {
			node int
			at   sim.Time
		}
		var visits []visit
		s := src
		k.At(0, func() {
			grab, _ = r.Send(s, Broadcast, ProbeEven, func(n int, at sim.Time) {
				visits = append(visits, visit{n, at})
			}, nil)
		})
		k.Run()
		for _, v := range visits {
			want := grab + g.PropTime(s, v.node)
			if v.at != want {
				t.Fatalf("src %d: node %d snooped at %v, want %v", s, v.node, v.at, want)
			}
		}
	}
}

// TestSlotReuseAfterRemoval verifies a freed slot is usable by another
// node at its next pass — freeing is per-pass, not per-round-trip.
func TestSlotReuseAfterRemoval(t *testing.T) {
	k := sim.NewKernel()
	r := New(k, Config{Nodes: 2}) // single block slot
	var rem1, grab2 sim.Time
	k.At(0, func() {
		_, rem1 = r.Send(0, 1, BlockSlot, nil, func(sim.Time) {
			// Node 1 (the remover's successor in traffic terms) sends
			// next; it must not wait a full extra round trip beyond
			// the removal.
			g2, _ := r.Send(1, 0, BlockSlot, nil, nil)
			grab2 = g2
		})
	})
	k.Run()
	if grab2 <= rem1-1 {
		t.Fatalf("second grab %v before first removal %v", grab2, rem1)
	}
	if grab2-rem1 > r.Geo.RoundTrip() {
		t.Fatalf("freed slot unused for over a round trip (%v)", grab2-rem1)
	}
}
