package ring

import "repro/internal/sim"

// The sweep machinery below is the allocation-free engine behind the
// visit/done callbacks of Ring.Send and TokenRing.Send. A message that
// passes k downstream nodes used to schedule k+1 independent closures,
// each heap-allocated and boxed through the event calendar; now a single
// pooled sweepMsg record chains itself from hop to hop, holding exactly
// one calendar entry per in-flight message and allocating nothing in the
// steady state.
//
// Determinism contract: the seed implementation assigned one kernel
// sequence number per visit (in downstream order) plus one for the
// removal, all claimed at Send time. launchSweep reserves the same
// count of consecutive sequence numbers up front (sim.Kernel.ReserveSeq)
// and replays them one per hop via AtReserved, so the global (time, seq)
// dispatch order — and therefore every metric — is bit-identical to the
// per-closure scheduler it replaces.

// hop is one precomputed downstream visit: the node index and its
// distance from the source in ring stages.
type hop struct {
	node int32
	d    int32
}

// msgPool recycles sweepMsg records; each ring variant owns one. Not
// safe for concurrent use — like the kernel itself, a ring belongs to
// one simulation goroutine.
type msgPool struct{ free *sweepMsg }

func (p *msgPool) get() *sweepMsg {
	m := p.free
	if m == nil {
		return &sweepMsg{pool: p}
	}
	p.free = m.next
	m.next = nil
	return m
}

// sweepMsg is the schedule of one in-flight message: its precomputed
// visit hops and removal instant. It implements sim.EventHandler and
// re-arms itself for the next hop from inside each dispatch.
type sweepMsg struct {
	k       *sim.Kernel
	pool    *msgPool
	clock   sim.Time
	visit   func(node int, at sim.Time)
	done    func(at sim.Time)
	grab    sim.Time
	removal sim.Time
	baseSeq uint64
	idx     int
	hops    []hop
	next    *sweepMsg
}

// release returns the record to its pool. Callbacks are dropped so the
// pool does not pin caller state between messages; the hops slice keeps
// its capacity.
func (m *sweepMsg) release() {
	m.visit, m.done = nil, nil
	m.hops = m.hops[:0]
	m.idx = 0
	m.next = m.pool.free
	m.pool.free = m
}

// launchSweep schedules the visit/done callbacks for one message sent
// from src toward dst (Broadcast for a full traversal) that grabbed its
// slot at grab and is removed at removal. It reproduces the seed
// scheduler's skip logic and sequence-number consumption exactly; see
// the package comment above.
func launchSweep(k *sim.Kernel, p *msgPool, g *Geometry, src, dst int, grab, removal sim.Time,
	visit func(node int, at sim.Time), done func(at sim.Time)) {
	if visit == nil && done == nil {
		return
	}
	m := p.get()
	m.k = k
	m.clock = g.ClockPS
	m.visit, m.done = visit, done
	m.grab, m.removal = grab, removal
	if visit != nil {
		last := g.Nodes // broadcast: everyone but src
		if dst != Broadcast {
			last = g.DistStages(src, dst) // only nodes strictly before dst
		}
		for i := 1; i < g.Nodes; i++ {
			node := (src + i) % g.Nodes
			d := g.DistStages(src, node)
			if dst != Broadcast && d >= last {
				continue
			}
			m.hops = append(m.hops, hop{node: int32(node), d: int32(d)})
		}
	}
	n := len(m.hops)
	if done != nil {
		n++
	}
	if n == 0 {
		m.release()
		return
	}
	m.baseSeq = k.ReserveSeq(n)
	if len(m.hops) > 0 {
		k.AtReserved(grab+sim.Time(m.hops[0].d)*m.clock, m.baseSeq, m)
	} else {
		k.AtReserved(removal, m.baseSeq, m)
	}
}

// OnEvent fires one step of the sweep: a visit at the current hop, or
// the final removal. The next calendar entry is armed before the user
// callback runs, and on the last step the record is recycled first, so
// callbacks are free to Send again (and reuse this very record) without
// corrupting the sweep.
func (m *sweepMsg) OnEvent(at sim.Time) {
	if m.idx < len(m.hops) {
		h := m.hops[m.idx]
		m.idx++
		visit := m.visit
		if m.idx < len(m.hops) {
			nh := m.hops[m.idx]
			m.k.AtReserved(m.grab+sim.Time(nh.d)*m.clock, m.baseSeq+uint64(m.idx), m)
		} else if m.done != nil {
			m.k.AtReserved(m.removal, m.baseSeq+uint64(len(m.hops)), m)
		} else {
			m.release()
			visit(int(h.node), at)
			return
		}
		visit(int(h.node), at)
		return
	}
	done, removal := m.done, m.removal
	m.release()
	done(removal)
}
