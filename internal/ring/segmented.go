package ring

import (
	"fmt"

	"repro/internal/sim"
)

// The segmented ring (Config.Segments >= 2) partitions the
// unidirectional ring into contiguous node segments so that a parallel
// run can give each kernel shard a segment and carry real coherence
// traffic across shard boundaries. It is a distinct model variant, not
// a re-execution strategy for the classic global-slot ring: slot
// acquisition becomes per-node injection serialization
// (register-insertion style) and each segment boundary is a
// store-and-forward link that serializes crossing messages per class.
// The boundary link's propagation latency is the model's lookahead —
// a message that crosses is always at least one hop in the future, so
// a conservative window no wider than the minimum hop can deliver it
// before the destination's clock can reach it.
//
// Determinism is by projection equivalence. All state a message
// touches inside a segment (injection points, the exit link, the
// segment's stats) is owned by that segment, and the only cross-segment
// effect is the boundary handoff, scheduled at an explicit banded
// calendar position (sim.BoundarySeqBand | link<<40 | fifo) derived
// purely from the model: the link id and the link's crossing count in
// upstream dispatch order. A sequential run (all segments on one
// kernel, handoffs via Kernel.AtBoundary) and a parallel run (segments
// sharded, handoffs via ParKernel.PostAt) therefore build identical
// per-segment calendars, making the runs byte-identical.

// boundarySeq is the banded calendar position of the fifo-th crossing
// of boundary link `link`.
func boundarySeq(link int, fifo uint64) uint64 {
	return sim.BoundarySeqBand | uint64(link)<<40 | fifo
}

// SegPayload is the value-typed body of a segmented-ring message.
// Closures cannot cross shard boundaries, so protocol engines encode
// their messages into this fixed shape and interpret it against their
// own node-ranged state on delivery. The field meanings belong to the
// client protocol; the ring only moves the value.
type SegPayload struct {
	Kind  uint8
	Flags uint8
	X, Y  int32
	A, B  uint64
}

// SegClient receives a segment's message callbacks. Every callback
// fires as a calendar event on the segment's own kernel, for nodes
// inside the segment's range only.
type SegClient interface {
	// SegDeliver fires when a point-to-point message is removed at its
	// destination.
	SegDeliver(dst int, at sim.Time, p SegPayload)
	// SegVisit fires as the message head passes node (broadcast
	// observation, or a node strictly between source and destination).
	SegVisit(node int, at sim.Time, p SegPayload)
	// SegReturn fires when a broadcast arrives back at its source and
	// is removed.
	SegReturn(src int, at sim.Time, p SegPayload)
}

// SegRing is one segment of the segmented ring variant: the injection
// points of its nodes, its exit boundary link, and its share of the
// traffic statistics. Build one per segment with NewSegment, wire the
// chain with Link and SetClient, then Send from the segment's own
// nodes (on its own kernel).
type SegRing struct {
	Geo Geometry

	k      *sim.Kernel
	seg    int
	lo, hi int // node range [lo, hi)
	hop    sim.Time

	client SegClient
	next   *SegRing
	cross  func(at sim.Time, seq uint64, h sim.EventHandler)

	// nodeFree[n-lo][c] is when node n's class-c injection point frees
	// up; linkFree[c] is the same for the exit link. fifo counts exit
	// crossings (the band-seq tie-breaker).
	nodeFree [][NumSlotClasses]sim.Time
	linkFree [NumSlotClasses]sim.Time
	fifo     uint64

	stats [NumSlotClasses]classStats
	start sim.Time
	pool  segPool
}

// NewSegment returns segment seg of cfg's segmented ring attached to
// k. cfg.Segments must be at least 2 and divide cfg.Nodes.
func NewSegment(k *sim.Kernel, cfg Config, seg int) *SegRing {
	g := NewGeometry(cfg)
	if g.Segments < 2 {
		panic("ring: NewSegment needs Config.Segments >= 2")
	}
	if seg < 0 || seg >= g.Segments {
		panic(fmt.Sprintf("ring: segment %d out of range [0,%d)", seg, g.Segments))
	}
	lo, hi := g.SegmentBounds(seg)
	return &SegRing{
		Geo:      g,
		k:        k,
		seg:      seg,
		lo:       lo,
		hi:       hi,
		hop:      g.BoundaryHop(seg),
		nodeFree: make([][NumSlotClasses]sim.Time, hi-lo),
		start:    k.Now(),
	}
}

// NewSegmentedChain builds every segment of cfg on one kernel, linked
// with local boundary scheduling — the sequential execution of the
// segmented model, and the reference a sharded run must match byte for
// byte.
func NewSegmentedChain(k *sim.Kernel, cfg Config) []*SegRing {
	g := NewGeometry(cfg)
	segs := make([]*SegRing, g.Segments)
	for s := range segs {
		segs[s] = NewSegment(k, cfg, s)
	}
	for s, sr := range segs {
		sr.Link(segs[(s+1)%len(segs)], k.AtBoundary)
	}
	return segs
}

// Link wires the downstream neighbor and the boundary scheduler. In a
// sequential run cross is the shared kernel's AtBoundary; in a
// parallel run it routes through ParKernel.PostAt (or AtBoundary when
// both segments share a shard). The handler passed to cross must fire
// on next's kernel.
func (sr *SegRing) Link(next *SegRing, cross func(at sim.Time, seq uint64, h sim.EventHandler)) {
	sr.next = next
	sr.cross = cross
}

// SetClient registers the callback receiver for this segment's nodes.
func (sr *SegRing) SetClient(c SegClient) { sr.client = c }

// Kernel returns the kernel this segment is attached to.
func (sr *SegRing) Kernel() *sim.Kernel { return sr.k }

// Segment returns this segment's index.
func (sr *SegRing) Segment() int { return sr.seg }

// NodeRange returns the segment's node range [lo, hi).
func (sr *SegRing) NodeRange() (lo, hi int) { return sr.lo, sr.hi }

// Hop returns the exit boundary link's latency.
func (sr *SegRing) Hop() sim.Time { return sr.hop }

// Send injects one message at src (which must be one of this segment's
// nodes, on this segment's kernel). dst is a node id or Broadcast.
// Delivery, visits and broadcast return are reported through the
// chain's SegClients. Send returns the departure time: when the
// message head cleared src's injection point.
func (sr *SegRing) Send(src, dst int, class SlotClass, p SegPayload) sim.Time {
	g := &sr.Geo
	if src < sr.lo || src >= sr.hi {
		panic(fmt.Sprintf("ring: source node %d outside segment %d range [%d,%d)", src, sr.seg, sr.lo, sr.hi))
	}
	if dst != Broadcast && (dst < 0 || dst >= g.Nodes || dst == src) {
		panic(fmt.Sprintf("ring: bad destination %d from %d", dst, src))
	}
	now := sr.k.Now()
	dep := now
	if nf := sr.nodeFree[src-sr.lo][class]; nf > dep {
		dep = nf
	}
	sr.nodeFree[src-sr.lo][class] = dep + g.SlotTime(class)

	st := &sr.stats[class]
	st.messages++
	st.waitSum += dep - now

	sr.leg(dep, src, src, dst, class, p, true)
	return dep
}

// leg processes a message's traversal of this segment: the head is at
// entryNode at t0 (the source's departure for an injection leg, the
// boundary arrival for a continuation leg, which always enters at the
// segment's first node). It schedules the segment's visit/terminal
// events, and for a continuing message reserves the exit link and
// hands off to the downstream segment at a banded calendar position.
func (sr *SegRing) leg(t0 sim.Time, entryNode, origSrc, dst int, class SlotClass, p SegPayload, injected bool) {
	g := &sr.Geo

	// Terminal action inside this segment, if any.
	endNode := -1
	ret := false
	if dst == Broadcast {
		if !injected && origSrc >= sr.lo && origSrc < sr.hi {
			endNode, ret = origSrc, true // full circle: remove at source
		}
	} else if dst >= sr.lo && dst < sr.hi && (!injected || dst > entryNode) {
		endNode = dst
	}

	// Nodes the head visits on this leg, in downstream order.
	firstVisit := entryNode
	if injected {
		firstVisit = entryNode + 1
	}
	lastVisit := sr.hi - 1
	if endNode >= 0 {
		lastVisit = endNode - 1
	}

	if endNode < 0 {
		// Continue downstream: serialize on the exit link (reservation
		// semantics, decided in this segment's deterministic dispatch
		// order), then arrive at the next segment's first node one hop
		// later — never sooner, which is the lookahead contract the
		// parallel window relies on.
		tE := t0 + g.PropTime(entryNode, sr.hi-1)
		ldep := tE
		if lf := sr.linkFree[class]; lf > ldep {
			ldep = lf
		}
		sr.linkFree[class] = ldep + g.SlotTime(class)
		arr := ldep + sr.hop
		sr.stats[class].transit += arr - t0
		seq := boundarySeq(sr.seg, sr.fifo)
		sr.fifo++
		sr.cross(arr, seq, &legEntry{next: sr.next, origSrc: origSrc, dst: dst, class: class, p: p})
	} else {
		sr.stats[class].transit += g.PropTime(entryNode, endNode)
	}

	if firstVisit > lastVisit && endNode < 0 {
		return // nothing observable in this segment
	}
	w := sr.pool.get()
	w.sr = sr
	w.p = p
	w.t0 = t0
	w.entryNode = entryNode
	w.node = firstVisit
	w.lastVisit = lastVisit
	w.endNode = endNode
	w.ret = ret
	if firstVisit <= lastVisit {
		sr.k.AtEvent(t0+g.PropTime(entryNode, firstVisit), w)
	} else {
		sr.k.AtEvent(t0+g.PropTime(entryNode, endNode), w)
	}
}

// legEntry is a boundary crossing in flight: allocated by the upstream
// segment, fired on the downstream segment's kernel. It is not pooled
// — pooling across shards would race — but crossings are the rare path
// by construction.
type legEntry struct {
	next    *SegRing
	origSrc int
	dst     int
	class   SlotClass
	p       SegPayload
}

func (le *legEntry) OnEvent(at sim.Time) {
	sr := le.next
	sr.leg(at, sr.lo, le.origSrc, le.dst, le.class, le.p, false)
}

// segWalk is the pooled per-leg visit chain, mirroring sweepMsg: one
// calendar entry walks the leg's visited nodes and fires the terminal
// delivery/return, re-arming itself hop to hop and recycling before
// the final callback so clients are free to Send again immediately.
type segWalk struct {
	sr        *SegRing
	p         SegPayload
	t0        sim.Time
	entryNode int
	node      int
	lastVisit int
	endNode   int // -1: leg continues downstream, no terminal here
	ret       bool
	next      *segWalk
}

// segPool recycles segWalk records; each SegRing owns one, so records
// never migrate between shards.
type segPool struct{ free *segWalk }

func (p *segPool) get() *segWalk {
	w := p.free
	if w == nil {
		return &segWalk{}
	}
	p.free = w.next
	w.next = nil
	return w
}

func (w *segWalk) release() {
	sr := w.sr
	w.sr = nil
	w.next = sr.pool.free
	sr.pool.free = w
}

func (w *segWalk) OnEvent(at sim.Time) {
	sr := w.sr
	if w.node <= w.lastVisit {
		node := w.node
		w.node++
		if w.node <= w.lastVisit {
			sr.k.AtEvent(w.t0+sr.Geo.PropTime(w.entryNode, w.node), w)
		} else if w.endNode >= 0 {
			sr.k.AtEvent(w.t0+sr.Geo.PropTime(w.entryNode, w.endNode), w)
		} else {
			p := w.p
			w.release()
			sr.client.SegVisit(node, at, p)
			return
		}
		sr.client.SegVisit(node, at, w.p)
		return
	}
	endNode, ret, p := w.endNode, w.ret, w.p
	w.release()
	if ret {
		sr.client.SegReturn(endNode, at, p)
	} else {
		sr.client.SegDeliver(endNode, at, p)
	}
}

// ResetStats zeroes this segment's message and occupancy statistics;
// the measurement window restarts now. Segments reset independently
// (each at its own warm-up instant) so the accounting is identical
// however the segments are sharded.
func (sr *SegRing) ResetStats() {
	sr.stats = [NumSlotClasses]classStats{}
	sr.start = sr.k.Now()
}

// Messages reports how many messages of the class this segment's nodes
// injected since the last reset.
func (sr *SegRing) Messages(class SlotClass) uint64 { return sr.stats[class].messages }

// MeanWait reports the average injection wait for the class.
func (sr *SegRing) MeanWait(class SlotClass) sim.Time {
	st := &sr.stats[class]
	if st.messages == 0 {
		return 0
	}
	return st.waitSum / sim.Time(st.messages)
}

// Totals returns the segment's head-occupancy integral across all
// classes and the start of its measurement window. Occupancy is
// attributed leg by leg: each segment accounts the span from a
// message's entry (or injection) to its exit onto the boundary link
// (link wait and hop included) or its removal. Callers combine the
// per-segment integrals into a ring-wide utilization:
//
//	util = sum(transit) * S / ((S*end - sum(start)) * NumSlots)
//
// which reduces to the classic OverallUtilization when every segment
// shares one window.
func (sr *SegRing) Totals() (transit sim.Time, start sim.Time) {
	for c := range sr.stats {
		transit += sr.stats[c].transit
	}
	return transit, sr.start
}
