package ring

import (
	"fmt"

	"repro/internal/sim"
)

// The access-control variants below exist for the related-work ablation
// (Section 5 of the paper): they share the slotted ring's physical
// geometry (same links, same clock, same message sizes) but arbitrate
// access differently. Both expose the same Send shape as *Ring so the
// ablation bench can swap them in behind a tiny interface.

// Sender is the access-control-agnostic transmission interface the
// ablation uses.
type Sender interface {
	// Send transmits a message of the given class from src to dst
	// (Broadcast for a full traversal) and reports grab and removal
	// times; visit and done behave as in Ring.Send.
	Send(src, dst int, class SlotClass, visit func(node int, at sim.Time), done func(at sim.Time)) (grab, removal sim.Time)
}

var (
	_ Sender = (*Ring)(nil)
	_ Sender = (*TokenRing)(nil)
	_ Sender = (*InsertionRing)(nil)
)

// msgStages returns the on-wire length of a message of the class.
func msgStages(g *Geometry, class SlotClass) int {
	if class == BlockSlot {
		return g.BlockStages
	}
	return g.ProbeStages
}

// TokenRing models token-passing access control: a single token
// circulates and only the holder may transmit, so at most one message
// is in flight — the paper's stated disadvantage of token rings.
type TokenRing struct {
	Geo Geometry
	k   *sim.Kernel
	// busyUntil is when the current transmission (and token hand-off)
	// completes; the token is then at tokenAt.
	busyUntil sim.Time
	tokenAt   int
	pool      msgPool
	messages  uint64
	waitSum   sim.Time
	transit   sim.Time
}

// NewTokenRing returns a token-ring with the given physical geometry.
func NewTokenRing(k *sim.Kernel, cfg Config) *TokenRing {
	return &TokenRing{Geo: NewGeometry(cfg), k: k}
}

// Send implements Sender. The sender first waits for the ring to go
// idle and the token to reach it; the transmission then occupies the
// ring for the propagation plus message length.
func (t *TokenRing) Send(src, dst int, class SlotClass, visit func(node int, at sim.Time), done func(at sim.Time)) (grab, removal sim.Time) {
	g := &t.Geo
	if src < 0 || src >= g.Nodes {
		panic(fmt.Sprintf("ring: bad source node %d", src))
	}
	now := t.k.Now()
	start := now
	if t.busyUntil > start {
		start = t.busyUntil
	}
	// Token travels from its current position to src.
	grab = start + g.PropTime(t.tokenAt, src)
	var span int
	if dst == Broadcast {
		span = g.TotalStages
	} else {
		span = g.DistStages(src, dst)
	}
	// The message tail clears the path span stages plus its own length
	// after the grab; the token is released at the destination.
	removal = grab + sim.Time(span+msgStages(g, class))*g.ClockPS
	t.busyUntil = removal
	if dst == Broadcast {
		t.tokenAt = src
	} else {
		t.tokenAt = dst
	}
	t.messages++
	t.waitSum += grab - now
	t.transit += removal - grab

	launchSweep(t.k, &t.pool, g, src, dst, grab, removal, visit, done)
	return grab, removal
}

// MeanWait reports the average token-acquisition wait.
func (t *TokenRing) MeanWait() sim.Time {
	if t.messages == 0 {
		return 0
	}
	return t.waitSum / sim.Time(t.messages)
}

// InsertionRing approximates register-insertion access control (the SCI
// choice): a node inserts immediately when its output link is free; a
// node that is transmitting buffers passing traffic in a bypass FIFO,
// delaying it until the local transmission drains. The model is
// cut-through: a message holds its *source* output link for its own
// length, and at each downstream node it merely waits (without holding)
// for that node's output to go idle — the bypass-FIFO delay — then
// propagates. Unloaded latency is thus pure propagation (the paper's
// light-load advantage over slotted rings), while the delay grows with
// the activity of the nodes along the path (the paper's heavy-load,
// position-dependent unfairness).
type InsertionRing struct {
	Geo   Geometry
	k     *sim.Kernel
	links []*sim.Resource

	messages uint64
	waitSum  sim.Time
}

// NewInsertionRing returns a register-insertion ring with the given
// physical geometry.
func NewInsertionRing(k *sim.Kernel, cfg Config) *InsertionRing {
	g := NewGeometry(cfg)
	ir := &InsertionRing{Geo: g, k: k, links: make([]*sim.Resource, g.Nodes)}
	for i := range ir.links {
		ir.links[i] = sim.NewResource(k, fmt.Sprintf("link%d", i), 1)
	}
	return ir
}

// Send implements Sender. The message acquires each link on its path in
// turn; per-hop forwarding latency is the inter-node stage distance,
// and a busy link (its owner node transmitting) delays the message —
// the bypass-FIFO effect.
func (ir *InsertionRing) Send(src, dst int, class SlotClass, visit func(node int, at sim.Time), done func(at sim.Time)) (grab, removal sim.Time) {
	g := &ir.Geo
	if src < 0 || src >= g.Nodes {
		panic(fmt.Sprintf("ring: bad source node %d", src))
	}
	now := ir.k.Now()
	ir.messages++

	hops := g.Nodes // broadcast: back to src
	if dst != Broadcast {
		hops = (dst - src + g.Nodes) % g.Nodes
	}
	hold := sim.Time(msgStages(g, class)) * g.ClockPS

	// Walk the path hop by hop. The source holds its output link for
	// the message length; downstream hops wait for the local output to
	// idle (bypass FIFO) without holding it, then propagate.
	var arrived func(hop int, at sim.Time)
	grabbed := sim.Time(-1)
	arrived = func(hop int, at sim.Time) {
		node := (src + hop) % g.Nodes
		if hop > 0 && hop < hops && visit != nil {
			visit(node, at)
		}
		if hop == hops {
			if done != nil {
				done(at)
			}
			return
		}
		link := ir.links[node]
		next := (node + 1) % g.Nodes
		prop := g.PropTime(node, next)
		if hop == 0 {
			link.Acquire(func() {
				start := ir.k.Now()
				grabbed = start
				ir.waitSum += start - now
				ir.k.After(hold, func() { link.Release() })
				ir.k.After(prop, func() { arrived(1, ir.k.Now()) })
			})
			return
		}
		// Bypass: queue for the link to observe its backlog, release
		// immediately, then forward.
		link.Acquire(func() {
			link.Release()
			ir.k.After(prop, func() { arrived(hop+1, ir.k.Now()) })
		})
	}
	arrived(0, now)
	// Register insertion has no slot to reserve; grab/removal are only
	// estimates here (exact times flow through the callbacks).
	est := now + sim.Time(hops)*hold
	if grabbed >= 0 {
		return grabbed, est
	}
	return now, est
}

// MeanInsertWait reports the average wait before first insertion.
func (ir *InsertionRing) MeanInsertWait() sim.Time {
	if ir.messages == 0 {
		return 0
	}
	return ir.waitSum / sim.Time(ir.messages)
}

// LinkUtilization reports the mean utilization across links.
func (ir *InsertionRing) LinkUtilization() float64 {
	var sum float64
	for _, l := range ir.links {
		sum += l.Utilization()
	}
	return sum / float64(len(ir.links))
}
