package ring

import (
	"fmt"

	"repro/internal/sim"
)

// Broadcast, used as a destination, sends a message around the whole
// ring; every other node observes it and the sender removes it — the
// snooping protocol's probe transmission mode.
const Broadcast = -1

// slot is the dynamic state of one circulating slot.
type slot struct {
	// busyFrom marks the reservation instant: from this moment no other
	// node may plan on this slot. The physical grab happens at the
	// reserved pass time, which may be slightly later; the gap (always
	// under one round trip) is accounted as occupied, a conservative
	// approximation documented in DESIGN.md.
	busyFrom sim.Time
	// busyUntil is when the in-flight message is removed (slot head at
	// the remover's interface) and the slot becomes reusable.
	busyUntil sim.Time
	// lastRemover / lastRemoveTime implement the anti-starvation rule:
	// the remover may not reuse the slot at the very pass on which it
	// removed a message.
	lastRemover    int
	lastRemoveTime sim.Time
}

// classStats accumulates per-slot-class accounting.
type classStats struct {
	messages  uint64
	waitSum   sim.Time // reservation -> physical grab
	transit   sim.Time // grab -> removal, the true occupancy integral
	starveHit uint64   // times the anti-starvation rule deferred a grab
}

// Ring is a live slotted ring attached to a simulation kernel.
type Ring struct {
	Geo Geometry
	// OnMessage, when non-nil, observes every message at reservation
	// time with its slot class, physical grab time and removal time —
	// the occupancy feed for the obs tracer's per-class timelines. The
	// nil default costs Send a single branch.
	OnMessage func(class SlotClass, grab, removal sim.Time)

	k     *sim.Kernel
	slots []slot
	// byClass[c] lists the indices of class-c slots in ascending order,
	// so a reservation scan touches only candidate slots (the batched
	// advancement of quiescent spans: slots of other classes cost zero).
	byClass [NumSlotClasses][]int32
	pool    msgPool
	stats   [NumSlotClasses]classStats
	start   sim.Time
}

// New returns a ring with the given configuration attached to k.
func New(k *sim.Kernel, cfg Config) *Ring {
	g := NewGeometry(cfg)
	r := &Ring{Geo: g, k: k, slots: make([]slot, g.NumSlots()), start: k.Now()}
	for i := range r.slots {
		r.slots[i].lastRemover = -2 // no remover yet
	}
	for i, c := range g.slotClass {
		r.byClass[c] = append(r.byClass[c], int32(i))
	}
	return r
}

// Kernel returns the kernel the ring is attached to.
func (r *Ring) Kernel() *sim.Kernel { return r.k }

// ResetStats zeroes all message and utilization statistics; subsequent
// figures cover only the window after the reset. In-flight slot
// occupancy is preserved (only the accounting restarts), so a reset in
// the middle of traffic slightly under-counts transit already begun —
// negligible over any real measurement window.
func (r *Ring) ResetStats() {
	r.stats = [NumSlotClasses]classStats{}
	r.start = r.k.Now()
}

// nextPass returns the earliest time >= from at which slot i's head
// passes node n.
func (r *Ring) nextPass(i, n int, from sim.Time) sim.Time {
	g := &r.Geo
	S := sim.Time(g.TotalStages)
	clk := g.ClockPS
	rtt := S * clk
	// Phase at which the head aligns with node n, in [0, rtt).
	d := g.NodePos(n) - g.slotStart[i]
	if d < 0 {
		d += g.TotalStages
	}
	phase := sim.Time(d) * clk
	if from <= phase {
		return phase
	}
	k := (from - phase + rtt - 1) / rtt
	return phase + k*rtt
}

// earliestGrab returns the earliest pass time >= now at which node src
// could legitimately claim slot i.
func (r *Ring) earliestGrab(i, src int, now sim.Time) sim.Time {
	s := &r.slots[i]
	from := now
	if s.busyUntil > from {
		from = s.busyUntil
	}
	t := r.nextPass(i, src, from)
	if !r.Geo.DisableStarvationRule && src == s.lastRemover && t == s.lastRemoveTime {
		r.stats[r.Geo.slotClass[i]].starveHit++
		t = r.nextPass(i, src, t+1)
	}
	return t
}

// Send transmits one message from src in the earliest usable slot of
// the given class.
//
// If dst == Broadcast the message traverses the whole ring and is
// removed by src after one round trip; visit (if non-nil) fires at
// every other node as the slot head passes it — this is how snooping
// probes are observed. Otherwise the message is removed at dst and
// visit fires at the nodes strictly between src and dst.
//
// done (if non-nil) fires at the removal time. Send returns the grab
// time (when the slot head physically passed src) and the removal time.
func (r *Ring) Send(src, dst int, class SlotClass, visit func(node int, at sim.Time), done func(at sim.Time)) (grab, removal sim.Time) {
	g := &r.Geo
	if src < 0 || src >= g.Nodes {
		panic(fmt.Sprintf("ring: bad source node %d", src))
	}
	if dst != Broadcast && (dst < 0 || dst >= g.Nodes || dst == src) {
		panic(fmt.Sprintf("ring: bad destination %d from %d", dst, src))
	}
	now := r.k.Now()

	// Reserve the slot of this class with the earliest grab. The scan
	// covers every candidate (not just until a same-pass hit) because
	// the anti-starvation accounting in earliestGrab is per-slot.
	cand := r.byClass[class]
	if len(cand) == 0 {
		panic(fmt.Sprintf("ring: no slots of class %v configured", class))
	}
	best, bestAt := int(cand[0]), r.earliestGrab(int(cand[0]), src, now)
	for _, ci := range cand[1:] {
		i := int(ci)
		if t := r.earliestGrab(i, src, now); t < bestAt {
			best, bestAt = i, t
		}
	}
	grab = bestAt

	remover := dst
	if dst == Broadcast {
		removal = grab + g.RoundTrip()
		remover = src
	} else {
		removal = grab + g.PropTime(src, dst)
	}
	s := &r.slots[best]
	s.busyFrom = now
	s.busyUntil = removal
	s.lastRemover = remover
	s.lastRemoveTime = removal

	st := &r.stats[class]
	st.messages++
	st.waitSum += grab - now
	st.transit += removal - grab
	if r.OnMessage != nil {
		r.OnMessage(class, grab, removal)
	}

	launchSweep(r.k, &r.pool, g, src, dst, grab, removal, visit, done)
	return grab, removal
}

// Messages reports how many messages of the class have been sent.
func (r *Ring) Messages(class SlotClass) uint64 { return r.stats[class].messages }

// MeanWait reports the average reservation-to-grab wait for the class.
func (r *Ring) MeanWait(class SlotClass) sim.Time {
	st := &r.stats[class]
	if st.messages == 0 {
		return 0
	}
	return st.waitSum / sim.Time(st.messages)
}

// StarvationDeferrals reports how often the anti-starvation rule pushed
// a grab to the next round trip.
func (r *Ring) StarvationDeferrals(class SlotClass) uint64 { return r.stats[class].starveHit }

// Utilization reports the time-averaged fraction of slots of the class
// carrying a message, from ring creation until now. This is the paper's
// "average ring slot utilization" restricted to one class.
func (r *Ring) Utilization(class SlotClass) float64 {
	elapsed := r.k.Now() - r.start
	n := r.Geo.SlotsOfClass(class)
	if elapsed <= 0 || n == 0 {
		return 0
	}
	return float64(r.stats[class].transit) / float64(elapsed*sim.Time(n))
}

// OverallUtilization reports the slot utilization across all classes,
// the quantity plotted in Figures 3, 4 and 6.
func (r *Ring) OverallUtilization() float64 {
	elapsed := r.k.Now() - r.start
	if elapsed <= 0 {
		return 0
	}
	var transit sim.Time
	for c := 0; c < NumSlotClasses; c++ {
		transit += r.stats[c].transit
	}
	return float64(transit) / float64(elapsed*sim.Time(r.Geo.NumSlots()))
}
