// Package memory models the distributed shared memory of the study:
// the physical memory is partitioned among the processing nodes, with
// shared pages allocated to homes at page granularity (the paper uses
// random allocation, which is what makes the fraction of remote clean
// misses grow with system size — Section 4.2). Each home keeps a dirty
// bit per block plus the directory state used by the directory-based
// protocols: a full-map presence vector and an SCI-style sharing list
// head. Bank access time is the paper's fixed 140 ns.
package memory

import (
	"math/bits"

	"repro/internal/sim"
)

// BankTime is the fixed local memory bank access time used throughout
// the paper (Section 4.1).
const BankTime = 140 * sim.Nanosecond

// HomeMap assigns block addresses to home nodes at page granularity.
type HomeMap struct {
	nodes     int
	pageBytes int
	// table maps page index -> home; built lazily for the address
	// range actually touched, seeded-random like the paper's OS page
	// placement.
	table map[uint64]int
	rng   *sim.Rand
	hint  func(addr uint64) (int, bool)
	// hashed selects stateless placement: each unhinted page's home is
	// a hash of its page number and hashSeed, never the rng stream.
	hashed   bool
	hashSeed uint64
}

// SetHint installs a placement hint consulted before random placement:
// when it returns (node, true) with a valid node, the page is pinned
// there. Used to home private data at its owning processor while
// shared pages stay randomly allocated, as in the paper.
func (h *HomeMap) SetHint(hint func(addr uint64) (int, bool)) { h.hint = hint }

// NewHomeMap returns a page-granular random home mapping over the given
// number of nodes. pageBytes must be a power of two.
func NewHomeMap(nodes, pageBytes int, rng *sim.Rand) *HomeMap {
	if nodes <= 0 {
		panic("memory: need at least one node")
	}
	if pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic("memory: page size must be a positive power of two")
	}
	return &HomeMap{nodes: nodes, pageBytes: pageBytes, table: make(map[uint64]int), rng: rng}
}

// NewHashedHomeMap returns a page-granular placement that derives each
// unhinted page's home from a hash of the page number and seed. Unlike
// the rng stream (consumed in first-touch order, a whole-run
// interleaving), the hash is a pure function of the address, so
// independent partitions of a machine compute identical placements —
// which is what lets partitioned runs of the segmented interconnect
// share one consistent memory layout without coordination. The
// distribution is as uniform as the rng's, just differently seeded, so
// it models the same random OS placement.
func NewHashedHomeMap(nodes, pageBytes int, seed uint64) *HomeMap {
	h := NewHomeMap(nodes, pageBytes, nil)
	h.hashed = true
	h.hashSeed = seed
	return h
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mixing function.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Nodes returns the number of nodes in the mapping.
func (h *HomeMap) Nodes() int { return h.nodes }

// Home returns the home node of addr. The first touch of a page fixes
// its placement for the rest of the run.
func (h *HomeMap) Home(addr uint64) int {
	page := addr / uint64(h.pageBytes)
	if home, ok := h.table[page]; ok {
		return home
	}
	var home int
	if n, ok := h.hintFor(addr); ok {
		home = n
	} else if h.hashed {
		home = int(mix64(page^h.hashSeed) % uint64(h.nodes))
	} else if h.rng != nil {
		home = h.rng.Intn(h.nodes)
	} else {
		home = int(page % uint64(h.nodes)) // deterministic round-robin fallback
	}
	h.table[page] = home
	return home
}

func (h *HomeMap) hintFor(addr uint64) (int, bool) {
	if h.hint == nil {
		return 0, false
	}
	n, ok := h.hint(addr)
	if !ok || n < 0 || n >= h.nodes {
		return 0, false
	}
	return n, true
}

// Place pins a page containing addr to a specific home (used by
// workloads that model private data living on the owning node).
func (h *HomeMap) Place(addr uint64, home int) {
	if home < 0 || home >= h.nodes {
		panic("memory: home out of range")
	}
	h.table[addr/uint64(h.pageBytes)] = home
}

// Line is the per-block directory record kept at the home node.
type Line struct {
	// Dirty is set when exactly one cache holds the block WE.
	Dirty bool
	// Owner is the dirty node when Dirty is set.
	Owner int
	// presence is the full-map bit vector of sharers (including the
	// owner when dirty). Supports up to 64 nodes, the paper's maximum.
	presence uint64
	// Head is the SCI-style sharing-list head node, -1 when uncached.
	// Maintained in parallel with the full map so that the linked-list
	// protocol comparison (Table 1) shares one directory store.
	Head int
	// next[i] is node i's successor in the sharing list, -1 at the
	// tail. A fixed array (valid only for present sharers) rather than
	// a map: it keeps Line pointer-free, so directory storage is
	// invisible to the garbage collector.
	next [64]int8
}

// lineChunkSize is how many Lines a directory allocates at once; lines
// are handed out of chunks so each block record is not an individual
// heap object.
const lineChunkSize = 256

// Directory is the home-node directory for all blocks homed at one node.
type Directory struct {
	lines map[uint64]*Line
	chunk []Line // current allocation chunk (pointers into it are stable)
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{lines: make(map[uint64]*Line)}
}

// Line returns the record for block, creating a clean, uncached record
// on first touch.
func (d *Directory) Line(block uint64) *Line {
	ln := d.lines[block]
	if ln == nil {
		if len(d.chunk) == 0 {
			d.chunk = make([]Line, lineChunkSize)
		}
		ln = &d.chunk[0]
		d.chunk = d.chunk[1:]
		ln.Head = -1
		d.lines[block] = ln
	}
	return ln
}

// Sharers returns the nodes with the presence bit set, ascending.
func (l *Line) Sharers() []int {
	var out []int
	p := l.presence
	for p != 0 {
		n := bits.TrailingZeros64(p)
		out = append(out, n)
		p &^= 1 << uint(n)
	}
	return out
}

// NumSharers returns the presence-bit population count.
func (l *Line) NumSharers() int { return bits.OnesCount64(l.presence) }

// HasSharer reports whether node's presence bit is set.
func (l *Line) HasSharer(node int) bool { return l.presence&(1<<uint(node)) != 0 }

// AddSharer sets node's presence bit and links it at the head of the
// SCI sharing list (SCI prepends new sharers, making the home's head
// pointer point at the most recent requester).
func (l *Line) AddSharer(node int) {
	if node < 0 || node >= 64 {
		panic("memory: sharer out of supported range [0,64)")
	}
	if l.HasSharer(node) {
		return
	}
	l.presence |= 1 << uint(node)
	l.next[node] = int8(l.Head)
	l.Head = node
}

// RemoveSharer clears node's presence bit and unlinks it from the
// sharing list.
func (l *Line) RemoveSharer(node int) {
	if !l.HasSharer(node) {
		return
	}
	l.presence &^= 1 << uint(node)
	if l.Head == node {
		l.Head = int(l.next[node])
	} else {
		for cur := l.Head; cur >= 0; cur = int(l.next[cur]) {
			if int(l.next[cur]) == node {
				l.next[cur] = l.next[node]
				break
			}
		}
	}
	if l.Dirty && l.Owner == node {
		l.Dirty = false
	}
}

// ClearSharers resets the block to uncached-clean. Stale next entries
// need no clearing: the list is only reachable through Head and the
// presence bits.
func (l *Line) ClearSharers() {
	l.presence = 0
	l.Dirty = false
	l.Head = -1
}

// SetDirty marks node as the exclusive dirty owner: the presence vector
// collapses to that single node.
func (l *Line) SetDirty(node int) {
	l.ClearSharers()
	l.AddSharer(node)
	l.Dirty = true
	l.Owner = node
}

// List returns the sharing list in SCI order (head first).
func (l *Line) List() []int {
	var out []int
	for cur := l.Head; cur >= 0; cur = int(l.next[cur]) {
		out = append(out, cur)
		if len(out) > 64 {
			panic("memory: sharing list cycle")
		}
	}
	return out
}

// Bank is one node's memory bank: a single server with the paper's
// fixed 140 ns access time.
type Bank struct {
	res *sim.Resource
}

// NewBank returns a memory bank attached to kernel k.
func NewBank(k *sim.Kernel, name string) *Bank {
	return &Bank{res: sim.NewResource(k, name, 1)}
}

// Access queues one 140 ns bank access; done runs when it completes.
func (b *Bank) Access(done func()) { b.res.Use(BankTime, done) }

// Utilization reports the bank's time-averaged utilization.
func (b *Bank) Utilization() float64 { return b.res.Utilization() }

// MeanWait reports the average queueing delay at the bank.
func (b *Bank) MeanWait() sim.Time { return b.res.MeanWait() }
