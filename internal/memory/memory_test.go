package memory

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestHomeMapStablePlacement(t *testing.T) {
	h := NewHomeMap(16, 4096, sim.NewRand(1))
	a := h.Home(0x12345)
	for i := 0; i < 10; i++ {
		if h.Home(0x12345) != a {
			t.Fatal("home placement not stable")
		}
	}
	// Same page, different offset: same home.
	if h.Home(0x12345^0xff) != a {
		t.Fatal("same-page addresses got different homes")
	}
}

func TestHomeMapSpread(t *testing.T) {
	h := NewHomeMap(8, 4096, sim.NewRand(7))
	counts := make([]int, 8)
	for p := uint64(0); p < 800; p++ {
		counts[h.Home(p*4096)]++
	}
	for n, c := range counts {
		if c < 60 || c > 140 {
			t.Fatalf("node %d got %d/800 pages, want ~100", n, c)
		}
	}
}

func TestHomeMapRoundRobinFallback(t *testing.T) {
	h := NewHomeMap(4, 4096, nil)
	for p := uint64(0); p < 16; p++ {
		if got := h.Home(p * 4096); got != int(p%4) {
			t.Fatalf("page %d home = %d, want %d", p, got, p%4)
		}
	}
}

func TestHomeMapPlace(t *testing.T) {
	h := NewHomeMap(8, 4096, sim.NewRand(3))
	h.Place(0x8000, 5)
	if h.Home(0x8abc&^0xfff|0x8000) != 5 {
		// address in the placed page
	}
	if got := h.Home(0x8010); got != 5 {
		t.Fatalf("placed page home = %d, want 5", got)
	}
}

func TestHomeMapValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHomeMap(0, 4096, nil) },
		func() { NewHomeMap(4, 1000, nil) },
		func() { NewHomeMap(4, 4096, nil).Place(0, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid input did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestDirectoryLineLifecycle(t *testing.T) {
	d := NewDirectory()
	ln := d.Line(0x100)
	if ln.Dirty || ln.NumSharers() != 0 || ln.Head != -1 {
		t.Fatalf("fresh line not clean/uncached: %+v", ln)
	}
	if d.Line(0x100) != ln {
		t.Fatal("Line not memoized")
	}
}

func TestSharerSetOperations(t *testing.T) {
	d := NewDirectory()
	ln := d.Line(0)
	ln.AddSharer(3)
	ln.AddSharer(7)
	ln.AddSharer(3) // idempotent
	if ln.NumSharers() != 2 {
		t.Fatalf("NumSharers = %d, want 2", ln.NumSharers())
	}
	if !ln.HasSharer(3) || !ln.HasSharer(7) || ln.HasSharer(5) {
		t.Fatal("HasSharer wrong")
	}
	got := ln.Sharers()
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("Sharers() = %v, want [3 7]", got)
	}
	ln.RemoveSharer(3)
	if ln.HasSharer(3) || ln.NumSharers() != 1 {
		t.Fatal("RemoveSharer failed")
	}
	ln.RemoveSharer(42) // absent: no-op
}

func TestSCIListOrder(t *testing.T) {
	ln := NewDirectory().Line(0)
	ln.AddSharer(2)
	ln.AddSharer(5)
	ln.AddSharer(9)
	// SCI prepends: head is the most recent requester.
	got := ln.List()
	want := []int{9, 5, 2}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("List() = %v, want %v", got, want)
	}
	// Removing the middle keeps the chain intact.
	ln.RemoveSharer(5)
	got = ln.List()
	if len(got) != 2 || got[0] != 9 || got[1] != 2 {
		t.Fatalf("List() after middle removal = %v, want [9 2]", got)
	}
	// Removing the head advances the head pointer.
	ln.RemoveSharer(9)
	if ln.Head != 2 {
		t.Fatalf("Head = %d after head removal, want 2", ln.Head)
	}
}

func TestSetDirtyCollapses(t *testing.T) {
	ln := NewDirectory().Line(0)
	ln.AddSharer(1)
	ln.AddSharer(2)
	ln.SetDirty(6)
	if !ln.Dirty || ln.Owner != 6 {
		t.Fatalf("dirty/owner = %v/%d, want true/6", ln.Dirty, ln.Owner)
	}
	if ln.NumSharers() != 1 || !ln.HasSharer(6) {
		t.Fatal("SetDirty did not collapse presence to owner")
	}
	if lst := ln.List(); len(lst) != 1 || lst[0] != 6 {
		t.Fatalf("List() = %v, want [6]", lst)
	}
	// Removing the owner clears dirty.
	ln.RemoveSharer(6)
	if ln.Dirty {
		t.Fatal("dirty bit survived owner removal")
	}
}

func TestClearSharers(t *testing.T) {
	ln := NewDirectory().Line(0)
	ln.SetDirty(3)
	ln.ClearSharers()
	if ln.Dirty || ln.NumSharers() != 0 || ln.Head != -1 || len(ln.List()) != 0 {
		t.Fatalf("ClearSharers left state: %+v", ln)
	}
}

func TestSharerRangeValidation(t *testing.T) {
	ln := NewDirectory().Line(0)
	defer func() {
		if recover() == nil {
			t.Error("AddSharer(64) did not panic")
		}
	}()
	ln.AddSharer(64)
}

func TestListMatchesPresenceInvariant(t *testing.T) {
	// Property: the SCI list and the full-map presence vector always
	// contain exactly the same nodes, in any add/remove interleaving.
	f := func(ops []uint16) bool {
		ln := NewDirectory().Line(0)
		for _, op := range ops {
			node := int(op % 64)
			if (op>>8)%2 == 0 {
				ln.AddSharer(node)
			} else {
				ln.RemoveSharer(node)
			}
		}
		list := ln.List()
		if len(list) != ln.NumSharers() {
			return false
		}
		for _, n := range list {
			if !ln.HasSharer(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBankSerializesAccesses(t *testing.T) {
	k := sim.NewKernel()
	b := NewBank(k, "mem0")
	var done []sim.Time
	k.At(0, func() {
		b.Access(func() { done = append(done, k.Now()) })
		b.Access(func() { done = append(done, k.Now()) })
	})
	k.Run()
	if len(done) != 2 {
		t.Fatalf("completions = %d, want 2", len(done))
	}
	if done[0] != BankTime || done[1] != 2*BankTime {
		t.Fatalf("completion times = %v, want [140ns 280ns]", done)
	}
	if b.MeanWait() != BankTime/2 {
		t.Fatalf("MeanWait = %v, want 70ns", b.MeanWait())
	}
}
