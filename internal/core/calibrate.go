package core

import (
	"repro/internal/stats"
	"repro/internal/workload"
)

// CalibrateWorkload tunes a generator configuration until the measured
// shared miss rate matches the profile's Table 2 target, mirroring the
// paper's methodology of deriving model inputs from detailed
// simulation. Because the shared miss rate is, to first order,
// inversely proportional to the re-reference burst length, a
// multiplicative update converges in one or two short simulation runs.
//
// The returned configuration carries the fitted SharedBurstScale; the
// final relative error is also returned.
func CalibrateWorkload(sysCfg Config, wcfg workload.Config, maxIters int) (workload.Config, float64) {
	if maxIters <= 0 {
		maxIters = 2
	}
	target := wcfg.Profile.SharedMissRate
	if target <= 0 {
		return wcfg, 0
	}
	relErr := 0.0
	for i := 0; i < maxIters; i++ {
		gen := workload.NewGenerator(wcfg)
		m := NewSystem(sysCfg, gen).Run()
		measured := m.SharedMissRate()
		relErr = stats.RelErr(measured, target)
		if relErr < 0.05 || measured <= 0 {
			break
		}
		scale := wcfg.SharedBurstScale
		if scale == 0 {
			scale = 1
		}
		scale *= measured / target
		// Keep the fit inside a sane band: bursts can't drop below a
		// single reference or grow beyond what the stream length can
		// express.
		if scale < 0.05 {
			scale = 0.05
		}
		if scale > 50 {
			scale = 50
		}
		wcfg.SharedBurstScale = scale
	}
	return wcfg, relErr
}
