package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workload"
)

// privateGen builds the PRIVATE workload the parallel covered class
// requires.
func privateGen(cpus, refs int, seed uint64) *workload.Generator {
	prof, ok := workload.ProfileFor("PRIVATE", cpus)
	if !ok {
		panic(fmt.Sprintf("no PRIVATE/%d profile", cpus))
	}
	return workload.NewGenerator(workload.Config{Profile: prof, DataRefsPerCPU: refs, Seed: seed})
}

// snapJSON renders a run's result artifact in its canonical serialized
// form — the byte string the cross-check compares.
func snapJSON(t *testing.T, m *Metrics) string {
	t.Helper()
	b, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestParallelByteIdenticalToSequential is the headline correctness
// guarantee: for covered configurations, a partitioned run's result
// artifact is byte-for-byte the sequential kernel's, across seeds,
// partition counts, and warmup gating.
func TestParallelByteIdenticalToSequential(t *testing.T) {
	for _, cpus := range []int{8, 16} {
		for _, seed := range []uint64{1, 7, 1993} {
			cfg := Config{Protocol: DirectoryRing, Seed: seed, WarmupDataRefs: 150}
			gen := privateGen(cpus, 600, seed)
			seq := Run(cfg, gen)
			if seq.Parallel.Partitions != 1 || seq.Parallel.Fallback != "" {
				t.Fatalf("sequential run reported %+v", seq.Parallel)
			}
			if seq.DataRefs == 0 || seq.PrivateMisses == 0 {
				t.Fatalf("degenerate sequential run: %+v", seq)
			}
			want := snapJSON(t, seq)
			for _, p := range []int{2, 3, 4, 8} {
				if p > cpus {
					continue
				}
				pcfg := cfg
				pcfg.Parallel = p
				got := Run(pcfg, privateGen(cpus, 600, seed))
				if got.Parallel.Fallback != "" {
					t.Fatalf("cpus=%d seed=%d P=%d: unexpected fallback %q",
						cpus, seed, p, got.Parallel.Fallback)
				}
				if got.Parallel.Partitions != p {
					t.Fatalf("cpus=%d seed=%d: partitions = %d, want %d",
						cpus, seed, got.Parallel.Partitions, p)
				}
				if g := snapJSON(t, got); g != want {
					t.Errorf("cpus=%d seed=%d P=%d: parallel result diverged from sequential\nseq: %s\npar: %s",
						cpus, seed, p, want, g)
				}
				if got.Parallel.Windows == 0 || len(got.Parallel.BarrierStallNS) != p {
					t.Errorf("cpus=%d seed=%d P=%d: missing sync stats %+v",
						cpus, seed, p, got.Parallel)
				}
				if got.Parallel.CrossEvents != 0 {
					t.Errorf("covered class posted %d cross events; domains must be independent",
						got.Parallel.CrossEvents)
				}
			}
		}
	}
}

// TestParallelFallsBackLoudly pins the other half of the contract:
// every configuration outside the covered class runs sequentially,
// names why, and produces exactly the sequential artifact.
func TestParallelFallsBackLoudly(t *testing.T) {
	mp3d := func(seed uint64) *workload.Generator {
		return workload.NewGenerator(workload.Config{
			Profile: workload.MustProfile("MP3D", 16), DataRefsPerCPU: 400, Seed: seed})
	}
	cases := []struct {
		name string
		cfg  Config
		gen  func() workload.Source
	}{
		{"snoop-ring", Config{Protocol: SnoopRing, Seed: 3, WarmupDataRefs: 100},
			func() workload.Source { return mp3d(3) }},
		{"sci-ring", Config{Protocol: SCIRing, Seed: 3, WarmupDataRefs: 100},
			func() workload.Source { return mp3d(3) }},
		{"snoop-bus", Config{Protocol: SnoopBus, Seed: 3, WarmupDataRefs: 100},
			func() workload.Source { return mp3d(3) }},
		{"hier-ring", Config{Protocol: HierRing, Clusters: 4, Seed: 3, WarmupDataRefs: 100},
			func() workload.Source { return mp3d(3) }},
		{"shared-workload", Config{Protocol: DirectoryRing, Seed: 3, WarmupDataRefs: 100},
			func() workload.Source { return mp3d(3) }},
		{"traced", Config{Protocol: DirectoryRing, Seed: 3, Trace: obs.Config{SampleEvery: 8}},
			func() workload.Source { return privateGen(16, 400, 3) }},
		{"non-blocking-stores", Config{Protocol: DirectoryRing, Seed: 3, NonBlockingStores: true},
			func() workload.Source { return privateGen(16, 400, 3) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seqCfg := tc.cfg
			seq := NewSystem(seqCfg, tc.gen()).Run()
			want := snapJSON(t, seq)

			parCfg := tc.cfg
			parCfg.Parallel = 4
			got := Run(parCfg, tc.gen())
			if got.Parallel.Partitions != 1 {
				t.Fatalf("uncovered config ran with %d partitions", got.Parallel.Partitions)
			}
			if got.Parallel.Fallback == "" {
				t.Fatal("fallback reason missing: uncovered configs must report why")
			}
			if got.Parallel.Requested != 4 {
				t.Fatalf("Requested = %d, want 4", got.Parallel.Requested)
			}
			if g := snapJSON(t, got); g != want {
				t.Errorf("fallback run diverged from plain sequential\nseq: %s\nfb:  %s", want, g)
			}
		})
	}
}

// sharedGen builds a SHARED workload — the traffic class the segmented
// interconnect's cross-shard posts exist to carry.
func sharedGen(cpus, refs int, seed uint64) *workload.Generator {
	return workload.NewGenerator(workload.Config{
		Profile: workload.MustProfile("MP3D", cpus), DataRefsPerCPU: refs, Seed: seed})
}

// TestSegmentedParallelByteIdentical is the sharded-interconnect
// headline guarantee: a SHARED-workload directory run over the
// segmented ring, partitioned across shards with real cross-shard
// coherence traffic, produces byte-for-byte the sequential artifact —
// with the same kernel event count — across randomized shapes, seeds
// and every segment-aligned partition count.
func TestSegmentedParallelByteIdentical(t *testing.T) {
	shapes := []struct{ cpus, segs int }{{8, 2}, {8, 4}, {16, 4}, {16, 8}}
	for i, sh := range shapes {
		seed := uint64(7*i + 3)
		cfg := Config{Protocol: DirectoryRing, Seed: seed, WarmupDataRefs: 100}
		cfg.Ring.Segments = sh.segs
		seq := Run(cfg, sharedGen(sh.cpus, 500, seed))
		if seq.Parallel.Partitions != 1 || seq.Parallel.Fallback != "" {
			t.Fatalf("sequential segmented run reported %+v", seq.Parallel)
		}
		if seq.SharedMisses == 0 || seq.Upgrades == 0 {
			t.Fatalf("degenerate SHARED run: %+v", seq)
		}
		want := snapJSON(t, seq)
		for p := 2; p <= sh.segs; p++ {
			if sh.segs%p != 0 {
				continue
			}
			pcfg := cfg
			pcfg.Parallel = p
			got := Run(pcfg, sharedGen(sh.cpus, 500, seed))
			if got.Parallel.Fallback != "" || got.Parallel.Partitions != p {
				t.Fatalf("cpus=%d segs=%d P=%d: got %+v", sh.cpus, sh.segs, p, got.Parallel)
			}
			if g := snapJSON(t, got); g != want {
				t.Errorf("cpus=%d segs=%d P=%d seed=%d: segmented parallel diverged\nseq: %s\npar: %s",
					sh.cpus, sh.segs, p, seed, want, g)
			}
			if got.EventsFired != seq.EventsFired {
				t.Errorf("cpus=%d segs=%d P=%d: events fired %d (par) != %d (seq)",
					sh.cpus, sh.segs, p, got.EventsFired, seq.EventsFired)
			}
			// A SHARED workload must actually exercise the boundary
			// links: remote-home requests become cross-shard posts.
			if got.Parallel.CrossEvents == 0 || got.Parallel.CrossWindows == 0 {
				t.Errorf("cpus=%d segs=%d P=%d: no cross-shard traffic (%+v)",
					sh.cpus, sh.segs, p, got.Parallel)
			}
			if got.Parallel.WindowPS <= 0 {
				t.Errorf("cpus=%d segs=%d P=%d: window %d ps, want boundary-hop lookahead > 0",
					sh.cpus, sh.segs, p, got.Parallel.WindowPS)
			}
		}
	}
}

// TestSegmentedRandomizedCrossCheck draws fresh shapes, seeds and
// partition counts every run instead of walking a fixed table, so the
// identity guarantee keeps being probed at configurations nobody
// hand-picked. The draw is logged; any failure replays by pinning it.
func TestSegmentedRandomizedCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for i := 0; i < 2; i++ {
		cpus := []int{8, 16}[rng.Intn(2)]
		var divs []int
		for d := 2; d <= cpus; d++ {
			if cpus%d == 0 {
				divs = append(divs, d)
			}
		}
		segs := divs[rng.Intn(len(divs))]
		var pdivs []int
		for d := 2; d <= segs; d++ {
			if segs%d == 0 {
				pdivs = append(pdivs, d)
			}
		}
		p := pdivs[rng.Intn(len(pdivs))]
		seed := rng.Uint64()
		t.Logf("draw %d: cpus=%d segs=%d p=%d seed=%d", i, cpus, segs, p, seed)

		cfg := Config{Protocol: DirectoryRing, Seed: seed, WarmupDataRefs: 100}
		cfg.Ring.Segments = segs
		seq := Run(cfg, sharedGen(cpus, 400, seed))
		pcfg := cfg
		pcfg.Parallel = p
		got := Run(pcfg, sharedGen(cpus, 400, seed))
		if got.Parallel.Fallback != "" || got.Parallel.Partitions != p {
			t.Fatalf("draw %d: got %+v", i, got.Parallel)
		}
		if g, want := snapJSON(t, got), snapJSON(t, seq); g != want {
			t.Errorf("draw %d (cpus=%d segs=%d p=%d seed=%d): diverged\nseq: %s\npar: %s",
				i, cpus, segs, p, seed, want, g)
		}
		if got.EventsFired != seq.EventsFired {
			t.Errorf("draw %d: events fired %d (par) != %d (seq)",
				i, got.EventsFired, seq.EventsFired)
		}
	}
}

// emptySource is a planner-level stand-in: real profiles only exist at
// power-of-two CPU counts, but the partition planner must handle any
// segment count.
type emptySource struct{ cpus int }

func (s emptySource) NumCPUs() int                    { return s.cpus }
func (s emptySource) Next(int) (r trace.Ref, ok bool) { return trace.Ref{}, false }

// TestSegmentedPartitionPlanning: partitions must own whole segments,
// so the planner picks the largest divisor of the segment count within
// the request — and falls back loudly when there is none.
func TestSegmentedPartitionPlanning(t *testing.T) {
	cfg := Config{Protocol: DirectoryRing, Seed: 5, Parallel: 6}
	cfg.Ring.Segments = 8
	p, w, fb := planPartitions(cfg, emptySource{16})
	if p != 4 || fb != "" || w <= 0 {
		t.Fatalf("request 6 over 8 segments: got p=%d w=%d fb=%q, want p=4", p, w, fb)
	}
	cfg.Parallel = 2
	cfg.Ring.Segments = 3
	p, _, fb = planPartitions(cfg, emptySource{9})
	if p != 1 || fb == "" {
		t.Fatalf("request 2 over 3 segments: got p=%d fb=%q, want loud fallback", p, fb)
	}
	cfg.Parallel = 3
	p, w, fb = planPartitions(cfg, emptySource{9})
	if p != 3 || fb != "" || w <= 0 {
		t.Fatalf("request 3 over 3 segments: got p=%d w=%d fb=%q, want p=3", p, w, fb)
	}
}

// TestParallelClampsToCPUs: requesting more partitions than processors
// clamps rather than building empty domains.
func TestParallelClampsToCPUs(t *testing.T) {
	cfg := Config{Protocol: DirectoryRing, Seed: 2, Parallel: 64}
	m := Run(cfg, privateGen(8, 300, 2))
	if m.Parallel.Partitions != 8 {
		t.Fatalf("partitions = %d, want clamp to 8 CPUs", m.Parallel.Partitions)
	}
	if m.Parallel.Fallback != "" {
		t.Fatalf("unexpected fallback %q", m.Parallel.Fallback)
	}
}
