package core

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// privateGen builds the PRIVATE workload the parallel covered class
// requires.
func privateGen(cpus, refs int, seed uint64) *workload.Generator {
	prof, ok := workload.ProfileFor("PRIVATE", cpus)
	if !ok {
		panic(fmt.Sprintf("no PRIVATE/%d profile", cpus))
	}
	return workload.NewGenerator(workload.Config{Profile: prof, DataRefsPerCPU: refs, Seed: seed})
}

// snapJSON renders a run's result artifact in its canonical serialized
// form — the byte string the cross-check compares.
func snapJSON(t *testing.T, m *Metrics) string {
	t.Helper()
	b, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestParallelByteIdenticalToSequential is the headline correctness
// guarantee: for covered configurations, a partitioned run's result
// artifact is byte-for-byte the sequential kernel's, across seeds,
// partition counts, and warmup gating.
func TestParallelByteIdenticalToSequential(t *testing.T) {
	for _, cpus := range []int{8, 16} {
		for _, seed := range []uint64{1, 7, 1993} {
			cfg := Config{Protocol: DirectoryRing, Seed: seed, WarmupDataRefs: 150}
			gen := privateGen(cpus, 600, seed)
			seq := Run(cfg, gen)
			if seq.Parallel.Partitions != 1 || seq.Parallel.Fallback != "" {
				t.Fatalf("sequential run reported %+v", seq.Parallel)
			}
			if seq.DataRefs == 0 || seq.PrivateMisses == 0 {
				t.Fatalf("degenerate sequential run: %+v", seq)
			}
			want := snapJSON(t, seq)
			for _, p := range []int{2, 3, 4, 8} {
				if p > cpus {
					continue
				}
				pcfg := cfg
				pcfg.Parallel = p
				got := Run(pcfg, privateGen(cpus, 600, seed))
				if got.Parallel.Fallback != "" {
					t.Fatalf("cpus=%d seed=%d P=%d: unexpected fallback %q",
						cpus, seed, p, got.Parallel.Fallback)
				}
				if got.Parallel.Partitions != p {
					t.Fatalf("cpus=%d seed=%d: partitions = %d, want %d",
						cpus, seed, got.Parallel.Partitions, p)
				}
				if g := snapJSON(t, got); g != want {
					t.Errorf("cpus=%d seed=%d P=%d: parallel result diverged from sequential\nseq: %s\npar: %s",
						cpus, seed, p, want, g)
				}
				if got.Parallel.Windows == 0 || len(got.Parallel.BarrierStallNS) != p {
					t.Errorf("cpus=%d seed=%d P=%d: missing sync stats %+v",
						cpus, seed, p, got.Parallel)
				}
				if got.Parallel.CrossEvents != 0 {
					t.Errorf("covered class posted %d cross events; domains must be independent",
						got.Parallel.CrossEvents)
				}
			}
		}
	}
}

// TestParallelFallsBackLoudly pins the other half of the contract:
// every configuration outside the covered class runs sequentially,
// names why, and produces exactly the sequential artifact.
func TestParallelFallsBackLoudly(t *testing.T) {
	mp3d := func(seed uint64) *workload.Generator {
		return workload.NewGenerator(workload.Config{
			Profile: workload.MustProfile("MP3D", 16), DataRefsPerCPU: 400, Seed: seed})
	}
	cases := []struct {
		name string
		cfg  Config
		gen  func() workload.Source
	}{
		{"snoop-ring", Config{Protocol: SnoopRing, Seed: 3, WarmupDataRefs: 100},
			func() workload.Source { return mp3d(3) }},
		{"sci-ring", Config{Protocol: SCIRing, Seed: 3, WarmupDataRefs: 100},
			func() workload.Source { return mp3d(3) }},
		{"snoop-bus", Config{Protocol: SnoopBus, Seed: 3, WarmupDataRefs: 100},
			func() workload.Source { return mp3d(3) }},
		{"hier-ring", Config{Protocol: HierRing, Clusters: 4, Seed: 3, WarmupDataRefs: 100},
			func() workload.Source { return mp3d(3) }},
		{"shared-workload", Config{Protocol: DirectoryRing, Seed: 3, WarmupDataRefs: 100},
			func() workload.Source { return mp3d(3) }},
		{"traced", Config{Protocol: DirectoryRing, Seed: 3, Trace: obs.Config{SampleEvery: 8}},
			func() workload.Source { return privateGen(16, 400, 3) }},
		{"non-blocking-stores", Config{Protocol: DirectoryRing, Seed: 3, NonBlockingStores: true},
			func() workload.Source { return privateGen(16, 400, 3) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seqCfg := tc.cfg
			seq := NewSystem(seqCfg, tc.gen()).Run()
			want := snapJSON(t, seq)

			parCfg := tc.cfg
			parCfg.Parallel = 4
			got := Run(parCfg, tc.gen())
			if got.Parallel.Partitions != 1 {
				t.Fatalf("uncovered config ran with %d partitions", got.Parallel.Partitions)
			}
			if got.Parallel.Fallback == "" {
				t.Fatal("fallback reason missing: uncovered configs must report why")
			}
			if got.Parallel.Requested != 4 {
				t.Fatalf("Requested = %d, want 4", got.Parallel.Requested)
			}
			if g := snapJSON(t, got); g != want {
				t.Errorf("fallback run diverged from plain sequential\nseq: %s\nfb:  %s", want, g)
			}
		})
	}
}

// TestParallelClampsToCPUs: requesting more partitions than processors
// clamps rather than building empty domains.
func TestParallelClampsToCPUs(t *testing.T) {
	cfg := Config{Protocol: DirectoryRing, Seed: 2, Parallel: 64}
	m := Run(cfg, privateGen(8, 300, 2))
	if m.Parallel.Partitions != 8 {
		t.Fatalf("partitions = %d, want clamp to 8 CPUs", m.Parallel.Partitions)
	}
	if m.Parallel.Fallback != "" {
		t.Fatalf("unexpected fallback %q", m.Parallel.Fallback)
	}
}
