package core

import (
	"encoding/json"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// runSmall runs a short snooping simulation to get populated metrics.
func runSmall(t *testing.T) *Metrics {
	t.Helper()
	prof := workload.MustProfile("MP3D", 8)
	gen := workload.NewGenerator(workload.Config{
		Profile:        prof,
		DataRefsPerCPU: 700,
		Seed:           11,
	})
	return NewSystem(Config{
		Protocol:       SnoopRing,
		ProcCycle:      5 * sim.Nanosecond,
		WarmupDataRefs: 200,
		Seed:           11,
	}, gen).Run()
}

func TestMetricsSnapshotRoundTrip(t *testing.T) {
	m := runSmall(t)
	snap := m.Snapshot()

	// The snapshot must survive a JSON round-trip bit-for-bit — the
	// sweep engine's disk cache and determinism checks rely on it.
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back MetricsSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	raw2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Fatalf("snapshot JSON not stable:\n%s\nvs\n%s", raw, raw2)
	}

	// Rebuilding metrics from the snapshot must preserve every derived
	// quantity the experiment drivers read.
	r := back.Metrics()
	if r.ProcUtil() != m.ProcUtil() {
		t.Errorf("ProcUtil %v != %v", r.ProcUtil(), m.ProcUtil())
	}
	if r.MissLatency.Value() != m.MissLatency.Value() {
		t.Errorf("MissLatency %v != %v", r.MissLatency.Value(), m.MissLatency.Value())
	}
	if r.SharedMissRate() != m.SharedMissRate() || r.TotalMissRate() != m.TotalMissRate() {
		t.Error("miss rates changed across round-trip")
	}
	if r.ExecTime != m.ExecTime || r.NetworkUtil != m.NetworkUtil {
		t.Error("exec time / network util changed across round-trip")
	}
	if r.MissTraversals.N() != m.MissTraversals.N() ||
		r.MissTraversals.Percent(1) != m.MissTraversals.Percent(1) {
		t.Error("miss traversal distribution changed across round-trip")
	}
	for c, n := range m.ClassCount {
		if r.ClassCount[c] != n {
			t.Errorf("ClassCount[%v] = %d, want %d", c, r.ClassCount[c], n)
		}
	}
	if r.TxnCount != m.TxnCount {
		t.Error("TxnCount changed across round-trip")
	}

	// And the rebuilt metrics must re-snapshot to identical bytes.
	raw3, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw3) {
		t.Fatal("re-snapshot of rebuilt metrics differs")
	}
}
