// Package core assembles complete simulated multiprocessors: N
// single-issue processors (one instruction per cycle on hits, blocking
// on misses and invalidations, instruction fetches never missing — the
// paper's Section 4.1 processor model) driving one of the four
// coherence engines over a slotted ring or a split-transaction bus.
// Running a system produces the Metrics the paper reports — processor
// utilization, network utilization, miss latency — plus the event
// mixes its analytical models consume.
package core

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/bussnoop"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/directory"
	"repro/internal/hier"
	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/ring"
	"repro/internal/scilist"
	"repro/internal/sim"
	"repro/internal/snoop"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Engine is the coherence-engine interface satisfied by all four
// protocol implementations.
type Engine interface {
	Access(node int, addr uint64, write bool, done func(at sim.Time, res coherence.Result))
	// HasBlock reports whether node caches the block containing addr in
	// a readable state; the write-buffer model uses it for load
	// bypassing.
	HasBlock(node int, addr uint64) bool
}

// Compile-time checks that every engine satisfies the interface.
var (
	_ Engine = (*snoop.Engine)(nil)
	_ Engine = (*directory.Engine)(nil)
	_ Engine = (*directory.SegEngine)(nil)
	_ Engine = (*scilist.Engine)(nil)
	_ Engine = (*bussnoop.Engine)(nil)
	_ Engine = (*hier.Engine)(nil)
)

// Protocol selects a coherence engine + interconnect combination.
type Protocol int

const (
	// SnoopRing is the paper's snooping protocol on the slotted ring.
	SnoopRing Protocol = iota
	// DirectoryRing is the full-map directory protocol on the ring.
	DirectoryRing
	// SCIRing is the linked-list directory protocol on the ring.
	SCIRing
	// SnoopBus is the split-transaction bus baseline.
	SnoopBus
	// HierRing is the hierarchical two-level slotted ring extension
	// (Hector/KSR1 direction, Section 5 of the paper): clusters of
	// processors on local rings joined by a global ring, with
	// hierarchical snooping.
	HierRing
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case SnoopRing:
		return "snoop-ring"
	case DirectoryRing:
		return "directory-ring"
	case SCIRing:
		return "sci-ring"
	case SnoopBus:
		return "snoop-bus"
	case HierRing:
		return "hier-ring"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// DefaultProcCycle is 20 ns: the 50 MIPS processors used for the
// calibration simulations (Section 4.0).
const DefaultProcCycle = 20 * sim.Nanosecond

// Config describes a complete system.
type Config struct {
	// Protocol selects the engine + interconnect.
	Protocol Protocol
	// ProcCycle is the processor cycle time (default 20 ns = 50 MIPS).
	ProcCycle sim.Time
	// Ring configures the slotted ring for ring protocols; Nodes is
	// overridden by the workload's CPU count.
	Ring ring.Config
	// Bus configures the bus for SnoopBus; Nodes is overridden too.
	Bus bus.Config
	// Cache is the per-node cache geometry (zero: 128 KB / 16 B).
	Cache cache.Config
	// PageBytes is the home-placement granularity; default 4096.
	PageBytes int
	// Seed drives home placement.
	Seed uint64
	// WarmupDataRefs excludes each processor's first references from
	// the metrics: caches warm up, sharing patterns reach steady state,
	// and the interconnect statistics restart once every processor has
	// crossed the threshold. The paper's multi-million-reference traces
	// made cold-start negligible; short calibration runs need this
	// window. Zero measures everything.
	WarmupDataRefs int
	// Clusters is the cluster count for the HierRing protocol
	// (default 4); the node count must divide evenly.
	Clusters int
	// NonBlockingStores enables the weak-ordering latency-tolerance
	// model of the paper's conclusion (Section 6): stores retire into a
	// write buffer and the processor keeps executing; only loads and
	// buffer-full conditions block. The paper argues the slotted ring
	// can absorb the extra overlap-induced load while a near-saturated
	// bus cannot — the latency-tolerance ablation tests exactly that.
	NonBlockingStores bool
	// WriteBufferDepth bounds outstanding non-blocking stores
	// (default 8).
	WriteBufferDepth int
	// Trace enables transaction-level tracing (zero: disabled, and the
	// hot paths pay only nil-check branches). With SampleEvery = k > 0
	// every warm coherence transaction feeds the per-class latency
	// histograms and every k-th gets a full span record in the trace
	// ring buffers; ring and bus occupancy timelines are captured for
	// the whole measured window.
	Trace obs.Config
	// Parallel requests a partitioned parallel run with that many
	// domains (see Run and ParallelStats). 0 or 1 runs the sequential
	// kernel exactly as before; higher values are honored only for
	// configurations the partitioner covers, and fall back loudly
	// (Metrics.Parallel.Fallback) otherwise. Only the Run entry point
	// consults it; System always executes sequentially.
	Parallel int
}

// Metrics aggregates one run's results.
type Metrics struct {
	// ExecTime is when the last processor finished its stream.
	ExecTime sim.Time
	// BusyTime sums processor compute time across CPUs.
	BusyTime sim.Time
	// StallTime sums processor blocked time across CPUs.
	StallTime sim.Time

	// Reference counts.
	InstrRefs, DataRefs, SharedRefs uint64
	Hits                            uint64
	SharedMisses, PrivateMisses     uint64
	Upgrades                        uint64
	// LocalMisses / LocalInvs are transactions satisfied without the
	// interconnect; WriteBacks are dirty-eviction block transfers.
	LocalMisses, LocalInvs uint64
	WriteBacks             uint64
	// TwoCycleMulticast is the subset of TwoCycle remote misses caused
	// by a write miss multicasting invalidations (as opposed to a
	// badly-placed dirty owner); the analytical model prices the two
	// differently.
	TwoCycleMulticast uint64

	// TxnCount tallies transactions by class.
	TxnCount [coherence.NumTxn]uint64

	// MissLatency aggregates the blocking latency of read/write misses
	// (nanoseconds); InvLatency the latency of invalidations.
	MissLatency stats.Mean
	InvLatency  stats.Mean

	// BufferedStores counts store transactions that retired through
	// the write buffer without stalling (NonBlockingStores mode);
	// BufferedLatency tracks their completion latencies.
	BufferedStores  uint64
	BufferedLatency stats.Mean

	// ClassCount tallies remote misses by directory latency class
	// (Figure 5).
	ClassCount map[coherence.MissClass]uint64

	// MissTraversals / InvTraversals are the Table 1 distributions over
	// transactions that used the ring.
	MissTraversals *stats.Distribution
	InvTraversals  *stats.Distribution

	// NetworkUtil is the ring slot (or bus) utilization at completion.
	NetworkUtil float64

	// EventsFired is the number of kernel events dispatched by the run
	// and EventSlab the kernel's event-record high-water mark — the
	// simulation engine's unit of work and allocation footprint,
	// reported for perf observability. Excluded from MetricsSnapshot:
	// they describe the simulator, not the simulated machine.
	EventsFired uint64
	EventSlab   int

	// Trace is the run's tracer when Config.Trace enabled it, nil
	// otherwise. Like EventsFired/EventSlab it is excluded from
	// MetricsSnapshot: span records are a sampled observability artifact
	// of the run, not part of the deterministic simulated-machine
	// results.
	Trace *obs.Tracer

	// Parallel describes how the run was executed (partition count,
	// synchronization counters, fallback reason). Like EventsFired it is
	// excluded from MetricsSnapshot: it describes the simulator's
	// execution strategy, and the covered-config guarantee is precisely
	// that the strategy never changes the simulated-machine results.
	Parallel ParallelStats
}

// ParallelStats reports how a Run executed: the partitioning actually
// used, the conservative-window synchronization counters, and — when
// the requested parallelism could not be honored — the loud fallback
// reason.
type ParallelStats struct {
	// Requested is Config.Parallel as asked for.
	Requested int `json:"requested"`
	// Partitions is the partition count actually used (1 = sequential).
	Partitions int `json:"partitions"`
	// Fallback is empty when the request was honored; otherwise it names
	// why the run fell back to the sequential kernel. Configurations the
	// partitioner cannot prove independent are never run in parallel
	// silently.
	Fallback string `json:"fallback,omitempty"`
	// WindowPS is the barrier-window width actually used, in simulated
	// picoseconds: the minimum boundary-link hop for segmented-
	// interconnect runs, the fixed domain window otherwise.
	WindowPS int64 `json:"window_ps,omitempty"`
	// Windows and CrossEvents are the parallel kernel's barrier-window
	// and cross-partition-event counts; CrossWindows is how many windows
	// delivered at least one cross-partition event.
	Windows      uint64 `json:"windows"`
	CrossEvents  uint64 `json:"cross_events"`
	CrossWindows uint64 `json:"cross_windows,omitempty"`
	// BarrierStallNS is wall-clock nanoseconds each partition spent
	// waiting at window barriers (imbalance signal).
	BarrierStallNS []int64 `json:"barrier_stall_ns,omitempty"`
}

// ProcUtil returns the average processor utilization: busy over
// busy+stalled (the paper's "fraction of time the processor is busy").
func (m *Metrics) ProcUtil() float64 {
	total := m.BusyTime + m.StallTime
	if total == 0 {
		return 0
	}
	return float64(m.BusyTime) / float64(total)
}

// SharedMissRate returns measured shared misses per shared reference
// (upgrades excluded, as in Table 2).
func (m *Metrics) SharedMissRate() float64 {
	if m.SharedRefs == 0 {
		return 0
	}
	return float64(m.SharedMisses) / float64(m.SharedRefs)
}

// TotalMissRate returns measured misses per data reference.
func (m *Metrics) TotalMissRate() float64 {
	if m.DataRefs == 0 {
		return 0
	}
	return float64(m.SharedMisses+m.PrivateMisses) / float64(m.DataRefs)
}

// System is a runnable simulated multiprocessor — or, for parallel
// runs, one partition of it: a System owns the processors in the node
// range [lo, hi) of its workload, which is the full range for the
// sequential entry points.
type System struct {
	cfg    Config
	k      *sim.Kernel
	src    workload.Source
	engine Engine
	ring   *ring.Ring
	bus    *bus.Bus
	// segs is the segmented-ring variant's segment set (Ring.Segments
	// >= 2 with the directory protocol): the whole chain for sequential
	// runs, this domain's contiguous slice for partitioned ones.
	segs []*ring.SegRing
	// segWarm counts warmed processors per owned segment; a segment's
	// statistics restart when its own last processor warms, which (unlike
	// a global reset) is partition-invariant because domains own whole
	// segments.
	segWarm []int
	// segTransitPS / segWarmPS are the owned segments' summed occupancy
	// integral and stats-start times in integer picoseconds; finalize
	// renders NetworkUtil from the merged sums so the figure is identical
	// however the segments were partitioned.
	segTransitPS int64
	segWarmPS    int64
	tracer       *obs.Tracer
	procs        []*proc
	lo, hi       int
	m            Metrics

	// Latency aggregates accumulate in integer picoseconds and become
	// the public stats.Mean fields in one finalize step. Integer sums
	// are exact and order-free, which is what lets a partitioned run
	// merge per-domain aggregates into byte-identical results; the
	// incremental float path the Means used to take is neither.
	missAcc, invAcc, bufAcc latAcc

	running    int
	finished   int
	warmed     int
	blockBytes int
}

// latAcc accumulates a latency population exactly: integer-picosecond
// sum, count, min and max. mean() converts to the reported stats.Mean
// with a single division per moment, so the result is independent of
// observation order and of how the population was split across
// partitions.
type latAcc struct {
	n            uint64
	sumPS        int64
	minPS, maxPS sim.Time
}

func (a *latAcc) observe(lat sim.Time) {
	if a.n == 0 || lat < a.minPS {
		a.minPS = lat
	}
	if a.n == 0 || lat > a.maxPS {
		a.maxPS = lat
	}
	a.n++
	a.sumPS += int64(lat)
}

// merge folds b into a; used by the parallel runner in fixed domain
// order (the integer moments make the order irrelevant, but a fixed
// order keeps the reduction auditable).
func (a *latAcc) merge(b *latAcc) {
	if b.n == 0 {
		return
	}
	if a.n == 0 || b.minPS < a.minPS {
		a.minPS = b.minPS
	}
	if a.n == 0 || b.maxPS > a.maxPS {
		a.maxPS = b.maxPS
	}
	a.n += b.n
	a.sumPS += b.sumPS
}

// mean renders the accumulator as the public nanosecond stats.Mean.
func (a *latAcc) mean() stats.Mean {
	if a.n == 0 {
		return stats.Mean{}
	}
	return stats.MeanFromMoments(a.n,
		float64(a.sumPS)/float64(sim.Nanosecond),
		a.minPS.Nanoseconds(), a.maxPS.Nanoseconds())
}

// proc is one blocking processor. It doubles as the sim.EventHandler
// for its own issue events: the blocking pipeline has at most one
// scheduled event per processor (the next data access or the stream
// end), so the pending reference lives in the proc record and the hot
// loop schedules through the kernel's zero-allocation path.
type proc struct {
	id         int
	sys        *System
	busy       sim.Time
	stall      sim.Time
	done       bool
	finish     sim.Time
	dataIssued int
	warm       bool
	// wbBase is the processor's engine write-back count at the instant
	// it warmed; the run's WriteBacks metric is the per-processor
	// post-warm sum. Gating each node at its own warm instant (like
	// every other per-processor aggregate, and like the tracer's span
	// counts) makes the metric independent of how processors are
	// partitioned across domains.
	wbBase uint64
	// Pending issue event state: the data reference to access when the
	// compute cycles elapse, or eol when the stream is exhausted.
	ref   trace.Ref
	write bool
	eol   bool
	start sim.Time
	// accessDone is the engine completion callback for blocking
	// accesses, built once per proc so the steady state allocates no
	// closures.
	accessDone func(at sim.Time, res coherence.Result)
	// Write-buffer state for the non-blocking-stores model. The buffer
	// coalesces stores to a block already being acquired, as real write
	// buffers and MSHRs do.
	pendingStores int
	pendingBlocks map[uint64]bool
	// waiters holds accesses merged into an outstanding buffered store
	// (MSHR semantics): they resume when it completes.
	waiters  map[uint64][]func()
	draining bool
}

// NewSystem builds a system running src under cfg. The node count comes
// from the workload.
func NewSystem(cfg Config, src workload.Source) *System {
	return newSystemOn(sim.NewKernel(), cfg, src, 0, src.NumCPUs(), nil)
}

// newSystemOn builds a system on an existing kernel, owning only the
// processors in [lo, hi). The sequential path passes the full range; the
// parallel runner builds one domain per partition, each on its own
// kernel shard. A domain still models the full machine's geometry (ring,
// home placement) so node ids and addresses mean the same thing
// everywhere, but it drives — and for the directory engine, allocates —
// only its own nodes.
//
// segs, non-nil only for segmented-interconnect partitioned runs, is
// this domain's pre-built (and pre-linked across shard boundaries)
// slice of ring segments; sequential segmented runs build their own
// full chain here.
func newSystemOn(k *sim.Kernel, cfg Config, src workload.Source, lo, hi int, segs []*ring.SegRing) *System {
	if cfg.ProcCycle == 0 {
		cfg.ProcCycle = DefaultProcCycle
	}
	if cfg.WriteBufferDepth == 0 {
		cfg.WriteBufferDepth = 8
	}
	n := src.NumCPUs()
	s := &System{cfg: cfg, k: k, src: src, lo: lo, hi: hi}
	s.m.ClassCount = make(map[coherence.MissClass]uint64)
	s.m.MissTraversals = stats.NewDistribution()
	s.m.InvTraversals = stats.NewDistribution()

	// Shared pages are placed randomly across homes (the paper's OS
	// model); private data and code are homed at the issuing node.
	pageBytes := cfg.PageBytes
	if pageBytes == 0 {
		pageBytes = 4096
	}
	home := memory.NewHomeMap(n, pageBytes, sim.NewRand(cfg.Seed))
	if cfg.Protocol == DirectoryRing && cfg.Ring.Segments != 0 {
		// The segmented interconnect's partitioned runs build one home
		// map per domain; stateless hashed placement makes them agree on
		// every shared page without coordination (the rng stream is
		// consumed in first-touch order, a whole-run interleaving no
		// partition can reproduce alone).
		home = memory.NewHashedHomeMap(n, pageBytes, cfg.Seed)
	}
	home.SetHint(workload.HomeHint)

	s.tracer = obs.New(cfg.Trace, n)

	switch cfg.Protocol {
	case SnoopRing, DirectoryRing, SCIRing:
		rc := cfg.Ring
		rc.Nodes = n
		if rc.Segments != 0 && cfg.Protocol != DirectoryRing {
			panic(fmt.Sprintf("core: ring segments require the directory protocol, not %v", cfg.Protocol))
		}
		if rc.Segments != 0 {
			// The segmented interconnect: per-segment injection and
			// boundary-link serialization, the model whose boundary hop
			// is the parallel kernel's lookahead. The packet engine owns
			// exactly the nodes its segments cover, so a partial [lo, hi)
			// range needs no extra plumbing — segs defines it.
			if cfg.Trace.Enabled() {
				panic("core: tracing is unsupported with the segmented ring (Ring.Segments >= 2)")
			}
			if segs == nil {
				segs = ring.NewSegmentedChain(k, rc)
			}
			s.segs = segs
			s.segWarm = make([]int, len(segs))
			s.engine = directory.NewSegmented(segs, directory.Options{Cache: cfg.Cache, Home: home})
			break
		}
		r := ring.New(k, rc)
		s.ring = r
		switch cfg.Protocol {
		case SnoopRing:
			s.engine = snoop.New(r, snoop.Options{Cache: cfg.Cache, Home: home, Tracer: s.tracer})
		case DirectoryRing:
			dopts := directory.Options{Cache: cfg.Cache, Home: home, Tracer: s.tracer}
			if lo != 0 || hi != n {
				// A partition domain: allocate caches/banks only for the
				// owned nodes. Touching a foreign node then fails fast on
				// a nil cache instead of corrupting a peer domain's twin.
				dopts.NodeLo, dopts.NodeHi = lo, hi
			}
			s.engine = directory.New(r, dopts)
		case SCIRing:
			s.engine = scilist.New(r, scilist.Options{Cache: cfg.Cache, Home: home})
		}
		if s.tracer != nil {
			// One occupancy track per slot class, fed from the ring's
			// per-message observer.
			var tracks [ring.NumSlotClasses]*obs.Track
			for c := 0; c < ring.NumSlotClasses; c++ {
				cl := ring.SlotClass(c)
				tracks[c] = s.tracer.NewTrack("ring "+cl.String(), r.Geo.SlotsOfClass(cl))
			}
			r.OnMessage = func(class ring.SlotClass, grab, removal sim.Time) {
				tracks[class].Message(grab, removal)
			}
		}
	case SnoopBus:
		bc := cfg.Bus
		bc.Nodes = n
		b := bus.New(k, bc)
		s.bus = b
		s.engine = bussnoop.New(b, bussnoop.Options{Cache: cfg.Cache, Home: home})
		if s.tracer != nil {
			// One occupancy track per tenure kind; the bus is a single
			// shared resource, so each track has one "slot".
			var tracks [bus.NumTenureKinds]*obs.Track
			for kd := 0; kd < bus.NumTenureKinds; kd++ {
				tracks[kd] = s.tracer.NewTrack("bus "+bus.TenureKind(kd).String(), 1)
			}
			b.OnTenure = func(kind bus.TenureKind, grant, end sim.Time) {
				tracks[kind].Message(grant, end)
			}
		}
	case HierRing:
		clusters := cfg.Clusters
		if clusters == 0 {
			clusters = 4
		}
		s.engine = hier.New(k, n, hier.Options{
			Clusters: clusters,
			Ring:     cfg.Ring,
			Cache:    cfg.Cache,
			Home:     home,
		})
	default:
		panic(fmt.Sprintf("core: unknown protocol %v", cfg.Protocol))
	}

	s.blockBytes = cfg.Cache.BlockBytes
	if s.blockBytes == 0 {
		s.blockBytes = cache.DefaultConfig.BlockBytes
	}
	s.procs = make([]*proc, hi-lo)
	for i := range s.procs {
		p := &proc{
			id:            lo + i,
			sys:           s,
			warm:          cfg.WarmupDataRefs == 0,
			pendingBlocks: make(map[uint64]bool),
			waiters:       make(map[uint64][]func()),
		}
		p.accessDone = func(at sim.Time, res coherence.Result) {
			s.record(p, p.ref, at-p.start, res)
			if !p.warm && p.dataIssued >= s.cfg.WarmupDataRefs {
				s.crossWarmup(p)
			}
			s.advance(p)
		}
		s.procs[i] = p
		if p.warm {
			s.warmed++
			s.tracer.SetWarm(p.id)
		}
	}
	return s
}

// crossWarmup marks p as measured; when the last processor warms up,
// the interconnect statistics restart so that utilization figures
// cover only the steady-state window.
func (s *System) crossWarmup(p *proc) {
	p.warm = true
	p.busy = 0
	p.stall = 0
	p.wbBase = s.writeBacksOf(p.id)
	s.warmed++
	s.tracer.SetWarm(p.id)
	if s.segs != nil {
		// Segmented interconnect: each segment's statistics restart when
		// its own last processor warms. Gating per segment (not on the
		// global last processor) keeps the restart instant a function of
		// that segment's nodes alone, so it lands at the same simulated
		// time however the segments are partitioned across domains.
		si := s.segs[0].Geo.SegOf(p.id) - s.segs[0].Segment()
		s.segWarm[si]++
		if lo, hi := s.segs[si].NodeRange(); s.segWarm[si] == hi-lo {
			s.segs[si].ResetStats()
		}
		return
	}
	if s.warmed == len(s.procs) {
		if s.ring != nil {
			s.ring.ResetStats()
		}
		if s.bus != nil {
			s.bus.ResetStats()
		}
		s.tracer.ResetNet(s.k.Now())
		if rs, ok := s.engine.(interface{ ResetNetStats() }); ok {
			rs.ResetNetStats()
		}
	}
}

// writeBacksOf reads node's eviction write-back count from the engine.
func (s *System) writeBacksOf(node int) uint64 {
	return s.engine.(interface{ WriteBacksOf(int) uint64 }).WriteBacksOf(node)
}

// Kernel returns the simulation kernel (tests and tools).
func (s *System) Kernel() *sim.Kernel { return s.k }

// EngineImpl returns the protocol engine (tests and tools).
func (s *System) EngineImpl() Engine { return s.engine }

// Ring returns the slotted ring, or nil for bus systems.
func (s *System) Ring() *ring.Ring { return s.ring }

// Bus returns the bus, or nil for ring systems.
func (s *System) Bus() *bus.Bus { return s.bus }

// Run executes every processor's stream to completion and returns the
// metrics.
func (s *System) Run() *Metrics {
	s.start()
	s.k.Run()
	s.collect()
	s.finalize()
	return &s.m
}

// start schedules every processor's first issue event. The parallel
// runner calls it on each domain before driving the shared parallel
// kernel.
func (s *System) start() {
	s.running = len(s.procs)
	for _, p := range s.procs {
		s.advance(p)
	}
}

// collect folds the post-run state into the metrics: completion checks,
// interconnect utilization, write-backs, kernel counters. It leaves the
// latency accumulators raw so the parallel runner can merge domains
// exactly; finalize renders them.
func (s *System) collect() {
	if s.finished != len(s.procs) {
		panic(fmt.Sprintf("core: %d of %d processors did not finish (deadlock?)",
			len(s.procs)-s.finished, len(s.procs)))
	}
	switch {
	case s.segs != nil:
		// Collect the owned segments' raw occupancy integrals; finalize
		// renders NetworkUtil from the merged sums (a partitioned run
		// must merge all domains' integrals first).
		for _, sr := range s.segs {
			transit, start := sr.Totals()
			s.segTransitPS += int64(transit)
			s.segWarmPS += int64(start)
		}
	case s.ring != nil:
		s.m.NetworkUtil = s.ring.OverallUtilization()
	case s.bus != nil:
		s.m.NetworkUtil = s.bus.Utilization()
	default:
		if rep, ok := s.engine.(interface{ NetworkUtilization() float64 }); ok {
			s.m.NetworkUtil = rep.NetworkUtilization()
		}
	}
	var wb uint64
	for _, p := range s.procs {
		wb += s.writeBacksOf(p.id) - p.wbBase
	}
	s.m.WriteBacks = wb
	s.m.EventsFired = s.k.Fired()
	s.m.EventSlab = s.k.SlabSize()
	s.tracer.Finish(s.k.Now())
	s.m.Trace = s.tracer
}

// finalize renders the integer latency accumulators into the public
// Mean fields — the single division per moment that keeps the result
// independent of observation order and domain partitioning.
func (s *System) finalize() {
	if s.segs != nil {
		// Ring-wide utilization from the merged per-segment occupancy
		// integrals (see SegRing.Totals): one float expression over
		// integer sums, so sequential and partitioned runs agree to the
		// last bit. S and NumSlots are whole-machine figures regardless
		// of how many segments this (root) domain owned itself.
		g := &s.segs[0].Geo
		S := int64(g.Segments)
		denom := (S*int64(s.m.ExecTime) - s.segWarmPS) * int64(g.NumSlots())
		if denom > 0 {
			s.m.NetworkUtil = float64(s.segTransitPS*S) / float64(denom)
		}
	}
	s.m.MissLatency = s.missAcc.mean()
	s.m.InvLatency = s.invAcc.mean()
	s.m.BufferedLatency = s.bufAcc.mean()
}

// Metrics returns the metrics collected so far.
func (s *System) Metrics() *Metrics { return &s.m }

// advance consumes references for p until its next data reference (or
// stream end), charging one processor cycle per reference, then issues
// the data access after those compute cycles elapse. The issue event is
// the proc itself (see OnEvent), so the per-reference loop schedules
// without allocating.
func (s *System) advance(p *proc) {
	cyc := s.cfg.ProcCycle
	var cycles sim.Time
	for {
		ref, ok := s.src.Next(p.id)
		if !ok {
			p.busy += cycles * cyc
			p.eol = true
			s.k.AfterEvent(cycles*cyc, p)
			return
		}
		cycles++
		if ref.Op == coherence.Ifetch {
			if p.warm {
				s.m.InstrRefs++
			}
			continue
		}
		// A data reference: the access issues after the accumulated
		// compute cycles.
		p.busy += cycles * cyc
		p.dataIssued++
		if p.warm {
			s.m.DataRefs++
			if ref.Shared {
				s.m.SharedRefs++
			}
		}
		p.ref = ref
		p.write = ref.Op == coherence.Store
		s.k.AfterEvent(cycles*cyc, p)
		return
	}
}

// OnEvent fires p's pending issue event: the stream-end drain, or the
// data access whose compute cycles just elapsed. Blocking accesses
// complete through p.accessDone; the non-blocking-store paths keep
// per-call closures (they can have several accesses in flight), which
// only the latency-tolerance ablation pays for.
func (p *proc) OnEvent(at sim.Time) {
	s := p.sys
	if p.eol {
		// The write buffer must drain before the processor can retire;
		// finishProc fires now or at the last store's completion.
		p.draining = true
		if p.pendingStores == 0 {
			s.finishProc(p)
		}
		return
	}
	r := p.ref
	write := p.write
	start := at
	p.start = at
	if s.cfg.NonBlockingStores {
		block := r.Addr &^ uint64(s.blockBytes-1)
		if p.pendingBlocks[block] && !write && !s.engine.HasBlock(p.id, r.Addr) {
			// The block's data is absent and already being acquired by
			// a buffered store: merge into it (MSHR semantics) rather
			// than duplicating the miss. A load during an in-flight
			// *upgrade* bypasses instead — the RS copy is readable
			// under weak ordering — and falls through to the normal
			// path, where it simply hits.
			p.waiters[block] = append(p.waiters[block], func() {
				if p.warm {
					s.m.Hits++
					p.stall += s.k.Now() - start
				}
				s.advance(p)
			})
			return
		}
	}
	if write && s.cfg.NonBlockingStores && p.pendingStores < s.cfg.WriteBufferDepth {
		// Weak ordering: the store retires into the write buffer and
		// the processor continues immediately. A store to a block
		// already being acquired coalesces into the pending entry at
		// no cost.
		block := r.Addr &^ uint64(s.blockBytes-1)
		if !p.pendingBlocks[block] {
			p.pendingStores++
			p.pendingBlocks[block] = true
			s.engine.Access(p.id, r.Addr, true, func(at sim.Time, res coherence.Result) {
				s.recordNonBlocking(p, r, at-start, res)
				p.pendingStores--
				delete(p.pendingBlocks, block)
				if ws := p.waiters[block]; len(ws) > 0 {
					delete(p.waiters, block)
					for _, w := range ws {
						w()
					}
				}
				if p.draining && p.pendingStores == 0 {
					s.finishProc(p)
				}
			})
		}
		if !p.warm && p.dataIssued >= s.cfg.WarmupDataRefs {
			s.crossWarmup(p)
		}
		s.advance(p)
		return
	}
	s.engine.Access(p.id, r.Addr, write, p.accessDone)
}

// finishProc retires one processor and folds its times into the run
// totals.
func (s *System) finishProc(p *proc) {
	p.done = true
	p.finish = s.k.Now()
	s.finished++
	if p.finish > s.m.ExecTime {
		s.m.ExecTime = p.finish
	}
	s.m.BusyTime += p.busy
	s.m.StallTime += p.stall
}

// recordNonBlocking folds a completed buffered store into the metrics:
// it counts as a transaction but stalls nobody.
func (s *System) recordNonBlocking(p *proc, r trace.Ref, lat sim.Time, res coherence.Result) {
	if !p.warm {
		return
	}
	if res.Hit {
		s.m.Hits++
		return
	}
	s.m.TxnCount[res.Txn]++
	s.m.BufferedStores++
	s.bufAcc.observe(lat)
	switch res.Txn {
	case coherence.Invalidation:
		s.m.Upgrades++
		if res.Local {
			s.m.LocalInvs++
		}
	default:
		if r.Shared {
			s.m.SharedMisses++
		} else {
			s.m.PrivateMisses++
		}
		if res.Local {
			s.m.LocalMisses++
		}
		if res.Class != coherence.LocalOrHit {
			s.m.ClassCount[res.Class]++
		}
	}
}

// record folds one completed access into the metrics. Accesses inside
// a processor's warmup window still stall it (p.stall is zeroed when it
// crosses the boundary) but are excluded from the aggregates.
func (s *System) record(p *proc, r trace.Ref, lat sim.Time, res coherence.Result) {
	if !p.warm {
		p.stall += lat
		return
	}
	if res.Hit {
		s.m.Hits++
		return
	}
	p.stall += lat
	s.m.TxnCount[res.Txn]++
	switch res.Txn {
	case coherence.Invalidation:
		s.m.Upgrades++
		if res.Local {
			s.m.LocalInvs++
		}
		s.invAcc.observe(lat)
		if res.Traversals > 0 {
			s.m.InvTraversals.Observe(res.Traversals)
		}
	default:
		if res.Local {
			s.m.LocalMisses++
		}
		if res.Class == coherence.TwoCycle && res.Txn == coherence.WriteMissClean {
			s.m.TwoCycleMulticast++
		}
		if r.Shared {
			s.m.SharedMisses++
		} else {
			s.m.PrivateMisses++
		}
		s.missAcc.observe(lat)
		if res.Traversals > 0 {
			s.m.MissTraversals.Observe(res.Traversals)
		}
		if res.Class != coherence.LocalOrHit {
			s.m.ClassCount[res.Class]++
		}
	}
}
