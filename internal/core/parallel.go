// Parallel execution of complete systems: the model-level layer over
// sim.ParKernel.
//
// The partitioner splits the machine's node range into P contiguous
// domains, each a full System (its own ring geometry, home map,
// node-ranged directory engine, calendar queue and event slab) running
// on one shard of a conservative-window parallel kernel. That is only
// correct when the domains provably never interact, so parallelism is
// honored for exactly the covered class:
//
//   - DirectoryRing protocol: the only engine whose node-local path
//     (requester == home) touches no globally arbitrated interconnect
//     state. The slotted-ring, bus and hierarchical engines arbitrate
//     every transaction through central slot/tenure state with zero
//     lookahead, so they cannot be partitioned without rewriting their
//     arbitration — they fall back.
//   - A private-only workload (Source implementing PrivateOnly with
//     PrivateFrac == 1): every reference lands in the issuing CPU's own
//     address regions, whose pages the home hint places on the issuing
//     node, so every miss takes the node-local directory path and no
//     cross-domain event ever exists.
//   - No tracing and no non-blocking stores: the tracer samples on a
//     global span counter, which is interleaving-dependent.
//
// Everything else runs on the sequential kernel with the reason
// recorded in Metrics.Parallel.Fallback — a loud fallback, never a
// silent divergence. For the covered class the per-domain runs are
// reference-for-reference identical to the sequential run's per-node
// timelines, and the merge below folds per-domain aggregates with
// integer-exact, order-free arithmetic, so the result artifact is
// byte-identical to the sequential one (the cross-check tests enforce
// this).
package core

import (
	"fmt"

	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/workload"
)

// domainWindow is the barrier-window width for partitioned runs of the
// unsegmented covered class. That class has no cross-domain coupling at
// all (infinite lookahead), so any width is conservative; 100 µs keeps
// the window counter meaningful for progress accounting while making
// barrier overhead negligible against multi-millisecond simulated runs.
//
// Segmented-interconnect runs instead derive their window from the
// model: the minimum boundary-link hop latency (Geometry.MinSegmentHop)
// is exactly how far one segment can affect the next, so it is the
// widest window that can never miss a cross-shard message.
const domainWindow = 100 * sim.Microsecond

// planPartitions decides how many partitions cfg/src actually get, the
// barrier-window width to run them under and, when the answer is 1
// despite a larger request, why.
func planPartitions(cfg Config, src workload.Source) (p int, window sim.Time, fallback string) {
	req := cfg.Parallel
	if req <= 1 {
		return 1, 0, ""
	}
	if cfg.Protocol != DirectoryRing {
		return 1, 0, fmt.Sprintf("protocol %v is centrally arbitrated (zero lookahead)", cfg.Protocol)
	}
	if cfg.Trace.Enabled() {
		return 1, 0, "tracing samples on a global span counter"
	}
	if cfg.NonBlockingStores {
		return 1, 0, "non-blocking stores are outside the covered class"
	}
	n := src.NumCPUs()
	if req > n {
		req = n
	}
	if S := cfg.Ring.Segments; S >= 2 {
		// Segmented interconnect: boundary-crossing traffic is carried as
		// cross-shard events, so any workload is covered — but domains
		// must own whole segments (a segment's injection and link state
		// is single-shard), so the partition count is the largest divisor
		// of S within the request.
		p = req
		if p > S {
			p = S
		}
		for ; p >= 2; p-- {
			if S%p == 0 {
				break
			}
		}
		if p < 2 {
			return 1, 0, fmt.Sprintf("no divisor of %d ring segments within requested parallelism %d", S, req)
		}
		rc := cfg.Ring
		rc.Nodes = n
		g := ring.NewGeometry(rc)
		w := g.MinSegmentHop()
		if w <= 0 {
			// The covered class is defined by positive boundary-link
			// lookahead; a geometry without it is a model bug, not a
			// fallback case.
			panic(fmt.Sprintf("core: segmented ring (%d nodes, %d segments) has zero boundary-link lookahead", n, S))
		}
		return p, w, ""
	}
	po, ok := src.(interface{ PrivateOnly() bool })
	if !ok || !po.PrivateOnly() {
		return 1, 0, "workload shares data across partitions"
	}
	return req, domainWindow, ""
}

// Run executes src under cfg, honoring cfg.Parallel for covered
// configurations and falling back to the sequential kernel loudly
// otherwise. It is the preferred entry point for drivers; the result
// is byte-identical to NewSystem(cfg, src).Run() in either case, plus
// the ParallelStats record of how the run executed.
func Run(cfg Config, src workload.Source) *Metrics {
	p, window, fallback := planPartitions(cfg, src)
	if p <= 1 {
		s := NewSystem(cfg, src)
		m := s.Run()
		m.Parallel = ParallelStats{Requested: cfg.Parallel, Partitions: 1, Fallback: fallback}
		return m
	}

	n := src.NumCPUs()
	pk := sim.NewParKernel(p, window)

	// Segmented interconnect: build every ring segment on its owning
	// shard, then close the chain — same-shard boundaries hand off
	// through the shard's own banded calendar, cross-shard ones through
	// the parallel kernel's lookahead-checked post. The sequential
	// segmented run makes the identical AtBoundary calls on one kernel,
	// which is what the byte-identity cross-checks lean on.
	var domSegs [][]*ring.SegRing
	if S := cfg.Ring.Segments; S >= 2 {
		rc := cfg.Ring
		rc.Nodes = n
		segs := make([]*ring.SegRing, S)
		shardOf := func(seg int) int { return seg * p / S }
		for si := 0; si < S; si++ {
			segs[si] = ring.NewSegment(pk.Shard(shardOf(si)), rc, si)
		}
		for si := 0; si < S; si++ {
			from, to := shardOf(si), shardOf((si+1)%S)
			next := segs[(si+1)%S]
			if from == to {
				segs[si].Link(next, pk.Shard(from).AtBoundary)
			} else {
				from, to := from, to
				segs[si].Link(next, func(at sim.Time, seq uint64, h sim.EventHandler) {
					pk.PostAt(from, to, at, seq, h)
				})
			}
		}
		domSegs = make([][]*ring.SegRing, p)
		for i := 0; i < p; i++ {
			domSegs[i] = segs[i*S/p : (i+1)*S/p]
		}
	}

	doms := make([]*System, p)
	for i := 0; i < p; i++ {
		lo, hi := i*n/p, (i+1)*n/p
		var sg []*ring.SegRing
		if domSegs != nil {
			sg = domSegs[i]
		}
		doms[i] = newSystemOn(pk.Shard(i), cfg, src, lo, hi, sg)
	}
	for _, d := range doms {
		d.start()
	}
	pk.Run()

	// Reduce in fixed ascending-domain order. Every merged quantity is
	// an integer sum, max, or integer-moment accumulator, so the order
	// cannot change the result — fixing it anyway keeps the reduction
	// trivially auditable.
	root := doms[0]
	root.collect()
	for _, d := range doms[1:] {
		d.collect()
		root.mergeDomain(d)
	}
	root.finalize()

	st := pk.Stats()
	root.m.Parallel = ParallelStats{
		Requested:      cfg.Parallel,
		Partitions:     p,
		WindowPS:       int64(window),
		Windows:        st.Windows,
		CrossEvents:    st.CrossEvents,
		CrossWindows:   st.CrossWindows,
		BarrierStallNS: st.BarrierStallNS,
	}
	return &root.m
}

// mergeDomain folds domain d's collected (but not finalized) metrics
// into s's.
func (s *System) mergeDomain(d *System) {
	dm, sm := &d.m, &s.m
	if dm.ExecTime > sm.ExecTime {
		sm.ExecTime = dm.ExecTime
	}
	sm.BusyTime += dm.BusyTime
	sm.StallTime += dm.StallTime

	sm.InstrRefs += dm.InstrRefs
	sm.DataRefs += dm.DataRefs
	sm.SharedRefs += dm.SharedRefs
	sm.Hits += dm.Hits
	sm.SharedMisses += dm.SharedMisses
	sm.PrivateMisses += dm.PrivateMisses
	sm.Upgrades += dm.Upgrades
	sm.LocalMisses += dm.LocalMisses
	sm.LocalInvs += dm.LocalInvs
	sm.WriteBacks += dm.WriteBacks
	sm.TwoCycleMulticast += dm.TwoCycleMulticast
	for t, c := range dm.TxnCount {
		sm.TxnCount[t] += c
	}
	sm.BufferedStores += dm.BufferedStores
	for c, cnt := range dm.ClassCount {
		sm.ClassCount[c] += cnt
	}
	for o, cnt := range dm.MissTraversals.Counts() {
		sm.MissTraversals.AddCount(o, cnt)
	}
	for o, cnt := range dm.InvTraversals.Counts() {
		sm.InvTraversals.AddCount(o, cnt)
	}

	s.missAcc.merge(&d.missAcc)
	s.invAcc.merge(&d.invAcc)
	s.bufAcc.merge(&d.bufAcc)

	// Segmented-interconnect occupancy integrals: plain integer sums;
	// finalize turns the whole-machine totals into NetworkUtil.
	s.segTransitPS += d.segTransitPS
	s.segWarmPS += d.segWarmPS

	// Domains report their own (idle, for the covered class) rings; the
	// sequential run's figure for a traffic-free ring is exactly 0, so
	// max keeps the identical value while staying honest if a future
	// covered class ever carries traffic.
	if dm.NetworkUtil > sm.NetworkUtil {
		sm.NetworkUtil = dm.NetworkUtil
	}

	// Simulator-side counters (snapshot-excluded): total work and the
	// widest per-partition slab.
	sm.EventsFired += dm.EventsFired
	if dm.EventSlab > sm.EventSlab {
		sm.EventSlab = dm.EventSlab
	}
}
