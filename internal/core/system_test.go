package core

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// scriptSource is a fixed per-CPU script for deterministic tests.
type scriptSource struct {
	streams [][]trace.Ref
	pos     []int
}

func newScript(streams [][]trace.Ref) *scriptSource {
	return &scriptSource{streams: streams, pos: make([]int, len(streams))}
}

func (s *scriptSource) NumCPUs() int { return len(s.streams) }

func (s *scriptSource) Next(cpu int) (trace.Ref, bool) {
	if s.pos[cpu] >= len(s.streams[cpu]) {
		return trace.Ref{}, false
	}
	r := s.streams[cpu][s.pos[cpu]]
	s.pos[cpu]++
	return r, true
}

func ld(addr uint64) trace.Ref { return trace.Ref{Op: coherence.Load, Shared: true, Addr: addr} }
func st(addr uint64) trace.Ref { return trace.Ref{Op: coherence.Store, Shared: true, Addr: addr} }
func ifetch() trace.Ref        { return trace.Ref{Op: coherence.Ifetch, Addr: 0x1000_0000} }

func TestProtocolStrings(t *testing.T) {
	names := map[Protocol]string{
		SnoopRing: "snoop-ring", DirectoryRing: "directory-ring",
		SCIRing: "sci-ring", SnoopBus: "snoop-bus",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestPureComputeWorkload(t *testing.T) {
	// Two CPUs, only instruction fetches: execution time is exactly
	// refs × cycle and utilization is 1.
	streams := [][]trace.Ref{
		{ifetch(), ifetch(), ifetch()},
		{ifetch()},
	}
	s := NewSystem(Config{Protocol: SnoopRing, ProcCycle: 10 * sim.Nanosecond}, newScript(streams))
	m := s.Run()
	if m.ExecTime != 30*sim.Nanosecond {
		t.Fatalf("ExecTime = %v, want 30ns", m.ExecTime)
	}
	if m.InstrRefs != 4 || m.DataRefs != 0 {
		t.Fatalf("refs = %d instr / %d data, want 4/0", m.InstrRefs, m.DataRefs)
	}
	if u := m.ProcUtil(); u != 1 {
		t.Fatalf("ProcUtil = %v, want 1 (no stalls)", u)
	}
}

func TestMissStallsAccounting(t *testing.T) {
	// One CPU, one shared load (a miss): utilization below 1, one miss
	// recorded with positive latency.
	streams := [][]trace.Ref{{ld(0x2000_0000_0000)}}
	s := NewSystem(Config{Protocol: SnoopRing}, newScript(streams))
	m := s.Run()
	if m.DataRefs != 1 || m.SharedRefs != 1 || m.SharedMisses != 1 {
		t.Fatalf("counts: data=%d shared=%d misses=%d, want 1/1/1",
			m.DataRefs, m.SharedRefs, m.SharedMisses)
	}
	if m.Hits != 0 {
		t.Fatalf("Hits = %d, want 0", m.Hits)
	}
	if m.MissLatency.N() != 1 || m.MissLatency.Value() <= 0 {
		t.Fatalf("miss latency samples = %d mean = %v", m.MissLatency.N(), m.MissLatency.Value())
	}
	if u := m.ProcUtil(); u <= 0 || u >= 1 {
		t.Fatalf("ProcUtil = %v, want in (0,1)", u)
	}
}

func TestHitsDoNotStall(t *testing.T) {
	streams := [][]trace.Ref{{ld(0x2000_0000_0000), ld(0x2000_0000_0000), ld(0x2000_0000_0000)}}
	s := NewSystem(Config{Protocol: SnoopRing}, newScript(streams))
	m := s.Run()
	if m.Hits != 2 {
		t.Fatalf("Hits = %d, want 2", m.Hits)
	}
	if m.MissLatency.N() != 1 {
		t.Fatalf("miss samples = %d, want 1", m.MissLatency.N())
	}
}

func TestUpgradeCountedSeparately(t *testing.T) {
	streams := [][]trace.Ref{{ld(0x2000_0000_0000), st(0x2000_0000_0000)}}
	s := NewSystem(Config{Protocol: SnoopRing}, newScript(streams))
	m := s.Run()
	if m.Upgrades != 1 {
		t.Fatalf("Upgrades = %d, want 1", m.Upgrades)
	}
	if m.TxnCount[coherence.Invalidation] != 1 {
		t.Fatal("invalidation txn not counted")
	}
	if m.InvLatency.N() != 1 {
		t.Fatal("invalidation latency not sampled")
	}
	// The shared miss rate excludes the upgrade.
	if m.SharedMisses != 1 {
		t.Fatalf("SharedMisses = %d, want 1 (upgrade excluded)", m.SharedMisses)
	}
}

func TestAllFourProtocolsRunRealWorkload(t *testing.T) {
	prof := workload.MustProfile("MP3D", 8)
	for _, p := range []Protocol{SnoopRing, DirectoryRing, SCIRing, SnoopBus} {
		gen := workload.NewGenerator(workload.Config{Profile: prof, DataRefsPerCPU: 800, Seed: 42})
		s := NewSystem(Config{Protocol: p, Seed: 5}, gen)
		m := s.Run()
		if m.ExecTime <= 0 {
			t.Fatalf("%v: no execution time", p)
		}
		if m.DataRefs != 800*8 {
			t.Fatalf("%v: data refs = %d, want 6400", p, m.DataRefs)
		}
		if u := m.ProcUtil(); u <= 0 || u > 1 {
			t.Fatalf("%v: ProcUtil = %v out of (0,1]", p, u)
		}
		if m.NetworkUtil < 0 || m.NetworkUtil > 1 {
			t.Fatalf("%v: NetworkUtil = %v out of [0,1]", p, m.NetworkUtil)
		}
		if m.SharedMisses == 0 {
			t.Fatalf("%v: workload produced no shared misses", p)
		}
	}
}

func TestDirectoryClassBreakdownPopulated(t *testing.T) {
	prof := workload.MustProfile("MP3D", 16)
	gen := workload.NewGenerator(workload.Config{Profile: prof, DataRefsPerCPU: 1500, Seed: 11})
	m := NewSystem(Config{Protocol: DirectoryRing, Seed: 3}, gen).Run()
	total := m.ClassCount[coherence.OneCycleClean] +
		m.ClassCount[coherence.OneCycleDirty] + m.ClassCount[coherence.TwoCycle]
	if total == 0 {
		t.Fatal("no classified remote misses")
	}
	if m.ClassCount[coherence.OneCycleClean] == 0 {
		t.Fatal("no 1-cycle clean misses — home placement broken?")
	}
	// MP3D has substantial read-write sharing: some misses must need
	// the dirty-forward or multicast path.
	if m.ClassCount[coherence.OneCycleDirty]+m.ClassCount[coherence.TwoCycle] == 0 {
		t.Fatal("no dirty/2-cycle misses despite migratory sharing")
	}
}

func TestTraversalDistributionsPopulated(t *testing.T) {
	prof := workload.MustProfile("MP3D", 16)
	for _, p := range []Protocol{DirectoryRing, SCIRing} {
		gen := workload.NewGenerator(workload.Config{Profile: prof, DataRefsPerCPU: 1200, Seed: 13})
		m := NewSystem(Config{Protocol: p, Seed: 4}, gen).Run()
		if m.MissTraversals.N() == 0 {
			t.Fatalf("%v: no miss traversal samples", p)
		}
		if m.InvTraversals.N() == 0 {
			t.Fatalf("%v: no invalidation traversal samples", p)
		}
		if m.MissTraversals.Percent(1) <= 0 {
			t.Fatalf("%v: no 1-traversal misses", p)
		}
	}
}

func TestSnoopAlwaysSingleTraversal(t *testing.T) {
	prof := workload.MustProfile("MP3D", 8)
	gen := workload.NewGenerator(workload.Config{Profile: prof, DataRefsPerCPU: 1000, Seed: 17})
	m := NewSystem(Config{Protocol: SnoopRing, Seed: 2}, gen).Run()
	if m.MissTraversals.PercentAtLeast(2) != 0 {
		t.Fatal("snooping produced multi-traversal transactions")
	}
	if m.InvTraversals.PercentAtLeast(2) != 0 {
		t.Fatal("snooping invalidations took more than one traversal")
	}
}

func TestMeasuredSharedMissRateNearTargetAfterCalibration(t *testing.T) {
	prof := workload.MustProfile("MP3D", 16)
	wcfg := workload.Config{Profile: prof, DataRefsPerCPU: 2500, Seed: 21}
	sysCfg := Config{Protocol: DirectoryRing, Seed: 9}
	fitted, relErr := CalibrateWorkload(sysCfg, wcfg, 3)
	if relErr > 0.20 {
		t.Fatalf("calibration rel err = %v, want <= 0.20", relErr)
	}
	// Confirm with a fresh run.
	gen := workload.NewGenerator(fitted)
	m := NewSystem(sysCfg, gen).Run()
	if e := stats.RelErr(m.SharedMissRate(), prof.SharedMissRate); e > 0.30 {
		t.Fatalf("post-calibration shared miss rate %v vs target %v (rel err %v)",
			m.SharedMissRate(), prof.SharedMissRate, e)
	}
}

func TestDeterministicRuns(t *testing.T) {
	prof := workload.MustProfile("CHOLESKY", 8)
	run := func() *Metrics {
		gen := workload.NewGenerator(workload.Config{Profile: prof, DataRefsPerCPU: 600, Seed: 30})
		return NewSystem(Config{Protocol: SnoopRing, Seed: 8}, gen).Run()
	}
	a, b := run(), run()
	if a.ExecTime != b.ExecTime || a.SharedMisses != b.SharedMisses ||
		a.MissLatency.Value() != b.MissLatency.Value() {
		t.Fatal("identical configurations produced different results")
	}
}

func TestFasterProcessorsRaiseNetworkLoad(t *testing.T) {
	prof := workload.MustProfile("MP3D", 8)
	util := func(cyc sim.Time) float64 {
		gen := workload.NewGenerator(workload.Config{Profile: prof, DataRefsPerCPU: 1200, Seed: 33})
		m := NewSystem(Config{Protocol: SnoopRing, ProcCycle: cyc, Seed: 6}, gen).Run()
		return m.NetworkUtil
	}
	slow := util(20 * sim.Nanosecond)
	fast := util(2 * sim.Nanosecond)
	if fast <= slow {
		t.Fatalf("ring utilization should grow with processor speed: slow=%v fast=%v", slow, fast)
	}
}
