package core

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestNonBlockingStoreDoesNotStall(t *testing.T) {
	// One store miss followed by unrelated ifetch work: with the write
	// buffer the processor keeps going, so execution time is the pure
	// compute time plus only the final drain.
	mk := func(nb bool) *Metrics {
		streams := [][]trace.Ref{{
			st(0x2000_0000_0000),
			ifetch(), ifetch(), ifetch(), ifetch(),
		}}
		return NewSystem(Config{
			Protocol:          SnoopRing,
			ProcCycle:         10 * sim.Nanosecond,
			NonBlockingStores: nb,
		}, newScript(streams)).Run()
	}
	blocking := mk(false)
	weak := mk(true)
	if weak.ExecTime >= blocking.ExecTime {
		t.Fatalf("weak ordering exec %v >= blocking %v", weak.ExecTime, blocking.ExecTime)
	}
	if weak.BufferedStores != 1 {
		t.Fatalf("BufferedStores = %d, want 1", weak.BufferedStores)
	}
	if weak.StallTime != 0 {
		t.Fatalf("weak run stalled %v on a buffered store", weak.StallTime)
	}
	// The drain still waits for the store: exec covers its completion.
	if weak.ExecTime <= 5*10*sim.Nanosecond {
		t.Fatalf("exec %v did not include the store drain", weak.ExecTime)
	}
}

func TestWriteBufferCoalescesSameBlock(t *testing.T) {
	// Two stores to the same block while the first is in flight: one
	// transaction only.
	streams := [][]trace.Ref{{
		st(0x2000_0000_0000),
		st(0x2000_0000_0008), // same 16B block
		ifetch(),
	}}
	m := NewSystem(Config{
		Protocol:          SnoopRing,
		ProcCycle:         10 * sim.Nanosecond,
		NonBlockingStores: true,
	}, newScript(streams)).Run()
	if m.BufferedStores != 1 {
		t.Fatalf("BufferedStores = %d, want 1 (coalesced)", m.BufferedStores)
	}
	if got := m.TxnCount[coherence.WriteMissClean]; got != 1 {
		t.Fatalf("write-miss transactions = %d, want 1", got)
	}
}

func TestLoadMergesWithInFlightStoreMiss(t *testing.T) {
	// A load to a block being acquired by a buffered store miss must
	// merge (one transaction), stalling only until the fill.
	streams := [][]trace.Ref{{
		st(0x2000_0000_0000),
		ld(0x2000_0000_0000),
	}}
	m := NewSystem(Config{
		Protocol:          SnoopRing,
		ProcCycle:         10 * sim.Nanosecond,
		NonBlockingStores: true,
	}, newScript(streams)).Run()
	if m.BufferedStores != 1 {
		t.Fatalf("BufferedStores = %d, want 1", m.BufferedStores)
	}
	total := m.TxnCount[coherence.WriteMissClean] + m.TxnCount[coherence.ReadMissClean]
	if total != 1 {
		t.Fatalf("transactions = %d, want 1 (load merged)", total)
	}
	if m.Hits != 1 {
		t.Fatalf("Hits = %d, want 1 (the merged load)", m.Hits)
	}
	if m.StallTime == 0 {
		t.Fatal("merged load should stall until the fill")
	}
}

func TestLoadBypassesInFlightUpgrade(t *testing.T) {
	// Read then buffered upgrade then another read: the RS copy is
	// readable during the in-flight upgrade, so the second read hits
	// without stalling.
	streams := [][]trace.Ref{{
		ld(0x2000_0000_0000), // miss, fills RS
		st(0x2000_0000_0000), // buffered upgrade
		ld(0x2000_0000_0000), // bypasses: plain hit
	}}
	m := NewSystem(Config{
		Protocol:          SnoopRing,
		ProcCycle:         10 * sim.Nanosecond,
		NonBlockingStores: true,
	}, newScript(streams)).Run()
	if m.Upgrades != 1 || m.BufferedStores != 1 {
		t.Fatalf("upgrades/buffered = %d/%d, want 1/1", m.Upgrades, m.BufferedStores)
	}
	if m.Hits != 1 {
		t.Fatalf("Hits = %d, want 1 (bypassing load)", m.Hits)
	}
}

func TestWriteBufferDepthLimitsOutstanding(t *testing.T) {
	// With depth 1, a second store to a different block must fall back
	// to blocking.
	var refs []trace.Ref
	refs = append(refs, st(0x2000_0000_0000), st(0x2000_0001_0000))
	m := NewSystem(Config{
		Protocol:          SnoopRing,
		ProcCycle:         10 * sim.Nanosecond,
		NonBlockingStores: true,
		WriteBufferDepth:  1,
	}, newScript([][]trace.Ref{refs})).Run()
	if m.BufferedStores != 1 {
		t.Fatalf("BufferedStores = %d, want 1 (second store blocked)", m.BufferedStores)
	}
	if m.MissLatency.N() != 1 {
		t.Fatalf("blocking misses = %d, want 1", m.MissLatency.N())
	}
}

func TestHierRingThroughCoreDefaultsClusters(t *testing.T) {
	prof := workload.MustProfile("MP3D", 16)
	gen := workload.NewGenerator(workload.Config{Profile: prof, DataRefsPerCPU: 300, Seed: 9})
	m := NewSystem(Config{Protocol: HierRing}, gen).Run() // Clusters defaults to 4
	if m.SharedMisses == 0 || m.NetworkUtil <= 0 {
		t.Fatalf("hier defaults run broken: %+v", m.SharedMisses)
	}
}

func TestUnknownProtocolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown protocol did not panic")
		}
	}()
	NewSystem(Config{Protocol: Protocol(99)}, newScript([][]trace.Ref{{ifetch()}}))
}

func TestProtocolStringUnknown(t *testing.T) {
	if Protocol(99).String() != "Protocol(99)" {
		t.Fatalf("unknown protocol string = %q", Protocol(99).String())
	}
}

func TestWarmupExcludesColdStart(t *testing.T) {
	prof := workload.MustProfile("MP3D", 8)
	run := func(warm int) *Metrics {
		gen := workload.NewGenerator(workload.Config{Profile: prof, DataRefsPerCPU: 1200, Seed: 4})
		return NewSystem(Config{Protocol: SnoopRing, WarmupDataRefs: warm, Seed: 2}, gen).Run()
	}
	all := run(0)
	warm := run(600)
	// The warm window must count exactly the post-warmup data refs.
	if warm.DataRefs != 8*600 {
		t.Fatalf("warm DataRefs = %d, want 4800", warm.DataRefs)
	}
	// Cold-start misses inflate the unwarmed miss rate.
	if warm.TotalMissRate() >= all.TotalMissRate() {
		t.Fatalf("warmup did not reduce measured miss rate: %.4f vs %.4f",
			warm.TotalMissRate(), all.TotalMissRate())
	}
}
