package core

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/coherence"
	"repro/internal/obs"
	"repro/internal/workload"
)

// missTxns are the transaction classes counted as misses by the
// aggregates (everything on the access critical path except upgrades).
var missTxns = []coherence.Txn{
	coherence.ReadMissClean, coherence.ReadMissDirty,
	coherence.WriteMissClean, coherence.WriteMissDirty,
}

// TestTracingAgreesWithAggregates is the acceptance check for the obs
// layer: the per-class latency histograms observe every warm
// transaction (sampling gates only the span records), so their counts
// and means must agree with the run's Metrics exactly — not just
// within the 1% the acceptance criterion allows.
func TestTracingAgreesWithAggregates(t *testing.T) {
	prof := workload.MustProfile("MP3D", 8)
	for _, p := range []Protocol{SnoopRing, DirectoryRing} {
		gen := workload.NewGenerator(workload.Config{Profile: prof, DataRefsPerCPU: 1200, Seed: 7})
		s := NewSystem(Config{
			Protocol:       p,
			Seed:           5,
			WarmupDataRefs: 200,
			Trace:          obs.Config{SampleEvery: 64},
		}, gen)
		m := s.Run()
		tr := m.Trace
		if tr == nil {
			t.Fatalf("%v: tracing enabled but Metrics.Trace is nil", p)
		}

		// Span population == measured transaction population, per class.
		for txn := coherence.Txn(0); int(txn) < coherence.NumTxn; txn++ {
			if txn == coherence.WriteBack {
				continue // write-backs are off the critical path, not in TxnCount
			}
			if got, want := tr.ClassCount(txn), m.TxnCount[txn]; got != want {
				t.Errorf("%v: %v spans = %d, metrics count = %d", p, txn, got, want)
			}
		}
		if tr.ClassCount(coherence.WriteBack) != m.WriteBacks {
			t.Errorf("%v: write-back spans = %d, metrics = %d",
				p, tr.ClassCount(coherence.WriteBack), m.WriteBacks)
		}

		// Mean miss latency from the histograms == MissLatency mean.
		var n uint64
		var sum float64
		for _, txn := range missTxns {
			h := tr.ClassLatency(txn)
			n += h.N()
			sum += h.Sum()
		}
		if n != m.MissLatency.N() {
			t.Fatalf("%v: histogram miss samples = %d, aggregate = %d", p, n, m.MissLatency.N())
		}
		hmean := sum / float64(n)
		amean := m.MissLatency.Value()
		if rel := math.Abs(hmean-amean) / amean; rel > 1e-9 {
			t.Errorf("%v: histogram mean %.4f ns vs aggregate %.4f ns (rel %.2e)",
				p, hmean, amean, rel)
		}
		if h := tr.ClassLatency(coherence.Invalidation); h.N() != m.InvLatency.N() {
			t.Errorf("%v: invalidation samples = %d, aggregate = %d", p, h.N(), m.InvLatency.N())
		}

		if tr.SpansSampled() == 0 {
			t.Errorf("%v: no spans sampled at 1/64", p)
		}

		// The trace export must be well-formed JSON with events.
		var buf bytes.Buffer
		if err := tr.WriteTrace(&buf); err != nil {
			t.Fatalf("%v: WriteTrace: %v", p, err)
		}
		var doc map[string]any
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("%v: trace is not valid JSON: %v", p, err)
		}
		if evs, ok := doc["traceEvents"].([]any); !ok || len(evs) == 0 {
			t.Errorf("%v: trace has no events", p)
		}
	}
}

// TestTracingDisabledLeavesNoTracer checks the off switch: a zero
// Trace config must leave Metrics.Trace nil and install no ring
// observer.
func TestTracingDisabledLeavesNoTracer(t *testing.T) {
	prof := workload.MustProfile("MP3D", 8)
	gen := workload.NewGenerator(workload.Config{Profile: prof, DataRefsPerCPU: 300, Seed: 7})
	s := NewSystem(Config{Protocol: SnoopRing, Seed: 5}, gen)
	if s.ring.OnMessage != nil {
		t.Fatal("tracing disabled but ring observer installed")
	}
	if m := s.Run(); m.Trace != nil {
		t.Fatal("tracing disabled but Metrics.Trace set")
	}
}

// TestTracingColdWindowExcluded checks warmup gating: with tracing on,
// spans cover only warm-window transactions, so the totals match the
// (warmup-excluded) aggregates rather than the raw access stream.
func TestTracingColdWindowExcluded(t *testing.T) {
	prof := workload.MustProfile("MP3D", 8)
	gen := workload.NewGenerator(workload.Config{Profile: prof, DataRefsPerCPU: 600, Seed: 9})
	s := NewSystem(Config{
		Protocol:       SnoopRing,
		Seed:           5,
		WarmupDataRefs: 300,
		Trace:          obs.Config{SampleEvery: 1},
	}, gen)
	m := s.Run()
	var want uint64
	for txn := coherence.Txn(0); int(txn) < coherence.NumTxn; txn++ {
		if txn != coherence.WriteBack {
			want += m.TxnCount[txn]
		}
	}
	want += m.WriteBacks
	if got := m.Trace.SpansObserved(); got != want {
		t.Fatalf("spans observed = %d, warm transactions = %d", got, want)
	}
}
