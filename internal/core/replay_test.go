package core

import (
	"bytes"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// TestTraceReplayMatchesGenerator checks the full trace tool-chain:
// materializing a synthetic workload, serializing it through the binary
// trace format, and replaying it through a simulator must give exactly
// the same results as running the generator directly.
func TestTraceReplayMatchesGenerator(t *testing.T) {
	prof := workload.MustProfile("MP3D", 8)
	wcfg := workload.Config{Profile: prof, DataRefsPerCPU: 800, Seed: 99}
	sysCfg := Config{Protocol: SnoopRing, Seed: 31}

	// Run 1: straight from the generator.
	direct := NewSystem(sysCfg, workload.NewGenerator(wcfg)).Run()

	// Run 2: generator → trace → binary encode → decode → replay.
	tr := workload.Materialize("MP3D", workload.NewGenerator(wcfg))
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed := NewSystem(sysCfg, workload.NewTraceSource(decoded)).Run()

	if direct.ExecTime != replayed.ExecTime {
		t.Errorf("ExecTime: direct %v vs replay %v", direct.ExecTime, replayed.ExecTime)
	}
	if direct.SharedMisses != replayed.SharedMisses ||
		direct.PrivateMisses != replayed.PrivateMisses ||
		direct.Upgrades != replayed.Upgrades {
		t.Errorf("transaction counts differ: direct %d/%d/%d vs replay %d/%d/%d",
			direct.SharedMisses, direct.PrivateMisses, direct.Upgrades,
			replayed.SharedMisses, replayed.PrivateMisses, replayed.Upgrades)
	}
	if direct.MissLatency.Value() != replayed.MissLatency.Value() {
		t.Errorf("miss latency: direct %v vs replay %v",
			direct.MissLatency.Value(), replayed.MissLatency.Value())
	}
}

// TestCrossProtocolWorkTotalsAgree runs the same workload under every
// protocol and checks the protocol-independent totals agree: every
// engine sees the same reference stream, so instruction and data
// counts must match exactly, and cache-driven quantities (hit counts)
// must be deterministic per protocol.
func TestCrossProtocolWorkTotalsAgree(t *testing.T) {
	prof := workload.MustProfile("CHOLESKY", 8)
	var refData, refInstr uint64
	for i, proto := range []Protocol{SnoopRing, DirectoryRing, SCIRing, SnoopBus, HierRing} {
		wcfg := workload.Config{Profile: prof, DataRefsPerCPU: 600, Seed: 5}
		cfg := Config{Protocol: proto, Seed: 7, Clusters: 2}
		m := NewSystem(cfg, workload.NewGenerator(wcfg)).Run()
		if i == 0 {
			refData, refInstr = m.DataRefs, m.InstrRefs
			continue
		}
		if m.DataRefs != refData || m.InstrRefs != refInstr {
			t.Errorf("%v: refs %d/%d differ from reference %d/%d",
				proto, m.DataRefs, m.InstrRefs, refData, refInstr)
		}
	}
}

// TestProtocolFuzzNoDeadlock drives every engine with adversarial
// small-pool traffic (maximal contention) and requires completion: the
// system panics on deadlock, so finishing is the assertion.
func TestProtocolFuzzNoDeadlock(t *testing.T) {
	for _, proto := range []Protocol{SnoopRing, DirectoryRing, SCIRing, SnoopBus, HierRing} {
		for seed := uint64(1); seed <= 3; seed++ {
			src := newContentionSource(8, 400, seed)
			m := NewSystem(Config{Protocol: proto, Seed: seed, Clusters: 2}, src).Run()
			if m.ExecTime <= 0 {
				t.Fatalf("%v seed %d: no progress", proto, seed)
			}
		}
	}
}

// contentionSource hammers a handful of blocks from every CPU with a
// high write fraction — the worst case for protocol races.
type contentionSource struct {
	cpus   int
	per    int
	issued []int
	rng    []*randState
}

type randState struct{ s uint64 }

func (r *randState) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 16
}

func newContentionSource(cpus, perCPU int, seed uint64) *contentionSource {
	cs := &contentionSource{cpus: cpus, per: perCPU, issued: make([]int, cpus)}
	for i := 0; i < cpus; i++ {
		cs.rng = append(cs.rng, &randState{s: seed*1000003 + uint64(i)})
	}
	return cs
}

func (cs *contentionSource) NumCPUs() int { return cs.cpus }

func (cs *contentionSource) Next(cpu int) (trace.Ref, bool) {
	if cs.issued[cpu] >= cs.per {
		return trace.Ref{}, false
	}
	cs.issued[cpu]++
	v := cs.rng[cpu].next()
	blocks := [4]uint64{0x2000_0000_0000, 0x2000_0000_0010, 0x3000_0000_0000, 0x3000_0000_1000}
	ref := trace.Ref{
		CPU:    int32(cpu),
		Shared: true,
		Addr:   blocks[v%4],
	}
	if v%16 < 7 {
		ref.Op = 1 // store
	}
	return ref, true
}
