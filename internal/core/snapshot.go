package core

import (
	"repro/internal/coherence"
	"repro/internal/sim"
	"repro/internal/stats"
)

// MeanSnapshot is the serializable state of a stats.Mean.
type MeanSnapshot struct {
	N   uint64  `json:"n"`
	Sum float64 `json:"sum"`
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

func snapMean(m *stats.Mean) MeanSnapshot {
	n, sum, min, max := m.Moments()
	return MeanSnapshot{N: n, Sum: sum, Min: min, Max: max}
}

func (s MeanSnapshot) mean() stats.Mean {
	return stats.MeanFromMoments(s.N, s.Sum, s.Min, s.Max)
}

// MetricsSnapshot is a flat, JSON-serializable image of Metrics. It
// carries every field the experiment drivers and analytical models
// read, so a snapshot round-trip (Snapshot then Metrics) is lossless:
// the sweep engine's on-disk result cache depends on that to return
// bit-identical results whether a job was computed or replayed.
type MetricsSnapshot struct {
	ExecTimePS  int64 `json:"exec_time_ps"`
	BusyTimePS  int64 `json:"busy_time_ps"`
	StallTimePS int64 `json:"stall_time_ps"`

	InstrRefs  uint64 `json:"instr_refs"`
	DataRefs   uint64 `json:"data_refs"`
	SharedRefs uint64 `json:"shared_refs"`
	Hits       uint64 `json:"hits"`

	SharedMisses      uint64 `json:"shared_misses"`
	PrivateMisses     uint64 `json:"private_misses"`
	Upgrades          uint64 `json:"upgrades"`
	LocalMisses       uint64 `json:"local_misses"`
	LocalInvs         uint64 `json:"local_invs"`
	WriteBacks        uint64 `json:"write_backs"`
	TwoCycleMulticast uint64 `json:"two_cycle_multicast"`

	TxnCount []uint64 `json:"txn_count"`

	MissLatency     MeanSnapshot `json:"miss_latency"`
	InvLatency      MeanSnapshot `json:"inv_latency"`
	BufferedLatency MeanSnapshot `json:"buffered_latency"`
	BufferedStores  uint64       `json:"buffered_stores"`

	ClassCount     map[int]uint64 `json:"class_count,omitempty"`
	MissTraversals map[int]uint64 `json:"miss_traversals,omitempty"`
	InvTraversals  map[int]uint64 `json:"inv_traversals,omitempty"`

	NetworkUtil float64 `json:"network_util"`
}

// Snapshot captures the metrics in serializable form.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		ExecTimePS:        int64(m.ExecTime),
		BusyTimePS:        int64(m.BusyTime),
		StallTimePS:       int64(m.StallTime),
		InstrRefs:         m.InstrRefs,
		DataRefs:          m.DataRefs,
		SharedRefs:        m.SharedRefs,
		Hits:              m.Hits,
		SharedMisses:      m.SharedMisses,
		PrivateMisses:     m.PrivateMisses,
		Upgrades:          m.Upgrades,
		LocalMisses:       m.LocalMisses,
		LocalInvs:         m.LocalInvs,
		WriteBacks:        m.WriteBacks,
		TwoCycleMulticast: m.TwoCycleMulticast,
		TxnCount:          append([]uint64(nil), m.TxnCount[:]...),
		MissLatency:       snapMean(&m.MissLatency),
		InvLatency:        snapMean(&m.InvLatency),
		BufferedLatency:   snapMean(&m.BufferedLatency),
		BufferedStores:    m.BufferedStores,
		NetworkUtil:       m.NetworkUtil,
	}
	if len(m.ClassCount) > 0 {
		s.ClassCount = make(map[int]uint64, len(m.ClassCount))
		for c, n := range m.ClassCount {
			s.ClassCount[int(c)] = n
		}
	}
	if m.MissTraversals != nil {
		s.MissTraversals = m.MissTraversals.Counts()
	}
	if m.InvTraversals != nil {
		s.InvTraversals = m.InvTraversals.Counts()
	}
	return s
}

// Metrics rebuilds the live metrics value the snapshot was taken from.
func (s MetricsSnapshot) Metrics() *Metrics {
	m := &Metrics{
		ExecTime:          sim.Time(s.ExecTimePS),
		BusyTime:          sim.Time(s.BusyTimePS),
		StallTime:         sim.Time(s.StallTimePS),
		InstrRefs:         s.InstrRefs,
		DataRefs:          s.DataRefs,
		SharedRefs:        s.SharedRefs,
		Hits:              s.Hits,
		SharedMisses:      s.SharedMisses,
		PrivateMisses:     s.PrivateMisses,
		Upgrades:          s.Upgrades,
		LocalMisses:       s.LocalMisses,
		LocalInvs:         s.LocalInvs,
		WriteBacks:        s.WriteBacks,
		TwoCycleMulticast: s.TwoCycleMulticast,
		MissLatency:       s.MissLatency.mean(),
		InvLatency:        s.InvLatency.mean(),
		BufferedLatency:   s.BufferedLatency.mean(),
		BufferedStores:    s.BufferedStores,
		NetworkUtil:       s.NetworkUtil,
		ClassCount:        make(map[coherence.MissClass]uint64),
		MissTraversals:    stats.NewDistribution(),
		InvTraversals:     stats.NewDistribution(),
	}
	copy(m.TxnCount[:], s.TxnCount)
	for c, n := range s.ClassCount {
		m.ClassCount[coherence.MissClass(c)] = n
	}
	for o, n := range s.MissTraversals {
		m.MissTraversals.AddCount(o, n)
	}
	for o, n := range s.InvTraversals {
		m.InvTraversals.AddCount(o, n)
	}
	return m
}
