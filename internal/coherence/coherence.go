// Package coherence defines the vocabulary shared by all four protocol
// engines: cache block states, the taxonomy of coherence transactions,
// message kinds and sizes, and the latency-sample classification used
// for the paper's Figure 5 miss breakdown and Table 1 traversal counts.
package coherence

import "fmt"

// State is a cache block state. The paper's protocols all use the same
// three states (Section 3.1).
type State uint8

const (
	// Invalid: the block is not present in the cache.
	Invalid State = iota
	// ReadShared: present read-only; any number of caches may hold it.
	ReadShared
	// WriteExclusive: present read-write in exactly one cache; that
	// cache is the owner and the memory copy is stale.
	WriteExclusive
)

// String returns the paper's abbreviation for the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "INV"
	case ReadShared:
		return "RS"
	case WriteExclusive:
		return "WE"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Op is a processor memory operation kind.
type Op uint8

const (
	// Load is a data read.
	Load Op = iota
	// Store is a data write.
	Store
	// Ifetch is an instruction fetch (assumed to always hit, per the
	// paper's Section 4.1 assumption).
	Ifetch
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case Load:
		return "load"
	case Store:
		return "store"
	case Ifetch:
		return "ifetch"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Txn classifies a coherence transaction, mirroring the event types the
// paper's models consume.
type Txn uint8

const (
	// ReadMissClean: read miss satisfied by the home memory (dirty bit
	// clear).
	ReadMissClean Txn = iota
	// ReadMissDirty: read miss satisfied by a remote dirty owner.
	ReadMissDirty
	// WriteMissClean: write miss on a block with no dirty owner (may
	// still invalidate read-shared copies).
	WriteMissClean
	// WriteMissDirty: write miss on a block held write-exclusive
	// elsewhere.
	WriteMissDirty
	// Invalidation: an upgrade — the requester holds an RS copy and
	// only needs write permission (footnote 1 of the paper).
	Invalidation
	// WriteBack: replacement of a WE block, returning data to home.
	WriteBack
	numTxn
)

// NumTxn is the number of transaction classes.
const NumTxn = int(numTxn)

// String names the transaction class.
func (t Txn) String() string {
	switch t {
	case ReadMissClean:
		return "read-miss-clean"
	case ReadMissDirty:
		return "read-miss-dirty"
	case WriteMissClean:
		return "write-miss-clean"
	case WriteMissDirty:
		return "write-miss-dirty"
	case Invalidation:
		return "invalidation"
	case WriteBack:
		return "write-back"
	default:
		return fmt.Sprintf("Txn(%d)", uint8(t))
	}
}

// IsMiss reports whether the transaction stalls the processor (the
// paper's processors block on all misses and invalidations; write-backs
// are off the critical path).
func (t Txn) IsMiss() bool { return t != WriteBack }

// MissClass classifies a completed directory-protocol miss for the
// Figure 5 breakdown.
type MissClass uint8

const (
	// LocalOrHit: not a remote miss (local home supplied the data, or
	// the access hit). Excluded from the Figure 5 population.
	LocalOrHit MissClass = iota
	// OneCycleClean: remote miss on a clean block — one ring traversal.
	OneCycleClean
	// OneCycleDirty: remote miss on a dirty block whose owner sits on
	// the requester→home→owner→requester path, so a single traversal
	// (three hops) commits it.
	OneCycleDirty
	// TwoCycle: remaining remote misses, needing two ring traversals.
	TwoCycle
)

// String names the miss class with the paper's terminology.
func (c MissClass) String() string {
	switch c {
	case LocalOrHit:
		return "local"
	case OneCycleClean:
		return "1-cycle-clean"
	case OneCycleDirty:
		return "1-cycle-dirty"
	case TwoCycle:
		return "2-cycle"
	default:
		return fmt.Sprintf("MissClass(%d)", uint8(c))
	}
}

// MsgKind distinguishes the two ring message classes of Section 2: short
// probes and header+data block messages.
type MsgKind uint8

const (
	// Probe is a short request/control message (miss or invalidation
	// request, forward, ack).
	Probe MsgKind = iota
	// Block is a header plus one cache block of data.
	Block
)

// String names the message kind.
func (m MsgKind) String() string {
	if m == Probe {
		return "probe"
	}
	return "block"
}

// ProbePayloadBits is the size of a probe message: a block address plus
// control/routing information. The paper's frame geometry (10 stages on
// a 32-bit ring with 16-byte blocks, Table 3) pins this at 64 bits.
const ProbePayloadBits = 64

// Result describes how one data reference was satisfied. Protocol
// engines hand it to the completion callback; the core system and the
// experiment drivers aggregate it into the paper's statistics.
type Result struct {
	// Hit reports a cache hit (no protocol transaction at all).
	Hit bool
	// Txn is the transaction class for non-hits.
	Txn Txn
	// Local reports that the transaction was satisfied without using
	// the interconnect (clean block homed at the requesting node).
	Local bool
	// Class is the directory-protocol latency class (Figure 5); it is
	// LocalOrHit for hits, local misses and snooping-protocol events.
	Class MissClass
	// Traversals is the number of ring traversals the transaction
	// needed (Table 1); zero for hits and local misses.
	Traversals int
}
