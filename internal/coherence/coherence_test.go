package coherence

import "testing"

func TestStateStrings(t *testing.T) {
	cases := map[State]string{
		Invalid:        "INV",
		ReadShared:     "RS",
		WriteExclusive: "WE",
		State(9):       "State(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestOpStrings(t *testing.T) {
	cases := map[Op]string{
		Load: "load", Store: "store", Ifetch: "ifetch", Op(7): "Op(7)",
	}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("Op %d String() = %q, want %q", o, got, want)
		}
	}
}

func TestTxnStringsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < NumTxn; i++ {
		s := Txn(i).String()
		if seen[s] {
			t.Fatalf("duplicate Txn name %q", s)
		}
		seen[s] = true
	}
	if Txn(200).String() != "Txn(200)" {
		t.Errorf("unknown Txn string = %q", Txn(200).String())
	}
}

func TestTxnIsMiss(t *testing.T) {
	for i := 0; i < NumTxn; i++ {
		tx := Txn(i)
		want := tx != WriteBack
		if tx.IsMiss() != want {
			t.Errorf("%v.IsMiss() = %v, want %v", tx, tx.IsMiss(), want)
		}
	}
}

func TestMissClassStrings(t *testing.T) {
	cases := map[MissClass]string{
		LocalOrHit:    "local",
		OneCycleClean: "1-cycle-clean",
		OneCycleDirty: "1-cycle-dirty",
		TwoCycle:      "2-cycle",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("MissClass %d = %q, want %q", c, got, want)
		}
	}
}

func TestMsgKindStrings(t *testing.T) {
	if Probe.String() != "probe" || Block.String() != "block" {
		t.Errorf("MsgKind strings = %q/%q", Probe.String(), Block.String())
	}
}
