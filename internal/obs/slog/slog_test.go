package slog

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestLogLineGoldenSchema pins the wire schema of one structured log
// line: JSON object, one per line, with the standard joinable keys
// spelled exactly as the contract says.
func TestLogLineGoldenSchema(t *testing.T) {
	var buf bytes.Buffer
	lg := New(&buf, LevelFor(t, "info"), "serve")
	lg.Info("request",
		KeyRequest, "0123456789abcdef",
		KeyTenant, "inter",
		KeyJobHash, strings.Repeat("ab", 32),
		KeyWorker, "w1",
		"endpoint", "jobs",
		"status", 200,
		"dur_ms", 12.75,
	)

	line := buf.String()
	if n := strings.Count(line, "\n"); n != 1 || !strings.HasSuffix(line, "\n") {
		t.Fatalf("want exactly one newline-terminated line, got %q", line)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(line), &doc); err != nil {
		t.Fatalf("line is not JSON: %v\n%s", err, line)
	}
	want := map[string]any{
		"level":      "INFO",
		"msg":        "request",
		"service":    "serve",
		"request_id": "0123456789abcdef",
		"tenant":     "inter",
		"job_hash":   strings.Repeat("ab", 32),
		"worker":     "w1",
		"endpoint":   "jobs",
		"status":     float64(200),
		"dur_ms":     12.75,
	}
	for k, v := range want {
		if doc[k] != v {
			t.Errorf("line[%q] = %v (%T), want %v", k, doc[k], doc[k], v)
		}
	}
	if _, ok := doc["time"]; !ok {
		t.Error("line has no time field")
	}
}

// LevelFor parses a level or fails the test.
func LevelFor(t *testing.T, s string) Level {
	t.Helper()
	lv, err := ParseLevel(s)
	if err != nil {
		t.Fatal(err)
	}
	return lv
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": -4, "info": 0, "": 0, "WARN": 4, "warning": 4, "Error": 8,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel(verbose) did not fail")
	}
}

func TestLevelGating(t *testing.T) {
	var buf bytes.Buffer
	lg := New(&buf, LevelFor(t, "warn"), "serve")
	lg.Info("quiet")
	if buf.Len() != 0 {
		t.Fatalf("info line emitted at warn level: %s", buf.String())
	}
	lg.Warn("loud")
	if buf.Len() == 0 {
		t.Fatal("warn line suppressed at warn level")
	}
}

func TestNop(t *testing.T) {
	lg := Nop()
	// Must not panic, must not write anywhere.
	lg.Error("dropped", KeyRequest, "x")
	lg.With("k", "v").Info("dropped too")
}
