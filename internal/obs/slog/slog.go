// Package slog is the serving plane's structured-logging contract: a
// thin wrapper over the standard library's log/slog that fixes the
// output format (one JSON object per line on stderr), the level
// vocabulary the daemons' -loglevel flags accept, and the attribute
// keys every component uses for the fields that make a line joinable
// against traces and metrics — request ID, tenant, job hash, worker
// ID. Consumers import it as, e.g., olog "repro/internal/obs/slog"
// and deal only in the re-exported *Logger type.
//
// The contract matters more than the wrapper: a line like
//
//	{"time":"...","level":"INFO","msg":"request","service":"serve",
//	 "request_id":"ab12...","tenant":"inter","endpoint":"jobs",
//	 "status":200,"dur_ms":12.7}
//
// joins against GET /v1/requests/{id}/trace on request_id and against
// ringsim_tenant_* metrics on tenant, which is the whole point of
// structured logging here.
package slog

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Logger is the stdlib logger type; re-exported so consumers need only
// this package.
type Logger = slog.Logger

// Level is the stdlib level type, re-exported for flag plumbing.
type Level = slog.Level

// Standard attribute keys. Every log line that knows one of these
// facts spells it exactly this way, or joins against traces and
// metrics break.
const (
	KeyService = "service"    // which component: serve, coordinator, worker:w1, ringload, ringsim
	KeyRequest = "request_id" // the request/trace ID (reqtrace)
	KeyTenant  = "tenant"     // tenant ID, never an API key
	KeyJobHash = "job_hash"   // sweep.Job content hash
	KeyWorker  = "worker"     // cluster worker ID
	KeyError   = "error"
)

// ParseLevel maps the -loglevel flag vocabulary to a slog level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// New returns a JSON-lines logger writing to w at the given level,
// with the service identity attached to every line.
func New(w io.Writer, level Level, service string) *Logger {
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(h).With(KeyService, service)
}

// Nop returns a logger that discards everything without formatting
// it, so components can hold a non-nil *Logger unconditionally.
func Nop() *Logger {
	return slog.New(nopHandler{})
}

// nopHandler is a zero-cost disabled handler. (slog.DiscardHandler
// exists only from Go 1.24; the repo's floor is 1.22.)
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }
