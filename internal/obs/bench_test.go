package obs

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/sim"
)

// Span recording must not allocate in the steady state: records live in
// the per-processor ring buffers and the histograms are allocated at
// construction. Guarded as tests so the CI bench-smoke step fails on
// any regression, mirroring the ring/sim guards.

func TestSpanRecordZeroAlloc(t *testing.T) {
	tr := New(Config{SampleEvery: 1, BufferCap: 64}, 1)
	tr.SetWarm(0)
	now := sim.Time(0)
	span := func() {
		sp := tr.Begin(0, now)
		sp.Mark(PhaseProbeGrab, now+10)
		sp.Mark(PhaseAck, now+500)
		sp.Mark(PhaseData, now+700)
		sp.End(now+1000, coherence.ReadMissDirty)
		now += 2000
	}
	// Warm until the buffer has wrapped, so append growth is behind us.
	for i := 0; i < 256; i++ {
		span()
	}
	if allocs := testing.AllocsPerRun(300, span); allocs != 0 {
		t.Fatalf("sampled span recording allocates %.1f objects/op, want 0", allocs)
	}
}

func TestSpanUnsampledZeroAlloc(t *testing.T) {
	tr := New(Config{SampleEvery: 1 << 30, BufferCap: 64}, 1)
	tr.SetWarm(0)
	now := sim.Time(0)
	span := func() {
		sp := tr.Begin(0, now)
		sp.Mark(PhaseProbeGrab, now+10)
		sp.End(now+1000, coherence.WriteMissClean)
		now += 2000
	}
	span() // the first span is always sampled; claim it up front
	if allocs := testing.AllocsPerRun(300, span); allocs != 0 {
		t.Fatalf("unsampled span allocates %.1f objects/op, want 0", allocs)
	}
}

func TestSpanDisabledZeroAlloc(t *testing.T) {
	var tr *Tracer // tracing off: every call is one nil-check branch
	allocs := testing.AllocsPerRun(300, func() {
		sp := tr.Begin(0, 0)
		sp.Mark(PhaseAck, 10)
		sp.End(20, coherence.ReadMissClean)
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f objects/op, want 0", allocs)
	}
}

func TestTrackMessageZeroAlloc(t *testing.T) {
	tr := New(Config{SampleEvery: 1, TrackCap: 1024}, 1)
	track := tr.NewTrack("ring block", 1)
	// Fill to capacity so the edge slice's backing array is grown, then
	// reset: the steady state appends into retained capacity.
	for i := 0; i < 1024; i++ {
		track.Message(sim.Time(i), sim.Time(i+1))
	}
	tr.ResetNet(0)
	now := sim.Time(0)
	if allocs := testing.AllocsPerRun(300, func() {
		track.Message(now, now+5)
		now += 10
	}); allocs != 0 {
		t.Fatalf("track message allocates %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkSpanRecord(b *testing.B) {
	tr := New(Config{SampleEvery: 1, BufferCap: 4096}, 1)
	tr.SetWarm(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now := sim.Time(i) * 2000
		sp := tr.Begin(0, now)
		sp.Mark(PhaseProbeGrab, now+10)
		sp.Mark(PhaseAck, now+500)
		sp.Mark(PhaseData, now+700)
		sp.End(now+1000, coherence.ReadMissClean)
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now := sim.Time(i) * 2000
		sp := tr.Begin(0, now)
		sp.Mark(PhaseProbeGrab, now+10)
		sp.End(now+1000, coherence.ReadMissClean)
	}
}
