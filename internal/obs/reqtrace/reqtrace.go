// Package reqtrace is request-scoped distributed tracing for the
// serving plane: every request entering internal/serve gets a request
// ID and a span tree that follows it through auth, admission queueing,
// engine execution, the coordinator dispatch hop, worker-side
// execution, and result adoption.
//
// The design mirrors internal/obs's simulator tracer discipline: a nil
// *Tracer is fully inert (every method is nil-receiver safe and costs
// one branch), spans never allocate on the request path beyond their
// own record, and completed traces live in a bounded in-process store
// with FIFO eviction — this is a debugging ring buffer, not a durable
// trace backend.
//
// Identity and propagation:
//
//   - The trace ID is the request ID. It is minted by the first serve
//     instance that sees the request (or accepted from a well-formed
//     client-supplied X-Ringsim-Request header) and echoed on every
//     response.
//   - Across process hops the active span context travels as
//     "traceID:spanID" in the X-Ringsim-Trace header, next to the
//     existing X-Ringsim-Tenant provenance header.
//   - Spans created on the far side of a hop come back as a JSON
//     array in the X-Ringsim-Trace-Spans response header and are
//     injected into the caller's store, so one GET
//     /v1/requests/{id}/trace returns the whole connected tree.
//     Headers, not bodies, carry trace data: result artifacts stay
//     byte-identical with tracing on or off.
package reqtrace

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Propagation headers. Defined here so internal/serve and
// internal/cluster share one contract.
const (
	// HeaderRequest carries the request ID on every public API
	// response (and may be supplied by the client to name its own
	// request, e.g. for cross-system correlation).
	HeaderRequest = "X-Ringsim-Request"
	// HeaderTrace carries the active span context ("traceID:spanID")
	// on internal cluster hops.
	HeaderTrace = "X-Ringsim-Trace"
	// HeaderSpans returns the spans recorded on the far side of a hop
	// to the caller, as a JSON-encoded []SpanData.
	HeaderSpans = "X-Ringsim-Trace-Spans"
)

// SpanContext names a position in a trace: the trace (== request) ID
// and the active span within it. The zero value is invalid.
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether the context names a trace.
func (c SpanContext) Valid() bool { return ValidID(c.TraceID) }

// String renders the wire form "traceID:spanID" (or just the trace ID
// when no span is active). Invalid contexts render empty.
func (c SpanContext) String() string {
	if !c.Valid() {
		return ""
	}
	if c.SpanID == "" {
		return c.TraceID
	}
	return c.TraceID + ":" + c.SpanID
}

// ParseContext parses the wire form produced by SpanContext.String.
// It returns false for anything malformed.
func ParseContext(s string) (SpanContext, bool) {
	if s == "" {
		return SpanContext{}, false
	}
	tid, sid, _ := strings.Cut(s, ":")
	c := SpanContext{TraceID: tid, SpanID: sid}
	if !c.Valid() || len(sid) > 64 {
		return SpanContext{}, false
	}
	return c, true
}

// ValidID reports whether s is an acceptable trace/request ID: 8–64
// characters of lowercase hex or '-'. Generated IDs are 16 hex chars;
// the wider grammar admits client-supplied correlation IDs while
// keeping IDs safe to embed in headers, URLs and log lines unquoted.
func ValidID(s string) bool {
	if len(s) < 8 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && c != '-' {
			return false
		}
	}
	return true
}

// SpanData is the serialized form of one completed span — the unit
// stored, returned over HeaderSpans, and exported.
type SpanData struct {
	ID      string            `json:"id"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	Service string            `json:"service"`
	StartUS int64             `json:"start_us"` // µs since the Unix epoch
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Tracer records request spans into a bounded per-process store.
// A nil Tracer is valid and inert: spans are not recorded, Start
// returns a nil Span whose methods no-op, and Get finds nothing.
type Tracer struct {
	service string
	proc    string // per-process span-ID prefix, avoids cross-hop collisions
	cap     int
	nextID  atomic.Uint64 // span-ID counter, off the store lock: Start must not contend with End

	mu      sync.Mutex
	traces  map[string]*traceEntry
	order   []string // trace insertion order, for FIFO eviction
	spans   uint64
	dropped uint64
}

// traceEntry retains a trace as the batches that arrived for it — the
// store keeps each batch slice by reference, so committing a request
// costs one append here and zero record copies. Retention of the
// request's span machinery is bounded by the store's trace capacity.
type traceEntry struct {
	batches [][]spanRec
	nspans  int
}

// spanRec is the stored form of a completed span, built to cost
// nothing beyond value copies on the request path: attributes stay as
// the span's frozen key/value slice (no map until a trace is read),
// and batched child spans carry integer sequence numbers instead of
// ID strings — their "rootID.seq" form is rendered only by
// materialize.
type spanRec struct {
	data      SpanData
	root      string // owning root's ID, for seq-based rendering (shared string, not a copy)
	seq       int    // >0: a batched child; ID renders as root+"."+seq when data.ID is unset
	parentSeq int    // >0: parent is the sibling with that seq; 0 with seq>0: parent is the root
	attrs     []attrKV
}

func (r spanRec) materialize() SpanData {
	d := r.data
	if r.seq > 0 {
		if d.ID == "" {
			d.ID = r.root + "." + strconv.Itoa(r.seq)
		}
		if d.Parent == "" {
			if r.parentSeq > 0 {
				d.Parent = r.root + "." + strconv.Itoa(r.parentSeq)
			} else {
				d.Parent = r.root
			}
		}
	}
	if d.Attrs == nil && len(r.attrs) > 0 {
		m := make(map[string]string, len(r.attrs))
		for _, a := range r.attrs {
			m[a.k] = a.v
		}
		d.Attrs = m
	}
	return d
}

// DefaultCapacity is the trace-store bound daemons use unless
// configured otherwise: enough recent requests to debug an incident,
// small enough to never matter for memory.
const DefaultCapacity = 1024

// NewTracer returns a tracer whose spans carry the given service name
// ("serve", "coordinator", "worker:w1", ...) and whose store retains at
// most capacity traces, evicting oldest-first. capacity <= 0 returns a
// nil (inert) tracer.
func NewTracer(service string, capacity int) *Tracer {
	if capacity <= 0 {
		return nil
	}
	return &Tracer{
		service: service,
		proc:    randomID(4),
		cap:     capacity,
		traces:  make(map[string]*traceEntry),
	}
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Service returns the tracer's service name, or "" when inert.
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// NewTraceID mints a fresh request/trace ID. Works on a nil tracer so
// request IDs exist even when span recording is off.
func (t *Tracer) NewTraceID() string { return randomID(16) }

func randomID(hexChars int) string {
	b := make([]byte, (hexChars+1)/2)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand never fails on the supported platforms; a
		// deterministic fallback would silently break ID uniqueness.
		panic(fmt.Sprintf("reqtrace: rand: %v", err))
	}
	return hex.EncodeToString(b)[:hexChars]
}

// StartRoot opens the root span of trace traceID. On a nil tracer it
// returns nil, which is safe to use. A root span owns its request's
// record batch: children opened with StartChild buffer their completed
// records on it, and the root's End commits the whole request to the
// store in one insertion.
func (t *Tracer) StartRoot(traceID, name string) *Span {
	sp := t.start(SpanContext{TraceID: traceID}, name)
	if sp != nil {
		sp.owner = sp
		sp.batch = &rootBatch{}
		sp.batch.recs = sp.batch.recsBuf[:0]
	}
	return sp
}

// StartChild opens a child of an in-process span. This is the serving
// hot path: the child is identified by a root-scoped sequence number
// (its "rootID.seq" string renders only if the trace is read or
// propagated) and its completed record is buffered on the request's
// root rather than individually inserted into the store. A nil parent
// (or tracer) yields a nil, inert span.
func (t *Tracer) StartChild(parent *Span, name string) *Span {
	if t == nil || parent == nil {
		return nil
	}
	root := parent.owner
	if root == nil {
		root = parent
	}
	root.mu.Lock()
	root.batch.seq++
	n := root.batch.seq
	root.mu.Unlock()
	sp := &Span{
		t:     t,
		trace: parent.trace,
		owner: root,
		seq:   n,
		pseq:  parent.seq,
		start: time.Now(),
		data: SpanData{
			Name:    name,
			Service: t.service,
		},
	}
	sp.attrs = sp.attrsBuf[:0]
	return sp
}

// Start opens a child span under parent. An invalid parent context
// (e.g. a missing or malformed propagation header) yields a nil span.
func (t *Tracer) Start(parent SpanContext, name string) *Span {
	if !parent.Valid() {
		return nil
	}
	return t.start(parent, name)
}

func (t *Tracer) start(parent SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	// Mint the span ID without fmt or the store lock: this runs several
	// times per request on the serving hot path.
	buf := make([]byte, 0, len(t.proc)+1+16)
	buf = append(buf, t.proc...)
	buf = append(buf, '-')
	buf = strconv.AppendUint(buf, t.nextID.Add(1), 16)
	sp := &Span{
		t:     t,
		trace: parent.TraceID,
		start: time.Now(),
		data: SpanData{
			ID:      string(buf),
			Parent:  parent.SpanID,
			Name:    name,
			Service: t.service,
		},
	}
	sp.attrs = sp.attrsBuf[:0]
	return sp
}

// Inject records spans completed elsewhere (decoded from a
// HeaderSpans response header) into trace traceID.
func (t *Tracer) Inject(traceID string, spans []SpanData) {
	if t == nil || !ValidID(traceID) || len(spans) == 0 {
		return
	}
	recs := make([]spanRec, len(spans))
	for i, d := range spans {
		recs[i] = spanRec{data: d}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(traceID, recs)
}

// record appends a batch of spans to a trace, creating and evicting as
// needed. The batch slice is retained by reference — callers hand over
// ownership and must not append to it afterwards. Caller holds t.mu.
func (t *Tracer) record(traceID string, batch []spanRec) {
	e := t.traces[traceID]
	if e == nil {
		e = &traceEntry{}
		t.traces[traceID] = e
		t.order = append(t.order, traceID)
		for len(t.order) > t.cap {
			victim := t.order[0]
			t.order = t.order[1:]
			if v := t.traces[victim]; v != nil {
				t.dropped += uint64(v.nspans)
			}
			delete(t.traces, victim)
		}
	}
	e.batches = append(e.batches, batch)
	e.nspans += len(batch)
	t.spans += uint64(len(batch))
}

// TraceDoc is the JSON document served for one request's trace.
type TraceDoc struct {
	RequestID string     `json:"request_id"`
	Service   string     `json:"service"` // the service whose store answered
	Spans     []SpanData `json:"spans"`   // start-time order
}

// Get returns the recorded trace for a request ID, if any spans for it
// are still retained.
func (t *Tracer) Get(traceID string) (TraceDoc, bool) {
	if t == nil {
		return TraceDoc{}, false
	}
	t.mu.Lock()
	e := t.traces[traceID]
	var spans []SpanData
	if e != nil {
		spans = make([]SpanData, 0, e.nspans)
		for _, batch := range e.batches {
			for _, rec := range batch {
				spans = append(spans, rec.materialize())
			}
		}
	}
	t.mu.Unlock()
	if len(spans) == 0 {
		return TraceDoc{}, false
	}
	sortSpans(spans)
	return TraceDoc{RequestID: traceID, Service: t.service, Spans: spans}, true
}

// Stats reports store occupancy: retained traces, total spans
// recorded, and spans dropped by eviction.
func (t *Tracer) Stats() (traces int, spans, dropped uint64) {
	if t == nil {
		return 0, 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces), t.spans, t.dropped
}

// Span is one in-flight timed operation. A nil *Span is valid and
// inert, so call sites never branch on whether tracing is on.
type Span struct {
	t     *Tracer
	trace string
	start time.Time
	owner *Span // request root owning the record batch; self for roots, nil for unowned (cross-hop) spans
	seq   int   // root-scoped sequence for batched children; their ID string renders lazily
	pseq  int   // parent's seq (0 = the root itself) for batched children

	mu       sync.Mutex // guards attrs, ended, and (on roots) the batch; spans may be touched from timeout paths
	ended    bool
	attrs    []attrKV // slice, not map: spans carry 0–4 attrs and maps cost on the hot path
	attrsBuf [4]attrKV
	data     SpanData

	batch *rootBatch // root spans only
}

// rootBatch is the per-request record buffer a root span owns
// (guarded by the root's mu): children append completed records here
// and the root's End commits the whole request to the store in one
// insertion that hands the batch slice over by reference — no record
// is ever copied into the store. The store therefore retains the
// request's batch (and, via frozen attr slices, its Spans) until the
// trace is evicted; the store's trace capacity bounds that. recsBuf
// covers the serving plane's deepest request (root + auth + admit +
// run + lookup) without a second allocation.
type rootBatch struct {
	recs    []spanRec
	recsBuf [6]spanRec
	seq     int // child ID sequence
	flushed bool
}

type attrKV struct{ k, v string }

// Context returns the span's context for propagation to children and
// across hops. A nil span returns the zero (invalid) context. For
// batched children the ID string is rendered (and cached) here — the
// one place the hot path pays for it, and only when a hop actually
// propagates the span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	s.mu.Lock()
	if s.data.ID == "" && s.seq > 0 {
		s.data.ID = s.owner.data.ID + "." + strconv.Itoa(s.seq)
	}
	id := s.data.ID
	s.mu.Unlock()
	return SpanContext{TraceID: s.trace, SpanID: id}
}

// SetAttr attaches a key=value attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, attrKV{key, value})
	}
	s.mu.Unlock()
}

// End completes the span and records it. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.StartUS = s.start.UnixMicro()
	s.data.DurUS = time.Since(s.start).Microseconds()
	// attrs are frozen once ended, so the record carries the slice by
	// reference — no per-attribute copy on the request path.
	rec := spanRec{data: s.data, seq: s.seq, parentSeq: s.pseq, attrs: s.attrs}
	if s.owner == s {
		// Root: commit the whole request's batch in one store insertion.
		// Children stamp rec.root now, while the batch is in hand.
		s.batch.flushed = true
		recs := append(s.batch.recs, rec)
		for i := range recs {
			if recs[i].seq > 0 {
				recs[i].root = s.data.ID
			}
		}
		s.batch.recs = nil
		s.mu.Unlock()
		s.t.mu.Lock()
		s.t.record(s.trace, recs)
		s.t.mu.Unlock()
		return
	}
	s.mu.Unlock()
	if o := s.owner; o != nil {
		o.mu.Lock()
		if !o.batch.flushed {
			o.batch.recs = append(o.batch.recs, rec)
			o.mu.Unlock()
			return
		}
		o.mu.Unlock() // root already committed; record directly
		rec.root = o.data.ID
	}
	s.t.mu.Lock()
	s.t.record(s.trace, []spanRec{rec})
	s.t.mu.Unlock()
}

// Data returns the span's record as of now; the span need not have
// ended (DurUS is zero until End). Used to ship spans over HeaderSpans.
func (s *Span) Data() SpanData {
	if s == nil {
		return SpanData{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := spanRec{data: s.data, seq: s.seq, parentSeq: s.pseq, attrs: s.attrs}
	if s.owner != nil && s.owner != s {
		rec.root = s.owner.data.ID
	}
	return rec.materialize()
}

// EncodeSpans renders spans for the HeaderSpans response header.
func EncodeSpans(spans []SpanData) string {
	if len(spans) == 0 {
		return ""
	}
	b, err := json.Marshal(spans)
	if err != nil {
		return ""
	}
	return string(b)
}

// DecodeSpans parses a HeaderSpans value, tolerating absence and
// garbage (a peer without tracing simply contributes no spans).
func DecodeSpans(s string) []SpanData {
	if s == "" {
		return nil
	}
	var spans []SpanData
	if err := json.Unmarshal([]byte(s), &spans); err != nil {
		return nil
	}
	return spans
}

func sortSpans(spans []SpanData) {
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartUS < spans[j].StartUS })
}
