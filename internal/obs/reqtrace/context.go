package reqtrace

import "context"

// The request ID and the active span context ride the request's
// context.Context so layers that only see a context (engine callbacks,
// LookupFallback, cluster hops initiated from serve handlers) can
// continue the trace without a dependency on internal/serve.

type requestIDKey struct{}
type spanCtxKey struct{}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// WithSpanContext returns a context carrying the active span context.
// It shares a key with WithSpan: whichever was set last wins, so a
// layer can re-parent the trace for its callees either way.
func WithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// WithSpan returns a context carrying the active span itself. In-
// process callees can then open batched children via Tracer.StartChild
// (the cheap path); cross-process callees still read SpanFromContext.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the active span context carried by ctx —
// from either carrier — or the zero (invalid) context.
func SpanFromContext(ctx context.Context) SpanContext {
	switch v := ctx.Value(spanCtxKey{}).(type) {
	case *Span:
		return v.Context()
	case SpanContext:
		return v
	}
	return SpanContext{}
}

// SpanObj returns the active span object carried by ctx, if the
// carrier was WithSpan; nil otherwise (including across process hops,
// where only the wire-form context survives).
func SpanObj(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}
