package reqtrace

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome-trace-event export of a request's span tree, in the same
// JSON flavor internal/obs writes for simulator transactions, so
// ui.perfetto.dev opens both. Each service in the tree becomes one
// "process" row; spans are complete ("X") slices. Timestamps are
// microseconds relative to the earliest span so the viewer does not
// render 50 years of empty timeline before the request.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	OtherData       map[string]any `json:"otherData"`
}

// WriteChrome writes the trace as Chrome trace event JSON.
func (d TraceDoc) WriteChrome(w io.Writer) error {
	f := chromeFile{
		DisplayTimeUnit: "ns",
		TraceEvents:     []chromeEvent{},
		OtherData: map[string]any{
			"request_id": d.RequestID,
			"spans":      len(d.Spans),
		},
	}

	// Services in first-appearance order get stable pid rows.
	pids := map[string]int{}
	var services []string
	for _, s := range d.Spans {
		if _, ok := pids[s.Service]; !ok {
			pids[s.Service] = len(services)
			services = append(services, s.Service)
		}
	}
	sort.Strings(services)
	for i, svc := range services {
		pids[svc] = i
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: i,
			Args: map[string]any{"name": svc},
		})
	}

	var t0 int64
	for i, s := range d.Spans {
		if i == 0 || s.StartUS < t0 {
			t0 = s.StartUS
		}
	}
	for _, s := range d.Spans {
		args := map[string]any{"id": s.ID}
		if s.Parent != "" {
			args["parent"] = s.Parent
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: s.Name, Cat: "request", Ph: "X",
			TS: float64(s.StartUS - t0), Dur: float64(s.DurUS),
			PID: pids[s.Service], TID: 0,
			Args: args,
		})
	}

	b, err := json.Marshal(&f)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
