package reqtrace

import (
	"strconv"
	"sync/atomic"
	"testing"
)

// BenchmarkRequestSpanTree is the serving hot path in miniature: the
// root + auth + admit + run quartet one cache-hit request records,
// with the attrs serve attaches. BENCH_8's <=3% overhead gate rides on
// this path staying cheap.
func BenchmarkRequestSpanTree(b *testing.B) {
	t := NewTracer("serve", 1024)
	b.ReportAllocs()
	var n atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := "aabbccdd" + strconv.FormatUint(n.Add(1), 16)
			root := t.StartRoot(id, "jobs")
			root.SetAttr("method", "POST")
			auth := t.StartChild(root, "auth")
			auth.SetAttr("tenant", "anonymous")
			auth.End()
			admit := t.StartChild(root, "admit")
			admit.SetAttr("outcome", "granted")
			admit.End()
			run := t.StartChild(root, "run")
			run.SetAttr("hash", "deadbeef")
			run.SetAttr("source", "cache")
			run.End()
			root.SetAttr("status", "200")
			root.End()
		}
	})
}

// BenchmarkRequestSpanTreeSerial is the same quartet without
// goroutine parallelism: per-op CPU cost, no lock contention.
func BenchmarkRequestSpanTreeSerial(b *testing.B) {
	t := NewTracer("serve", 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := "aabbccdd" + strconv.FormatUint(uint64(i), 16)
		root := t.StartRoot(id, "jobs")
		root.SetAttr("method", "POST")
		auth := t.StartChild(root, "auth")
		auth.SetAttr("tenant", "anonymous")
		auth.End()
		admit := t.StartChild(root, "admit")
		admit.SetAttr("outcome", "granted")
		admit.End()
		run := t.StartChild(root, "run")
		run.SetAttr("hash", "deadbeef")
		run.SetAttr("source", "cache")
		run.End()
		root.SetAttr("status", "200")
		root.End()
	}
}
