package reqtrace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestValidID(t *testing.T) {
	cases := []struct {
		id string
		ok bool
	}{
		{"0123456789abcdef", true},
		{"abcd1234", true},
		{"abc-def-123", true},
		{strings.Repeat("a", 64), true},
		{strings.Repeat("a", 65), false},
		{"short", false},
		{"", false},
		{"ABCDEF1234567890", false},      // uppercase rejected
		{"abcd1234\n", false},            // control chars rejected
		{"abcd1234xyz", false},           // non-hex letters rejected
		{"../../../etc/passwd00", false}, // path chars rejected
		{"abcd efgh", false},             // spaces rejected
	}
	for _, c := range cases {
		if got := ValidID(c.id); got != c.ok {
			t.Errorf("ValidID(%q) = %v, want %v", c.id, got, c.ok)
		}
	}
}

func TestSpanContextRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: "0123456789abcdef", SpanID: "ab12-3"}
	got, ok := ParseContext(sc.String())
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}

	root := SpanContext{TraceID: "0123456789abcdef"}
	got, ok = ParseContext(root.String())
	if !ok || got != root {
		t.Fatalf("root round trip: got %+v ok=%v", got, ok)
	}

	for _, bad := range []string{"", ":", "short:span", "UPPER0123456789:x"} {
		if _, ok := ParseContext(bad); ok {
			t.Errorf("ParseContext(%q) accepted", bad)
		}
	}
	if (SpanContext{}).String() != "" {
		t.Errorf("zero context renders %q, want empty", SpanContext{}.String())
	}
}

func TestNilTracerInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if id := tr.NewTraceID(); !ValidID(id) {
		t.Fatalf("nil tracer NewTraceID %q invalid", id)
	}
	sp := tr.StartRoot("0123456789abcdef", "root")
	if sp != nil {
		t.Fatal("nil tracer returned a live span")
	}
	// All span methods must be nil-safe.
	sp.SetAttr("k", "v")
	sp.End()
	if sc := sp.Context(); sc.Valid() {
		t.Fatal("nil span has a valid context")
	}
	if _, ok := tr.Get("0123456789abcdef"); ok {
		t.Fatal("nil tracer returned a trace")
	}
	tr.Inject("0123456789abcdef", []SpanData{{ID: "x"}})
	if NewTracer("x", 0) != nil {
		t.Fatal("capacity 0 should yield a nil tracer")
	}
}

func TestSpanTreeRecording(t *testing.T) {
	tr := NewTracer("serve", 16)
	id := tr.NewTraceID()

	root := tr.StartRoot(id, "jobs")
	root.SetAttr("endpoint", "jobs")
	admit := tr.Start(root.Context(), "admit")
	admit.SetAttr("tenant", "anonymous")
	admit.End()
	run := tr.Start(root.Context(), "run")
	run.End()
	root.End()

	doc, ok := tr.Get(id)
	if !ok {
		t.Fatal("trace not found")
	}
	if doc.RequestID != id || len(doc.Spans) != 3 {
		t.Fatalf("doc = %+v, want 3 spans for %s", doc, id)
	}
	byName := map[string]SpanData{}
	ids := map[string]bool{}
	for _, s := range doc.Spans {
		byName[s.Name] = s
		if ids[s.ID] {
			t.Fatalf("duplicate span id %s", s.ID)
		}
		ids[s.ID] = true
		if s.Service != "serve" {
			t.Errorf("span %s service = %q", s.Name, s.Service)
		}
	}
	if byName["jobs"].Parent != "" {
		t.Errorf("root has parent %q", byName["jobs"].Parent)
	}
	for _, name := range []string{"admit", "run"} {
		if byName[name].Parent != byName["jobs"].ID {
			t.Errorf("%s parent = %q, want root %q", name, byName[name].Parent, byName["jobs"].ID)
		}
	}
	if byName["admit"].Attrs["tenant"] != "anonymous" {
		t.Errorf("admit attrs = %v", byName["admit"].Attrs)
	}

	// End is idempotent: a second End must not duplicate the record.
	admit.End()
	doc, _ = tr.Get(id)
	if len(doc.Spans) != 3 {
		t.Fatalf("after double End: %d spans, want 3", len(doc.Spans))
	}
}

func TestInjectAndCrossProcessSpans(t *testing.T) {
	coord := NewTracer("coordinator", 16)
	worker := NewTracer("worker:w1", 16)
	id := coord.NewTraceID()

	dispatch := coord.StartRoot(id, "dispatch")

	// Worker side: parse the propagated context, run, ship span back.
	sc, ok := ParseContext(dispatch.Context().String())
	if !ok {
		t.Fatal("propagated context failed to parse")
	}
	exec := worker.Start(sc, "exec")
	exec.SetAttr("worker", "w1")
	exec.End()
	wire := EncodeSpans([]SpanData{exec.Data()})

	coord.Inject(id, DecodeSpans(wire))
	dispatch.End()

	doc, ok := coord.Get(id)
	if !ok || len(doc.Spans) != 2 {
		t.Fatalf("doc = %+v, want 2 spans", doc)
	}
	var ex, disp SpanData
	for _, s := range doc.Spans {
		switch s.Name {
		case "exec":
			ex = s
		case "dispatch":
			disp = s
		}
	}
	if ex.Parent != disp.ID {
		t.Errorf("exec parent = %q, want dispatch %q", ex.Parent, disp.ID)
	}
	if ex.Service != "worker:w1" {
		t.Errorf("exec service = %q", ex.Service)
	}
	if ex.DurUS < 0 || ex.StartUS == 0 {
		t.Errorf("exec timing = start %d dur %d", ex.StartUS, ex.DurUS)
	}

	// Garbage header values contribute nothing instead of failing.
	if got := DecodeSpans("not json"); got != nil {
		t.Errorf("DecodeSpans(garbage) = %v", got)
	}
	if got := DecodeSpans(""); got != nil {
		t.Errorf("DecodeSpans(empty) = %v", got)
	}
}

func TestStoreEviction(t *testing.T) {
	tr := NewTracer("serve", 4)
	var first string
	for i := 0; i < 10; i++ {
		id := tr.NewTraceID()
		if i == 0 {
			first = id
		}
		sp := tr.StartRoot(id, "jobs")
		sp.End()
	}
	traces, spans, dropped := tr.Stats()
	if traces != 4 {
		t.Fatalf("retained %d traces, want 4", traces)
	}
	if spans != 10 || dropped != 6 {
		t.Fatalf("spans=%d dropped=%d, want 10/6", spans, dropped)
	}
	if _, ok := tr.Get(first); ok {
		t.Fatal("oldest trace survived eviction")
	}
}

func TestContextCarriers(t *testing.T) {
	ctx := context.Background()
	if RequestID(ctx) != "" || SpanFromContext(ctx).Valid() {
		t.Fatal("empty context carries trace state")
	}
	sc := SpanContext{TraceID: "0123456789abcdef", SpanID: "s1"}
	ctx = WithRequestID(WithSpanContext(ctx, sc), sc.TraceID)
	if RequestID(ctx) != sc.TraceID {
		t.Errorf("RequestID = %q", RequestID(ctx))
	}
	if got := SpanFromContext(ctx); got != sc {
		t.Errorf("SpanFromContext = %+v", got)
	}
}

func TestWriteChrome(t *testing.T) {
	tr := NewTracer("serve", 8)
	wk := NewTracer("worker:w1", 8)
	id := tr.NewTraceID()
	root := tr.StartRoot(id, "jobs")
	ex := wk.Start(root.Context(), "exec")
	ex.End()
	tr.Inject(id, []SpanData{ex.Data()})
	root.End()

	doc, ok := tr.Get(id)
	if !ok {
		t.Fatal("trace missing")
	}
	var buf bytes.Buffer
	if err := doc.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome export is not JSON: %v\n%s", err, buf.String())
	}
	var slices, metas int
	for _, e := range f.TraceEvents {
		switch e["ph"] {
		case "X":
			slices++
			if ts, ok := e["ts"].(float64); !ok || ts < 0 {
				t.Errorf("slice ts = %v", e["ts"])
			}
		case "M":
			metas++
		}
	}
	if slices != 2 {
		t.Errorf("%d slices, want 2", slices)
	}
	if metas != 2 { // one process_name per service
		t.Errorf("%d metadata events, want 2", metas)
	}
	if f.OtherData["request_id"] != id {
		t.Errorf("otherData request_id = %v", f.OtherData["request_id"])
	}
}
