package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/coherence"
	"repro/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite the Perfetto golden file")

// goldenTracer builds a small, fully deterministic trace: two
// processors, three spans (one with out-of-order phases), one wrapped
// buffer, and two occupancy tracks.
func goldenTracer() *Tracer {
	tr := New(Config{SampleEvery: 1, BufferCap: 8, TrackCap: 16}, 2)
	tr.SetWarm(0)
	tr.SetWarm(1)

	sp := tr.Begin(0, 100*sim.Nanosecond)
	sp.Mark(PhaseProbeGrab, 110*sim.Nanosecond)
	sp.Mark(PhaseAck, 400*sim.Nanosecond)
	sp.Mark(PhaseData, 350*sim.Nanosecond) // data beats the probe return
	sp.End(420*sim.Nanosecond, coherence.WriteMissDirty)

	sp = tr.Begin(1, 200*sim.Nanosecond)
	sp.Mark(PhaseProbeGrab, 230*sim.Nanosecond)
	sp.Mark(PhaseData, 500*sim.Nanosecond)
	sp.End(500*sim.Nanosecond, coherence.ReadMissClean)

	sp = tr.Begin(1, 900*sim.Nanosecond)
	sp.End(940*sim.Nanosecond, coherence.WriteBack)

	probe := tr.NewTrack("ring probe-even", 2)
	block := tr.NewTrack("ring block", 1)
	probe.Message(110*sim.Nanosecond, 172*sim.Nanosecond)
	probe.Message(150*sim.Nanosecond, 212*sim.Nanosecond)
	block.Message(430*sim.Nanosecond, 500*sim.Nanosecond)
	tr.Finish(1000 * sim.Nanosecond)
	return tr
}

// TestPerfettoGolden locks the exporter's schema: any change to the
// JSON shape shows up as a golden diff.
func TestPerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_trace.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace differs from golden (run with -update to regenerate)\ngot:  %s\nwant: %s",
			buf.Bytes(), want)
	}
}

// TestPerfettoSchema validates the structural invariants a Chrome
// trace viewer needs, independent of the exact golden bytes.
func TestPerfettoSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  *int    `json:"pid"`
			TID  *int    `json:"tid"`
		} `json:"traceEvents"`
		OtherData struct {
			SampleEvery int `json:"sample_every"`
			Classes     []struct {
				Class  string  `json:"class"`
				Spans  uint64  `json:"spans"`
				MeanNS float64 `json:"mean_ns"`
			} `json:"classes"`
			Tracks []struct {
				Name          string  `json:"name"`
				MeanOccupancy float64 `json:"mean_occupancy"`
			} `json:"tracks"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q, want ns", f.DisplayTimeUnit)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	counts := map[string]int{}
	for _, ev := range f.TraceEvents {
		if ev.Ph == "" || ev.PID == nil || ev.TID == nil {
			t.Fatalf("event %+v missing ph/pid/tid", ev)
		}
		counts[ev.Ph]++
		if ev.Ph == "X" && ev.Dur < 0 {
			t.Fatalf("negative duration in %+v", ev)
		}
	}
	// Three spans, their phase sub-slices, metadata, and counter steps.
	if counts["X"] < 3 || counts["M"] < 3 || counts["C"] < 4 {
		t.Fatalf("event mix %v too small: want ≥3 X, ≥3 M, ≥4 C", counts)
	}
	if len(f.OtherData.Classes) != 3 {
		t.Fatalf("got %d class summaries, want 3", len(f.OtherData.Classes))
	}
	if len(f.OtherData.Tracks) != 2 {
		t.Fatalf("got %d track summaries, want 2", len(f.OtherData.Tracks))
	}
	// Mean occupancy of "ring block": 70 ns busy over 1000 ns, 1 slot.
	for _, trk := range f.OtherData.Tracks {
		if trk.Name == "ring block" && trk.MeanOccupancy != 0.07 {
			t.Fatalf("ring block mean occupancy = %v, want 0.07", trk.MeanOccupancy)
		}
	}
}
