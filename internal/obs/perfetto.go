package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"

	"repro/internal/coherence"
	"repro/internal/sim"
)

// The exporter writes the Chrome trace event format (the JSON flavor
// Perfetto's ui.perfetto.dev loads directly): one "process" groups the
// simulated processors (one slice track each), a second groups the
// interconnect occupancy counters (one counter track per ring slot
// class or bus tenure kind). Timestamps are microseconds per the
// format; displayTimeUnit asks the viewer to label in nanoseconds,
// the natural scale here.

// traceEvent is one entry of the traceEvents array.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level JSON object.
type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
	OtherData       traceSummary `json:"otherData"`
}

// traceSummary carries the run-level aggregates alongside the raw
// events: the exact per-class latency means (over every span, not just
// the sampled ones) and per-track mean occupancies, so a trace file is
// self-describing and checkable against the run's Table-2 aggregates.
type traceSummary struct {
	SampleEvery   int            `json:"sample_every"`
	SpansObserved uint64         `json:"spans_observed"`
	SpansSampled  uint64         `json:"spans_sampled"`
	SpansDropped  uint64         `json:"spans_dropped"`
	Classes       []classSummary `json:"classes"`
	Tracks        []trackSummary `json:"tracks"`
}

// classSummary summarizes one transaction class.
type classSummary struct {
	Class   string             `json:"class"`
	Spans   uint64             `json:"spans"`
	MeanNS  float64            `json:"mean_ns"`
	P50NS   float64            `json:"p50_ns"`
	P95NS   float64            `json:"p95_ns"`
	PhaseNS map[string]float64 `json:"phase_mean_ns,omitempty"`
}

// trackSummary summarizes one occupancy track.
type trackSummary struct {
	Name          string  `json:"name"`
	Slots         int     `json:"slots"`
	Messages      uint64  `json:"messages"`
	MeanOccupancy float64 `json:"mean_occupancy"`
	Dropped       uint64  `json:"dropped"`
}

const (
	pidProcs = 0
	pidNet   = 1
)

// us converts a simulation time to trace microseconds.
func us(t sim.Time) float64 { return t.Nanoseconds() / 1000 }

// WriteTrace writes the run's trace in Chrome trace event JSON.
// Calling it on a nil tracer is an error-free no-op that writes an
// empty, still-loadable trace.
func (t *Tracer) WriteTrace(w io.Writer) error {
	f := traceFile{DisplayTimeUnit: "ns"}
	if t != nil {
		f.TraceEvents = t.events()
		f.OtherData = t.summary()
	}
	if f.TraceEvents == nil {
		f.TraceEvents = []traceEvent{}
	}
	b, err := json.Marshal(&f)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// summary builds the otherData aggregates.
func (t *Tracer) summary() traceSummary {
	s := traceSummary{
		SampleEvery:   t.cfg.SampleEvery,
		SpansObserved: t.SpansObserved(),
		SpansSampled:  t.sampled,
		SpansDropped:  t.dropped,
		Classes:       []classSummary{},
		Tracks:        []trackSummary{},
	}
	for c := 0; c < coherence.NumTxn; c++ {
		if t.classN[c] == 0 {
			continue
		}
		txn := coherence.Txn(c)
		h := t.latency[c]
		cs := classSummary{
			Class:  txn.String(),
			Spans:  t.classN[c],
			MeanNS: h.Mean(),
			P50NS:  h.Quantile(0.50),
			P95NS:  h.Quantile(0.95),
		}
		for p := 0; p < NumPhases; p++ {
			if ph := t.phase[c][p]; ph.N() > 0 {
				if cs.PhaseNS == nil {
					cs.PhaseNS = map[string]float64{}
				}
				cs.PhaseNS[Phase(p).String()] = ph.Mean()
			}
		}
		s.Classes = append(s.Classes, cs)
	}
	window := t.finish - t.netStart
	for _, tr := range t.tracks {
		ts := trackSummary{Name: tr.name, Slots: tr.slots, Messages: tr.messages, Dropped: tr.dropped}
		if window > 0 {
			var integral sim.Time
			for i := 0; i+1 < len(tr.edges); i += 2 {
				integral += tr.edges[i+1].at - tr.edges[i].at
			}
			ts.MeanOccupancy = float64(integral) / float64(window*sim.Time(tr.slots))
		}
		s.Tracks = append(s.Tracks, ts)
	}
	return s
}

// events builds the traceEvents array: metadata naming the tracks,
// one slice (plus phase sub-slices) per sampled span, and counter
// series for the occupancy tracks.
func (t *Tracer) events() []traceEvent {
	var evs []traceEvent
	meta := func(pid, tid int, key, val string) {
		evs = append(evs, traceEvent{
			Name: key, Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": val},
		})
	}
	meta(pidProcs, 0, "process_name", "processors")
	for p := range t.procs {
		meta(pidProcs, p, "thread_name", "cpu "+strconv.Itoa(p))
	}
	meta(pidNet, 0, "process_name", "interconnect")

	t.Records(func(r Record) {
		// Waypoints in time order: issue, each reached phase, fill.
		// Phases are normally monotonic, but a snooping write miss can
		// see its data before the invalidating probe returns, so sort.
		type waypoint struct {
			at    sim.Time
			label string
		}
		wps := []waypoint{{r.Start, "issue"}}
		for p := 0; p < NumPhases; p++ {
			if ts := r.Phase[p]; ts != 0 {
				wps = append(wps, waypoint{ts, Phase(p).String()})
			}
		}
		sort.SliceStable(wps, func(i, j int) bool { return wps[i].at < wps[j].at })
		wps = append(wps, waypoint{r.End, "fill"})

		evs = append(evs, traceEvent{
			Name: r.Txn.String(), Cat: "txn", Ph: "X",
			TS: us(r.Start), Dur: us(r.End - r.Start),
			PID: pidProcs, TID: int(r.Proc),
		})
		for i := 0; i+1 < len(wps); i++ {
			from, to := wps[i], wps[i+1]
			if to.at <= from.at {
				continue
			}
			evs = append(evs, traceEvent{
				Name: to.label, Cat: "phase", Ph: "X",
				TS: us(from.at), Dur: us(to.at - from.at),
				PID: pidProcs, TID: int(r.Proc),
			})
		}
	})

	for _, tr := range t.tracks {
		edges := append([]occEdge(nil), tr.edges...)
		sort.SliceStable(edges, func(i, j int) bool {
			if edges[i].at != edges[j].at {
				return edges[i].at < edges[j].at
			}
			return edges[i].d < edges[j].d // removals before grabs at ties
		})
		busy := int32(0)
		for i := 0; i < len(edges); {
			at := edges[i].at
			for i < len(edges) && edges[i].at == at {
				busy += edges[i].d
				i++
			}
			evs = append(evs, traceEvent{
				Name: tr.name, Ph: "C", TS: us(at),
				PID: pidNet, TID: 0,
				Args: map[string]any{"busy": busy},
			})
		}
	}
	return evs
}
