package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/coherence"
	"repro/internal/sim"
)

// warmTracer returns an enabled tracer with every processor measured.
func warmTracer(t *testing.T, cfg Config, procs int) *Tracer {
	t.Helper()
	tr := New(cfg, procs)
	if tr == nil {
		t.Fatal("New returned nil for an enabled config")
	}
	for p := 0; p < procs; p++ {
		tr.SetWarm(p)
	}
	return tr
}

func TestNewDisabled(t *testing.T) {
	if tr := New(Config{}, 4); tr != nil {
		t.Fatal("zero Config should produce a nil (disabled) tracer")
	}
	if (Config{}).Enabled() {
		t.Fatal("zero Config reports Enabled")
	}
	if !(Config{SampleEvery: 1}).Enabled() {
		t.Fatal("SampleEvery=1 should report Enabled")
	}
}

func TestNilTracerInert(t *testing.T) {
	var tr *Tracer
	// Every method on a nil tracer must be callable and inert.
	tr.SetWarm(0)
	tr.ResetNet(0)
	tr.Finish(0)
	sp := tr.Begin(0, 10)
	sp.Mark(PhaseAck, 20)
	sp.End(30, coherence.ReadMissClean)
	var track *Track
	track = tr.NewTrack("x", 1)
	if track != nil {
		t.Fatal("NewTrack on nil tracer should return nil")
	}
	track.Message(0, 10)
	if tr.SpansObserved() != 0 || tr.SpansSampled() != 0 || tr.SpansDropped() != 0 {
		t.Fatal("nil tracer reports nonzero counters")
	}
	if tr.ClassLatency(coherence.ReadMissClean) != nil {
		t.Fatal("nil tracer returned a histogram")
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace on nil tracer: %v", err)
	}
	var f map[string]any
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("nil-tracer trace is not valid JSON: %v", err)
	}
	if _, ok := f["traceEvents"]; !ok {
		t.Fatal("nil-tracer trace lacks traceEvents")
	}
}

func TestSamplingPeriod(t *testing.T) {
	tr := warmTracer(t, Config{SampleEvery: 4}, 1)
	for i := 0; i < 16; i++ {
		start := sim.Time(i) * 100 * sim.Nanosecond
		sp := tr.Begin(0, start)
		sp.End(start+50*sim.Nanosecond, coherence.ReadMissClean)
	}
	if got := tr.SpansObserved(); got != 16 {
		t.Fatalf("SpansObserved = %d, want 16 (histograms see every span)", got)
	}
	if got := tr.SpansSampled(); got != 4 {
		t.Fatalf("SpansSampled = %d, want 4 at 1/4 sampling", got)
	}
	var recs int
	tr.Records(func(Record) { recs++ })
	if recs != 4 {
		t.Fatalf("Records visited %d, want 4", recs)
	}
	// The exact histogram mean covers all 16 spans: 50 ns each.
	if mean := tr.ClassLatency(coherence.ReadMissClean).Mean(); mean != 50 {
		t.Fatalf("class mean = %v ns, want 50", mean)
	}
}

func TestColdProcessorNotObserved(t *testing.T) {
	tr := New(Config{SampleEvery: 1}, 2)
	tr.SetWarm(1)
	spCold := tr.Begin(0, 0)
	spCold.End(100, coherence.ReadMissClean)
	spWarm := tr.Begin(1, 0)
	spWarm.End(100, coherence.ReadMissClean)
	if got := tr.SpansObserved(); got != 1 {
		t.Fatalf("SpansObserved = %d, want 1 (cold proc excluded)", got)
	}
	if got := tr.SpansSampled(); got != 1 {
		t.Fatalf("SpansSampled = %d, want 1", got)
	}
}

func TestBufferWrapKeepsTail(t *testing.T) {
	tr := warmTracer(t, Config{SampleEvery: 1, BufferCap: 4}, 1)
	for i := 0; i < 10; i++ {
		sp := tr.Begin(0, sim.Time(i*1000))
		sp.Mark(PhaseData, sim.Time(i*1000+10))
		sp.End(sim.Time(i*1000+20), coherence.WriteMissClean)
	}
	var starts []sim.Time
	tr.Records(func(r Record) { starts = append(starts, r.Start) })
	if len(starts) != 4 {
		t.Fatalf("got %d surviving records, want 4", len(starts))
	}
	// Oldest-first: spans 6..9 survive.
	for i, want := range []sim.Time{6000, 7000, 8000, 9000} {
		if starts[i] != want {
			t.Fatalf("record %d start = %v, want %v", i, starts[i], want)
		}
	}
	if tr.SpansDropped() != 0 {
		t.Fatalf("dropped = %d, want 0 (all overwritten records were complete)", tr.SpansDropped())
	}
}

func TestOverwrittenOpenSpanDropsAndDetaches(t *testing.T) {
	tr := warmTracer(t, Config{SampleEvery: 1, BufferCap: 2}, 1)
	old := tr.Begin(0, 0) // left open
	for i := 0; i < 2; i++ {
		sp := tr.Begin(0, sim.Time(1000+i))
		sp.End(sim.Time(2000+i), coherence.ReadMissClean)
	}
	if tr.SpansDropped() != 1 {
		t.Fatalf("dropped = %d, want 1 (open span overwritten)", tr.SpansDropped())
	}
	// The stale handle must not corrupt the record that took its slot.
	old.Mark(PhaseAck, 123)
	old.End(456, coherence.WriteBack)
	done := 0
	tr.Records(func(r Record) {
		done++
		if r.Txn == coherence.WriteBack || r.Phase[PhaseAck] == 123 {
			t.Fatal("stale span handle wrote into a reused record")
		}
	})
	if done != 2 {
		t.Fatalf("got %d completed records, want 2", done)
	}
}

func TestPhaseHistogramsSampledOnly(t *testing.T) {
	tr := warmTracer(t, Config{SampleEvery: 2}, 1)
	for i := 0; i < 4; i++ {
		sp := tr.Begin(0, sim.Time(i*1000))
		sp.Mark(PhaseProbeGrab, sim.Time(i*1000+100))
		sp.End(sim.Time(i*1000+500), coherence.Invalidation)
	}
	if n := tr.PhaseLatency(coherence.Invalidation, PhaseProbeGrab).N(); n != 2 {
		t.Fatalf("phase histogram saw %d samples, want 2 (sampled spans only)", n)
	}
	if n := tr.ClassLatency(coherence.Invalidation).N(); n != 4 {
		t.Fatalf("class histogram saw %d samples, want 4", n)
	}
}

func TestTrackCapSaturates(t *testing.T) {
	tr := warmTracer(t, Config{SampleEvery: 1, TrackCap: 3}, 1)
	track := tr.NewTrack("ring block", 2)
	for i := 0; i < 5; i++ {
		track.Message(sim.Time(i*10), sim.Time(i*10+5))
	}
	if track.messages != 5 {
		t.Fatalf("messages = %d, want 5", track.messages)
	}
	if track.dropped != 2 {
		t.Fatalf("dropped = %d, want 2 beyond the cap", track.dropped)
	}
	if len(track.edges) != 6 {
		t.Fatalf("edges = %d, want 6 (3 messages kept)", len(track.edges))
	}
}

func TestResetNetClearsTracks(t *testing.T) {
	tr := warmTracer(t, Config{SampleEvery: 1}, 1)
	track := tr.NewTrack("bus request", 1)
	track.Message(0, 100)
	tr.ResetNet(500)
	if len(track.edges) != 0 || track.messages != 0 {
		t.Fatal("ResetNet did not clear the track")
	}
	track.Message(600, 700)
	tr.Finish(1500)
	// Mean occupancy over [500, 1500] with 100 ps busy = 0.1.
	sum := tr.summary()
	if len(sum.Tracks) != 1 {
		t.Fatalf("got %d track summaries, want 1", len(sum.Tracks))
	}
	if got := sum.Tracks[0].MeanOccupancy; got != 0.1 {
		t.Fatalf("mean occupancy = %v, want 0.1", got)
	}
}

func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{PhaseProbeGrab: "probe-grab", PhaseAck: "ack", PhaseData: "data"}
	for ph, s := range want {
		if ph.String() != s {
			t.Fatalf("%d.String() = %q, want %q", ph, ph.String(), s)
		}
	}
}
