// Package obs is the simulator's observability layer: sampling-aware
// transaction tracing with zero overhead when disabled.
//
// Coherence transactions become spans. A span opens when the protocol
// engine starts servicing a miss, upgrade, or write-back, collects
// phase annotations as the transaction progresses (probe slot acquired,
// ack observed, data arrived), and closes at fill time. Every span on a
// measured (post-warmup) processor feeds exact per-class latency
// histograms; one span in every Config.SampleEvery is additionally
// recorded into a per-processor ring buffer of fixed-size Records, the
// raw material for the Chrome-trace/Perfetto exporter in perfetto.go.
//
// Hot-path discipline mirrors the event slab (DESIGN.md §10): Records
// are fixed-size and pooled in per-processor ring buffers, recording a
// span claims a slot and writes fields in place, and the histograms are
// allocated up front — the steady state allocates nothing. When tracing
// is off the Tracer pointer is nil and every method call reduces to a
// single nil-check branch; the engines are single-goroutine per run, so
// no locks appear anywhere on the recording path.
package obs

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Phase identifies an intermediate waypoint inside a span. Spans open
// at issue and close at fill; the phases mark the observable protocol
// steps in between, so a trace decomposes each miss into
// issue → probe-grab → ack → data → fill segments.
type Phase uint8

const (
	// PhaseProbeGrab: the probe slot was physically acquired (the
	// reservation-to-grab wait ends here).
	PhaseProbeGrab Phase = iota
	// PhaseAck: the acknowledgment was observed — the broadcast probe
	// returned to the requester (snooping) or the home's bank granted
	// the directory lookup.
	PhaseAck
	// PhaseData: the data block reached the requester (or, for a
	// write-back, the block slot was acquired).
	PhaseData
	numPhases
)

// NumPhases is the number of markable phases.
const NumPhases = int(numPhases)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseProbeGrab:
		return "probe-grab"
	case PhaseAck:
		return "ack"
	case PhaseData:
		return "data"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// Config describes a tracer. The zero value means tracing is off.
type Config struct {
	// SampleEvery records one of every N spans into the trace buffers;
	// 0 disables the tracer entirely (every hook compiles to one
	// branch). 1 records every span. Latency histograms always see
	// every span regardless of the sampling rate.
	SampleEvery int
	// BufferCap bounds the retained span records per processor
	// (default 4096); once full the buffer wraps, overwriting the
	// oldest records, so a trace keeps the tail of a long run.
	BufferCap int
	// TrackCap bounds the occupancy edges retained per interconnect
	// track (default 16384 messages); further messages are counted but
	// not timestamped.
	TrackCap int
}

// Enabled reports whether this configuration turns tracing on.
func (c Config) Enabled() bool { return c.SampleEvery > 0 }

func (c *Config) fill() {
	if c.BufferCap == 0 {
		c.BufferCap = 4096
	}
	if c.TrackCap == 0 {
		c.TrackCap = 16384
	}
}

// Record is one sampled span, fixed-size by construction so the
// per-processor buffers never allocate on the recording path. Phase
// entries are absolute times; zero means the phase was not reached.
type Record struct {
	// ID is the buffer's claim counter at the time this record was
	// claimed (1-based); a Span whose ID no longer matches has been
	// overwritten by the wrapping buffer and writes nowhere.
	ID    uint64
	Start sim.Time
	End   sim.Time
	Phase [NumPhases]sim.Time
	Proc  int32
	Txn   coherence.Txn
	// Done marks a completed span; open records are skipped on export.
	Done bool
}

// procBuf is one processor's span ring buffer.
type procBuf struct {
	recs    []Record // grows to cfg.BufferCap, then wraps
	claimed uint64
}

// latencyHist returns the bucket shape shared by all span histograms:
// 25 ns lower bound doubling 20 times (≈13 ms), wide enough for any
// geometry the paper sweeps.
func latencyHist() *stats.ExpHistogram { return stats.NewExpHistogram(25, 2, 20) }

// LatencyHist returns an empty histogram of the tracer's bucket shape,
// the shape aggregators must use when merging span histograms.
func LatencyHist() *stats.ExpHistogram { return latencyHist() }

// Tracer records spans and interconnect occupancy for one simulation
// run. A nil *Tracer is valid and inert: every method is safe to call
// and does nothing, which is how the "off" switch costs one branch.
// Tracers are not safe for concurrent use; a run's single event-loop
// goroutine owns its tracer, and readers (exporters, aggregators) run
// only after the run completes.
type Tracer struct {
	cfg   Config
	procs []procBuf
	warm  []bool

	seen    uint64 // spans begun on measured procs, the sampling counter
	sampled uint64 // spans that claimed a record
	dropped uint64 // sampled spans overwritten before completing

	classN  [coherence.NumTxn]uint64
	latency [coherence.NumTxn]*stats.ExpHistogram
	phase   [coherence.NumTxn][NumPhases]*stats.ExpHistogram

	tracks   []*Track
	netStart sim.Time
	finish   sim.Time
}

// New returns a tracer for a run with the given processor count, or
// nil when cfg leaves tracing off.
func New(cfg Config, procs int) *Tracer {
	if !cfg.Enabled() {
		return nil
	}
	cfg.fill()
	t := &Tracer{
		cfg:   cfg,
		procs: make([]procBuf, procs),
		warm:  make([]bool, procs),
	}
	for c := 0; c < coherence.NumTxn; c++ {
		t.latency[c] = latencyHist()
		for p := 0; p < NumPhases; p++ {
			t.phase[c][p] = latencyHist()
		}
	}
	return t
}

// SetWarm marks proc as measured: spans it begins from now on are
// observed. The core calls this exactly when the processor crosses its
// warmup threshold, so the span population matches the population
// behind the run's aggregate miss latencies.
func (t *Tracer) SetWarm(proc int) {
	if t == nil {
		return
	}
	t.warm[proc] = true
}

// ResetNet discards the interconnect occupancy recorded so far and
// restarts the timelines at now — called alongside Ring.ResetStats at
// the global warmup crossing so occupancy covers the measured window.
func (t *Tracer) ResetNet(now sim.Time) {
	if t == nil {
		return
	}
	t.netStart = now
	for _, tr := range t.tracks {
		tr.edges = tr.edges[:0]
		tr.messages = 0
		tr.dropped = 0
	}
}

// Finish records the run's end time, closing the occupancy window.
func (t *Tracer) Finish(now sim.Time) {
	if t == nil {
		return
	}
	t.finish = now
}

// Span is a live transaction handle. The zero value is inert: Mark and
// End on it do nothing, so engines can thread spans unconditionally.
type Span struct {
	t     *Tracer
	start sim.Time
	id    uint64
	proc  int32
	slot  int32 // record index, -1 when this span was not sampled
}

// Begin opens a span for a transaction issued by proc at the given
// time. Spans on cold (pre-warmup) processors are inert; sampled spans
// claim a record slot in proc's buffer, overwriting the oldest record
// once the buffer is full.
func (t *Tracer) Begin(proc int, at sim.Time) Span {
	if t == nil || !t.warm[proc] {
		return Span{}
	}
	s := Span{t: t, start: at, proc: int32(proc), slot: -1}
	t.seen++
	if (t.seen-1)%uint64(t.cfg.SampleEvery) != 0 {
		return s
	}
	pb := &t.procs[proc]
	var slot int
	if len(pb.recs) < t.cfg.BufferCap {
		pb.recs = append(pb.recs, Record{})
		slot = len(pb.recs) - 1
	} else {
		slot = int(pb.claimed % uint64(t.cfg.BufferCap))
		if !pb.recs[slot].Done {
			t.dropped++ // an open sampled span just lost its record
		}
	}
	pb.claimed++
	pb.recs[slot] = Record{ID: pb.claimed, Start: at, Proc: int32(proc)}
	t.sampled++
	s.id = pb.claimed
	s.slot = int32(slot)
	return s
}

// Mark annotates the span with a phase waypoint. Only sampled spans
// carry phases; a span whose record was overwritten writes nowhere.
func (s Span) Mark(ph Phase, at sim.Time) {
	if s.t == nil || s.slot < 0 {
		return
	}
	r := &s.t.procs[s.proc].recs[s.slot]
	if r.ID != s.id {
		return
	}
	r.Phase[ph] = at
}

// End closes the span with its final transaction class, feeding the
// exact per-class latency histogram and, for sampled spans, finalizing
// the record and the per-phase offset histograms.
func (s Span) End(at sim.Time, txn coherence.Txn) {
	t := s.t
	if t == nil {
		return
	}
	t.classN[txn]++
	t.latency[txn].Observe((at - s.start).Nanoseconds())
	if s.slot < 0 {
		return
	}
	r := &t.procs[s.proc].recs[s.slot]
	if r.ID != s.id {
		return
	}
	r.End = at
	r.Txn = txn
	r.Done = true
	for p := 0; p < NumPhases; p++ {
		if ts := r.Phase[p]; ts != 0 {
			t.phase[txn][p].Observe((ts - s.start).Nanoseconds())
		}
	}
}

// Track is an occupancy timeline for one interconnect resource class
// (the slots of one ring class, or one bus tenure kind). Message
// appends a +1/-1 edge pair; the exporter integrates the edges into a
// counter track and a mean occupancy. A nil *Track is valid and inert.
type Track struct {
	name     string
	slots    int // capacity divisor for mean occupancy (≥ 1)
	capLimit int
	edges    []occEdge
	messages uint64
	dropped  uint64 // messages beyond capLimit, counted but not timed
}

// occEdge is one occupancy step: +1 at grab, -1 at removal.
type occEdge struct {
	at sim.Time
	d  int32
}

// NewTrack registers an occupancy track with the given display name
// and slot capacity (values < 1 are treated as 1). Returns nil on a
// nil tracer.
func (t *Tracer) NewTrack(name string, slots int) *Track {
	if t == nil {
		return nil
	}
	if slots < 1 {
		slots = 1
	}
	tr := &Track{name: name, slots: slots, capLimit: t.cfg.TrackCap}
	t.tracks = append(t.tracks, tr)
	return tr
}

// Message records one message occupying the track's resource from grab
// to removal time.
func (tr *Track) Message(grab, removal sim.Time) {
	if tr == nil {
		return
	}
	tr.messages++
	if len(tr.edges)+2 > 2*tr.capLimit {
		tr.dropped++
		return
	}
	tr.edges = append(tr.edges, occEdge{grab, 1}, occEdge{removal, -1})
}

// SampleEvery reports the tracer's sampling period.
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return t.cfg.SampleEvery
}

// SpansObserved reports how many spans fed the latency histograms.
func (t *Tracer) SpansObserved() uint64 {
	if t == nil {
		return 0
	}
	var n uint64
	for _, c := range t.classN {
		n += c
	}
	return n
}

// SpansSampled reports how many spans claimed a trace record.
func (t *Tracer) SpansSampled() uint64 {
	if t == nil {
		return 0
	}
	return t.sampled
}

// SpansDropped reports how many sampled spans lost their record to
// buffer wrap before completing.
func (t *Tracer) SpansDropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// ClassCount reports the number of spans that closed with class txn.
func (t *Tracer) ClassCount(txn coherence.Txn) uint64 {
	if t == nil {
		return 0
	}
	return t.classN[txn]
}

// ClassLatency returns the exact latency histogram (nanoseconds) for
// the class, or nil on a nil tracer. The histogram is live: callers
// must not mutate it and should read it only after the run completes.
func (t *Tracer) ClassLatency(txn coherence.Txn) *stats.ExpHistogram {
	if t == nil {
		return nil
	}
	return t.latency[txn]
}

// PhaseLatency returns the issue→phase offset histogram (nanoseconds)
// over sampled spans of the class, or nil on a nil tracer.
func (t *Tracer) PhaseLatency(txn coherence.Txn, ph Phase) *stats.ExpHistogram {
	if t == nil {
		return nil
	}
	return t.phase[txn][ph]
}

// Records calls fn for every completed sampled record, in processor
// order then claim order (oldest surviving first).
func (t *Tracer) Records(fn func(r Record)) {
	if t == nil {
		return
	}
	for p := range t.procs {
		pb := &t.procs[p]
		n := len(pb.recs)
		if n == 0 {
			continue
		}
		// The oldest surviving record sits at claimed % cap once the
		// buffer has wrapped, at 0 otherwise.
		first := 0
		if n == t.cfg.BufferCap && pb.claimed > uint64(n) {
			first = int(pb.claimed % uint64(n))
		}
		for i := 0; i < n; i++ {
			r := pb.recs[(first+i)%n]
			if r.Done {
				fn(r)
			}
		}
	}
}
