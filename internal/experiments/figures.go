package experiments

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/bus"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// FigurePanels groups the three panels of a Figure 3/4/6 column.
type FigurePanels struct {
	ProcUtil    *stats.Figure // processor utilization (%)
	NetUtil     *stats.Figure // ring/bus utilization (%)
	MissLatency *stats.Figure // average miss latency (ns)
}

// sweepCycles is the paper's x axis: processor cycle 1–20 ns.
func sweepCycles() []sim.Time {
	var out []sim.Time
	for ns := 1; ns <= 20; ns++ {
		out = append(out, sim.Time(ns)*sim.Nanosecond)
	}
	return out
}

// addSweep evaluates a model across the processor-cycle sweep and adds
// the three series.
func addSweep(p *FigurePanels, name string, eval func(sim.Time) analytic.Eval) {
	su := p.ProcUtil.AddSeries(name)
	sn := p.NetUtil.AddSeries(name)
	sl := p.MissLatency.AddSeries(name)
	for _, cyc := range sweepCycles() {
		ev := eval(cyc)
		x := cyc.Nanoseconds()
		su.Add(x, 100*ev.ProcUtil)
		sn.Add(x, 100*ev.NetworkUtil)
		sl.Add(x, ev.MissLatencyNS)
	}
}

func newPanels(title string) *FigurePanels {
	return &FigurePanels{
		ProcUtil:    stats.NewFigure(title+" — processor utilization", "cycle(ns)", "util(%)"),
		NetUtil:     stats.NewFigure(title+" — network utilization", "cycle(ns)", "util(%)"),
		MissLatency: stats.NewFigure(title+" — miss latency", "cycle(ns)", "latency(ns)"),
	}
}

// Figure3 reproduces "snooping vs directories; 500 MHz 32-bit rings"
// for one SPLASH benchmark: processor utilization, ring utilization
// and miss latency vs processor cycle, with one snooping and one
// directory curve per system size (8, 16, 32).
func (r *Runner) Figure3(bench string) *FigurePanels {
	var pts []SimPoint
	for _, cpus := range splashSizes {
		for _, proto := range []core.Protocol{core.SnoopRing, core.DirectoryRing} {
			pts = append(pts, SimPoint{proto, bench, cpus})
		}
	}
	r.Prefetch(pts...)

	p := newPanels("Figure 3 " + bench)
	for _, cpus := range splashSizes {
		for _, proto := range []core.Protocol{core.SnoopRing, core.DirectoryRing} {
			cal, _ := r.Simulate(proto, bench, cpus)
			model := analytic.NewRingModel(ring.Config{}, cal, proto == core.SnoopRing)
			label := fmt.Sprintf("%s-%d", shortProto(proto), cpus)
			addSweep(p, label, model.Evaluate)
		}
	}
	return p
}

// Figure4 reproduces the same three panels for the 64-processor
// benchmarks FFT, WEATHER and SIMPLE.
func (r *Runner) Figure4() *FigurePanels {
	var pts []SimPoint
	for _, bench := range workload.MITNames() {
		for _, proto := range []core.Protocol{core.SnoopRing, core.DirectoryRing} {
			pts = append(pts, SimPoint{proto, bench, 64})
		}
	}
	r.Prefetch(pts...)

	p := newPanels("Figure 4 FFT/WEATHER/SIMPLE (64 CPUs)")
	for _, bench := range workload.MITNames() {
		for _, proto := range []core.Protocol{core.SnoopRing, core.DirectoryRing} {
			cal, _ := r.Simulate(proto, bench, 64)
			model := analytic.NewRingModel(ring.Config{}, cal, proto == core.SnoopRing)
			label := fmt.Sprintf("%s-%s", bench, shortProto(proto))
			addSweep(p, label, model.Evaluate)
		}
	}
	return p
}

// Figure5Row is one bar of the Figure 5 breakdown.
type Figure5Row struct {
	Bench string
	CPUs  int
	// Percentages over remote misses.
	OneCycleClean, OneCycleDirty, TwoCycle float64
}

// Figure5Data computes the directory-protocol miss breakdown for every
// benchmark × size.
func (r *Runner) Figure5Data() []Figure5Row {
	var pts []SimPoint
	for _, bench := range workload.SPLASHNames() {
		for _, cpus := range splashSizes {
			pts = append(pts, SimPoint{core.DirectoryRing, bench, cpus})
		}
	}
	for _, bench := range workload.MITNames() {
		pts = append(pts, SimPoint{core.DirectoryRing, bench, 64})
	}
	r.Prefetch(pts...)

	var rows []Figure5Row
	add := func(bench string, cpus int) {
		_, m := r.Simulate(core.DirectoryRing, bench, cpus)
		c1 := float64(m.ClassCount[coherence.OneCycleClean])
		d1 := float64(m.ClassCount[coherence.OneCycleDirty])
		t2 := float64(m.ClassCount[coherence.TwoCycle])
		tot := c1 + d1 + t2
		if tot == 0 {
			tot = 1
		}
		rows = append(rows, Figure5Row{
			Bench: bench, CPUs: cpus,
			OneCycleClean: 100 * c1 / tot,
			OneCycleDirty: 100 * d1 / tot,
			TwoCycle:      100 * t2 / tot,
		})
	}
	for _, bench := range workload.SPLASHNames() {
		for _, cpus := range splashSizes {
			add(bench, cpus)
		}
	}
	for _, bench := range workload.MITNames() {
		add(bench, 64)
	}
	return rows
}

// Figure5 renders the breakdown as a table (the paper draws stacked
// bars; the numbers are the reproduction target).
func (r *Runner) Figure5() *stats.Table {
	t := stats.NewTable(
		"Figure 5: breakdown of remote misses, directory protocol (%)",
		"benchmark", "1-cycle-clean", "1-cycle-dirty", "2-cycle")
	for _, row := range r.Figure5Data() {
		t.AddRow(benchLabel(row.Bench, row.CPUs),
			fmt.Sprintf("%.1f", row.OneCycleClean),
			fmt.Sprintf("%.1f", row.OneCycleDirty),
			fmt.Sprintf("%.1f", row.TwoCycle))
	}
	return t
}

// Figure6 reproduces "32-bit slotted ring vs 64-bit split transaction
// bus" for one benchmark at one size: 500/250 MHz rings against
// 100/50 MHz buses, all under snooping.
func (r *Runner) Figure6(bench string, cpus int) *FigurePanels {
	p := newPanels(fmt.Sprintf("Figure 6 %s-%d", bench, cpus))
	r.Prefetch(SimPoint{core.SnoopRing, bench, cpus}, SimPoint{core.SnoopBus, bench, cpus})
	calRing, _ := r.Simulate(core.SnoopRing, bench, cpus)
	calBus, _ := r.Simulate(core.SnoopBus, bench, cpus)
	for _, mhz := range []int{500, 250} {
		model := analytic.NewRingModel(ring.Config{ClockPS: clockForMHz(mhz)}, calRing, true)
		addSweep(p, fmt.Sprintf("ring-%dMHz", mhz), model.Evaluate)
	}
	for _, mhz := range []int{100, 50} {
		model := analytic.NewBusModel(bus.Config{ClockPS: clockForMHz(mhz)}, calBus)
		addSweep(p, fmt.Sprintf("bus-%dMHz", mhz), model.Evaluate)
	}
	return p
}

func shortProto(p core.Protocol) string {
	switch p {
	case core.SnoopRing:
		return "snoop"
	case core.DirectoryRing:
		return "dir"
	case core.SCIRing:
		return "sci"
	case core.SnoopBus:
		return "bus"
	}
	return p.String()
}

// Plot renders the three panels as ASCII line charts.
func (p *FigurePanels) Plot(width, height int) string {
	return p.ProcUtil.Plot(width, height) + "\n" +
		p.NetUtil.Plot(width, height) + "\n" +
		p.MissLatency.Plot(width, height)
}

// ExtensionHierarchyFigure sweeps processor speed for the flat ring
// against the cluster hierarchy using the analytical models (the same
// hybrid methodology as the paper's figures, applied to the extension).
func (r *Runner) ExtensionHierarchyFigure(bench string, cpus, clusters int) *FigurePanels {
	p := newPanels(fmt.Sprintf("Extension: flat vs %d×%d hierarchy, %s", clusters, cpus/clusters, bench))

	calFlat, _ := r.Simulate(core.SnoopRing, bench, cpus)
	flat := analytic.NewRingModel(ring.Config{}, calFlat, true)
	addSweep(p, "flat", flat.Evaluate)

	// Calibrate the hierarchy with a moderately clustered workload.
	wcfg, warmup := r.workloadFor(bench, cpus)
	wcfg.Clusters = clusters
	wcfg.ClusterAffinity = 0.5
	gen := workload.NewGenerator(wcfg)
	m := core.NewSystem(r.sysCfg(core.Config{
		Protocol: core.HierRing, Clusters: clusters, WarmupDataRefs: warmup,
	}), gen).Run()
	hierModel := analytic.NewHierModel(ring.Config{}, analytic.FromMetrics(m, cpus), clusters)
	addSweep(p, "hier", hierModel.Evaluate)
	return p
}
