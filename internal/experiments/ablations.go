package experiments

import (
	"fmt"

	"repro/internal/cache"

	"repro/internal/core"
	"repro/internal/hier"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AblationSlotMix checks the paper's claim that one probe-slot pair per
// block slot is the right frame mix for the snooping protocol: more
// probe capacity only pays if probes are the bottleneck, and they are
// not, because probes and block messages are generated in roughly
// equal numbers while probes traverse the whole ring and blocks half
// of it.
func (r *Runner) AblationSlotMix(bench string, cpus int) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ablation: slot mix (probe pairs per block slot), snooping, %s/%d, 5 ns CPUs", bench, cpus),
		"pairs", "exec(us)", "probe util", "block util", "miss lat(ns)")
	for _, pairs := range []int{1, 2, 3} {
		sys, m := r.runSystem(core.Config{
			Protocol:  core.SnoopRing,
			ProcCycle: 5 * sim.Nanosecond,
			Ring:      ring.Config{ProbePairsPerBlockSlot: pairs},
		}, bench, cpus)
		rg := sys.Ring()
		probeU := (rg.Utilization(ring.ProbeEven) + rg.Utilization(ring.ProbeOdd)) / 2
		t.AddRow(fmt.Sprintf("%d", pairs),
			fmt.Sprintf("%.1f", m.ExecTime.Nanoseconds()/1000),
			fmt.Sprintf("%.3f", probeU),
			fmt.Sprintf("%.3f", rg.Utilization(ring.BlockSlot)),
			fmt.Sprintf("%.0f", m.MissLatency.Value()))
	}
	return t
}

// AblationSlotMixExecTimes returns the execution times behind the slot
// mix ablation, keyed by probe pairs, for programmatic checks.
func (r *Runner) AblationSlotMixExecTimes(bench string, cpus int) map[int]sim.Time {
	var cfgs []core.Config
	for _, pairs := range []int{1, 2, 3} {
		cfgs = append(cfgs, core.Config{
			Protocol:  core.SnoopRing,
			ProcCycle: 5 * sim.Nanosecond,
			Ring:      ring.Config{ProbePairsPerBlockSlot: pairs},
		})
	}
	r.prefetchConfigs(cfgs, bench, cpus)
	out := make(map[int]sim.Time)
	for i, pairs := range []int{1, 2, 3} {
		out[pairs] = r.SimulateAt(cfgs[i], bench, cpus).ExecTime
	}
	return out
}

// AblationStarvationRule checks the paper's claim that forbidding a
// node from immediately reusing a slot it just freed has "no
// significant impact on system performance".
func (r *Runner) AblationStarvationRule(bench string, cpus int) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ablation: anti-starvation slot-reuse rule, snooping, %s/%d, 5 ns CPUs", bench, cpus),
		"rule", "exec(us)", "miss lat(ns)", "deferrals")
	for _, disable := range []bool{false, true} {
		sys, m := r.runSystem(core.Config{
			Protocol:  core.SnoopRing,
			ProcCycle: 5 * sim.Nanosecond,
			Ring:      ring.Config{DisableStarvationRule: disable},
		}, bench, cpus)
		name := "on"
		if disable {
			name = "off"
		}
		var defers uint64
		for c := 0; c < ring.NumSlotClasses; c++ {
			defers += sys.Ring().StarvationDeferrals(ring.SlotClass(c))
		}
		t.AddRow(name,
			fmt.Sprintf("%.1f", m.ExecTime.Nanoseconds()/1000),
			fmt.Sprintf("%.0f", m.MissLatency.Value()),
			fmt.Sprintf("%d", defers))
	}
	return t
}

// AblationStarvationRuleExecTimes returns the two execution times
// (rule on, rule off) for programmatic checks.
func (r *Runner) AblationStarvationRuleExecTimes(bench string, cpus int) (on, off sim.Time) {
	cfgs := []core.Config{
		{Protocol: core.SnoopRing, ProcCycle: 5 * sim.Nanosecond},
		{Protocol: core.SnoopRing, ProcCycle: 5 * sim.Nanosecond,
			Ring: ring.Config{DisableStarvationRule: true}},
	}
	r.prefetchConfigs(cfgs, bench, cpus)
	mOn := r.SimulateAt(cfgs[0], bench, cpus)
	mOff := r.SimulateAt(cfgs[1], bench, cpus)
	return mOn.ExecTime, mOff.ExecTime
}

// AblationWideRing checks the paper's 64-bit ring remark: utilization
// never surpasses 50 % and snooping beats the directory protocol in
// all cases.
func (r *Runner) AblationWideRing(bench string, cpus int) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ablation: 64-bit parallel ring, %s/%d, 2 ns CPUs", bench, cpus),
		"protocol", "exec(us)", "ring util", "miss lat(ns)")
	var cfgs []core.Config
	for _, proto := range []core.Protocol{core.SnoopRing, core.DirectoryRing} {
		cfgs = append(cfgs, core.Config{
			Protocol:  proto,
			ProcCycle: 2 * sim.Nanosecond,
			Ring:      ring.Config{WidthBits: 64},
		})
	}
	r.prefetchConfigs(cfgs, bench, cpus)
	for i, proto := range []core.Protocol{core.SnoopRing, core.DirectoryRing} {
		m := r.SimulateAt(cfgs[i], bench, cpus)
		t.AddRow(shortProto(proto),
			fmt.Sprintf("%.1f", m.ExecTime.Nanoseconds()/1000),
			fmt.Sprintf("%.3f", m.NetworkUtil),
			fmt.Sprintf("%.0f", m.MissLatency.Value()))
	}
	return t
}

// AblationWideRingData returns (snoop, directory) metrics on the
// 64-bit ring for programmatic checks.
func (r *Runner) AblationWideRingData(bench string, cpus int) (snoop, dir *core.Metrics) {
	cfgs := []core.Config{
		{Protocol: core.SnoopRing, ProcCycle: 2 * sim.Nanosecond,
			Ring: ring.Config{WidthBits: 64}},
		{Protocol: core.DirectoryRing, ProcCycle: 2 * sim.Nanosecond,
			Ring: ring.Config{WidthBits: 64}},
	}
	r.prefetchConfigs(cfgs, bench, cpus)
	return r.SimulateAt(cfgs[0], bench, cpus), r.SimulateAt(cfgs[1], bench, cpus)
}

// runSystem builds and runs one system over the calibrated workload.
func (r *Runner) runSystem(cfg core.Config, bench string, cpus int) (*core.System, *core.Metrics) {
	wcfg, warmup := r.workloadFor(bench, cpus)
	gen := workload.NewGenerator(wcfg)
	if cfg.WarmupDataRefs == 0 {
		cfg.WarmupDataRefs = warmup
	}
	sys := core.NewSystem(r.sysCfg(cfg), gen)
	return sys, sys.Run()
}

// AccessControlResult is one fabric's mean delivery latency under an
// open-loop probe load.
type AccessControlResult struct {
	Fabric    string
	MeanLatNS float64
	Delivered int
}

// AblationAccessControl compares the three ring access-control
// mechanisms of Section 2 — slotted, register insertion, and token
// passing — at the fabric level: every node offers point-to-point
// probe traffic at a fixed rate, and the mean source-to-destination
// delivery latency is measured. Register insertion wins unloaded,
// token passing collapses under load (one message in flight), and the
// slotted ring sits in between with bounded, fair waits.
func AblationAccessControl(nodes int, interArrival sim.Time, messages int, seed uint64) []AccessControlResult {
	fabrics := []struct {
		name  string
		build func(k *sim.Kernel) ring.Sender
	}{
		{"slotted", func(k *sim.Kernel) ring.Sender { return ring.New(k, ring.Config{Nodes: nodes}) }},
		{"insertion", func(k *sim.Kernel) ring.Sender { return ring.NewInsertionRing(k, ring.Config{Nodes: nodes}) }},
		{"token", func(k *sim.Kernel) ring.Sender { return ring.NewTokenRing(k, ring.Config{Nodes: nodes}) }},
	}
	var out []AccessControlResult
	for _, f := range fabrics {
		k := sim.NewKernel()
		snd := f.build(k)
		rng := sim.NewRand(seed)
		var sumLat sim.Time
		delivered := 0
		var at sim.Time
		for i := 0; i < messages; i++ {
			src := rng.Intn(nodes)
			dst := (src + 1 + rng.Intn(nodes-1)) % nodes
			at += sim.Time(rng.Intn(int(2*interArrival) + 1))
			start := at
			k.At(at, func() {
				snd.Send(src, dst, ring.ProbeEven, nil, func(done sim.Time) {
					sumLat += done - start
					delivered++
				})
			})
		}
		k.Run()
		mean := 0.0
		if delivered > 0 {
			mean = (sumLat / sim.Time(delivered)).Nanoseconds()
		}
		out = append(out, AccessControlResult{Fabric: f.name, MeanLatNS: mean, Delivered: delivered})
	}
	return out
}

// AblationAccessControlTable renders the access-control comparison at
// light and heavy load.
func AblationAccessControlTable(nodes int) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ablation: ring access control, %d nodes, point-to-point probes", nodes),
		"fabric", "light-load lat(ns)", "heavy-load lat(ns)")
	light := AblationAccessControl(nodes, 2000*sim.Nanosecond, 300, 1)
	heavy := AblationAccessControl(nodes, 10*sim.Nanosecond, 300, 1)
	for i := range light {
		t.AddRow(light[i].Fabric,
			fmt.Sprintf("%.0f", light[i].MeanLatNS),
			fmt.Sprintf("%.0f", heavy[i].MeanLatNS))
	}
	return t
}

// LatencyToleranceResult pairs blocking and weak-ordering runs for one
// interconnect.
type LatencyToleranceResult struct {
	Fabric             string
	BlockingExecUS     float64
	NonBlockingExecUS  float64
	SpeedupPct         float64
	BlockingNetUtil    float64
	NonBlockingNetUtil float64
	BufferedStores     uint64
}

// AblationLatencyTolerance tests the paper's closing argument
// (Section 6): latency-tolerance techniques such as weak ordering
// increase interconnect load, so they help on the underutilized
// slotted ring but are self-defeating on a bus running close to
// saturation. Stores retire through a write buffer (weak ordering);
// loads still block.
func (r *Runner) AblationLatencyTolerance(bench string, cpus int) []LatencyToleranceResult {
	var cfgs []core.Config
	for _, fabric := range []core.Protocol{core.SnoopRing, core.SnoopBus} {
		base := core.Config{Protocol: fabric, ProcCycle: 5 * sim.Nanosecond}
		nb := base
		nb.NonBlockingStores = true
		cfgs = append(cfgs, base, nb)
	}
	r.prefetchConfigs(cfgs, bench, cpus)
	var out []LatencyToleranceResult
	for i, fabric := range []core.Protocol{core.SnoopRing, core.SnoopBus} {
		blocking := r.SimulateAt(cfgs[2*i], bench, cpus)
		weak := r.SimulateAt(cfgs[2*i+1], bench, cpus)
		be := blocking.ExecTime.Nanoseconds() / 1000
		ne := weak.ExecTime.Nanoseconds() / 1000
		out = append(out, LatencyToleranceResult{
			Fabric:             shortProto(fabric),
			BlockingExecUS:     be,
			NonBlockingExecUS:  ne,
			SpeedupPct:         100 * (be - ne) / be,
			BlockingNetUtil:    blocking.NetworkUtil,
			NonBlockingNetUtil: weak.NetworkUtil,
			BufferedStores:     weak.BufferedStores,
		})
	}
	return out
}

// AblationLatencyToleranceTable renders the weak-ordering ablation.
func (r *Runner) AblationLatencyToleranceTable(bench string, cpus int) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ablation: weak ordering (non-blocking stores), %s/%d, 5 ns CPUs", bench, cpus),
		"fabric", "exec blocking(us)", "exec weak(us)", "speedup", "net util blocking", "net util weak")
	for _, row := range r.AblationLatencyTolerance(bench, cpus) {
		t.AddRow(row.Fabric,
			fmt.Sprintf("%.1f", row.BlockingExecUS),
			fmt.Sprintf("%.1f", row.NonBlockingExecUS),
			fmt.Sprintf("%.1f%%", row.SpeedupPct),
			fmt.Sprintf("%.3f", row.BlockingNetUtil),
			fmt.Sprintf("%.3f", row.NonBlockingNetUtil))
	}
	return t
}

// LatencyDecompositionRow splits one system's average miss latency into
// contention (queueing for slots, arbitration, memory banks) and pure
// delay (propagation + fixed service).
type LatencyDecompositionRow struct {
	Fabric         string
	MissLatNS      float64
	ContentionNS   float64
	ContentionFrac float64
	NetUtil        float64
}

// LatencyDecomposition quantifies the paper's Section 6 observation
// that the slotted ring's large latencies are "not caused by heavy
// contention but by pure delays" — there is latency to tolerate while
// the network stays underutilized — whereas a fast-processor bus's
// latency is mostly queueing. Contention is measured as the mean
// slot-acquisition (or bus-arbitration) wait per miss.
func (r *Runner) LatencyDecomposition(bench string, cpus, cycleNS int) []LatencyDecompositionRow {
	var out []LatencyDecompositionRow
	cyc := sim.Time(cycleNS) * sim.Nanosecond

	sys, m := r.runSystem(core.Config{Protocol: core.SnoopRing, ProcCycle: cyc}, bench, cpus)
	rg := sys.Ring()
	// A snooping miss waits once for a probe slot and once for a block
	// slot.
	probeWait := (rg.MeanWait(ring.ProbeEven) + rg.MeanWait(ring.ProbeOdd)) / 2
	wait := (probeWait + rg.MeanWait(ring.BlockSlot)).Nanoseconds()
	out = append(out, LatencyDecompositionRow{
		Fabric:         "ring-500MHz",
		MissLatNS:      m.MissLatency.Value(),
		ContentionNS:   wait,
		ContentionFrac: wait / m.MissLatency.Value(),
		NetUtil:        m.NetworkUtil,
	})

	sysB, mb := r.runSystem(core.Config{Protocol: core.SnoopBus, ProcCycle: cyc}, bench, cpus)
	// A bus miss arbitrates twice: request and response tenures.
	waitB := (2 * sysB.Bus().MeanArbWait()).Nanoseconds()
	out = append(out, LatencyDecompositionRow{
		Fabric:         "bus-50MHz",
		MissLatNS:      mb.MissLatency.Value(),
		ContentionNS:   waitB,
		ContentionFrac: waitB / mb.MissLatency.Value(),
		NetUtil:        mb.NetworkUtil,
	})
	return out
}

// LatencyDecompositionTable renders the decomposition.
func (r *Runner) LatencyDecompositionTable(bench string, cpus, cycleNS int) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Latency decomposition, %s/%d, %d ns CPUs", bench, cpus, cycleNS),
		"fabric", "miss lat(ns)", "contention(ns)", "contention frac", "net util")
	for _, row := range r.LatencyDecomposition(bench, cpus, cycleNS) {
		t.AddRow(row.Fabric,
			fmt.Sprintf("%.0f", row.MissLatNS),
			fmt.Sprintf("%.0f", row.ContentionNS),
			fmt.Sprintf("%.2f", row.ContentionFrac),
			fmt.Sprintf("%.3f", row.NetUtil))
	}
	return t
}

// HierarchyResult is one machine's outcome in the hierarchical-ring
// extension experiment.
type HierarchyResult struct {
	Machine     string
	ExecUS      float64
	MissLatNS   float64
	NetUtil     float64
	GlobalShare float64 // fraction of coherence transactions crossing the global ring
}

// ExtensionHierarchy evaluates the related-work direction the paper
// closes with (Hector, KSR1): a two-level hierarchy of slotted rings
// against the flat ring, on the same workload at two localities. With
// cluster affinity, most migratory sharing stays inside a cluster and
// pays only the short local round trip; without it, transactions pay
// local + global + local.
func (r *Runner) ExtensionHierarchy(bench string, cpus, clusters int) []HierarchyResult {
	wcfg, warmup := r.workloadFor(bench, cpus)
	var out []HierarchyResult

	run := func(machine string, cfg core.Config, w workload.Config) {
		gen := workload.NewGenerator(w)
		cfg.WarmupDataRefs = warmup
		sys := core.NewSystem(r.sysCfg(cfg), gen)
		m := sys.Run()
		res := HierarchyResult{
			Machine:   machine,
			ExecUS:    m.ExecTime.Nanoseconds() / 1000,
			MissLatNS: m.MissLatency.Value(),
			NetUtil:   m.NetworkUtil,
		}
		if h, ok := sys.EngineImpl().(*hier.Engine); ok {
			res.GlobalShare = h.GlobalShare()
		} else {
			res.GlobalShare = 1
		}
		out = append(out, res)
	}

	base := core.Config{Protocol: core.SnoopRing, ProcCycle: 5 * sim.Nanosecond}
	run("flat-ring", base, wcfg)

	hcfg := core.Config{Protocol: core.HierRing, ProcCycle: 5 * sim.Nanosecond, Clusters: clusters}
	w0 := wcfg
	w0.Clusters = clusters
	w0.ClusterAffinity = 0
	run("hier-noaffinity", hcfg, w0)

	w9 := wcfg
	w9.Clusters = clusters
	w9.ClusterAffinity = 0.9
	run("hier-affinity0.9", hcfg, w9)
	return out
}

// ExtensionHierarchyTable renders the comparison.
func (r *Runner) ExtensionHierarchyTable(bench string, cpus, clusters int) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Extension: hierarchical rings (%d×%d) vs flat, %s/%d, 5 ns CPUs",
			clusters, cpus/clusters, bench, cpus),
		"machine", "exec(us)", "miss lat(ns)", "net util", "global txn share")
	for _, row := range r.ExtensionHierarchy(bench, cpus, clusters) {
		t.AddRow(row.Machine,
			fmt.Sprintf("%.1f", row.ExecUS),
			fmt.Sprintf("%.0f", row.MissLatNS),
			fmt.Sprintf("%.3f", row.NetUtil),
			fmt.Sprintf("%.2f", row.GlobalShare))
	}
	return t
}

// BlockSizeResult is one cache/ring block size's outcome.
type BlockSizeResult struct {
	BlockBytes   int
	ExecUS       float64
	TotalMissPct float64
	MissLatNS    float64
	NetUtil      float64
	FrameNS      float64 // Table 3's snooping-rate constraint
}

// AblationBlockSize sweeps the cache/ring block size for the snooping
// ring. Larger blocks exploit the workload's spatial locality (private
// and cold data walk sequentially, popular read-mostly blocks coalesce)
// but stretch the ring frame — each block slot carries more data words,
// raising both the per-message slot occupancy and Table 3's probe
// inter-arrival bound on the snooper. The paper fixes 16-byte blocks;
// the sweep shows the trade it sits on.
func (r *Runner) AblationBlockSize(bench string, cpus int) []BlockSizeResult {
	var cfgs []core.Config
	for _, bb := range []int{16, 32, 64} {
		cfgs = append(cfgs, core.Config{
			Protocol:  core.SnoopRing,
			ProcCycle: 5 * sim.Nanosecond,
			Cache:     cache.Config{SizeBytes: 128 << 10, BlockBytes: bb},
			Ring:      ring.Config{BlockBytes: bb},
		})
	}
	r.prefetchConfigs(cfgs, bench, cpus)
	var out []BlockSizeResult
	for i, bb := range []int{16, 32, 64} {
		m := r.SimulateAt(cfgs[i], bench, cpus)
		g := ring.NewGeometry(ring.Config{Nodes: cpus, BlockBytes: bb})
		out = append(out, BlockSizeResult{
			BlockBytes:   bb,
			ExecUS:       m.ExecTime.Nanoseconds() / 1000,
			TotalMissPct: 100 * m.TotalMissRate(),
			MissLatNS:    m.MissLatency.Value(),
			NetUtil:      m.NetworkUtil,
			FrameNS:      g.FrameTime().Nanoseconds(),
		})
	}
	return out
}

// AblationBlockSizeTable renders the sweep.
func (r *Runner) AblationBlockSizeTable(bench string, cpus int) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ablation: cache/ring block size, snooping, %s/%d, 5 ns CPUs", bench, cpus),
		"block", "exec(us)", "total MR%", "miss lat(ns)", "ring util", "snoop rate(ns)")
	for _, row := range r.AblationBlockSize(bench, cpus) {
		t.AddRow(fmt.Sprintf("%dB", row.BlockBytes),
			fmt.Sprintf("%.1f", row.ExecUS),
			fmt.Sprintf("%.2f", row.TotalMissPct),
			fmt.Sprintf("%.0f", row.MissLatNS),
			fmt.Sprintf("%.3f", row.NetUtil),
			fmt.Sprintf("%.0f", row.FrameNS))
	}
	return t
}

// MultitaskingResult is one context-switch quantum's outcome.
type MultitaskingResult struct {
	QuantumRefs  int // 0 = no switching
	TotalMissPct float64
	ExecUS       float64
	NetUtil      float64
}

// AblationMultitasking quantifies the multitasking context the paper's
// abstract frames the study in: context switches bring fresh private
// working sets that cool the caches, raising the miss rate and hence
// the interconnect load the ring must carry.
func (r *Runner) AblationMultitasking(bench string, cpus int) []MultitaskingResult {
	wcfg, warmup := r.workloadFor(bench, cpus)
	var out []MultitaskingResult
	for _, quantum := range []int{0, 5000, 1500} {
		w := wcfg
		w.ContextSwitchRefs = quantum
		gen := workload.NewGenerator(w)
		m := core.NewSystem(r.sysCfg(core.Config{
			Protocol: core.SnoopRing, ProcCycle: 5 * sim.Nanosecond, WarmupDataRefs: warmup,
		}), gen).Run()
		out = append(out, MultitaskingResult{
			QuantumRefs:  quantum,
			TotalMissPct: 100 * m.TotalMissRate(),
			ExecUS:       m.ExecTime.Nanoseconds() / 1000,
			NetUtil:      m.NetworkUtil,
		})
	}
	return out
}

// AblationMultitaskingTable renders the quantum sweep.
func (r *Runner) AblationMultitaskingTable(bench string, cpus int) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ablation: multitasking context switches, snooping ring, %s/%d, 5 ns CPUs", bench, cpus),
		"quantum(refs)", "total MR%", "exec(us)", "ring util")
	for _, row := range r.AblationMultitasking(bench, cpus) {
		q := "none"
		if row.QuantumRefs > 0 {
			q = fmt.Sprintf("%d", row.QuantumRefs)
		}
		t.AddRow(q,
			fmt.Sprintf("%.2f", row.TotalMissPct),
			fmt.Sprintf("%.1f", row.ExecUS),
			fmt.Sprintf("%.3f", row.NetUtil))
	}
	return t
}
