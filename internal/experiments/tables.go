package experiments

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Table1 reproduces "Distribution of the number of ring traversals,
// full directory vs. linked list" for the three 16-processor SPLASH
// benchmarks: the percentage of misses and invalidations needing 1, 2,
// and 3-or-more traversals under each directory organization.
func (r *Runner) Table1() *stats.Table {
	t := stats.NewTable(
		"Table 1: ring traversals, full map vs linked list (%)",
		"benchmark", "txn", "proto", "1", "2", "3+")
	r.prefetchTable1()
	for _, bench := range workload.SPLASHNames() {
		for _, proto := range []core.Protocol{core.DirectoryRing, core.SCIRing} {
			name := "full"
			if proto == core.SCIRing {
				name = "l.list"
			}
			_, m := r.Simulate(proto, bench, 16)
			t.AddRow(benchLabel(bench, 16), "miss", name,
				fmt.Sprintf("%.1f", m.MissTraversals.Percent(1)),
				fmt.Sprintf("%.1f", m.MissTraversals.Percent(2)),
				fmt.Sprintf("%.1f", m.MissTraversals.PercentAtLeast(3)))
			t.AddRow(benchLabel(bench, 16), "inv", name,
				fmt.Sprintf("%.1f", m.InvTraversals.Percent(1)),
				fmt.Sprintf("%.1f", m.InvTraversals.Percent(2)),
				fmt.Sprintf("%.1f", m.InvTraversals.PercentAtLeast(3)))
		}
	}
	return t
}

// Table1Data returns the traversal distributions behind Table 1 for
// programmatic checks: percentages for (benchmark, protocol) pairs.
type Table1Row struct {
	Bench               string
	Protocol            core.Protocol
	Miss1, Miss2, Miss3 float64
	Inv1, Inv2, Inv3    float64
}

// prefetchTable1 warms the directory-organization simulations shared
// by Table1 and Table1Data.
func (r *Runner) prefetchTable1() {
	var pts []SimPoint
	for _, bench := range workload.SPLASHNames() {
		for _, proto := range []core.Protocol{core.DirectoryRing, core.SCIRing} {
			pts = append(pts, SimPoint{proto, bench, 16})
		}
	}
	r.Prefetch(pts...)
}

// Table1Data computes the Table 1 rows.
func (r *Runner) Table1Data() []Table1Row {
	var rows []Table1Row
	r.prefetchTable1()
	for _, bench := range workload.SPLASHNames() {
		for _, proto := range []core.Protocol{core.DirectoryRing, core.SCIRing} {
			_, m := r.Simulate(proto, bench, 16)
			rows = append(rows, Table1Row{
				Bench:    bench,
				Protocol: proto,
				Miss1:    m.MissTraversals.Percent(1),
				Miss2:    m.MissTraversals.Percent(2),
				Miss3:    m.MissTraversals.PercentAtLeast(3),
				Inv1:     m.InvTraversals.Percent(1),
				Inv2:     m.InvTraversals.Percent(2),
				Inv3:     m.InvTraversals.PercentAtLeast(3),
			})
		}
	}
	return rows
}

// Table2 reproduces the trace-characteristics table: the synthetic
// workloads' measured statistics next to the paper's targets.
func (r *Runner) Table2() *stats.Table {
	t := stats.NewTable(
		"Table 2: trace characteristics (measured synthetic vs paper target)",
		"benchmark", "proc", "priv%w", "shared%w", "sharedfrac",
		"totMR%", "totMR%paper", "shMR%", "shMR%paper")
	var pts []SimPoint
	for _, p := range workload.Profiles() {
		pts = append(pts, SimPoint{core.DirectoryRing, p.Name, p.CPUs})
	}
	r.Prefetch(pts...)
	for _, p := range workload.Profiles() {
		wcfg, _ := r.workloadFor(p.Name, p.CPUs)
		gen := workload.NewGenerator(wcfg)
		// Measure the stream as it is generated: materializing these
		// traces costs hundreds of megabytes of allocation for
		// statistics that are a running sum.
		s := trace.Stats{Name: p.Name, CPUs: gen.NumCPUs()}
		for cpu := 0; cpu < gen.NumCPUs(); cpu++ {
			for {
				ref, ok := gen.Next(cpu)
				if !ok {
					break
				}
				s.Observe(ref)
			}
		}
		_, m := r.Simulate(core.DirectoryRing, p.Name, p.CPUs)
		t.AddRow(p.Name, fmt.Sprintf("%d", p.CPUs),
			fmt.Sprintf("%.0f", 100*s.PrivateWriteFrac()),
			fmt.Sprintf("%.0f", 100*s.SharedWriteFrac()),
			fmt.Sprintf("%.2f", s.SharedFrac()),
			fmt.Sprintf("%.2f", 100*m.TotalMissRate()),
			fmt.Sprintf("%.2f", 100*p.TotalMissRate),
			fmt.Sprintf("%.2f", 100*m.SharedMissRate()),
			fmt.Sprintf("%.2f", 100*p.SharedMissRate))
	}
	return t
}

// Table3 reproduces the snooping-rate table: minimum probe
// inter-arrival time per dual-directory bank for ring widths × block
// sizes at 500 MHz. This is pure geometry (no simulation).
func (r *Runner) Table3() *stats.Table {
	t := stats.NewTable(
		"Table 3: snooping rate (ns), 500 MHz links, 2-way interleaved dual directory",
		"block", "16-bit", "32-bit", "64-bit")
	for _, blockBytes := range []int{16, 32, 64, 128} {
		row := []string{fmt.Sprintf("%d bytes", blockBytes)}
		for _, width := range []int{16, 32, 64} {
			g := ring.NewGeometry(ring.Config{Nodes: 8, WidthBits: width, BlockBytes: blockBytes})
			row = append(row, fmt.Sprintf("%.0f", g.FrameTime().Nanoseconds()))
		}
		t.AddRow(row...)
	}
	return t
}

// Table3Value returns one snoop-rate cell for programmatic checks.
func Table3Value(widthBits, blockBytes int) float64 {
	g := ring.NewGeometry(ring.Config{Nodes: 8, WidthBits: widthBits, BlockBytes: blockBytes})
	return g.FrameTime().Nanoseconds()
}

// Table4 reproduces "bus clock cycle (ns) to match the performance of
// slotted ring configurations": for each SPLASH benchmark × size and
// each processor speed, the 64-bit bus cycle that reaches the same
// processor utilization as the 250 MHz and 500 MHz 32-bit rings under
// snooping.
func (r *Runner) Table4() *stats.Table {
	t := stats.NewTable(
		"Table 4: bus clock (ns) to match slotted-ring processor utilization",
		"benchmark",
		"250MHz/100MIPS", "250MHz/200MIPS", "250MHz/400MIPS",
		"500MHz/100MIPS", "500MHz/200MIPS", "500MHz/400MIPS")
	var pts []SimPoint
	for _, bench := range workload.SPLASHNames() {
		for _, cpus := range splashSizes {
			pts = append(pts,
				SimPoint{core.SnoopRing, bench, cpus},
				SimPoint{core.SnoopBus, bench, cpus})
		}
	}
	r.Prefetch(pts...)
	for _, bench := range workload.SPLASHNames() {
		for _, cpus := range splashSizes {
			calRing, _ := r.Simulate(core.SnoopRing, bench, cpus)
			calBus, _ := r.Simulate(core.SnoopBus, bench, cpus)
			row := []string{benchLabel(bench, cpus)}
			for _, ringClock := range []int{250, 500} {
				rc := ring.Config{ClockPS: clockForMHz(ringClock)}
				model := analytic.NewRingModel(rc, calRing, true)
				for _, mips := range []int{100, 200, 400} {
					cyc := procCycleForMIPS(mips)
					target := model.Evaluate(cyc).ProcUtil
					ns, ok := analytic.MatchBusClock(bus.Config{}, calBus, cyc, target)
					cell := fmt.Sprintf("%.1f", ns)
					if !ok {
						cell = "<" + cell
					}
					row = append(row, cell)
				}
			}
			t.AddRow(row...)
		}
	}
	return t
}

// Table4Cell computes one Table 4 entry: the matching bus clock in ns.
func (r *Runner) Table4Cell(bench string, cpus, ringMHz, mips int) (float64, bool) {
	calRing, _ := r.Simulate(core.SnoopRing, bench, cpus)
	calBus, _ := r.Simulate(core.SnoopBus, bench, cpus)
	rc := ring.Config{ClockPS: clockForMHz(ringMHz)}
	cyc := procCycleForMIPS(mips)
	target := analytic.NewRingModel(rc, calRing, true).Evaluate(cyc).ProcUtil
	return analytic.MatchBusClock(bus.Config{}, calBus, cyc, target)
}

// clockForMHz converts a link/bus frequency to a cycle time.
func clockForMHz(mhz int) sim.Time {
	return sim.Time(1e6 / float64(mhz)) // picoseconds
}

// Validation reproduces the paper's model-accuracy claim: analytical
// predictions within 15 % of simulated latencies and 5 % (absolute) of
// simulated utilizations, at processor speeds away from the
// calibration point.
func (r *Runner) Validation(bench string, cpus int) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Model validation, %s/%d (calibrated at 50 MIPS)", bench, cpus),
		"proto", "cycle(ns)", "Uproc(model)", "Uproc(sim)", "Unet(model)", "Unet(sim)",
		"lat(model)", "lat(sim)")
	protos := []core.Protocol{core.SnoopRing, core.DirectoryRing, core.SnoopBus}
	var pts []SimPoint
	var cfgs []core.Config
	for _, proto := range protos {
		pts = append(pts, SimPoint{proto, bench, cpus})
		for _, cycNS := range []int{5, 10, 20} {
			cfgs = append(cfgs, core.Config{Protocol: proto, ProcCycle: sim.Time(cycNS) * sim.Nanosecond})
		}
	}
	r.Prefetch(pts...)
	r.prefetchConfigs(cfgs, bench, cpus)
	for _, proto := range protos {
		cal, _ := r.Simulate(proto, bench, cpus)
		for _, cycNS := range []int{5, 10, 20} {
			cyc := sim.Time(cycNS) * sim.Nanosecond
			var ev analytic.Eval
			if proto == core.SnoopBus {
				ev = analytic.NewBusModel(bus.Config{}, cal).Evaluate(cyc)
			} else {
				ev = analytic.NewRingModel(ring.Config{}, cal, proto == core.SnoopRing).Evaluate(cyc)
			}
			m := r.SimulateAt(core.Config{Protocol: proto, ProcCycle: cyc}, bench, cpus)
			t.AddRow(proto.String(), fmt.Sprintf("%d", cycNS),
				fmt.Sprintf("%.3f", ev.ProcUtil), fmt.Sprintf("%.3f", m.ProcUtil()),
				fmt.Sprintf("%.3f", ev.NetworkUtil), fmt.Sprintf("%.3f", m.NetworkUtil),
				fmt.Sprintf("%.0f", ev.MissLatencyNS), fmt.Sprintf("%.0f", m.MissLatency.Value()))
		}
	}
	return t
}
