// Package experiments contains one driver per table and figure of the
// paper's evaluation (Tables 1–4, Figures 3–6), plus the ablations
// DESIGN.md calls out. Each driver follows the paper's hybrid
// methodology: detailed simulations calibrate per-benchmark event
// mixes, and the analytical models sweep the design space to produce
// the actual rows and curves. Results come back as stats.Table /
// stats.Figure values that render the same rows and series the paper
// prints.
//
// The calibration simulations — the expensive part — are scheduled
// through the internal/sweep orchestration engine: drivers prefetch
// the simulation points they need, the engine fans them out over a
// worker pool, and every point is memoized by its job content hash so
// drivers sharing a configuration (e.g. Figure 3 and Figure 5) pay for
// it once, even across overlapping figure sets.
package experiments

import (
	"context"
	"fmt"
	"reflect"
	"sync"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Options scales the experiment suite.
type Options struct {
	// Context cancels in-flight prefetch sweeps (e.g. on SIGINT); nil
	// means context.Background(). Cancellation abandons undispatched
	// simulation points; in-progress ones finish into the cache, and
	// the serial fallback path still computes whatever a driver needs.
	Context context.Context
	// DataRefsPerCPU is the calibration-simulation length; larger is
	// slower but steadier. Default 2000.
	DataRefsPerCPU int
	// Seed drives workload generation and home placement.
	Seed uint64
	// CalibrationIters bounds the burst-fitting loop (default 2; 0
	// uses the default).
	CalibrationIters int
	// Workers sizes the sweep engine's worker pool (default
	// runtime.NumCPU()).
	Workers int
	// CacheDir, when set, persists simulation results to a
	// content-addressed on-disk cache shared across processes.
	CacheDir string
	// Parallel requests partitioned parallel execution of each covered
	// simulation (uncovered configurations fall back to sequential,
	// loudly, with identical results).
	Parallel int
	// OnEvent streams sweep progress events (job start/done/hit).
	OnEvent func(sweep.Event)
}

func (o *Options) fill() {
	if o.Context == nil {
		o.Context = context.Background()
	}
	if o.DataRefsPerCPU == 0 {
		o.DataRefsPerCPU = 2000
	}
	if o.Seed == 0 {
		o.Seed = 0x5eed
	}
	if o.CalibrationIters == 0 {
		o.CalibrationIters = 2
	}
}

// warmupRefs is the per-processor cold-start window excluded from every
// measurement: enough to fill the private hot set and heat the
// migratory pool.
const warmupRefs = 600

// kindCalibrated tags sweep jobs that run over the runner's fitted
// workload rather than the raw Table 2 profile.
const kindCalibrated = "calibrated"

// Runner schedules the experiment simulations through the sweep
// engine. Calibration runs sharing a configuration (e.g. Figure 3 and
// Figure 5) are computed once and memoized; independent points fan out
// over the engine's worker pool. Runner is safe for concurrent use.
type Runner struct {
	opts Options
	eng  *sweep.Engine

	mu   sync.Mutex
	fits map[fitKey]*fitSlot
}

type fitKey struct {
	bench string
	cpus  int
}

// fitSlot computes one benchmark's workload fit exactly once, even
// under concurrent demand from several sweep workers.
type fitSlot struct {
	once   sync.Once
	cfg    workload.Config
	warmup int
}

// NewRunner returns an experiment runner.
func NewRunner(opts Options) *Runner {
	opts.fill()
	r := &Runner{
		opts: opts,
		fits: make(map[fitKey]*fitSlot),
	}
	r.eng = sweep.New(sweep.Options{
		Workers:  opts.Workers,
		CacheDir: opts.CacheDir,
		Parallel: opts.Parallel,
		OnEvent:  opts.OnEvent,
		Executors: map[string]sweep.Executor{
			kindCalibrated: r.runCalibrated,
		},
	})
	return r
}

// SweepStats reports the orchestration engine's counters: jobs run,
// cache hits, per-job wall clock and aggregate simulation throughput.
func (r *Runner) SweepStats() sweep.Stats { return r.eng.Stats() }

// workloadFor returns the calibrated generator configuration for a
// benchmark, fitting the shared-burst scale on first use (against the
// directory engine, whose miss accounting is the richest). Concurrent
// callers for the same benchmark share one fit.
func (r *Runner) workloadFor(bench string, cpus int) (workload.Config, int) {
	k := fitKey{bench, cpus}
	r.mu.Lock()
	s, ok := r.fits[k]
	if !ok {
		s = &fitSlot{}
		r.fits[k] = s
	}
	r.mu.Unlock()
	s.once.Do(func() {
		prof := workload.MustProfile(bench, cpus)
		// Low-miss-rate benchmarks (WATER especially) need longer streams
		// for a statistically meaningful sample of coherence events: aim
		// for at least ~40 shared misses per processor.
		refs := r.opts.DataRefsPerCPU
		if need := int(40 / (prof.SharedMissRate * (1 - prof.PrivateFrac))); need > refs {
			refs = need
		}
		if refs > 20*r.opts.DataRefsPerCPU {
			refs = 20 * r.opts.DataRefsPerCPU
		}
		// Long-burst benchmarks also take longer to reach a steady sharing
		// pattern, so the warmup window scales with the stream.
		warmup := warmupRefs
		if refs/4 > warmup {
			warmup = refs / 4
		}
		wcfg := workload.Config{
			Profile:        prof,
			DataRefsPerCPU: refs + warmup,
			Seed:           r.opts.Seed,
		}
		fitted, _ := core.CalibrateWorkload(
			r.sysCfg(core.Config{WarmupDataRefs: warmup, Protocol: core.DirectoryRing}),
			wcfg, r.opts.CalibrationIters)
		s.cfg, s.warmup = fitted, warmup
	})
	return s.cfg, s.warmup
}

// sysCfg applies the runner's seed and warmup window to a system
// configuration.
func (r *Runner) sysCfg(cfg core.Config) core.Config {
	if cfg.Seed == 0 {
		cfg.Seed = r.opts.Seed
	}
	if cfg.WarmupDataRefs == 0 {
		cfg.WarmupDataRefs = warmupRefs
	}
	return cfg
}

// runCalibrated is the sweep executor for experiment jobs: it rebuilds
// the system configuration the job encodes and runs it over the fitted
// workload. It is a pure function of the job given fixed runner
// options (which the job's hash covers), as the engine's memoization
// requires.
func (r *Runner) runCalibrated(j sweep.Job) (*core.Metrics, error) {
	cfg, err := j.SystemConfig()
	if err != nil {
		return nil, err
	}
	wcfg, warmup := r.workloadFor(j.Benchmark, j.CPUs)
	if cfg.WarmupDataRefs == 0 {
		cfg.WarmupDataRefs = warmup
	}
	gen := workload.NewGenerator(wcfg)
	return core.NewSystem(r.sysCfg(cfg), gen).Run(), nil
}

// calJob builds the sweep job for one calibration simulation at the
// paper's 50 MIPS calibration point.
func (r *Runner) calJob(proto core.Protocol, bench string, cpus int) sweep.Job {
	return sweep.Job{
		Kind:             kindCalibrated,
		Protocol:         proto.String(),
		Benchmark:        bench,
		CPUs:             cpus,
		DataRefsPerCPU:   r.opts.DataRefsPerCPU,
		CalibrationIters: r.opts.CalibrationIters,
		Seed:             r.opts.Seed,
	}
}

// jobForConfig encodes an arbitrary system configuration as a sweep
// job, reporting ok=false when the configuration uses a knob the job
// model does not carry (the caller then simulates directly, uncached).
// The round-trip check makes the encoding self-verifying: a job is
// only used if decoding it reproduces the configuration exactly.
func (r *Runner) jobForConfig(cfg core.Config, bench string, cpus int) (sweep.Job, bool) {
	j := sweep.Job{
		Kind:                 kindCalibrated,
		Protocol:             cfg.Protocol.String(),
		Benchmark:            bench,
		CPUs:                 cpus,
		ProcCyclePS:          int64(cfg.ProcCycle),
		RingClockPS:          int64(cfg.Ring.ClockPS),
		RingWidthBits:        cfg.Ring.WidthBits,
		RingBlockBytes:       cfg.Ring.BlockBytes,
		RingProbePairs:       cfg.Ring.ProbePairsPerBlockSlot,
		RingNoStarvationRule: cfg.Ring.DisableStarvationRule,
		BusClockPS:           int64(cfg.Bus.ClockPS),
		CacheBytes:           cfg.Cache.SizeBytes,
		CacheBlockBytes:      cfg.Cache.BlockBytes,
		PageBytes:            cfg.PageBytes,
		Clusters:             cfg.Clusters,
		NonBlockingStores:    cfg.NonBlockingStores,
		WriteBufferDepth:     cfg.WriteBufferDepth,
		WarmupDataRefs:       cfg.WarmupDataRefs,
		DataRefsPerCPU:       r.opts.DataRefsPerCPU,
		CalibrationIters:     r.opts.CalibrationIters,
		Seed:                 cfg.Seed,
	}
	back, err := j.SystemConfig()
	if err != nil || !reflect.DeepEqual(back, cfg) {
		return sweep.Job{}, false
	}
	return j, true
}

// Simulate runs (or returns the cached) calibration simulation of one
// benchmark under one protocol at 50 MIPS — the paper's calibration
// point — and returns the extracted model inputs plus the raw metrics.
func (r *Runner) Simulate(proto core.Protocol, bench string, cpus int) (analytic.Calibration, *core.Metrics) {
	res, err := r.eng.RunOne(r.calJob(proto, bench, cpus))
	if err != nil {
		panic(fmt.Sprintf("experiments: calibration %v/%s/%d: %v", proto, bench, cpus, err))
	}
	m := res.Metrics()
	return analytic.FromMetrics(m, cpus), m
}

// SimulateAt runs (or recalls) a simulation at an arbitrary processor
// cycle and system configuration — used by the validation experiment
// and the ablations. Results are memoized by job content through the
// sweep engine when the configuration is expressible as a job;
// anything richer falls back to a direct, uncached run.
func (r *Runner) SimulateAt(cfg core.Config, bench string, cpus int) *core.Metrics {
	if cfg.Seed == 0 {
		cfg.Seed = r.opts.Seed
	}
	if job, ok := r.jobForConfig(cfg, bench, cpus); ok {
		if res, err := r.eng.RunOne(job); err == nil {
			return res.Metrics()
		}
	}
	wcfg, warmup := r.workloadFor(bench, cpus)
	gen := workload.NewGenerator(wcfg)
	if cfg.WarmupDataRefs == 0 {
		cfg.WarmupDataRefs = warmup
	}
	return core.NewSystem(r.sysCfg(cfg), gen).Run()
}

// SimPoint names one calibration simulation for prefetching.
type SimPoint struct {
	Proto core.Protocol
	Bench string
	CPUs  int
}

// Prefetch fans the named calibration simulations out over the sweep
// engine's worker pool so that subsequent Simulate calls are cache
// hits. Errors are deferred to the serial path, which reports them.
func (r *Runner) Prefetch(points ...SimPoint) {
	jobs := make([]sweep.Job, len(points))
	for i, p := range points {
		jobs[i] = r.calJob(p.Proto, p.Bench, p.CPUs)
	}
	_, _ = r.eng.Run(r.opts.Context, jobs)
}

// prefetchConfigs fans SimulateAt-style points out over the worker
// pool; configurations the job model cannot express are skipped and
// simulated serially by the caller.
func (r *Runner) prefetchConfigs(cfgs []core.Config, bench string, cpus int) {
	var jobs []sweep.Job
	for _, cfg := range cfgs {
		if cfg.Seed == 0 {
			cfg.Seed = r.opts.Seed
		}
		if job, ok := r.jobForConfig(cfg, bench, cpus); ok {
			jobs = append(jobs, job)
		}
	}
	_, _ = r.eng.Run(r.opts.Context, jobs)
}

// procCycleForMIPS converts a MIPS rating into a processor cycle time
// (one instruction per cycle): 50 MIPS → 20 ns, 400 MIPS → 2.5 ns.
func procCycleForMIPS(mips int) sim.Time {
	return sim.Time(1e6 / float64(mips)) // picoseconds
}

// splashSizes are the system sizes the SPLASH benchmarks are traced at.
var splashSizes = []int{8, 16, 32}

// benchLabel renders "MP3D 16"-style labels.
func benchLabel(bench string, cpus int) string {
	return fmt.Sprintf("%s %d", bench, cpus)
}
