// Package experiments contains one driver per table and figure of the
// paper's evaluation (Tables 1–4, Figures 3–6), plus the ablations
// DESIGN.md calls out. Each driver follows the paper's hybrid
// methodology: detailed simulations calibrate per-benchmark event
// mixes, and the analytical models sweep the design space to produce
// the actual rows and curves. Results come back as stats.Table /
// stats.Figure values that render the same rows and series the paper
// prints.
package experiments

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options scales the experiment suite.
type Options struct {
	// DataRefsPerCPU is the calibration-simulation length; larger is
	// slower but steadier. Default 2000.
	DataRefsPerCPU int
	// Seed drives workload generation and home placement.
	Seed uint64
	// CalibrationIters bounds the burst-fitting loop (default 2; 0
	// uses the default).
	CalibrationIters int
}

func (o *Options) fill() {
	if o.DataRefsPerCPU == 0 {
		o.DataRefsPerCPU = 2000
	}
	if o.Seed == 0 {
		o.Seed = 0x5eed
	}
	if o.CalibrationIters == 0 {
		o.CalibrationIters = 2
	}
}

// warmupRefs is the per-processor cold-start window excluded from every
// measurement: enough to fill the private hot set and heat the
// migratory pool.
const warmupRefs = 600

// Runner caches calibration simulations so that drivers sharing a
// configuration (e.g. Figure 3 and Figure 5) pay for it once.
type Runner struct {
	opts Options
	runs map[runKey]*runEntry
	fits map[fitKey]fitEntry
}

type runKey struct {
	proto core.Protocol
	bench string
	cpus  int
}

type fitKey struct {
	bench string
	cpus  int
}

type fitEntry struct {
	cfg    workload.Config
	warmup int
}

type runEntry struct {
	cal     analytic.Calibration
	metrics *core.Metrics
}

// NewRunner returns an experiment runner.
func NewRunner(opts Options) *Runner {
	opts.fill()
	return &Runner{
		opts: opts,
		runs: make(map[runKey]*runEntry),
		fits: make(map[fitKey]fitEntry),
	}
}

// workloadFor returns the calibrated generator configuration for a
// benchmark, fitting the shared-burst scale on first use (against the
// directory engine, whose miss accounting is the richest).
func (r *Runner) workloadFor(bench string, cpus int) (workload.Config, int) {
	k := fitKey{bench, cpus}
	if e, ok := r.fits[k]; ok {
		return e.cfg, e.warmup
	}
	prof := workload.MustProfile(bench, cpus)
	// Low-miss-rate benchmarks (WATER especially) need longer streams
	// for a statistically meaningful sample of coherence events: aim
	// for at least ~40 shared misses per processor.
	refs := r.opts.DataRefsPerCPU
	if need := int(40 / (prof.SharedMissRate * (1 - prof.PrivateFrac))); need > refs {
		refs = need
	}
	if refs > 20*r.opts.DataRefsPerCPU {
		refs = 20 * r.opts.DataRefsPerCPU
	}
	// Long-burst benchmarks also take longer to reach a steady sharing
	// pattern, so the warmup window scales with the stream.
	warmup := warmupRefs
	if refs/4 > warmup {
		warmup = refs / 4
	}
	wcfg := workload.Config{
		Profile:        prof,
		DataRefsPerCPU: refs + warmup,
		Seed:           r.opts.Seed,
	}
	fitted, _ := core.CalibrateWorkload(
		r.sysCfg(core.Config{WarmupDataRefs: warmup, Protocol: core.DirectoryRing}),
		wcfg, r.opts.CalibrationIters)
	r.fits[k] = fitEntry{cfg: fitted, warmup: warmup}
	return fitted, warmup
}

// sysCfg applies the runner's seed and warmup window to a system
// configuration.
func (r *Runner) sysCfg(cfg core.Config) core.Config {
	if cfg.Seed == 0 {
		cfg.Seed = r.opts.Seed
	}
	if cfg.WarmupDataRefs == 0 {
		cfg.WarmupDataRefs = warmupRefs
	}
	return cfg
}

// Simulate runs (or returns the cached) calibration simulation of one
// benchmark under one protocol at 50 MIPS — the paper's calibration
// point — and returns the extracted model inputs plus the raw metrics.
func (r *Runner) Simulate(proto core.Protocol, bench string, cpus int) (analytic.Calibration, *core.Metrics) {
	k := runKey{proto, bench, cpus}
	if e, ok := r.runs[k]; ok {
		return e.cal, e.metrics
	}
	wcfg, warmup := r.workloadFor(bench, cpus)
	gen := workload.NewGenerator(wcfg)
	m := core.NewSystem(r.sysCfg(core.Config{WarmupDataRefs: warmup, Protocol: proto}), gen).Run()
	e := &runEntry{cal: analytic.FromMetrics(m, cpus), metrics: m}
	r.runs[k] = e
	return e.cal, e.metrics
}

// SimulateAt runs a fresh (uncached) simulation at an arbitrary
// processor cycle and system configuration — used by the validation
// experiment and the ablations.
func (r *Runner) SimulateAt(cfg core.Config, bench string, cpus int) *core.Metrics {
	wcfg, warmup := r.workloadFor(bench, cpus)
	gen := workload.NewGenerator(wcfg)
	if cfg.WarmupDataRefs == 0 {
		cfg.WarmupDataRefs = warmup
	}
	return core.NewSystem(r.sysCfg(cfg), gen).Run()
}

// procCycleForMIPS converts a MIPS rating into a processor cycle time
// (one instruction per cycle): 50 MIPS → 20 ns, 400 MIPS → 2.5 ns.
func procCycleForMIPS(mips int) sim.Time {
	return sim.Time(1e6 / float64(mips)) // picoseconds
}

// splashSizes are the system sizes the SPLASH benchmarks are traced at.
var splashSizes = []int{8, 16, 32}

// benchLabel renders "MP3D 16"-style labels.
func benchLabel(bench string, cpus int) string {
	return fmt.Sprintf("%s %d", bench, cpus)
}
