package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// Tests share one runner (and hence one cache of calibration sims) to
// keep the suite fast.
var (
	runnerOnce sync.Once
	testR      *Runner
)

func runner() *Runner {
	runnerOnce.Do(func() {
		testR = NewRunner(Options{DataRefsPerCPU: 900, Seed: 77})
	})
	return testR
}

func TestTable3MatchesPaperExactly(t *testing.T) {
	// Table 3 is closed-form; it must match the paper cell for cell.
	want := map[[2]int]float64{
		{16, 16}: 40, {32, 16}: 20, {64, 16}: 10,
		{16, 32}: 56, {32, 32}: 28, {64, 32}: 14,
		{16, 64}: 88, {32, 64}: 44, {64, 64}: 22,
		{16, 128}: 152, {32, 128}: 76, {64, 128}: 38,
	}
	for k, v := range want {
		if got := Table3Value(k[0], k[1]); got != v {
			t.Errorf("Table3(%d-bit, %dB) = %v, want %v", k[0], k[1], got, v)
		}
	}
	tab := runner().Table3()
	if tab.NumRows() != 4 {
		t.Fatalf("Table 3 has %d rows, want 4", tab.NumRows())
	}
}

func TestTable1Shapes(t *testing.T) {
	rows := runner().Table1Data()
	if len(rows) != 6 {
		t.Fatalf("Table 1 rows = %d, want 6", len(rows))
	}
	byKey := map[string]Table1Row{}
	for _, r := range rows {
		byKey[r.Bench+"/"+r.Protocol.String()] = r
	}
	for _, bench := range []string{"MP3D", "WATER", "CHOLESKY"} {
		full := byKey[bench+"/directory-ring"]
		list := byKey[bench+"/sci-ring"]
		// Full map never needs three traversals.
		if full.Miss3 != 0 || full.Inv3 != 0 {
			t.Errorf("%s full map shows 3+ traversals (%.1f/%.1f)", bench, full.Miss3, full.Inv3)
		}
		// Full-map invalidations are mostly 2-traversal (multicast).
		if full.Inv2 < 50 {
			t.Errorf("%s full map inv2 = %.1f%%, want majority", bench, full.Inv2)
		}
		// The linked list is never better on 1-traversal misses.
		if list.Miss1 > full.Miss1+5 {
			t.Errorf("%s: l.list miss1 %.1f%% should not beat full map %.1f%%",
				bench, list.Miss1, full.Miss1)
		}
		// Only the linked list shows 3+ traversal invalidations.
		if list.Inv3 == 0 {
			t.Errorf("%s: l.list shows no 3+ traversal invalidations", bench)
		}
	}
}

func TestFigure5Shapes(t *testing.T) {
	rows := runner().Figure5Data()
	if len(rows) != 12 {
		t.Fatalf("Figure 5 rows = %d, want 12", len(rows))
	}
	get := func(bench string, cpus int) Figure5Row {
		for _, r := range rows {
			if r.Bench == bench && r.CPUs == cpus {
				return r
			}
		}
		t.Fatalf("missing row %s/%d", bench, cpus)
		return Figure5Row{}
	}
	// Percentages sum to 100.
	for _, r := range rows {
		sum := r.OneCycleClean + r.OneCycleDirty + r.TwoCycle
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%s/%d breakdown sums to %.2f", r.Bench, r.CPUs, sum)
		}
	}
	// Paper: the fraction of 1-cycle clean misses increases steadily
	// with system size for the SPLASH benchmarks (random page
	// placement leaves a smaller local fraction).
	for _, bench := range []string{"MP3D", "WATER", "CHOLESKY"} {
		c8, c32 := get(bench, 8).OneCycleClean, get(bench, 32).OneCycleClean
		if c32 < c8-8 {
			t.Errorf("%s: 1-cycle clean share fell sharply with size (%.1f → %.1f)", bench, c8, c32)
		}
	}
	// MP3D carries a significant 2-cycle share; WEATHER and SIMPLE
	// exhibit very small dirty/2-cycle fractions next to FFT.
	if m := get("MP3D", 16); m.TwoCycle+m.OneCycleDirty < 10 {
		t.Errorf("MP3D/16 dirty+2-cycle = %.1f%%, expected substantial", m.TwoCycle+m.OneCycleDirty)
	}
	fft, weather := get("FFT", 64), get("WEATHER", 64)
	if fft.OneCycleDirty+fft.TwoCycle <= weather.OneCycleDirty+weather.TwoCycle {
		t.Errorf("FFT should show more read-write sharing than WEATHER (%.1f vs %.1f)",
			fft.OneCycleDirty+fft.TwoCycle, weather.OneCycleDirty+weather.TwoCycle)
	}
}

func TestFigure3Shapes(t *testing.T) {
	p := runner().Figure3("MP3D")
	if len(p.ProcUtil.Series) != 6 {
		t.Fatalf("Figure 3 proc util series = %d, want 6", len(p.ProcUtil.Series))
	}
	// Paper: snooping outperforms directory for MP3D at all sizes —
	// lower miss latency and at least equal processor utilization at
	// the 50 MIPS end.
	for _, cpus := range []string{"8", "16", "32"} {
		snLat := p.MissLatency.Get("snoop-" + cpus).At(20)
		dirLat := p.MissLatency.Get("dir-" + cpus).At(20)
		if snLat >= dirLat {
			t.Errorf("MP3D-%s @20ns: snoop latency %.0f >= directory %.0f", cpus, snLat, dirLat)
		}
		snU := p.ProcUtil.Get("snoop-" + cpus).At(20)
		dirU := p.ProcUtil.Get("dir-" + cpus).At(20)
		if snU < dirU-1 {
			t.Errorf("MP3D-%s @20ns: snoop util %.1f%% well below directory %.1f%%", cpus, snU, dirU)
		}
		// Ring utilization is always higher under snooping.
		snN := p.NetUtil.Get("snoop-" + cpus).At(5)
		dirN := p.NetUtil.Get("dir-" + cpus).At(5)
		if snN <= dirN {
			t.Errorf("MP3D-%s @5ns: snoop ring util %.1f%% <= directory %.1f%%", cpus, snN, dirN)
		}
	}
	// Processor utilization falls with faster processors (x = cycle).
	u := p.ProcUtil.Get("snoop-16")
	if u.At(1) >= u.At(20) {
		t.Errorf("snoop-16 proc util should fall as cycle shrinks: %.1f%% vs %.1f%%", u.At(1), u.At(20))
	}
}

func TestFigure4Shapes(t *testing.T) {
	p := runner().Figure4()
	if len(p.ProcUtil.Series) != 6 {
		t.Fatalf("Figure 4 series = %d, want 6", len(p.ProcUtil.Series))
	}
	// 64-processor utilizations are considerably lower: under ~60 %
	// even at 50 MIPS (paper shows < 50 %).
	for _, s := range p.ProcUtil.Series {
		if v := s.At(20); v > 75 {
			t.Errorf("%s proc util %.1f%% at 20ns, expected low (64 CPUs)", s.Name, v)
		}
	}
	// FFT: snooping's miss latency beats directory's at low load.
	fftSn := p.MissLatency.Get("FFT-snoop").At(20)
	fftDir := p.MissLatency.Get("FFT-dir").At(20)
	if fftSn >= fftDir {
		t.Errorf("FFT @20ns: snoop latency %.0f >= directory %.0f", fftSn, fftDir)
	}
}

func TestFigure6Shapes(t *testing.T) {
	p := runner().Figure6("MP3D", 16)
	if len(p.ProcUtil.Series) != 4 {
		t.Fatalf("Figure 6 series = %d, want 4", len(p.ProcUtil.Series))
	}
	// Paper: for 16-CPU MP3D the gap grows as buses saturate; at fast
	// processors the 500 MHz ring clearly beats both buses.
	ring500 := p.ProcUtil.Get("ring-500MHz")
	bus50 := p.ProcUtil.Get("bus-50MHz")
	bus100 := p.ProcUtil.Get("bus-100MHz")
	if ring500.At(2) <= bus50.At(2) || ring500.At(2) <= bus100.At(2) {
		t.Errorf("ring-500 %.1f%% should beat buses (%.1f%%, %.1f%%) at 2ns",
			ring500.At(2), bus100.At(2), bus50.At(2))
	}
	// Buses saturate for fast processors; ring stays under 50 %.
	busN := p.NetUtil.Get("bus-50MHz")
	if busN.At(2) < 90 {
		t.Errorf("50 MHz bus util %.1f%% at 2ns, expected saturation", busN.At(2))
	}
	ringN := p.NetUtil.Get("ring-500MHz")
	if ringN.At(2) > 60 {
		t.Errorf("500 MHz ring util %.1f%% at 2ns, expected < 60%%", ringN.At(2))
	}
	// Bus miss latency blows up with processor speed; ring stays
	// comparatively stable.
	busLat := p.MissLatency.Get("bus-50MHz")
	ringLat := p.MissLatency.Get("ring-500MHz")
	if busLat.At(2) < 1.5*busLat.At(20) {
		t.Errorf("bus latency should inflate under load: %.0f vs %.0f", busLat.At(2), busLat.At(20))
	}
	if ringLat.At(2) > 3*ringLat.At(20) {
		t.Errorf("ring latency grew too much: %.0f vs %.0f", ringLat.At(2), ringLat.At(20))
	}
}

func TestTable4Shapes(t *testing.T) {
	r := runner()
	// Matching a 500 MHz ring needs a faster bus than matching the
	// 250 MHz ring.
	c250, ok1 := r.Table4Cell("MP3D", 16, 250, 100)
	c500, ok2 := r.Table4Cell("MP3D", 16, 500, 100)
	if !ok1 || !ok2 {
		t.Fatal("Table 4 cells did not resolve")
	}
	if c500 >= c250 {
		t.Errorf("500 MHz ring should demand a faster bus: %.1f >= %.1f", c500, c250)
	}
	// Larger systems demand faster buses still.
	c8, ok3 := r.Table4Cell("MP3D", 8, 500, 100)
	c32, ok4 := r.Table4Cell("MP3D", 32, 500, 100)
	if !ok3 || !ok4 {
		t.Fatal("Table 4 size cells did not resolve")
	}
	if c32 >= c8 {
		t.Errorf("32-CPU system should demand a faster bus than 8-CPU: %.1f >= %.1f", c32, c8)
	}
}

func TestTable2Renders(t *testing.T) {
	tab := runner().Table2()
	if tab.NumRows() != 12 {
		t.Fatalf("Table 2 rows = %d, want 12", tab.NumRows())
	}
	out := tab.String()
	for _, want := range []string{"MP3D", "WATER", "CHOLESKY", "FFT", "WEATHER", "SIMPLE"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestValidationTableRenders(t *testing.T) {
	tab := runner().Validation("MP3D", 8)
	if tab.NumRows() != 9 {
		t.Fatalf("validation rows = %d, want 9", tab.NumRows())
	}
}

func TestAblationStarvationRuleIsCheap(t *testing.T) {
	on, off := runner().AblationStarvationRuleExecTimes("MP3D", 8)
	diff := float64(on-off) / float64(off)
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.05 {
		t.Errorf("starvation rule cost %.1f%%, paper says insignificant", 100*diff)
	}
}

func TestAblationWideRing(t *testing.T) {
	sn, dir := runner().AblationWideRingData("MP3D", 16)
	if sn.NetworkUtil > 0.5 {
		t.Errorf("64-bit ring snoop utilization %.2f, paper says never above 0.5", sn.NetworkUtil)
	}
	if float64(sn.ExecTime) > 1.1*float64(dir.ExecTime) {
		t.Errorf("64-bit ring: snooping exec %.0fus should not trail directory %.0fus",
			sn.ExecTime.Nanoseconds()/1000, dir.ExecTime.Nanoseconds()/1000)
	}
}

func TestAblationSlotMixRenders(t *testing.T) {
	times := runner().AblationSlotMixExecTimes("MP3D", 8)
	if len(times) != 3 {
		t.Fatalf("slot mix points = %d, want 3", len(times))
	}
	for pairs, et := range times {
		if et <= 0 {
			t.Errorf("pairs=%d exec time %v", pairs, et)
		}
	}
	// The paper's mix (one pair) should be within ~15 % of the best.
	best := times[1]
	for _, et := range times {
		if et < best {
			best = et
		}
	}
	if float64(times[1]) > 1.15*float64(best) {
		t.Errorf("default mix %.0f far from best %.0f", float64(times[1]), float64(best))
	}
}

func TestAblationAccessControl(t *testing.T) {
	light := AblationAccessControl(8, 2000*sim.Nanosecond, 150, 3)
	heavy := AblationAccessControl(8, 10*sim.Nanosecond, 150, 3)
	get := func(rs []AccessControlResult, name string) AccessControlResult {
		for _, r := range rs {
			if r.Fabric == name {
				return r
			}
		}
		t.Fatalf("missing fabric %s", name)
		return AccessControlResult{}
	}
	for _, rs := range [][]AccessControlResult{light, heavy} {
		for _, r := range rs {
			if r.Delivered != 150 {
				t.Fatalf("%s delivered %d/150", r.Fabric, r.Delivered)
			}
		}
	}
	// Register insertion is fastest unloaded (no slot wait).
	if get(light, "insertion").MeanLatNS > get(light, "slotted").MeanLatNS+1 {
		t.Errorf("insertion light-load %.0f should not exceed slotted %.0f",
			get(light, "insertion").MeanLatNS, get(light, "slotted").MeanLatNS)
	}
	// Token passing collapses under load relative to the slotted ring.
	if get(heavy, "token").MeanLatNS < 2*get(heavy, "slotted").MeanLatNS {
		t.Errorf("token heavy-load %.0f should far exceed slotted %.0f",
			get(heavy, "token").MeanLatNS, get(heavy, "slotted").MeanLatNS)
	}
}

func TestSnoopVsDirCrossoverClaim(t *testing.T) {
	// Paper, Section 4.2: only when snooping's ring utilization is very
	// high (over ~70 %) can the directory protocol's latency approach
	// snooping's. Verify the implication: wherever snoop utilization is
	// below 50 %, snooping's latency wins.
	p := runner().Figure3("MP3D")
	for _, cpus := range []string{"8", "16", "32"} {
		for x := 1.0; x <= 20; x++ {
			if p.NetUtil.Get("snoop-"+cpus).At(x) < 50 {
				sn := p.MissLatency.Get("snoop-" + cpus).At(x)
				dir := p.MissLatency.Get("dir-" + cpus).At(x)
				if sn >= dir {
					t.Errorf("MP3D-%s @%vns: snoop %.0f >= dir %.0f despite low ring load",
						cpus, x, sn, dir)
				}
			}
		}
	}
}

func TestRunnerCachesSimulations(t *testing.T) {
	r := NewRunner(Options{DataRefsPerCPU: 200, Seed: 5})
	_, m1 := r.Simulate(core.SnoopRing, "WATER", 8)
	_, m2 := r.Simulate(core.SnoopRing, "WATER", 8)
	if m1 != m2 {
		t.Fatal("identical configuration re-simulated instead of cached")
	}
}

func TestAblationLatencyToleranceFavorsRing(t *testing.T) {
	// Paper, Section 6: latency-tolerance techniques increase the load
	// on the interconnect, so they help on the underutilized slotted
	// ring but are nearly self-defeating on a bus close to saturation.
	rows := runner().AblationLatencyTolerance("MP3D", 16)
	byFabric := map[string]LatencyToleranceResult{}
	for _, r := range rows {
		byFabric[r.Fabric] = r
	}
	ring, bus := byFabric["snoop"], byFabric["bus"]
	if ring.BufferedStores == 0 || bus.BufferedStores == 0 {
		t.Fatal("weak-ordering runs buffered no stores")
	}
	// The overlap raises interconnect load; the ring absorbs it with
	// headroom to spare while the bus was already saturated — the
	// paper's "self-defeating on a saturated interconnect" premise.
	if ring.NonBlockingNetUtil <= ring.BlockingNetUtil {
		t.Error("weak ordering did not raise ring load")
	}
	if ring.NonBlockingNetUtil > 0.8 {
		t.Errorf("ring reached %.2f utilization; the paper says it never saturates", ring.NonBlockingNetUtil)
	}
	if bus.BlockingNetUtil < 0.85 {
		t.Errorf("bus not near saturation (%.2f); ablation premise broken", bus.BlockingNetUtil)
	}
	// Execution time on the ring is not materially hurt by the overlap
	// (within a few percent either way at this scale), while the bus
	// remains several times slower in absolute terms.
	if ring.SpeedupPct < -5 {
		t.Errorf("weak ordering cost the ring %.1f%%", -ring.SpeedupPct)
	}
	if bus.NonBlockingExecUS < 3*ring.NonBlockingExecUS {
		t.Errorf("bus exec %.0fus should remain far above ring %.0fus",
			bus.NonBlockingExecUS, ring.NonBlockingExecUS)
	}
}

func TestLatencyDecompositionRingIsPureDelay(t *testing.T) {
	// Paper, Section 6: the ring's latencies are mostly pure delay
	// (propagation + memory), not contention; a fast-processor bus's
	// latency is mostly queueing.
	rows := runner().LatencyDecomposition("MP3D", 16, 2)
	byFabric := map[string]LatencyDecompositionRow{}
	for _, r := range rows {
		byFabric[r.Fabric] = r
	}
	ring := byFabric["ring-500MHz"]
	bus := byFabric["bus-50MHz"]
	if ring.ContentionFrac > 0.40 {
		t.Errorf("ring contention fraction %.2f, want < 0.40 (pure delay dominates)", ring.ContentionFrac)
	}
	if bus.ContentionFrac < 0.50 {
		t.Errorf("bus contention fraction %.2f, want > 0.50 (queueing dominates)", bus.ContentionFrac)
	}
	if ring.NetUtil > 0.8 {
		t.Errorf("ring utilization %.2f, want unsaturated", ring.NetUtil)
	}
	if bus.NetUtil < 0.9 {
		t.Errorf("bus utilization %.2f, want saturated", bus.NetUtil)
	}
}

func TestNonBlockingStoresPreserveMissAccounting(t *testing.T) {
	// The weak-ordering run must still complete every reference and
	// keep utilizations in range.
	m := runner().SimulateAt(core.Config{
		Protocol:          core.SnoopRing,
		ProcCycle:         5 * sim.Nanosecond,
		NonBlockingStores: true,
	}, "MP3D", 8)
	if u := m.ProcUtil(); u <= 0 || u > 1 {
		t.Fatalf("ProcUtil = %v", u)
	}
	if m.BufferedStores == 0 {
		t.Fatal("no buffered stores recorded")
	}
	if m.BufferedLatency.Value() <= 0 {
		t.Fatal("no buffered-store latency recorded")
	}
}

func TestExtensionHierarchyShapes(t *testing.T) {
	rows := runner().ExtensionHierarchy("FFT", 64, 8)
	byMachine := map[string]HierarchyResult{}
	for _, r := range rows {
		byMachine[r.Machine] = r
	}
	flat := byMachine["flat-ring"]
	noAff := byMachine["hier-noaffinity"]
	aff := byMachine["hier-affinity0.9"]
	// At 64 processors, the hierarchy's short local rings beat the flat
	// ring's 400 ns circumference decisively.
	if noAff.ExecUS >= flat.ExecUS {
		t.Errorf("hierarchy exec %.0fus should beat flat %.0fus", noAff.ExecUS, flat.ExecUS)
	}
	// Cluster affinity keeps more traffic off the global ring.
	if aff.GlobalShare >= noAff.GlobalShare {
		t.Errorf("affinity global share %.2f should be below no-affinity %.2f",
			aff.GlobalShare, noAff.GlobalShare)
	}
	if aff.GlobalShare <= 0 || aff.GlobalShare >= 1 {
		t.Errorf("global share %.2f out of (0,1)", aff.GlobalShare)
	}
	// The hierarchy spreads load across nine small rings: far lower
	// per-ring utilization than the flat ring.
	if noAff.NetUtil >= flat.NetUtil {
		t.Errorf("hierarchy net util %.3f should be below flat %.3f", noAff.NetUtil, flat.NetUtil)
	}
}

func TestHierRingProtocolRunsThroughCore(t *testing.T) {
	m := runner().SimulateAt(core.Config{
		Protocol: core.HierRing, Clusters: 4, ProcCycle: 10 * sim.Nanosecond,
	}, "MP3D", 16)
	if m.ProcUtil() <= 0 || m.ProcUtil() > 1 {
		t.Fatalf("ProcUtil = %v", m.ProcUtil())
	}
	if m.SharedMisses == 0 {
		t.Fatal("no shared misses")
	}
	if m.NetworkUtil <= 0 {
		t.Fatal("no network utilization reported for hierarchical rings")
	}
}

func TestAblationBlockSizeShapes(t *testing.T) {
	rows := runner().AblationBlockSize("MP3D", 16)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// The snooping-rate column is Table 3 exactly.
	want := map[int]float64{16: 20, 32: 28, 64: 44}
	for _, r := range rows {
		if r.FrameNS != want[r.BlockBytes] {
			t.Errorf("block %dB: snoop rate %v ns, want %v", r.BlockBytes, r.FrameNS, want[r.BlockBytes])
		}
	}
	// Longer blocks stretch the frame: miss latency and ring occupancy
	// rise monotonically with block size.
	for i := 1; i < len(rows); i++ {
		if rows[i].MissLatNS <= rows[i-1].MissLatNS {
			t.Errorf("miss latency should grow with block size: %dB %.0f <= %dB %.0f",
				rows[i].BlockBytes, rows[i].MissLatNS, rows[i-1].BlockBytes, rows[i-1].MissLatNS)
		}
		if rows[i].NetUtil <= rows[i-1].NetUtil {
			t.Errorf("ring util should grow with block size: %dB %.3f <= %dB %.3f",
				rows[i].BlockBytes, rows[i].NetUtil, rows[i-1].BlockBytes, rows[i-1].NetUtil)
		}
	}
}

func TestFigurePanelsPlot(t *testing.T) {
	p := runner().Figure3("MP3D")
	out := p.Plot(48, 10)
	for _, want := range []string{"snoop-16", "dir-16", "cycle(ns)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q", want)
		}
	}
}

func TestAblationMultitaskingShapes(t *testing.T) {
	rows := runner().AblationMultitasking("WATER", 16)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// Shorter quanta → more working-set reloads → higher miss rate,
	// longer execution, higher ring load. Rows are ordered none, long
	// quantum, short quantum.
	for i := 1; i < len(rows); i++ {
		if rows[i].TotalMissPct <= rows[i-1].TotalMissPct {
			t.Errorf("miss rate should rise with switching: %+v", rows)
		}
		if rows[i].ExecUS <= rows[i-1].ExecUS {
			t.Errorf("exec time should rise with switching: %+v", rows)
		}
		if rows[i].NetUtil <= rows[i-1].NetUtil {
			t.Errorf("ring load should rise with switching: %+v", rows)
		}
	}
}

func TestExtensionHierarchyFigure(t *testing.T) {
	p := runner().ExtensionHierarchyFigure("FFT", 64, 8)
	if p.ProcUtil.Get("flat") == nil || p.ProcUtil.Get("hier") == nil {
		t.Fatal("missing series")
	}
	// The model-based sweep must echo the simulation: the hierarchy's
	// processor utilization dominates the flat 64-node ring across the
	// band.
	for x := 2.0; x <= 20; x += 6 {
		flat := p.ProcUtil.Get("flat").At(x)
		hier := p.ProcUtil.Get("hier").At(x)
		if hier <= flat {
			t.Errorf("@%vns: hier util %.1f%% <= flat %.1f%%", x, hier, flat)
		}
	}
}

func TestHeadlineClaimsStableAcrossSeeds(t *testing.T) {
	// The paper's two headline comparisons must not depend on the
	// random seed: snooping beats the directory for MP3D, and the ring
	// beats the saturated bus at fast processors.
	for _, seed := range []uint64{101, 202, 303} {
		r := NewRunner(Options{DataRefsPerCPU: 700, Seed: seed})
		_, snoop := r.Simulate(core.SnoopRing, "MP3D", 16)
		_, dir := r.Simulate(core.DirectoryRing, "MP3D", 16)
		if snoop.MissLatency.Value() >= dir.MissLatency.Value() {
			t.Errorf("seed %d: snoop latency %.0f >= directory %.0f",
				seed, snoop.MissLatency.Value(), dir.MissLatency.Value())
		}
		ringM := r.SimulateAt(core.Config{Protocol: core.SnoopRing, ProcCycle: 2 * sim.Nanosecond}, "MP3D", 16)
		busM := r.SimulateAt(core.Config{Protocol: core.SnoopBus, ProcCycle: 2 * sim.Nanosecond}, "MP3D", 16)
		if ringM.ProcUtil() <= busM.ProcUtil() {
			t.Errorf("seed %d: ring util %.3f <= bus %.3f at 2ns",
				seed, ringM.ProcUtil(), busM.ProcUtil())
		}
	}
}

func TestMetricsTimeAccounting(t *testing.T) {
	// Busy + stall per processor cannot exceed the span each processor
	// ran; with warmup excluded the sums must stay within N × ExecTime.
	m := runner().SimulateAt(core.Config{Protocol: core.SnoopRing, ProcCycle: 5 * sim.Nanosecond}, "MP3D", 8)
	if m.BusyTime <= 0 || m.StallTime <= 0 {
		t.Fatalf("times: busy=%v stall=%v", m.BusyTime, m.StallTime)
	}
	if m.BusyTime+m.StallTime > 8*m.ExecTime {
		t.Fatalf("busy+stall %v exceeds 8×exec %v", m.BusyTime+m.StallTime, 8*m.ExecTime)
	}
}
