package tenant

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testTenants() []Tenant {
	return []Tenant{
		{ID: "acme", Name: "Acme", Keys: []string{"acme-key-1", "acme-key-2"}, Weight: 4,
			RatePerSec: 2, Burst: 2, MaxQueued: 8, MaxInFlight: 2},
		{ID: "solo", Keys: []string{"solo-key"}},
	}
}

func TestAuthenticate(t *testing.T) {
	r, err := New(testTenants(), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"acme-key-1", "acme-key-2"} {
		tn, err := r.Authenticate(key)
		if err != nil || tn.ID != "acme" {
			t.Errorf("Authenticate(%q) = %+v, %v", key, tn, err)
		}
		if tn.Weight != 4 {
			t.Errorf("acme weight %d, want 4", tn.Weight)
		}
	}
	if tn, err := r.Authenticate("solo-key"); err != nil || tn.ID != "solo" || tn.Weight != 1 {
		t.Errorf("solo = %+v, %v (weight defaults to 1)", tn, err)
	}
	if _, err := r.Authenticate("no-such-key"); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("unknown key err = %v", err)
	}
	if tn, err := r.Authenticate(""); err != nil || tn.ID != AnonymousID {
		t.Errorf("anonymous = %+v, %v", tn, err)
	}

	strict, err := New(testTenants(), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := strict.Authenticate(""); !errors.Is(err, ErrAnonymous) {
		t.Errorf("strict anonymous err = %v, want ErrAnonymous", err)
	}
}

func TestNewRejectsDuplicates(t *testing.T) {
	if _, err := New([]Tenant{{ID: "a", Keys: []string{"k"}}, {ID: "a"}}, false); err == nil {
		t.Error("duplicate tenant id accepted")
	}
	if _, err := New([]Tenant{{ID: "a", Keys: []string{"k"}}, {ID: "b", Keys: []string{"k"}}}, false); err == nil {
		t.Error("duplicate API key accepted")
	}
	if _, err := New([]Tenant{{ID: "", Keys: []string{"k"}}}, false); err == nil {
		t.Error("empty tenant id accepted")
	}
	if _, err := New([]Tenant{{ID: "a", Keys: []string{""}}}, false); err == nil {
		t.Error("empty API key accepted")
	}
}

func TestLoadFileForms(t *testing.T) {
	dir := t.TempDir()
	obj := filepath.Join(dir, "obj.json")
	os.WriteFile(obj, []byte(`{"tenants":[{"id":"a","keys":["ka"],"weight":2}]}`), 0o644)
	bare := filepath.Join(dir, "bare.json")
	os.WriteFile(bare, []byte(`[{"id":"b","keys":["kb"]}]`), 0o644)

	for _, path := range []string{obj, bare} {
		r, err := Load(path, true)
		if err != nil {
			t.Fatalf("Load(%s): %v", path, err)
		}
		if got := len(r.All()); got != 2 { // the tenant plus anonymous
			t.Errorf("%s: %d tenants, want 2", path, got)
		}
	}
	if _, err := Load(filepath.Join(dir, "missing.json"), true); err == nil {
		t.Error("missing file accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"tenants":[]}`), 0o644)
	if _, err := Load(empty, true); err == nil {
		t.Error("empty tenants file accepted")
	}
}

func TestTokenBucket(t *testing.T) {
	r, err := New(testTenants(), true)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	r.now = func() time.Time { return now }

	// acme: rate 2/s, burst 2 — two immediate tokens, then refusal with
	// a refill hint.
	for i := 0; i < 2; i++ {
		if ok, _ := r.Acquire("acme"); !ok {
			t.Fatalf("burst token %d refused", i)
		}
	}
	ok, retry := r.Acquire("acme")
	if ok {
		t.Fatal("empty bucket granted a token")
	}
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Errorf("retry hint %v, want (0, 500ms] at rate 2/s", retry)
	}
	// After the hinted wait the next token exists.
	now = now.Add(retry)
	if ok, _ := r.Acquire("acme"); !ok {
		t.Error("token missing after the hinted wait")
	}
	// Refill never exceeds burst.
	now = now.Add(time.Hour)
	granted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := r.Acquire("acme"); ok {
			granted++
		}
	}
	if granted != 2 {
		t.Errorf("after long idle granted %d tokens, want burst 2", granted)
	}

	// Unlimited tenants never block.
	for i := 0; i < 100; i++ {
		if ok, _ := r.Acquire("solo"); !ok {
			t.Fatal("unlimited tenant rate limited")
		}
	}
	if iv := r.RefillInterval("acme"); iv != 500*time.Millisecond {
		t.Errorf("RefillInterval(acme) = %v, want 500ms", iv)
	}
	if iv := r.RefillInterval("solo"); iv != 0 {
		t.Errorf("RefillInterval(solo) = %v, want 0", iv)
	}
}

func TestUsageAccumulation(t *testing.T) {
	r, err := New(testTenants(), true)
	if err != nil {
		t.Fatal(err)
	}
	r.Record("acme", Usage{Jobs: 3, Computed: 1, CacheHits: 2, SimulatedPS: 500, WallNS: 40})
	r.Record("acme", Usage{Jobs: 1, DiskHits: 1, Rejected: 2, RateLimited: 1, WallNS: 10})
	r.Record("ghost", Usage{Jobs: 99}) // dropped, not a crash

	u, ok := r.Usage("acme")
	if !ok {
		t.Fatal("acme usage missing")
	}
	want := Usage{Jobs: 4, Computed: 1, CacheHits: 2, DiskHits: 1,
		Rejected: 2, RateLimited: 1, SimulatedPS: 500, WallNS: 50}
	if u.Usage != want {
		t.Errorf("usage = %+v, want %+v", u.Usage, want)
	}
	all := r.All()
	if len(all) != 3 || all[0].ID != "acme" || all[1].ID != "solo" || all[2].ID != AnonymousID {
		t.Errorf("All() order = %+v", all)
	}
	if _, ok := r.Usage("ghost"); ok {
		t.Error("unknown tenant reported usage")
	}
}
