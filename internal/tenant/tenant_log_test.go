package tenant

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

// TestTenantLogValueNeverLeaksKeys pins the log-safety contract: a
// Tenant record logged whole renders identity and limits but never an
// API key, so no call site can leak secrets into a log pipeline.
func TestTenantLogValueNeverLeaksKeys(t *testing.T) {
	const secret = "sk-live-very-secret-key-do-not-log"
	tn := Tenant{ID: "acme", Name: "Acme", Keys: []string{secret, "sk-other"}, Weight: 3}

	var buf bytes.Buffer
	lg := slog.New(slog.NewJSONHandler(&buf, nil))
	lg.Info("tenant event", "tenant", tn)

	out := buf.String()
	if strings.Contains(out, secret) || strings.Contains(out, "sk-other") {
		t.Fatalf("API key leaked into log output: %s", out)
	}
	var line struct {
		Tenant struct {
			ID     string `json:"id"`
			Weight int    `json:"weight"`
			Keys   int    `json:"keys"`
		} `json:"tenant"`
	}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line not JSON: %v", err)
	}
	if line.Tenant.ID != "acme" || line.Tenant.Weight != 3 || line.Tenant.Keys != 2 {
		t.Errorf("logged tenant = %+v", line.Tenant)
	}
}
