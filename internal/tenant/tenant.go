// Package tenant is the multi-tenant serving model: API keys resolve
// to tenant records, each tenant carries a fair-queue weight, a
// token-bucket rate limit, and admission quotas (max queued, max in
// flight), and every tenant accumulates usage (jobs, cache hits,
// simulated time, wall time) the serving layer surfaces as
// `ringsim_tenant_*` metrics and `GET /v1/usage`.
//
// The model mirrors the paper's framing one level up: the admission
// queue is the shared medium, tenants are the processors contending
// for it, and the registry holds the arbitration parameters — weights
// for the deficit-round-robin service discipline and per-tenant flow
// control so one tenant's burst cannot monopolize the slot stream.
//
// The registry is loaded from a JSON file (`ringserved -tenants`) or
// constructed in memory; an anonymous default tenant preserves the
// keyless single-user mode every earlier layer was built against.
package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"time"
)

// AnonymousID is the tenant every unauthenticated request maps to
// when anonymous access is allowed. The anonymous tenant has weight 1
// and no rate limit or quotas, which is exactly the pre-tenant
// behavior of the serving layer.
const AnonymousID = "anonymous"

// Authentication errors; the HTTP layer maps both to 401.
var (
	ErrUnknownKey = errors.New("tenant: unknown API key")
	ErrAnonymous  = errors.New("tenant: anonymous access disabled; present an API key")
)

// Tenant is one account's serving contract. The zero value of every
// limit field means "unlimited" (weight zero means 1), so a minimal
// record is just an ID and its keys.
type Tenant struct {
	// ID is the tenant's stable identity: the fair-queue flow key, the
	// metrics label, and the provenance tag on jobs and SSE events.
	ID string `json:"id"`
	// Name is a human-readable label (reports, usage listings).
	Name string `json:"name,omitempty"`
	// Keys are the API keys that authenticate as this tenant
	// (Authorization: Bearer <key>).
	Keys []string `json:"keys,omitempty"`
	// Weight is the tenant's deficit-round-robin share: under
	// contention a weight-3 tenant receives 3x the admission service
	// of a weight-1 tenant. Zero means 1.
	Weight int `json:"weight,omitempty"`
	// RatePerSec is the token-bucket refill rate in admissions per
	// second; zero disables rate limiting for the tenant.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity; zero defaults to ceil(RatePerSec)
	// (at least 1) when a rate is set.
	Burst int `json:"burst,omitempty"`
	// MaxQueued caps the tenant's waiting admission requests; zero
	// means only the server-global queue depth bounds it.
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxInFlight caps the tenant's concurrently executing requests;
	// zero means only the server-global in-flight bound applies.
	MaxInFlight int `json:"max_in_flight,omitempty"`
}

// LogValue implements log/slog.LogValuer: a Tenant passed to a
// structured logger renders as its identity and arbitration
// parameters, never its API keys — secrets cannot leak into log
// pipelines even when a call site logs the whole record.
func (t Tenant) LogValue() slog.Value {
	return slog.GroupValue(
		slog.String("id", t.ID),
		slog.Int("weight", t.normalize().Weight),
		slog.Int("keys", len(t.Keys)),
	)
}

// normalize fills the defaulted fields.
func (t Tenant) normalize() Tenant {
	if t.Weight <= 0 {
		t.Weight = 1
	}
	if t.RatePerSec > 0 && t.Burst <= 0 {
		t.Burst = int(t.RatePerSec + 0.999)
		if t.Burst < 1 {
			t.Burst = 1
		}
	}
	return t
}

// Usage is a tenant's cumulative consumption. Jobs counts submitted
// jobs that completed (partitioned by Computed/CacheHits/DiskHits/
// Errors); RateLimited and Rejected count admissions refused at the
// door (token bucket vs queue/quota overflow); SimulatedPS and WallNS
// are the simulated picoseconds and request wall-clock the tenant's
// completed requests consumed.
type Usage struct {
	Jobs        uint64 `json:"jobs"`
	Computed    uint64 `json:"computed"`
	CacheHits   uint64 `json:"cache_hits"`
	DiskHits    uint64 `json:"disk_hits"`
	Errors      uint64 `json:"errors"`
	RateLimited uint64 `json:"rate_limited"`
	Rejected    uint64 `json:"rejected"`
	SimulatedPS int64  `json:"simulated_ps"`
	WallNS      int64  `json:"wall_ns"`
}

// add folds a delta in.
func (u *Usage) add(d Usage) {
	u.Jobs += d.Jobs
	u.Computed += d.Computed
	u.CacheHits += d.CacheHits
	u.DiskHits += d.DiskHits
	u.Errors += d.Errors
	u.RateLimited += d.RateLimited
	u.Rejected += d.Rejected
	u.SimulatedPS += d.SimulatedPS
	u.WallNS += d.WallNS
}

// TenantUsage is one tenant's public usage record — what GET
// /v1/usage returns. It deliberately omits the tenant's keys.
type TenantUsage struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	Weight int    `json:"weight"`
	Usage  Usage  `json:"usage"`
}

// state is one tenant's live registry entry.
type state struct {
	t      Tenant
	bucket bucket
	usage  Usage
}

// Registry resolves API keys to tenants, enforces their token-bucket
// rate limits, and accumulates their usage. Safe for concurrent use.
type Registry struct {
	now func() time.Time

	mu        sync.Mutex
	byKey     map[string]*state
	byID      map[string]*state
	order     []string // tenant IDs in registration order, for stable listings
	allowAnon bool
}

// New builds a registry over the given tenants. allowAnon additionally
// registers the anonymous default tenant and maps keyless requests to
// it; with allowAnon false every request must present a known key.
func New(tenants []Tenant, allowAnon bool) (*Registry, error) {
	r := &Registry{
		now:       time.Now,
		byKey:     make(map[string]*state),
		byID:      make(map[string]*state),
		allowAnon: allowAnon,
	}
	for _, t := range tenants {
		if t.ID == "" {
			return nil, fmt.Errorf("tenant: record with empty id")
		}
		if err := r.register(t); err != nil {
			return nil, err
		}
	}
	if allowAnon {
		if _, ok := r.byID[AnonymousID]; !ok {
			if err := r.register(Tenant{ID: AnonymousID}); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

// NewAnonymous is the compatibility registry: anonymous access only,
// no limits — the serving layer's pre-tenant behavior.
func NewAnonymous() *Registry {
	r, err := New(nil, true)
	if err != nil {
		panic(err) // cannot fail: no tenants, no duplicate keys
	}
	return r
}

// tenantsFile is the -tenants JSON document. A bare array of tenant
// records is also accepted.
type tenantsFile struct {
	Tenants []Tenant `json:"tenants"`
}

// Load reads a tenants file: either {"tenants": [...]} or a bare
// [...] array of tenant records.
func Load(path string, allowAnon bool) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: %v", err)
	}
	var doc tenantsFile
	if err := json.Unmarshal(data, &doc); err != nil {
		var bare []Tenant
		if berr := json.Unmarshal(data, &bare); berr != nil {
			return nil, fmt.Errorf("tenant: parse %s: %v", path, err)
		}
		doc.Tenants = bare
	}
	if len(doc.Tenants) == 0 {
		return nil, fmt.Errorf("tenant: %s defines no tenants", path)
	}
	return New(doc.Tenants, allowAnon)
}

// register adds one tenant under the lock-free construction path.
func (r *Registry) register(t Tenant) error {
	t = t.normalize()
	if _, dup := r.byID[t.ID]; dup {
		return fmt.Errorf("tenant: duplicate tenant id %q", t.ID)
	}
	st := &state{t: t, bucket: newBucket(t.RatePerSec, t.Burst, r.now())}
	for _, k := range t.Keys {
		if k == "" {
			return fmt.Errorf("tenant: %s has an empty API key", t.ID)
		}
		if _, dup := r.byKey[k]; dup {
			return fmt.Errorf("tenant: API key %q registered twice", k)
		}
		r.byKey[k] = st
	}
	r.byID[t.ID] = st
	r.order = append(r.order, t.ID)
	return nil
}

// AllowAnon reports whether keyless requests are accepted.
func (r *Registry) AllowAnon() bool { return r.allowAnon }

// Authenticate resolves an API key to its tenant. An empty key maps
// to the anonymous tenant when anonymous access is allowed.
func (r *Registry) Authenticate(key string) (Tenant, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if key == "" {
		if !r.allowAnon {
			return Tenant{}, ErrAnonymous
		}
		return r.byID[AnonymousID].t, nil
	}
	st, ok := r.byKey[key]
	if !ok {
		return Tenant{}, ErrUnknownKey
	}
	return st.t, nil
}

// Get returns a tenant by ID.
func (r *Registry) Get(id string) (Tenant, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.byID[id]
	if !ok {
		return Tenant{}, false
	}
	return st.t, true
}

// Acquire takes one admission token from the tenant's bucket. When
// the bucket is empty it reports false plus the wait until the next
// token — the Retry-After hint. Unknown tenants and tenants without a
// rate limit always succeed.
func (r *Registry) Acquire(id string) (ok bool, retryAfter time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, found := r.byID[id]
	if !found {
		return true, 0
	}
	return st.bucket.take(r.now())
}

// RefillInterval returns the tenant's mean time between tokens — the
// Retry-After hint for rejections that are not themselves bucket
// misses (queue or quota overflow). Zero when the tenant is
// unlimited or unknown.
func (r *Registry) RefillInterval(id string) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, found := r.byID[id]
	if !found || st.t.RatePerSec <= 0 {
		return 0
	}
	return time.Duration(float64(time.Second) / st.t.RatePerSec)
}

// Record folds a usage delta into the tenant's accumulator. Deltas
// for unknown tenants are dropped (a registry swap mid-request).
func (r *Registry) Record(id string, d Usage) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.byID[id]; ok {
		st.usage.add(d)
	}
}

// Usage returns one tenant's usage record.
func (r *Registry) Usage(id string) (TenantUsage, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.byID[id]
	if !ok {
		return TenantUsage{}, false
	}
	return TenantUsage{ID: st.t.ID, Name: st.t.Name, Weight: st.t.Weight, Usage: st.usage}, true
}

// All returns every tenant's usage record in registration order.
func (r *Registry) All() []TenantUsage {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TenantUsage, 0, len(r.order))
	for _, id := range r.order {
		st := r.byID[id]
		out = append(out, TenantUsage{ID: st.t.ID, Name: st.t.Name, Weight: st.t.Weight, Usage: st.usage})
	}
	return out
}
