package tenant

import "time"

// bucket is a token bucket: tokens refill continuously at rate per
// second up to burst, and each admission takes one. rate <= 0 means
// unlimited. Callers synchronize access (the registry's lock).
type bucket struct {
	rate   float64 // tokens per second; <= 0 disables the bucket
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate float64, burst int, now time.Time) bucket {
	return bucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: now}
}

// take refills for the elapsed time, then takes one token. When the
// bucket is empty it reports the wait until the next token accrues.
func (b *bucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	// Time for the deficit to refill to one whole token.
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}
