// Package directory implements the paper's full-map directory-based
// protocol for the slotted ring (Section 3.2). Coherence requests are
// point-to-point probes sent to the block's home node, which holds one
// presence bit per node and a dirty bit per block. Clean remote misses
// take exactly one ring traversal (requester → home → requester); when
// the home is not the owner the request is forwarded to the dirty node,
// which costs a second traversal unless the dirty node happens to lie
// on the home → requester arc; write misses and invalidations that find
// the block cached elsewhere make the home multicast an invalidation
// around the ring and await its return before responding — one extra
// traversal. These three latency classes are the paper's Figure 5
// breakdown, and the traversal counts its Table 1.
//
// The home's memory bank serializes all directory processing for its
// blocks (lookup and data fetch are one 140 ns access), which models
// directory contention at the home.
package directory

import (
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/ring"
	"repro/internal/sim"
)

// CacheSupplyTime is the dirty owner's cache fetch time for a
// cache-to-cache transfer (see the snoop package for the rationale).
const CacheSupplyTime = memory.BankTime

// Options configures an Engine.
type Options struct {
	// Cache is the per-node cache geometry (zero: paper defaults).
	Cache cache.Config
	// PageBytes is the home-placement granularity; default 4096.
	PageBytes int
	// Seed drives the random page-to-home placement.
	Seed uint64
	// Home, when non-nil, supplies a pre-built page-to-home placement
	// (e.g. one with private-data hints); PageBytes and Seed are then
	// ignored.
	Home *memory.HomeMap
	// Tracer, when non-nil, records coherence transactions as obs
	// spans with phase annotations.
	Tracer *obs.Tracer
	// NodeLo/NodeHi, when NodeHi > 0, restrict the engine to nodes in
	// [NodeLo, NodeHi): only their caches and banks are allocated. The
	// parallel partitioner uses this for domain replicas — a node-range
	// engine that somehow touches a node outside its range hits a nil
	// cache or bank immediately instead of silently corrupting a peer
	// partition's state. Zero values mean all nodes.
	NodeLo, NodeHi int
}

func (o *Options) fill() {
	if o.PageBytes == 0 {
		o.PageBytes = 4096
	}
}

// Engine is a full-map directory coherence engine over a slotted ring.
type Engine struct {
	k      *sim.Kernel
	ring   *ring.Ring
	caches []*cache.Cache
	banks  []*memory.Bank
	home   *memory.HomeMap
	dir    *memory.Directory
	tr     *obs.Tracer

	// WriteBacks counts dirty-eviction block messages.
	WriteBacks uint64
	wbByNode   []uint64
}

// WriteBacksOf returns the write-backs caused by node's own evictions;
// the core's per-processor warmup gating reads it.
func (e *Engine) WriteBacksOf(node int) uint64 { return e.wbByNode[node] }

// New returns a directory engine over r.
func New(r *ring.Ring, opts Options) *Engine {
	opts.fill()
	k := r.Kernel()
	n := r.Geo.Nodes
	e := &Engine{
		k:      k,
		ring:   r,
		caches: make([]*cache.Cache, n),
		banks:  make([]*memory.Bank, n),
		home:   homeMapFor(n, opts),
		dir:    memory.NewDirectory(),
		tr:     opts.Tracer,
	}
	e.wbByNode = make([]uint64, n)
	lo, hi := 0, n
	if opts.NodeHi > 0 {
		lo, hi = opts.NodeLo, opts.NodeHi
	}
	for i := lo; i < hi; i++ {
		e.caches[i] = cache.New(opts.Cache)
		e.banks[i] = memory.NewBank(k, "mem")
	}
	return e
}

// Ring returns the underlying slotted ring.
func (e *Engine) Ring() *ring.Ring { return e.ring }

// Cache returns node's cache.
func (e *Engine) Cache(node int) *cache.Cache { return e.caches[node] }

// HomeMap returns the page-to-home placement.
func (e *Engine) HomeMap() *memory.HomeMap { return e.home }

// Directory exposes the shared directory store (tests only).
func (e *Engine) Directory() *memory.Directory { return e.dir }

// Access performs one data reference for node; done fires at completion.
func (e *Engine) Access(node int, addr uint64, write bool, done func(at sim.Time, res coherence.Result)) {
	c := e.caches[node]
	block := c.BlockAddr(addr)
	switch c.Lookup(addr, write) {
	case cache.Hit:
		done(e.k.Now(), coherence.Result{Hit: true})
	case cache.MissRead:
		e.miss(node, block, false, done)
	case cache.MissWrite:
		e.miss(node, block, true, done)
	case cache.Upgrade:
		e.upgrade(node, block, done)
	}
}

// fill installs a block, sending a write-back for any dirty victim.
func (e *Engine) fill(node int, block uint64, st coherence.State) {
	if v := e.caches[node].Fill(block, st); v.Valid && v.Dirty {
		if DebugEvict != nil {
			DebugEvict(node, block, v.Block)
		}
		e.writeBack(node, v.Block)
	}
}

// DebugEvict, when non-nil, observes every dirty eviction (filler block
// and victim). Test-only instrumentation.
var DebugEvict func(node int, filler, victim uint64)

// writeBack returns a dirty block to its home, off the critical path.
func (e *Engine) writeBack(node int, block uint64) {
	e.WriteBacks++
	e.wbByNode[node]++
	sp := e.tr.Begin(node, e.k.Now())
	h := e.home.Home(block)
	land := func() {
		e.banks[h].Access(func() {
			ln := e.dir.Line(block)
			ln.RemoveSharer(node) // also clears the dirty bit if owner
		})
	}
	if h == node {
		land()
		sp.End(e.k.Now(), coherence.WriteBack)
		return
	}
	grab, removal := e.ring.Send(node, h, ring.BlockSlot, nil, func(sim.Time) { land() })
	sp.Mark(obs.PhaseData, grab)
	sp.End(removal, coherence.WriteBack)
}

// probe sends a point-to-point probe (request, forward, or ack) in the
// parity slot of block, returning the slot grab time.
func (e *Engine) probe(src, dst int, block uint64, arrived func(at sim.Time)) sim.Time {
	class := e.ring.Geo.ProbeClassFor(block)
	grab, _ := e.ring.Send(src, dst, class, nil, func(at sim.Time) { arrived(at) })
	return grab
}

// multicast sends the home's invalidation sweep: a broadcast probe that
// invalidates every cached copy except keep's, returning after one full
// traversal. It reports the probe slot grab time.
func (e *Engine) multicast(h int, block uint64, keep int, returned func(at sim.Time)) sim.Time {
	class := e.ring.Geo.ProbeClassFor(block)
	grab, _ := e.ring.Send(h, ring.Broadcast, class,
		func(visited int, at sim.Time) {
			if visited != keep {
				e.caches[visited].Invalidate(block)
			}
		},
		func(at sim.Time) { returned(at) })
	return grab
}

// traversals converts a total downstream path length into ring
// traversals (paths always close the loop, so this is exact).
func (e *Engine) traversals(stages int) int {
	t := stages / e.ring.Geo.TotalStages
	if stages%e.ring.Geo.TotalStages != 0 {
		t++
	}
	if t == 0 {
		t = 1
	}
	return t
}

// classify maps a dirty-forward path onto the paper's latency classes.
func classifyDirty(trav int) coherence.MissClass {
	if trav == 1 {
		return coherence.OneCycleDirty
	}
	return coherence.TwoCycle
}

// miss services a read or write miss.
func (e *Engine) miss(node int, block uint64, write bool, done func(sim.Time, coherence.Result)) {
	h := e.home.Home(block)
	sp := e.tr.Begin(node, e.k.Now())
	if h == node {
		e.localMiss(node, block, write, sp, done)
		return
	}
	// Remote home: request probe to h; all decisions are made at the
	// home, serialized by its bank.
	grab := e.probe(node, h, block, func(sim.Time) {
		e.banks[h].Access(func() {
			// The home's bank grant is the directory protocol's "ack
			// observed" waypoint: the request is now being serviced.
			sp.Mark(obs.PhaseAck, e.k.Now())
			e.atHome(node, h, block, write, sp, done)
		})
	})
	sp.Mark(obs.PhaseProbeGrab, grab)
}

// localMiss handles a miss whose home is the requesting node.
func (e *Engine) localMiss(node int, block uint64, write bool, sp obs.Span, done func(sim.Time, coherence.Result)) {
	e.banks[node].Access(func() {
		ln := e.dir.Line(block)
		dirtyRemote := ln.Dirty && ln.Owner != node
		switch {
		case dirtyRemote:
			// Request straight to the dirty node; it supplies the
			// block directly back: exactly one traversal (n→o→n).
			o := ln.Owner
			if write {
				ln.SetDirty(node)
			} else {
				ln.Dirty = false
				ln.AddSharer(node)
			}
			txn := coherence.ReadMissDirty
			if write {
				txn = coherence.WriteMissDirty
			}
			grab := e.probe(node, o, block, func(sim.Time) {
				e.ownerSupply(o, node, block, write, func(at sim.Time) {
					st := coherence.ReadShared
					if write {
						st = coherence.WriteExclusive
					}
					e.fill(node, block, st)
					sp.Mark(obs.PhaseData, at)
					sp.End(at, txn)
					done(at, coherence.Result{Txn: txn, Class: coherence.OneCycleDirty, Traversals: 1})
				})
			})
			sp.Mark(obs.PhaseProbeGrab, grab)
		case write && ln.NumSharers() > 0 && !(ln.NumSharers() == 1 && ln.HasSharer(node)):
			// Local write miss, block shared remotely: multicast and
			// wait for the sweep to return before completing.
			ln.SetDirty(node)
			grab := e.multicast(node, block, node, func(at sim.Time) {
				e.fill(node, block, coherence.WriteExclusive)
				// Latency-wise this is one traversal plus the local
				// fetch — the clean-remote-miss class.
				sp.Mark(obs.PhaseAck, at)
				sp.End(at, coherence.WriteMissClean)
				done(at, coherence.Result{Txn: coherence.WriteMissClean,
					Class: coherence.OneCycleClean, Traversals: 1})
			})
			sp.Mark(obs.PhaseProbeGrab, grab)
		default:
			// Purely local.
			if write {
				ln.SetDirty(node)
				e.fill(node, block, coherence.WriteExclusive)
				sp.Mark(obs.PhaseData, e.k.Now())
				sp.End(e.k.Now(), coherence.WriteMissClean)
				done(e.k.Now(), coherence.Result{Txn: coherence.WriteMissClean, Local: true})
			} else {
				ln.AddSharer(node)
				e.fill(node, block, coherence.ReadShared)
				sp.Mark(obs.PhaseData, e.k.Now())
				sp.End(e.k.Now(), coherence.ReadMissClean)
				done(e.k.Now(), coherence.Result{Txn: coherence.ReadMissClean, Local: true})
			}
		}
	})
}

// atHome runs the home-node directory actions for a remote miss, at the
// point the home's bank grants the (lookup + fetch) access.
func (e *Engine) atHome(node, h int, block uint64, write bool, sp obs.Span, done func(sim.Time, coherence.Result)) {
	g := &e.ring.Geo
	ln := e.dir.Line(block)
	dirtyRemote := ln.Dirty && ln.Owner != node && ln.Owner != h
	if DebugMiss != nil {
		DebugMiss(block, ln.NumSharers(), ln.Dirty, ln.Owner, node, write)
	}

	switch {
	case dirtyRemote:
		// Forward to the dirty node; it supplies the block to the
		// requester. One extra traversal unless the owner lies on the
		// home→requester arc (Figure 2.b).
		o := ln.Owner
		total := g.DistStages(node, h) + g.DistStages(h, o) + g.DistStages(o, node)
		trav := e.traversals(total)
		txn := coherence.ReadMissDirty
		if write {
			txn = coherence.WriteMissDirty
			ln.SetDirty(node)
		} else {
			ln.Dirty = false
			ln.AddSharer(node)
		}
		e.probe(h, o, block, func(sim.Time) {
			e.ownerSupply(o, node, block, write, func(at sim.Time) {
				st := coherence.ReadShared
				if write {
					st = coherence.WriteExclusive
				}
				e.fill(node, block, st)
				sp.Mark(obs.PhaseData, at)
				sp.End(at, txn)
				done(at, coherence.Result{Txn: txn, Class: classifyDirty(trav), Traversals: trav})
			})
		})

	case write && sharedElsewhere(ln, node, h):
		// Multicast invalidation, then respond: two traversals total.
		// The home's own copy (if any) dies too.
		e.caches[h].Invalidate(block)
		ln.SetDirty(node)
		e.multicast(h, block, node, func(sim.Time) {
			e.sendBlock(h, node, func(at sim.Time) {
				e.fill(node, block, coherence.WriteExclusive)
				sp.Mark(obs.PhaseData, at)
				sp.End(at, coherence.WriteMissClean)
				done(at, coherence.Result{Txn: coherence.WriteMissClean, Class: coherence.TwoCycle, Traversals: 2})
			})
		})

	default:
		// Clean (or home-owned): the home supplies directly. If the
		// home's own cache holds it WE, it downgrades/invalidates.
		txn := coherence.ReadMissClean
		if ln.Dirty && ln.Owner == h {
			txn = coherence.ReadMissDirty
			if write {
				txn = coherence.WriteMissDirty
			}
			if write {
				e.caches[h].Invalidate(block)
			} else {
				e.caches[h].Downgrade(block)
			}
		} else if write {
			txn = coherence.WriteMissClean
			e.caches[h].Invalidate(block)
		}
		if write {
			ln.SetDirty(node)
		} else {
			ln.Dirty = false
			ln.AddSharer(node)
		}
		class := coherence.OneCycleClean
		if txn == coherence.ReadMissDirty || txn == coherence.WriteMissDirty {
			class = coherence.OneCycleDirty
		}
		e.sendBlock(h, node, func(at sim.Time) {
			st := coherence.ReadShared
			if write {
				st = coherence.WriteExclusive
			}
			e.fill(node, block, st)
			sp.Mark(obs.PhaseData, at)
			sp.End(at, txn)
			done(at, coherence.Result{Txn: txn, Class: class, Traversals: 1})
		})
	}
}

// sharedElsewhere reports whether ln is cached by anyone other than the
// requester (the home's presence bit counts: its cache copy must be
// invalidated, though that needs no ring traffic).
func sharedElsewhere(ln *memory.Line, requester, home int) bool {
	for _, s := range ln.Sharers() {
		if s != requester && s != home {
			return true
		}
	}
	return false
}

// ownerSupply has the dirty owner fetch the block from its cache,
// downgrade or invalidate its copy, and ship the data to the requester.
func (e *Engine) ownerSupply(o, requester int, block uint64, write bool, delivered func(at sim.Time)) {
	if write {
		e.caches[o].Invalidate(block)
	} else {
		e.caches[o].Downgrade(block)
	}
	e.k.After(CacheSupplyTime, func() {
		e.sendBlock(o, requester, delivered)
	})
}

// sendBlock ships one block message src → dst.
func (e *Engine) sendBlock(src, dst int, delivered func(at sim.Time)) {
	e.ring.Send(src, dst, ring.BlockSlot, nil, func(at sim.Time) { delivered(at) })
}

// DebugUpgrade, when non-nil, observes every remote upgrade as the home
// processes it (block, presence population, home, requester, whether
// sharers were found). Test-only instrumentation.
var DebugUpgrade func(block uint64, sharers, home, node int, found bool)

// DebugMiss, when non-nil, observes every remote miss as the home
// processes it. Test-only instrumentation.
var DebugMiss func(block uint64, sharers int, dirty bool, owner, node int, write bool)

// upgrade services an invalidation request: the requester holds RS and
// asks the home for write permission.
func (e *Engine) upgrade(node int, block uint64, done func(sim.Time, coherence.Result)) {
	h := e.home.Home(block)
	sp := e.tr.Begin(node, e.k.Now())
	finish := func(at sim.Time, trav int) {
		if !e.caches[node].Upgrade(block) {
			// Invalidated by a racing writer while our request was in
			// flight; the permission grant still stands per the
			// directory, so install fresh.
			e.fill(node, block, coherence.WriteExclusive)
		}
		sp.End(at, coherence.Invalidation)
		done(at, coherence.Result{Txn: coherence.Invalidation, Traversals: trav, Local: trav == 0})
	}
	if h == node {
		e.banks[h].Access(func() {
			sp.Mark(obs.PhaseAck, e.k.Now())
			ln := e.dir.Line(block)
			if sharedElsewhere(ln, node, node) {
				ln.SetDirty(node)
				grab := e.multicast(node, block, node, func(at sim.Time) { finish(at, 1) })
				sp.Mark(obs.PhaseProbeGrab, grab)
			} else {
				ln.SetDirty(node)
				finish(e.k.Now(), 0)
			}
		})
		return
	}
	grab := e.probe(node, h, block, func(sim.Time) {
		e.banks[h].Access(func() {
			sp.Mark(obs.PhaseAck, e.k.Now())
			ln := e.dir.Line(block)
			if DebugUpgrade != nil {
				DebugUpgrade(block, ln.NumSharers(), h, node, sharedElsewhere(ln, node, h))
			}
			if sharedElsewhere(ln, node, h) {
				e.caches[h].Invalidate(block)
				ln.SetDirty(node)
				e.multicast(h, block, node, func(sim.Time) {
					e.probe(h, node, block, func(at sim.Time) { finish(at, 2) })
				})
			} else {
				e.caches[h].Invalidate(block)
				ln.SetDirty(node)
				e.probe(h, node, block, func(at sim.Time) { finish(at, 1) })
			}
		})
	})
	sp.Mark(obs.PhaseProbeGrab, grab)
}

// homeMapFor returns the configured home map, or builds the default
// seeded-random page placement.
func homeMapFor(n int, opts Options) *memory.HomeMap {
	if opts.Home != nil {
		return opts.Home
	}
	return memory.NewHomeMap(n, opts.PageBytes, sim.NewRand(opts.Seed))
}

// HasBlock reports whether node currently caches the block containing
// addr in a readable state (RS or WE). The core's write-buffer model
// uses it to decide whether a load can bypass an outstanding store.
func (e *Engine) HasBlock(node int, addr uint64) bool {
	c := e.caches[node]
	return c.State(c.BlockAddr(addr)) != coherence.Invalid
}
