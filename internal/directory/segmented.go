package directory

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/memory"
	"repro/internal/ring"
	"repro/internal/sim"
)

// The segmented directory engine (SegEngine) runs the same full-map
// protocol as Engine, but over the segmented ring variant, where a
// message may cross a shard boundary mid-flight. Closures cannot
// cross shards, so every remote interaction travels as a SegPayload
// packet that the receiving node's engine interprets against its own
// node-ranged state:
//
//	pkReq          requester → home    read/write miss request (probe)
//	pkUpReq        requester → home    upgrade request (probe)
//	pkOwnerReq     home/req → owner    forward to the dirty owner (probe)
//	pkBlockData    supplier → req      block data response (block slot)
//	pkAck          home → requester    upgrade acknowledgement (probe)
//	pkWB           node → home         dirty-eviction write-back (block)
//	pkInvalFill    broadcast from req  local write miss, shared elsewhere
//	pkInvalLocal   broadcast from req  local upgrade sweep
//	pkInvalSend    broadcast from home remote write miss sweep, then data
//	pkInvalAck     broadcast from home remote upgrade sweep, then ack
//
// Every response packet echoes the transaction's classification
// (transaction kind, latency class, traversal count — computed where
// the directory decision is made, exactly as in the closure engine) in
// the payload, so the requester needs no protocol state beyond its
// single outstanding request: processors block on misses, and the
// partition planner excludes non-blocking stores, so one pending slot
// per node is an invariant, not an approximation.
//
// State partitioning makes this shardable: directory lines are touched
// only at the block's home (inside the home bank's serialized access),
// caches and banks only at their own node, and each of those nodes
// belongs to exactly one engine.

const (
	pkReq uint8 = iota
	pkUpReq
	pkOwnerReq
	pkBlockData
	pkAck
	pkWB
	pkInvalFill
	pkInvalLocal
	pkInvalSend
	pkInvalAck
)

// flagWrite marks the request as a write in SegPayload.Flags.
const flagWrite = 1

// encodeRes packs a transaction's classification into SegPayload.B.
func encodeRes(txn coherence.Txn, class coherence.MissClass, trav int) uint64 {
	return uint64(txn) | uint64(class)<<8 | uint64(trav)<<16
}

// decodeRes unpacks encodeRes.
func decodeRes(b uint64) (txn coherence.Txn, class coherence.MissClass, trav int) {
	return coherence.Txn(b), coherence.MissClass(b >> 8), int(b >> 16 & 0xff)
}

// segPending is a node's single outstanding blocking request.
type segPending struct {
	active  bool
	upgrade bool
	block   uint64
	write   bool
	done    func(at sim.Time, res coherence.Result)
}

// SegEngine is the full-map directory engine over a chain of ring
// segments. One engine serves the contiguous node range covered by its
// segments; a sequential run uses one engine over the whole chain, a
// partitioned run one engine per domain.
type SegEngine struct {
	k      *sim.Kernel
	segs   []*ring.SegRing
	geo    *ring.Geometry
	lo, hi int

	caches  []*cache.Cache
	banks   []*memory.Bank
	home    *memory.HomeMap
	dir     *memory.Directory
	pending []segPending

	// WriteBacks counts dirty-eviction block messages; wbByNode feeds
	// the core's per-processor warmup gating.
	WriteBacks uint64
	wbByNode   []uint64
}

// NewSegmented returns a directory engine over the given (already
// linked) ring segments, which must cover a contiguous node range.
// opts is interpreted as for New; the tracer is rejected — the
// segmented engine is the parallel covered class, and spans sample on
// a global counter that has no deterministic sharded equivalent.
func NewSegmented(segs []*ring.SegRing, opts Options) *SegEngine {
	opts.fill()
	if len(segs) == 0 {
		panic("directory: NewSegmented needs at least one segment")
	}
	if opts.Tracer != nil {
		panic("directory: tracing is unsupported with the segmented ring")
	}
	lo, _ := segs[0].NodeRange()
	_, hi := segs[len(segs)-1].NodeRange()
	n := segs[0].Geo.Nodes
	e := &SegEngine{
		k:       segs[0].Kernel(),
		segs:    segs,
		geo:     &segs[0].Geo,
		lo:      lo,
		hi:      hi,
		caches:  make([]*cache.Cache, n),
		banks:   make([]*memory.Bank, n),
		home:    homeMapFor(n, opts),
		dir:     memory.NewDirectory(),
		pending: make([]segPending, n),
	}
	e.wbByNode = make([]uint64, n)
	for i := lo; i < hi; i++ {
		e.caches[i] = cache.New(opts.Cache)
		e.banks[i] = memory.NewBank(e.k, "mem")
	}
	for _, sr := range e.segs {
		sr.SetClient(e)
	}
	return e
}

// Segments returns the engine's ring segments.
func (e *SegEngine) Segments() []*ring.SegRing { return e.segs }

// HomeMap returns the page-to-home placement.
func (e *SegEngine) HomeMap() *memory.HomeMap { return e.home }

// Cache returns node's cache (tests only).
func (e *SegEngine) Cache(node int) *cache.Cache { return e.caches[node] }

// WriteBacksOf returns the write-backs caused by node's own evictions.
func (e *SegEngine) WriteBacksOf(node int) uint64 { return e.wbByNode[node] }

// segOf returns the segment ring owning node (which must be in range).
func (e *SegEngine) segOf(node int) *ring.SegRing {
	return e.segs[e.geo.SegOf(node)-e.segs[0].Segment()]
}

// HasBlock reports whether node caches the block containing addr in a
// readable state.
func (e *SegEngine) HasBlock(node int, addr uint64) bool {
	c := e.caches[node]
	return c.State(c.BlockAddr(addr)) != coherence.Invalid
}

// Access performs one data reference for node; done fires at
// completion.
func (e *SegEngine) Access(node int, addr uint64, write bool, done func(at sim.Time, res coherence.Result)) {
	c := e.caches[node]
	block := c.BlockAddr(addr)
	switch c.Lookup(addr, write) {
	case cache.Hit:
		done(e.k.Now(), coherence.Result{Hit: true})
	case cache.MissRead:
		e.miss(node, block, false, done)
	case cache.MissWrite:
		e.miss(node, block, true, done)
	case cache.Upgrade:
		e.upgrade(node, block, done)
	}
}

// setPending parks node's outstanding request until its response
// packet lands. Blocking processors have at most one in flight.
func (e *SegEngine) setPending(node int, block uint64, write, upgrade bool, done func(sim.Time, coherence.Result)) {
	p := &e.pending[node]
	if p.active {
		panic(fmt.Sprintf("directory: node %d already has an outstanding request (block %#x)", node, p.block))
	}
	*p = segPending{active: true, upgrade: upgrade, block: block, write: write, done: done}
}

// takePending retrieves and clears node's outstanding request,
// checking it matches the response's block.
func (e *SegEngine) takePending(node int, block uint64) segPending {
	p := e.pending[node]
	if !p.active || p.block != block {
		panic(fmt.Sprintf("directory: node %d got response for block %#x with no matching request", node, block))
	}
	e.pending[node] = segPending{}
	return p
}

// fill installs a block, sending a write-back for any dirty victim.
func (e *SegEngine) fill(node int, block uint64, st coherence.State) {
	if v := e.caches[node].Fill(block, st); v.Valid && v.Dirty {
		if DebugEvict != nil {
			DebugEvict(node, block, v.Block)
		}
		e.writeBack(node, v.Block)
	}
}

// writeBack returns a dirty block to its home, off the critical path.
func (e *SegEngine) writeBack(node int, block uint64) {
	e.WriteBacks++
	e.wbByNode[node]++
	h := e.home.Home(block)
	if h == node {
		e.banks[h].Access(func() {
			e.dir.Line(block).RemoveSharer(node)
		})
		return
	}
	e.segOf(node).Send(node, h, ring.BlockSlot, ring.SegPayload{Kind: pkWB, X: int32(node), A: block})
}

// miss services a read or write miss.
func (e *SegEngine) miss(node int, block uint64, write bool, done func(sim.Time, coherence.Result)) {
	h := e.home.Home(block)
	if h == node {
		e.localMiss(node, block, write, done)
		return
	}
	var fl uint8
	if write {
		fl = flagWrite
	}
	e.setPending(node, block, write, false, done)
	e.segOf(node).Send(node, h, e.geo.ProbeClassFor(block),
		ring.SegPayload{Kind: pkReq, Flags: fl, X: int32(node), A: block})
}

// localMiss handles a miss whose home is the requesting node. The
// directory decisions are the closure engine's, packet-shaped.
func (e *SegEngine) localMiss(node int, block uint64, write bool, done func(sim.Time, coherence.Result)) {
	e.banks[node].Access(func() {
		ln := e.dir.Line(block)
		dirtyRemote := ln.Dirty && ln.Owner != node
		switch {
		case dirtyRemote:
			// Request straight to the dirty node; it supplies the block
			// directly back: exactly one traversal (n→o→n).
			o := ln.Owner
			txn := coherence.ReadMissDirty
			var fl uint8
			if write {
				txn = coherence.WriteMissDirty
				fl = flagWrite
				ln.SetDirty(node)
			} else {
				ln.Dirty = false
				ln.AddSharer(node)
			}
			e.setPending(node, block, write, false, done)
			e.segOf(node).Send(node, o, e.geo.ProbeClassFor(block), ring.SegPayload{
				Kind: pkOwnerReq, Flags: fl, X: int32(node), A: block,
				B: encodeRes(txn, coherence.OneCycleDirty, 1),
			})
		case write && ln.NumSharers() > 0 && !(ln.NumSharers() == 1 && ln.HasSharer(node)):
			// Local write miss, block shared remotely: multicast and
			// wait for the sweep to return before completing.
			ln.SetDirty(node)
			e.setPending(node, block, write, false, done)
			e.segOf(node).Send(node, ring.Broadcast, e.geo.ProbeClassFor(block), ring.SegPayload{
				Kind: pkInvalFill, Flags: flagWrite, X: int32(node), A: block,
				B: encodeRes(coherence.WriteMissClean, coherence.OneCycleClean, 1),
			})
		default:
			// Purely local.
			if write {
				ln.SetDirty(node)
				e.fill(node, block, coherence.WriteExclusive)
				done(e.k.Now(), coherence.Result{Txn: coherence.WriteMissClean, Local: true})
			} else {
				ln.AddSharer(node)
				e.fill(node, block, coherence.ReadShared)
				done(e.k.Now(), coherence.Result{Txn: coherence.ReadMissClean, Local: true})
			}
		}
	})
}

// upgrade services an invalidation request: the requester holds RS and
// asks the home for write permission.
func (e *SegEngine) upgrade(node int, block uint64, done func(sim.Time, coherence.Result)) {
	h := e.home.Home(block)
	if h == node {
		e.banks[h].Access(func() {
			ln := e.dir.Line(block)
			if sharedElsewhere(ln, node, node) {
				ln.SetDirty(node)
				e.setPending(node, block, true, true, done)
				e.segOf(node).Send(node, ring.Broadcast, e.geo.ProbeClassFor(block), ring.SegPayload{
					Kind: pkInvalLocal, X: int32(node), A: block,
					B: encodeRes(coherence.Invalidation, coherence.LocalOrHit, 1),
				})
			} else {
				ln.SetDirty(node)
				e.finishUpgrade(node, block, e.k.Now(), 0, done)
			}
		})
		return
	}
	e.setPending(node, block, true, true, done)
	e.segOf(node).Send(node, h, e.geo.ProbeClassFor(block),
		ring.SegPayload{Kind: pkUpReq, X: int32(node), A: block})
}

// finishUpgrade grants write permission at the requester.
func (e *SegEngine) finishUpgrade(node int, block uint64, at sim.Time, trav int, done func(sim.Time, coherence.Result)) {
	if !e.caches[node].Upgrade(block) {
		// Invalidated by a racing writer while our request was in
		// flight; the permission grant still stands per the directory,
		// so install fresh.
		e.fill(node, block, coherence.WriteExclusive)
	}
	done(at, coherence.Result{Txn: coherence.Invalidation, Traversals: trav, Local: trav == 0})
}

// atHome runs the home-node directory actions for a remote miss, at
// the point the home's bank grants the (lookup + fetch) access.
func (e *SegEngine) atHome(node, h int, block uint64, write bool) {
	g := e.geo
	ln := e.dir.Line(block)
	dirtyRemote := ln.Dirty && ln.Owner != node && ln.Owner != h
	if DebugMiss != nil {
		DebugMiss(block, ln.NumSharers(), ln.Dirty, ln.Owner, node, write)
	}
	var fl uint8
	if write {
		fl = flagWrite
	}

	switch {
	case dirtyRemote:
		// Forward to the dirty node; it supplies the block to the
		// requester. One extra traversal unless the owner lies on the
		// home→requester arc (Figure 2.b).
		o := ln.Owner
		total := g.DistStages(node, h) + g.DistStages(h, o) + g.DistStages(o, node)
		trav := e.traversals(total)
		txn := coherence.ReadMissDirty
		if write {
			txn = coherence.WriteMissDirty
			ln.SetDirty(node)
		} else {
			ln.Dirty = false
			ln.AddSharer(node)
		}
		e.segOf(h).Send(h, o, g.ProbeClassFor(block), ring.SegPayload{
			Kind: pkOwnerReq, Flags: fl, X: int32(node), A: block,
			B: encodeRes(txn, classifyDirty(trav), trav),
		})

	case write && sharedElsewhere(ln, node, h):
		// Multicast invalidation, then respond: two traversals total.
		// The home's own copy (if any) dies too.
		e.caches[h].Invalidate(block)
		ln.SetDirty(node)
		e.segOf(h).Send(h, ring.Broadcast, g.ProbeClassFor(block), ring.SegPayload{
			Kind: pkInvalSend, Flags: fl, X: int32(node), A: block,
			B: encodeRes(coherence.WriteMissClean, coherence.TwoCycle, 2),
		})

	default:
		// Clean (or home-owned): the home supplies directly. If the
		// home's own cache holds it WE, it downgrades/invalidates.
		txn := coherence.ReadMissClean
		if ln.Dirty && ln.Owner == h {
			txn = coherence.ReadMissDirty
			if write {
				txn = coherence.WriteMissDirty
				e.caches[h].Invalidate(block)
			} else {
				e.caches[h].Downgrade(block)
			}
		} else if write {
			txn = coherence.WriteMissClean
			e.caches[h].Invalidate(block)
		}
		if write {
			ln.SetDirty(node)
		} else {
			ln.Dirty = false
			ln.AddSharer(node)
		}
		class := coherence.OneCycleClean
		if txn == coherence.ReadMissDirty || txn == coherence.WriteMissDirty {
			class = coherence.OneCycleDirty
		}
		e.segOf(h).Send(h, node, ring.BlockSlot, ring.SegPayload{
			Kind: pkBlockData, Flags: fl, X: int32(node), A: block,
			B: encodeRes(txn, class, 1),
		})
	}
}

// traversals converts a total downstream path length into ring
// traversals.
func (e *SegEngine) traversals(stages int) int {
	t := stages / e.geo.TotalStages
	if stages%e.geo.TotalStages != 0 {
		t++
	}
	if t == 0 {
		t = 1
	}
	return t
}

// SegDeliver interprets a point-to-point packet at its destination.
func (e *SegEngine) SegDeliver(dst int, at sim.Time, p ring.SegPayload) {
	block := p.A
	write := p.Flags&flagWrite != 0
	switch p.Kind {
	case pkReq:
		// dst is the home; the requester is p.X. The home's bank
		// serializes the directory lookup.
		req := int(p.X)
		e.banks[dst].Access(func() {
			e.atHome(req, dst, block, write)
		})

	case pkUpReq:
		req := int(p.X)
		e.banks[dst].Access(func() {
			ln := e.dir.Line(block)
			if DebugUpgrade != nil {
				DebugUpgrade(block, ln.NumSharers(), dst, req, sharedElsewhere(ln, req, dst))
			}
			if sharedElsewhere(ln, req, dst) {
				e.caches[dst].Invalidate(block)
				ln.SetDirty(req)
				e.segOf(dst).Send(dst, ring.Broadcast, e.geo.ProbeClassFor(block), ring.SegPayload{
					Kind: pkInvalAck, X: int32(req), Y: int32(dst), A: block,
					B: encodeRes(coherence.Invalidation, coherence.LocalOrHit, 2),
				})
			} else {
				e.caches[dst].Invalidate(block)
				ln.SetDirty(req)
				e.segOf(dst).Send(dst, req, e.geo.ProbeClassFor(block), ring.SegPayload{
					Kind: pkAck, X: int32(req), A: block,
					B: encodeRes(coherence.Invalidation, coherence.LocalOrHit, 1),
				})
			}
		})

	case pkOwnerReq:
		// dst is the dirty owner: fetch from cache, downgrade or
		// invalidate the copy, ship the block to the requester.
		req := int(p.X)
		if write {
			e.caches[dst].Invalidate(block)
		} else {
			e.caches[dst].Downgrade(block)
		}
		resp := ring.SegPayload{Kind: pkBlockData, Flags: p.Flags, X: p.X, A: block, B: p.B}
		e.k.After(CacheSupplyTime, func() {
			e.segOf(dst).Send(dst, req, ring.BlockSlot, resp)
		})

	case pkBlockData:
		// dst is the original requester: install and complete.
		pend := e.takePending(dst, block)
		txn, class, trav := decodeRes(p.B)
		st := coherence.ReadShared
		if pend.write {
			st = coherence.WriteExclusive
		}
		e.fill(dst, block, st)
		pend.done(at, coherence.Result{Txn: txn, Class: class, Traversals: trav})

	case pkAck:
		pend := e.takePending(dst, block)
		_, _, trav := decodeRes(p.B)
		e.finishUpgrade(dst, block, at, trav, pend.done)

	case pkWB:
		// dst is the home: record the returned block.
		src := int(p.X)
		e.banks[dst].Access(func() {
			e.dir.Line(block).RemoveSharer(src)
		})

	default:
		panic(fmt.Sprintf("directory: unexpected delivery kind %d at node %d", p.Kind, dst))
	}
}

// SegVisit observes a passing message head. Only invalidation sweeps
// act on intermediate nodes: every copy except the requester's dies.
func (e *SegEngine) SegVisit(node int, at sim.Time, p ring.SegPayload) {
	switch p.Kind {
	case pkInvalFill, pkInvalLocal, pkInvalSend, pkInvalAck:
		if node != int(p.X) {
			e.caches[node].Invalidate(p.A)
		}
	}
}

// SegReturn completes a broadcast at its source.
func (e *SegEngine) SegReturn(src int, at sim.Time, p ring.SegPayload) {
	block := p.A
	switch p.Kind {
	case pkInvalFill:
		// src is the requesting home node: the sweep is back, install
		// write-exclusive and complete.
		pend := e.takePending(src, block)
		txn, class, trav := decodeRes(p.B)
		e.fill(src, block, coherence.WriteExclusive)
		pend.done(at, coherence.Result{Txn: txn, Class: class, Traversals: trav})

	case pkInvalLocal:
		pend := e.takePending(src, block)
		_, _, trav := decodeRes(p.B)
		e.finishUpgrade(src, block, at, trav, pend.done)

	case pkInvalSend:
		// src is the home: sweep done, ship the data to the requester.
		req := int(p.X)
		e.segOf(src).Send(src, req, ring.BlockSlot, ring.SegPayload{
			Kind: pkBlockData, Flags: p.Flags, X: p.X, A: block, B: p.B,
		})

	case pkInvalAck:
		// src is the home: sweep done, ack the upgrade.
		req := int(p.X)
		e.segOf(src).Send(src, req, e.geo.ProbeClassFor(block), ring.SegPayload{
			Kind: pkAck, X: p.X, A: block, B: p.B,
		})

	default:
		panic(fmt.Sprintf("directory: unexpected broadcast return kind %d at node %d", p.Kind, src))
	}
}
