package directory

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/memory"
	"repro/internal/ring"
	"repro/internal/sim"
)

func testEngine(t *testing.T, nodes int) (*sim.Kernel, *Engine) {
	t.Helper()
	k := sim.NewKernel()
	r := ring.New(k, ring.Config{Nodes: nodes})
	return k, New(r, Options{Seed: 1})
}

func access(k *sim.Kernel, e *Engine, node int, addr uint64, write bool) (coherence.Result, sim.Time) {
	var res coherence.Result
	var lat sim.Time = -1
	start := k.Now()
	e.Access(node, addr, write, func(at sim.Time, r coherence.Result) {
		res = r
		lat = at - start
	})
	k.Run()
	if lat < 0 {
		panic("access never completed")
	}
	return res, lat
}

func TestHit(t *testing.T) {
	k, e := testEngine(t, 4)
	e.HomeMap().Place(0x1000, 1)
	access(k, e, 0, 0x1000, false)
	res, lat := access(k, e, 0, 0x1000, false)
	if !res.Hit || lat != 0 {
		t.Fatalf("res=%+v lat=%v, want immediate hit", res, lat)
	}
}

func TestRemoteCleanReadMissIsOneTraversal(t *testing.T) {
	k, e := testEngine(t, 8)
	e.HomeMap().Place(0x1000, 5)
	res, lat := access(k, e, 1, 0x1000, false)
	if res.Txn != coherence.ReadMissClean || res.Local {
		t.Fatalf("res = %+v, want remote clean read miss", res)
	}
	if res.Class != coherence.OneCycleClean {
		t.Fatalf("class = %v, want 1-cycle-clean", res.Class)
	}
	if res.Traversals != 1 {
		t.Fatalf("traversals = %d, want 1", res.Traversals)
	}
	rtt := e.Ring().Geo.RoundTrip()
	// One traversal + one bank access + slot waits.
	if lat < rtt+memory.BankTime || lat > 2*rtt+memory.BankTime+rtt {
		t.Fatalf("latency %v implausible for a 1-traversal miss", lat)
	}
	// Directory now records the sharer.
	ln := e.Directory().Line(0x1000)
	if !ln.HasSharer(1) || ln.Dirty {
		t.Fatalf("directory line wrong after clean read: %+v", ln)
	}
}

func TestLocalCleanMissUsesNoRing(t *testing.T) {
	k, e := testEngine(t, 8)
	e.HomeMap().Place(0x2000, 3)
	res, lat := access(k, e, 3, 0x2000, false)
	if !res.Local || res.Traversals != 0 {
		t.Fatalf("res = %+v, want local, 0 traversals", res)
	}
	if lat != memory.BankTime {
		t.Fatalf("local miss latency = %v, want 140ns", lat)
	}
}

func TestDirtyMissClassDependsOnOwnerPosition(t *testing.T) {
	// Requester n, home h, owner o: one traversal iff o is on the
	// h→n arc. With n=0, h=2: owner at 5 (on 2→0 arc) → 1 traversal;
	// owner at 1 (on 0→2 arc) → 2 traversals.
	cases := []struct {
		owner     int
		wantTrav  int
		wantClass coherence.MissClass
	}{
		{owner: 5, wantTrav: 1, wantClass: coherence.OneCycleDirty},
		{owner: 1, wantTrav: 2, wantClass: coherence.TwoCycle},
	}
	for _, c := range cases {
		k, e := testEngine(t, 8)
		e.HomeMap().Place(0x3000, 2)
		access(k, e, c.owner, 0x3000, true) // make owner dirty
		res, _ := access(k, e, 0, 0x3000, false)
		if res.Txn != coherence.ReadMissDirty {
			t.Fatalf("owner %d: txn = %v, want read-miss-dirty", c.owner, res.Txn)
		}
		if res.Traversals != c.wantTrav || res.Class != c.wantClass {
			t.Fatalf("owner %d: traversals/class = %d/%v, want %d/%v",
				c.owner, res.Traversals, res.Class, c.wantTrav, c.wantClass)
		}
		// The owner downgraded; the reader holds RS; dirty bit clear.
		if e.Cache(c.owner).State(0x3000) != coherence.ReadShared {
			t.Fatal("owner did not downgrade")
		}
		if e.Cache(0).State(0x3000) != coherence.ReadShared {
			t.Fatal("reader did not get RS")
		}
		if e.Directory().Line(0x3000).Dirty {
			t.Fatal("dirty bit survived read miss")
		}
	}
}

func TestWriteMissWithSharersIsTwoTraversals(t *testing.T) {
	k, e := testEngine(t, 8)
	e.HomeMap().Place(0x4000, 2)
	access(k, e, 4, 0x4000, false)
	access(k, e, 6, 0x4000, false)
	res, _ := access(k, e, 0, 0x4000, true)
	if res.Txn != coherence.WriteMissClean {
		t.Fatalf("txn = %v, want write-miss-clean", res.Txn)
	}
	if res.Traversals != 2 || res.Class != coherence.TwoCycle {
		t.Fatalf("traversals/class = %d/%v, want 2/two-cycle", res.Traversals, res.Class)
	}
	for _, n := range []int{4, 6} {
		if e.Cache(n).State(0x4000) != coherence.Invalid {
			t.Fatalf("sharer %d survived multicast", n)
		}
	}
	ln := e.Directory().Line(0x4000)
	if !ln.Dirty || ln.Owner != 0 || ln.NumSharers() != 1 {
		t.Fatalf("directory after write miss: %+v", ln)
	}
}

func TestWriteMissNoSharersIsOneTraversal(t *testing.T) {
	k, e := testEngine(t, 8)
	e.HomeMap().Place(0x5000, 2)
	res, _ := access(k, e, 0, 0x5000, true)
	if res.Traversals != 1 || res.Class != coherence.OneCycleClean {
		t.Fatalf("traversals/class = %d/%v, want 1/one-cycle-clean", res.Traversals, res.Class)
	}
}

func TestUpgradeWithSharersTwoTraversals(t *testing.T) {
	k, e := testEngine(t, 8)
	e.HomeMap().Place(0x6000, 2)
	access(k, e, 0, 0x6000, false)
	access(k, e, 5, 0x6000, false)
	res, _ := access(k, e, 0, 0x6000, true) // upgrade, sharer at 5
	if res.Txn != coherence.Invalidation {
		t.Fatalf("txn = %v, want invalidation", res.Txn)
	}
	if res.Traversals != 2 {
		t.Fatalf("traversals = %d, want 2 (request + multicast + ack)", res.Traversals)
	}
	if e.Cache(5).State(0x6000) != coherence.Invalid {
		t.Fatal("sharer survived invalidation")
	}
	if e.Cache(0).State(0x6000) != coherence.WriteExclusive {
		t.Fatal("upgrader not WE")
	}
}

func TestUpgradeSoleSharerOneTraversal(t *testing.T) {
	k, e := testEngine(t, 8)
	e.HomeMap().Place(0x7000, 2)
	access(k, e, 0, 0x7000, false)
	res, _ := access(k, e, 0, 0x7000, true)
	if res.Traversals != 1 {
		t.Fatalf("traversals = %d, want 1 (request + ack, no multicast)", res.Traversals)
	}
}

func TestLocalUpgradeNoSharersIsFree(t *testing.T) {
	k, e := testEngine(t, 8)
	e.HomeMap().Place(0x8000, 3)
	access(k, e, 3, 0x8000, false)
	res, _ := access(k, e, 3, 0x8000, true)
	if !res.Local || res.Traversals != 0 {
		t.Fatalf("res = %+v, want local 0-traversal upgrade", res)
	}
	if e.Cache(3).State(0x8000) != coherence.WriteExclusive {
		t.Fatal("upgrader not WE")
	}
}

func TestLocalMissOnRemoteDirtyBlock(t *testing.T) {
	// Home node misses on its own block while a remote node holds it
	// dirty: one traversal (home → owner → home).
	k, e := testEngine(t, 8)
	e.HomeMap().Place(0x9000, 2)
	access(k, e, 6, 0x9000, true)
	res, _ := access(k, e, 2, 0x9000, false)
	if res.Txn != coherence.ReadMissDirty || res.Traversals != 1 || res.Class != coherence.OneCycleDirty {
		t.Fatalf("res = %+v, want 1-traversal dirty read", res)
	}
	if e.Cache(6).State(0x9000) != coherence.ReadShared {
		t.Fatal("owner did not downgrade")
	}
}

func TestDirtyEvictionWritesBackAndClearsDirectory(t *testing.T) {
	k, e := testEngine(t, 4)
	const a, b = 0x1_0000_0000, 0x1_0002_0000 // same cache set
	e.HomeMap().Place(a, 1)
	e.HomeMap().Place(b, 1)
	access(k, e, 0, a, true)
	access(k, e, 0, b, false) // evicts dirty a
	k.Run()                   // let the write-back land
	if e.WriteBacks != 1 {
		t.Fatalf("WriteBacks = %d, want 1", e.WriteBacks)
	}
	ln := e.Directory().Line(e.Cache(0).BlockAddr(a))
	if ln.Dirty || ln.HasSharer(0) {
		t.Fatalf("directory not cleaned by write-back: %+v", ln)
	}
	res, _ := access(k, e, 2, a, false)
	if res.Txn != coherence.ReadMissClean {
		t.Fatalf("post-write-back read = %+v, want clean miss", res)
	}
}

func TestHomeOwnedDirtySupplyCountsAsDirtyMiss(t *testing.T) {
	// The home's own cache holds the block WE: the request still takes
	// one traversal, but the transaction is a dirty miss.
	k, e := testEngine(t, 8)
	e.HomeMap().Place(0xa000, 2)
	access(k, e, 2, 0xa000, true) // home takes it WE locally
	res, _ := access(k, e, 0, 0xa000, false)
	if res.Txn != coherence.ReadMissDirty || res.Traversals != 1 {
		t.Fatalf("res = %+v, want 1-traversal dirty read from home cache", res)
	}
	if e.Cache(2).State(0xa000) != coherence.ReadShared {
		t.Fatal("home cache did not downgrade")
	}
}

func TestDirectoryStateConsistencyUnderRandomTraffic(t *testing.T) {
	k := sim.NewKernel()
	r := ring.New(k, ring.Config{Nodes: 8})
	e := New(r, Options{Seed: 7})
	rng := sim.NewRand(123)
	blocks := []uint64{0x1000, 0x2000, 0x3000, 0x4000, 0x5000}
	for i := 0; i < 300; i++ {
		node := rng.Intn(8)
		blk := blocks[rng.Intn(len(blocks))]
		write := rng.Bool(0.4)
		doneCalled := false
		e.Access(node, blk, write, func(sim.Time, coherence.Result) { doneCalled = true })
		k.Run()
		if !doneCalled {
			t.Fatal("access did not complete")
		}
		for _, b := range blocks {
			ln := e.Directory().Line(b)
			writers := 0
			for n := 0; n < 8; n++ {
				st := e.Cache(n).State(b)
				if st == coherence.WriteExclusive {
					writers++
					if !ln.Dirty || ln.Owner != n {
						t.Fatalf("block %#x: cache %d WE but directory says dirty=%v owner=%d",
							b, n, ln.Dirty, ln.Owner)
					}
				}
				if st != coherence.Invalid && !ln.HasSharer(n) {
					t.Fatalf("block %#x: cache %d holds %v without presence bit", b, n, st)
				}
			}
			if writers > 1 {
				t.Fatalf("block %#x has %d writers", b, writers)
			}
		}
	}
}
