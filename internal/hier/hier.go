// Package hier implements the hierarchical-ring extension the paper
// points at in its related work (Section 5): machines like Toronto's
// Hector and the Kendall Square KSR1 build large systems from a
// two-level hierarchy of unidirectional slotted rings — clusters of
// processors on fast local rings, joined by inter-ring interfaces
// (IRIs) on a global ring — with coherence maintained by hierarchical
// snooping.
//
// Requests circulate the local ring first; the IRI, which keeps a
// summary of which clusters hold copies (the role of the KSR1's
// ring directory), forwards them onto the global ring only when a
// remote cluster must participate. Cluster-local sharing therefore
// pays only the small local round trip, while inter-cluster
// transactions pay local + global + local — the trade the extension
// experiment quantifies against the paper's flat 64-node ring.
package hier

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/memory"
	"repro/internal/ring"
	"repro/internal/sim"
)

// CacheSupplyTime matches the flat engines' remote fetch time.
const CacheSupplyTime = memory.BankTime

// Options configures a hierarchical engine.
type Options struct {
	// Clusters is the number of local rings; the node count must be an
	// exact multiple.
	Clusters int
	// Ring is the physical configuration shared by the local rings and
	// the global ring (clock, width, block size, slot mix).
	Ring ring.Config
	// Cache is the per-node cache geometry (zero: paper defaults).
	Cache cache.Config
	// PageBytes is the home-placement granularity; default 4096.
	PageBytes int
	// Seed drives random page placement.
	Seed uint64
	// Home, when non-nil, supplies a pre-built placement.
	Home *memory.HomeMap
}

// hmeta is the home-side and IRI-summary state of one block.
type hmeta struct {
	dirty  bool
	owner  int
	copies []int // cached copies per cluster (the IRIs' summary)
}

// Engine is a hierarchical snooping coherence engine.
type Engine struct {
	k        *sim.Kernel
	nodes    int
	clusters int
	perClus  int
	global   *ring.Ring
	locals   []*ring.Ring
	caches   []*cache.Cache
	banks    []*memory.Bank
	home     *memory.HomeMap
	meta     map[uint64]*hmeta

	// WriteBacks counts dirty-eviction transfers.
	WriteBacks uint64
	wbByNode   []uint64
	// Txns counts coherence transactions (misses and upgrades);
	// GlobalTxns the subset that crossed the global ring. Both span the
	// whole run.
	Txns       uint64
	GlobalTxns uint64
}

// New returns a hierarchical engine for nodes processors in
// opts.Clusters clusters, attached to k.
func New(k *sim.Kernel, nodes int, opts Options) *Engine {
	if opts.Clusters <= 1 {
		panic("hier: need at least two clusters")
	}
	if nodes%opts.Clusters != 0 {
		panic(fmt.Sprintf("hier: %d nodes not divisible into %d clusters", nodes, opts.Clusters))
	}
	if opts.PageBytes == 0 {
		opts.PageBytes = 4096
	}
	per := nodes / opts.Clusters
	e := &Engine{
		k:        k,
		nodes:    nodes,
		clusters: opts.Clusters,
		perClus:  per,
		caches:   make([]*cache.Cache, nodes),
		banks:    make([]*memory.Bank, nodes),
		wbByNode: make([]uint64, nodes),
		meta:     make(map[uint64]*hmeta),
	}
	gc := opts.Ring
	gc.Nodes = opts.Clusters
	e.global = ring.New(k, gc)
	e.locals = make([]*ring.Ring, opts.Clusters)
	for c := range e.locals {
		lc := opts.Ring
		lc.Nodes = per + 1 // the extra interface is the IRI
		e.locals[c] = ring.New(k, lc)
	}
	if opts.Home != nil {
		e.home = opts.Home
	} else {
		e.home = memory.NewHomeMap(nodes, opts.PageBytes, sim.NewRand(opts.Seed))
	}
	for i := 0; i < nodes; i++ {
		e.caches[i] = cache.New(opts.Cache)
		e.banks[i] = memory.NewBank(k, "mem")
	}
	return e
}

// cluster returns node n's cluster; local its position on that ring.
func (e *Engine) cluster(n int) int { return n / e.perClus }
func (e *Engine) local(n int) int   { return n % e.perClus }

// iri is the IRI's interface position on every local ring.
func (e *Engine) iri() int { return e.perClus }

// Clusters returns the cluster count.
func (e *Engine) Clusters() int { return e.clusters }

// GlobalRing returns the inter-cluster ring.
func (e *Engine) GlobalRing() *ring.Ring { return e.global }

// LocalRing returns cluster c's ring.
func (e *Engine) LocalRing(c int) *ring.Ring { return e.locals[c] }

// Cache returns node's cache.
func (e *Engine) Cache(node int) *cache.Cache { return e.caches[node] }

// HomeMap returns the page placement.
func (e *Engine) HomeMap() *memory.HomeMap { return e.home }

// NetworkUtilization reports the slot utilization averaged over every
// ring (local rings and global), weighted by slot count.
func (e *Engine) NetworkUtilization() float64 {
	var num, den float64
	add := func(r *ring.Ring) {
		n := float64(r.Geo.NumSlots())
		num += r.OverallUtilization() * n
		den += n
	}
	add(e.global)
	for _, r := range e.locals {
		add(r)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// ResetNetStats restarts every ring's statistics window.
func (e *Engine) ResetNetStats() {
	e.global.ResetStats()
	for _, r := range e.locals {
		r.ResetStats()
	}
}

// GlobalShare reports the fraction of coherence transactions that
// crossed the global ring, over the whole run.
func (e *Engine) GlobalShare() float64 {
	if e.Txns == 0 {
		return 0
	}
	return float64(e.GlobalTxns) / float64(e.Txns)
}

// HasBlock implements the core engine probe.
func (e *Engine) HasBlock(node int, addr uint64) bool {
	c := e.caches[node]
	return c.State(c.BlockAddr(addr)) != coherence.Invalid
}

func (e *Engine) metaFor(block uint64) *hmeta {
	m := e.meta[block]
	if m == nil {
		m = &hmeta{owner: -1, copies: make([]int, e.clusters)}
		e.meta[block] = m
	}
	return m
}

// remoteCopies reports whether any cluster other than c holds a copy.
func (m *hmeta) remoteCopies(c int) bool {
	for i, n := range m.copies {
		if i != c && n > 0 {
			return true
		}
	}
	return false
}

// Access implements the core engine interface.
func (e *Engine) Access(node int, addr uint64, write bool, done func(at sim.Time, res coherence.Result)) {
	c := e.caches[node]
	block := c.BlockAddr(addr)
	switch c.Lookup(addr, write) {
	case cache.Hit:
		done(e.k.Now(), coherence.Result{Hit: true})
	case cache.MissRead:
		e.miss(node, block, false, done)
	case cache.MissWrite:
		e.miss(node, block, true, done)
	case cache.Upgrade:
		e.upgrade(node, block, done)
	}
}

// invalidate drops node's copy and maintains the cluster summary.
func (e *Engine) invalidate(node int, block uint64) {
	if e.caches[node].Invalidate(block) != coherence.Invalid {
		m := e.metaFor(block)
		if c := e.cluster(node); m.copies[c] > 0 {
			m.copies[c]--
		}
	}
}

// fill installs a block, maintaining the summary and writing back any
// dirty victim.
func (e *Engine) fill(node int, block uint64, st coherence.State) {
	v := e.caches[node].Fill(block, st)
	e.metaFor(block).copies[e.cluster(node)]++
	if !v.Valid {
		return
	}
	vm := e.metaFor(v.Block)
	if c := e.cluster(node); vm.copies[c] > 0 {
		vm.copies[c]--
	}
	if v.Dirty {
		e.writeBack(node, v.Block)
	}
}

// WriteBacksOf returns the write-backs caused by node's own evictions;
// the core's per-processor warmup gating reads it.
func (e *Engine) WriteBacksOf(node int) uint64 { return e.wbByNode[node] }

// writeBack returns a dirty block to its home, off the critical path.
func (e *Engine) writeBack(node int, block uint64) {
	e.WriteBacks++
	e.wbByNode[node]++
	h := e.home.Home(block)
	land := func(sim.Time) {
		m := e.metaFor(block)
		if m.dirty && m.owner == node {
			m.dirty = false
		}
		e.banks[h].Access(nil)
	}
	if h == node {
		land(e.k.Now())
		return
	}
	e.sendBlockPath(node, h, land)
}

// sendProbePath routes a point-to-point probe from node a to node b
// through up to three ring legs (local → global → local).
func (e *Engine) sendProbePath(a, b int, block uint64, arrived func(at sim.Time)) {
	ca, cb := e.cluster(a), e.cluster(b)
	class := e.locals[ca].Geo.ProbeClassFor(block)
	if ca == cb {
		e.locals[ca].Send(e.local(a), e.local(b), class, nil, func(at sim.Time) { arrived(at) })
		return
	}
	e.locals[ca].Send(e.local(a), e.iri(), class, nil, func(sim.Time) {
		e.global.Send(ca, cb, class, nil, func(sim.Time) {
			e.locals[cb].Send(e.iri(), e.local(b), class, nil, func(at sim.Time) { arrived(at) })
		})
	})
}

// sendBlockPath routes a block message likewise.
func (e *Engine) sendBlockPath(a, b int, delivered func(at sim.Time)) {
	ca, cb := e.cluster(a), e.cluster(b)
	if ca == cb {
		e.locals[ca].Send(e.local(a), e.local(b), ring.BlockSlot, nil, func(at sim.Time) { delivered(at) })
		return
	}
	e.locals[ca].Send(e.local(a), e.iri(), ring.BlockSlot, nil, func(sim.Time) {
		e.global.Send(ca, cb, ring.BlockSlot, nil, func(sim.Time) {
			e.locals[cb].Send(e.iri(), e.local(b), ring.BlockSlot, nil, func(at sim.Time) { delivered(at) })
		})
	})
}

// supply fetches the block at the responder (bank at the clean home,
// cache at a dirty owner) and ships it to the requester.
func (e *Engine) supply(responder, requester int, fromCache bool, delivered func(at sim.Time)) {
	send := func() { e.sendBlockPath(responder, requester, delivered) }
	if fromCache {
		e.k.After(CacheSupplyTime, send)
	} else {
		e.banks[responder].Access(send)
	}
}

// DebugGlobal, when non-nil, observes each miss's routing decision.
// Test-only instrumentation.
var DebugGlobal func(block uint64, global, remoteResponder, dirty, write bool)

// miss services a read or write miss.
func (e *Engine) miss(node int, block uint64, write bool, done func(sim.Time, coherence.Result)) {
	m := e.metaFor(block)
	h := e.home.Home(block)
	cn := e.cluster(node)
	dirtyRemote := m.dirty && m.owner != node

	// Pure local: clean block homed here, and (for writes) no copies
	// anywhere else per the IRI summary.
	soleCopies := !m.remoteCopies(cn) && m.copies[cn] == 0
	if h == node && !dirtyRemote && (!write || soleCopies) {
		e.banks[h].Access(func() {
			st := coherence.ReadShared
			if write {
				st = coherence.WriteExclusive
				m.dirty = true
				m.owner = node
			}
			e.fill(node, block, st)
			txn := coherence.ReadMissClean
			if write {
				txn = coherence.WriteMissClean
			}
			done(e.k.Now(), coherence.Result{Txn: txn, Local: true})
		})
		return
	}

	responder := h
	if dirtyRemote {
		responder = m.owner
	}
	txn := coherence.ReadMissClean
	switch {
	case write && dirtyRemote:
		txn = coherence.WriteMissDirty
	case write:
		txn = coherence.WriteMissClean
	case dirtyRemote:
		txn = coherence.ReadMissDirty
	}

	needGlobal := e.cluster(responder) != cn || (write && m.remoteCopies(cn))
	trav := 1
	e.Txns++
	if needGlobal {
		trav = 2
		e.GlobalTxns++
	}
	if DebugGlobal != nil {
		DebugGlobal(block, needGlobal, e.cluster(responder) != cn, dirtyRemote, write)
	}

	// Join: data arrival plus (for writes) every invalidation sweep.
	j := newJoin(func(at sim.Time) {
		st := coherence.ReadShared
		if write {
			st = coherence.WriteExclusive
			m.dirty = true
			m.owner = node
		} else if dirtyRemote {
			m.dirty = false
		}
		e.fill(node, block, st)
		done(at, coherence.Result{Txn: txn, Traversals: trav})
	})

	if write {
		e.sweeps(node, block, m, j)
	}

	// Data path.
	j.add()
	if responder == node {
		// Write miss on a clean block homed here with remote copies:
		// the data is local, the sweeps do the rest.
		e.banks[node].Access(func() { j.arrive(e.k.Now()) })
	} else {
		e.sendProbePath(node, responder, block, func(sim.Time) {
			if dirtyRemote {
				if write {
					e.invalidate(responder, block)
				} else {
					e.caches[responder].Downgrade(block)
				}
				e.supply(responder, node, true, func(at sim.Time) { j.arrive(at) })
			} else {
				e.supply(responder, node, false, func(at sim.Time) { j.arrive(at) })
			}
		})
	}
	j.seal()
}

// sweeps launches the invalidation sweeps a write needs: a broadcast on
// the requester's local ring, and — when the IRI summary shows copies
// elsewhere — a global broadcast that injects a sweep into every
// cluster holding copies.
func (e *Engine) sweeps(node int, block uint64, m *hmeta, j *join) {
	cn := e.cluster(node)
	class := e.locals[cn].Geo.ProbeClassFor(block)

	// Local sweep from the requester.
	j.add()
	e.locals[cn].Send(e.local(node), ring.Broadcast, class,
		func(visited int, _ sim.Time) {
			if visited < e.perClus { // skip the IRI position
				e.invalidate(cn*e.perClus+visited, block)
			}
		},
		func(at sim.Time) { j.arrive(at) })

	if !m.remoteCopies(cn) {
		return
	}
	// Global sweep: the IRI forwards the invalidation around the global
	// ring; each IRI whose cluster holds copies injects a local sweep.
	j.add()
	e.locals[cn].Send(e.local(node), e.iri(), class, nil, func(sim.Time) {
		e.global.Send(cn, ring.Broadcast, class,
			func(cluster int, _ sim.Time) {
				if m.copies[cluster] == 0 {
					return
				}
				j.add()
				e.locals[cluster].Send(e.iri(), ring.Broadcast, class,
					func(visited int, _ sim.Time) {
						if visited < e.perClus {
							e.invalidate(cluster*e.perClus+visited, block)
						}
					},
					func(at sim.Time) { j.arrive(at) })
			},
			func(at sim.Time) { j.arrive(at) })
	})
}

// upgrade services an invalidation request.
func (e *Engine) upgrade(node int, block uint64, done func(sim.Time, coherence.Result)) {
	m := e.metaFor(block)
	cn := e.cluster(node)
	needGlobal := m.remoteCopies(cn)
	trav := 1
	e.Txns++
	if needGlobal {
		trav = 2
		e.GlobalTxns++
	}
	j := newJoin(func(at sim.Time) {
		if !e.caches[node].Upgrade(block) {
			e.fill(node, block, coherence.WriteExclusive)
		}
		m.dirty = true
		m.owner = node
		done(at, coherence.Result{Txn: coherence.Invalidation, Traversals: trav})
	})
	e.sweeps(node, block, m, j)
	j.seal()
}

// join runs a completion callback once every registered event has
// arrived; seal marks registration complete.
type join struct {
	pending int
	sealed  bool
	fired   bool
	latest  sim.Time
	then    func(at sim.Time)
}

func newJoin(then func(at sim.Time)) *join { return &join{then: then} }

func (j *join) add() { j.pending++ }

func (j *join) arrive(at sim.Time) {
	if at > j.latest {
		j.latest = at
	}
	j.pending--
	j.maybeFire()
}

func (j *join) seal() {
	j.sealed = true
	j.maybeFire()
}

func (j *join) maybeFire() {
	if j.sealed && j.pending == 0 && !j.fired {
		j.fired = true
		j.then(j.latest)
	}
}
