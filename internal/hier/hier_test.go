package hier

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/memory"
	"repro/internal/ring"
	"repro/internal/sim"
)

// testEngine builds a 2-cluster × 4-node machine.
func testEngine(t *testing.T) (*sim.Kernel, *Engine) {
	t.Helper()
	k := sim.NewKernel()
	return k, New(k, 8, Options{Clusters: 2, Seed: 1})
}

func access(k *sim.Kernel, e *Engine, node int, addr uint64, write bool) (coherence.Result, sim.Time) {
	var res coherence.Result
	var lat sim.Time = -1
	start := k.Now()
	e.Access(node, addr, write, func(at sim.Time, r coherence.Result) {
		res = r
		lat = at - start
	})
	k.Run()
	if lat < 0 {
		panic("access never completed")
	}
	return res, lat
}

func TestConstructionValidation(t *testing.T) {
	k := sim.NewKernel()
	for _, fn := range []func(){
		func() { New(k, 8, Options{Clusters: 1}) },
		func() { New(k, 9, Options{Clusters: 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid construction did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestTopology(t *testing.T) {
	_, e := testEngine(t)
	if e.Clusters() != 2 {
		t.Fatalf("Clusters() = %d, want 2", e.Clusters())
	}
	if e.cluster(5) != 1 || e.local(5) != 1 {
		t.Fatalf("node 5 maps to cluster %d local %d, want 1/1", e.cluster(5), e.local(5))
	}
	// Local rings carry one extra interface: the IRI.
	if got := e.LocalRing(0).Geo.Nodes; got != 5 {
		t.Fatalf("local ring has %d interfaces, want 5 (4 nodes + IRI)", got)
	}
	if got := e.GlobalRing().Geo.Nodes; got != 2 {
		t.Fatalf("global ring has %d interfaces, want 2", got)
	}
	// A small local ring is much shorter than a flat 8-node ring.
	flat := ring.NewGeometry(ring.Config{Nodes: 8})
	if e.LocalRing(0).Geo.RoundTrip() >= flat.RoundTrip() {
		t.Fatal("local ring round trip should beat the flat ring's")
	}
}

func TestLocalCleanMissStaysLocal(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x1000, 0)
	res, lat := access(k, e, 0, 0x1000, false)
	if !res.Local || res.Txn != coherence.ReadMissClean {
		t.Fatalf("res = %+v, want local clean miss", res)
	}
	if lat != memory.BankTime {
		t.Fatalf("latency = %v, want 140ns", lat)
	}
	if e.GlobalTxns != 0 {
		t.Fatal("local miss crossed the global ring")
	}
}

func TestIntraClusterMissUsesLocalRingOnly(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x2000, 2) // cluster 0
	res, _ := access(k, e, 0, 0x2000, false)
	if res.Traversals != 1 {
		t.Fatalf("traversals = %d, want 1 (local only)", res.Traversals)
	}
	if e.GlobalTxns != 0 {
		t.Fatal("intra-cluster miss used the global ring")
	}
	if e.GlobalRing().Messages(ring.ProbeEven)+e.GlobalRing().Messages(ring.ProbeOdd)+
		e.GlobalRing().Messages(ring.BlockSlot) != 0 {
		t.Fatal("messages appeared on the global ring")
	}
}

func TestInterClusterMissCrossesGlobalRing(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x3000, 6) // cluster 1
	res, lat := access(k, e, 0, 0x3000, false)
	if res.Traversals != 2 {
		t.Fatalf("traversals = %d, want 2 (global involved)", res.Traversals)
	}
	if e.GlobalTxns != 1 {
		t.Fatalf("GlobalTxns = %d, want 1", e.GlobalTxns)
	}
	if e.GlobalRing().Messages(ring.BlockSlot) == 0 {
		t.Fatal("no block message crossed the global ring")
	}
	// Inter-cluster costs more than intra-cluster.
	k2, e2 := testEngine(t)
	e2.HomeMap().Place(0x3000, 2)
	_, latIntra := access(k2, e2, 0, 0x3000, false)
	if lat <= latIntra {
		t.Fatalf("inter-cluster latency %v should exceed intra-cluster %v", lat, latIntra)
	}
}

func TestDirtySupplyAcrossClusters(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x4000, 1)
	access(k, e, 5, 0x4000, true) // cluster 1 takes it dirty
	res, _ := access(k, e, 0, 0x4000, false)
	if res.Txn != coherence.ReadMissDirty {
		t.Fatalf("txn = %v, want read-miss-dirty", res.Txn)
	}
	if e.Cache(5).State(0x4000) != coherence.ReadShared {
		t.Fatal("remote owner did not downgrade")
	}
	if e.Cache(0).State(0x4000) != coherence.ReadShared {
		t.Fatal("reader did not get RS")
	}
}

func TestWriteInvalidatesAcrossClusters(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x5000, 1)
	access(k, e, 0, 0x5000, false) // cluster 0 sharer
	access(k, e, 5, 0x5000, false) // cluster 1 sharer
	access(k, e, 7, 0x5000, false) // cluster 1 sharer
	res, _ := access(k, e, 1, 0x5000, true)
	if res.Txn != coherence.WriteMissClean || res.Traversals != 2 {
		t.Fatalf("res = %+v, want 2-traversal write miss", res)
	}
	for _, n := range []int{0, 5, 7} {
		if e.Cache(n).State(0x5000) != coherence.Invalid {
			t.Fatalf("sharer %d survived cross-cluster write", n)
		}
	}
	if e.Cache(1).State(0x5000) != coherence.WriteExclusive {
		t.Fatal("writer not WE")
	}
}

func TestWriteWithOnlyLocalSharersStaysLocal(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x6000, 1) // cluster 0
	access(k, e, 0, 0x6000, false)
	access(k, e, 2, 0x6000, false)
	before := e.GlobalTxns
	res, _ := access(k, e, 3, 0x6000, true)
	if res.Traversals != 1 {
		t.Fatalf("traversals = %d, want 1 — the IRI summary shows no remote copies", res.Traversals)
	}
	if e.GlobalTxns != before {
		t.Fatal("cluster-contained write used the global ring")
	}
	for _, n := range []int{0, 2} {
		if e.Cache(n).State(0x6000) != coherence.Invalid {
			t.Fatalf("local sharer %d survived", n)
		}
	}
}

func TestUpgradeAcrossClusters(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x7000, 1)
	access(k, e, 0, 0x7000, false)
	access(k, e, 6, 0x7000, false)
	res, _ := access(k, e, 0, 0x7000, true)
	if res.Txn != coherence.Invalidation || res.Traversals != 2 {
		t.Fatalf("res = %+v, want 2-traversal invalidation", res)
	}
	if e.Cache(6).State(0x7000) != coherence.Invalid {
		t.Fatal("remote sharer survived upgrade")
	}
	if e.Cache(0).State(0x7000) != coherence.WriteExclusive {
		t.Fatal("upgrader not WE")
	}
}

func TestSummaryTracksCopies(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x8000, 1)
	access(k, e, 0, 0x8000, false)
	access(k, e, 5, 0x8000, false)
	m := e.metaFor(e.caches[0].BlockAddr(0x8000))
	if m.copies[0] != 1 || m.copies[1] != 1 {
		t.Fatalf("copies = %v, want [1 1]", m.copies)
	}
	access(k, e, 4, 0x8000, true) // write from cluster 1 purges all
	if m.copies[0] != 0 || m.copies[1] != 1 {
		t.Fatalf("copies after write = %v, want [0 1]", m.copies)
	}
}

func TestDirtyEvictionWritesBackAcrossClusters(t *testing.T) {
	k, e := testEngine(t)
	const a, b = 0x1_0000_0000, 0x1_0002_0000
	e.HomeMap().Place(a, 6) // remote home
	e.HomeMap().Place(b, 6)
	access(k, e, 0, a, true)
	access(k, e, 0, b, false) // evicts dirty a
	k.Run()
	if e.WriteBacks != 1 {
		t.Fatalf("WriteBacks = %d, want 1", e.WriteBacks)
	}
	res, _ := access(k, e, 1, a, false)
	if res.Txn != coherence.ReadMissClean {
		t.Fatalf("post-write-back read = %+v, want clean miss", res)
	}
}

func TestConsistencyUnderRandomTraffic(t *testing.T) {
	k := sim.NewKernel()
	e := New(k, 16, Options{Clusters: 4, Seed: 3})
	rng := sim.NewRand(55)
	blocks := []uint64{0x1000, 0x2000, 0x3000, 0x4000}
	for i := 0; i < 400; i++ {
		node := rng.Intn(16)
		blk := blocks[rng.Intn(len(blocks))]
		write := rng.Bool(0.4)
		e.Access(node, blk, write, func(sim.Time, coherence.Result) {})
		k.Run()
		for _, b := range blocks {
			writers := 0
			perCluster := make([]int, 4)
			for n := 0; n < 16; n++ {
				st := e.Cache(n).State(b)
				if st == coherence.WriteExclusive {
					writers++
				}
				if st != coherence.Invalid {
					perCluster[n/4]++
				}
			}
			if writers > 1 {
				t.Fatalf("block %#x has %d writers", b, writers)
			}
			m := e.metaFor(b)
			for c := range perCluster {
				if m.copies[c] != perCluster[c] {
					t.Fatalf("block %#x cluster %d: summary %d vs actual %d",
						b, c, m.copies[c], perCluster[c])
				}
			}
		}
	}
}

func TestNetworkUtilizationAggregates(t *testing.T) {
	k, e := testEngine(t)
	e.HomeMap().Place(0x9000, 6)
	access(k, e, 0, 0x9000, false)
	if u := e.NetworkUtilization(); u <= 0 || u > 1 {
		t.Fatalf("NetworkUtilization = %v", u)
	}
	e.ResetNetStats()
	k.At(k.Now()+1000*sim.Nanosecond, func() {})
	k.Run()
	if u := e.NetworkUtilization(); u > 0.01 {
		t.Fatalf("utilization after reset = %v, want ~0", u)
	}
}
