package sweep

import (
	"testing"

	"repro/internal/obs"
)

// TestEngineTraceAggregation checks that an engine built with tracing
// folds computed jobs' span histograms into its lifetime aggregates,
// and that tracing never perturbs the simulated results (same job,
// same canonical metrics, traced or not).
func TestEngineTraceAggregation(t *testing.T) {
	job := Job{Protocol: "snoop-ring", CPUs: 8, DataRefsPerCPU: 300}

	traced := New(Options{Workers: 1, Trace: obs.Config{SampleEvery: 8}})
	res, err := traced.RunOne(job)
	if err != nil {
		t.Fatal(err)
	}

	st := traced.Stats()
	if st.SpansObserved == 0 || st.SpansSampled == 0 {
		t.Fatalf("spans observed/sampled = %d/%d, want both > 0",
			st.SpansObserved, st.SpansSampled)
	}
	agg := traced.TraceAgg()
	if len(agg) == 0 {
		t.Fatal("TraceAgg empty after a traced job")
	}
	var total uint64
	for _, a := range agg {
		if a.Latency.N() != a.Spans {
			t.Errorf("class %s: histogram N = %d, spans = %d", a.Class, a.Latency.N(), a.Spans)
		}
		total += a.Spans
	}
	if total != st.SpansObserved {
		t.Fatalf("class totals sum to %d, SpansObserved = %d", total, st.SpansObserved)
	}

	// Tracing must not alter the simulated machine: an untraced engine
	// produces byte-identical canonical metrics for the same job.
	plain := New(Options{Workers: 1})
	res2, err := plain.RunOne(job)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.CanonicalMetrics()) != string(res2.CanonicalMetrics()) {
		t.Fatal("tracing changed the canonical metrics")
	}
	if plain.Stats().SpansObserved != 0 || len(plain.TraceAgg()) != 0 {
		t.Fatal("untraced engine reports spans")
	}

	// The traced result carries a live tracer; the untraced one must not.
	if res.Metrics().Trace == nil {
		t.Fatal("traced result has no tracer")
	}
	if res2.Metrics().Trace != nil {
		t.Fatal("untraced result has a tracer")
	}
}
