package sweep

import (
	"bytes"
	"strings"
	"testing"
)

// TestTenantExcludedFromIdentity pins the multi-tenant cache
// contract: the Tenant provenance tag never reaches a job's canonical
// form, so the same simulation point submitted by different tenants
// is byte-identical by hash — one experiment, one cache entry — and
// the tag never leaks into serialized artifacts.
func TestTenantExcludedFromIdentity(t *testing.T) {
	base := Job{Benchmark: "MP3D", CPUs: 8, Seed: 7}
	tagged := base
	tagged.Tenant = "acme"
	other := base
	other.Tenant = "rival"

	if !bytes.Equal(base.Canonical(), tagged.Canonical()) {
		t.Errorf("canonical form differs with tenant tag:\n  %s\n  %s", base.Canonical(), tagged.Canonical())
	}
	if base.Hash() != tagged.Hash() || tagged.Hash() != other.Hash() {
		t.Error("tenant tag changed the content hash")
	}
	if base.RNGSeed() != tagged.RNGSeed() {
		t.Error("tenant tag changed the derived RNG seed")
	}
	if strings.Contains(string(tagged.Canonical()), "acme") {
		t.Error("tenant id leaked into the canonical serialization")
	}
}

// TestTraceParentExcludedFromIdentity pins the same contract for the
// request-tracing provenance tag: tracing a request must never change
// the identity, cache entry, or serialized bytes of the jobs it runs.
func TestTraceParentExcludedFromIdentity(t *testing.T) {
	base := Job{Benchmark: "MP3D", CPUs: 8, Seed: 7}
	traced := base
	traced.TraceParent = "0123456789abcdef:aabb-1"
	other := base
	other.TraceParent = "fedcba9876543210:ccdd-2"

	if !bytes.Equal(base.Canonical(), traced.Canonical()) {
		t.Errorf("canonical form differs with trace tag:\n  %s\n  %s", base.Canonical(), traced.Canonical())
	}
	if base.Hash() != traced.Hash() || traced.Hash() != other.Hash() {
		t.Error("trace tag changed the content hash")
	}
	if base.RNGSeed() != traced.RNGSeed() {
		t.Error("trace tag changed the derived RNG seed")
	}
	if strings.Contains(string(traced.Canonical()), "0123456789abcdef") {
		t.Error("trace id leaked into the canonical serialization")
	}
}
