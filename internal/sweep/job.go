// Package sweep is the experiment-orchestration engine: it fans
// simulation jobs out over a worker pool, memoizes their results in an
// in-memory and optional on-disk content-addressed cache, and reports
// progress and throughput while a sweep runs.
//
// Every curve in the paper's evaluation is a sweep — protocol ×
// benchmark × CPU count × processor cycle time — and every point is an
// independent, deterministic simulation. The engine exploits exactly
// that: a Job is a pure description of one simulation point, its
// canonical content hash identifies the result, and its RNG seed is
// derived from that hash, so results are bit-identical regardless of
// worker count, completion order, or whether a point was computed
// fresh or replayed from the cache.
package sweep

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Job describes one simulation point. The zero value of most fields
// means "model default" (paper configuration); Normalize fills the
// axes that define a point's identity. Jobs are compared, hashed and
// cached by value: two jobs with the same normalized content are the
// same experiment.
type Job struct {
	// Kind selects the executor. Empty means the default simulator
	// executor (a standalone machine over the benchmark's Table 2
	// profile); other kinds are registered via Options.Executors.
	Kind string `json:"kind,omitempty"`

	// Protocol is the machine: snoop-ring, directory-ring, sci-ring,
	// snoop-bus or hier-ring. Default snoop-ring.
	Protocol string `json:"protocol"`
	// Benchmark is a Table 2 workload name. Default MP3D.
	Benchmark string `json:"benchmark"`
	// CPUs is the system size. Default 16.
	CPUs int `json:"cpus"`
	// ProcCyclePS is the processor cycle time in picoseconds.
	// Zero means the calibration point (20 ns = 50 MIPS).
	ProcCyclePS int64 `json:"proc_cycle_ps,omitempty"`

	// Interconnect geometry. Zero values are the paper's defaults
	// (500 MHz 32-bit ring, 50 MHz 64-bit bus, 16-byte blocks).
	RingClockPS          int64 `json:"ring_clock_ps,omitempty"`
	RingWidthBits        int   `json:"ring_width_bits,omitempty"`
	RingBlockBytes       int   `json:"ring_block_bytes,omitempty"`
	RingProbePairs       int   `json:"ring_probe_pairs,omitempty"`
	RingNoStarvationRule bool  `json:"ring_no_starvation_rule,omitempty"`
	// RingSegments >= 2 selects the segmented ring interconnect
	// (directory protocol only). It changes arbitration — a different
	// model, not an execution detail — so unlike the engine-wide
	// parallelism setting it is part of the job's identity and hash.
	RingSegments int   `json:"ring_segments,omitempty"`
	BusClockPS   int64 `json:"bus_clock_ps,omitempty"`

	// Cache geometry (zero: 128 KB / 16 B) and home-placement page.
	CacheBytes      int `json:"cache_bytes,omitempty"`
	CacheBlockBytes int `json:"cache_block_bytes,omitempty"`
	PageBytes       int `json:"page_bytes,omitempty"`

	// Clusters configures the hierarchical ring.
	Clusters int `json:"clusters,omitempty"`

	// NonBlockingStores enables the weak-ordering write buffer;
	// WriteBufferDepth bounds it (zero: 8).
	NonBlockingStores bool `json:"non_blocking_stores,omitempty"`
	WriteBufferDepth  int  `json:"write_buffer_depth,omitempty"`

	// DataRefsPerCPU is the measured stream length per processor
	// (default 2000); WarmupDataRefs the excluded cold-start window
	// (zero: executor default).
	DataRefsPerCPU int `json:"data_refs_per_cpu"`
	WarmupDataRefs int `json:"warmup_data_refs,omitempty"`

	// CalibrationIters keys calibrated (experiments-runner) jobs: the
	// burst-fit iteration bound that shaped their workload.
	CalibrationIters int `json:"calibration_iters,omitempty"`

	// Seed is the base random seed. The executor's effective RNG seed
	// is derived from the job hash (which covers Seed), so distinct
	// jobs never share an RNG stream.
	Seed uint64 `json:"seed"`

	// Tenant is serving-layer provenance: which tenant submitted the
	// job. It is deliberately excluded from serialization — the same
	// simulation point submitted by two tenants is one experiment with
	// one cache entry — so it never reaches the content hash, the disk
	// cache, or the cluster wire body (the cluster carries it in a
	// header instead).
	Tenant string `json:"-"`

	// TraceParent is serving-layer provenance like Tenant: the
	// request-trace span context ("traceID:spanID", reqtrace wire
	// form) under which this job is being executed. Excluded from
	// serialization for the same reason — tracing must never change a
	// job's identity, its cache entry, or its result bytes — so it
	// never reaches the content hash, the disk cache, or the cluster
	// wire body (the cluster carries it in the X-Ringsim-Trace header).
	TraceParent string `json:"-"`
}

// Normalize fills the identity-defining defaults so that two spellings
// of the same experiment hash identically.
func (j Job) Normalize() Job {
	if j.Protocol == "" {
		j.Protocol = "snoop-ring"
	}
	if j.Benchmark == "" {
		j.Benchmark = "MP3D"
	}
	if j.CPUs == 0 {
		j.CPUs = 16
	}
	if j.DataRefsPerCPU == 0 {
		j.DataRefsPerCPU = 2000
	}
	if j.Seed == 0 {
		j.Seed = 1
	}
	return j
}

// Canonical returns the canonical serialized form of the job: the JSON
// encoding of the normalized value. encoding/json writes struct fields
// in declaration order with deterministic number formatting, so the
// bytes are stable across processes and Go versions.
func (j Job) Canonical() []byte {
	b, err := json.Marshal(j.Normalize())
	if err != nil {
		// Job is a flat value type; Marshal cannot fail.
		panic(fmt.Sprintf("sweep: canonicalize job: %v", err))
	}
	return b
}

// Hash returns the job's content hash (SHA-256 of Canonical, hex),
// the key under which its result is cached.
func (j Job) Hash() string {
	sum := sha256.Sum256(j.Canonical())
	return hex.EncodeToString(sum[:])
}

// ValidHash reports whether s is a well-formed job content hash as
// produced by Job.Hash: exactly 64 lowercase hex characters. The
// cache and the serving layer reject anything else before it reaches
// the filesystem, so an externally supplied hash can never form a
// path outside the cache directory.
func ValidHash(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// RNGSeed derives the job's effective simulation seed from its content
// hash. Deriving rather than sharing a stream is what makes sweep
// results independent of worker count and completion order; covering
// the Seed field means the base seed still selects a different stream
// per job.
func (j Job) RNGSeed() uint64 {
	sum := sha256.Sum256(j.Canonical())
	s := binary.BigEndian.Uint64(sum[:8])
	if s == 0 {
		s = 1 // the simulators treat 0 as "use default seed"
	}
	return s
}

// String renders a short human-readable label for progress output.
func (j Job) String() string {
	j = j.Normalize()
	cyc := float64(j.ProcCyclePS) / 1000
	if cyc == 0 {
		cyc = 20
	}
	return fmt.Sprintf("%s/%s/%dcpu@%.1fns", j.Protocol, j.Benchmark, j.CPUs, cyc)
}
