package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
)

// ErrUnavailable marks an executor failure that is a property of the
// execution substrate, not the job: no capacity exists to run it right
// now (e.g. a cluster with no live workers). Executors wrap it so
// serving layers can answer 503 instead of blaming the request.
var ErrUnavailable = errors.New("sweep: execution capacity unavailable")

// Executor computes one job's metrics. Executors must be pure: the
// returned metrics may depend only on the job's content, never on
// shared mutable state, wall-clock time, or execution order — that is
// the contract the memoization and the determinism guarantee rest on.
type Executor func(Job) (*core.Metrics, error)

// EventType tags a progress event.
type EventType int

const (
	// EventStart fires when a worker begins computing a job.
	EventStart EventType = iota
	// EventDone fires when a job finishes computing.
	EventDone
	// EventHit fires when a job is served from the cache.
	EventHit
	// EventError fires when a job's executor fails.
	EventError
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EventStart:
		return "start"
	case EventDone:
		return "done"
	case EventHit:
		return "hit"
	case EventError:
		return "error"
	}
	return fmt.Sprintf("EventType(%d)", int(t))
}

// Event is one progress notification, streamed to Options.OnEvent.
type Event struct {
	Type EventType
	Job  Job
	Hash string
	// Wall is the job's execution wall-clock (EventDone only).
	Wall time.Duration
	Err  error
}

// Options configures an Engine.
type Options struct {
	// Workers is the pool size; zero means runtime.NumCPU(). The bound
	// is engine-global: concurrent Run calls share one execution
	// semaphore, so at most Workers jobs compute at once no matter how
	// many callers are in flight.
	Workers int
	// CacheDir enables the on-disk content-addressed result cache.
	CacheDir string
	// Executors maps additional Job.Kind values to their executors.
	// Kind "" (the standalone simulator) is always available unless
	// overridden here.
	Executors map[string]Executor
	// OnEvent, when set, receives a streamed progress event per job
	// start/finish/hit. It may be called from multiple workers
	// concurrently and must not call back into the engine's Run.
	OnEvent func(Event)
	// Trace enables transaction tracing in the default standalone
	// executor. Tracing never enters a job's identity hash — simulated
	// results are bit-identical either way — but computed jobs then
	// carry a live tracer, and the engine folds their per-class span
	// latency histograms into its lifetime aggregates.
	Trace obs.Config
	// Parallel requests partitioned parallel execution (that many
	// domains) in the default standalone executor. Like Trace it is an
	// execution detail, never part of a job's identity: covered
	// configurations produce byte-identical results at any partition
	// count, and uncovered ones fall back to the sequential kernel
	// (counted in Stats.ParallelFallbacks).
	Parallel int
}

// BatchStats summarizes one Run call.
type BatchStats struct {
	Jobs      int           `json:"jobs"`
	CacheHits int           `json:"cache_hits"`
	DiskHits  int           `json:"disk_hits"`
	Computed  int           `json:"computed"`
	Errors    int           `json:"errors"`
	Wall      time.Duration `json:"wall_ns"`
}

// HitRate is the fraction of jobs served from cache (memory or disk).
func (b BatchStats) HitRate() float64 {
	if b.Jobs == 0 {
		return 0
	}
	return float64(b.CacheHits+b.DiskHits) / float64(b.Jobs)
}

// Stats is a point-in-time snapshot of an engine's counters.
type Stats struct {
	// Workers is the configured pool size.
	Workers int `json:"workers"`
	// Queued counts jobs ever submitted (monotone non-decreasing,
	// minus jobs abandoned undispatched by a cancelled Run); Running
	// is the in-flight gauge; Done counts finished jobs including
	// cache hits. At every instant Queued >= Running + Done: a job is
	// counted queued before it runs and stays counted after it
	// finishes, so Queued - Done is the current backlog.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	Done    int `json:"done"`
	// CacheHits/DiskHits/Computed/Errors partition Done.
	CacheHits int `json:"cache_hits"`
	DiskHits  int `json:"disk_hits"`
	Computed  int `json:"computed"`
	Errors    int `json:"errors"`
	// ExecWall is total wall-clock spent executing jobs (sums across
	// workers, so it can exceed elapsed time); MeanJobWall is the mean
	// per computed job.
	ExecWall    time.Duration `json:"exec_wall_ns"`
	MeanJobWall time.Duration `json:"mean_job_wall_ns"`
	// SimulatedPS is total simulated time produced by computed jobs;
	// SimNSPerSec is the aggregate throughput in simulated nanoseconds
	// per wall-clock second of execution.
	SimulatedPS int64   `json:"simulated_ps"`
	SimNSPerSec float64 `json:"sim_ns_per_sec"`
	// EventsFired is the total kernel events dispatched by computed
	// jobs (cache hits fire none); EventsPerSec is the aggregate
	// dispatch rate over execution wall clock, and MeanJobEvents the
	// mean per computed job.
	EventsFired   uint64  `json:"events_fired"`
	EventsPerSec  float64 `json:"events_per_sec"`
	MeanJobEvents float64 `json:"mean_job_events"`
	// EventSlabMax is the largest event-record pool any computed job's
	// kernel grew to — the event core's allocation high-water mark.
	EventSlabMax int `json:"event_slab_max"`
	// SpansObserved/SpansSampled/SpansDropped aggregate the obs tracers
	// of computed jobs; all zero when tracing is off.
	SpansObserved uint64 `json:"spans_observed,omitempty"`
	SpansSampled  uint64 `json:"spans_sampled,omitempty"`
	SpansDropped  uint64 `json:"spans_dropped,omitempty"`
	// ParallelRuns counts computed jobs executed by the partitioned
	// parallel kernel; ParallelFallbacks those where a parallel request
	// fell back to sequential. ParallelWindows / ParallelCrossEvents /
	// ParallelBarrierStallNS sum the parallel kernel's synchronization
	// counters across those runs. All zero when Options.Parallel <= 1.
	ParallelRuns           uint64 `json:"parallel_runs,omitempty"`
	ParallelFallbacks      uint64 `json:"parallel_fallbacks,omitempty"`
	ParallelWindows        uint64 `json:"parallel_windows,omitempty"`
	ParallelCrossEvents    uint64 `json:"parallel_cross_events,omitempty"`
	ParallelBarrierStallNS int64  `json:"parallel_barrier_stall_ns,omitempty"`
	// ParallelCrossWindows sums windows that delivered cross-partition
	// events; ParallelWindowPS is the narrowest (most conservative)
	// barrier-window width any parallel run used, in simulated
	// picoseconds — segmented-interconnect runs derive it from the
	// boundary-link hop latency.
	ParallelCrossWindows uint64 `json:"parallel_cross_windows,omitempty"`
	ParallelWindowPS     int64  `json:"parallel_window_ps,omitempty"`
	// LastBatch summarizes the most recent Run call; a repeated sweep
	// shows its cache hit rate here.
	LastBatch BatchStats `json:"last_batch"`
}

// HitRate is the lifetime fraction of jobs served from cache.
func (s Stats) HitRate() float64 {
	if s.Done == 0 {
		return 0
	}
	return float64(s.CacheHits+s.DiskHits) / float64(s.Done)
}

// inflight coalesces concurrent requests for the same job hash: the
// first arrival computes, the rest wait for done.
type inflight struct {
	done chan struct{}
	res  *Result
	err  error
}

// Engine schedules jobs over a worker pool with memoized results. An
// Engine is safe for concurrent use; results are deterministic per job
// regardless of worker count or scheduling order.
type Engine struct {
	workers int
	// sem bounds concurrently executing jobs engine-wide. Each Run call
	// spawns its own dispatch goroutines, but every executor invocation
	// first takes a slot here, so overlapping Run/RunOneCtx callers
	// share the Workers budget instead of multiplying it.
	sem     chan struct{}
	cache   *resultCache
	execs   map[string]Executor
	onEvent func(Event)

	mu     sync.Mutex
	flight map[string]*inflight
	stats  Stats
	// obsLatency/obsCount fold computed jobs' span histograms into
	// engine-lifetime per-class aggregates (guarded by mu; nil slots
	// until a traced job of that class completes).
	obsLatency [coherence.NumTxn]*stats.ExpHistogram
	obsCount   [coherence.NumTxn]uint64

	subMu   sync.Mutex
	subs    map[int]chan Event
	nextSub int
}

// New returns an engine. The default executor (Job.Kind == "") runs a
// standalone simulation of the job's machine over its benchmark's
// Table 2 profile.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	execs := map[string]Executor{"": standaloneExecutor(opts.Trace, opts.Parallel)}
	for k, fn := range opts.Executors {
		execs[k] = fn
	}
	e := &Engine{
		workers: w,
		sem:     make(chan struct{}, w),
		cache:   newCache(opts.CacheDir),
		execs:   execs,
		onEvent: opts.OnEvent,
		flight:  make(map[string]*inflight),
		subs:    make(map[int]chan Event),
	}
	e.stats.Workers = w
	return e
}

// Workers returns the configured pool size.
func (e *Engine) Workers() int { return e.workers }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	if s.Computed > 0 {
		s.MeanJobWall = s.ExecWall / time.Duration(s.Computed)
		s.MeanJobEvents = float64(s.EventsFired) / float64(s.Computed)
		if secs := s.ExecWall.Seconds(); secs > 0 {
			s.SimNSPerSec = float64(s.SimulatedPS) / 1000 / secs
			s.EventsPerSec = float64(s.EventsFired) / secs
		}
	}
	return s
}

func (e *Engine) emit(ev Event) {
	if e.onEvent != nil {
		e.onEvent(ev)
	}
	e.subMu.Lock()
	for _, ch := range e.subs {
		select {
		case ch <- ev:
		default:
			// A slow subscriber drops events rather than stalling the
			// workers; live progress streams tolerate gaps.
		}
	}
	e.subMu.Unlock()
}

// Subscribe attaches a progress-event listener and returns its channel
// plus a cancel function. Events are delivered best-effort: a
// subscriber that falls more than buf events behind misses the
// overflow instead of blocking the worker pool. Cancel closes the
// channel; it is safe to call more than once.
func (e *Engine) Subscribe(buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan Event, buf)
	e.subMu.Lock()
	id := e.nextSub
	e.nextSub++
	e.subs[id] = ch
	e.subMu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			e.subMu.Lock()
			delete(e.subs, id)
			e.subMu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}

// Adopt inserts a result computed elsewhere (a cluster peer) into the
// engine's cache tiers after verifying its integrity: the stored hash
// must be well-formed and must equal the job's recomputed content
// hash, so a corrupt or mislabeled artifact can never enter the cache
// under a foreign key. Adopted results are indistinguishable from
// locally computed ones — byte-identical by construction — and serve
// subsequent Lookup and Run calls as memory hits.
func (e *Engine) Adopt(res *Result) error {
	if res == nil {
		return fmt.Errorf("sweep: adopt nil result")
	}
	if !ValidHash(res.Hash) {
		return fmt.Errorf("sweep: adopt: malformed hash %q", res.Hash)
	}
	if got := res.Job.Hash(); got != res.Hash {
		return fmt.Errorf("sweep: adopt: hash %s does not match job content hash %s", res.Hash, got)
	}
	if perr := e.cache.put(res); perr != nil {
		// Mirror compute: the memory tier holds it; disk is best-effort.
		e.emit(Event{Type: EventError, Job: res.Job, Hash: res.Hash, Err: perr})
	}
	return nil
}

// Lookup returns the cached result for a job content hash, consulting
// memory then the on-disk cache, without computing anything or
// touching the engine's counters. It is the idempotent GET-by-hash
// path of the serving layer.
func (e *Engine) Lookup(hash string) (*Result, Source, bool) {
	res, src := e.cache.get(hash)
	if res == nil {
		return nil, SourceComputed, false
	}
	return res, src, true
}

// Run executes jobs over the worker pool and returns their results in
// input order. Identical jobs are computed once; previously seen jobs
// are served from the cache. On context cancellation Run stops
// dispatching, waits for in-progress jobs, and returns ctx.Err();
// undispatched slots are left nil. If an executor fails, the first
// error is returned alongside the results that did complete.
func (e *Engine) Run(ctx context.Context, jobs []Job) ([]*Result, error) {
	results, _, err := e.RunEach(ctx, jobs)
	return results, err
}

// RunEach is Run plus provenance: the second slice reports, per job,
// whether the result was computed fresh, shared from memory, or
// replayed from disk. Slots for jobs a cancelled context left
// undispatched hold a nil result and SourceComputed.
func (e *Engine) RunEach(ctx context.Context, jobs []Job) ([]*Result, []Source, error) {
	results := make([]*Result, len(jobs))
	sources := make([]Source, len(jobs))
	if len(jobs) == 0 {
		return results, sources, nil
	}
	// A context that is already dead admits no work at all: callers
	// with an expired deadline must not charge the pool.
	if err := ctx.Err(); err != nil {
		return results, sources, err
	}

	e.mu.Lock()
	e.stats.Queued += len(jobs)
	e.mu.Unlock()

	var (
		batchMu sync.Mutex
		batch   BatchStats
		firstEr error
	)
	batch.Jobs = len(jobs)
	start := time.Now()

	idx := make(chan int)
	var wg sync.WaitGroup
	workers := e.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, src, err := e.do(jobs[i])
				results[i] = res
				sources[i] = src
				batchMu.Lock()
				switch {
				case err != nil:
					batch.Errors++
					if firstEr == nil {
						firstEr = err
					}
				case src == SourceMemory:
					batch.CacheHits++
				case src == SourceDisk:
					batch.DiskHits++
				default:
					batch.Computed++
				}
				batchMu.Unlock()
			}
		}()
	}

	var ctxErr error
	dispatched := 0
dispatch:
	for i := range jobs {
		// Check cancellation with priority: when the context is already
		// dead, never race it against a ready worker.
		if err := ctx.Err(); err != nil {
			ctxErr = err
			break dispatch
		}
		select {
		case idx <- i:
			dispatched++
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	batch.Wall = time.Since(start)
	e.mu.Lock()
	// Jobs the cancellation left undispatched leave the system without
	// running; uncount them so Queued keeps meaning "entered the pool".
	e.stats.Queued -= len(jobs) - dispatched
	e.stats.LastBatch = batch
	e.mu.Unlock()

	if ctxErr != nil {
		return results, sources, ctxErr
	}
	return results, sources, firstEr
}

// RunOne computes (or recalls) a single job on the calling goroutine.
func (e *Engine) RunOne(job Job) (*Result, error) {
	res, _, err := e.RunOneCtx(context.Background(), job)
	return res, err
}

// RunOneCtx computes (or recalls) a single job on the calling
// goroutine, reporting the result's provenance. A context that is
// already cancelled or past its deadline returns immediately without
// executing; once execution has begun it runs to completion (the
// simulators are not preemptible) and the result is cached for the
// next request.
func (e *Engine) RunOneCtx(ctx context.Context, job Job) (*Result, Source, error) {
	if err := ctx.Err(); err != nil {
		return nil, SourceComputed, err
	}
	e.mu.Lock()
	e.stats.Queued++
	e.mu.Unlock()
	return e.do(job)
}

// do is the memoized single-job path: cache lookup, in-flight
// coalescing, then execution.
func (e *Engine) do(job Job) (*Result, Source, error) {
	job = job.Normalize()
	hash := job.Hash()

	if res, src := e.cache.get(hash); res != nil {
		e.mu.Lock()
		e.stats.Done++
		if src == SourceDisk {
			e.stats.DiskHits++
		} else {
			e.stats.CacheHits++
		}
		e.mu.Unlock()
		e.emit(Event{Type: EventHit, Job: job, Hash: hash})
		return res, src, nil
	}

	e.mu.Lock()
	if fl, ok := e.flight[hash]; ok {
		// Another worker is computing this exact job; wait and share.
		e.mu.Unlock()
		<-fl.done
		e.mu.Lock()
		e.stats.Done++
		if fl.err != nil {
			e.stats.Errors++
		} else {
			e.stats.CacheHits++
		}
		e.mu.Unlock()
		if fl.err != nil {
			return nil, SourceComputed, fl.err
		}
		e.emit(Event{Type: EventHit, Job: job, Hash: hash})
		return fl.res, SourceMemory, nil
	}
	fl := &inflight{done: make(chan struct{})}
	e.flight[hash] = fl
	e.stats.Running++
	e.mu.Unlock()

	res, err := e.compute(job, hash)
	fl.res, fl.err = res, err
	e.mu.Lock()
	delete(e.flight, hash)
	e.stats.Running--
	e.stats.Done++
	if err != nil {
		e.stats.Errors++
	} else {
		e.stats.Computed++
	}
	e.mu.Unlock()
	close(fl.done)
	return res, SourceComputed, err
}

// compute runs the job's executor and stores the result. The
// engine-wide semaphore is taken around the executor call (never while
// waiting on another job), so it cannot deadlock: holders only do
// finite local work.
func (e *Engine) compute(job Job, hash string) (*Result, error) {
	exec, ok := e.execs[job.Kind]
	if !ok {
		err := fmt.Errorf("sweep: no executor for job kind %q", job.Kind)
		e.emit(Event{Type: EventError, Job: job, Hash: hash, Err: err})
		return nil, err
	}
	e.sem <- struct{}{}
	defer func() { <-e.sem }()
	e.emit(Event{Type: EventStart, Job: job, Hash: hash})
	start := time.Now()
	m, err := exec(job)
	wall := time.Since(start)
	if err != nil {
		e.emit(Event{Type: EventError, Job: job, Hash: hash, Err: err})
		return nil, fmt.Errorf("sweep: job %s: %w", job, err)
	}
	res := newResult(job, hash, m)
	if perr := e.cache.put(res); perr != nil {
		// Disk artifacts are best-effort; memory already holds it.
		e.emit(Event{Type: EventError, Job: job, Hash: hash, Err: perr})
	}
	e.mu.Lock()
	e.stats.ExecWall += wall
	e.stats.SimulatedPS += int64(m.ExecTime)
	e.stats.EventsFired += m.EventsFired
	if m.EventSlab > e.stats.EventSlabMax {
		e.stats.EventSlabMax = m.EventSlab
	}
	if pp := m.Parallel; pp.Partitions > 1 {
		e.stats.ParallelRuns++
		e.stats.ParallelWindows += pp.Windows
		e.stats.ParallelCrossEvents += pp.CrossEvents
		e.stats.ParallelCrossWindows += pp.CrossWindows
		if pp.WindowPS > 0 && (e.stats.ParallelWindowPS == 0 || pp.WindowPS < e.stats.ParallelWindowPS) {
			e.stats.ParallelWindowPS = pp.WindowPS
		}
		for _, ns := range pp.BarrierStallNS {
			e.stats.ParallelBarrierStallNS += ns
		}
	} else if pp.Requested > 1 {
		e.stats.ParallelFallbacks++
	}
	if tr := m.Trace; tr != nil {
		for t := 0; t < coherence.NumTxn; t++ {
			txn := coherence.Txn(t)
			c := tr.ClassCount(txn)
			if c == 0 {
				continue
			}
			e.obsCount[t] += c
			if e.obsLatency[t] == nil {
				e.obsLatency[t] = obs.LatencyHist()
			}
			// Same bucket layout by construction; Merge cannot fail.
			e.obsLatency[t].Merge(tr.ClassLatency(txn))
		}
		e.stats.SpansObserved += tr.SpansObserved()
		e.stats.SpansSampled += tr.SpansSampled()
		e.stats.SpansDropped += tr.SpansDropped()
	}
	e.mu.Unlock()
	e.emit(Event{Type: EventDone, Job: job, Hash: hash, Wall: wall})
	return res, nil
}

// ClassAgg is the engine-lifetime span aggregate for one transaction
// class: how many spans the class saw across all computed jobs and
// their latency histogram (nanoseconds).
type ClassAgg struct {
	Class   string
	Spans   uint64
	Latency *stats.ExpHistogram
}

// TraceAgg snapshots the per-class span aggregates folded from
// computed jobs' tracers, in transaction-class order, skipping classes
// no span has hit. Histograms are clones; callers may keep them.
func (e *Engine) TraceAgg() []ClassAgg {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []ClassAgg
	for t := 0; t < coherence.NumTxn; t++ {
		if e.obsCount[t] == 0 {
			continue
		}
		out = append(out, ClassAgg{
			Class:   coherence.Txn(t).String(),
			Spans:   e.obsCount[t],
			Latency: e.obsLatency[t].Clone(),
		})
	}
	return out
}
