package sweep

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// testGrid is a small Figure-5-style sweep: protocol × benchmark ×
// CPUs × processor cycle.
func testGrid() []Job {
	var jobs []Job
	for _, proto := range []string{"snoop-ring", "directory-ring"} {
		for _, cpus := range []int{8, 16} {
			for _, cycNS := range []int64{5, 20} {
				jobs = append(jobs, Job{
					Protocol:       proto,
					Benchmark:      "MP3D",
					CPUs:           cpus,
					ProcCyclePS:    cycNS * 1000,
					DataRefsPerCPU: 300,
					Seed:           7,
				})
			}
		}
	}
	return jobs
}

func TestJobHashCanonical(t *testing.T) {
	// Two spellings of the same experiment hash identically.
	a := Job{Benchmark: "MP3D", CPUs: 16, DataRefsPerCPU: 2000, Seed: 1}
	b := Job{}
	if a.Hash() != b.Hash() {
		t.Errorf("normalized defaults should hash like explicit defaults")
	}
	// Any axis change must change the hash.
	mutants := []Job{
		{Protocol: "directory-ring"},
		{Benchmark: "WATER", CPUs: 8},
		{CPUs: 8},
		{ProcCyclePS: 5000},
		{Seed: 2},
		{DataRefsPerCPU: 100},
		{RingWidthBits: 64},
		{NonBlockingStores: true},
		{Kind: "calibrated"},
		{Protocol: "directory-ring", RingSegments: 4},
	}
	seen := map[string]bool{b.Hash(): true}
	for _, m := range mutants {
		h := m.Hash()
		if seen[h] {
			t.Errorf("job %+v collides with a previous hash", m)
		}
		seen[h] = true
	}
}

// TestJobRejectsBadSegmentShapes: an invalid segmented-ring job
// arrives over the wire, so it must come back as a job error — core
// treats the same shapes as programmer error and panics, which would
// take the whole serving process down.
func TestJobRejectsBadSegmentShapes(t *testing.T) {
	for name, j := range map[string]Job{
		"one segment":    {Benchmark: "MP3D", CPUs: 16, Protocol: "directory-ring", RingSegments: 1},
		"wrong protocol": {Benchmark: "MP3D", CPUs: 16, Protocol: "snoop-ring", RingSegments: 4},
		"indivisible":    {Benchmark: "MP3D", CPUs: 16, Protocol: "directory-ring", RingSegments: 5},
	} {
		if _, err := j.SystemConfig(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A valid segmented job executes — even on a traced engine, which
	// must drop tracing for it rather than fail.
	j := Job{Benchmark: "MP3D", CPUs: 16, Protocol: "directory-ring",
		RingSegments: 4, DataRefsPerCPU: 200, Seed: 3}
	if _, err := j.SystemConfig(); err != nil {
		t.Fatalf("valid segmented job rejected: %v", err)
	}
	eng := New(Options{Workers: 1, Trace: obs.Config{SampleEvery: 8}})
	res, err := eng.Run(context.Background(), []Job{j})
	if err != nil || len(res) != 1 {
		t.Fatalf("segmented job on traced engine: %v", err)
	}
	if res[0].Snapshot.ExecTimePS == 0 {
		t.Fatalf("degenerate segmented result: %+v", res[0].Snapshot)
	}
}

func TestJobRNGSeedDiffersPerJob(t *testing.T) {
	a := Job{Seed: 1}
	b := Job{Seed: 1, CPUs: 8}
	if a.RNGSeed() == b.RNGSeed() {
		t.Error("distinct jobs derived the same RNG seed")
	}
	if a.RNGSeed() != a.RNGSeed() {
		t.Error("RNG seed not stable")
	}
}

// TestDeterminismAcrossWorkerCounts is the determinism regression the
// engine guarantees: the same sweep at workers=1 and workers=8 yields
// byte-identical serialized metrics for every job.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	jobs := testGrid()
	r1, err := New(Options{Workers: 1}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := New(Options{Workers: 8}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		b1, b8 := r1[i].CanonicalMetrics(), r8[i].CanonicalMetrics()
		if !bytes.Equal(b1, b8) {
			t.Errorf("job %s: workers=1 and workers=8 metrics differ:\n%s\nvs\n%s",
				jobs[i], b1, b8)
		}
	}
}

func TestRepeatedSweepHitsCache(t *testing.T) {
	e := New(Options{Workers: 4})
	jobs := testGrid()
	if _, err := e.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	first := e.Stats()
	if first.LastBatch.Computed != len(jobs) {
		t.Fatalf("cold batch computed %d of %d", first.LastBatch.Computed, len(jobs))
	}
	r1, err := e.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if got := s.LastBatch.HitRate(); got < 0.9 {
		t.Errorf("repeated sweep hit rate %.2f, want >= 0.90", got)
	}
	if s.LastBatch.Computed != 0 {
		t.Errorf("repeated sweep recomputed %d jobs", s.LastBatch.Computed)
	}
	// Cache hits return the same live metrics object.
	r2, err := e.RunOne(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if r1[0].Metrics() != r2.Metrics() {
		t.Error("cache hit returned a different metrics object")
	}
	if s.Done != 2*len(jobs) || s.Running != 0 || s.Queued != 2*len(jobs) {
		t.Errorf("lifetime stats off: %+v", s)
	}
}

func TestDuplicateJobsInOneBatchComputeOnce(t *testing.T) {
	var computed atomic.Int64
	counting := func(j Job) (*core.Metrics, error) {
		computed.Add(1)
		return runStandalone(j, obs.Config{}, 0)
	}
	e := New(Options{Workers: 8, Executors: map[string]Executor{"": counting}})
	job := Job{Benchmark: "MP3D", CPUs: 8, DataRefsPerCPU: 200}
	jobs := []Job{job, job, job, job}
	res, err := e.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if n := computed.Load(); n != 1 {
		t.Errorf("duplicate job computed %d times", n)
	}
	for _, r := range res[1:] {
		if r.Metrics() != res[0].Metrics() {
			t.Error("duplicates did not share one result")
		}
	}
}

func TestDiskCacheColdVsWarm(t *testing.T) {
	dir := t.TempDir()
	jobs := testGrid()[:4]
	cold, err := New(Options{Workers: 2, CacheDir: dir}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh engine sharing the directory replays from disk.
	e2 := New(Options{Workers: 2, CacheDir: dir})
	warm, err := e2.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	s := e2.Stats()
	if s.DiskHits != len(jobs) {
		t.Errorf("disk hits = %d, want %d (computed %d)", s.DiskHits, len(jobs), s.Computed)
	}
	for i := range jobs {
		if !bytes.Equal(cold[i].CanonicalMetrics(), warm[i].CanonicalMetrics()) {
			t.Errorf("job %s: cache-cold and cache-warm metrics differ", jobs[i])
		}
		// The replayed result reconstructs live metrics correctly.
		if warm[i].Metrics().ProcUtil() != cold[i].Metrics().ProcUtil() {
			t.Errorf("job %s: replayed ProcUtil differs", jobs[i])
		}
	}
}

func TestRunPropagatesExecutorError(t *testing.T) {
	e := New(Options{Workers: 2})
	jobs := []Job{
		{Benchmark: "MP3D", CPUs: 8, DataRefsPerCPU: 150},
		{Benchmark: "NOSUCH", CPUs: 8, DataRefsPerCPU: 150},
	}
	res, err := e.Run(context.Background(), jobs)
	if err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
	if res[0] == nil || res[0].Metrics() == nil {
		t.Error("healthy job should still complete")
	}
	if res[1] != nil {
		t.Error("failed job should have nil result")
	}
	if s := e.Stats(); s.Errors != 1 {
		t.Errorf("errors = %d, want 1", s.Errors)
	}
}

func TestUnknownKindErrors(t *testing.T) {
	e := New(Options{Workers: 1})
	if _, err := e.RunOne(Job{Kind: "nope"}); err == nil {
		t.Fatal("expected unknown-kind error")
	}
}

func TestRunHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(Options{Workers: 1})
	res, err := e.Run(ctx, testGrid())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	nils := 0
	for _, r := range res {
		if r == nil {
			nils++
		}
	}
	if nils == 0 {
		t.Error("cancelled run should leave undispatched jobs nil")
	}
}

func TestEventsStream(t *testing.T) {
	var starts, dones, hits atomic.Int64
	e := New(Options{Workers: 2, OnEvent: func(ev Event) {
		switch ev.Type {
		case EventStart:
			starts.Add(1)
		case EventDone:
			dones.Add(1)
			if ev.Wall <= 0 {
				t.Error("done event without wall clock")
			}
		case EventHit:
			hits.Add(1)
		}
	}})
	jobs := testGrid()[:3]
	if _, err := e.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if starts.Load() != 3 || dones.Load() != 3 || hits.Load() != 3 {
		t.Errorf("events start/done/hit = %d/%d/%d, want 3/3/3",
			starts.Load(), dones.Load(), hits.Load())
	}
}

func TestStandaloneMatchesDirectSimulation(t *testing.T) {
	// The engine's default executor must equal building the system by
	// hand with the derived seed — memoization never changes results.
	job := Job{Protocol: "snoop-ring", Benchmark: "WATER", CPUs: 8,
		ProcCyclePS: int64(5 * sim.Nanosecond), DataRefsPerCPU: 400, Seed: 3}
	direct, err := runStandalone(job, obs.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(Options{Workers: 4}).RunOne(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics().ExecTime != direct.ExecTime ||
		res.Metrics().MissLatency.Value() != direct.MissLatency.Value() {
		t.Error("engine result differs from direct simulation")
	}
	if res.Summary().ProcUtil != direct.ProcUtil() {
		t.Error("summary does not match metrics")
	}
}
