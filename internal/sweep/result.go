package sweep

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/core"
)

// Result is one job's cached outcome: the job itself, its content
// hash, and the full metrics snapshot. Results serialize to JSON for
// the on-disk cache; the live *core.Metrics is rebuilt lazily so
// consumers see the same object regardless of where the result came
// from.
type Result struct {
	Job      Job                  `json:"job"`
	Hash     string               `json:"hash"`
	Snapshot core.MetricsSnapshot `json:"metrics"`

	once    sync.Once
	metrics *core.Metrics
}

// newResult wraps freshly computed metrics.
func newResult(job Job, hash string, m *core.Metrics) *Result {
	return &Result{Job: job, Hash: hash, Snapshot: m.Snapshot(), metrics: m}
}

// Metrics returns the live metrics, rebuilding them from the snapshot
// when the result was loaded from disk. The same pointer is returned
// on every call.
func (r *Result) Metrics() *core.Metrics {
	r.once.Do(func() {
		if r.metrics == nil {
			r.metrics = r.Snapshot.Metrics()
		}
	})
	return r.metrics
}

// CanonicalMetrics returns the deterministic serialized form of the
// result's metrics — the bytes the determinism regression compares
// across worker counts and cache states.
func (r *Result) CanonicalMetrics() []byte {
	b, err := json.Marshal(r.Snapshot)
	if err != nil {
		panic(fmt.Sprintf("sweep: canonicalize metrics: %v", err))
	}
	return b
}

// Summary holds the headline quantities the paper plots, derived from
// the snapshot for convenience in tables and progress output.
type Summary struct {
	ProcUtil      float64 `json:"proc_util"`
	NetworkUtil   float64 `json:"network_util"`
	MissLatencyNS float64 `json:"miss_latency_ns"`
	ExecTimeUS    float64 `json:"exec_time_us"`
}

// Summary derives the headline quantities.
func (r *Result) Summary() Summary {
	m := r.Metrics()
	return Summary{
		ProcUtil:      m.ProcUtil(),
		NetworkUtil:   m.NetworkUtil,
		MissLatencyNS: m.MissLatency.Value(),
		ExecTimeUS:    m.ExecTime.Nanoseconds() / 1000,
	}
}
