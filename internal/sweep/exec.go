package sweep

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ProtocolFromString maps a protocol name to the core enum.
func ProtocolFromString(name string) (core.Protocol, error) {
	switch name {
	case "snoop-ring":
		return core.SnoopRing, nil
	case "directory-ring":
		return core.DirectoryRing, nil
	case "sci-ring":
		return core.SCIRing, nil
	case "snoop-bus":
		return core.SnoopBus, nil
	case "hier-ring":
		return core.HierRing, nil
	}
	return 0, fmt.Errorf("unknown protocol %q", name)
}

// SystemConfig translates the job into the core system configuration
// it describes. The translation is exact and invertible over the
// fields Job models; callers embedding richer configurations must
// bypass the engine.
func (j Job) SystemConfig() (core.Config, error) {
	j = j.Normalize()
	proto, err := ProtocolFromString(j.Protocol)
	if err != nil {
		return core.Config{}, err
	}
	// Reject invalid segmented-ring shapes here, politely: core treats
	// them as programmer error and panics, but a Job arrives over the
	// wire and must come back as a job error instead.
	if j.RingSegments != 0 {
		if j.RingSegments < 2 {
			return core.Config{}, fmt.Errorf("ring_segments must be 0 (classic ring) or >= 2, not %d", j.RingSegments)
		}
		if proto != core.DirectoryRing {
			return core.Config{}, fmt.Errorf("ring_segments requires the directory-ring protocol, not %s", j.Protocol)
		}
		if j.CPUs%j.RingSegments != 0 {
			return core.Config{}, fmt.Errorf("%d cpus not divisible into %d ring segments", j.CPUs, j.RingSegments)
		}
	}
	return core.Config{
		Protocol:  proto,
		ProcCycle: sim.Time(j.ProcCyclePS),
		Ring: ring.Config{
			ClockPS:                sim.Time(j.RingClockPS),
			WidthBits:              j.RingWidthBits,
			BlockBytes:             j.RingBlockBytes,
			ProbePairsPerBlockSlot: j.RingProbePairs,
			DisableStarvationRule:  j.RingNoStarvationRule,
			Segments:               j.RingSegments,
		},
		Bus:               bus.Config{ClockPS: sim.Time(j.BusClockPS)},
		Cache:             cache.Config{SizeBytes: j.CacheBytes, BlockBytes: j.CacheBlockBytes},
		PageBytes:         j.PageBytes,
		Seed:              j.Seed,
		WarmupDataRefs:    j.WarmupDataRefs,
		Clusters:          j.Clusters,
		NonBlockingStores: j.NonBlockingStores,
		WriteBufferDepth:  j.WriteBufferDepth,
	}, nil
}

// standaloneWarmup is the cold-start window the default executor
// excludes from measurement, matching the repro facade.
const standaloneWarmup = 600

// standaloneExecutor builds the default executor with engine-wide
// tracing and parallelism configs. Both are execution details, never
// part of a job's identity: the simulated results are bit-identical
// with them on or off, so all variants of the same job share one cache
// entry.
func standaloneExecutor(trace obs.Config, parallel int) Executor {
	return func(j Job) (*core.Metrics, error) { return runStandalone(j, trace, parallel) }
}

// runStandalone is the default executor: one complete machine over the
// benchmark's Table 2 synthetic workload, the same machine repro.Run
// builds. The workload and home-placement RNG seed is derived from the
// job's content hash, so every job owns an independent, reproducible
// random stream no matter which worker runs it.
func runStandalone(j Job, trace obs.Config, parallel int) (*core.Metrics, error) {
	j = j.Normalize()
	prof, ok := workload.ProfileFor(j.Benchmark, j.CPUs)
	if !ok {
		return nil, fmt.Errorf("no workload profile %s/%d", j.Benchmark, j.CPUs)
	}
	cfg, err := j.SystemConfig()
	if err != nil {
		return nil, err
	}
	seed := j.RNGSeed()
	cfg.Seed = seed
	cfg.Trace = trace
	cfg.Parallel = parallel
	if j.RingSegments != 0 {
		// Tracing samples on a global span counter and is unsupported
		// over the segmented ring. It is an execution detail, never part
		// of job identity, so segmented jobs simply run untraced rather
		// than failing on an engine-wide tracing default.
		cfg.Trace = obs.Config{}
	}
	if cfg.WarmupDataRefs == 0 {
		cfg.WarmupDataRefs = standaloneWarmup
	}
	gen := workload.NewGenerator(workload.Config{
		Profile:        prof,
		DataRefsPerCPU: j.DataRefsPerCPU + cfg.WarmupDataRefs,
		Seed:           seed,
	})
	return core.Run(cfg, gen), nil
}
