package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Source says where a result came from. The zero value, SourceComputed,
// doubles as "cache miss" inside the cache: a missed lookup is about to
// be computed.
type Source int

const (
	// SourceComputed marks a freshly executed job (a cache miss).
	SourceComputed Source = iota
	// SourceMemory marks a hit in the process-local result map,
	// including results shared with a concurrent in-flight computation.
	SourceMemory
	// SourceDisk marks a result replayed from the on-disk cache.
	SourceDisk
	// SourcePeer marks a result fetched from another cluster node's
	// cache tier and adopted locally.
	SourcePeer
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SourceComputed:
		return "computed"
	case SourceMemory:
		return "memory"
	case SourceDisk:
		return "disk"
	case SourcePeer:
		return "peer"
	}
	return fmt.Sprintf("Source(%d)", int(s))
}

// cache is the two-level result store: a process-local map keyed by
// job hash, backed by an optional content-addressed directory of
// <hash>.json files. Disk failures are deliberately soft — a sweep
// never fails because an artifact could not be written or parsed; the
// job is simply recomputed.
type resultCache struct {
	dir string

	mu  sync.RWMutex
	mem map[string]*Result
}

func newCache(dir string) *resultCache {
	return &resultCache{dir: dir, mem: make(map[string]*Result)}
}

func (c *resultCache) path(hash string) string {
	return filepath.Join(c.dir, hash+".json")
}

// get looks a hash up in memory, then on disk. Disk hits are promoted
// into memory so repeated lookups return the same *Result. A
// truncated, corrupt, or mislabeled artifact is treated as a miss and
// deleted; the recompute's put rewrites it atomically.
func (c *resultCache) get(hash string) (*Result, Source) {
	c.mu.RLock()
	r, ok := c.mem[hash]
	c.mu.RUnlock()
	if ok {
		return r, SourceMemory
	}
	// ValidHash gates every disk touch: get both reads and (on a corrupt
	// artifact) removes c.path(hash), so a malformed externally supplied
	// hash must never become a path component.
	if c.dir == "" || !ValidHash(hash) {
		return nil, SourceComputed
	}
	raw, err := os.ReadFile(c.path(hash))
	if err != nil {
		return nil, SourceComputed
	}
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil || res.Hash != hash {
		os.Remove(c.path(hash))
		return nil, SourceComputed
	}
	c.mu.Lock()
	if prior, ok := c.mem[hash]; ok {
		// Another worker promoted it first; keep one canonical object.
		c.mu.Unlock()
		return prior, SourceMemory
	}
	c.mem[hash] = &res
	c.mu.Unlock()
	return &res, SourceDisk
}

// put stores a result in memory and, when configured, on disk via an
// atomic rename so concurrent writers and readers never see a torn
// file.
func (c *resultCache) put(r *Result) error {
	c.mu.Lock()
	c.mem[r.Hash] = r
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("sweep: cache dir: %w", err)
	}
	raw, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("sweep: encode result: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, "."+r.Hash+".tmp*")
	if err != nil {
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(r.Hash)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	return nil
}
