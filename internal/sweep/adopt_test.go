package sweep

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

func adoptTestEngines(t *testing.T, dir string) (*Engine, *Engine) {
	t.Helper()
	exec := func(j Job) (*core.Metrics, error) {
		m := &core.Metrics{DataRefs: uint64(j.CPUs * j.DataRefsPerCPU)}
		m.MissLatency.Observe(600)
		return m, nil
	}
	src := New(Options{Workers: 1, Executors: map[string]Executor{"": exec}})
	dst := New(Options{Workers: 1, CacheDir: dir, Executors: map[string]Executor{"": exec}})
	return src, dst
}

// TestAdopt: a result computed elsewhere enters the local tiers after
// integrity checks, and later lookups serve the identical bytes.
func TestAdopt(t *testing.T) {
	src, dst := adoptTestEngines(t, t.TempDir())
	res, err := src.RunOne(Job{CPUs: 2, DataRefsPerCPU: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := dst.Lookup(res.Hash); ok {
		t.Fatal("destination engine already holds the result")
	}
	if err := dst.Adopt(res); err != nil {
		t.Fatalf("Adopt: %v", err)
	}
	got, srcTag, ok := dst.Lookup(res.Hash)
	if !ok {
		t.Fatal("adopted result not found")
	}
	if srcTag != SourceMemory {
		t.Errorf("lookup source = %v, want memory", srcTag)
	}
	if !bytes.Equal(got.CanonicalMetrics(), res.CanonicalMetrics()) {
		t.Error("adopted bytes differ from the original")
	}
}

// TestAdoptRejectsTamperedResults: the adoption boundary is an
// integrity gate — malformed hashes and results whose job content no
// longer matches their claimed hash never enter a cache.
func TestAdoptRejectsTamperedResults(t *testing.T) {
	src, dst := adoptTestEngines(t, "")
	res, err := src.RunOne(Job{CPUs: 2, DataRefsPerCPU: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}

	if err := dst.Adopt(nil); err == nil {
		t.Error("nil result adopted")
	}

	bad := &Result{Job: res.Job, Hash: strings.Repeat("zz", 32), Snapshot: res.Snapshot}
	if err := dst.Adopt(bad); err == nil {
		t.Error("malformed hash adopted")
	}

	forged := &Result{Job: res.Job, Hash: res.Hash, Snapshot: res.Snapshot}
	forged.Job.Seed++ // content no longer hashes to forged.Hash
	if err := dst.Adopt(forged); err == nil {
		t.Error("forged job content adopted")
	}

	if _, _, ok := dst.Lookup(res.Hash); ok {
		t.Error("a rejected adoption still populated the cache")
	}
}
