package sweep

import (
	"context"
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestConcurrentRunsEmitConsistentEvents drives several overlapping
// Run calls over one engine and checks the event-stream bookkeeping:
// every distinct job starts and finishes exactly once (singleflight),
// every other request for it is a hit, and starts never outnumber the
// distinct job set.
func TestConcurrentRunsEmitConsistentEvents(t *testing.T) {
	var starts, dones, hits, errs atomic.Int64
	e := New(Options{Workers: 4, OnEvent: func(ev Event) {
		switch ev.Type {
		case EventStart:
			starts.Add(1)
		case EventDone:
			dones.Add(1)
		case EventHit:
			hits.Add(1)
		case EventError:
			errs.Add(1)
		}
	}})

	jobs := testGrid()
	const callers = 4
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Run(context.Background(), jobs); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	distinct := int64(len(jobs))
	if starts.Load() != distinct || dones.Load() != distinct {
		t.Errorf("starts/dones = %d/%d, want %d/%d (singleflight violated)",
			starts.Load(), dones.Load(), distinct, distinct)
	}
	total := int64(callers) * distinct
	if got := dones.Load() + hits.Load(); got != total {
		t.Errorf("done+hit = %d, want %d", got, total)
	}
	if errs.Load() != 0 {
		t.Errorf("unexpected error events: %d", errs.Load())
	}
	s := e.Stats()
	if int64(s.Done) != total || int64(s.Computed) != distinct {
		t.Errorf("stats done/computed = %d/%d, want %d/%d", s.Done, s.Computed, total, distinct)
	}
}

// TestStatsInvariantUnderConcurrency samples Stats() while several
// Run calls race and asserts the accounting invariant the serving
// layer's metrics rely on: queued >= running + done at every instant,
// and queued/done never move backwards.
func TestStatsInvariantUnderConcurrency(t *testing.T) {
	e := New(Options{Workers: 4})
	stop := make(chan struct{})
	violations := make(chan string, 1)
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		var lastQueued, lastDone int
		for {
			s := e.Stats()
			switch {
			case s.Queued < s.Running+s.Done:
				select {
				case violations <- "queued < running+done":
				default:
				}
			case s.Queued < lastQueued:
				select {
				case violations <- "queued moved backwards":
				default:
				}
			case s.Done < lastDone:
				select {
				case violations <- "done moved backwards":
				default:
				}
			}
			lastQueued, lastDone = s.Queued, s.Done
			select {
			case <-stop:
				return
			default:
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	jobs := testGrid()
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			local := make([]Job, len(jobs))
			copy(local, jobs)
			for i := range local {
				local[i].Seed = seed
			}
			if _, err := e.Run(context.Background(), local); err != nil {
				t.Error(err)
			}
		}(uint64(c + 1))
	}
	wg.Wait()
	close(stop)
	sampler.Wait()
	select {
	case v := <-violations:
		t.Fatalf("stats invariant violated: %s (final %+v)", v, e.Stats())
	default:
	}
	if s := e.Stats(); s.Running != 0 || s.Queued != s.Done {
		t.Errorf("engine did not settle: %+v", s)
	}
}

func TestSubscribeStreamsEvents(t *testing.T) {
	e := New(Options{Workers: 2})
	ch, cancel := e.Subscribe(256)
	defer cancel()

	jobs := testGrid()[:3]
	if _, err := e.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	var starts, dones int
	timeout := time.After(5 * time.Second)
	for starts < len(jobs) || dones < len(jobs) {
		select {
		case ev := <-ch:
			switch ev.Type {
			case EventStart:
				starts++
			case EventDone:
				dones++
				if ev.Wall <= 0 {
					t.Error("done event without wall clock")
				}
			}
		case <-timeout:
			t.Fatalf("timed out: starts=%d dones=%d", starts, dones)
		}
	}
	cancel()
	cancel() // idempotent
	if _, err := e.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	// The channel is closed after cancel; draining must terminate.
	for range ch {
	}
}

func TestRunEachReportsSources(t *testing.T) {
	dir := t.TempDir()
	jobs := testGrid()[:3]
	e1 := New(Options{Workers: 2, CacheDir: dir})
	_, src1, err := e1.RunEach(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range src1 {
		if s != SourceComputed {
			t.Errorf("cold job %d source = %v, want computed", i, s)
		}
	}
	_, src2, err := e1.RunEach(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range src2 {
		if s != SourceMemory {
			t.Errorf("warm job %d source = %v, want memory", i, s)
		}
	}
	// A fresh engine sharing the directory replays from disk.
	e2 := New(Options{Workers: 2, CacheDir: dir})
	_, src3, err := e2.RunEach(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range src3 {
		if s != SourceDisk {
			t.Errorf("replayed job %d source = %v, want disk", i, s)
		}
	}
}

func TestRunOneCtxHonorsExpiredContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(Options{Workers: 1})
	res, _, err := e.RunOneCtx(ctx, testGrid()[0])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled RunOneCtx returned a result")
	}
	if s := e.Stats(); s.Queued != 0 || s.Done != 0 {
		t.Errorf("cancelled job leaked into stats: %+v", s)
	}
}

func TestLookupFindsCachedResultsOnly(t *testing.T) {
	e := New(Options{Workers: 1})
	job := testGrid()[0]
	if _, _, ok := e.Lookup(job.Normalize().Hash()); ok {
		t.Fatal("lookup hit before any computation")
	}
	res, err := e.RunOne(job)
	if err != nil {
		t.Fatal(err)
	}
	got, src, ok := e.Lookup(res.Hash)
	if !ok || src != SourceMemory || got != res {
		t.Errorf("lookup = (%p, %v, %v), want the computed result from memory", got, src, ok)
	}
	if s := e.Stats(); s.Done != 1 || s.CacheHits != 0 {
		t.Errorf("Lookup must not touch counters: %+v", s)
	}
}

// TestConcurrentRunsShareWorkerBound checks that Workers is an
// engine-global execution bound: overlapping Run calls with distinct
// jobs never push concurrent executor invocations past the pool size,
// so a serving layer admitting many requests cannot oversubscribe the
// host at MaxInFlight x Workers.
func TestConcurrentRunsShareWorkerBound(t *testing.T) {
	const workers = 2
	var cur, peak atomic.Int64
	exec := func(j Job) (*core.Metrics, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		cur.Add(-1)
		return &core.Metrics{ExecTime: 1000, DataRefs: 1}, nil
	}
	e := New(Options{Workers: workers, Executors: map[string]Executor{"": exec}})

	const callers = 4
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			jobs := testGrid()[:4]
			for i := range jobs {
				jobs[i].Seed = seed // distinct hashes: no coalescing across callers
			}
			if _, err := e.Run(context.Background(), jobs); err != nil {
				t.Error(err)
			}
		}(uint64(c + 1))
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Errorf("peak executor concurrency %d exceeds Workers=%d", p, workers)
	}
}

// TestLookupRejectsMalformedHash feeds traversal-style and otherwise
// malformed hashes through the cache's external lookup path: all must
// miss without touching the filesystem — get deletes corrupt
// artifacts, so an unvalidated hash would turn a lookup into an
// arbitrary *.json delete.
func TestLookupRejectsMalformedHash(t *testing.T) {
	dir := t.TempDir()
	victim := dir + "/victim.json"
	if err := os.WriteFile(victim, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 1, CacheDir: dir + "/cache"})
	for _, h := range []string{
		"../victim",
		"../../victim",
		"",
		"short",
		"DEADBEEFDEADBEEFDEADBEEFDEADBEEFDEADBEEFDEADBEEFDEADBEEFDEADBEEF", // uppercase
		"gggggggggggggggggggggggggggggggggggggggggggggggggggggggggggggggg", // non-hex
	} {
		if _, _, ok := e.Lookup(h); ok {
			t.Errorf("malformed hash %q produced a hit", h)
		}
	}
	if _, err := os.Stat(victim); err != nil {
		t.Errorf("malformed-hash lookup deleted the victim file: %v", err)
	}

	if !ValidHash(Job{Benchmark: "MP3D", CPUs: 8, DataRefsPerCPU: 100}.Hash()) {
		t.Error("ValidHash rejects a real Job.Hash")
	}
}

// TestCorruptDiskArtifactIsRecomputed truncates and garbles cached
// artifacts and checks the engine treats them as misses: the job is
// recomputed and the artifact atomically rewritten, never an error.
func TestCorruptDiskArtifactIsRecomputed(t *testing.T) {
	dir := t.TempDir()
	job := testGrid()[0]
	e1 := New(Options{Workers: 1, CacheDir: dir})
	res, err := e1.RunOne(job)
	if err != nil {
		t.Fatal(err)
	}
	path := dir + "/" + res.Hash + ".json"
	want := res.CanonicalMetrics()

	for name, garble := range map[string][]byte{
		"truncated":  []byte(`{"job":{"protocol":"snoop-ri`),
		"empty":      {},
		"wrong-hash": []byte(`{"job":{},"hash":"deadbeef","metrics":{}}`),
		"not-json":   []byte("\x00\x01\x02"),
	} {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, garble, 0o644); err != nil {
				t.Fatal(err)
			}
			e := New(Options{Workers: 1, CacheDir: dir})
			got, src, err := e.RunOneCtx(context.Background(), job)
			if err != nil {
				t.Fatalf("corrupt artifact failed the sweep: %v", err)
			}
			if src != SourceComputed {
				t.Errorf("source = %v, want computed (corrupt artifact treated as hit?)", src)
			}
			if string(got.CanonicalMetrics()) != string(want) {
				t.Error("recomputed metrics differ from original")
			}
			// The artifact was rewritten and is valid again.
			e2 := New(Options{Workers: 1, CacheDir: dir})
			if _, src, ok := e2.Lookup(got.Hash); !ok || src != SourceDisk {
				t.Errorf("rewritten artifact not replayable: ok=%v src=%v", ok, src)
			}
		})
	}
}
