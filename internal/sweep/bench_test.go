package sweep

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// speedupGrid is a Figure-5-style sweep: every benchmark × size under
// the directory protocol (the Figure 5 job set), sized to amortize
// scheduling overhead.
func speedupGrid(refs int) []Job {
	var jobs []Job
	for _, p := range []struct {
		bench string
		sizes []int
	}{
		{"MP3D", []int{8, 16, 32}},
		{"WATER", []int{8, 16, 32}},
		{"CHOLESKY", []int{8, 16, 32}},
	} {
		for _, cpus := range p.sizes {
			jobs = append(jobs, Job{
				Protocol:       "directory-ring",
				Benchmark:      p.bench,
				CPUs:           cpus,
				DataRefsPerCPU: refs,
				Seed:           1993,
			})
		}
	}
	return jobs
}

// TestParallelSpeedup demonstrates the ISSUE acceptance criterion on
// machines with real parallelism: a Figure-5-style sweep with
// workers=NumCPU must be materially faster than workers=1. The bound
// is asserted loosely (2× on 4+ cores, against the 3× target) to keep
// CI robust to noisy neighbors; BENCH_1.json tracks the exact ratio.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need 4+ cores to observe parallel speedup, have %d", runtime.NumCPU())
	}
	jobs := speedupGrid(600)

	serialStart := time.Now()
	if _, err := New(Options{Workers: 1}).Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	serial := time.Since(serialStart)

	parStart := time.Now()
	if _, err := New(Options{}).Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	par := time.Since(parStart)

	ratio := float64(serial) / float64(par)
	t.Logf("workers=1 %v, workers=%d %v, speedup %.2fx", serial, runtime.NumCPU(), par, ratio)
	if ratio < 2.0 {
		t.Errorf("parallel sweep speedup %.2fx, want >= 2x on %d cores", ratio, runtime.NumCPU())
	}
}

func benchmarkSweep(b *testing.B, workers int) {
	jobs := speedupGrid(400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh engine each iteration: cold cache, so the benchmark
		// measures computation, not memoization.
		if _, err := New(Options{Workers: workers}).Run(context.Background(), jobs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepWorkers1(b *testing.B)      { benchmarkSweep(b, 1) }
func BenchmarkSweepWorkersNumCPU(b *testing.B) { benchmarkSweep(b, runtime.NumCPU()) }

func BenchmarkSweepWarmCache(b *testing.B) {
	e := New(Options{})
	jobs := speedupGrid(400)
	if _, err := e.Run(context.Background(), jobs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(context.Background(), jobs); err != nil {
			b.Fatal(err)
		}
	}
}
