package stats

import (
	"math"
	"testing"
)

func TestExpHistogramBuckets(t *testing.T) {
	h := NewExpHistogram(1, 2, 4) // bounds 1, 2, 4, 8 + overflow
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 4 || len(counts) != 5 {
		t.Fatalf("shape = %d bounds / %d counts, want 4/5", len(bounds), len(counts))
	}
	// le semantics: 0.5 and 1 land in the first bucket (<= 1).
	want := []uint64{2, 1, 1, 0, 1}
	for i, c := range counts {
		if c != want[i] {
			t.Errorf("bucket %d count = %d, want %d", i, c, want[i])
		}
	}
	if h.N() != 5 || h.Sum() != 106 {
		t.Errorf("n/sum = %d/%g, want 5/106", h.N(), h.Sum())
	}
	if got := h.Mean(); math.Abs(got-106.0/5) > 1e-12 {
		t.Errorf("mean = %g", got)
	}
	// Mutating the returned slices must not affect the histogram.
	counts[0] = 99
	if _, c2 := h.Buckets(); c2[0] != 2 {
		t.Error("Buckets returned aliased storage")
	}
}

func TestExpHistogramQuantile(t *testing.T) {
	h := NewExpHistogram(0.001, 2, 20)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	for i := 0; i < 1000; i++ {
		h.Observe(0.010) // all samples in one bucket
	}
	q := h.Quantile(0.5)
	// 0.010 lies in the (0.008, 0.016] bucket; the interpolated median
	// must land inside it.
	if q <= 0.008 || q > 0.016 {
		t.Errorf("median %g outside its bucket", q)
	}
	h.Observe(1e9) // overflow reports the largest finite bound
	if got := h.Quantile(1); got != 0.001*math.Pow(2, 19) {
		t.Errorf("overflow quantile = %g", got)
	}
}

func TestPercentile(t *testing.T) {
	samples := []float64{5, 1, 4, 2, 3}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.9, 4.6},
	}
	for _, c := range cases {
		if got := Percentile(samples, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	// Input must not be reordered.
	if samples[0] != 5 {
		t.Error("Percentile sorted its input")
	}
	if got := Percentile([]float64{7}, 0.99); got != 7 {
		t.Errorf("singleton percentile = %g", got)
	}
}
