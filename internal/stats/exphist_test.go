package stats

import (
	"math"
	"testing"
)

func TestExpHistogramBuckets(t *testing.T) {
	h := NewExpHistogram(1, 2, 4) // bounds 1, 2, 4, 8 + overflow
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 4 || len(counts) != 5 {
		t.Fatalf("shape = %d bounds / %d counts, want 4/5", len(bounds), len(counts))
	}
	// le semantics: 0.5 and 1 land in the first bucket (<= 1).
	want := []uint64{2, 1, 1, 0, 1}
	for i, c := range counts {
		if c != want[i] {
			t.Errorf("bucket %d count = %d, want %d", i, c, want[i])
		}
	}
	if h.N() != 5 || h.Sum() != 106 {
		t.Errorf("n/sum = %d/%g, want 5/106", h.N(), h.Sum())
	}
	if got := h.Mean(); math.Abs(got-106.0/5) > 1e-12 {
		t.Errorf("mean = %g", got)
	}
	// Mutating the returned slices must not affect the histogram.
	counts[0] = 99
	if _, c2 := h.Buckets(); c2[0] != 2 {
		t.Error("Buckets returned aliased storage")
	}
}

func TestExpHistogramQuantile(t *testing.T) {
	h := NewExpHistogram(0.001, 2, 20)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	for i := 0; i < 1000; i++ {
		h.Observe(0.010) // all samples in one bucket
	}
	q := h.Quantile(0.5)
	// 0.010 lies in the (0.008, 0.016] bucket; the interpolated median
	// must land inside it.
	if q <= 0.008 || q > 0.016 {
		t.Errorf("median %g outside its bucket", q)
	}
	h.Observe(1e9) // overflow reports the largest finite bound
	if got := h.Quantile(1); got != 0.001*math.Pow(2, 19) {
		t.Errorf("overflow quantile = %g", got)
	}
}

func TestExpHistogramMerge(t *testing.T) {
	// Merging an empty (and a nil) histogram is a no-op.
	h := NewExpHistogram(1, 2, 4)
	h.Observe(3)
	if err := h.Merge(NewExpHistogram(1, 2, 4)); err != nil {
		t.Fatalf("merge of empty: %v", err)
	}
	if err := h.Merge(nil); err != nil {
		t.Fatalf("merge of nil: %v", err)
	}
	if h.N() != 1 || h.Sum() != 3 {
		t.Fatalf("no-op merges changed state: n=%d sum=%g", h.N(), h.Sum())
	}

	// Merging into an empty histogram reproduces the source, including
	// quantiles: all o samples share one bucket.
	o := NewExpHistogram(1, 2, 4)
	for i := 0; i < 10; i++ {
		o.Observe(3) // the (2, 4] bucket
	}
	empty := NewExpHistogram(1, 2, 4)
	if err := empty.Merge(o); err != nil {
		t.Fatal(err)
	}
	if empty.N() != 10 || empty.Sum() != 30 {
		t.Fatalf("merged n/sum = %d/%g, want 10/30", empty.N(), empty.Sum())
	}
	if q := empty.Quantile(0.5); q <= 2 || q > 4 {
		t.Fatalf("single-bucket merged median %g outside (2, 4]", q)
	}

	// Overflow-bucket samples merge into the overflow bucket and keep
	// reporting the largest finite bound.
	ov := NewExpHistogram(1, 2, 4)
	ov.Observe(1e6)
	if err := h.Merge(ov); err != nil {
		t.Fatal(err)
	}
	_, counts := h.Buckets()
	if counts[len(counts)-1] != 1 {
		t.Fatalf("overflow count = %d, want 1", counts[len(counts)-1])
	}
	if got := h.Quantile(1); got != 8 {
		t.Fatalf("overflow quantile after merge = %g, want 8 (largest finite bound)", got)
	}

	// Shape mismatches with samples are rejected and leave the
	// receiver unchanged (an empty mismatched source is a no-op).
	wider := NewExpHistogram(1, 2, 5)
	wider.Observe(2)
	if err := h.Merge(wider); err == nil {
		t.Fatal("merge of different bucket count succeeded")
	}
	shifted := NewExpHistogram(1.5, 2, 4)
	shifted.Observe(2)
	if err := h.Merge(shifted); err == nil {
		t.Fatal("merge of different bounds succeeded")
	}
	if h.N() != 2 {
		t.Fatalf("failed merges changed state: n=%d, want 2", h.N())
	}
}

func TestExpHistogramClone(t *testing.T) {
	h := NewExpHistogram(1, 2, 4)
	h.Observe(3)
	c := h.Clone()
	c.Observe(100)
	c.Observe(1e9)
	if h.N() != 1 || c.N() != 3 {
		t.Fatalf("clone aliases its source: n=%d/%d, want 1/3", h.N(), c.N())
	}
	if err := h.Merge(c); err != nil {
		t.Fatalf("merge of clone: %v", err)
	}
	if h.N() != 4 || h.Sum() != 3+3+100+1e9 {
		t.Fatalf("merged clone n/sum = %d/%g", h.N(), h.Sum())
	}
}

func TestPercentile(t *testing.T) {
	samples := []float64{5, 1, 4, 2, 3}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.9, 4.6},
	}
	for _, c := range cases {
		if got := Percentile(samples, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	// Input must not be reordered.
	if samples[0] != 5 {
		t.Error("Percentile sorted its input")
	}
	if got := Percentile([]float64{7}, 0.99); got != 7 {
		t.Errorf("singleton percentile = %g", got)
	}
}
