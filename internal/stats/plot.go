package stats

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders the figure as an ASCII line chart — the closest a text
// harness gets to the paper's actual figures. Each series draws with
// its own glyph; the legend maps glyphs to series names. Width and
// height are the plot-area size in characters (sensible minimums are
// enforced).
func (f *Figure) Plot(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	if len(f.Series) == 0 {
		return f.Title + "\n(no series)\n"
	}

	// Domain and range over all series.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return f.Title + "\n(empty series)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// A little headroom keeps curves off the frame.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	glyphs := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&', '$', '~'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}

	plotCell := func(x, y float64) (col, row int, ok bool) {
		col = int((x - xmin) / (xmax - xmin) * float64(width-1))
		row = height - 1 - int((y-ymin)/(ymax-ymin)*float64(height-1))
		if col < 0 || col >= width || row < 0 || row >= height {
			return 0, 0, false
		}
		return col, row, true
	}

	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		// Sample every column so interpolated segments draw through.
		for col := 0; col < width; col++ {
			x := xmin + (xmax-xmin)*float64(col)/float64(width-1)
			if x < s.X[0] || x > s.X[len(s.X)-1] {
				continue
			}
			y := s.At(x)
			if c, r, ok := plotCell(x, y); ok {
				grid[r][c] = g
			}
		}
	}

	var b strings.Builder
	if f.Title != "" {
		b.WriteString(f.Title)
		b.WriteByte('\n')
	}
	yLabelW := 9
	for r := 0; r < height; r++ {
		// Label the top, middle and bottom rows.
		switch r {
		case 0:
			fmt.Fprintf(&b, "%*.4g |", yLabelW, ymax)
		case height / 2:
			fmt.Fprintf(&b, "%*.4g |", yLabelW, (ymax+ymin)/2)
		case height - 1:
			fmt.Fprintf(&b, "%*.4g |", yLabelW, ymin)
		default:
			fmt.Fprintf(&b, "%*s |", yLabelW, "")
		}
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%*s +%s\n", yLabelW, "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%*s  %-*.4g%*.4g\n", yLabelW, "", width/2, xmin, width-width/2, xmax)
	fmt.Fprintf(&b, "%*s  x: %s, y: %s\n", yLabelW, "", f.XLabel, f.YLabel)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "%*s  %c %s\n", yLabelW, "", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}
